#!/usr/bin/env bash
# Run the data-path benchmark and emit machine-readable
# BENCH_datapath.json (schema: {bench, metric, value, unit, seed} per
# row), then gate it against the checked-in baseline:
#
#   scripts/bench.sh            # full-size workloads
#   scripts/bench.sh --smoke    # CI-size workloads (scripts/check.sh bench)
#
# Every metric is higher-is-better throughput; the gate fails if any
# metric lands below 80% of its baseline value.  The baseline
# (bench/BENCH_datapath.baseline.json) is deliberately conservative —
# far below what current hardware delivers — so it catches structural
# regressions (a lost batching path, a reintroduced per-record lock
# cycle), not machine-to-machine noise.  The batched_speedup baseline of
# 2.5 makes the 80% floor exactly the 2x batched-vs-per-record
# acceptance bar; likewise the codec baselines of 0.375 (wire bytes
# saved) and 1.125 (lz4-vs-none decode throughput) make the floors
# exactly the >=30%-fewer-wire-bytes and >=90%-of-uncompressed-
# throughput acceptance bars.
set -euo pipefail
cd "$(dirname "$0")/.."

args=()
for a in "$@"; do
  case "$a" in
    --smoke) args+=(--smoke) ;;
    *) echo "usage: scripts/bench.sh [--smoke]" >&2; exit 2 ;;
  esac
done

jobs=$(nproc 2>/dev/null || echo 2)
cmake --preset default >/dev/null
cmake --build build -j "${jobs}" --target bench_datapath >/dev/null

out=BENCH_datapath.json
./build/bench/bench_datapath "${args[@]+"${args[@]}"}" --out "${out}"

baseline=bench/BENCH_datapath.baseline.json
echo "== regression gate: ${out} vs ${baseline} (floor: 80% of baseline) =="
awk '
  function parse(line) {
    if (match(line, /"bench": "[^"]+"/) == 0) return 0
    bench = substr(line, RSTART + 10, RLENGTH - 11)
    if (match(line, /"metric": "[^"]+"/) == 0) return 0
    metric = bench "/" substr(line, RSTART + 11, RLENGTH - 12)
    if (match(line, /"value": [0-9.eE+-]+/) == 0) return 0
    value = substr(line, RSTART + 9, RLENGTH - 9) + 0
    return 1
  }
  FNR == 1 { file_idx++ }
  file_idx == 1 { if (parse($0)) base[metric] = value }
  file_idx == 2 { if (parse($0)) cur[metric] = value }
  END {
    failed = 0
    for (m in base) {
      if (!(m in cur)) {
        printf "bench gate: FAIL: metric %s missing from current run\n", m
        failed = 1
        continue
      }
      floor = base[m] * 0.8
      status = (cur[m] >= floor) ? "ok" : "FAIL"
      if (cur[m] < floor) failed = 1
      printf "bench gate: %-6s %-36s current %14.1f  floor %14.1f\n", \
             status, m, cur[m], floor
    }
    exit failed
  }
' "${baseline}" "${out}"
echo "== bench gate passed =="
