#!/usr/bin/env bash
# Run the benchmark suites and gate each against its checked-in
# baseline:
#
#   scripts/bench.sh                        # all suites, full workloads
#   scripts/bench.sh --smoke                # CI-size workloads
#   scripts/bench.sh --suite datapath       # one suite only
#   scripts/bench.sh --suite service --smoke
#
# Suites (each emits BENCH_<suite>.json, schema {bench, metric, value,
# unit, seed} per row, gated against bench/BENCH_<suite>.baseline.json):
#
#   datapath — shuffle data plane: batched FIFO vs per-record, codec
#              pair, partial stores.  The batched_speedup baseline of
#              2.5 makes the 80% floor exactly the 2x acceptance bar;
#              likewise the codec baselines of 0.375 (wire bytes saved)
#              and 1.125 (lz4-vs-none decode) pin their acceptance bars.
#   service  — multi-tenant job service under saturation: sustained
#              jobs/sec, per-tenant fairness, p99 latency (as inverse).
#              The fair_share_min_fraction baseline of 0.5 makes the
#              80% floor exactly 0.4 — the 50%±10% per-tenant bar.
#
# Every gated metric is higher-is-better; the gate fails if any metric
# lands below 80% of its baseline value.  Baselines are deliberately
# conservative — far below what current hardware delivers — so they
# catch structural regressions (a lost batching path, a reintroduced
# per-record lock cycle, a starved tenant), not machine-to-machine
# noise.
set -euo pipefail
cd "$(dirname "$0")/.."

args=()
suites=()
while [ $# -gt 0 ]; do
  case "$1" in
    --smoke) args+=(--smoke) ;;
    --suite)
      shift
      case "${1:-}" in
        datapath|service) suites+=("$1") ;;
        *) echo "usage: scripts/bench.sh [--smoke] [--suite datapath|service]" >&2; exit 2 ;;
      esac
      ;;
    *) echo "usage: scripts/bench.sh [--smoke] [--suite datapath|service]" >&2; exit 2 ;;
  esac
  shift
done
if [ ${#suites[@]} -eq 0 ]; then
  suites=(datapath service)
fi

jobs=$(nproc 2>/dev/null || echo 2)
cmake --preset default >/dev/null
for suite in "${suites[@]}"; do
  cmake --build build -j "${jobs}" --target "bench_${suite}" >/dev/null
done

gate() {
  local baseline="$1" out="$2"
  echo "== regression gate: ${out} vs ${baseline} (floor: 80% of baseline) =="
  awk '
    function parse(line) {
      if (match(line, /"bench": "[^"]+"/) == 0) return 0
      bench = substr(line, RSTART + 10, RLENGTH - 11)
      if (match(line, /"metric": "[^"]+"/) == 0) return 0
      metric = bench "/" substr(line, RSTART + 11, RLENGTH - 12)
      if (match(line, /"value": [0-9.eE+-]+/) == 0) return 0
      value = substr(line, RSTART + 9, RLENGTH - 9) + 0
      return 1
    }
    FNR == 1 { file_idx++ }
    file_idx == 1 { if (parse($0)) base[metric] = value }
    file_idx == 2 { if (parse($0)) cur[metric] = value }
    END {
      failed = 0
      for (m in base) {
        if (!(m in cur)) {
          printf "bench gate: FAIL: metric %s missing from current run\n", m
          failed = 1
          continue
        }
        floor = base[m] * 0.8
        status = (cur[m] >= floor) ? "ok" : "FAIL"
        if (cur[m] < floor) failed = 1
        printf "bench gate: %-6s %-36s current %14.3f  floor %14.3f\n", \
               status, m, cur[m], floor
      }
      exit failed
    }
  ' "${baseline}" "${out}"
}

for suite in "${suites[@]}"; do
  out="BENCH_${suite}.json"
  "./build/bench/bench_${suite}" "${args[@]+"${args[@]}"}" --out "${out}"
  gate "bench/BENCH_${suite}.baseline.json" "${out}"
done
echo "== bench gate passed: ${suites[*]} =="
