#!/usr/bin/env bash
# Repo lint gate: fast greppable checks over src/, plus clang-tidy when
# a clang-tidy binary is available.  Run directly or via
# `scripts/check.sh lint`; `scripts/check.sh all` runs it first.
#
# Checks
#   1. raw-threading   std::thread / std::mutex / std::lock_guard / ...
#                      only inside src/common/ and src/concurrency/.
#                      Everything else uses bmr::Mutex / bmr::OrderedMutex /
#                      bmr::MutexLock / bmr::CondVar / ThreadPool.
#   2. nodiscard       every Status / StatusOr returner declared in a
#                      header carries [[nodiscard]].
#   3. determinism     src/sim/ and src/simmr/ are simulation layers:
#                      no wall clocks, no rand(), no sleeps.
#   4. layering        include-what-you-use-lite: each src/<dir> may
#                      include only the directories listed for it below
#                      (core additionally gets the two leaf mr headers).
#   5. fault-injection encapsulation: faults/internal.h (the injector's
#                      event-matching machinery) is private to
#                      src/faults/ — hook sites everywhere else go
#                      through faults/fault_injector.h only.
#   6. batched-fifo     no per-record fifo_.Push() in src/mr/ — shuffle
#                      sinks move RecordBatches via PushAll (one lock
#                      cycle and one wakeup per batch, see
#                      mr/record_batch.h).
#   7. metric-names    counter / histogram / span names are registry
#                      constants (mr/types.h, obs/metric_names.h), never
#                      string literals at the recording site — so the
#                      exporters and the naming lint see every series.
#
# Tests, benches and examples are exempt: the gate polices the library
# layers, not the harnesses around them.
set -uo pipefail
cd "$(dirname "$0")/.."

failures=0

fail() {
  echo "lint: FAIL: $1" >&2
  failures=$((failures + 1))
}

# ---------------------------------------------------------------------
# 1. Raw threading primitives outside src/common/ + src/concurrency/.
#    (std::this_thread is fine — the pattern requires a non-identifier
#    character after "thread" so it only matches the std::thread type.)
raw_re='std::(thread[^:_a-zA-Z]|mutex|condition_variable|shared_mutex|recursive_mutex|lock_guard|unique_lock|scoped_lock)'
hits=$(grep -rnE "${raw_re}" src/ --include='*.h' --include='*.cc' \
  | grep -v '^src/common/' | grep -v '^src/concurrency/' || true)
if [ -n "${hits}" ]; then
  echo "${hits}" >&2
  fail "raw threading primitives outside src/common//src/concurrency/ — use bmr::Mutex/OrderedMutex/MutexLock/CondVar or ThreadPool (common/mutex.h)"
fi

# ---------------------------------------------------------------------
# 2. [[nodiscard]] on Status/StatusOr returners declared in headers.
#    A declaration line starting with Status/StatusOr (optionally
#    static/virtual) must carry [[nodiscard]] on the same line or the
#    line above.  `Status status;` members and `using`/comment lines
#    don't match the function-declaration shape.
hits=$(awk '
  /\[\[nodiscard\]\]/ { carry = 1; print_line = 0 }
  {
    line = $0
    sub(/^[ \t]+/, "", line)
    is_decl = (line ~ /^(static |virtual )*(Status[ \t]+|StatusOr<.*>[ \t]+)[A-Za-z_][A-Za-z0-9_]*[ \t]*\(/)
    if (is_decl && line !~ /\[\[nodiscard\]\]/ && !carry) {
      printf "%s:%d: %s\n", FILENAME, FNR, line
    }
    if (line !~ /\[\[nodiscard\]\]$/) carry = 0
  }
' $(find src -name '*.h') )
if [ -n "${hits}" ]; then
  echo "${hits}" >&2
  fail "Status/StatusOr returners in headers must be [[nodiscard]]"
fi

# ---------------------------------------------------------------------
# 3. Determinism in the simulation layers: simulated time only.
det_re='[^_a-zA-Z](rand|srand|time)\(|random_device|system_clock|steady_clock|high_resolution_clock|sleep_for|sleep_until|this_thread'
hits=$(grep -rnE "${det_re}" src/sim/ src/simmr/ --include='*.h' --include='*.cc' || true)
if [ -n "${hits}" ]; then
  echo "${hits}" >&2
  fail "wall-clock/randomness in src/sim//src/simmr/ — simulators must be deterministic (virtual time only)"
fi

# ---------------------------------------------------------------------
# 4. Include layering (include-what-you-use-lite).  For each directory,
#    the project-include prefixes it may use.  The dependency DAG:
#      common -> {}          concurrency -> {common}
#      obs -> {common}       sim -> {}
#      net -> {common, concurrency, faults, obs}
#      cluster -> {common}   dfs -> {common, net}
#      core -> {common, faults, obs} (+ the two leaf mr headers below)
#      faults -> {common}
#      mr -> {cluster, common, concurrency, core, dfs, faults, net, obs}
#      workload -> {common, mr}
#      simmr -> {cluster, common, core, mr, sim}
#      apps -> {common, core, mr}
declare -A allowed=(
  [common]="common"
  [concurrency]="concurrency common"
  [obs]="obs common"
  [net]="net common concurrency faults obs"
  [sim]="sim"
  [cluster]="cluster common"
  [dfs]="dfs common net"
  [core]="core common faults obs"
  [faults]="faults common"
  [mr]="mr cluster common concurrency core dfs faults net obs"
  [workload]="workload common mr"
  [simmr]="simmr cluster common core mr sim"
  [apps]="apps common core mr"
)
# core may use exactly the two dependency-free mr leaf headers (Record /
# emitter interfaces) — the documented exception that lets the store
# layer speak the engine's record type without depending on the engine.
core_exceptions='^(mr/types\.h|mr/emitter\.h)$'

for dir in "${!allowed[@]}"; do
  [ -d "src/${dir}" ] || continue
  while IFS=: read -r file _ inc; do
    [ -n "${inc}" ] || continue
    target=${inc%%/*}
    ok=0
    for a in ${allowed[$dir]}; do
      if [ "${target}" = "${a}" ]; then ok=1; break; fi
    done
    if [ "${ok}" = 0 ] && [ "${dir}" = core ] && [[ "${inc}" =~ ${core_exceptions} ]]; then
      ok=1
    fi
    if [ "${ok}" = 0 ]; then
      echo "${file}: includes \"${inc}\" (src/${dir} may only include: ${allowed[$dir]})" >&2
      failures=$((failures + 1))
    fi
  done < <(grep -rnoE '#include "[a-z_]+/[a-z_.]+"' "src/${dir}" \
             --include='*.h' --include='*.cc' \
           | sed -E 's/#include "([^"]+)"/\1/')
done

# ---------------------------------------------------------------------
# 5. Fault-injection encapsulation: the injector's event-matching
#    internals (faults/internal.h, bmr::faults::internal) stay inside
#    src/faults/; every hook site elsewhere uses the public
#    FaultInjector surface, so injection can evolve without touching
#    the engine.
hits=$(grep -rnE 'faults/internal\.h|faults::internal' src/ \
  --include='*.h' --include='*.cc' | grep -v '^src/faults/' || true)
if [ -n "${hits}" ]; then
  echo "${hits}" >&2
  fail "faults/internal.h is private to src/faults/ — include faults/fault_injector.h instead"
fi

# ---------------------------------------------------------------------
# 6. Batched FIFO: the shuffle data plane moves record batches.  A raw
#    per-record fifo_.Push() in a src/mr/ sink reintroduces one
#    lock/wakeup cycle per record — the exact overhead the batched
#    design removed.
hits=$(grep -rnE 'fifo_\.Push\(' src/mr/ --include='*.h' --include='*.cc' || true)
if [ -n "${hits}" ]; then
  echo "${hits}" >&2
  fail "per-record fifo_.Push() in src/mr/ — sinks must batch via PushAll (mr/record_batch.h)"
fi

# ---------------------------------------------------------------------
# 7. Central metric names: recording sites pass registry constants
#    (mr/types.h counter names, obs/metric_names.h histogram/span
#    names), never a raw string literal — a literal-typo'd name would
#    silently create a new series the exporters and dashboards miss.
name_call_re='(AddCounter|RecordLatency|MergeHistogram)[[:space:]]*\([[:space:]]*"|LatencyTimer[[:space:]]+[A-Za-z_][A-Za-z0-9_]*\([^,)]*,[[:space:]]*"'
hits=$(grep -rnE "${name_call_re}" src/ --include='*.h' --include='*.cc' || true)
if [ -n "${hits}" ]; then
  echo "${hits}" >&2
  fail "string-literal metric name at a recording site — use the constants in mr/types.h / obs/metric_names.h"
fi

# ---------------------------------------------------------------------
# 8. Transport encapsulation: everything above src/net/ programs against
#    the net::Transport interface (net/transport.h).  Including a
#    concrete implementation header (tcp_transport.h,
#    inproc_transport.h, or the wire internals) from src/mr, src/core,
#    src/dfs or any other layer would let engine code observe which
#    transport it runs on — the exact coupling the interface removes.
hits=$(grep -rnE '#include "net/[a-z_.]+"' src/ \
  --include='*.h' --include='*.cc' \
  | grep -v '^src/net/' | grep -v '"net/transport\.h"' || true)
if [ -n "${hits}" ]; then
  echo "${hits}" >&2
  fail "concrete transport header included outside src/net/ — code above the wire uses net/transport.h only"
fi

# ---------------------------------------------------------------------
# clang-tidy (when available — the container may only have GCC).
if command -v clang-tidy >/dev/null 2>&1; then
  if [ ! -f build/compile_commands.json ]; then
    cmake --preset default -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  fi
  echo "lint: running clang-tidy"
  if ! find src -name '*.cc' -print0 \
      | xargs -0 -P "$(nproc 2>/dev/null || echo 2)" -n 8 \
          clang-tidy -p build --quiet; then
    fail "clang-tidy reported diagnostics"
  fi
else
  echo "lint: clang-tidy not found; skipping (grep checks still enforced)"
fi

# ---------------------------------------------------------------------
if [ "${failures}" -ne 0 ]; then
  echo "lint: ${failures} check(s) failed" >&2
  exit 1
fi
echo "lint: OK"
