#!/usr/bin/env bash
# Repo lint gate: fast greppable checks over src/, plus clang-tidy when
# a clang-tidy binary is available.  Run directly or via
# `scripts/check.sh lint`; `scripts/check.sh all` runs it first.
#
# Checks
#   1. raw-threading   std::thread / std::mutex / std::lock_guard / ...
#                      only inside src/common/ and src/concurrency/.
#                      Everything else uses bmr::Mutex / bmr::OrderedMutex /
#                      bmr::MutexLock / bmr::CondVar / ThreadPool.
#   3. determinism     src/sim/ and src/simmr/ are simulation layers:
#                      no wall clocks, no rand(), no sleeps.
#   5. fault-injection encapsulation: faults/internal.h (the injector's
#                      event-matching machinery) is private to
#                      src/faults/ — hook sites everywhere else go
#                      through faults/fault_injector.h only.
#   6. batched-fifo     no per-record fifo_.Push() in src/mr/ — shuffle
#                      sinks move RecordBatches via PushAll (one lock
#                      cycle and one wakeup per batch, see
#                      mr/record_batch.h).
#
# Former checks 2 (nodiscard), 4 (include layering) and 7 (metric
# names) moved to the static analyzer, tools/bmr_check (`check.sh
# analyze`), which checks them token-exactly and transitively — the
# grep/awk versions missed multi-line declarations and could not see
# include cycles or dead metric constants.  Keep them out of this file:
# two enforcers of one rule drift and double-report.
#
# Tests, benches and examples are exempt: the gate polices the library
# layers, not the harnesses around them.
set -uo pipefail
cd "$(dirname "$0")/.."

failures=0

fail() {
  echo "lint: FAIL: $1" >&2
  failures=$((failures + 1))
}

# ---------------------------------------------------------------------
# 1. Raw threading primitives outside src/common/ + src/concurrency/.
#    (std::this_thread is fine — the pattern requires a non-identifier
#    character after "thread" so it only matches the std::thread type.)
raw_re='std::(thread[^:_a-zA-Z]|mutex|condition_variable|shared_mutex|recursive_mutex|lock_guard|unique_lock|scoped_lock)'
hits=$(grep -rnE "${raw_re}" src/ --include='*.h' --include='*.cc' \
  | grep -v '^src/common/' | grep -v '^src/concurrency/' || true)
if [ -n "${hits}" ]; then
  echo "${hits}" >&2
  fail "raw threading primitives outside src/common//src/concurrency/ — use bmr::Mutex/OrderedMutex/MutexLock/CondVar or ThreadPool (common/mutex.h)"
fi

# ---------------------------------------------------------------------
# 2. nodiscard — moved to tools/bmr_check (`check.sh analyze`).
echo "lint: check 2 (nodiscard) now enforced by bmr_check analyze leg"

# ---------------------------------------------------------------------
# 3. Determinism in the simulation layers: simulated time only.
det_re='[^_a-zA-Z](rand|srand|time)\(|random_device|system_clock|steady_clock|high_resolution_clock|sleep_for|sleep_until|this_thread'
hits=$(grep -rnE "${det_re}" src/sim/ src/simmr/ --include='*.h' --include='*.cc' || true)
if [ -n "${hits}" ]; then
  echo "${hits}" >&2
  fail "wall-clock/randomness in src/sim//src/simmr/ — simulators must be deterministic (virtual time only)"
fi

# ---------------------------------------------------------------------
# 4. layering — moved to tools/bmr_check (`check.sh analyze`), which
#    builds the real include graph: direction violations against the
#    same DAG, include cycles, and stale includes.
echo "lint: check 4 (layering) now enforced by bmr_check analyze leg"

# ---------------------------------------------------------------------
# 5. Fault-injection encapsulation: the injector's event-matching
#    internals (faults/internal.h, bmr::faults::internal) stay inside
#    src/faults/; every hook site elsewhere uses the public
#    FaultInjector surface, so injection can evolve without touching
#    the engine.
hits=$(grep -rnE 'faults/internal\.h|faults::internal' src/ \
  --include='*.h' --include='*.cc' | grep -v '^src/faults/' || true)
if [ -n "${hits}" ]; then
  echo "${hits}" >&2
  fail "faults/internal.h is private to src/faults/ — include faults/fault_injector.h instead"
fi

# ---------------------------------------------------------------------
# 6. Batched FIFO: the shuffle data plane moves record batches.  A raw
#    per-record fifo_.Push() in a src/mr/ sink reintroduces one
#    lock/wakeup cycle per record — the exact overhead the batched
#    design removed.
hits=$(grep -rnE 'fifo_\.Push\(' src/mr/ --include='*.h' --include='*.cc' || true)
if [ -n "${hits}" ]; then
  echo "${hits}" >&2
  fail "per-record fifo_.Push() in src/mr/ — sinks must batch via PushAll (mr/record_batch.h)"
fi

# ---------------------------------------------------------------------
# 7. metric-names — moved to tools/bmr_check (`check.sh analyze`),
#    which also cross-checks the registry itself (dead constants,
#    unregistered names at recording sites).
echo "lint: check 7 (metric-names) now enforced by bmr_check analyze leg"

# ---------------------------------------------------------------------
# 8. Transport encapsulation: everything above src/net/ programs against
#    the net::Transport interface (net/transport.h).  Including a
#    concrete implementation header (tcp_transport.h,
#    inproc_transport.h, or the wire internals) from src/mr, src/core,
#    src/dfs or any other layer would let engine code observe which
#    transport it runs on — the exact coupling the interface removes.
hits=$(grep -rnE '#include "net/[a-z_.]+"' src/ \
  --include='*.h' --include='*.cc' \
  | grep -v '^src/net/' | grep -v '"net/transport\.h"' || true)
if [ -n "${hits}" ]; then
  echo "${hits}" >&2
  fail "concrete transport header included outside src/net/ — code above the wire uses net/transport.h only"
fi

# ---------------------------------------------------------------------
# clang-tidy (when available — the container may only have GCC).
if command -v clang-tidy >/dev/null 2>&1; then
  if [ ! -f build/compile_commands.json ]; then
    cmake --preset default -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  fi
  echo "lint: running clang-tidy"
  if ! find src -name '*.cc' -print0 \
      | xargs -0 -P "$(nproc 2>/dev/null || echo 2)" -n 8 \
          clang-tidy -p build --quiet; then
    fail "clang-tidy reported diagnostics"
  fi
else
  echo "lint: clang-tidy not found; skipping (grep checks still enforced)"
fi

# ---------------------------------------------------------------------
if [ "${failures}" -ne 0 ]; then
  echo "lint: ${failures} check(s) failed" >&2
  exit 1
fi
echo "lint: OK"
