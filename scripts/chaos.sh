#!/usr/bin/env bash
# Drive the chaos/equivalence sweep: hundreds of seeded random fault
# scenarios (node crashes, RPC drops/delays/duplicates, fetch timeouts,
# segment corruption, spill I/O errors), each asserting the recovered
# barrier-less run's output is byte-identical to a fault-free golden
# run of the same app and store backend.
#
#   scripts/chaos.sh             # default sweep (200 seeds)
#   scripts/chaos.sh 1000        # wider sweep
#   BMR_CHAOS_SEEDS=50 scripts/chaos.sh   # env form works too
#
# A failing seed is printed with its full FaultPlan and reproduces
# deterministically: re-run with the same seed count and the same
# binary, or see docs/GUIDE.md §8 for narrowing to a single scenario.
set -euo pipefail
cd "$(dirname "$0")/.."

seeds="${1:-${BMR_CHAOS_SEEDS:-200}}"
jobs=$(nproc 2>/dev/null || echo 2)

cmake --preset default
cmake --build --preset default -j "${jobs}"

# Crash flight recorder (GUIDE §15): every faulted run dumps its
# post-mortem ring into this directory; after the sweep each artifact
# must validate as Perfetto JSON carrying its trigger event.  A crashy
# sweep that leaves no artifacts is itself a failure.
flight_dir=$(mktemp -d)
export BMR_FLIGHT_DIR="${flight_dir}"
trap 'rm -rf "${flight_dir}"' EXIT
# The sweep runs once per (transport, codec) pair: every scenario must
# recover to byte-identical output whether the RPCs ride the in-process
# registry or real TCP sockets, and whether shuffle segments travel
# uncompressed or lz4-block-compressed — the data plane's knobs are
# interchangeable under fault load, or they are not interchangeable at
# all.
for transport in inproc tcp; do
  for codec in none lz4; do
    echo "== chaos sweep: ${seeds} seeded scenarios" \
         "(net.transport=${transport}, shuffle.codec=${codec}) =="
    BMR_CHAOS_SEEDS="${seeds}" BMR_NET_TRANSPORT="${transport}" \
      BMR_SHUFFLE_CODEC="${codec}" \
      ctest --preset default -L chaos -j "${jobs}"
  done
done

echo "== validating flight-recorder artifacts from the sweep =="
cmake --build build -j "${jobs}" --target bmr_trace >/dev/null
./build/tools/bmr_trace --validate-flight="${flight_dir}"
echo "== chaos sweep passed (${seeds} seeds, both transports, both codecs) =="
