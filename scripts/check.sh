#!/usr/bin/env bash
# Build and run the test suite under one or more CMake presets.
#
#   scripts/check.sh              # default preset only
#   scripts/check.sh asan         # just the asan preset
#   scripts/check.sh all          # default, asan, tsan in sequence
#   scripts/check.sh default tsan # any explicit list
#
# Sanitizer presets build into their own directories (build-asan,
# build-tsan) so they never disturb the default build tree.
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(default)
elif [ "${presets[0]}" = "all" ]; then
  presets=(default asan tsan)
fi

jobs=$(nproc 2>/dev/null || echo 2)
for preset in "${presets[@]}"; do
  echo "== preset: ${preset} =="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${jobs}"
  ctest --preset "${preset}" -j "${jobs}"
done
echo "== all presets passed: ${presets[*]} =="
