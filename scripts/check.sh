#!/usr/bin/env bash
# Build and run the test suite under one or more CMake presets, plus
# the repo lint gate.
#
#   scripts/check.sh              # default preset only
#   scripts/check.sh analyze      # static analyzer (tools/bmr_check)
#   scripts/check.sh lint         # just the lint gate (scripts/lint.sh)
#   scripts/check.sh asan         # just the asan preset
#   scripts/check.sh ubsan        # decoder/store suites under UBSan
#   scripts/check.sh chaos        # full chaos sweep (scripts/chaos.sh)
#   scripts/check.sh bench        # smoke bench + BENCH_datapath.json gate
#   scripts/check.sh service      # smoke bench + BENCH_service.json gate
#                                 # (jobs/sec, per-tenant fairness, p99)
#   scripts/check.sh obs          # traced wordcount + artifact validation
#   scripts/check.sh introspect   # live HTTP endpoints scraped over TCP
#                                 # transport + stitched-trace gate
#   scripts/check.sh tcp          # RPC-heavy suites over the TCP transport
#   scripts/check.sh codec        # shuffle-heavy suites with shuffle.codec=lz4
#   scripts/check.sh all          # analyze, lint, default, tcp, codec,
#                                 # chaos, bench, service, obs, introspect,
#                                 # asan, tsan, ubsan
#   scripts/check.sh default tsan # any explicit list
#
# Sanitizer presets build into their own directories (build-asan,
# build-tsan) so they never disturb the default build tree.  The `tidy`
# preset (build-tidy) needs a Clang toolchain and runs the
# -Wthread-safety analysis over the annotated locking API.
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(default)
elif [ "${presets[0]}" = "all" ]; then
  # analyze runs first: the static analyzer compiles in ~2s and fails
  # fast on invariant violations before any build or test time is spent.
  presets=(analyze lint default tcp codec chaos bench service obs introspect asan tsan ubsan)
fi

jobs=$(nproc 2>/dev/null || echo 2)
for preset in "${presets[@]}"; do
  echo "== preset: ${preset} =="
  if [ "${preset}" = analyze ]; then
    # Static analyzer (docs/GUIDE.md §12): compiled directly — no cmake
    # configure needed — so the leg gates `all` in seconds.
    mkdir -p build
    g++ -std=c++20 -O2 -Wall -Wextra -Werror -I tools/bmr_check \
      -o build/bmr_check_gate tools/bmr_check/analyzer.cc \
      tools/bmr_check/main.cc
    ./build/bmr_check_gate --root=.
    continue
  fi
  if [ "${preset}" = lint ]; then
    scripts/lint.sh
    continue
  fi
  if [ "${preset}" = ubsan ]; then
    # UBSan leg: the untrusted-input decoders and the store stack — the
    # suites whose inputs the fuzzer mutates — with recovery disabled
    # so any UB report is fatal.
    cmake --preset ubsan >/dev/null
    cmake --build --preset ubsan -j "${jobs}" --target \
      common_test net_framing_test stores_test fuzz_decoders_test >/dev/null
    for t in common_test net_framing_test stores_test fuzz_decoders_test; do
      echo "== ubsan: ${t} =="
      "./build-ubsan/tests/${t}"
    done
    continue
  fi
  if [ "${preset}" = chaos ]; then
    scripts/chaos.sh
    continue
  fi
  if [ "${preset}" = bench ]; then
    # Smoke-size bench run; fails if any BENCH_datapath.json metric
    # regresses more than 20% below the checked-in baseline.
    scripts/bench.sh --smoke --suite datapath
    continue
  fi
  if [ "${preset}" = service ]; then
    # Multi-tenant job-service bench: sustained jobs/sec, per-tenant
    # fair-share fraction (floor 0.4 = the 50%-10% bar), and p99 job
    # latency (gated as its inverse), vs BENCH_service.baseline.json.
    scripts/bench.sh --smoke --suite service
    continue
  fi
  if [ "${preset}" = tcp ]; then
    # Transport-parity leg: the RPC-heavy unit suites build their
    # transport through tests/transport_test_util.h (and the engine
    # through the net.transport knob), so the same binaries rerun over
    # real TCP sockets with one env var.  rpc_test itself always covers
    # both transports; these reruns put the shuffle service, DFS and
    # multi-job scheduling on the wire path too.
    cmake --preset default >/dev/null
    cmake --build --preset default -j "${jobs}" >/dev/null
    for t in rpc_test net_framing_test dfs_test shuffle_service_test \
             mr_unit_test multijob_test; do
      echo "== tcp: ${t} =="
      BMR_NET_TRANSPORT=tcp "./build/tests/${t}"
    done
    continue
  fi
  if [ "${preset}" = codec ]; then
    # Codec-parity leg: rerun the suites that push real segments through
    # the shuffle path with block compression on (BMR_SHUFFLE_CODEC is
    # the env fallback for the shuffle.codec knob), so every framed
    # record stream also round-trips the lz4 encoder, the per-block
    # checksums, and the pool-backed decode buffers.  The chaos leg
    # covers codecs under fault load; this one covers them in the plain
    # unit suites.
    cmake --preset default >/dev/null
    cmake --build --preset default -j "${jobs}" >/dev/null
    for t in shuffle_service_test mr_unit_test multijob_test \
             fuzz_decoders_test arena_test; do
      echo "== codec: ${t} =="
      BMR_SHUFFLE_CODEC=lz4 "./build/tests/${t}"
    done
    continue
  fi
  if [ "${preset}" = obs ]; then
    # Observability leg: run a traced wordcount plus a simulated run
    # through the exporters and self-validate the artifacts (Perfetto
    # JSON well-formedness, span nesting, monotonic timestamps;
    # Prometheus naming and histogram coherence) — bmr_trace --check
    # exits nonzero on any violation.
    cmake --preset default >/dev/null
    cmake --build build -j "${jobs}" --target bmr_trace >/dev/null
    ./build/tools/bmr_trace --check \
      --trace-out=build/obs_trace.json --prom-out=build/obs_metrics.prom
    continue
  fi
  if [ "${preset}" = introspect ]; then
    # Live-introspection leg (GUIDE §15): a job service over the TCP
    # transport serves /metrics, /jobs, and /trace over HTTP while an
    # external scraper (this script + curl) pulls and validates all
    # three — then the stitched-trace acceptance gate runs over TCP.
    cmake --preset default >/dev/null
    cmake --build build -j "${jobs}" --target bmr_trace >/dev/null
    serve_log=$(mktemp)
    BMR_NET_TRANSPORT=tcp ./build/tools/bmr_trace --serve=30 \
      >"${serve_log}" 2>&1 &
    serve_pid=$!
    trap 'kill "${serve_pid}" 2>/dev/null || true' EXIT
    port=""
    for _ in $(seq 1 100); do
      port=$(sed -n 's/^INTROSPECT PORT=//p' "${serve_log}")
      [ -n "${port}" ] && break
      kill -0 "${serve_pid}" 2>/dev/null || {
        echo "introspect: server died early:"; cat "${serve_log}"; exit 1; }
      sleep 0.2
    done
    [ -n "${port}" ] || { echo "introspect: no port line"; cat "${serve_log}"; exit 1; }
    # Let the traced jobs finish so the scrape sees completed pools.
    for _ in $(seq 1 150); do
      grep -q "SERVE JOBS DONE" "${serve_log}" && break
      sleep 0.2
    done
    curl -sf "http://127.0.0.1:${port}/metrics" > build/introspect_metrics.prom
    curl -sf "http://127.0.0.1:${port}/jobs" > build/introspect_jobs.json
    curl -sf "http://127.0.0.1:${port}/trace?last=200" > build/introspect_trace.json
    kill "${serve_pid}" 2>/dev/null || true
    wait "${serve_pid}" 2>/dev/null || true
    trap - EXIT
    ./build/tools/bmr_trace --validate-prom=build/introspect_metrics.prom
    ./build/tools/bmr_trace --validate-json=build/introspect_jobs.json
    ./build/tools/bmr_trace --validate-trace=build/introspect_trace.json
    grep -q 'bmr_service_jobs_completed_total' build/introspect_metrics.prom \
      || { echo "introspect: service families missing from /metrics"; exit 1; }
    grep -q '"pools"' build/introspect_jobs.json \
      || { echo "introspect: pool tree missing from /jobs"; exit 1; }
    # Acceptance gate: a traced TCP wordcount yields one stitched tree
    # (rpc.handler spans under cross-node parents, zero orphans).
    BMR_NET_TRANSPORT=tcp ./build/tools/bmr_trace --check \
      --trace-out=build/introspect_check.json \
      --prom-out=build/introspect_check.prom
    continue
  fi
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${jobs}"
  # Sanitizer presets rerun everything including the chaos sweep; bound
  # the sweep there (sanitized scenarios are ~20x slower) unless the
  # caller chose a count.  scripts/chaos.sh runs the full sweep.
  if [ "${preset}" != default ]; then
    BMR_CHAOS_SEEDS="${BMR_CHAOS_SEEDS:-30}" ctest --preset "${preset}" -j "${jobs}"
  else
    ctest --preset "${preset}" -j "${jobs}"
  fi
done
echo "== all presets passed: ${presets[*]} =="
