// Tests for the workload generators: determinism, volume contracts,
// distributional properties, and placement spreading.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "test_util.h"
#include "workload/generators.h"

namespace bmr::workload {
namespace {

using testutil::MakeTestCluster;

std::vector<std::string> Lines(mr::ClusterContext* cluster,
                               const std::vector<std::string>& files) {
  std::vector<std::string> lines;
  for (const auto& file : files) {
    auto text = cluster->client(0)->ReadAll(file);
    EXPECT_TRUE(text.ok());
    size_t pos = 0;
    while (pos < text->size()) {
      size_t nl = text->find('\n', pos);
      if (nl == std::string::npos) nl = text->size();
      lines.push_back(text->substr(pos, nl - pos));
      pos = nl + 1;
    }
  }
  return lines;
}

TEST(TextGenTest, DeterministicInSeed) {
  auto a = MakeTestCluster(2);
  auto b = MakeTestCluster(2);
  TextGenOptions gen;
  gen.total_bytes = 32 << 10;
  gen.seed = 9;
  auto files_a = GenerateZipfText(a.get(), "/t", gen);
  auto files_b = GenerateZipfText(b.get(), "/t", gen);
  ASSERT_TRUE(files_a.ok());
  ASSERT_TRUE(files_b.ok());
  EXPECT_EQ(Lines(a.get(), *files_a), Lines(b.get(), *files_b));

  gen.seed = 10;
  auto files_c = GenerateZipfText(b.get(), "/t2", gen);
  ASSERT_TRUE(files_c.ok());
  EXPECT_NE(Lines(a.get(), *files_a), Lines(b.get(), *files_c));
}

TEST(TextGenTest, HitsSizeAndShapeTargets) {
  auto cluster = MakeTestCluster(3);
  TextGenOptions gen;
  gen.total_bytes = 64 << 10;
  gen.num_files = 4;
  gen.words_per_line = 7;
  auto files = GenerateZipfText(cluster.get(), "/t", gen);
  ASSERT_TRUE(files.ok());
  EXPECT_EQ(files->size(), 4u);
  uint64_t total = 0;
  for (const auto& f : *files) {
    auto info = cluster->client(0)->GetFileInfo(f);
    ASSERT_TRUE(info.ok());
    total += info->size;
  }
  EXPECT_GE(total, gen.total_bytes);
  EXPECT_LT(total, gen.total_bytes * 5 / 4);
  // Every line has exactly words_per_line tokens.
  for (const auto& line : Lines(cluster.get(), *files)) {
    int spaces = 0;
    for (char c : line) spaces += c == ' ';
    EXPECT_EQ(spaces, 6) << line;
  }
}

TEST(TextGenTest, WordFrequenciesAreSkewed) {
  auto cluster = MakeTestCluster(2);
  TextGenOptions gen;
  gen.total_bytes = 64 << 10;
  gen.vocabulary = 1000;
  auto files = GenerateZipfText(cluster.get(), "/t", gen);
  ASSERT_TRUE(files.ok());
  std::map<std::string, int> counts;
  for (const auto& line : Lines(cluster.get(), *files)) {
    size_t pos = 0;
    while (pos < line.size()) {
      size_t sp = line.find(' ', pos);
      if (sp == std::string::npos) sp = line.size();
      counts[line.substr(pos, sp - pos)]++;
      pos = sp + 1;
    }
  }
  // Zipf: the most common word dwarfs the median word.
  int max_count = 0;
  for (const auto& [w, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 50 * std::max<int>(1, counts.size() ? 1 : 0));
  EXPECT_GT(counts["w0"], counts.count("w500") ? counts["w500"] * 20 : 100);
}

TEST(IntGenTest, ValuesInRange) {
  auto cluster = MakeTestCluster(2);
  IntGenOptions gen;
  gen.count = 5000;
  gen.min_value = -50;
  gen.max_value = 50;
  auto files = GenerateRandomInts(cluster.get(), "/i", gen);
  ASSERT_TRUE(files.ok());
  auto lines = Lines(cluster.get(), *files);
  EXPECT_EQ(lines.size(), 5000u);
  std::set<int64_t> seen;
  for (const auto& line : lines) {
    int64_t v = std::stoll(line);
    EXPECT_GE(v, -50);
    EXPECT_LE(v, 50);
    seen.insert(v);
  }
  EXPECT_GT(seen.size(), 80u);  // covers most of the range
}

TEST(ListenGenTest, UserAndTrackSpacesRespected) {
  auto cluster = MakeTestCluster(2);
  ListenGenOptions gen;
  gen.count = 4000;
  gen.num_users = 10;
  gen.num_tracks = 20;
  auto files = GenerateListens(cluster.get(), "/l", gen);
  ASSERT_TRUE(files.ok());
  std::set<std::string> users, tracks;
  for (const auto& line : Lines(cluster.get(), *files)) {
    size_t sp = line.find(' ');
    ASSERT_NE(sp, std::string::npos);
    users.insert(line.substr(0, sp));
    tracks.insert(line.substr(sp + 1));
  }
  EXPECT_EQ(users.size(), 10u);
  EXPECT_EQ(tracks.size(), 20u);
}

TEST(KnnGenTest, TrainingAndExperimentalConsistent) {
  auto cluster = MakeTestCluster(2);
  KnnGenOptions gen;
  gen.training_size = 25;
  gen.experimental_count = 500;
  gen.min_value = 0;
  gen.max_value = 1000;
  auto data = GenerateKnnData(cluster.get(), "/k", gen);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->training.size(), 25u);
  for (int64_t t : data->training) {
    EXPECT_GE(t, 0);
    EXPECT_LE(t, 1000);
  }
  size_t exp_lines = 0;
  for (const auto& f : data->experimental_files) {
    exp_lines += Lines(cluster.get(), {f}).size();
  }
  EXPECT_GE(exp_lines, 500u - gen.num_files);
}

TEST(GeneratorPlacementTest, FilesSpreadAcrossWriterNodes) {
  // First replica is the writer's node; rotating writers spread the
  // data like a populated cluster.
  auto cluster = MakeTestCluster(4, /*block_bytes=*/8 << 10);
  TextGenOptions gen;
  gen.total_bytes = 64 << 10;
  gen.num_files = 4;
  auto files = GenerateZipfText(cluster.get(), "/t", gen);
  ASSERT_TRUE(files.ok());
  std::set<int> first_replicas;
  for (const auto& f : *files) {
    auto info = cluster->client(0)->GetFileInfo(f);
    ASSERT_TRUE(info.ok());
    first_replicas.insert(info->blocks.front().replicas.front());
  }
  EXPECT_GE(first_replicas.size(), 3u);
}

TEST(BlackScholesGenTest, OneWorkUnitPerMapper) {
  auto cluster = MakeTestCluster(2);
  BlackScholesGenOptions gen;
  gen.num_mappers = 5;
  gen.iterations_per_mapper = 123;
  auto files = GenerateBlackScholesUnits(cluster.get(), "/b", gen);
  ASSERT_TRUE(files.ok());
  EXPECT_EQ(files->size(), 5u);
  for (const auto& f : *files) {
    auto lines = Lines(cluster.get(), {f});
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find(" 123"), std::string::npos);
  }
}

}  // namespace
}  // namespace bmr::workload
