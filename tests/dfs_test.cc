// Tests for the DFS substrate: namespace, chunking, replication
// placement, ranged reads, failover.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "dfs/dfs.h"
#include "net/transport.h"
#include "transport_test_util.h"

namespace bmr::dfs {
namespace {

struct DfsFixture {
  explicit DfsFixture(int nodes = 5, int replication = 3,
                      uint64_t block = 1024)
      : transport(testutil::MakeTransport(nodes)),
        dfs(transport.get(), replication, block) {}
  std::unique_ptr<net::Transport> transport;
  Dfs dfs;
};

TEST(DfsTest, WriteReadRoundTrip) {
  DfsFixture fx;
  DfsClient client(&fx.dfs, 1);
  ASSERT_TRUE(client.WriteFile("/f", "hello dfs").ok());
  auto back = client.ReadAll("/f");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, "hello dfs");
}

TEST(DfsTest, CreateRejectsDuplicates) {
  DfsFixture fx;
  DfsClient client(&fx.dfs, 1);
  ASSERT_TRUE(client.WriteFile("/f", "x").ok());
  auto again = client.Create("/f");
  EXPECT_EQ(again.status().code(), StatusCode::kAlreadyExists);
}

TEST(DfsTest, LargeFileSplitsIntoBlocksWithReplication) {
  DfsFixture fx(/*nodes=*/5, /*replication=*/3, /*block=*/1024);
  DfsClient client(&fx.dfs, 2);
  std::string data(5000, 'a');
  for (size_t i = 0; i < data.size(); ++i) data[i] = 'a' + i % 26;
  ASSERT_TRUE(client.WriteFile("/big", data).ok());

  auto info = client.GetFileInfo("/big");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->size, 5000u);
  EXPECT_EQ(info->blocks.size(), 5u);  // ceil(5000/1024)
  for (const auto& block : info->blocks) {
    EXPECT_EQ(block.replicas.size(), 3u);
    // Write-local policy: first replica on the writer's node.
    EXPECT_EQ(block.replicas[0], 2);
  }
  auto back = client.ReadAll("/big");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST(DfsTest, PreadSpansBlockBoundaries) {
  DfsFixture fx(5, 2, 100);
  DfsClient client(&fx.dfs, 1);
  std::string data;
  for (int i = 0; i < 350; ++i) data += static_cast<char>('0' + i % 10);
  ASSERT_TRUE(client.WriteFile("/f", data).ok());
  ByteBuffer out;
  ASSERT_TRUE(client.Pread("/f", 95, 110, &out).ok());
  EXPECT_EQ(out.ToString(), data.substr(95, 110));
  // Read past EOF clips.
  out.Clear();
  ASSERT_TRUE(client.Pread("/f", 340, 100, &out).ok());
  EXPECT_EQ(out.ToString(), data.substr(340));
  // Read entirely past EOF returns empty.
  out.Clear();
  ASSERT_TRUE(client.Pread("/f", 1000, 10, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(DfsTest, ReadsFailOverWhenReplicaDies) {
  DfsFixture fx(5, 3, 512);
  DfsClient writer(&fx.dfs, 1);
  std::string data(2000, 'z');
  ASSERT_TRUE(writer.WriteFile("/f", data).ok());

  // Kill the writer's node — the first replica of every block.
  fx.dfs.KillDataNode(1);
  DfsClient reader(&fx.dfs, 3);
  auto back = reader.ReadAll("/f");
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, data);
}

TEST(DfsTest, DeadNodeExcludedFromNewPlacements) {
  DfsFixture fx(4, 2, 1024);
  fx.dfs.KillDataNode(2);
  DfsClient client(&fx.dfs, 0);
  ASSERT_TRUE(client.WriteFile("/f", std::string(3000, 'q')).ok());
  auto info = client.GetFileInfo("/f");
  ASSERT_TRUE(info.ok());
  for (const auto& block : info->blocks) {
    for (int r : block.replicas) EXPECT_NE(r, 2);
  }
}

TEST(DfsTest, NodeLossTriggersReReplication) {
  DfsFixture fx(/*nodes=*/6, /*replication=*/3, /*block=*/512);
  DfsClient writer(&fx.dfs, 1);
  std::string data(3000, 'r');
  ASSERT_TRUE(writer.WriteFile("/f", data).ok());

  fx.dfs.KillDataNode(1);  // first replica of every block
  EXPECT_GT(fx.dfs.blocks_re_replicated(), 0u);
  // Metadata no longer references the dead node, and replication is
  // restored to 3 live replicas.
  auto info = DfsClient(&fx.dfs, 2).GetFileInfo("/f");
  ASSERT_TRUE(info.ok());
  for (const auto& block : info->blocks) {
    EXPECT_EQ(block.replicas.size(), 3u);
    for (int r : block.replicas) EXPECT_NE(r, 1);
  }
}

TEST(DfsTest, SurvivesSequentialDoubleFailure) {
  // Replication 2: losing one replica is survivable only because the
  // repair pass restores the factor before the second loss.
  DfsFixture fx(/*nodes=*/5, /*replication=*/2, /*block=*/512);
  DfsClient writer(&fx.dfs, 1);
  std::string data(2000, 's');
  ASSERT_TRUE(writer.WriteFile("/f", data).ok());
  auto info = writer.GetFileInfo("/f");
  ASSERT_TRUE(info.ok());
  int first = info->blocks[0].replicas[0];
  int second = info->blocks[0].replicas[1];

  fx.dfs.KillDataNode(first);
  fx.dfs.KillDataNode(second);
  auto back = DfsClient(&fx.dfs, 0).ReadAll("/f");
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, data);
}

TEST(DfsTest, DeleteAndExists) {
  DfsFixture fx;
  DfsClient client(&fx.dfs, 1);
  EXPECT_FALSE(client.Exists("/f"));
  ASSERT_TRUE(client.WriteFile("/f", "x").ok());
  EXPECT_TRUE(client.Exists("/f"));
  ASSERT_TRUE(client.Delete("/f").ok());
  EXPECT_FALSE(client.Exists("/f"));
  EXPECT_EQ(client.Delete("/f").code(), StatusCode::kNotFound);
}

TEST(DfsTest, ReadMissingFileIsNotFound) {
  DfsFixture fx;
  DfsClient client(&fx.dfs, 1);
  EXPECT_EQ(client.ReadAll("/nope").status().code(), StatusCode::kNotFound);
}

TEST(DfsTest, StreamingWriterRollsBlocks) {
  DfsFixture fx(5, 2, 256);
  DfsClient client(&fx.dfs, 1);
  auto writer = client.Create("/stream");
  ASSERT_TRUE(writer.ok());
  std::string expected;
  Pcg32 rng(9);
  for (int i = 0; i < 50; ++i) {
    std::string chunk(rng.NextBounded(100) + 1, 'a' + i % 26);
    expected += chunk;
    ASSERT_TRUE((*writer)->Append(chunk).ok());
  }
  ASSERT_TRUE((*writer)->Close().ok());
  auto back = client.ReadAll("/stream");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, expected);
  auto info = client.GetFileInfo("/stream");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->blocks.size(),
            (expected.size() + 255) / 256);
}

TEST(DfsTest, ReplicationClampedToClusterSize) {
  DfsFixture fx(/*nodes=*/2, /*replication=*/3, 1024);
  DfsClient client(&fx.dfs, 1);
  ASSERT_TRUE(client.WriteFile("/f", "data").ok());
  auto info = client.GetFileInfo("/f");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->blocks[0].replicas.size(), 2u);
}

}  // namespace
}  // namespace bmr::dfs
