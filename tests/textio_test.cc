// Tests for the TSV output format, DFS listing, and input globs.
#include <gtest/gtest.h>

#include "apps/grep.h"
#include "apps/wordcount.h"
#include "common/rng.h"
#include "mr/input.h"
#include "mr/textio.h"
#include "test_util.h"
#include "workload/generators.h"

namespace bmr {
namespace {

using mr::JobRunner;
using mr::OutputFormat;
using mr::Record;
using testutil::MakeTestCluster;

TEST(TsvEscapeTest, RoundTripsSpecials) {
  for (const std::string& s :
       {std::string("plain"), std::string("has\ttab"), std::string("nl\n"),
        std::string("back\\slash"), std::string("\r\n\t\\"),
        std::string("\x01\x02\xff bytes", 9), std::string()}) {
    std::string escaped = mr::EscapeTsvField(Slice(s));
    EXPECT_EQ(escaped.find('\t'), std::string::npos);
    EXPECT_EQ(escaped.find('\n'), std::string::npos);
    std::string back;
    ASSERT_TRUE(mr::UnescapeTsvField(Slice(escaped), &back)) << escaped;
    EXPECT_EQ(back, s);
  }
}

TEST(TsvEscapeTest, RandomBytesRoundTrip) {
  Pcg32 rng(77);
  for (int i = 0; i < 200; ++i) {
    std::string s;
    int n = rng.NextBounded(64);
    for (int j = 0; j < n; ++j) {
      s.push_back(static_cast<char>(rng.NextBounded(256)));
    }
    std::string back;
    ASSERT_TRUE(mr::UnescapeTsvField(Slice(mr::EscapeTsvField(Slice(s))),
                                     &back));
    EXPECT_EQ(back, s);
  }
}

TEST(TsvEscapeTest, MalformedEscapesRejected) {
  std::string out;
  EXPECT_FALSE(mr::UnescapeTsvField("trailing\\", &out));
  EXPECT_FALSE(mr::UnescapeTsvField("\\q", &out));
  EXPECT_FALSE(mr::UnescapeTsvField("\\x1", &out));
  EXPECT_FALSE(mr::UnescapeTsvField("\\xzz", &out));
}

TEST(TsvRecordsTest, AppendParseRoundTrip) {
  ByteBuffer buf;
  mr::AppendTsvRecord(&buf, "key\twith\ttabs", "value\nwith\nnewlines");
  mr::AppendTsvRecord(&buf, "plain", "v");
  std::vector<Record> records;
  ASSERT_TRUE(mr::ParseTsvRecords(buf.AsSlice(), &records).ok());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].key, "key\twith\ttabs");
  EXPECT_EQ(records[0].value, "value\nwith\nnewlines");
  EXPECT_EQ(records[1].key, "plain");
}

TEST(TsvRecordsTest, MissingTabIsDataLoss) {
  std::vector<Record> records;
  EXPECT_EQ(mr::ParseTsvRecords("no-separator-here\n", &records).code(),
            StatusCode::kDataLoss);
}

TEST(TsvOutputTest, EngineWritesReadableTsvPartFiles) {
  auto cluster = MakeTestCluster(2);
  ASSERT_TRUE(
      cluster->client(1)->WriteFile("/in", "apple banana apple\n").ok());
  apps::AppOptions options;
  options.input_files = {"/in"};
  options.output_path = "/out";
  options.num_reducers = 1;
  options.barrierless = true;
  mr::JobSpec spec = apps::MakeWordCountJob(options);
  spec.output_format = OutputFormat::kTextTsv;

  JobRunner runner(cluster.get());
  auto result = runner.Run(spec);
  ASSERT_TRUE(result.ok()) << result.status;

  // Raw part file is line-oriented text.
  auto raw = cluster->client(0)->ReadAll(result.output_files[0]);
  ASSERT_TRUE(raw.ok());
  EXPECT_NE(raw->find("apple\t"), std::string::npos);

  // And parses back into the same records as the framed reader would.
  auto parsed = JobRunner::ReadAllOutput(cluster->client(0), result,
                                         OutputFormat::kTextTsv);
  ASSERT_TRUE(parsed.ok());
  auto as_map = testutil::AsMap(*parsed);
  EXPECT_EQ(apps::DecodeCount(Slice(as_map["apple"])), 2);
  EXPECT_EQ(apps::DecodeCount(Slice(as_map["banana"])), 1);
}

TEST(DfsListTest, PrefixListing) {
  auto cluster = MakeTestCluster(2);
  ASSERT_TRUE(cluster->client(1)->WriteFile("/logs/a.log", "x").ok());
  ASSERT_TRUE(cluster->client(1)->WriteFile("/logs/b.log", "y").ok());
  ASSERT_TRUE(cluster->client(1)->WriteFile("/other", "z").ok());
  auto listed = cluster->client(0)->ListFiles("/logs/");
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(*listed,
            (std::vector<std::string>{"/logs/a.log", "/logs/b.log"}));
  auto all = cluster->client(0)->ListFiles("");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 3u);
}

TEST(GlobInputTest, StarExpandsToMatchingFiles) {
  auto cluster = MakeTestCluster(2);
  ASSERT_TRUE(cluster->client(1)->WriteFile("/data/one", "needle a\n").ok());
  ASSERT_TRUE(cluster->client(1)->WriteFile("/data/two", "needle b\n").ok());
  ASSERT_TRUE(cluster->client(1)->WriteFile("/ignored", "needle c\n").ok());

  apps::AppOptions options;
  options.input_files = {"/data/*"};  // glob instead of explicit paths
  options.output_path = "/out";
  options.num_reducers = 1;
  options.barrierless = true;
  options.extra.Set("grep.pattern", "needle");
  JobRunner runner(cluster.get());
  auto result = runner.Run(apps::MakeGrepJob(options));
  ASSERT_TRUE(result.ok()) << result.status;
  auto out = JobRunner::ReadAllOutput(cluster->client(0), result);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u);  // /ignored excluded
}

TEST(GlobInputTest, EmptyGlobIsNotFound) {
  auto cluster = MakeTestCluster(2);
  auto expanded = mr::ExpandInputs(cluster->client(0), {"/nope/*"});
  EXPECT_EQ(expanded.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace bmr
