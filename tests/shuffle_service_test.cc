// ShuffleService unit tests: barrier and FIFO sinks fed by the same
// fetch machinery, RAII sink registration (the Fail/FIFO-close race
// fix), and job-scoped segment stores keeping concurrent jobs apart.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "faults/fault_injector.h"
#include "faults/fault_plan.h"
#include "mr/map_output.h"
#include "mr/segment_codec.h"
#include "mr/shuffle_service.h"
#include "net/transport.h"
#include "transport_test_util.h"

namespace bmr::mr {
namespace {

/// One single-partition segment holding the given records.
std::string MakeSegment(const std::vector<Record>& records) {
  MapOutputCollector collector(1, nullptr);
  for (const Record& r : records) collector.Emit(r.key, r.value);
  auto finished = collector.Finish(/*sort=*/false, nullptr, nullptr);
  EXPECT_TRUE(finished.ok());
  return finished->segments[0];
}

ShuffleService::RelaunchFn NoRelaunch() {
  return [](int, int) { FAIL() << "unexpected relaunch"; };
}

ShuffleService::ErrorFn NoError() {
  return [](const Status& st) { FAIL() << "unexpected error: " << st; };
}

/// Drain the sink's FIFO batch-wise until it closes, materializing the
/// entries (the batches — and the buffers they pin — die here).
std::multiset<std::pair<std::string, std::string>> DrainFifo(FifoSink& sink) {
  std::multiset<std::pair<std::string, std::string>> got;
  std::vector<RecordBatch> batches;
  while (sink.fifo().PopAll(&batches) > 0) {
    for (const RecordBatch& batch : batches) {
      for (const RecordBatch::Entry& entry : batch) {
        got.emplace(entry.key.ToString(), entry.value.ToString());
      }
    }
    batches.clear();
  }
  return got;
}

TEST(ShuffleServiceTest, FifoSinkReceivesEveryMapOutputThenCloses) {
  auto transport = testutil::MakeTransport(3);
  ShuffleService service(transport.get(), 3, /*num_map_tasks=*/2, /*job_id=*/7);

  service.Publish(0, 1, {MakeSegment({{"a", "1"}, {"b", "2"}})});
  service.Publish(1, 2, {MakeSegment({{"c", "3"}})});

  FifoSink sink(64);
  auto fetch = service.StartFetch(0, /*node=*/2, &sink, NoRelaunch(),
                                  NoError());
  // The last fetcher calls AllDelivered => the FIFO closes by itself,
  // so the batch drain terminates without any external signal.
  auto got = DrainFifo(sink);
  fetch->Join();
  EXPECT_GT(fetch->bytes_fetched(), 0u);

  std::multiset<std::pair<std::string, std::string>> want = {
      {"a", "1"}, {"b", "2"}, {"c", "3"}};
  EXPECT_EQ(got, want);
}

TEST(ShuffleServiceTest, BarrierSinkCollectsPerMapperRuns) {
  auto transport = testutil::MakeTransport(3);
  ShuffleService service(transport.get(), 3, /*num_map_tasks=*/2, /*job_id=*/1);

  service.Publish(0, 1, {MakeSegment({{"x", "0"}})});
  service.Publish(1, 1, {MakeSegment({{"y", "1"}, {"z", "2"}})});

  BarrierSink sink(2);
  auto fetch = service.StartFetch(0, /*node=*/2, &sink, NoRelaunch(),
                                  NoError());
  fetch->Join();  // the barrier: all runs present after this

  ASSERT_EQ(sink.runs().size(), 2u);
  ASSERT_EQ(sink.runs()[0].size(), 1u);
  EXPECT_EQ(sink.runs()[0][0].key.ToString(), "x");
  ASSERT_EQ(sink.runs()[1].size(), 2u);
  EXPECT_EQ(sink.runs()[1][0].key.ToString(), "y");
}

TEST(ShuffleServiceTest, CancelAfterFetchDestructionTouchesNoDeadSink) {
  // Regression test for the Fail/FIFO-close race: a reducer that
  // returns early destroys its sink and Fetch; a later job-level
  // Cancel must not reach the dead sink.  (The RAII Fetch destructor
  // unregisters the sink — ASan would flag the old dangling pointer.)
  auto transport = testutil::MakeTransport(3);
  ShuffleService service(transport.get(), 3, /*num_map_tasks=*/1, /*job_id=*/2);
  service.Publish(0, 1, {MakeSegment({{"k", "v"}})});
  {
    FifoSink sink(4);
    auto fetch = service.StartFetch(0, /*node=*/2, &sink, NoRelaunch(),
                                    NoError());
    std::vector<RecordBatch> batches;
    while (sink.fifo().PopAll(&batches) > 0) batches.clear();
    // Early return path: fetch and sink die here, without Cancel.
  }
  service.Cancel();  // must be a no-op on the unregistered sink
}

TEST(ShuffleServiceTest, TransientFetchFailuresAreRetriedUntilSuccess) {
  // An injected fetch timeout is transient: the fetcher must back off
  // and retry rather than surface the error, and count its retries.
  auto transport = testutil::MakeTransport(3);
  faults::FaultEvent timeout;
  timeout.kind = faults::FaultKind::kFetchTimeout;
  timeout.count = 2;
  faults::FaultPlan plan;
  plan.events = {timeout};
  faults::FaultInjector injector(plan);

  ShuffleOptions options;
  options.injector = &injector;
  options.max_fetch_retries = 4;
  options.backoff_ms = 0.1;
  options.backoff_max_ms = 0.5;
  ShuffleService service(transport.get(), 3, /*num_map_tasks=*/1, /*job_id=*/5,
                         options);
  service.Publish(0, 1, {MakeSegment({{"k", "v"}})});

  FifoSink sink(4);
  auto fetch = service.StartFetch(0, /*node=*/2, &sink, NoRelaunch(),
                                  NoError());
  auto got = DrainFifo(sink);
  fetch->Join();

  EXPECT_EQ(got, (std::multiset<std::pair<std::string, std::string>>{
                     {"k", "v"}}));
  EXPECT_EQ(fetch->retries(), 2u);
  EXPECT_FALSE(fetch->tainted());
  EXPECT_EQ(injector.injected(faults::FaultKind::kFetchTimeout), 2u);
}

TEST(ShuffleServiceTest, ExhaustedRetriesSurfaceWhenFailFastIsSet) {
  // With fail_on_fetch_error (the chaos harness's "teeth" switch) a
  // persistent failure reaches the error callback instead of the
  // lost-map recovery path.
  auto transport = testutil::MakeTransport(3);
  faults::FaultEvent timeout;
  timeout.kind = faults::FaultKind::kFetchTimeout;
  timeout.count = 1;
  faults::FaultPlan plan;
  plan.events = {timeout};
  faults::FaultInjector injector(plan);

  ShuffleOptions options;
  options.injector = &injector;
  options.fail_on_fetch_error = true;
  ShuffleService service(transport.get(), 3, /*num_map_tasks=*/1, /*job_id=*/6,
                         options);
  service.Publish(0, 1, {MakeSegment({{"k", "v"}})});

  Status seen = Status::Ok();
  FifoSink sink(4);
  auto fetch = service.StartFetch(
      0, /*node=*/2, &sink, NoRelaunch(),
      [&seen](const Status& st) { seen = st; });
  fetch->Join();
  EXPECT_FALSE(seen.ok());
  EXPECT_EQ(fetch->retries(), 0u);
}

TEST(ShuffleServiceTest, ConcurrentJobsKeepSeparateSegmentStores) {
  auto transport = testutil::MakeTransport(3);
  ShuffleService job_a(transport.get(), 3, 1, /*job_id=*/10);
  ShuffleService job_b(transport.get(), 3, 1, /*job_id=*/11);

  // Same (map_task, partition, node) coordinates in both jobs.
  job_a.Publish(0, 1, {"segment-of-job-a"});
  job_b.Publish(0, 1, {"segment-of-job-b"});
  job_a.DrainPublishes();
  job_b.DrainPublishes();

  // Publish encodes into the block container: fetch the wire bytes and
  // decode back to the raw payload to compare.
  std::string segment;
  std::shared_ptr<const std::string> raw;
  ASSERT_TRUE(
      FetchSegment(transport.get(), 1, 2, 0, 0, &segment, /*job_id=*/10).ok());
  ASSERT_TRUE(DecodeShuffleSegment(Slice(segment), &raw).ok());
  EXPECT_EQ(*raw, "segment-of-job-a");
  ASSERT_TRUE(
      FetchSegment(transport.get(), 1, 2, 0, 0, &segment, /*job_id=*/11).ok());
  ASSERT_TRUE(DecodeShuffleSegment(Slice(segment), &raw).ok());
  EXPECT_EQ(*raw, "segment-of-job-b");
}

TEST(ShuffleServiceTest, DestructionUnregistersTheJobsFetchHandler) {
  auto transport = testutil::MakeTransport(2);
  {
    ShuffleService service(transport.get(), 2, 1, /*job_id=*/3);
    service.Publish(0, 1, {"bytes"});
    service.DrainPublishes();
    std::string segment;
    ASSERT_TRUE(FetchSegment(transport.get(), 1, 0, 0, 0, &segment, 3).ok());
  }
  // The job is gone: its method name no longer resolves.
  std::string segment;
  EXPECT_FALSE(FetchSegment(transport.get(), 1, 0, 0, 0, &segment, 3).ok());
}

}  // namespace
}  // namespace bmr::mr
