// Multi-tenant job service: pool-tree policy units, admission control
// fast-fail, fair-share scheduling across tenants, preemption at the
// service queue bound, shutdown cancellation, and the per-pool
// bmr_service_* metric families through the Prometheus exposition.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/wordcount.h"
#include "concurrency/thread_pool.h"
#include "obs/metric_names.h"
#include "obs/validate.h"
#include "service/job_service.h"
#include "service/pool_tree.h"
#include "test_util.h"
#include "workload/generators.h"

namespace bmr {
namespace {

using service::JobOutcome;
using service::JobService;
using service::JobTicket;
using service::PoolConfig;
using service::PoolTree;
using testutil::MakeTestCluster;

PoolConfig MakePool(const std::string& name, double weight,
                    const std::string& parent = "root") {
  PoolConfig config;
  config.name = name;
  config.parent = parent;
  config.weight = weight;
  return config;
}

// ---- PoolTree policy units -------------------------------------------

TEST(PoolTreeTest, AddPoolValidatesConfigs) {
  PoolTree tree;
  ASSERT_TRUE(tree.AddPool(MakePool("a", 1.0)).ok());
  EXPECT_EQ(tree.AddPool(MakePool("a", 1.0)).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(tree.AddPool(MakePool("", 1.0)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(tree.AddPool(MakePool("b", -1.0)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(tree.AddPool(MakePool("c", 1.0, "nope")).code(),
            StatusCode::kNotFound);
  // A pool holding queued jobs must stay a leaf.
  ASSERT_TRUE(tree.Enqueue("a", 1).ok());
  EXPECT_EQ(tree.AddPool(MakePool("child", 1.0, "a")).code(),
            StatusCode::kFailedPrecondition);
}

TEST(PoolTreeTest, EnqueueFastFailsOnBoundsAndShape) {
  PoolTree tree;
  PoolConfig tiny = MakePool("tiny", 1.0);
  tiny.queue_limit = 2;
  ASSERT_TRUE(tree.AddPool(tiny).ok());
  ASSERT_TRUE(tree.AddPool(MakePool("leaf", 1.0, "tiny")).ok());

  EXPECT_EQ(tree.Enqueue("nope", 1).code(), StatusCode::kNotFound);
  // "tiny" has a child now: not a leaf.
  EXPECT_EQ(tree.Enqueue("tiny", 1).code(), StatusCode::kFailedPrecondition);
  PoolConfig bounded = MakePool("bounded", 1.0);
  bounded.queue_limit = 2;
  ASSERT_TRUE(tree.AddPool(bounded).ok());
  ASSERT_TRUE(tree.Enqueue("bounded", 1).ok());
  ASSERT_TRUE(tree.Enqueue("bounded", 2).ok());
  EXPECT_EQ(tree.Enqueue("bounded", 3).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(tree.queued("bounded"), 2u);
}

TEST(PoolTreeTest, EqualWeightPoolsRoundRobinOnOneSlot) {
  PoolTree tree;
  ASSERT_TRUE(tree.AddPool(MakePool("a", 1.0)).ok());
  ASSERT_TRUE(tree.AddPool(MakePool("b", 1.0)).ok());
  for (uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(tree.Enqueue("a", 10 + i).ok());
    ASSERT_TRUE(tree.Enqueue("b", 20 + i).ok());
  }
  // Serial slot: start, finish, start... must alternate pools (the
  // started/weight history tie-break; without it "a" would win every
  // running/weight tie and drain first).
  std::vector<std::string> order;
  std::string pool;
  uint64_t job = 0;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(tree.StartNext(&pool, &job));
    order.push_back(pool);
    tree.FinishJob(pool);
  }
  EXPECT_EQ(order,
            (std::vector<std::string>{"a", "b", "a", "b", "a", "b"}));
}

TEST(PoolTreeTest, WeightsSkewTheShare) {
  PoolTree tree;
  ASSERT_TRUE(tree.AddPool(MakePool("heavy", 3.0)).ok());
  ASSERT_TRUE(tree.AddPool(MakePool("light", 1.0)).ok());
  for (uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(tree.Enqueue("heavy", 100 + i).ok());
    ASSERT_TRUE(tree.Enqueue("light", 200 + i).ok());
  }
  // Fill 4 concurrent slots: the 3:1 weights should hold 3 heavy + 1
  // light.
  std::string pool;
  uint64_t job = 0;
  int heavy = 0, light = 0;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(tree.StartNext(&pool, &job));
    (pool == "heavy" ? heavy : light)++;
  }
  EXPECT_EQ(heavy, 3);
  EXPECT_EQ(light, 1);
}

TEST(PoolTreeTest, MinShareDeficitBeatsFairShare) {
  PoolTree tree;
  PoolConfig guaranteed = MakePool("guaranteed", 0.5);
  guaranteed.min_share_slots = 2;
  ASSERT_TRUE(tree.AddPool(guaranteed).ok());
  ASSERT_TRUE(tree.AddPool(MakePool("besteffort", 10.0)).ok());
  for (uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(tree.Enqueue("guaranteed", i).ok());
    ASSERT_TRUE(tree.Enqueue("besteffort", 10 + i).ok());
  }
  // Despite the 20x weight disadvantage, "guaranteed" takes the first
  // two slots: min_share is a guarantee, not a preference.
  std::string pool;
  uint64_t job = 0;
  ASSERT_TRUE(tree.StartNext(&pool, &job));
  EXPECT_EQ(pool, "guaranteed");
  ASSERT_TRUE(tree.StartNext(&pool, &job));
  EXPECT_EQ(pool, "guaranteed");
  // Guarantee met: weight order takes over.
  ASSERT_TRUE(tree.StartNext(&pool, &job));
  EXPECT_EQ(pool, "besteffort");
}

TEST(PoolTreeTest, MaxShareCapsAPoolEvenWithDemand) {
  PoolTree tree;
  PoolConfig capped = MakePool("capped", 100.0);
  capped.max_share_slots = 1;
  ASSERT_TRUE(tree.AddPool(capped).ok());
  ASSERT_TRUE(tree.AddPool(MakePool("other", 1.0)).ok());
  for (uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(tree.Enqueue("capped", i).ok());
    ASSERT_TRUE(tree.Enqueue("other", 10 + i).ok());
  }
  std::string pool;
  uint64_t job = 0;
  ASSERT_TRUE(tree.StartNext(&pool, &job));
  EXPECT_EQ(pool, "capped");
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(tree.StartNext(&pool, &job));
    EXPECT_EQ(pool, "other") << "capped pool exceeded max_share";
  }
  // Only capped demand remains, and it is at its cap: nothing starts.
  EXPECT_FALSE(tree.StartNext(&pool, &job));
  tree.FinishJob("capped");
  EXPECT_TRUE(tree.StartNext(&pool, &job));
  EXPECT_EQ(pool, "capped");
}

TEST(PoolTreeTest, ZeroWeightPoolOnlyGetsLeftovers) {
  PoolTree tree;
  ASSERT_TRUE(tree.AddPool(MakePool("free", 0.0)).ok());
  ASSERT_TRUE(tree.AddPool(MakePool("paid", 1.0)).ok());
  for (uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(tree.Enqueue("free", i).ok());
  }
  ASSERT_TRUE(tree.Enqueue("paid", 100).ok());
  std::string pool;
  uint64_t job = 0;
  // The flood of zero-weight demand never outranks the paid pool.
  ASSERT_TRUE(tree.StartNext(&pool, &job));
  EXPECT_EQ(pool, "paid");
  EXPECT_EQ(job, 100u);
  // With no positive-weight demand left, leftovers flow to "free".
  ASSERT_TRUE(tree.StartNext(&pool, &job));
  EXPECT_EQ(pool, "free");
}

TEST(PoolTreeTest, HierarchySharesAtEveryLevel) {
  PoolTree tree;
  ASSERT_TRUE(tree.AddPool(MakePool("org-a", 1.0)).ok());
  ASSERT_TRUE(tree.AddPool(MakePool("org-b", 1.0)).ok());
  ASSERT_TRUE(tree.AddPool(MakePool("a-batch", 1.0, "org-a")).ok());
  ASSERT_TRUE(tree.AddPool(MakePool("a-adhoc", 1.0, "org-a")).ok());
  ASSERT_TRUE(tree.AddPool(MakePool("b-batch", 1.0, "org-b")).ok());
  for (uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(tree.Enqueue("a-batch", i).ok());
    ASSERT_TRUE(tree.Enqueue("a-adhoc", 10 + i).ok());
    ASSERT_TRUE(tree.Enqueue("b-batch", 20 + i).ok());
  }
  // Four slots: orgs split 2/2 (not 3/1 by leaf count — fairness is
  // hierarchical), and org-a's two slots split across its leaves.
  std::string pool;
  uint64_t job = 0;
  int org_a = 0, org_b = 0;
  bool a_batch = false, a_adhoc = false;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(tree.StartNext(&pool, &job));
    if (pool == "b-batch") {
      ++org_b;
    } else {
      ++org_a;
      (pool == "a-batch" ? a_batch : a_adhoc) = true;
    }
  }
  EXPECT_EQ(org_a, 2);
  EXPECT_EQ(org_b, 2);
  EXPECT_TRUE(a_batch);
  EXPECT_TRUE(a_adhoc);
}

TEST(PoolTreeTest, PreemptionEvictsNewestOfMostOverSharePool) {
  PoolTree tree;
  ASSERT_TRUE(tree.AddPool(MakePool("hog", 1.0)).ok());
  ASSERT_TRUE(tree.AddPool(MakePool("modest", 1.0)).ok());
  ASSERT_TRUE(tree.AddPool(MakePool("starved", 1.0)).ok());
  for (uint64_t i = 0; i < 5; ++i) ASSERT_TRUE(tree.Enqueue("hog", i).ok());
  ASSERT_TRUE(tree.Enqueue("modest", 100).ok());

  std::string victim_pool;
  uint64_t victim_job = 0;
  // starved would hold 1 job (share 1); hog holds 5 (share 5): evict
  // hog's NEWEST admission (LIFO within the victim pool).
  ASSERT_TRUE(tree.PickPreemptionVictim("starved", &victim_pool,
                                        &victim_job));
  EXPECT_EQ(victim_pool, "hog");
  EXPECT_EQ(victim_job, 4u);
  EXPECT_EQ(tree.queued("hog"), 4u);

  // Equal-share peers never preempt each other: modest (1 queued) vs
  // another pool that would also hold 1.
  PoolTree flat;
  ASSERT_TRUE(flat.AddPool(MakePool("x", 1.0)).ok());
  ASSERT_TRUE(flat.AddPool(MakePool("y", 1.0)).ok());
  ASSERT_TRUE(flat.Enqueue("x", 1).ok());
  EXPECT_FALSE(flat.PickPreemptionVictim("y", &victim_pool, &victim_job));
}

// ---- JobService integration ------------------------------------------

/// A mapper that parks every Map call on a shared latch: the test owns
/// when the job's map phase is allowed to proceed, which holds the
/// service's runner slot (and therefore its queues) steady while the
/// test asserts admission behaviour.
class GateMapper final : public mr::Mapper {
 public:
  explicit GateMapper(CountdownLatch* gate) : gate_(gate) {}
  void Map(Slice key, Slice value, mr::MapContext* ctx) override {
    (void)key;
    gate_->Wait();
    ctx->Emit(value, "1");
  }

 private:
  CountdownLatch* gate_;
};

class IdentityReducer final : public mr::Reducer {
 public:
  void Reduce(Slice key, mr::ValuesIterator* values,
              mr::ReduceContext* ctx) override {
    Slice value;
    while (values->Next(&value)) ctx->Emit(key, value);
  }
};

struct ServiceFixture {
  std::unique_ptr<mr::ClusterContext> cluster;
  std::vector<std::string> input_files;

  ServiceFixture() {
    cluster = MakeTestCluster(2);
    workload::TextGenOptions gen;
    gen.total_bytes = 2 << 10;
    gen.num_files = 1;
    gen.vocabulary = 50;
    gen.seed = 7;
    auto files = workload::GenerateZipfText(cluster.get(), "/in", gen);
    EXPECT_TRUE(files.ok()) << files.status();
    if (files.ok()) input_files = *files;
  }

  /// Tiny wordcount job; `tag` keeps output paths distinct.
  mr::JobSpec WordCount(const std::string& tag) const {
    apps::AppOptions options;
    options.input_files = input_files;
    options.num_reducers = 1;
    options.output_path = "/out/" + tag;
    return apps::MakeWordCountJob(options);
  }

  /// Job whose map phase blocks until `gate` counts down.
  mr::JobSpec GateJob(CountdownLatch* gate, const std::string& tag) const {
    mr::JobSpec spec;
    spec.name = "gate-" + tag;
    spec.input_files = input_files;
    spec.num_reducers = 1;
    spec.output_path = "/out/" + tag;
    spec.mapper = [gate] { return std::make_unique<GateMapper>(gate); };
    spec.reducer = [] { return std::make_unique<IdentityReducer>(); };
    return spec;
  }
};

TEST(JobServiceTest, RunsJobsAndReportsOutcomes) {
  ServiceFixture fx;
  JobService svc(fx.cluster.get());
  ASSERT_TRUE(svc.AddPool(MakePool("etl", 1.0)).ok());

  auto ticket = svc.Submit("etl", fx.WordCount("basic"));
  ASSERT_TRUE(ticket.ok()) << ticket.status();
  JobOutcome outcome = svc.Wait(*ticket);
  ASSERT_TRUE(outcome.status.ok()) << outcome.status;
  EXPECT_TRUE(outcome.result.ok());
  EXPECT_GT(outcome.result.counters.Get(mr::kCtrMapInputRecords), 0u);
  EXPECT_GT(outcome.latency_seconds, 0.0);

  EXPECT_EQ(svc.Submit("nope", fx.WordCount("x")).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(svc.CompletionOrder(),
            (std::vector<std::string>{"etl"}));
}

TEST(JobServiceTest, AdmissionRejectsInsteadOfHangingWhenPoolQueueFull) {
  ServiceFixture fx;
  JobService::Options options;
  options.max_running_jobs = 1;
  JobService svc(fx.cluster.get(), options);
  PoolConfig bounded = MakePool("bounded", 1.0);
  bounded.queue_limit = 2;
  ASSERT_TRUE(svc.AddPool(MakePool("gate", 1.0)).ok());
  ASSERT_TRUE(svc.AddPool(bounded).ok());

  CountdownLatch gate(1);
  auto gate_ticket = svc.Submit("gate", fx.GateJob(&gate, "gate-adm"));
  ASSERT_TRUE(gate_ticket.ok()) << gate_ticket.status();

  // The runner slot is held by the gate job: these queue...
  auto q1 = svc.Submit("bounded", fx.WordCount("adm-1"));
  auto q2 = svc.Submit("bounded", fx.WordCount("adm-2"));
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  // ...and the queue bound fast-fails the third (Submit returns — the
  // whole point is that a saturated service answers instead of
  // blocking the submitter).
  auto q3 = svc.Submit("bounded", fx.WordCount("adm-3"));
  ASSERT_FALSE(q3.ok());
  EXPECT_EQ(q3.status().code(), StatusCode::kResourceExhausted);

  gate.CountDown();
  EXPECT_TRUE(svc.Wait(*gate_ticket).status.ok());
  EXPECT_TRUE(svc.Wait(*q1).status.ok());
  EXPECT_TRUE(svc.Wait(*q2).status.ok());

  obs::MetricsSnapshot snap = svc.Metrics();
  EXPECT_EQ(snap.counters.at(
                "bmr_service_jobs_rejected_total{pool=\"bounded\"}"),
            1u);
  EXPECT_EQ(snap.counters.at(
                "bmr_service_jobs_completed_total{pool=\"bounded\"}"),
            2u);
}

TEST(JobServiceTest, EqualWeightTenantsSplitThroughputUnderSaturation) {
  ServiceFixture fx;
  JobService::Options options;
  options.max_running_jobs = 1;  // serial: completion order == dispatch order
  JobService svc(fx.cluster.get(), options);
  ASSERT_TRUE(svc.AddPool(MakePool("gate", 1.0)).ok());
  ASSERT_TRUE(svc.AddPool(MakePool("tenant-a", 1.0)).ok());
  ASSERT_TRUE(svc.AddPool(MakePool("tenant-b", 1.0)).ok());

  // Saturate while the gate job holds the slot, so every fairness
  // decision happens with both tenants' queues full.
  CountdownLatch gate(1);
  auto gate_ticket = svc.Submit("gate", fx.GateJob(&gate, "gate-fair"));
  ASSERT_TRUE(gate_ticket.ok()) << gate_ticket.status();
  std::vector<JobTicket> tickets;
  for (int i = 0; i < 4; ++i) {
    auto a = svc.Submit("tenant-a", fx.WordCount("fair-a" + std::to_string(i)));
    ASSERT_TRUE(a.ok()) << a.status();
    tickets.push_back(*a);
  }
  for (int i = 0; i < 4; ++i) {
    auto b = svc.Submit("tenant-b", fx.WordCount("fair-b" + std::to_string(i)));
    ASSERT_TRUE(b.ok()) << b.status();
    tickets.push_back(*b);
  }
  gate.CountDown();
  EXPECT_TRUE(svc.Wait(*gate_ticket).status.ok());
  for (const JobTicket& t : tickets) {
    EXPECT_TRUE(svc.Wait(t).status.ok());
  }

  // Every prefix of the completion stream is balanced: each tenant
  // gets 50% of completed-job throughput (the acceptance bar is
  // 50%±10%; the serial schedule meets it exactly).
  std::vector<std::string> order = svc.CompletionOrder();
  ASSERT_EQ(order.size(), 9u);
  EXPECT_EQ(order[0], "gate");
  int a_done = 0, b_done = 0;
  for (size_t i = 1; i < order.size(); ++i) {
    (order[i] == "tenant-a" ? a_done : b_done)++;
    EXPECT_LE(std::abs(a_done - b_done), 1)
        << "unfair completion prefix at " << i;
  }
  EXPECT_EQ(a_done, 4);
  EXPECT_EQ(b_done, 4);
}

TEST(JobServiceTest, ZeroWeightTenantCannotStarvePaidPools) {
  ServiceFixture fx;
  JobService::Options options;
  options.max_running_jobs = 1;
  JobService svc(fx.cluster.get(), options);
  ASSERT_TRUE(svc.AddPool(MakePool("gate", 1.0)).ok());
  ASSERT_TRUE(svc.AddPool(MakePool("free", 0.0)).ok());
  ASSERT_TRUE(svc.AddPool(MakePool("paid", 1.0)).ok());

  CountdownLatch gate(1);
  auto gate_ticket = svc.Submit("gate", fx.GateJob(&gate, "gate-zero"));
  ASSERT_TRUE(gate_ticket.ok()) << gate_ticket.status();
  // The zero-weight tenant floods FIRST; the paid tenant arrives last.
  std::vector<JobTicket> tickets;
  for (int i = 0; i < 4; ++i) {
    auto t = svc.Submit("free", fx.WordCount("zero-f" + std::to_string(i)));
    ASSERT_TRUE(t.ok()) << t.status();
    tickets.push_back(*t);
  }
  for (int i = 0; i < 2; ++i) {
    auto t = svc.Submit("paid", fx.WordCount("zero-p" + std::to_string(i)));
    ASSERT_TRUE(t.ok()) << t.status();
    tickets.push_back(*t);
  }
  gate.CountDown();
  for (const JobTicket& t : tickets) {
    EXPECT_TRUE(svc.Wait(t).status.ok());
  }

  // All paid work completes before ANY of the earlier-submitted
  // zero-weight flood...
  std::vector<std::string> order = svc.CompletionOrder();
  ASSERT_EQ(order.size(), 7u);
  EXPECT_EQ(order[1], "paid");
  EXPECT_EQ(order[2], "paid");
  // ...and the flood still runs to completion on leftover capacity
  // (leftover-only, not denial of service).
  for (size_t i = 3; i < order.size(); ++i) EXPECT_EQ(order[i], "free");
}

TEST(JobServiceTest, PreemptionEvictsOverShareQueuedWorkAtServiceBound) {
  ServiceFixture fx;
  JobService::Options options;
  options.max_running_jobs = 1;
  options.max_queued_jobs = 4;
  JobService svc(fx.cluster.get(), options);
  ASSERT_TRUE(svc.AddPool(MakePool("gate", 1.0)).ok());
  ASSERT_TRUE(svc.AddPool(MakePool("hog", 1.0)).ok());
  ASSERT_TRUE(svc.AddPool(MakePool("starved", 1.0)).ok());

  CountdownLatch gate(1);
  auto gate_ticket = svc.Submit("gate", fx.GateJob(&gate, "gate-pre"));
  ASSERT_TRUE(gate_ticket.ok()) << gate_ticket.status();

  // The hog fills the whole service queue.
  std::vector<JobTicket> hog_tickets;
  for (int i = 0; i < 4; ++i) {
    auto t = svc.Submit("hog", fx.WordCount("pre-h" + std::to_string(i)));
    ASSERT_TRUE(t.ok()) << t.status();
    hog_tickets.push_back(*t);
  }

  // The starved pool's submission is admitted anyway: the hog's NEWEST
  // queued job is preempted to make room.
  auto starved = svc.Submit("starved", fx.WordCount("pre-s"));
  ASSERT_TRUE(starved.ok()) << starved.status();
  JobOutcome evicted = svc.Wait(hog_tickets.back());
  EXPECT_EQ(evicted.status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(evicted.status.message().find("preempted"), std::string::npos);

  // Preemption continues while the hog stays strictly over-share: the
  // second starved submission (would hold 2) still outranks the hog's
  // 3 queued, so another hog job is evicted.  The third sees hog at 2
  // vs its own prospective 3 — no longer a victim — and is rejected
  // (never hangs).
  auto starved2 = svc.Submit("starved", fx.WordCount("pre-s2"));
  ASSERT_TRUE(starved2.ok()) << starved2.status();
  JobOutcome evicted2 = svc.Wait(hog_tickets[2]);
  EXPECT_EQ(evicted2.status.code(), StatusCode::kResourceExhausted);
  auto starved3 = svc.Submit("starved", fx.WordCount("pre-s3"));
  ASSERT_FALSE(starved3.ok());
  EXPECT_EQ(starved3.status().code(), StatusCode::kResourceExhausted);

  gate.CountDown();
  EXPECT_TRUE(svc.Wait(*gate_ticket).status.ok());
  EXPECT_TRUE(svc.Wait(*starved).status.ok());
  EXPECT_TRUE(svc.Wait(*starved2).status.ok());
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_TRUE(svc.Wait(hog_tickets[i]).status.ok());
  }

  obs::MetricsSnapshot snap = svc.Metrics();
  EXPECT_EQ(
      snap.counters.at("bmr_service_jobs_preempted_total{pool=\"hog\"}"),
      2u);
  EXPECT_EQ(snap.counters.at(
                "bmr_service_jobs_rejected_total{pool=\"starved\"}"),
            1u);
}

TEST(JobServiceTest, ShutdownCancelsQueuedJobsAndDrainsRunningOnes) {
  ServiceFixture fx;
  JobService::Options options;
  options.max_running_jobs = 1;
  JobService svc(fx.cluster.get(), options);
  ASSERT_TRUE(svc.AddPool(MakePool("gate", 1.0)).ok());
  ASSERT_TRUE(svc.AddPool(MakePool("work", 1.0)).ok());

  CountdownLatch gate(1);
  auto gate_ticket = svc.Submit("gate", fx.GateJob(&gate, "gate-shut"));
  ASSERT_TRUE(gate_ticket.ok()) << gate_ticket.status();
  auto queued1 = svc.Submit("work", fx.WordCount("shut-1"));
  auto queued2 = svc.Submit("work", fx.WordCount("shut-2"));
  ASSERT_TRUE(queued1.ok());
  ASSERT_TRUE(queued2.ok());

  // Shutdown blocks on the running gate job, so it runs on a side
  // thread; the queued jobs must turn terminal (Cancelled) while the
  // gate job is STILL running — cancellation must not wait for drain.
  std::thread shutdown_thread([&svc] { svc.Shutdown(); });
  EXPECT_EQ(svc.Wait(*queued1).status.code(), StatusCode::kCancelled);
  EXPECT_EQ(svc.Wait(*queued2).status.code(), StatusCode::kCancelled);
  gate.CountDown();
  shutdown_thread.join();
  EXPECT_TRUE(svc.Wait(*gate_ticket).status.ok());

  // Admission after shutdown fast-fails.
  EXPECT_EQ(svc.Submit("work", fx.WordCount("shut-3")).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(JobServiceTest, PrometheusExportCarriesPerPoolSeries) {
  ServiceFixture fx;
  JobService svc(fx.cluster.get());
  ASSERT_TRUE(svc.AddPool(MakePool("alpha", 1.0)).ok());
  ASSERT_TRUE(svc.AddPool(MakePool("beta", 1.0)).ok());

  std::vector<JobTicket> tickets;
  for (int i = 0; i < 2; ++i) {
    auto a = svc.Submit("alpha", fx.WordCount("prom-a" + std::to_string(i)));
    ASSERT_TRUE(a.ok()) << a.status();
    tickets.push_back(*a);
  }
  auto b = svc.Submit("beta", fx.WordCount("prom-b"));
  ASSERT_TRUE(b.ok()) << b.status();
  tickets.push_back(*b);
  for (const JobTicket& t : tickets) {
    ASSERT_TRUE(svc.Wait(t).status.ok());
  }

  std::string text = svc.PrometheusMetrics();
  Status valid = obs::ValidatePrometheusText(text);
  EXPECT_TRUE(valid.ok()) << valid << "\n" << text;
  EXPECT_NE(
      text.find("bmr_service_jobs_completed_total{pool=\"alpha\"} 2"),
      std::string::npos)
      << text;
  EXPECT_NE(
      text.find("bmr_service_jobs_completed_total{pool=\"beta\"} 1"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("bmr_service_job_latency_us_bucket{pool=\"alpha\","),
            std::string::npos)
      << text;
  // One TYPE line per family, bare family name (no labels).
  EXPECT_NE(text.find("# TYPE bmr_service_jobs_completed_total counter"),
            std::string::npos)
      << text;
  EXPECT_EQ(text.find("# TYPE bmr_service_jobs_completed_total{"),
            std::string::npos)
      << text;
}

}  // namespace
}  // namespace bmr
