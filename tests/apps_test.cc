// Per-application tests: each of the seven Reduce classes, in both
// modes, checked against ground truth and against each other.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <map>
#include <set>

#include "apps/blackscholes.h"
#include "apps/genetic.h"
#include "apps/grep.h"
#include "apps/knn.h"
#include "apps/lastfm.h"
#include "apps/registry.h"
#include "apps/sort.h"
#include "apps/wordcount.h"
#include "common/serde.h"
#include "test_util.h"
#include "workload/generators.h"

namespace bmr {
namespace {

using mr::JobResult;
using mr::JobRunner;
using mr::Record;
using testutil::MakeTestCluster;

JobResult RunApp(mr::ClusterContext* cluster, mr::JobSpec spec) {
  JobRunner runner(cluster);
  return runner.Run(std::move(spec));
}

TEST(GrepAppTest, BothModesFindExactlyTheMatchingLines) {
  auto cluster = MakeTestCluster(3);
  std::string data;
  int expected_matches = 0;
  for (int i = 0; i < 500; ++i) {
    if (i % 7 == 0) {
      data += "needle line " + std::to_string(i) + "\n";
      ++expected_matches;
    } else {
      data += "hay " + std::to_string(i) + "\n";
    }
  }
  ASSERT_TRUE(cluster->client(1)->WriteFile("/grep/in", data).ok());

  // Match sets must agree across modes; arrival order may not.
  std::vector<Record> output = testutil::ExpectBarrierlessEquivalence(
      cluster.get(),
      [&](bool barrierless) {
        apps::AppOptions options;
        options.input_files = {"/grep/in"};
        options.output_path = barrierless ? "/grep/out-bl" : "/grep/out-b";
        options.num_reducers = 2;
        options.barrierless = barrierless;
        options.extra.Set("grep.pattern", "needle");
        return apps::MakeGrepJob(options);
      },
      testutil::SortedRecords);
  EXPECT_EQ(static_cast<int>(output.size()), expected_matches);
  for (const Record& r : output) {
    EXPECT_NE(r.value.find("needle"), std::string::npos);
  }
}

TEST(SortAppTest, BarrierlessOutputEqualsBarrierOutput) {
  auto cluster = MakeTestCluster(4);
  workload::IntGenOptions gen;
  gen.count = 10000;
  gen.seed = 23;
  auto files = workload::GenerateRandomInts(cluster.get(), "/in", gen);
  ASSERT_TRUE(files.ok());

  // Identical key sequences: same values, same (sorted) order.
  std::vector<Record> output = testutil::ExpectBarrierlessEquivalence(
      cluster.get(),
      [&](bool barrierless) {
        apps::AppOptions options;
        options.input_files = *files;
        options.output_path = barrierless ? "/out-bl" : "/out-b";
        options.num_reducers = 3;
        options.barrierless = barrierless;
        return apps::MakeSortJob(options);
      },
      testutil::KeySequence);
  EXPECT_EQ(output.size(), 10000u);
}

TEST(SortAppTest, OutputIsThePermutationOfInput) {
  auto cluster = MakeTestCluster(3);
  workload::IntGenOptions gen;
  gen.count = 5000;
  gen.seed = 4;
  auto files = workload::GenerateRandomInts(cluster.get(), "/in", gen);
  ASSERT_TRUE(files.ok());

  // Ground truth from the generated files.
  std::multiset<int64_t> expected;
  for (const auto& f : *files) {
    auto text = cluster->client(0)->ReadAll(f);
    ASSERT_TRUE(text.ok());
    size_t pos = 0;
    while (pos < text->size()) {
      size_t nl = text->find('\n', pos);
      if (nl == std::string::npos) nl = text->size();
      expected.insert(std::stoll(text->substr(pos, nl - pos)));
      pos = nl + 1;
    }
  }

  apps::AppOptions options;
  options.input_files = *files;
  options.output_path = "/out";
  options.num_reducers = 4;
  options.barrierless = true;
  JobResult result = RunApp(cluster.get(), apps::MakeSortJob(options));
  ASSERT_TRUE(result.ok());
  auto output = JobRunner::ReadAllOutput(cluster->client(0), result);
  ASSERT_TRUE(output.ok());
  std::multiset<int64_t> actual;
  for (const Record& r : *output) {
    int64_t v = 0;
    ASSERT_TRUE(DecodeOrderedI64(Slice(r.key), &v));
    actual.insert(v);
  }
  EXPECT_EQ(actual, expected);
}

std::map<int64_t, std::multiset<int64_t>> BruteForceKnn(
    const std::vector<int64_t>& training, const std::set<int64_t>& exps,
    int k) {
  std::map<int64_t, std::multiset<int64_t>> result;  // exp -> k distances
  for (int64_t exp : exps) {
    std::multiset<int64_t> dists;
    for (int64_t t : training) dists.insert(std::llabs(exp - t));
    std::multiset<int64_t> top;
    auto it = dists.begin();
    for (int i = 0; i < k && it != dists.end(); ++i, ++it) top.insert(*it);
    result[exp] = std::move(top);
  }
  return result;
}

TEST(KnnAppTest, BothModesMatchBruteForceDistances) {
  auto cluster = MakeTestCluster(3);
  workload::KnnGenOptions gen;
  gen.training_size = 60;
  gen.experimental_count = 400;
  gen.num_files = 2;
  gen.seed = 12;
  auto data = workload::GenerateKnnData(cluster.get(), "/knn", gen);
  ASSERT_TRUE(data.ok());

  // Collect the distinct experimental values for ground truth.
  std::set<int64_t> exps;
  for (const auto& f : data->experimental_files) {
    auto text = cluster->client(0)->ReadAll(f);
    ASSERT_TRUE(text.ok());
    size_t pos = 0;
    while (pos < text->size()) {
      size_t nl = text->find('\n', pos);
      if (nl == std::string::npos) nl = text->size();
      exps.insert(std::stoll(text->substr(pos, nl - pos)));
      pos = nl + 1;
    }
  }
  const int k = 5;
  auto expected = BruteForceKnn(data->training, exps, k);

  for (bool barrierless : {false, true}) {
    apps::AppOptions options;
    options.input_files = data->experimental_files;
    options.output_path = barrierless ? "/knn/out-bl" : "/knn/out-b";
    options.num_reducers = 2;
    options.barrierless = barrierless;
    options.extra.SetInt("knn.k", k);
    options.extra.Set("knn.training",
                      apps::EncodeTrainingSet(data->training));
    JobResult result = RunApp(cluster.get(), apps::MakeKnnJob(options));
    ASSERT_TRUE(result.ok()) << result.status;
    auto output = JobRunner::ReadAllOutput(cluster->client(0), result);
    ASSERT_TRUE(output.ok());

    std::map<int64_t, std::multiset<int64_t>> actual;
    for (const Record& r : *output) {
      int64_t exp = 0;
      ASSERT_TRUE(DecodeOrderedI64(Slice(r.key), &exp));
      apps::KnnNeighbor n;
      ASSERT_TRUE(apps::DecodeNeighbor(Slice(r.value), &n));
      actual[exp].insert(n.distance);
    }
    // Compare distance multisets (ties may pick different train values).
    EXPECT_EQ(actual, expected) << "barrierless=" << barrierless;
  }
}

TEST(LastFmAppTest, UniqueListenCountsMatchGroundTruth) {
  auto cluster = MakeTestCluster(3);
  workload::ListenGenOptions gen;
  gen.count = 20000;
  gen.num_users = 40;
  gen.num_tracks = 300;
  gen.seed = 77;
  auto files = workload::GenerateListens(cluster.get(), "/fm/in", gen);
  ASSERT_TRUE(files.ok());

  // Ground truth.
  std::map<std::string, std::set<std::string>> truth;
  for (const auto& f : *files) {
    auto text = cluster->client(0)->ReadAll(f);
    ASSERT_TRUE(text.ok());
    size_t pos = 0;
    while (pos < text->size()) {
      size_t nl = text->find('\n', pos);
      if (nl == std::string::npos) nl = text->size();
      std::string line = text->substr(pos, nl - pos);
      size_t space = line.find(' ');
      truth[line.substr(space + 1)].insert(line.substr(0, space));
      pos = nl + 1;
    }
  }

  // Both modes must produce the identical (track, count) multiset; the
  // barrier-less output is then checked against ground truth.
  std::vector<Record> output = testutil::ExpectBarrierlessEquivalence(
      cluster.get(),
      [&](bool barrierless) {
        apps::AppOptions options;
        options.input_files = *files;
        options.output_path = barrierless ? "/fm/out-bl" : "/fm/out-b";
        options.num_reducers = 3;
        options.barrierless = barrierless;
        return apps::MakeLastFmJob(options);
      },
      testutil::SortedRecords);
  ASSERT_EQ(output.size(), truth.size());
  for (const Record& r : output) {
    int64_t count = 0;
    ASSERT_TRUE(DecodeI64(Slice(r.value), &count));
    EXPECT_EQ(static_cast<size_t>(count), truth[r.key].size())
        << "track " << r.key;
  }
}

TEST(GeneticAppTest, OffspringCountEqualsPopulation) {
  auto cluster = MakeTestCluster(3);
  workload::PopulationGenOptions gen;
  gen.population = 6000;
  gen.seed = 5;
  auto files = workload::GeneratePopulation(cluster.get(), "/ga/in", gen);
  ASSERT_TRUE(files.ok());

  for (bool barrierless : {false, true}) {
    apps::AppOptions options;
    options.input_files = *files;
    options.output_path = barrierless ? "/ga/out-bl" : "/ga/out-b";
    options.num_reducers = 2;
    options.barrierless = barrierless;
    options.extra.SetInt("ga.window", 32);
    JobResult result = RunApp(cluster.get(), apps::MakeGeneticJob(options));
    ASSERT_TRUE(result.ok()) << result.status;
    auto output = JobRunner::ReadAllOutput(cluster->client(0), result);
    ASSERT_TRUE(output.ok());
    // One offspring per individual (windows always flush).
    EXPECT_EQ(output->size(), 6000u);
    // Every record is a valid (genome, fitness) pair.
    for (const Record& r : *output) {
      int64_t genome = 0, fitness = 0;
      ASSERT_TRUE(DecodeOrderedI64(Slice(r.key), &genome));
      ASSERT_TRUE(DecodeI64(Slice(r.value), &fitness));
      EXPECT_EQ(fitness,
                apps::GaFitness(static_cast<uint32_t>(genome)));
    }
  }
}

TEST(GeneticAppTest, SelectionPressureRaisesMeanFitness) {
  auto cluster = MakeTestCluster(2);
  workload::PopulationGenOptions gen;
  gen.population = 4000;
  gen.seed = 9;
  auto files = workload::GeneratePopulation(cluster.get(), "/ga/in", gen);
  ASSERT_TRUE(files.ok());

  apps::AppOptions options;
  options.input_files = *files;
  options.output_path = "/ga/out";
  options.num_reducers = 2;
  options.barrierless = true;
  options.extra.SetInt("ga.window", 64);
  JobResult result = RunApp(cluster.get(), apps::MakeGeneticJob(options));
  ASSERT_TRUE(result.ok());
  auto output = JobRunner::ReadAllOutput(cluster->client(0), result);
  ASSERT_TRUE(output.ok());
  double out_fitness = 0;
  for (const Record& r : *output) {
    int64_t f = 0;
    DecodeI64(Slice(r.value), &f);
    out_fitness += static_cast<double>(f);
  }
  out_fitness /= output->size();
  // Random 32-bit genomes average 16 set bits; tournament selection
  // must push the offspring mean clearly above that.
  EXPECT_GT(out_fitness, 16.5);
}

TEST(BlackScholesAppTest, MonteCarloMatchesClosedForm) {
  auto cluster = MakeTestCluster(3);
  workload::BlackScholesGenOptions gen;
  gen.num_mappers = 4;
  gen.iterations_per_mapper = 20000;
  gen.seed = 2;
  auto files =
      workload::GenerateBlackScholesUnits(cluster.get(), "/bs/in", gen);
  ASSERT_TRUE(files.ok());

  double closed_form = apps::BlackScholesCallPrice(100, 100, 0.05, 0.2, 1.0);
  for (bool barrierless : {false, true}) {
    apps::AppOptions options;
    options.input_files = *files;
    options.output_path = barrierless ? "/bs/out-bl" : "/bs/out-b";
    options.barrierless = barrierless;
    JobResult result =
        RunApp(cluster.get(), apps::MakeBlackScholesJob(options));
    ASSERT_TRUE(result.ok()) << result.status;
    auto output = JobRunner::ReadAllOutput(cluster->client(0), result);
    ASSERT_TRUE(output.ok());
    ASSERT_EQ(output->size(), 1u);  // single reducer, single summary
    apps::BsSummary summary;
    ASSERT_TRUE(apps::DecodeBsSummary(Slice((*output)[0].value), &summary));
    EXPECT_EQ(summary.count, 80000);
    EXPECT_NEAR(summary.mean, closed_form, 0.25);
    EXPECT_GT(summary.stddev, 0);
  }
}

TEST(BlackScholesAppTest, ModesProduceIdenticalSums) {
  // Same seeded input => bit-identical running sums in both modes.
  auto cluster = MakeTestCluster(2);
  workload::BlackScholesGenOptions gen;
  gen.num_mappers = 2;
  gen.iterations_per_mapper = 5000;
  auto files =
      workload::GenerateBlackScholesUnits(cluster.get(), "/bs/in", gen);
  ASSERT_TRUE(files.ok());
  // Fold order differs across modes (sums reassociate): compare the
  // summaries to 9 significant digits.
  std::vector<Record> output = testutil::ExpectBarrierlessEquivalence(
      cluster.get(),
      [&](bool barrierless) {
        apps::AppOptions options;
        options.input_files = *files;
        options.output_path = barrierless ? "/out-bl" : "/out-b";
        options.barrierless = barrierless;
        return apps::MakeBlackScholesJob(options);
      },
      [](const std::vector<Record>& records) {
        std::vector<std::string> out;
        for (const Record& r : records) {
          apps::BsSummary s;
          EXPECT_TRUE(apps::DecodeBsSummary(Slice(r.value), &s));
          char buf[128];
          std::snprintf(buf, sizeof(buf), "%.9g/%.9g/%lld", s.mean, s.stddev,
                        static_cast<long long>(s.count));
          out.push_back(buf);
        }
        return out;
      });
  ASSERT_EQ(output.size(), 1u);
  apps::BsSummary summary;
  ASSERT_TRUE(apps::DecodeBsSummary(Slice(output[0].value), &summary));
  EXPECT_EQ(summary.count, 10000);
}

TEST(RegistryTest, SevenClassesRegistered) {
  const auto& apps = apps::AllApps();
  ASSERT_EQ(apps.size(), 7u);
  std::set<std::string> classes;
  for (const auto& app : apps) classes.insert(app.reduce_class);
  EXPECT_EQ(classes.size(), 7u);  // all distinct
  // Table 1: only Sort requires key order.
  for (const auto& app : apps) {
    EXPECT_EQ(app.key_sort_required, app.name == "sort") << app.name;
  }
  EXPECT_NE(apps::FindApp("wordcount"), nullptr);
  EXPECT_EQ(apps::FindApp("nonexistent"), nullptr);
}

TEST(WordCountWithStoresTest, AllThreeStoresAgree) {
  auto cluster = MakeTestCluster(3);
  workload::TextGenOptions gen;
  gen.total_bytes = 120 << 10;
  gen.vocabulary = 250;
  gen.seed = 88;
  auto files = workload::GenerateZipfText(cluster.get(), "/in", gen);
  ASSERT_TRUE(files.ok());

  std::map<std::string, std::string> reference;
  int idx = 0;
  for (core::StoreType type :
       {core::StoreType::kInMemory, core::StoreType::kSpillMerge,
        core::StoreType::kKvStore}) {
    apps::AppOptions options;
    options.input_files = *files;
    options.output_path = "/out-" + std::to_string(idx++);
    options.num_reducers = 2;
    options.barrierless = true;
    options.store.type = type;
    options.store.spill_threshold_bytes = 8 << 10;  // force spills
    options.store.kv_cache_bytes = 8 << 10;         // force evictions
    JobResult result = RunApp(cluster.get(), apps::MakeWordCountJob(options));
    ASSERT_TRUE(result.ok()) << core::StoreTypeName(type) << ": "
                             << result.status;
    auto output = JobRunner::ReadAllOutput(cluster->client(0), result);
    ASSERT_TRUE(output.ok());
    auto as_map = testutil::AsMap(*output);
    if (reference.empty()) {
      reference = as_map;
    } else {
      EXPECT_EQ(as_map, reference) << core::StoreTypeName(type);
    }
  }
}

}  // namespace
}  // namespace bmr
