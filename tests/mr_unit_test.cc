// Unit tests for the mr layer's building blocks: collector, combiner,
// partitioners, k-way merge, grouped iteration, map-output tracker.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "common/rng.h"
#include "common/serde.h"
#include "mr/map_output.h"
#include "mr/partition.h"
#include "mr/shuffle.h"
#include "net/transport.h"
#include "transport_test_util.h"

namespace bmr::mr {
namespace {

TEST(PartitionTest, HashPartitionInRangeAndDeterministic) {
  Pcg32 rng(1);
  for (int i = 0; i < 1000; ++i) {
    std::string key = "key" + std::to_string(rng.NextU32());
    for (int parts : {1, 2, 7, 64}) {
      int p = HashPartition(Slice(key), parts);
      EXPECT_GE(p, 0);
      EXPECT_LT(p, parts);
      EXPECT_EQ(p, HashPartition(Slice(key), parts));
    }
  }
}

TEST(PartitionTest, HashPartitionSpreadsKeys) {
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 8000; ++i) {
    counts[HashPartition(Slice("key" + std::to_string(i)), 8)]++;
  }
  for (int c : counts) {
    EXPECT_GT(c, 700);  // roughly uniform (1000 expected)
    EXPECT_LT(c, 1300);
  }
}

TEST(PartitionTest, PrefixPartitionIgnoresSuffix) {
  PartitionFn fn = PrefixHashPartition(8);
  std::string base = EncodeOrderedI64(1234567);
  for (int i = 0; i < 50; ++i) {
    std::string key = base + EncodeOrderedI64(i);  // same 8-byte prefix
    EXPECT_EQ(fn(Slice(key), 16), fn(Slice(base), 16));
  }
}

TEST(PartitionTest, UniformRangePartitionIsMonotone) {
  int last = 0;
  for (int64_t v = -1000000; v <= 1000000; v += 10000) {
    std::string key = EncodeOrderedI64(v);
    int p = UniformRangePartition(Slice(key), 16);
    EXPECT_GE(p, last);
    EXPECT_LT(p, 16);
    last = p;
  }
}

TEST(MapOutputCollectorTest, PartitionsAndSorts) {
  MapOutputCollector collector(3, nullptr);
  Pcg32 rng(2);
  int expected_records = 200;
  for (int i = 0; i < expected_records; ++i) {
    collector.Emit("k" + std::to_string(rng.NextBounded(50)), "v");
  }
  EXPECT_EQ(collector.buffered_records(), 200u);
  auto finished = collector.Finish(/*sort=*/true, nullptr, nullptr);
  ASSERT_TRUE(finished.ok());
  EXPECT_EQ(finished->output_records, 200u);

  int total = 0;
  for (const auto& segment : finished->segments) {
    std::vector<Record> records;
    ASSERT_TRUE(DecodeSegment(Slice(segment), &records).ok());
    total += records.size();
    for (size_t i = 1; i < records.size(); ++i) {
      EXPECT_LE(records[i - 1].key, records[i].key);
    }
  }
  EXPECT_EQ(total, expected_records);
}

TEST(MapOutputCollectorTest, UnsortedModeKeepsEmissionOrder) {
  MapOutputCollector collector(1, nullptr);
  collector.Emit("z", "1");
  collector.Emit("a", "2");
  collector.Emit("m", "3");
  auto finished = collector.Finish(/*sort=*/false, nullptr, nullptr);
  ASSERT_TRUE(finished.ok());
  std::vector<Record> records;
  ASSERT_TRUE(DecodeSegment(Slice(finished->segments[0]), &records).ok());
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].key, "z");
  EXPECT_EQ(records[1].key, "a");
  EXPECT_EQ(records[2].key, "m");
}

class SumCombiner final : public Combiner {
 public:
  void Combine(Slice key, const std::vector<Slice>& values,
               MapEmitter* out) override {
    int64_t sum = 0;
    for (Slice v : values) {
      int64_t x = 0;
      DecodeI64(v, &x);
      sum += x;
    }
    std::string encoded = EncodeI64(sum);
    out->Emit(key, Slice(encoded));
  }
};

TEST(MapOutputCollectorTest, CombinerFoldsDuplicates) {
  MapOutputCollector collector(2, nullptr);
  for (int i = 0; i < 300; ++i) {
    collector.Emit("k" + std::to_string(i % 10), EncodeI64(1));
  }
  SumCombiner combiner;
  auto finished = collector.Finish(true, nullptr, &combiner);
  ASSERT_TRUE(finished.ok());
  EXPECT_EQ(finished->combine_in, 300u);
  EXPECT_EQ(finished->combine_out, 10u);
  int64_t total = 0;
  for (const auto& segment : finished->segments) {
    std::vector<Record> records;
    ASSERT_TRUE(DecodeSegment(Slice(segment), &records).ok());
    for (const auto& r : records) {
      int64_t v = 0;
      DecodeI64(Slice(r.value), &v);
      total += v;
    }
  }
  EXPECT_EQ(total, 300);
}

TEST(MapOutputCollectorTest, CombinerWithoutSortRejected) {
  MapOutputCollector collector(1, nullptr);
  collector.Emit("k", EncodeI64(1));
  SumCombiner combiner;
  auto finished = collector.Finish(/*sort=*/false, nullptr, &combiner);
  EXPECT_EQ(finished.status().code(), StatusCode::kFailedPrecondition);
}

TEST(MergeTest, MergesSortedRunsStably) {
  std::vector<std::vector<Record>> runs(3);
  runs[0] = {{"a", "r0"}, {"c", "r0"}};
  runs[1] = {{"a", "r1"}, {"b", "r1"}};
  runs[2] = {{"a", "r2"}};
  auto merged = MergeSortedRuns(std::move(runs), nullptr);
  ASSERT_EQ(merged.size(), 5u);
  // Equal keys appear in run order.
  EXPECT_EQ(merged[0].value, "r0");
  EXPECT_EQ(merged[1].value, "r1");
  EXPECT_EQ(merged[2].value, "r2");
  EXPECT_EQ(merged[3].key, "b");
  EXPECT_EQ(merged[4].key, "c");
}

TEST(MergeTest, RandomizedAgainstStdSort) {
  Pcg32 rng(3);
  std::vector<std::vector<Record>> runs(7);
  std::vector<std::string> all;
  for (int r = 0; r < 7; ++r) {
    int n = rng.NextBounded(200);
    for (int i = 0; i < n; ++i) {
      std::string key = "k" + std::to_string(rng.NextBounded(100));
      runs[r].emplace_back(key, "");
      all.push_back(key);
    }
    std::sort(runs[r].begin(), runs[r].end(),
              [](const Record& a, const Record& b) { return a.key < b.key; });
  }
  std::sort(all.begin(), all.end());
  auto merged = MergeSortedRuns(std::move(runs), nullptr);
  ASSERT_EQ(merged.size(), all.size());
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(merged[i].key, all[i]);
  }
}

class CollectingReducer final : public Reducer {
 public:
  void Reduce(Slice key, ValuesIterator* values,
              ReduceContext* ctx) override {
    int count = 0;
    Slice v;
    while (values->Next(&v)) ++count;
    std::string encoded = EncodeI64(count);
    ctx->Emit(key, Slice(encoded));
  }
};

class TestReduceCtx final : public ReduceContext {
 public:
  void Emit(Slice key, Slice value) override {
    records.emplace_back(key.ToString(), value.ToString());
  }
  const Config& config() const override { return config_; }
  Counters* counters() override { return &counters_; }
  std::vector<Record> records;

 private:
  Config config_;
  Counters counters_;
};

TEST(ReduceGroupsTest, GroupsConsecutiveEqualKeys) {
  std::vector<Record> sorted = {{"a", "1"}, {"a", "2"}, {"b", "3"},
                                {"c", "4"}, {"c", "5"}, {"c", "6"}};
  CollectingReducer reducer;
  TestReduceCtx ctx;
  ASSERT_TRUE(ReduceGroups(sorted, nullptr, &reducer, &ctx).ok());
  ASSERT_EQ(ctx.records.size(), 3u);
  int64_t n = 0;
  DecodeI64(Slice(ctx.records[0].value), &n);
  EXPECT_EQ(n, 2);
  DecodeI64(Slice(ctx.records[2].value), &n);
  EXPECT_EQ(n, 3);
}

TEST(ReduceGroupsTest, CustomGroupComparatorMergesPrefixGroups) {
  // Keys (group, seq): group by first byte only.
  std::vector<Record> sorted = {{"a1", "x"}, {"a2", "x"}, {"b1", "x"}};
  CollectingReducer reducer;
  TestReduceCtx ctx;
  KeyCompareFn group = [](Slice a, Slice b) {
    return Slice(a.data(), 1).Compare(Slice(b.data(), 1));
  };
  ASSERT_TRUE(ReduceGroups(sorted, group, &reducer, &ctx).ok());
  ASSERT_EQ(ctx.records.size(), 2u);
  EXPECT_EQ(ctx.records[0].key, "a1");  // first key of the group
}

TEST(MapOutputTrackerTest, WaitBlocksUntilDone) {
  MapOutputTracker tracker(2);
  std::atomic<int> node{-2};
  std::thread waiter([&] {
    auto loc = tracker.WaitForMapDone(1);
    node = loc.node;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(node.load(), -2);
  tracker.MarkDone(1, 5);
  waiter.join();
  EXPECT_EQ(node.load(), 5);
  EXPECT_EQ(tracker.num_done(), 1);
}

TEST(MapOutputTrackerTest, ReportLostVersioning) {
  MapOutputTracker tracker(1);
  tracker.MarkDone(0, 3);
  auto loc = tracker.WaitForMapDone(0);
  EXPECT_EQ(loc.node, 3);
  // First reporter wins, duplicates are stale.
  EXPECT_TRUE(tracker.ReportLost(0, loc.version));
  EXPECT_FALSE(tracker.ReportLost(0, loc.version));
  EXPECT_EQ(tracker.num_done(), 0);
  // Re-run on another node bumps the version.
  tracker.MarkDone(0, 7);
  auto loc2 = tracker.WaitForMapDone(0);
  EXPECT_EQ(loc2.node, 7);
  EXPECT_NE(loc2.version, loc.version);
  // A report against the old attempt is ignored.
  EXPECT_FALSE(tracker.ReportLost(0, loc.version));
}

TEST(MapOutputTrackerTest, CancelWakesWaiters) {
  MapOutputTracker tracker(1);
  std::atomic<int> version{0};
  std::thread waiter([&] {
    version = tracker.WaitForMapDone(0).version;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  tracker.Cancel();
  waiter.join();
  EXPECT_EQ(version.load(), -1);
}

TEST(MapOutputStoreTest, ShuffleServiceRoundTrip) {
  auto transport = testutil::MakeTransport(3);
  MapOutputStore store;
  RegisterShuffleService(transport.get(), 1, &store);
  store.Put(4, 2, "segment-bytes");

  std::string segment;
  ASSERT_TRUE(FetchSegment(transport.get(), 1, 2, 4, 2, &segment).ok());
  EXPECT_EQ(segment, "segment-bytes");
  EXPECT_EQ(FetchSegment(transport.get(), 1, 2, 9, 9, &segment).code(),
            StatusCode::kNotFound);
  // Re-run overwrite keeps accounting straight.
  store.Put(4, 2, "new");
  EXPECT_EQ(store.stored_bytes(), 3u);
}

}  // namespace
}  // namespace bmr::mr
