// Tests for the barrier-less run() driver over the partial stores.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "common/serde.h"
#include "core/barrierless_driver.h"
#include "mr/emitter.h"
#include "mr/types.h"

namespace bmr::core {
namespace {

/// Minimal aggregation reducer: per-key running sum of varint values.
class SumReducer final : public IncrementalReducer {
 public:
  std::string InitPartial(Slice) override { return EncodeI64(0); }
  void Update(Slice, Slice value, std::string* partial,
              mr::ReduceEmitter*) override {
    int64_t acc = 0, v = 0;
    DecodeI64(Slice(*partial), &acc);
    DecodeI64(value, &v);
    *partial = EncodeI64(acc + v);
  }
  std::string MergePartials(Slice, Slice a, Slice b) override {
    int64_t x = 0, y = 0;
    DecodeI64(a, &x);
    DecodeI64(b, &y);
    return EncodeI64(x + y);
  }
};

/// Identity-style reducer: emits directly, no store.
class PassThroughReducer final : public IncrementalReducer {
 public:
  bool UsesStore() const override { return false; }
  void Update(Slice key, Slice value, std::string*,
              mr::ReduceEmitter* out) override {
    out->Emit(key, value);
  }
};

/// Reducer with internal state flushed at the end (cross-key style).
class CountingFlushReducer final : public IncrementalReducer {
 public:
  bool UsesStore() const override { return false; }
  void Update(Slice, Slice, std::string*, mr::ReduceEmitter*) override {
    ++seen_;
  }
  void Flush(mr::ReduceEmitter* out) override {
    std::string v = EncodeI64(seen_);
    out->Emit("total", Slice(v));
  }

 private:
  int64_t seen_ = 0;
};

using Records = std::vector<mr::Record>;

TEST(BarrierlessDriverTest, AggregatesAcrossArrivalOrder) {
  SumReducer reducer;
  StoreConfig store;
  Config config;
  BarrierlessDriver driver(&reducer, store, config);
  Records out;
  mr::VectorEmitter<Records> emitter(&out);

  // Interleaved keys, unsorted arrival: the barrier-less premise.
  for (int i = 0; i < 100; ++i) {
    std::string key = "k" + std::to_string(i % 7);
    ASSERT_TRUE(driver.Consume(Slice(key), Slice(EncodeI64(i)), &emitter).ok());
  }
  ASSERT_TRUE(driver.Finalize(&emitter).ok());
  ASSERT_EQ(out.size(), 7u);
  // Output is in key order (store iteration order).
  std::map<std::string, int64_t> expected;
  for (int i = 0; i < 100; ++i) expected["k" + std::to_string(i % 7)] += i;
  for (size_t i = 0; i < out.size(); ++i) {
    int64_t v = 0;
    ASSERT_TRUE(DecodeI64(Slice(out[i].value), &v));
    EXPECT_EQ(v, expected[out[i].key]) << out[i].key;
    if (i > 0) {
      EXPECT_LT(out[i - 1].key, out[i].key);
    }
  }
}

TEST(BarrierlessDriverTest, SpillingStoreMatchesInMemory) {
  Config config;
  Records out_mem, out_spill;
  {
    SumReducer reducer;
    StoreConfig store;
    BarrierlessDriver driver(&reducer, store, config);
    mr::VectorEmitter<Records> emitter(&out_mem);
    Pcg32 rng(3);
    for (int i = 0; i < 5000; ++i) {
      std::string key = "key" + std::to_string(rng.NextBounded(97));
      ASSERT_TRUE(
          driver.Consume(Slice(key), Slice(EncodeI64(1)), &emitter).ok());
    }
    ASSERT_TRUE(driver.Finalize(&emitter).ok());
  }
  {
    SumReducer reducer;
    StoreConfig store;
    store.type = StoreType::kSpillMerge;
    store.spill_threshold_bytes = 2048;
    BarrierlessDriver driver(&reducer, store, config);
    mr::VectorEmitter<Records> emitter(&out_spill);
    Pcg32 rng(3);
    for (int i = 0; i < 5000; ++i) {
      std::string key = "key" + std::to_string(rng.NextBounded(97));
      ASSERT_TRUE(
          driver.Consume(Slice(key), Slice(EncodeI64(1)), &emitter).ok());
    }
    EXPECT_GT(driver.store()->stats().spills, 0u);
    ASSERT_TRUE(driver.Finalize(&emitter).ok());
  }
  EXPECT_EQ(out_mem, out_spill);
}

TEST(BarrierlessDriverTest, StorelessReducerEmitsImmediately) {
  PassThroughReducer reducer;
  StoreConfig store;
  Config config;
  BarrierlessDriver driver(&reducer, store, config);
  Records out;
  mr::VectorEmitter<Records> emitter(&out);
  ASSERT_TRUE(driver.Consume("b", "2", &emitter).ok());
  ASSERT_TRUE(driver.Consume("a", "1", &emitter).ok());
  EXPECT_EQ(out.size(), 2u);          // emitted before Finalize
  EXPECT_EQ(out[0].key, "b");         // arrival order, not key order
  EXPECT_EQ(driver.MemoryBytes(), 0u);
  ASSERT_TRUE(driver.Finalize(&emitter).ok());
  EXPECT_EQ(out.size(), 2u);
}

TEST(BarrierlessDriverTest, FlushRunsOnceAfterFinalize) {
  CountingFlushReducer reducer;
  StoreConfig store;
  Config config;
  BarrierlessDriver driver(&reducer, store, config);
  Records out;
  mr::VectorEmitter<Records> emitter(&out);
  for (int i = 0; i < 42; ++i) {
    ASSERT_TRUE(driver.Consume("k", "v", &emitter).ok());
  }
  ASSERT_TRUE(driver.Finalize(&emitter).ok());
  ASSERT_TRUE(driver.Finalize(&emitter).ok());  // idempotent
  ASSERT_EQ(out.size(), 1u);
  int64_t n = 0;
  ASSERT_TRUE(DecodeI64(Slice(out[0].value), &n));
  EXPECT_EQ(n, 42);
}

TEST(BarrierlessDriverTest, HeapCapSurfacesAsResourceExhausted) {
  SumReducer reducer;
  StoreConfig store;
  store.heap_limit_bytes = 1024;
  Config config;
  BarrierlessDriver driver(&reducer, store, config);
  Records out;
  mr::VectorEmitter<Records> emitter(&out);
  Status last = Status::Ok();
  for (int i = 0; i < 10000 && last.ok(); ++i) {
    last = driver.Consume(Slice("key" + std::to_string(i)),
                          Slice(EncodeI64(1)), &emitter);
  }
  EXPECT_EQ(last.code(), StatusCode::kResourceExhausted);
}

TEST(BarrierlessDriverTest, ConsumeAfterFinalizeRejected) {
  SumReducer reducer;
  StoreConfig store;
  Config config;
  BarrierlessDriver driver(&reducer, store, config);
  Records out;
  mr::VectorEmitter<Records> emitter(&out);
  ASSERT_TRUE(driver.Finalize(&emitter).ok());
  EXPECT_EQ(driver.Consume("k", "v", &emitter).code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace bmr::core
