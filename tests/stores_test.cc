// Partial-result store tests: correctness of all three Section-5
// schemes and their equivalence under random workloads.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.h"
#include "common/serde.h"
#include "core/inmemory_store.h"
#include "core/kvstore.h"
#include "core/partial_store.h"
#include "core/spill_file.h"
#include "core/spill_merge_store.h"
#include "faults/fault_injector.h"
#include "faults/fault_plan.h"

namespace bmr::core {
namespace {

/// Get that fails the test on an I/O error; returns presence.
bool GetOk(PartialStore& store, Slice key, std::string* partial) {
  bool found = false;
  Status st = store.Get(key, partial, &found);
  EXPECT_TRUE(st.ok()) << st;
  return found;
}

/// Counting workload: Put(key, old+1) read-modify-update, like
/// barrier-less WordCount.
std::map<std::string, int64_t> DriveCounts(PartialStore* store,
                                           const std::vector<std::string>& keys,
                                           Status* final_status) {
  for (const auto& key : keys) {
    std::string partial;
    int64_t n = 0;
    bool found = false;
    Status get_st = store->Get(Slice(key), &partial, &found);
    if (!get_st.ok()) {
      *final_status = get_st;
      return {};
    }
    if (found) DecodeI64(Slice(partial), &n);
    Status st = store->Put(Slice(key), Slice(EncodeI64(n + 1)));
    if (!st.ok()) {
      *final_status = st;
      return {};
    }
  }
  std::map<std::string, int64_t> result;
  auto merge = [](Slice, Slice a, Slice b) {
    int64_t x = 0, y = 0;
    DecodeI64(a, &x);
    DecodeI64(b, &y);
    return EncodeI64(x + y);
  };
  *final_status = store->ForEachMerged(merge, [&result](Slice k, Slice v) {
    int64_t n = 0;
    DecodeI64(v, &n);
    result[k.ToString()] += n;
  });
  return result;
}

std::vector<std::string> RandomKeys(size_t count, uint64_t seed,
                                    uint32_t distinct) {
  Pcg32 rng(seed);
  std::vector<std::string> keys;
  keys.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    keys.push_back("key" + std::to_string(rng.NextBounded(distinct)));
  }
  return keys;
}

std::map<std::string, int64_t> DirectCounts(
    const std::vector<std::string>& keys) {
  std::map<std::string, int64_t> out;
  for (const auto& k : keys) out[k]++;
  return out;
}

TEST(InMemoryStoreTest, GetPutRoundTrip) {
  StoreConfig config;
  InMemoryStore store(config);
  std::string partial;
  EXPECT_FALSE(GetOk(store, "a", &partial));
  ASSERT_TRUE(store.Put("a", "1").ok());
  ASSERT_TRUE(GetOk(store, "a", &partial));
  EXPECT_EQ(partial, "1");
  ASSERT_TRUE(store.Put("a", "22").ok());
  ASSERT_TRUE(GetOk(store, "a", &partial));
  EXPECT_EQ(partial, "22");
  EXPECT_EQ(store.NumKeys(), 1u);
}

TEST(InMemoryStoreTest, IteratesInKeyOrder) {
  StoreConfig config;
  InMemoryStore store(config);
  for (const char* k : {"zebra", "apple", "mango"}) {
    ASSERT_TRUE(store.Put(k, "v").ok());
  }
  std::vector<std::string> seen;
  ASSERT_TRUE(store
                  .ForEachMerged(nullptr,
                                 [&seen](Slice k, Slice) {
                                   seen.push_back(k.ToString());
                                 })
                  .ok());
  EXPECT_EQ(seen, (std::vector<std::string>{"apple", "mango", "zebra"}));
}

TEST(InMemoryStoreTest, RespectsCustomComparator) {
  StoreConfig config;
  // Reverse lexicographic order.
  config.key_cmp = [](Slice a, Slice b) { return b.Compare(a); };
  InMemoryStore store(config);
  for (const char* k : {"a", "c", "b"}) ASSERT_TRUE(store.Put(k, "v").ok());
  std::vector<std::string> seen;
  ASSERT_TRUE(store
                  .ForEachMerged(nullptr,
                                 [&seen](Slice k, Slice) {
                                   seen.push_back(k.ToString());
                                 })
                  .ok());
  EXPECT_EQ(seen, (std::vector<std::string>{"c", "b", "a"}));
}

TEST(InMemoryStoreTest, HeapCapTriggersResourceExhausted) {
  StoreConfig config;
  config.heap_limit_bytes = 2048;  // a handful of entries
  InMemoryStore store(config);
  Status last = Status::Ok();
  for (int i = 0; i < 1000 && last.ok(); ++i) {
    last = store.Put("key" + std::to_string(i), std::string(32, 'x'));
  }
  EXPECT_EQ(last.code(), StatusCode::kResourceExhausted);
  EXPECT_GT(store.stats().peak_memory_bytes, config.heap_limit_bytes);
}

TEST(InMemoryStoreTest, MemoryAccountingTracksValueResizes) {
  StoreConfig config;
  InMemoryStore store(config);
  ASSERT_TRUE(store.Put("k", std::string(100, 'a')).ok());
  uint64_t m1 = store.MemoryBytes();
  ASSERT_TRUE(store.Put("k", std::string(10, 'b')).ok());
  uint64_t m2 = store.MemoryBytes();
  EXPECT_EQ(m1 - m2, 90u);
}

TEST(SpillMergeStoreTest, SpillsAtThresholdAndStillAnswersCorrectly) {
  StoreConfig config;
  config.type = StoreType::kSpillMerge;
  config.spill_threshold_bytes = 4096;  // force many spills
  SpillMergeStore store(config);

  auto keys = RandomKeys(5000, 17, 200);
  Status status = Status::Ok();
  auto result = DriveCounts(&store, keys, &status);
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_GT(store.stats().spills, 0u);
  EXPECT_EQ(result, DirectCounts(keys));
}

TEST(SpillMergeStoreTest, MergedIterationIsKeyOrdered) {
  StoreConfig config;
  config.type = StoreType::kSpillMerge;
  config.spill_threshold_bytes = 1024;
  SpillMergeStore store(config);
  auto keys = RandomKeys(2000, 5, 100);
  for (const auto& key : keys) {
    ASSERT_TRUE(store.Put(Slice(key), "x").ok());
  }
  std::vector<std::string> order;
  ASSERT_TRUE(store
                  .ForEachMerged(
                      [](Slice, Slice, Slice b) { return b.ToString(); },
                      [&order](Slice k, Slice) {
                        order.push_back(k.ToString());
                      })
                  .ok());
  ASSERT_FALSE(order.empty());
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_LT(order[i - 1], order[i]) << "duplicate or misordered key";
  }
}

TEST(SpillMergeStoreTest, ExplicitSpillKeepsGetSemantics) {
  StoreConfig config;
  config.type = StoreType::kSpillMerge;
  SpillMergeStore store(config);
  ASSERT_TRUE(store.Put("k", EncodeI64(5)).ok());
  ASSERT_TRUE(store.SpillNow().ok());
  // After a spill the memtable no longer knows the key: the paper's
  // scheme restarts the partial and reconciles in the merge.
  std::string partial;
  EXPECT_FALSE(GetOk(store, "k", &partial));
  EXPECT_EQ(store.MemoryBytes(), 0u);
  ASSERT_TRUE(store.Put("k", EncodeI64(2)).ok());
  int64_t total = 0;
  ASSERT_TRUE(store
                  .ForEachMerged(
                      [](Slice, Slice a, Slice b) {
                        int64_t x = 0, y = 0;
                        DecodeI64(a, &x);
                        DecodeI64(b, &y);
                        return EncodeI64(x + y);
                      },
                      [&total](Slice, Slice v) { DecodeI64(v, &total); })
                  .ok());
  EXPECT_EQ(total, 7);
}

TEST(KvStoreTest, EvictsToDiskAndReadsBack) {
  StoreConfig config;
  config.type = StoreType::kKvStore;
  config.kv_cache_bytes = 2048;  // tiny cache
  KvStoreBackend store(config);

  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        store.Put("key" + std::to_string(i), std::string(40, 'a' + i % 26))
            .ok());
  }
  EXPECT_GT(store.evictions(), 0u);
  // Every key must still be readable (cache miss => disk read).
  for (int i = 0; i < 200; ++i) {
    std::string v;
    ASSERT_TRUE(GetOk(store, "key" + std::to_string(i), &v))
        << "lost key " << i;
    EXPECT_EQ(v, std::string(40, 'a' + i % 26));
  }
  EXPECT_GT(store.cache_misses(), 0u);
  EXPECT_GT(store.stats().disk_reads, 0u);
}

TEST(KvStoreTest, ChargesCalibratedOpCost) {
  StoreConfig config;
  config.type = StoreType::kKvStore;
  config.kv_ops_per_sec = 30000;  // the paper's BerkeleyDB measurement
  KvStoreBackend store(config);
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(store.Put("k" + std::to_string(i % 100), "v").ok());
  }
  // 3000 puts at 30k ops/s = 0.1 virtual seconds.
  EXPECT_NEAR(store.stats().charged_seconds, 0.1, 0.05);
}

TEST(KvStoreTest, UpdatedValueWinsAfterEviction) {
  StoreConfig config;
  config.type = StoreType::kKvStore;
  config.kv_cache_bytes = 1024;
  KvStoreBackend store(config);
  ASSERT_TRUE(store.Put("target", "old").ok());
  for (int i = 0; i < 100; ++i) {  // push "target" out of cache
    ASSERT_TRUE(store.Put("fill" + std::to_string(i), std::string(64, 'x')).ok());
  }
  std::string v;
  ASSERT_TRUE(GetOk(store, "target", &v));
  EXPECT_EQ(v, "old");
  ASSERT_TRUE(store.Put("target", "new").ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        store.Put("fill2" + std::to_string(i), std::string(64, 'x')).ok());
  }
  ASSERT_TRUE(GetOk(store, "target", &v));
  EXPECT_EQ(v, "new");
}

TEST(KvStoreTest, DirtyEvictionWriteFailureSurfacesFromPut) {
  faults::FaultEvent fail;
  fail.kind = faults::FaultKind::kSpillWriteError;
  fail.count = 1;  // exactly the first log write fails
  faults::FaultPlan plan;
  plan.events = {fail};
  faults::FaultInjector injector(plan);

  StoreConfig config;
  config.type = StoreType::kKvStore;
  config.kv_cache_bytes = 1024;  // tiny: filling evicts dirty entries
  config.fault_injector = &injector;
  KvStoreBackend store(config);

  Status last = Status::Ok();
  for (int i = 0; i < 100 && last.ok(); ++i) {
    last = store.Put("key" + std::to_string(i), std::string(64, 'x'));
  }
  // The dirty victim's write-back failed; the Put that triggered the
  // eviction must report it, not swallow it.
  EXPECT_EQ(last.code(), StatusCode::kUnavailable) << last;
}

TEST(KvStoreTest, EvictionWriteFailureSurfacesFromGet) {
  // Same data-loss hazard via the Get path: a cache-miss read pages a
  // value in, and the eviction making room may write back a dirty
  // victim.  Before the fix that status was discarded.
  faults::FaultEvent fail;
  fail.kind = faults::FaultKind::kSpillWriteError;
  fail.after_calls = 1;  // let the first write-back (from Put) through
  fail.count = 1;
  faults::FaultPlan plan;
  plan.events = {fail};
  faults::FaultInjector injector(plan);

  StoreConfig config;
  config.type = StoreType::kKvStore;
  config.kv_cache_bytes = 512;
  config.fault_injector = &injector;
  KvStoreBackend store(config);

  // Two entries that can't coexist in the cache: writing A then B
  // evicts A (write-back #1, allowed through).  Reading A pages it back
  // in and evicts dirty B (write-back #2, injected to fail).
  ASSERT_TRUE(store.Put("aaaa", std::string(300, 'a')).ok());
  ASSERT_TRUE(store.Put("bbbb", std::string(300, 'b')).ok());
  std::string v;
  bool found = false;
  Status st = store.Get("aaaa", &v, &found);
  EXPECT_EQ(st.code(), StatusCode::kUnavailable) << st;
  EXPECT_FALSE(found);
}

TEST(SpillMergeStoreTest, HeapCapRejectsBeforeMutation) {
  StoreConfig config;
  config.type = StoreType::kSpillMerge;
  config.heap_limit_bytes = 512;
  config.spill_threshold_bytes = 1 << 30;  // never spill in this test
  SpillMergeStore store(config);
  ASSERT_TRUE(store.Put("small", "v").ok());
  uint64_t keys_before = store.NumKeys();
  uint64_t bytes_before = store.MemoryBytes();
  uint64_t peak_before = store.stats().peak_memory_bytes;

  Status st = store.Put("huge", std::string(4096, 'x'));
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted) << st;
  // The rejected Put must not have touched the memtable or stats: no
  // phantom key, no inflated byte count, no moved peak.
  EXPECT_EQ(store.NumKeys(), keys_before);
  EXPECT_EQ(store.MemoryBytes(), bytes_before);
  EXPECT_EQ(store.stats().peak_memory_bytes, peak_before);
  // An oversize *update* of an existing key is also rejected unmutated.
  st = store.Put("small", std::string(4096, 'y'));
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted) << st;
  std::string v;
  ASSERT_TRUE(GetOk(store, "small", &v));
  EXPECT_EQ(v, "v");
  // The store remains usable after rejections.
  ASSERT_TRUE(store.Put("other", "w").ok());
}

/// Property: all three stores produce identical merged results on the
/// same random read-modify-update workload.
struct StoreCase {
  StoreType type;
  uint64_t threshold_or_cache;
};

class StoreEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<StoreCase, uint64_t>> {};

TEST_P(StoreEquivalenceTest, CountsMatchInMemoryReference) {
  auto [store_case, seed] = GetParam();
  StoreConfig config;
  config.type = store_case.type;
  config.spill_threshold_bytes = store_case.threshold_or_cache;
  config.kv_cache_bytes = store_case.threshold_or_cache;

  auto store = CreatePartialStore(config);
  ASSERT_NE(store, nullptr);
  auto keys = RandomKeys(4000, seed, 150);
  Status status = Status::Ok();
  auto result = DriveCounts(store.get(), keys, &status);
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_EQ(result, DirectCounts(keys));
}

INSTANTIATE_TEST_SUITE_P(
    AllStores, StoreEquivalenceTest,
    ::testing::Combine(
        ::testing::Values(StoreCase{StoreType::kInMemory, 0},
                          StoreCase{StoreType::kSpillMerge, 2048},
                          StoreCase{StoreType::kSpillMerge, 16384},
                          StoreCase{StoreType::kKvStore, 1024},
                          StoreCase{StoreType::kKvStore, 65536}),
        ::testing::Values(1u, 2u, 3u)));

TEST(SpillFileTest, WriterReaderRoundTrip) {
  ScratchDir scratch;
  std::string path = scratch.FilePath("f");
  SpillFileWriter writer(path);
  ASSERT_TRUE(writer.Open().ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(writer
                    .Append("key" + std::to_string(i),
                            std::string(i % 40, 'v'))
                    .ok());
  }
  ASSERT_TRUE(writer.Close().ok());

  SpillFileReader reader(path);
  ASSERT_TRUE(reader.Open().ok());
  for (int i = 0; i < 100; ++i) {
    std::string key, value;
    bool has = false;
    ASSERT_TRUE(reader.Next(&key, &value, &has).ok());
    ASSERT_TRUE(has) << "premature EOF at " << i;
    EXPECT_EQ(key, "key" + std::to_string(i));
    EXPECT_EQ(value, std::string(i % 40, 'v'));
  }
  std::string key, value;
  bool has = true;
  ASSERT_TRUE(reader.Next(&key, &value, &has).ok());
  EXPECT_FALSE(has);
}

TEST(SpillFileTest, EmptyFileYieldsNoRecords) {
  ScratchDir scratch;
  std::string path = scratch.FilePath("empty");
  SpillFileWriter writer(path);
  ASSERT_TRUE(writer.Open().ok());
  ASSERT_TRUE(writer.Close().ok());
  SpillFileReader reader(path);
  ASSERT_TRUE(reader.Open().ok());
  std::string k, v;
  bool has = true;
  ASSERT_TRUE(reader.Next(&k, &v, &has).ok());
  EXPECT_FALSE(has);
}

}  // namespace
}  // namespace bmr::core
