// Tests for progressive (online) snapshots: EmitSnapshot must reflect
// everything folded so far, never disturb the store, and converge to
// the final result — across all three partial-result stores.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "common/serde.h"
#include "core/barrierless_driver.h"
#include "mr/emitter.h"
#include "mr/types.h"

namespace bmr::core {
namespace {

class SumReducer final : public IncrementalReducer {
 public:
  std::string InitPartial(Slice) override { return EncodeI64(0); }
  void Update(Slice, Slice value, std::string* partial,
              mr::ReduceEmitter*) override {
    int64_t acc = 0, v = 0;
    DecodeI64(Slice(*partial), &acc);
    DecodeI64(value, &v);
    *partial = EncodeI64(acc + v);
  }
  std::string MergePartials(Slice, Slice a, Slice b) override {
    int64_t x = 0, y = 0;
    DecodeI64(a, &x);
    DecodeI64(b, &y);
    return EncodeI64(x + y);
  }
};

using Records = std::vector<mr::Record>;

std::map<std::string, int64_t> Decode(const Records& records) {
  std::map<std::string, int64_t> out;
  for (const auto& r : records) {
    int64_t v = 0;
    DecodeI64(Slice(r.value), &v);
    out[r.key] += v;
  }
  return out;
}

class OnlineSnapshotTest : public ::testing::TestWithParam<StoreType> {};

TEST_P(OnlineSnapshotTest, SnapshotsConvergeToFinal) {
  SumReducer reducer;
  StoreConfig store;
  store.type = GetParam();
  store.spill_threshold_bytes = 2048;  // force spills for kSpillMerge
  store.kv_cache_bytes = 2048;         // force evictions for kKvStore
  Config config;
  BarrierlessDriver driver(&reducer, store, config);

  Pcg32 rng(11);
  std::map<std::string, int64_t> truth;
  Records sink;
  mr::VectorEmitter<Records> emitter(&sink);
  std::map<std::string, int64_t> previous_snapshot;
  uint64_t previous_total = 0;

  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 600; ++i) {
      std::string key = "key" + std::to_string(rng.NextBounded(40));
      ASSERT_TRUE(
          driver.Consume(Slice(key), Slice(EncodeI64(1)), &emitter).ok());
      truth[key]++;
    }
    // Mid-stream snapshot: exact counts of everything folded so far.
    Records snapshot;
    mr::VectorEmitter<Records> snap_emitter(&snapshot);
    ASSERT_TRUE(driver.EmitSnapshot(&snap_emitter).ok())
        << StoreTypeName(GetParam());
    auto decoded = Decode(snapshot);
    EXPECT_EQ(decoded, truth) << "batch " << batch;
    // Monotone convergence: totals never shrink.
    uint64_t total = 0;
    for (const auto& [k, v] : decoded) total += v;
    EXPECT_GE(total, previous_total);
    previous_total = total;
    previous_snapshot = decoded;
  }

  // The snapshot machinery must not disturb the final result.
  Records final_records;
  mr::VectorEmitter<Records> final_emitter(&final_records);
  ASSERT_TRUE(driver.Finalize(&final_emitter).ok());
  EXPECT_EQ(Decode(final_records), truth);
}

INSTANTIATE_TEST_SUITE_P(Stores, OnlineSnapshotTest,
                         ::testing::Values(StoreType::kInMemory,
                                           StoreType::kSpillMerge,
                                           StoreType::kKvStore),
                         [](const auto& info) {
                           switch (info.param) {
                             case StoreType::kInMemory: return "InMemory";
                             case StoreType::kSpillMerge: return "SpillMerge";
                             case StoreType::kKvStore: return "KvStore";
                           }
                           return "Unknown";
                         });

TEST(OnlineSnapshotTest, SnapshotAfterFinalizeRejected) {
  SumReducer reducer;
  StoreConfig store;
  Config config;
  BarrierlessDriver driver(&reducer, store, config);
  Records sink;
  mr::VectorEmitter<Records> emitter(&sink);
  ASSERT_TRUE(driver.Finalize(&emitter).ok());
  EXPECT_EQ(driver.EmitSnapshot(&emitter).code(),
            StatusCode::kFailedPrecondition);
}

TEST(OnlineSnapshotTest, SnapshotOrderedByKey) {
  SumReducer reducer;
  StoreConfig store;
  store.type = StoreType::kSpillMerge;
  store.spill_threshold_bytes = 512;
  Config config;
  BarrierlessDriver driver(&reducer, store, config);
  Records sink;
  mr::VectorEmitter<Records> emitter(&sink);
  Pcg32 rng(3);
  for (int i = 0; i < 500; ++i) {
    std::string key = "k" + std::to_string(rng.NextBounded(60));
    ASSERT_TRUE(
        driver.Consume(Slice(key), Slice(EncodeI64(1)), &emitter).ok());
  }
  Records snapshot;
  mr::VectorEmitter<Records> snap_emitter(&snapshot);
  ASSERT_TRUE(driver.EmitSnapshot(&snap_emitter).ok());
  ASSERT_FALSE(snapshot.empty());
  for (size_t i = 1; i < snapshot.size(); ++i) {
    EXPECT_LT(snapshot[i - 1].key, snapshot[i].key);
  }
}

}  // namespace
}  // namespace bmr::core
