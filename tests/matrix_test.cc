// The equivalence matrix: every application class × execution mode ×
// partial-result store must produce the same logical result as that
// app's with-barrier in-memory reference run.  This is the paper's
// correctness claim ("the correctness and the completeness of the
// MapReduce execution is not compromised") tested exhaustively.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "apps/blackscholes.h"
#include "apps/knn.h"
#include "apps/registry.h"
#include "common/serde.h"
#include "test_util.h"
#include "workload/generators.h"

namespace bmr {
namespace {

using mr::ClusterContext;
using mr::JobResult;
using mr::JobRunner;
using mr::Record;
using testutil::MakeTestCluster;

struct Case {
  std::string app;
  bool barrierless;
  core::StoreType store;
};

std::string CaseName(const ::testing::TestParamInfo<Case>& info) {
  std::string name = info.param.app;
  name += info.param.barrierless ? "_barrierless_" : "_barrier_";
  switch (info.param.store) {
    case core::StoreType::kInMemory: name += "mem"; break;
    case core::StoreType::kSpillMerge: name += "spill"; break;
    case core::StoreType::kKvStore: name += "kv"; break;
  }
  return name;
}

/// Prepared inputs for one app on a shared cluster.
struct Workload {
  std::vector<std::string> files;
  Config extra;
};

Workload PrepareWorkload(ClusterContext* cluster, const std::string& app) {
  Workload w;
  if (app == "grep") {
    workload::TextGenOptions gen;
    gen.total_bytes = 48 << 10;
    gen.vocabulary = 80;
    gen.seed = 31;
    w.files = *workload::GenerateZipfText(cluster, "/" + app, gen);
    w.extra.Set("grep.pattern", "w1");
  } else if (app == "sort") {
    workload::IntGenOptions gen;
    gen.count = 8000;
    gen.seed = 32;
    w.files = *workload::GenerateRandomInts(cluster, "/" + app, gen);
  } else if (app == "wordcount") {
    workload::TextGenOptions gen;
    gen.total_bytes = 64 << 10;
    gen.vocabulary = 400;
    gen.seed = 33;
    w.files = *workload::GenerateZipfText(cluster, "/" + app, gen);
  } else if (app == "knn") {
    workload::KnnGenOptions gen;
    gen.training_size = 40;
    gen.experimental_count = 600;
    gen.seed = 34;
    auto data = *workload::GenerateKnnData(cluster, "/" + app, gen);
    w.files = data.experimental_files;
    w.extra.SetInt("knn.k", 7);
    w.extra.Set("knn.training", apps::EncodeTrainingSet(data.training));
  } else if (app == "lastfm") {
    workload::ListenGenOptions gen;
    gen.count = 8000;
    gen.num_users = 25;
    gen.num_tracks = 120;
    gen.seed = 35;
    w.files = *workload::GenerateListens(cluster, "/" + app, gen);
  } else if (app == "genetic") {
    workload::PopulationGenOptions gen;
    gen.population = 4000;
    gen.seed = 36;
    w.files = *workload::GeneratePopulation(cluster, "/" + app, gen);
    w.extra.SetInt("ga.window", 16);
  } else if (app == "blackscholes") {
    workload::BlackScholesGenOptions gen;
    gen.num_mappers = 2;
    gen.iterations_per_mapper = 4000;
    gen.seed = 37;
    w.files = *workload::GenerateBlackScholesUnits(cluster, "/" + app, gen);
  }
  return w;
}

/// App-aware comparison key (a testutil::CanonicalizeFn): reduce the
/// output to the sorted multiset both modes must agree on exactly.
std::vector<std::string> Canonicalize(const std::string& app,
                                      const std::vector<Record>& records) {
  std::vector<std::string> out;
  for (const Record& r : records) {
    if (app == "knn") {
      // Modes may pick different equal-distance neighbours: compare
      // (exp, distance) pairs.
      apps::KnnNeighbor n;
      EXPECT_TRUE(apps::DecodeNeighbor(Slice(r.value), &n));
      out.push_back(r.key + "/" + std::to_string(n.distance));
    } else if (app == "genetic") {
      // Offspring are RNG- and order-dependent: compare cardinality
      // only (each individual yields exactly one offspring).
      out.push_back("record");
    } else if (app == "blackscholes") {
      // Fold order differs across modes, so the running sums
      // reassociate: compare to 9 significant digits.
      apps::BsSummary s;
      EXPECT_TRUE(apps::DecodeBsSummary(Slice(r.value), &s));
      char buf[128];
      std::snprintf(buf, sizeof(buf), "%.9g/%.9g/%lld", s.mean, s.stddev,
                    static_cast<long long>(s.count));
      out.push_back(buf);
    } else {
      out.push_back(r.key + "\t" + r.value);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

class MatrixTest : public ::testing::TestWithParam<Case> {};

TEST_P(MatrixTest, MatchesBarrierReference) {
  const Case& c = GetParam();
  auto cluster = MakeTestCluster(3);
  Workload workload = PrepareWorkload(cluster.get(), c.app);
  ASSERT_FALSE(workload.files.empty());
  const auto* app = apps::FindApp(c.app);
  ASSERT_NE(app, nullptr);

  // Reference: with-barrier in-memory run.
  apps::AppOptions ref_options;
  ref_options.input_files = workload.files;
  ref_options.output_path = "/ref";
  ref_options.num_reducers = 2;
  ref_options.extra = workload.extra;

  // Case under test.
  apps::AppOptions options = ref_options;
  options.output_path = "/case";
  options.barrierless = c.barrierless;
  options.store.type = c.store;
  options.store.spill_threshold_bytes = 4 << 10;
  options.store.kv_cache_bytes = 4 << 10;

  testutil::ExpectEquivalentOutputs(
      cluster.get(), app->make_job(ref_options), app->make_job(options),
      [&c](const std::vector<Record>& records) {
        return Canonicalize(c.app, records);
      });
}

std::vector<Case> AllCases() {
  std::vector<Case> cases;
  for (const auto& app : apps::AllApps()) {
    // Barrier mode ignores the store; run it once.
    cases.push_back({app.name, false, core::StoreType::kInMemory});
    for (core::StoreType store :
         {core::StoreType::kInMemory, core::StoreType::kSpillMerge,
          core::StoreType::kKvStore}) {
      cases.push_back({app.name, true, store});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllAppsAllStores, MatrixTest,
                         ::testing::ValuesIn(AllCases()), CaseName);

}  // namespace
}  // namespace bmr
