// Fault-injection subsystem tests: FaultPlan determinism and bounds,
// FaultInjector hook semantics, and engine-level recovery regressions
// (map re-execution after node death, reopened-commit accounting,
// reducer restart after consuming a lost attempt).
#include <gtest/gtest.h>

#include <set>

#include "apps/registry.h"
#include "apps/wordcount.h"
#include "faults/fault_injector.h"
#include "faults/fault_plan.h"
#include "mr/map_output.h"
#include "test_util.h"
#include "workload/generators.h"

namespace bmr {
namespace {

using faults::FaultEvent;
using faults::FaultInjector;
using faults::FaultKind;
using faults::FaultPlan;
using faults::FaultPlanOptions;
using mr::Record;
using testutil::MakeTestCluster;

TEST(FaultPlanTest, GenerateIsDeterministicInSeed) {
  FaultPlanOptions options;
  for (uint64_t seed = 0; seed < 50; ++seed) {
    FaultPlan a = FaultPlan::Generate(seed, options);
    FaultPlan b = FaultPlan::Generate(seed, options);
    EXPECT_EQ(a.ToString(), b.ToString()) << "seed " << seed;
    EXPECT_FALSE(a.events.empty());
  }
  // Different seeds must not all collapse to one plan.
  std::set<std::string> distinct;
  for (uint64_t seed = 0; seed < 50; ++seed) {
    distinct.insert(FaultPlan::Generate(seed, options).ToString());
  }
  EXPECT_GT(distinct.size(), 10u);
}

TEST(FaultPlanTest, RespectsOptionBounds) {
  FaultPlanOptions options;
  options.num_nodes = 5;
  options.max_faults = 4;
  for (uint64_t seed = 0; seed < 200; ++seed) {
    FaultPlan plan = FaultPlan::Generate(seed, options);
    EXPECT_GE(plan.events.size(), 1u);
    EXPECT_LE(plan.events.size(), 4u);
    int crashes = 0;
    for (const FaultEvent& e : plan.events) {
      if (e.kind == FaultKind::kNodeCrash) {
        ++crashes;
        EXPECT_NE(e.node, options.master_node);
        EXPECT_GE(e.node, 1);
        EXPECT_LT(e.node, options.num_nodes);
      }
    }
    EXPECT_LE(crashes, 1) << plan.ToString();
  }
}

TEST(FaultPlanTest, AllowFlagsGateKinds) {
  FaultPlanOptions options;
  options.allow_crash = false;
  options.allow_rpc = false;
  options.allow_fetch = false;
  for (uint64_t seed = 0; seed < 100; ++seed) {
    for (const FaultEvent& e : FaultPlan::Generate(seed, options).events) {
      EXPECT_TRUE(e.kind == FaultKind::kSpillWriteError ||
                  e.kind == FaultKind::kSpillReadError)
          << faults::FaultKindName(e.kind);
    }
  }
}

FaultPlan ScriptedPlan(std::vector<FaultEvent> events) {
  FaultPlan plan;
  plan.events = std::move(events);
  return plan;
}

TEST(FaultInjectorTest, DropFiresAfterThresholdForCount) {
  FaultEvent drop;
  drop.kind = FaultKind::kRpcDrop;
  drop.method_prefix = "x.";
  drop.after_calls = 1;
  drop.count = 2;
  FaultInjector injector(ScriptedPlan({drop}));

  int duplicates = 0;
  // Non-matching method never ticks the event.
  EXPECT_TRUE(injector.OnRpcCall(0, 1, "y.read", &duplicates).ok());
  // First matching call passes (after_calls=1), next two drop, then ok.
  EXPECT_TRUE(injector.OnRpcCall(0, 1, "x.read", &duplicates).ok());
  EXPECT_EQ(injector.OnRpcCall(0, 1, "x.read", &duplicates).code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(injector.OnRpcCall(0, 1, "x.read", &duplicates).code(),
            StatusCode::kUnavailable);
  EXPECT_TRUE(injector.OnRpcCall(0, 1, "x.read", &duplicates).ok());
  EXPECT_EQ(injector.injected(FaultKind::kRpcDrop), 2u);
  EXPECT_EQ(injector.DrainLog().size(), 2u);
  EXPECT_TRUE(injector.DrainLog().empty());  // drained
}

TEST(FaultInjectorTest, TargetedDropMatchesNode) {
  FaultEvent drop;
  drop.kind = FaultKind::kRpcDrop;
  drop.node = 2;
  FaultInjector injector(ScriptedPlan({drop}));
  int duplicates = 0;
  EXPECT_TRUE(injector.OnRpcCall(0, 1, "m", &duplicates).ok());
  EXPECT_FALSE(injector.OnRpcCall(0, 2, "m", &duplicates).ok());
  EXPECT_TRUE(injector.OnRpcCall(0, 2, "m", &duplicates).ok());  // spent
}

TEST(FaultInjectorTest, DuplicateSetsOutParam) {
  FaultEvent dup;
  dup.kind = FaultKind::kRpcDuplicate;
  dup.method_prefix = "shuffle.fetch.";
  FaultInjector injector(ScriptedPlan({dup}));
  int duplicates = 0;
  EXPECT_TRUE(injector.OnRpcCall(1, 2, "shuffle.fetch.7", &duplicates).ok());
  EXPECT_EQ(duplicates, 1);
  duplicates = 0;
  EXPECT_TRUE(injector.OnRpcCall(1, 2, "shuffle.fetch.7", &duplicates).ok());
  EXPECT_EQ(duplicates, 0);  // spent
}

TEST(FaultInjectorTest, CrashInvokesBoundCallbackExactlyOnce) {
  FaultEvent crash;
  crash.kind = FaultKind::kNodeCrash;
  crash.node = 3;
  crash.after_calls = 2;
  FaultInjector injector(ScriptedPlan({crash}));
  std::vector<int> killed;
  injector.BindCrash([&killed](int node) { killed.push_back(node); });
  int duplicates = 0;
  // The crash counts every RPC call, regardless of target or method.
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(injector.OnRpcCall(0, 1, "anything", &duplicates).ok());
  }
  ASSERT_EQ(killed.size(), 1u);
  EXPECT_EQ(killed[0], 3);
  EXPECT_EQ(injector.injected(FaultKind::kNodeCrash), 1u);
}

TEST(FaultInjectorTest, FetchTimeoutThenCorruptionDetectedByDecode) {
  FaultEvent timeout;
  timeout.kind = FaultKind::kFetchTimeout;
  timeout.count = 2;
  FaultEvent corrupt;
  corrupt.kind = FaultKind::kSegmentCorrupt;
  FaultInjector injector(ScriptedPlan({timeout, corrupt}));

  EXPECT_FALSE(injector.OnShuffleFetch(1, 2, 0).ok());
  EXPECT_FALSE(injector.OnShuffleFetch(1, 2, 0).ok());
  EXPECT_TRUE(injector.OnShuffleFetch(1, 2, 0).ok());

  // A corrupted segment must be detectably broken, not silently wrong.
  mr::MapOutputCollector collector(1, nullptr);
  collector.Emit("key", "value");
  auto finished = collector.Finish(/*sort=*/false, nullptr, nullptr);
  ASSERT_TRUE(finished.ok());
  std::string segment = finished->segments[0];
  ASSERT_TRUE(injector.MaybeCorruptSegment(1, 0, &segment));
  std::vector<Record> records;
  EXPECT_EQ(mr::DecodeSegment(Slice(segment), &records).code(),
            StatusCode::kDataLoss);
  EXPECT_FALSE(injector.MaybeCorruptSegment(1, 0, &segment));  // spent
}

TEST(FaultInjectorTest, SpillHooksFail) {
  FaultEvent wr;
  wr.kind = FaultKind::kSpillWriteError;
  FaultEvent rd;
  rd.kind = FaultKind::kSpillReadError;
  FaultInjector injector(ScriptedPlan({wr, rd}));
  EXPECT_EQ(injector.OnSpillWrite("/tmp/spill0").code(),
            StatusCode::kUnavailable);
  EXPECT_TRUE(injector.OnSpillWrite("/tmp/spill0").ok());
  EXPECT_EQ(injector.OnSpillRead("/tmp/spill0").code(),
            StatusCode::kUnavailable);
  EXPECT_TRUE(injector.OnSpillRead("/tmp/spill0").ok());
}

// ---- Engine-level recovery regressions --------------------------------

mr::JobSpec WordCountSpec(const std::vector<std::string>& files,
                          const std::string& output_path, bool barrierless) {
  apps::AppOptions options;
  options.input_files = files;
  options.output_path = output_path;
  options.num_reducers = 2;
  options.barrierless = barrierless;
  mr::JobSpec spec = apps::MakeWordCountJob(options);
  spec.config.SetInt("job.max_restarts", 3);
  spec.config.SetInt("reduce.max_restarts", 3);
  spec.config.SetDouble("shuffle.fetch.backoff_ms", 0.2);
  spec.config.SetDouble("shuffle.fetch.backoff_max_ms", 2.0);
  return spec;
}

std::vector<std::string> MakeWordCountInput(mr::ClusterContext* cluster) {
  workload::TextGenOptions gen;
  gen.total_bytes = 48 << 10;
  gen.vocabulary = 200;
  gen.seed = 101;
  auto files = workload::GenerateZipfText(cluster, "/in", gen);
  EXPECT_TRUE(files.ok());
  return files.ok() ? *files : std::vector<std::string>{};
}

TEST(EngineRecoveryTest, NodeCrashRecoversWithIdenticalOutput) {
  // Golden: fault-free run on its own cluster with the same seeded
  // workload (generators are deterministic, so the inputs match).
  auto golden_cluster = MakeTestCluster(4, /*block_bytes=*/8 << 10);
  auto golden = testutil::RunAndReadOutput(
      golden_cluster.get(),
      WordCountSpec(MakeWordCountInput(golden_cluster.get()), "/out", true));
  ASSERT_TRUE(golden.ok()) << golden.status();

  // Chaos: node 2 dies mid-job, after some map output is committed and
  // (very likely) partially consumed by the barrier-less reducers.
  // Small blocks => several map tasks => the crash lands mid-shuffle.
  auto cluster = MakeTestCluster(4, /*block_bytes=*/8 << 10);
  auto files = MakeWordCountInput(cluster.get());
  FaultEvent crash;
  crash.kind = FaultKind::kNodeCrash;
  crash.node = 2;
  crash.after_calls = 30;
  FaultInjector injector(ScriptedPlan({crash}));
  cluster->InstallFaultInjector(&injector);
  auto out = testutil::RunAndReadOutput(cluster.get(),
                                        WordCountSpec(files, "/out", true));
  cluster->InstallFaultInjector(nullptr);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(injector.injected(FaultKind::kNodeCrash), 1u);
  EXPECT_EQ(testutil::ExactSequence(*out), testutil::ExactSequence(*golden));
}

TEST(EngineRecoveryTest, ReopenedCommitAccountingStaysConsistent) {
  // Double-commit regression for the fetch-failure path: every map
  // relaunch goes through ReopenTask, so commits == tasks + reopens.
  // If a relaunched attempt could double-commit (or a stale attempt
  // could commit against a reopened task without it), this invariant —
  // or the run itself — breaks.
  auto cluster = MakeTestCluster(4, /*block_bytes=*/8 << 10);
  auto files = MakeWordCountInput(cluster.get());
  mr::JobSpec spec = WordCountSpec(files, "/out", true);

  // Fault-free pass to learn the task count.
  mr::JobRunner runner(cluster.get());
  mr::JobResult clean = runner.Run(spec);
  ASSERT_TRUE(clean.ok()) << clean.status;
  uint64_t num_tasks = clean.counters.Get(mr::kCtrMapTasksCommitted);
  ASSERT_GT(num_tasks, 0u);
  EXPECT_EQ(clean.counters.Get(mr::kCtrMapTaskRetries), 0u);

  FaultEvent crash;
  crash.kind = FaultKind::kNodeCrash;
  crash.node = 1;
  crash.after_calls = 30;
  FaultInjector injector(ScriptedPlan({crash}));
  cluster->InstallFaultInjector(&injector);
  spec.output_path = "/out2";
  mr::JobResult result = runner.Run(spec);
  cluster->InstallFaultInjector(nullptr);
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(injector.injected(FaultKind::kNodeCrash), 1u);
  EXPECT_EQ(result.counters.Get(mr::kCtrMapTasksCommitted),
            num_tasks + result.counters.Get(mr::kCtrMapTaskRetries));
}

TEST(EngineRecoveryTest, OneSlaveClusterRelaunchesLostOutputInPlace) {
  // Regression: on a one-slave cluster, lost-map-output recovery used
  // to plan the relaunch with the lost node excluded, leaving no
  // candidate; Assign silently recorded node = -1 and the executor
  // failed the job with "no node available for map task".  The slave
  // is alive — only the output is gone — so the relaunch must rerun in
  // place and the job must complete.
  auto cluster = MakeTestCluster(1, /*block_bytes=*/8 << 10);
  workload::TextGenOptions gen;
  gen.total_bytes = 4 << 10;  // one block => one map task
  gen.num_files = 1;
  gen.vocabulary = 100;
  gen.seed = 7;
  auto files = workload::GenerateZipfText(cluster.get(), "/in", gen);
  ASSERT_TRUE(files.ok()) << files.status();

  apps::AppOptions options;
  options.input_files = *files;
  options.output_path = "/out";
  options.num_reducers = 1;
  options.barrierless = true;
  mr::JobSpec spec = apps::MakeWordCountJob(options);
  // One retry per fetch: two corrupted serves exhaust it, the tracker
  // declares the attempt's output lost, and the engine relaunches.
  spec.config.SetInt("shuffle.fetch.max_retries", 1);
  spec.config.SetDouble("shuffle.fetch.backoff_ms", 0.2);
  spec.config.SetDouble("shuffle.fetch.backoff_max_ms", 1.0);

  FaultEvent corrupt;
  corrupt.kind = FaultKind::kSegmentCorrupt;
  corrupt.count = 2;  // original fetch + its one retry
  FaultInjector injector(ScriptedPlan({corrupt}));
  cluster->InstallFaultInjector(&injector);
  mr::JobRunner runner(cluster.get());
  mr::JobResult result = runner.Run(spec);
  cluster->InstallFaultInjector(nullptr);
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(injector.injected(FaultKind::kSegmentCorrupt), 2u);
  EXPECT_GE(result.counters.Get(mr::kCtrMapTaskRetries), 1u);

  // The relaunched attempt ran somewhere real (the only slave), and
  // its output matches a fault-free run bit for bit.
  auto golden_cluster = MakeTestCluster(1, /*block_bytes=*/8 << 10);
  auto golden_files = workload::GenerateZipfText(golden_cluster.get(), "/in",
                                                 gen);
  ASSERT_TRUE(golden_files.ok());
  options.input_files = *golden_files;
  auto golden = testutil::RunAndReadOutput(golden_cluster.get(),
                                           apps::MakeWordCountJob(options));
  ASSERT_TRUE(golden.ok()) << golden.status();
  auto actual = mr::JobRunner::ReadAllOutput(cluster->client(0), result);
  ASSERT_TRUE(actual.ok());
  EXPECT_EQ(testutil::ExactSequence(*actual), testutil::ExactSequence(*golden));
}

TEST(EngineRecoveryTest, FetchTimeoutsAreRetriedNotFatal) {
  auto cluster = MakeTestCluster(3);
  auto files = MakeWordCountInput(cluster.get());
  FaultEvent timeout;
  timeout.kind = FaultKind::kFetchTimeout;
  timeout.count = 3;
  FaultInjector injector(ScriptedPlan({timeout}));
  cluster->InstallFaultInjector(&injector);
  auto out = testutil::RunAndReadOutput(cluster.get(),
                                        WordCountSpec(files, "/out", true));
  cluster->InstallFaultInjector(nullptr);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(injector.injected(FaultKind::kFetchTimeout), 3u);
}

TEST(EngineRecoveryTest, InjectedFaultsAppearInCountersAndTimeline) {
  auto cluster = MakeTestCluster(3);
  auto files = MakeWordCountInput(cluster.get());
  FaultEvent timeout;
  timeout.kind = FaultKind::kFetchTimeout;
  timeout.count = 2;
  FaultInjector injector(ScriptedPlan({timeout}));
  cluster->InstallFaultInjector(&injector);
  mr::JobRunner runner(cluster.get());
  mr::JobResult result = runner.Run(WordCountSpec(files, "/out", true));
  cluster->InstallFaultInjector(nullptr);
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(result.counters.Get("fault_injected_fetch_timeout"), 2u);
  EXPECT_GE(result.counters.Get(mr::kCtrShuffleFetchRetries), 2u);
  int fault_events = 0;
  for (const mr::TaskEvent& e : result.events) {
    if (e.phase == mr::Phase::kFault) {
      ++fault_events;
      EXPECT_EQ(e.start, e.end);
    }
  }
  EXPECT_EQ(fault_events, 2);
}

}  // namespace
}  // namespace bmr
