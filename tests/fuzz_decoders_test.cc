// Deterministic seed-driven mutation fuzzing of the three decoders
// that parse untrusted bytes: net/framing.cc DecodeFrame (frames cut
// off a TCP connection), common/serde.h Decoder::GetVarint64 (the
// primitive every other getter builds on), and mr DecodeSegment
// (shuffle segments fetched from remote peers).
//
// No libFuzzer: a Pcg32 seeded per sweep drives the mutation schedule,
// so every run — local, CI, asan, ubsan — explores the exact same
// inputs and a failure reproduces from its (seed, iteration) pair
// alone.  The sweeps run each checked-in corpus entry unmutated first,
// then BMR_FUZZ_ITERS mutations per decoder (default 10000; the
// acceptance bar for check.sh's sanitizer legs).
//
// Each driver checks semantic invariants beyond "did not crash":
// consumed bytes stay in bounds, accepted frames re-encode and
// re-decode to the same fields, accepted varints match a widened
// reference decode (no silently dropped high bits), and the two
// DecodeSegment overloads agree record-for-record with all slices
// inside the shared buffer.  The harness itself is under test too:
// same seed → bit-identical sweep fingerprint, and a deliberately
// broken varint decoder (the PR 4 overflow guard removed) must be
// caught — proof the oracle has teeth, not just coverage.
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/codec.h"
#include "common/rng.h"
#include "common/serde.h"
#include "common/status.h"
#include "gtest/gtest.h"
#include "mr/map_output.h"
#include "mr/record_batch.h"
#include "mr/segment_codec.h"
#include "mr/types.h"
#include "net/framing.h"

namespace bmr {
namespace {

#ifndef BMR_FUZZ_CORPUS_DIR
#define BMR_FUZZ_CORPUS_DIR "tests/testdata/fuzz_corpus"
#endif

int FuzzIters() {
  const char* env = std::getenv("BMR_FUZZ_ITERS");
  if (env && *env) {
    int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 10000;
}

// ---- corpus --------------------------------------------------------

/// One input per non-comment line, hex-encoded (pairs of nibbles; an
/// empty line is the empty input — itself a corpus entry worth having).
std::vector<std::string> LoadCorpus(const std::string& name) {
  std::vector<std::string> corpus;
  std::ifstream in(std::string(BMR_FUZZ_CORPUS_DIR) + "/" + name + ".hex");
  if (!in.is_open()) return corpus;
  std::string line;
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] == '#') continue;
    std::string bytes;
    bool ok = true;
    for (size_t i = 0; i + 1 < line.size(); i += 2) {
      int hi = nibble(line[i]), lo = nibble(line[i + 1]);
      if (hi < 0 || lo < 0) {
        ok = false;
        break;
      }
      bytes.push_back(static_cast<char>((hi << 4) | lo));
    }
    if (ok) corpus.push_back(std::move(bytes));
  }
  return corpus;
}

// ---- mutation engine ----------------------------------------------

/// One deterministic mutation of `base`: flips, byte stomps, truncate,
/// insert, duplicate-splice — the classic dumb-mutator set.  All
/// randomness flows from `rng`, so a sweep's input sequence is a pure
/// function of its seed.
std::string Mutate(const std::string& base, Pcg32* rng) {
  std::string m = base;
  int ops = 1 + static_cast<int>(rng->NextBounded(4));
  for (int op = 0; op < ops; ++op) {
    switch (rng->NextBounded(6)) {
      case 0:  // bit flip
        if (!m.empty()) {
          size_t at = rng->NextBounded(static_cast<uint32_t>(m.size()));
          m[at] = static_cast<char>(m[at] ^ (1u << rng->NextBounded(8)));
        }
        break;
      case 1:  // byte stomp
        if (!m.empty()) {
          size_t at = rng->NextBounded(static_cast<uint32_t>(m.size()));
          m[at] = static_cast<char>(rng->NextBounded(256));
        }
        break;
      case 2:  // truncate tail
        if (!m.empty())
          m.resize(rng->NextBounded(static_cast<uint32_t>(m.size())));
        break;
      case 3: {  // insert random bytes
        size_t at = rng->NextBounded(static_cast<uint32_t>(m.size() + 1));
        size_t n = 1 + rng->NextBounded(8);
        std::string ins;
        for (size_t i = 0; i < n; ++i)
          ins.push_back(static_cast<char>(rng->NextBounded(256)));
        m.insert(at, ins);
        break;
      }
      case 4:  // duplicate a chunk (length-field confusion food)
        if (!m.empty()) {
          size_t at = rng->NextBounded(static_cast<uint32_t>(m.size()));
          size_t n = 1 + rng->NextBounded(
                             static_cast<uint32_t>(m.size() - at));
          m.insert(at, m.substr(at, n));
        }
        break;
      case 5:  // stomp a 32-bit length-ish field with an extreme value
        if (m.size() >= 4) {
          size_t at =
              rng->NextBounded(static_cast<uint32_t>(m.size() - 3));
          uint32_t extremes[] = {0u, 0x7fffffffu, 0xffffffffu,
                                 (64u << 20) + 1};
          uint32_t v = extremes[rng->NextBounded(4)];
          for (int i = 0; i < 4; ++i)
            m[at + i] = static_cast<char>((v >> (8 * i)) & 0xff);
        }
        break;
    }
  }
  return m;
}

/// A decoder driver consumes one input and returns true when every
/// invariant held; `outcome` feeds the sweep fingerprint so behavioral
/// (not just crash) divergence breaks reproducibility comparisons.
using Driver = std::function<bool(const std::string& input, uint8_t* outcome)>;

struct SweepResult {
  int iterations = 0;
  int violations = 0;
  uint64_t fingerprint = 0;  // FNV-1a over (input, outcome) pairs
};

SweepResult RunSweep(const std::vector<std::string>& corpus, uint64_t seed,
                     int iterations, const Driver& driver) {
  SweepResult r;
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](const char* p, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      h ^= static_cast<unsigned char>(p[i]);
      h *= 1099511628211ull;
    }
  };
  Pcg32 rng(seed);
  auto run_one = [&](const std::string& input) {
    uint8_t outcome = 0;
    if (!driver(input, &outcome)) ++r.violations;
    mix(input.data(), input.size());
    mix(reinterpret_cast<const char*>(&outcome), 1);
    ++r.iterations;
  };
  for (const std::string& entry : corpus) run_one(entry);
  for (int i = 0; i < iterations; ++i) {
    const std::string& base =
        corpus[rng.NextBounded(static_cast<uint32_t>(corpus.size()))];
    run_one(Mutate(base, &rng));
  }
  r.fingerprint = h;
  return r;
}

// ---- driver: net/framing.cc DecodeFrame ----------------------------

bool FramingDriver(const std::string& input, uint8_t* outcome) {
  net::Frame frame;
  size_t consumed = 0;
  Status error;
  net::DecodeResult result =
      net::DecodeFrame(Slice(input), &frame, &consumed, &error);
  *outcome = static_cast<uint8_t>(result);
  switch (result) {
    case net::DecodeResult::kNeedMore:
      return true;
    case net::DecodeResult::kError:
      // The error must carry a message: the event loop logs it before
      // dropping the connection.
      return !error.ok();
    case net::DecodeResult::kFrame: {
      if (consumed == 0 || consumed > input.size()) return false;
      // Round-trip oracle: the decoded fields re-encode into a frame
      // that decodes to the same fields (checksum recomputed).
      ByteBuffer re;
      net::EncodeFrame(frame, &re);
      net::Frame again;
      size_t consumed2 = 0;
      Status error2;
      if (net::DecodeFrame(re.AsSlice(), &again, &consumed2, &error2) !=
          net::DecodeResult::kFrame)
        return false;
      return again.type == frame.type && again.request_id == frame.request_id &&
             again.src == frame.src && again.dst == frame.dst &&
             again.method == frame.method &&
             again.status_code == frame.status_code &&
             again.status_message == frame.status_message &&
             again.payload == frame.payload &&
             again.trace.trace_id == frame.trace.trace_id &&
             again.trace.parent_span == frame.trace.parent_span &&
             again.trace.flags == frame.trace.flags;
    }
  }
  return false;
}

// ---- driver: Decoder::GetVarint64 ----------------------------------

/// Reference decode with widened arithmetic: returns true and the
/// exact value only when the encoding terminates within 10 bytes AND
/// no value bit above 2^63's range is present.  Any decoder that
/// accepts an input the reference rejects is aliasing two distinct
/// byte strings onto one value — the bug class the PR 4 guard closed.
bool ReferenceVarint(const std::string& in, uint64_t* value,
                     size_t* consumed) {
  unsigned __int128 result = 0;
  for (size_t i = 0; i < in.size() && i < 10; ++i) {
    uint8_t byte = static_cast<uint8_t>(in[i]);
    result |= static_cast<unsigned __int128>(byte & 0x7f) << (7 * i);
    if (!(byte & 0x80)) {
      if (result > UINT64_MAX) return false;
      *value = static_cast<uint64_t>(result);
      *consumed = i + 1;
      return true;
    }
  }
  return false;  // truncated or longer than 10 bytes
}

/// The production decoder under a pluggable signature so the canary
/// test can swap in a broken build of the same shape.
using VarintFn = std::function<bool(Decoder*, uint64_t*)>;

Driver MakeVarintDriver(const VarintFn& get) {
  return [get](const std::string& input, uint8_t* outcome) {
    Decoder dec{Slice(input)};
    uint64_t v = 0;
    bool ok = get(&dec, &v);
    size_t eaten = input.size() - dec.remaining();
    *outcome = ok ? 1 : 0;
    if (eaten > input.size() || eaten > 10) return false;
    uint64_t ref_v = 0;
    size_t ref_eaten = 0;
    bool ref_ok = ReferenceVarint(input, &ref_v, &ref_eaten);
    if (ok != ref_ok) return false;
    if (ok && (v != ref_v || eaten != ref_eaten)) return false;
    if (ok) {
      // Round trip: the value re-encodes and re-decodes to itself.
      ByteBuffer buf;
      Encoder enc(&buf);
      enc.PutVarint64(v);
      Decoder dec2(buf.AsSlice());
      uint64_t v2 = 0;
      if (!dec2.GetVarint64(&v2) || v2 != v || !dec2.empty()) return false;
    }
    return true;
  };
}

/// GetVarint64 as it was before PR 4: the final-byte guard missing, so
/// bits shifted past 2^63 vanish silently.  Exists only to prove the
/// harness catches this decoder — see HarnessCatchesBrokenDecoder.
bool BrokenGetVarint64(Decoder* dec, uint64_t* v) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63; shift += 7) {
    uint8_t byte;
    if (!dec->GetU8(&byte)) return false;
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if (!(byte & 0x80)) {
      *v = result;
      return true;
    }
  }
  return false;
}

// ---- driver: mr DecodeSegment (both overloads) ---------------------

bool SegmentDriver(const std::string& input, uint8_t* outcome) {
  std::vector<mr::Record> records;
  Status vec_status = mr::DecodeSegment(Slice(input), &records);
  auto shared = std::make_shared<const std::string>(input);
  mr::RecordBatch batch;
  Status batch_status = mr::DecodeSegment(shared, &batch);
  *outcome = vec_status.ok() ? 1 : 0;
  // The copying and the zero-copy overload must agree on accept/reject
  // and, when accepting, on the records themselves.
  if (vec_status.ok() != batch_status.ok()) return false;
  if (!vec_status.ok()) return true;
  if (records.size() != batch.size()) return false;
  const char* lo = shared->data();
  const char* hi = shared->data() + shared->size();
  for (size_t i = 0; i < records.size(); ++i) {
    const mr::RecordBatch::Entry& e = batch[i];
    // Zero-copy entries must view into the shared buffer, in bounds.
    if (!e.key.empty() &&
        (e.key.data() < lo || e.key.data() + e.key.size() > hi))
      return false;
    if (!e.value.empty() &&
        (e.value.data() < lo || e.value.data() + e.value.size() > hi))
      return false;
    if (records[i].key != std::string(e.key.data(), e.key.size()))
      return false;
    if (records[i].value != std::string(e.value.data(), e.value.size()))
      return false;
  }
  return true;
}

// ---- driver: mr DecodeShuffleSegment (block container) -------------

bool ShuffleSegmentDriver(const std::string& input, uint8_t* outcome) {
  std::shared_ptr<const std::string> raw;
  Status st = mr::DecodeShuffleSegment(Slice(input), &raw);
  *outcome = st.ok() ? 1 : 0;
  if (!st.ok()) return !st.message().empty();  // rejects carry a reason
  if (raw == nullptr || raw->size() > mr::kMaxSegmentRawBytes) return false;
  // Round-trip oracle: whatever the decoder accepted re-encodes (under
  // both codecs) into a container that decodes back byte-identically.
  for (const char* name : {"none", "lz4"}) {
    auto codec = FindCodec(name);
    if (!codec.ok()) return false;
    ByteBuffer re;
    mr::EncodeShuffleSegment(Slice(*raw), **codec, /*block_bytes=*/1024, &re);
    std::shared_ptr<const std::string> again;
    if (!mr::DecodeShuffleSegment(re.AsSlice(), &again).ok()) return false;
    if (*again != *raw) return false;
  }
  return true;
}

/// Pluggable decode signature so the corruption oracle can run the
/// production decoder and the deliberately broken canary below.
using SegmentDecodeFn =
    std::function<bool(const std::string& wire, std::string* raw)>;

bool GoodSegmentDecode(const std::string& wire, std::string* raw) {
  std::shared_ptr<const std::string> p;
  if (!mr::DecodeShuffleSegment(Slice(wire), &p).ok()) return false;
  *raw = *p;
  return true;
}

/// The decoder with its teeth pulled: block checksums never verified
/// and a stream that ends mid-segment accepted as-is (silent
/// truncation).  Exists only to prove the corruption oracle catches
/// both bug classes — see HarnessCatchesChecksumSkippingDecoder.
bool BrokenSegmentDecode(const std::string& wire, std::string* raw) {
  Decoder dec{Slice(wire)};
  uint8_t magic = 0, version = 0, codec_id = 0;
  uint64_t raw_total = 0;
  if (!dec.GetU8(&magic) || !dec.GetU8(&version) || !dec.GetU8(&codec_id) ||
      !dec.GetVarint64(&raw_total))
    return false;
  if (magic != 0xB5 || version != 1 || raw_total > mr::kMaxSegmentRawBytes)
    return false;
  std::string out(static_cast<size_t>(raw_total), '\0');
  uint64_t pos = 0;
  while (pos < raw_total) {
    uint64_t raw_len = 0, enc_len = 0, checksum = 0;
    uint8_t flags = 0;
    if (!dec.GetVarint64(&raw_len) || !dec.GetU8(&flags) ||
        !dec.GetVarint64(&enc_len) || !dec.GetFixed64(&checksum))
      break;  // BUG: missing blocks accepted (silent truncation)
    if (raw_len == 0 || raw_len > raw_total - pos) return false;
    Slice enc;
    if (!dec.GetBytes(enc_len, &enc)) break;  // BUG: ditto
    // BUG: `checksum` is read but never compared.
    if (flags == 0) {
      if (enc.size() != raw_len) return false;
      std::memcpy(&out[pos], enc.data(), enc.size());
    } else {
      const Codec* codec = CodecById(flags);
      if (codec == nullptr) return false;
      if (!codec->Decompress(enc, &out[pos], static_cast<size_t>(raw_len))
               .ok())
        return false;
    }
    pos += raw_len;
  }
  *raw = std::move(out);
  return true;
}

/// The corruption oracle: for a seed the production decoder accepts,
/// every single-bit flip and every proper prefix must either be
/// rejected by `fn` or decode to the seed's exact raw bytes (the
/// header codec-id byte is diagnostic, so flipping it legitimately
/// still decodes).  Returns the number of corruptions `fn` accepted
/// with *different* bytes — silent corruption slipping through.
int SegmentCorruptionViolations(const std::string& seed,
                                const SegmentDecodeFn& fn) {
  std::string want;
  if (!GoodSegmentDecode(seed, &want)) return 0;  // not a valid seed
  int violations = 0;
  std::string got;
  for (size_t at = 0; at < seed.size(); ++at) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = seed;
      flipped[at] = static_cast<char>(flipped[at] ^ (1 << bit));
      if (fn(flipped, &got) && got != want) ++violations;
    }
  }
  for (size_t len = 0; len < seed.size(); ++len) {
    if (fn(seed.substr(0, len), &got) && got != want) ++violations;
  }
  return violations;
}

// ---- the sweeps ----------------------------------------------------

class FuzzDecodersTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kSeed = 0xb34db34dull;
};

TEST_F(FuzzDecodersTest, FramingSweep) {
  std::vector<std::string> corpus = LoadCorpus("framing");
  ASSERT_FALSE(corpus.empty()) << "checked-in corpus missing: "
                               << BMR_FUZZ_CORPUS_DIR << "/framing.hex";
  SweepResult r = RunSweep(corpus, kSeed, FuzzIters(), FramingDriver);
  EXPECT_GE(r.iterations, FuzzIters());
  EXPECT_EQ(r.violations, 0);
}

TEST_F(FuzzDecodersTest, VarintSweep) {
  std::vector<std::string> corpus = LoadCorpus("varint");
  ASSERT_FALSE(corpus.empty()) << "checked-in corpus missing: "
                               << BMR_FUZZ_CORPUS_DIR << "/varint.hex";
  Driver driver = MakeVarintDriver(
      [](Decoder* dec, uint64_t* v) { return dec->GetVarint64(v); });
  SweepResult r = RunSweep(corpus, kSeed, FuzzIters(), driver);
  EXPECT_GE(r.iterations, FuzzIters());
  EXPECT_EQ(r.violations, 0);
}

TEST_F(FuzzDecodersTest, SegmentSweep) {
  std::vector<std::string> corpus = LoadCorpus("segment");
  ASSERT_FALSE(corpus.empty()) << "checked-in corpus missing: "
                               << BMR_FUZZ_CORPUS_DIR << "/segment.hex";
  SweepResult r = RunSweep(corpus, kSeed, FuzzIters(), SegmentDriver);
  EXPECT_GE(r.iterations, FuzzIters());
  EXPECT_EQ(r.violations, 0);
}

TEST_F(FuzzDecodersTest, ShuffleSegmentSweepNoneCodec) {
  std::vector<std::string> corpus = LoadCorpus("segment_none");
  ASSERT_FALSE(corpus.empty()) << "checked-in corpus missing: "
                               << BMR_FUZZ_CORPUS_DIR << "/segment_none.hex";
  SweepResult r = RunSweep(corpus, kSeed, FuzzIters(), ShuffleSegmentDriver);
  EXPECT_GE(r.iterations, FuzzIters());
  EXPECT_EQ(r.violations, 0);
}

TEST_F(FuzzDecodersTest, ShuffleSegmentSweepLz4Codec) {
  std::vector<std::string> corpus = LoadCorpus("segment_lz4");
  ASSERT_FALSE(corpus.empty()) << "checked-in corpus missing: "
                               << BMR_FUZZ_CORPUS_DIR << "/segment_lz4.hex";
  SweepResult r = RunSweep(corpus, kSeed, FuzzIters(), ShuffleSegmentDriver);
  EXPECT_GE(r.iterations, FuzzIters());
  EXPECT_EQ(r.violations, 0);
}

TEST_F(FuzzDecodersTest, EveryByteFlipIsRejectedOrDecodesIdentically) {
  // The checksum-rejection oracle: no single-bit corruption of a valid
  // container may silently change the decoded bytes.  (The diagnostic
  // codec-id header byte may flip and still decode — identically.)
  int valid_seeds = 0;
  for (const char* name : {"segment_none", "segment_lz4"}) {
    for (const std::string& seed : LoadCorpus(name)) {
      std::string want;
      if (!GoodSegmentDecode(seed, &want)) continue;
      ++valid_seeds;
      EXPECT_EQ(SegmentCorruptionViolations(seed, GoodSegmentDecode), 0)
          << "corrupted " << name << " seed accepted with different bytes";
    }
  }
  EXPECT_GE(valid_seeds, 8) << "corpus lost its valid seeds";
}

TEST_F(FuzzDecodersTest, HarnessCatchesChecksumSkippingDecoder) {
  // The corrupted-block canary: run the same oracle against a decoder
  // that skips checksum verification and tolerates a truncated block
  // stream.  If this passes clean, the green sweeps above prove
  // nothing.
  int violations = 0;
  for (const char* name : {"segment_none", "segment_lz4"}) {
    for (const std::string& seed : LoadCorpus(name)) {
      violations += SegmentCorruptionViolations(seed, BrokenSegmentDecode);
    }
  }
  EXPECT_GT(violations, 0)
      << "harness failed to flag silent corruption and truncation";
}

TEST_F(FuzzDecodersTest, ShuffleSegmentCorpusSeedsAreWellFormed) {
  // Each codec's corpus needs accepting seeds (mutating only garbage
  // never reaches the deep block paths), and the lz4 corpus must carry
  // real compression: at least one seed whose wire form is smaller
  // than its decoded bytes.
  for (const char* name : {"segment_none", "segment_lz4"}) {
    int accepted = 0;
    bool shrank = false;
    for (const std::string& seed : LoadCorpus(name)) {
      std::string raw;
      if (!GoodSegmentDecode(seed, &raw)) continue;
      ++accepted;
      if (seed.size() < raw.size()) shrank = true;
    }
    EXPECT_GE(accepted, 3) << name;
    if (std::string(name) == "segment_lz4") {
      EXPECT_TRUE(shrank) << "lz4 corpus has no actually-compressed seed";
    }
  }
}

// ---- the harness under test ----------------------------------------

TEST_F(FuzzDecodersTest, SameSeedIsBitReproducible) {
  std::vector<std::string> corpus = LoadCorpus("framing");
  ASSERT_FALSE(corpus.empty());
  SweepResult a = RunSweep(corpus, 42, 500, FramingDriver);
  SweepResult b = RunSweep(corpus, 42, 500, FramingDriver);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.iterations, b.iterations);
  SweepResult c = RunSweep(corpus, 43, 500, FramingDriver);
  EXPECT_NE(a.fingerprint, c.fingerprint)
      << "different seeds explored identical input sequences";
}

TEST_F(FuzzDecodersTest, HarnessCatchesBrokenDecoder) {
  // The canary: remove the overflow guard and the sweep must report
  // violations — otherwise the three green sweeps above mean nothing.
  std::vector<std::string> corpus = LoadCorpus("varint");
  ASSERT_FALSE(corpus.empty());
  Driver broken = MakeVarintDriver(BrokenGetVarint64);
  SweepResult r = RunSweep(corpus, kSeed, 2000, broken);
  EXPECT_GT(r.violations, 0)
      << "harness failed to flag a decoder that silently drops high bits";
}

TEST_F(FuzzDecodersTest, CorpusSeedsAreWellFormed) {
  // At least one seed per decoder must be a currently-valid encoding:
  // mutating only garbage never reaches the deep accept paths.
  bool frame_ok = false;
  for (const std::string& s : LoadCorpus("framing")) {
    net::Frame f;
    size_t consumed = 0;
    Status error;
    if (net::DecodeFrame(Slice(s), &f, &consumed, &error) ==
        net::DecodeResult::kFrame)
      frame_ok = true;
  }
  EXPECT_TRUE(frame_ok);
  bool varint_ok = false, varint_overlong = false;
  for (const std::string& s : LoadCorpus("varint")) {
    Decoder dec{Slice(s)};
    uint64_t v = 0;
    if (dec.GetVarint64(&v))
      varint_ok = true;
    else if (s.size() >= 10)
      varint_overlong = true;  // the adversarial overlong seeds
  }
  EXPECT_TRUE(varint_ok);
  EXPECT_TRUE(varint_overlong);
  bool segment_ok = false;
  for (const std::string& s : LoadCorpus("segment")) {
    std::vector<mr::Record> records;
    if (mr::DecodeSegment(Slice(s), &records).ok() && !records.empty())
      segment_ok = true;
  }
  EXPECT_TRUE(segment_ok);
}

}  // namespace
}  // namespace bmr
