// Tests for the in-process RPC fabric.
#include <gtest/gtest.h>

#include <thread>

#include "common/serde.h"
#include "net/rpc.h"

namespace bmr::net {
namespace {

TEST(RpcFabricTest, CallInvokesHandler) {
  RpcFabric fabric(4);
  fabric.Register(1, "echo", [](Slice req, ByteBuffer* resp) {
    resp->Append(req);
    return Status::Ok();
  });
  ByteBuffer resp;
  ASSERT_TRUE(fabric.Call(0, 1, "echo", "hello", &resp).ok());
  EXPECT_EQ(resp.ToString(), "hello");
}

TEST(RpcFabricTest, UnknownMethodIsNotFound) {
  RpcFabric fabric(2);
  ByteBuffer resp;
  EXPECT_EQ(fabric.Call(0, 1, "nope", "", &resp).code(),
            StatusCode::kNotFound);
}

TEST(RpcFabricTest, HandlerErrorPropagates) {
  RpcFabric fabric(2);
  fabric.Register(1, "fail", [](Slice, ByteBuffer*) {
    return Status::Unavailable("down");
  });
  ByteBuffer resp;
  EXPECT_EQ(fabric.Call(0, 1, "fail", "", &resp).code(),
            StatusCode::kUnavailable);
}

TEST(RpcFabricTest, KillNodeDropsItsHandlersOnly) {
  RpcFabric fabric(3);
  fabric.Register(1, "svc", [](Slice, ByteBuffer*) { return Status::Ok(); });
  fabric.Register(2, "svc", [](Slice, ByteBuffer*) { return Status::Ok(); });
  fabric.KillNode(1);
  ByteBuffer resp;
  EXPECT_EQ(fabric.Call(0, 1, "svc", "", &resp).code(), StatusCode::kNotFound);
  EXPECT_TRUE(fabric.Call(0, 2, "svc", "", &resp).ok());
}

TEST(RpcFabricTest, LinkStatsMeterTraffic) {
  RpcFabric fabric(3);
  fabric.Register(2, "pad", [](Slice, ByteBuffer* resp) {
    resp->Append(Slice(std::string(100, 'x')));
    return Status::Ok();
  });
  ByteBuffer resp;
  ASSERT_TRUE(fabric.Call(1, 2, "pad", "abc", &resp).ok());
  ASSERT_TRUE(fabric.Call(1, 2, "pad", "defg", &resp).ok());
  LinkStats stats = fabric.GetLinkStats(1, 2);
  EXPECT_EQ(stats.calls, 2u);
  EXPECT_EQ(stats.request_bytes, 7u);
  EXPECT_EQ(stats.response_bytes, 200u);
  // Local (self) calls are excluded from remote totals.
  fabric.Register(1, "pad", [](Slice, ByteBuffer*) { return Status::Ok(); });
  ASSERT_TRUE(fabric.Call(1, 1, "pad", "zzzz", &resp).ok());
  LinkStats total = fabric.TotalRemoteTraffic();
  EXPECT_EQ(total.calls, 2u);
  EXPECT_EQ(total.request_bytes, 7u);
}

TEST(RpcFabricTest, ConcurrentCallsAreSafe) {
  RpcFabric fabric(4);
  std::atomic<int> hits{0};
  fabric.Register(0, "inc", [&hits](Slice, ByteBuffer*) {
    hits.fetch_add(1);
    return Status::Ok();
  });
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&fabric] {
      ByteBuffer resp;
      for (int i = 0; i < 500; ++i) {
        ASSERT_TRUE(fabric.Call(1, 0, "inc", "", &resp).ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(hits.load(), 4000);
}

TEST(RpcFabricTest, ReRegisterReplacesHandler) {
  RpcFabric fabric(2);
  fabric.Register(0, "v", [](Slice, ByteBuffer* r) {
    r->Append(Slice("one"));
    return Status::Ok();
  });
  fabric.Register(0, "v", [](Slice, ByteBuffer* r) {
    r->Append(Slice("two"));
    return Status::Ok();
  });
  ByteBuffer resp;
  ASSERT_TRUE(fabric.Call(1, 0, "v", "", &resp).ok());
  EXPECT_EQ(resp.ToString(), "two");
}

}  // namespace
}  // namespace bmr::net
