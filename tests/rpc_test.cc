// Tests for the node-to-node transport layer, run against BOTH
// implementations: every case in TransportTest is instantiated once
// over the in-process registry and once over real TCP/epoll sockets,
// which is the per-method form of the PR's payoff gate (everything
// above net/ must be unable to tell the transports apart).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/serde.h"
#include "obs/metric_names.h"
#include "obs/trace.h"
#include "faults/fault_injector.h"
#include "faults/fault_plan.h"
#include "mr/map_output.h"
#include "net/tcp_transport.h"
#include "net/transport.h"
#include "transport_test_util.h"

namespace bmr::net {
namespace {

class TransportTest : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<Transport> Make(int num_nodes,
                                  const TransportOptions& options = {}) {
    return testutil::MakeTransportOfKind(GetParam(), num_nodes, options);
  }
  bool IsTcp() const { return std::string(GetParam()) == "tcp"; }
};

TEST_P(TransportTest, CallInvokesHandler) {
  auto transport = Make(4);
  transport->Register(1, "echo", [](Slice req, ByteBuffer* resp) {
    resp->Append(req);
    return Status::Ok();
  });
  ByteBuffer resp;
  ASSERT_TRUE(transport->Call(0, 1, "echo", "hello", &resp).ok());
  EXPECT_EQ(resp.ToString(), "hello");
}

// Tentpole (GUIDE §15): with a tracer installed, a Call carries its
// trace context on the wire and the serving side opens an rpc.handler
// span under the CALLER's open span — one stitched tree, same shape on
// both transports even though TCP crosses real sockets to get there.
TEST_P(TransportTest, HandlerSpanStitchesUnderCallerSpan) {
  auto transport = Make(3);
  transport->Register(2, "echo", [](Slice req, ByteBuffer* resp) {
    resp->Append(req);
    return Status::Ok();
  });

  obs::Tracer tracer;
  tracer.Enable();
  tracer.RestartClock();
  transport->SetObserver(&tracer);
  obs::SpanId caller_id;
  {
    obs::ScopedSpan caller(&tracer, "caller", "test");
    caller_id = caller.id();
    ByteBuffer resp;
    ASSERT_TRUE(transport->Call(0, 2, "echo", "ping", &resp).ok());
  }
  transport->SetObserver(nullptr);

  obs::TraceLog log = tracer.CollectTrace();
  size_t handlers = 0;
  for (const obs::Span& s : log.spans) {
    if (std::strcmp(s.name, obs::kSpanRpcHandler) != 0) continue;
    ++handlers;
    EXPECT_EQ(s.parent, caller_id) << "handler must stitch under the caller";
    EXPECT_STREQ(s.category, "rpc");
    EXPECT_EQ(s.arg, 2) << "arg is the serving node";
  }
  EXPECT_EQ(handlers, 1u);
}

// Without an observer no trace context goes on the wire and no handler
// spans appear — the traced and untraced wire formats interoperate.
TEST_P(TransportTest, UntracedCallsRecordNoHandlerSpans) {
  auto transport = Make(2);
  transport->Register(1, "echo", [](Slice req, ByteBuffer* resp) {
    resp->Append(req);
    return Status::Ok();
  });
  ByteBuffer resp;
  ASSERT_TRUE(transport->Call(0, 1, "echo", "x", &resp).ok());

  // Installing the observer AFTER untraced calls yields a clean slate.
  obs::Tracer tracer;
  tracer.Enable();
  transport->SetObserver(&tracer);
  transport->SetObserver(nullptr);
  EXPECT_TRUE(tracer.CollectTrace().spans.empty());
}

TEST_P(TransportTest, UnknownMethodIsNotFound) {
  auto transport = Make(2);
  ByteBuffer resp;
  EXPECT_EQ(transport->Call(0, 1, "nope", "", &resp).code(),
            StatusCode::kNotFound);
}

TEST_P(TransportTest, HandlerErrorPropagates) {
  auto transport = Make(2);
  transport->Register(1, "fail", [](Slice, ByteBuffer*) {
    return Status::Unavailable("down");
  });
  ByteBuffer resp;
  EXPECT_EQ(transport->Call(0, 1, "fail", "", &resp).code(),
            StatusCode::kUnavailable);
}

TEST_P(TransportTest, KillNodeDropsItsHandlersOnly) {
  auto transport = Make(3);
  transport->Register(1, "svc",
                      [](Slice, ByteBuffer*) { return Status::Ok(); });
  transport->Register(2, "svc",
                      [](Slice, ByteBuffer*) { return Status::Ok(); });
  transport->KillNode(1);
  ByteBuffer resp;
  EXPECT_EQ(transport->Call(0, 1, "svc", "", &resp).code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(transport->Call(0, 2, "svc", "", &resp).ok());
}

TEST_P(TransportTest, LinkStatsMeterTraffic) {
  auto transport = Make(3);
  transport->Register(2, "pad", [](Slice, ByteBuffer* resp) {
    resp->Append(Slice(std::string(100, 'x')));
    return Status::Ok();
  });
  ByteBuffer resp;
  ASSERT_TRUE(transport->Call(1, 2, "pad", "abc", &resp).ok());
  ASSERT_TRUE(transport->Call(1, 2, "pad", "defg", &resp).ok());
  LinkStats stats = transport->GetLinkStats(1, 2);
  EXPECT_EQ(stats.calls, 2u);
  EXPECT_EQ(stats.request_bytes, 7u);
  EXPECT_EQ(stats.response_bytes, 200u);
  // Local (self) calls are excluded from remote totals.
  transport->Register(1, "pad",
                      [](Slice, ByteBuffer*) { return Status::Ok(); });
  ASSERT_TRUE(transport->Call(1, 1, "pad", "zzzz", &resp).ok());
  LinkStats total = transport->TotalRemoteTraffic();
  EXPECT_EQ(total.calls, 2u);
  EXPECT_EQ(total.request_bytes, 7u);
}

TEST_P(TransportTest, ConcurrentCallsAreSafe) {
  auto transport = Make(4);
  std::atomic<int> hits{0};
  transport->Register(0, "inc", [&hits](Slice, ByteBuffer*) {
    hits.fetch_add(1);
    return Status::Ok();
  });
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&transport] {
      ByteBuffer resp;
      for (int i = 0; i < 500; ++i) {
        ASSERT_TRUE(transport->Call(1, 0, "inc", "", &resp).ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(hits.load(), 4000);
}

TEST_P(TransportTest, ReRegisterReplacesHandlerAndIsCounted) {
  auto transport = Make(2);
  EXPECT_EQ(transport->handler_reregistrations(), 0u);
  transport->Register(0, "v", [](Slice, ByteBuffer* r) {
    r->Append(Slice("one"));
    return Status::Ok();
  });
  // Registering a *different* method is not a re-registration.
  transport->Register(0, "w",
                      [](Slice, ByteBuffer*) { return Status::Ok(); });
  EXPECT_EQ(transport->handler_reregistrations(), 0u);
  transport->Register(0, "v", [](Slice, ByteBuffer* r) {
    r->Append(Slice("two"));
    return Status::Ok();
  });
  ByteBuffer resp;
  ASSERT_TRUE(transport->Call(1, 0, "v", "", &resp).ok());
  EXPECT_EQ(resp.ToString(), "two");
  // The overwrite kept working (DFS restart relies on it) but is no
  // longer silent: bmr_rpc_handler_reregistered_total sees it.
  EXPECT_EQ(transport->handler_reregistrations(), 1u);
  transport->KillNode(0);
  transport->Register(0, "v",
                      [](Slice, ByteBuffer*) { return Status::Ok(); });
  // Re-adding after KillNode is a fresh registration, not an overwrite.
  EXPECT_EQ(transport->handler_reregistrations(), 1u);
}

// Regression test for KillNode racing in-flight Calls: the handler is
// copied out of the registry before dispatch, so a call either runs to
// completion or observes the node as dead (NotFound) — it must never
// crash or see a half-destroyed handler.
TEST_P(TransportTest, KillNodeRacingCallCompletesOrNotFound) {
  auto transport = Make(3);
  std::atomic<bool> stop{false};
  transport->Register(1, "slow", [](Slice, ByteBuffer* resp) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
    resp->Append(Slice("done"));
    return Status::Ok();
  });
  std::atomic<int> completed{0};
  std::atomic<int> not_found{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&] {
      ByteBuffer resp;
      while (!stop.load()) {
        Status st = transport->Call(0, 1, "slow", "x", &resp);
        if (st.ok()) {
          ASSERT_EQ(resp.ToString(), "done");
          completed.fetch_add(1);
        } else {
          ASSERT_EQ(st.code(), StatusCode::kNotFound) << st;
          not_found.fetch_add(1);
        }
      }
    });
  }
  // Let calls get in flight, then yank the node out from under them.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  transport->KillNode(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  stop.store(true);
  for (auto& t : callers) t.join();
  EXPECT_GT(completed.load(), 0);
  EXPECT_GT(not_found.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(AllTransports, TransportTest,
                         ::testing::Values("inproc", "tcp"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST(TransportFactoryTest, RejectsUnknownKind) {
  auto transport = CreateTransport("carrier-pigeon", 2);
  ASSERT_FALSE(transport.ok());
  EXPECT_EQ(transport.status().code(), StatusCode::kInvalidArgument);
}

TEST(TransportFactoryTest, EmptyKindIsInproc) {
  auto transport = CreateTransport("", 2);
  ASSERT_TRUE(transport.ok());
  EXPECT_EQ((*transport)->num_nodes(), 2);
}

TEST(TransportFactoryTest, RejectsNonPositiveNodeCount) {
  EXPECT_FALSE(CreateTransport("inproc", 0).ok());
  EXPECT_FALSE(CreateTransport("tcp", -1).ok());
}

// Satellite coverage: on the wire transport an injected duplicate is a
// real extra frame, counted exactly once per wire send in LinkStats,
// and deduped server-side so the handler still runs exactly once.
TEST(TcpTransportTest, InjectedDuplicateIsOneExtraWireSend) {
  auto created = TcpTransport::Create(2, {});
  ASSERT_TRUE(created.ok()) << created.status();
  std::unique_ptr<TcpTransport> transport = std::move(*created);
  std::atomic<int> executions{0};
  transport->Register(1, "read", [&executions](Slice, ByteBuffer* resp) {
    executions.fetch_add(1);
    resp->Append(Slice("payload"));
    return Status::Ok();
  });

  faults::FaultEvent dup;
  dup.kind = faults::FaultKind::kRpcDuplicate;
  dup.method_prefix = "read";
  faults::FaultPlan plan;
  plan.events = {dup};
  faults::FaultInjector injector(plan);
  transport->SetFaultInjector(&injector);

  ByteBuffer resp;
  ASSERT_TRUE(transport->Call(0, 1, "read", "abcde", &resp).ok());
  EXPECT_EQ(resp.ToString(), "payload");
  transport->SetFaultInjector(nullptr);
  ASSERT_TRUE(transport->Call(0, 1, "read", "abcde", &resp).ok());

  EXPECT_EQ(injector.injected(faults::FaultKind::kRpcDuplicate), 1u);
  // The duplicate's replayed response is written asynchronously; give
  // the server a moment to finish the third wire send before checking.
  LinkStats stats;
  for (int i = 0; i < 200; ++i) {
    stats = transport->GetLinkStats(0, 1);
    if (stats.response_bytes >= 21u) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // Call 1 put two frames on the wire (original + injected duplicate),
  // call 2 put one: three wire sends, each counted exactly once.
  EXPECT_EQ(stats.calls, 3u);
  EXPECT_EQ(stats.request_bytes, 15u);
  // The duplicate was answered from the response keeper, not by a
  // second handler execution...
  EXPECT_EQ(executions.load(), 2);
  EXPECT_GE(transport->response_keeper().replays(), 1u);
  // ...but its replayed response is still a wire send of its own.
  EXPECT_EQ(stats.response_bytes, 21u);
}

// Satellite parity assert: the segment-corruption hook fires at the
// serving node's wire boundary (RegisterShuffleService), so the exact
// same corrupted bytes come back over the in-process registry and over
// real TCP — and the store copy stays intact for the retry fetch.
// Before the move the hook ran client-side after the fetch, which on
// TCP corrupted bytes that had already crossed the socket cleanly.
TEST(ShuffleCorruptionParityTest, BothTransportsCorruptAtTheWireBoundary) {
  const std::string payload = "framed-segment-bytes-to-corrupt";
  std::map<std::string, std::string> corrupted;
  for (const char* kind : {"inproc", "tcp"}) {
    auto transport = testutil::MakeTransportOfKind(kind, 2);
    ASSERT_NE(transport, nullptr);
    mr::MapOutputStore store;
    store.Put(/*map_task=*/0, /*partition=*/0, payload);

    faults::FaultEvent corrupt;
    corrupt.kind = faults::FaultKind::kSegmentCorrupt;
    faults::FaultPlan plan;
    plan.events = {corrupt};
    faults::FaultInjector injector(plan);
    mr::RegisterShuffleService(transport.get(), /*node=*/0, &store,
                               /*job_id=*/0, &injector);

    std::string first, second;
    ASSERT_TRUE(mr::FetchSegment(transport.get(), /*from_node=*/0,
                                 /*at_node=*/1, 0, 0, &first)
                    .ok());
    ASSERT_TRUE(mr::FetchSegment(transport.get(), /*from_node=*/0,
                                 /*at_node=*/1, 0, 0, &second)
                    .ok());
    EXPECT_EQ(injector.injected(faults::FaultKind::kSegmentCorrupt), 1u)
        << kind;
    EXPECT_NE(first, payload) << kind << ": corruption never hit the wire";
    EXPECT_EQ(second, payload) << kind << ": store copy was not intact";
    corrupted[kind] = first;
    mr::UnregisterShuffleService(transport.get(), 0, 0);
  }
  EXPECT_EQ(corrupted["inproc"], corrupted["tcp"])
      << "transports injected corruption at different points";
}

}  // namespace
}  // namespace bmr::net
