// Tests for cross-job memoization (core::JobSession, the §8
// future-work feature): an incremental run over new input seeded with
// the previous run's partial results must equal a from-scratch run
// over the union.
#include <gtest/gtest.h>

#include <map>

#include "apps/lastfm.h"
#include "apps/sort.h"
#include "apps/wordcount.h"
#include "core/barrierless_driver.h"
#include "core/job_session.h"
#include "test_util.h"
#include "workload/generators.h"

namespace bmr {
namespace {

using mr::JobResult;
using mr::JobRunner;
using testutil::MakeTestCluster;

TEST(JobSessionTest, SaveGetClear) {
  core::JobSession session;
  EXPECT_TRUE(session.empty());
  EXPECT_EQ(session.Get(0), nullptr);
  session.Save(0, {{"a", "1"}, {"b", "2"}});
  ASSERT_NE(session.Get(0), nullptr);
  EXPECT_EQ(session.Get(0)->size(), 2u);
  EXPECT_EQ(session.TotalPartials(), 2u);
  EXPECT_FALSE(session.empty());
  session.Clear();
  EXPECT_TRUE(session.empty());
}

TEST(JobSessionTest, IncrementalWordCountEqualsFromScratch) {
  auto cluster = MakeTestCluster(3);
  workload::TextGenOptions gen;
  gen.total_bytes = 100 << 10;
  gen.vocabulary = 300;
  gen.num_files = 2;
  gen.seed = 5;
  auto batch_a = workload::GenerateZipfText(cluster.get(), "/day1", gen);
  ASSERT_TRUE(batch_a.ok());
  gen.seed = 6;
  auto batch_b = workload::GenerateZipfText(cluster.get(), "/day2", gen);
  ASSERT_TRUE(batch_b.ok());

  JobRunner runner(cluster.get());
  core::JobSession session;

  // Run 1: day-1 data, snapshot into the session.
  apps::AppOptions options;
  options.input_files = *batch_a;
  options.output_path = "/out/day1";
  options.num_reducers = 3;
  options.barrierless = true;
  mr::JobSpec spec = apps::MakeWordCountJob(options);
  spec.session = &session;
  JobResult day1 = runner.Run(spec);
  ASSERT_TRUE(day1.ok()) << day1.status;
  EXPECT_GT(session.TotalPartials(), 0u);

  // Run 2: ONLY day-2 data, seeded from the session.
  options.input_files = *batch_b;
  options.output_path = "/out/day2-incremental";
  spec = apps::MakeWordCountJob(options);
  spec.session = &session;
  JobResult incremental = runner.Run(spec);
  ASSERT_TRUE(incremental.ok()) << incremental.status;

  // Reference: from scratch over the union.
  apps::AppOptions full;
  full.input_files = *batch_a;
  full.input_files.insert(full.input_files.end(), batch_b->begin(),
                          batch_b->end());
  full.output_path = "/out/full";
  full.num_reducers = 3;
  full.barrierless = true;
  JobResult reference = runner.Run(apps::MakeWordCountJob(full));
  ASSERT_TRUE(reference.ok());

  auto inc_out = JobRunner::ReadAllOutput(cluster->client(0), incremental);
  auto ref_out = JobRunner::ReadAllOutput(cluster->client(0), reference);
  ASSERT_TRUE(inc_out.ok());
  ASSERT_TRUE(ref_out.ok());
  EXPECT_EQ(testutil::AsMap(*inc_out), testutil::AsMap(*ref_out));
  // The incremental run only read day-2 input.
  EXPECT_LT(incremental.counters.Get(mr::kCtrMapInputRecords),
            reference.counters.Get(mr::kCtrMapInputRecords));
}

TEST(JobSessionTest, ThreeChainedIncrementsStayConsistent) {
  auto cluster = MakeTestCluster(3);
  JobRunner runner(cluster.get());
  core::JobSession session;

  std::vector<std::string> all_files;
  for (int day = 0; day < 3; ++day) {
    workload::ListenGenOptions gen;
    gen.count = 3000;
    gen.num_users = 30;
    gen.num_tracks = 100;
    gen.seed = 100 + day;
    auto files = workload::GenerateListens(
        cluster.get(), "/day" + std::to_string(day), gen);
    ASSERT_TRUE(files.ok());

    apps::AppOptions options;
    options.input_files = *files;
    options.output_path = "/out/inc-" + std::to_string(day);
    options.num_reducers = 2;
    options.barrierless = true;
    mr::JobSpec spec = apps::MakeLastFmJob(options);
    spec.session = &session;
    JobResult result = runner.Run(spec);
    ASSERT_TRUE(result.ok()) << "day " << day << ": " << result.status;

    all_files.insert(all_files.end(), files->begin(), files->end());

    // Compare the chained result against from-scratch-so-far.
    apps::AppOptions full;
    full.input_files = all_files;
    full.output_path = "/out/full-" + std::to_string(day);
    full.num_reducers = 2;
    full.barrierless = true;
    JobResult reference = runner.Run(apps::MakeLastFmJob(full));
    ASSERT_TRUE(reference.ok());

    auto inc_out = JobRunner::ReadAllOutput(cluster->client(0), result);
    auto ref_out = JobRunner::ReadAllOutput(cluster->client(0), reference);
    ASSERT_TRUE(inc_out.ok());
    ASSERT_TRUE(ref_out.ok());
    EXPECT_EQ(testutil::AsMap(*inc_out), testutil::AsMap(*ref_out))
        << "diverged at day " << day;
  }
}

TEST(JobSessionTest, WorksAcrossSpillingStores) {
  auto cluster = MakeTestCluster(2);
  workload::TextGenOptions gen;
  gen.total_bytes = 60 << 10;
  gen.vocabulary = 150;
  gen.seed = 9;
  auto batch_a = workload::GenerateZipfText(cluster.get(), "/a", gen);
  gen.seed = 10;
  auto batch_b = workload::GenerateZipfText(cluster.get(), "/b", gen);
  ASSERT_TRUE(batch_a.ok());
  ASSERT_TRUE(batch_b.ok());

  JobRunner runner(cluster.get());
  core::JobSession session;
  apps::AppOptions options;
  options.num_reducers = 2;
  options.barrierless = true;
  options.store.type = core::StoreType::kSpillMerge;
  options.store.spill_threshold_bytes = 4 << 10;  // spill constantly

  options.input_files = *batch_a;
  options.output_path = "/out/a";
  mr::JobSpec spec = apps::MakeWordCountJob(options);
  spec.session = &session;
  ASSERT_TRUE(runner.Run(spec).ok());

  options.input_files = *batch_b;
  options.output_path = "/out/b";
  spec = apps::MakeWordCountJob(options);
  spec.session = &session;
  JobResult incremental = runner.Run(spec);
  ASSERT_TRUE(incremental.ok()) << incremental.status;

  apps::AppOptions full;
  full.input_files = *batch_a;
  full.input_files.insert(full.input_files.end(), batch_b->begin(),
                          batch_b->end());
  full.output_path = "/out/ref";
  full.num_reducers = 2;
  full.barrierless = true;
  JobResult reference = runner.Run(apps::MakeWordCountJob(full));
  ASSERT_TRUE(reference.ok());

  auto inc_out = JobRunner::ReadAllOutput(cluster->client(0), incremental);
  auto ref_out = JobRunner::ReadAllOutput(cluster->client(0), reference);
  ASSERT_TRUE(inc_out.ok());
  ASSERT_TRUE(ref_out.ok());
  EXPECT_EQ(testutil::AsMap(*inc_out), testutil::AsMap(*ref_out));
}

TEST(JobSessionTest, DriverRejectsLatePreload) {
  core::StoreConfig store;
  Config config;
  class Sum final : public core::IncrementalReducer {
   public:
    void Update(Slice, Slice, std::string* partial,
                mr::ReduceEmitter*) override {
      *partial += "x";
    }
  } reducer;
  core::BarrierlessDriver driver(&reducer, store, config);
  std::vector<mr::Record> out;
  mr::VectorEmitter<std::vector<mr::Record>> emitter(&out);
  ASSERT_TRUE(driver.PreloadPartial("k", "v").ok());
  ASSERT_TRUE(driver.Consume("k", "1", &emitter).ok());
  EXPECT_EQ(driver.PreloadPartial("z", "v").code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace bmr
