// MetricsRegistry and the shared JobMetrics reporting schema: counter
// aggregation, map-completion bookkeeping, snapshot consistency, and
// the simulator's projection onto the same schema as the real engine.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "mr/metrics.h"
#include "mr/types.h"
#include "simmr/hadoop_sim.h"

namespace bmr {
namespace {

using mr::JobMetrics;
using mr::MetricsRegistry;

TEST(MetricsRegistryTest, CountersAddAndMerge) {
  MetricsRegistry metrics;
  metrics.AddCounter(mr::kCtrMapTasksLaunched, 2);
  metrics.AddCounter(mr::kCtrMapTasksLaunched, 3);

  mr::Counters task_local;
  task_local.Add(mr::kCtrMapInputRecords, 10);
  task_local.Add(mr::kCtrMapTasksLaunched, 1);
  metrics.MergeCounters(task_local);

  EXPECT_EQ(metrics.GetCounter(mr::kCtrMapTasksLaunched), 6u);
  EXPECT_EQ(metrics.GetCounter(mr::kCtrMapInputRecords), 10u);
  EXPECT_EQ(metrics.GetCounter(mr::kCtrShuffleBytes), 0u);
}

TEST(MetricsRegistryTest, MapDoneTracksFirstAndLast) {
  MetricsRegistry metrics;
  metrics.RestartClock();
  metrics.NoteMapDone();
  JobMetrics after_first = metrics.Snapshot();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  metrics.NoteMapDone();
  JobMetrics after_second = metrics.Snapshot();

  EXPECT_GT(after_first.first_map_done, 0);
  EXPECT_EQ(after_first.first_map_done, after_first.last_map_done);
  // The first completion time is pinned; the last one advances.
  EXPECT_EQ(after_second.first_map_done, after_first.first_map_done);
  EXPECT_GT(after_second.last_map_done, after_second.first_map_done);
}

TEST(MetricsRegistryTest, SnapshotCarriesEverythingReported) {
  MetricsRegistry metrics;
  metrics.RestartClock();
  metrics.SampleMemory(/*reducer=*/1, /*bytes=*/4096);
  metrics.NoteOutputFile("/out/part-r-00000");
  metrics.NoteOutputFile("/out/part-r-00001");
  metrics.RecordEvent(mr::Phase::kMap, /*task_id=*/3, /*node=*/2, 0.1, 0.4);

  JobMetrics m = metrics.Snapshot();
  ASSERT_EQ(m.memory_samples.size(), 1u);
  EXPECT_EQ(m.memory_samples[0].reducer, 1);
  EXPECT_EQ(m.memory_samples[0].bytes, 4096u);
  EXPECT_GE(m.memory_samples[0].t, 0);
  ASSERT_EQ(m.output_files.size(), 2u);
  EXPECT_EQ(m.output_files[0], "/out/part-r-00000");
  ASSERT_EQ(m.events.size(), 1u);
  EXPECT_EQ(m.events[0].phase, mr::Phase::kMap);
  EXPECT_EQ(m.events[0].task_id, 3);
  EXPECT_EQ(m.events[0].node, 2);
  EXPECT_GT(m.elapsed_seconds, 0);

  // Snapshot is a copy: later reports don't mutate it.
  metrics.NoteOutputFile("/out/part-r-00002");
  EXPECT_EQ(m.output_files.size(), 2u);
  EXPECT_EQ(metrics.Snapshot().output_files.size(), 3u);
}

TEST(MetricsRegistryTest, ConcurrentReportersDontLoseUpdates) {
  MetricsRegistry metrics;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&metrics] {
      for (int j = 0; j < kPerThread; ++j) {
        metrics.AddCounter(mr::kCtrShuffleBytes, 1);
        metrics.SampleMemory(0, 1);
      }
    });
  }
  for (auto& t : threads) t.join();
  JobMetrics m = metrics.Snapshot();
  EXPECT_EQ(m.counters.Get(mr::kCtrShuffleBytes),
            uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(m.memory_samples.size(), size_t{kThreads} * kPerThread);
}

TEST(JobMetricsTest, FormatNamesTheLabelAndCounters) {
  JobMetrics m;
  m.elapsed_seconds = 1.5;
  m.counters.Add(mr::kCtrShuffleBytes, 12345);
  std::string text = mr::FormatJobMetrics("simulated", m);
  EXPECT_NE(text.find("simulated"), std::string::npos);
  EXPECT_NE(text.find(mr::kCtrShuffleBytes), std::string::npos);
  EXPECT_NE(text.find("12345"), std::string::npos);
}

TEST(JobMetricsTest, SimResultProjectsOntoTheEngineSchema) {
  // The simulator reports through the same schema and counter names as
  // the real engine, so one formatter serves both.
  simmr::SimResult sim;
  sim.completion_seconds = 42.0;
  sim.first_map_done = 3.0;
  sim.last_map_done = 9.0;
  sim.shuffle_bytes = 1 << 20;
  sim.backups_launched = 2;
  sim.backups_won = 1;
  sim.events.push_back({mr::Phase::kMap, 0, 1, 0.0, 3.0});
  sim.memory_samples.push_back({/*t=*/1.0, /*reducer=*/0, /*bytes=*/512});

  mr::JobMetrics m = simmr::ToJobMetrics(sim);
  EXPECT_DOUBLE_EQ(m.elapsed_seconds, 42.0);
  EXPECT_DOUBLE_EQ(m.first_map_done, 3.0);
  EXPECT_DOUBLE_EQ(m.last_map_done, 9.0);
  EXPECT_EQ(m.counters.Get(mr::kCtrShuffleBytes), uint64_t{1} << 20);
  EXPECT_EQ(m.counters.Get(mr::kCtrSpeculativeMapsLaunched), 2u);
  EXPECT_EQ(m.counters.Get(mr::kCtrSpeculativeMapsWon), 1u);
  ASSERT_EQ(m.events.size(), 1u);
  EXPECT_EQ(m.events[0].phase, mr::Phase::kMap);
  ASSERT_EQ(m.memory_samples.size(), 1u);
  EXPECT_EQ(m.memory_samples[0].bytes, 512u);
}

}  // namespace
}  // namespace bmr
