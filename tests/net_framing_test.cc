// Wire-layer hardening tests: frame decoding against truncated,
// oversized, and bit-flipped input (the PR 4 rejection discipline —
// every malformed byte string surfaces a Status, never UB), plus the
// ResponseKeeper's exactly-once replay and eviction bounds.  The asan
// leg of scripts/check.sh runs this binary to back the "never UB"
// claim with a sanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/hash.h"
#include "common/serde.h"
#include "net/framing.h"
#include "net/response_keeper.h"
#include "obs/span.h"

namespace bmr::net {
namespace {

Frame RequestFrame() {
  Frame f;
  f.type = FrameType::kRequest;
  f.request_id = 42;
  f.src = 1;
  f.dst = 3;
  f.method = "shuffle.fetch";
  f.payload = "some request bytes";
  return f;
}

Frame ResponseFrame() {
  Frame f;
  f.type = FrameType::kResponse;
  f.request_id = 42;
  f.src = 3;
  f.dst = 1;
  f.status_code = static_cast<uint8_t>(StatusCode::kUnavailable);
  f.status_message = "segment not resident";
  f.payload = std::string(1000, 'p');
  return f;
}

Frame TracedRequestFrame() {
  Frame f = RequestFrame();
  f.trace.trace_id = 0x1122334455667788ull;
  f.trace.parent_span = 913;
  f.trace.flags = obs::kTraceFlagSampled;
  return f;
}

std::string Encoded(const Frame& f) {
  ByteBuffer buf;
  EncodeFrame(f, &buf);
  return buf.ToString();
}

/// Hand-encode the pre-§15 wire format (no trace-context block) for
/// the given frame — the byte string an old peer would have produced.
std::string LegacyEncoded(const Frame& f) {
  ByteBuffer body;
  Encoder enc(&body);
  enc.PutFixed32(kFrameMagic);
  enc.PutU8(static_cast<uint8_t>(f.type));
  enc.PutFixed64(f.request_id);
  enc.PutVarint64(static_cast<uint64_t>(f.src));
  enc.PutVarint64(static_cast<uint64_t>(f.dst));
  enc.PutString(f.method);
  enc.PutU8(f.status_code);
  enc.PutString(f.status_message);
  enc.PutString(f.payload);
  enc.PutFixed64(Fnv1a64(body.AsSlice()));
  ByteBuffer wire;
  Encoder prefix(&wire);
  prefix.PutFixed32(static_cast<uint32_t>(body.size()));
  wire.Append(body.AsSlice());
  return wire.ToString();
}

/// Re-frame an arbitrary body (length prefix + trailing checksum):
/// builds structurally "valid" frames whose inner trace block is wrong
/// in controlled ways, past the checksum gate.
std::string FrameBody(const std::string& fields) {
  ByteBuffer body;
  body.Append(Slice(fields));
  Encoder enc(&body);
  enc.PutFixed64(Fnv1a64(Slice(fields)));
  ByteBuffer wire;
  Encoder prefix(&wire);
  prefix.PutFixed32(static_cast<uint32_t>(body.size()));
  wire.Append(body.AsSlice());
  return wire.ToString();
}

TEST(FramingTest, RequestRoundTrips) {
  std::string wire = Encoded(RequestFrame());
  Frame out;
  size_t consumed = 0;
  Status error;
  ASSERT_EQ(DecodeFrame(Slice(wire), &out, &consumed, &error),
            DecodeResult::kFrame);
  EXPECT_EQ(consumed, wire.size());
  EXPECT_EQ(out.type, FrameType::kRequest);
  EXPECT_EQ(out.request_id, 42u);
  EXPECT_EQ(out.src, 1);
  EXPECT_EQ(out.dst, 3);
  EXPECT_EQ(out.method, "shuffle.fetch");
  EXPECT_EQ(out.payload, "some request bytes");
}

TEST(FramingTest, ResponseRoundTrips) {
  std::string wire = Encoded(ResponseFrame());
  Frame out;
  size_t consumed = 0;
  Status error;
  ASSERT_EQ(DecodeFrame(Slice(wire), &out, &consumed, &error),
            DecodeResult::kFrame);
  EXPECT_EQ(out.type, FrameType::kResponse);
  EXPECT_EQ(out.status_code,
            static_cast<uint8_t>(StatusCode::kUnavailable));
  EXPECT_EQ(out.status_message, "segment not resident");
  EXPECT_EQ(out.payload, std::string(1000, 'p'));
}

TEST(FramingTest, BackToBackFramesDecodeInOrder) {
  std::string wire = Encoded(RequestFrame()) + Encoded(ResponseFrame());
  Frame out;
  size_t consumed = 0;
  Status error;
  ASSERT_EQ(DecodeFrame(Slice(wire), &out, &consumed, &error),
            DecodeResult::kFrame);
  EXPECT_EQ(out.type, FrameType::kRequest);
  Slice rest(wire.data() + consumed, wire.size() - consumed);
  ASSERT_EQ(DecodeFrame(rest, &out, &consumed, &error),
            DecodeResult::kFrame);
  EXPECT_EQ(out.type, FrameType::kResponse);
  EXPECT_EQ(consumed, rest.size());
}

// Every strict prefix of a valid frame must ask for more bytes — a
// partial TCP read is normal operation, not an error.
TEST(FramingTest, EveryTruncationAsksForMoreBytes) {
  std::string wire = Encoded(RequestFrame());
  for (size_t len = 0; len < wire.size(); ++len) {
    Frame out;
    size_t consumed = 0;
    Status error;
    EXPECT_EQ(DecodeFrame(Slice(wire.data(), len), &out, &consumed, &error),
              DecodeResult::kNeedMore)
        << "prefix length " << len;
  }
}

// A frame claiming a body past the cap is rejected from the 4-byte
// length prefix alone — before any body-sized allocation.
TEST(FramingTest, OversizedLengthPrefixIsRejected) {
  ByteBuffer buf;
  Encoder enc(&buf);
  enc.PutFixed32(kMaxFrameBytes + 1);
  Frame out;
  size_t consumed = 0;
  Status error;
  EXPECT_EQ(DecodeFrame(Slice(buf.data(), buf.size()), &out, &consumed,
                        &error),
            DecodeResult::kError);
  EXPECT_EQ(error.code(), StatusCode::kDataLoss);
}

TEST(FramingTest, BadMagicIsRejected) {
  std::string wire = Encoded(RequestFrame());
  wire[4] ^= 0xff;  // first magic byte, after the length prefix
  Frame out;
  size_t consumed = 0;
  Status error;
  EXPECT_EQ(DecodeFrame(Slice(wire), &out, &consumed, &error),
            DecodeResult::kError);
  EXPECT_EQ(error.code(), StatusCode::kDataLoss);
}

// Flip every single bit of a complete frame: the checksum (or an
// earlier structural check) must catch each one with a Status error.
// Under asan this doubles as a no-UB sweep of the decoder.
TEST(FramingTest, EverySingleBitFlipIsRejected) {
  std::string wire = Encoded(RequestFrame());
  for (size_t byte = 0; byte < wire.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = wire;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      Frame out;
      size_t consumed = 0;
      Status error;
      DecodeResult result =
          DecodeFrame(Slice(corrupt), &out, &consumed, &error);
      // Corrupting the length prefix may turn the frame into a prefix
      // of a longer (hypothetical) frame — that legitimately reads as
      // kNeedMore.  Everything else must be a hard decode error.
      if (result == DecodeResult::kNeedMore) {
        EXPECT_LT(byte, 4u) << "byte " << byte << " bit " << bit;
        continue;
      }
      EXPECT_EQ(result, DecodeResult::kError)
          << "byte " << byte << " bit " << bit;
      EXPECT_EQ(error.code(), StatusCode::kDataLoss);
    }
  }
}

// ------------------------------------------------------------------
// Trace-context block (GUIDE §15): optional trailer, compat in both
// directions with the pre-§15 format.
// ------------------------------------------------------------------

TEST(FramingTest, TraceContextRoundTrips) {
  std::string wire = Encoded(TracedRequestFrame());
  Frame out;
  size_t consumed = 0;
  Status error;
  ASSERT_EQ(DecodeFrame(Slice(wire), &out, &consumed, &error),
            DecodeResult::kFrame);
  EXPECT_EQ(consumed, wire.size());
  EXPECT_TRUE(out.trace.valid());
  EXPECT_EQ(out.trace.trace_id, 0x1122334455667788ull);
  EXPECT_EQ(out.trace.parent_span, 913u);
  EXPECT_EQ(out.trace.flags, obs::kTraceFlagSampled);
  EXPECT_EQ(out.method, "shuffle.fetch");  // base fields unaffected
  EXPECT_EQ(out.payload, "some request bytes");
}

// Forward compat: a new sender with no tracer installed emits bytes a
// pre-§15 decoder accepts — i.e. exactly the legacy encoding.
TEST(FramingTest, UntracedFrameIsByteIdenticalToLegacyEncoding) {
  EXPECT_EQ(Encoded(RequestFrame()), LegacyEncoded(RequestFrame()));
  EXPECT_EQ(Encoded(ResponseFrame()), LegacyEncoded(ResponseFrame()));
}

// Backward compat: frames from an old peer (no trace block) decode
// fine and carry an invalid (all-zero) context.
TEST(FramingTest, LegacyFrameDecodesWithInvalidTraceContext) {
  std::string wire = LegacyEncoded(ResponseFrame());
  Frame out;
  size_t consumed = 0;
  Status error;
  ASSERT_EQ(DecodeFrame(Slice(wire), &out, &consumed, &error),
            DecodeResult::kFrame);
  EXPECT_FALSE(out.trace.valid());
  EXPECT_EQ(out.trace.trace_id, 0u);
  EXPECT_EQ(out.trace.parent_span, 0u);
  EXPECT_EQ(out.status_message, "segment not resident");
}

// The traced frame gets the same every-single-bit-flip guarantee as
// the base format: the checksum covers the trace block too.
TEST(FramingTest, EverySingleBitFlipOnTracedFrameIsRejected) {
  std::string wire = Encoded(TracedRequestFrame());
  for (size_t byte = 0; byte < wire.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = wire;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      Frame out;
      size_t consumed = 0;
      Status error;
      DecodeResult result =
          DecodeFrame(Slice(corrupt), &out, &consumed, &error);
      if (result == DecodeResult::kNeedMore) {
        EXPECT_LT(byte, 4u) << "byte " << byte << " bit " << bit;
        continue;
      }
      EXPECT_EQ(result, DecodeResult::kError)
          << "byte " << byte << " bit " << bit;
      EXPECT_EQ(error.code(), StatusCode::kDataLoss);
    }
  }
}

// Structurally wrong trace blocks behind a VALID checksum (a buggy or
// hostile peer, not line noise) are still rejected: wrong tag, zero
// trace id, truncated block, and trailing bytes after the block.
TEST(FramingTest, MalformedTraceBlocksBehindValidChecksumAreRejected) {
  // Re-derive the base fields (everything before the trace block) from
  // a legacy encoding: strip the 4-byte prefix and 8-byte checksum.
  std::string legacy = LegacyEncoded(RequestFrame());
  std::string fields = legacy.substr(4, legacy.size() - 4 - 8);

  auto traced_fields = [&](uint8_t tag, uint64_t trace_id) {
    ByteBuffer buf;
    buf.Append(Slice(fields));
    Encoder enc(&buf);
    enc.PutU8(tag);
    enc.PutFixed64(trace_id);
    enc.PutFixed32(913);
    enc.PutU8(obs::kTraceFlagSampled);
    return buf.ToString();
  };

  struct Case {
    const char* what;
    std::string body;
  };
  const Case cases[] = {
      {"wrong tag", traced_fields(0x55, 7)},
      {"zero trace id", traced_fields(kTraceContextTag, 0)},
      {"truncated block",
       traced_fields(kTraceContextTag, 7)
           .substr(0, fields.size() + 5)},  // tag + half the trace id
      {"trailing bytes", traced_fields(kTraceContextTag, 7) + "x"},
  };
  for (const Case& c : cases) {
    std::string wire = FrameBody(c.body);
    Frame out;
    size_t consumed = 0;
    Status error;
    EXPECT_EQ(DecodeFrame(Slice(wire), &out, &consumed, &error),
              DecodeResult::kError)
        << c.what;
    EXPECT_EQ(error.code(), StatusCode::kDataLoss) << c.what;
  }

  // Control: the same construction with a well-formed block decodes.
  std::string wire = FrameBody(traced_fields(kTraceContextTag, 7));
  Frame out;
  size_t consumed = 0;
  Status error;
  ASSERT_EQ(DecodeFrame(Slice(wire), &out, &consumed, &error),
            DecodeResult::kFrame);
  EXPECT_EQ(out.trace.trace_id, 7u);
}

// Garbage that happens to carry a plausible length prefix must not
// decode either: the magic/checksum reject it.
TEST(FramingTest, RandomBytesWithPlausibleLengthAreRejected) {
  ByteBuffer buf;
  Encoder enc(&buf);
  enc.PutFixed32(32);
  for (int i = 0; i < 32; ++i) {
    enc.PutU8(static_cast<uint8_t>(i * 37 + 11));
  }
  Frame out;
  size_t consumed = 0;
  Status error;
  EXPECT_EQ(DecodeFrame(Slice(buf.data(), buf.size()), &out, &consumed,
                        &error),
            DecodeResult::kError);
}

TEST(ResponseKeeperTest, FirstSightExecutesDuplicateReplays) {
  ResponseKeeper keeper(16);
  Frame response;
  ASSERT_TRUE(keeper.Begin(7, &response));
  Frame done = ResponseFrame();
  done.request_id = 7;
  keeper.Complete(7, done);

  // Every further sight of id 7 replays the cached response without
  // granting execution.
  for (int i = 0; i < 3; ++i) {
    Frame replay;
    EXPECT_FALSE(keeper.Begin(7, &replay));
    EXPECT_EQ(replay.request_id, 7u);
    EXPECT_EQ(replay.payload, done.payload);
  }
  EXPECT_EQ(keeper.replays(), 3u);
  // A fresh id still executes exactly once.
  EXPECT_TRUE(keeper.Begin(8, &response));
}

// A duplicate arriving while the original execution is still running
// must block until Complete, then return that response — not
// re-execute and not return garbage.
TEST(ResponseKeeperTest, DuplicateBlocksOnInFlightExecution) {
  ResponseKeeper keeper(16);
  Frame first;
  ASSERT_TRUE(keeper.Begin(9, &first));

  std::atomic<bool> replayed{false};
  std::thread dup([&] {
    Frame replay;
    EXPECT_FALSE(keeper.Begin(9, &replay));
    EXPECT_EQ(replay.payload, "late");
    replayed.store(true);
  });
  // The duplicate cannot finish before the original completes.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(replayed.load());

  Frame done;
  done.type = FrameType::kResponse;
  done.request_id = 9;
  done.payload = "late";
  keeper.Complete(9, done);
  dup.join();
  EXPECT_TRUE(replayed.load());
  EXPECT_EQ(keeper.replays(), 1u);
}

// FIFO eviction bounds the cache: ids pushed out by `capacity` newer
// completions re-execute on retry, and memory stays at the bound.
TEST(ResponseKeeperTest, EvictionBoundsCacheAndReExecutes) {
  ResponseKeeper keeper(4);
  for (uint64_t id = 0; id < 10; ++id) {
    Frame response;
    ASSERT_TRUE(keeper.Begin(id, &response));
    Frame done;
    done.request_id = id;
    keeper.Complete(id, done);
    EXPECT_LE(keeper.cached(), 4u);
  }
  EXPECT_EQ(keeper.cached(), 4u);

  Frame replay;
  // ids 6..9 are resident; 0..5 were evicted.
  EXPECT_FALSE(keeper.Begin(9, &replay));
  EXPECT_FALSE(keeper.Begin(6, &replay));
  EXPECT_TRUE(keeper.Begin(0, &replay));  // evicted → executes again
}

TEST(ResponseKeeperTest, ZeroCapacityNeverCaches) {
  ResponseKeeper keeper(0);
  Frame response;
  ASSERT_TRUE(keeper.Begin(1, &response));
  Frame done;
  done.request_id = 1;
  keeper.Complete(1, done);
  EXPECT_EQ(keeper.cached(), 0u);
  EXPECT_TRUE(keeper.Begin(1, &response));  // nothing kept → re-execute
}

// Fault-injected executor death: the winner of Begin dies between
// Begin and Complete.  Waiters used to block forever on done_cv; Abort
// must wake them with an error frame, and — because the abort is not
// cached — a later retry of the id must re-execute the handler.
TEST(ResponseKeeperTest, AbortWakesBlockedDuplicatesWithErrorFrame) {
  ResponseKeeper keeper(16);
  Frame first;
  ASSERT_TRUE(keeper.Begin(13, &first));  // this "execution" will die

  std::atomic<bool> woken{false};
  Frame replay;
  std::thread dup([&] {
    EXPECT_FALSE(keeper.Begin(13, &replay));
    woken.store(true);
  });
  // The duplicate is parked inside Begin, waiting for a Complete that
  // will never come.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(woken.load());

  // The executing caller dies: its dispatch scope unwinds and aborts.
  keeper.Abort(13, Status::Unavailable("handler crashed"));
  dup.join();
  ASSERT_TRUE(woken.load());
  EXPECT_EQ(replay.request_id, 13u);
  EXPECT_EQ(static_cast<StatusCode>(replay.status_code),
            StatusCode::kUnavailable);
  EXPECT_EQ(keeper.aborts(), 1u);
  EXPECT_EQ(keeper.cached(), 0u);  // errors are never replayable

  // The id is forgotten: the client's retry re-executes and can now
  // complete normally, making the id replayable as usual.
  Frame retry;
  EXPECT_TRUE(keeper.Begin(13, &retry));
  Frame done = ResponseFrame();
  done.request_id = 13;
  keeper.Complete(13, done);
  Frame cached;
  EXPECT_FALSE(keeper.Begin(13, &cached));
  EXPECT_EQ(cached.payload, done.payload);
}

// Abort after Complete (or for an unknown id) is a no-op: the real
// response stays cached and replayable.
TEST(ResponseKeeperTest, AbortAfterCompleteIsNoOp) {
  ResponseKeeper keeper(16);
  Frame response;
  ASSERT_TRUE(keeper.Begin(21, &response));
  Frame done = ResponseFrame();
  done.request_id = 21;
  keeper.Complete(21, done);
  keeper.Abort(21, Status::Unavailable("late abort"));
  keeper.Abort(999, Status::Unavailable("never begun"));
  EXPECT_EQ(keeper.aborts(), 0u);
  Frame replay;
  EXPECT_FALSE(keeper.Begin(21, &replay));
  EXPECT_EQ(replay.payload, done.payload);
}

// Many threads racing the same id: exactly one wins execution, the
// rest replay the winner's response once it completes.
TEST(ResponseKeeperTest, ConcurrentDuplicatesGetExactlyOneExecution) {
  ResponseKeeper keeper(16);
  std::atomic<int> executions{0};
  std::atomic<int> replays{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      Frame response;
      if (keeper.Begin(77, &response)) {
        executions.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        Frame done;
        done.request_id = 77;
        done.payload = "winner";
        keeper.Complete(77, done);
      } else {
        EXPECT_EQ(response.payload, "winner");
        replays.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(executions.load(), 1);
  EXPECT_EQ(replays.load(), 7);
  EXPECT_EQ(keeper.replays(), 7u);
}

}  // namespace
}  // namespace bmr::net
