// Arena + BufferPool tests (GUIDE §13): a randomized alloc/reset
// schedule checked against a reference allocator, chunk/buffer reuse
// accounting, concurrent pool traffic (the asan/tsan target), and the
// regression test that MapOutputCollector's finished segments never
// alias arena memory — the arena is reset when Finish returns, so any
// surviving view would be a use-after-generation bug.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/arena.h"
#include "common/rng.h"
#include "mr/map_output.h"
#include "mr/record_batch.h"

namespace bmr {
namespace {

TEST(ArenaTest, AllocationsHoldTheirBytesWithinAGeneration) {
  Arena arena(/*chunk_bytes=*/256);  // small chunks force the slow path
  Pcg32 rng(0xa43a);
  // Reference allocator: every live allocation's expected contents.
  std::vector<std::pair<char*, std::string>> live;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 200; ++i) {
      size_t n = rng.NextBounded(700);  // spans intra-chunk and oversized
      std::string want;
      for (size_t b = 0; b < n; ++b)
        want.push_back(static_cast<char>(rng.NextBounded(256)));
      char* p = arena.Allocate(n);
      ASSERT_NE(p, nullptr);
      std::memcpy(p, want.data(), n);
      live.emplace_back(p, std::move(want));
    }
    // Every allocation of this generation still reads back intact:
    // later allocations never overlapped earlier ones.
    for (const auto& [p, want] : live) {
      EXPECT_EQ(std::memcmp(p, want.data(), want.size()), 0);
    }
    live.clear();
    arena.Reset();
  }
}

TEST(ArenaTest, CopyReturnsAnIndependentView) {
  Arena arena;
  std::string original = "stage me";
  Slice copy = arena.Copy(Slice(original));
  original.assign("xxxxxxxx");  // mutating the source must not show
  EXPECT_EQ(copy.ToString(), "stage me");
  EXPECT_NE(copy.data(), original.data());
}

TEST(ArenaTest, ZeroByteAllocationIsNonNull) {
  Arena arena;
  EXPECT_NE(arena.Allocate(0), nullptr);
}

TEST(ArenaTest, ResetAdvancesGenerationAndReusesChunks) {
  Arena arena(/*chunk_bytes=*/1024);
  EXPECT_EQ(arena.generation(), 1u);
  Arena::GlobalStatsSnapshot before = Arena::GlobalStats();

  for (int i = 0; i < 8; ++i) arena.Allocate(1000);
  EXPECT_EQ(arena.allocated_bytes(), 8000u);
  arena.Reset();
  EXPECT_EQ(arena.generation(), 2u);
  EXPECT_EQ(arena.allocated_bytes(), 0u);

  // The second generation is served from parked chunks, not malloc.
  for (int i = 0; i < 8; ++i) arena.Allocate(1000);
  arena.Reset();
  Arena::GlobalStatsSnapshot after = Arena::GlobalStats();
  EXPECT_GT(after.chunks_reused, before.chunks_reused);
  EXPECT_GE(after.allocated_bytes, before.allocated_bytes + 16000u);
}

TEST(ArenaTest, OversizedAllocationsDoNotBreakTheBumpChunk) {
  Arena arena(/*chunk_bytes=*/128);
  char* small1 = arena.Allocate(16);
  char* big = arena.Allocate(4096);  // dedicated chunk
  char* small2 = arena.Allocate(16);
  std::memset(big, 0x5a, 4096);
  std::memset(small1, 0x11, 16);
  std::memset(small2, 0x22, 16);
  EXPECT_EQ(static_cast<unsigned char>(big[0]), 0x5a);
  EXPECT_EQ(static_cast<unsigned char>(big[4095]), 0x5a);
  EXPECT_EQ(static_cast<unsigned char>(small1[0]), 0x11);
  EXPECT_EQ(static_cast<unsigned char>(small2[0]), 0x22);
}

// The regression the generation counter exists for: Finish() returns
// std::string segments and resets the arena, so feeding the collector
// a fresh round (which recycles the same chunks) must not disturb
// segments from the previous round.
TEST(ArenaTest, FinishedSegmentsSurviveArenaRecycling) {
  mr::MapOutputCollector collector(2, nullptr);
  collector.Emit("alpha", "1");
  collector.Emit("beta", "2");
  auto first = collector.Finish(/*sort=*/true, nullptr, nullptr);
  ASSERT_TRUE(first.ok());
  std::vector<std::string> snapshot = first->segments;

  mr::MapOutputCollector again(2, nullptr);
  for (int i = 0; i < 500; ++i) again.Emit("stomp-key-" + std::to_string(i),
                                           std::string(64, '#'));
  ASSERT_TRUE(again.Finish(/*sort=*/true, nullptr, nullptr).ok());

  EXPECT_EQ(first->segments, snapshot)
      << "Finish() output aliases arena memory that was recycled";
}

TEST(BufferPoolTest, AcquireRecyclesThroughTheFreelist) {
  BufferPool pool;
  BufferPool::Stats s0 = pool.stats();
  {
    std::shared_ptr<std::string> a = pool.Acquire(10000);
    EXPECT_EQ(a->size(), 10000u);
  }  // deleter hands the buffer back
  BufferPool::Stats s1 = pool.stats();
  EXPECT_EQ(s1.cached_buffers, s0.cached_buffers + 1);
  EXPECT_GT(s1.recycled_bytes, s0.recycled_bytes);

  std::shared_ptr<std::string> b = pool.Acquire(9000);  // same size class
  BufferPool::Stats s2 = pool.stats();
  EXPECT_EQ(s2.reuses, s1.reuses + 1);
  EXPECT_EQ(s2.cached_buffers, s0.cached_buffers);
  EXPECT_EQ(b->size(), 9000u);
}

TEST(BufferPoolTest, TrimDropsIdleBuffers) {
  BufferPool pool;
  { auto a = pool.Acquire(4096); }
  EXPECT_GT(pool.stats().cached_buffers, 0u);
  pool.Trim();
  EXPECT_EQ(pool.stats().cached_buffers, 0u);
  EXPECT_EQ(pool.stats().cached_bytes, 0u);
}

TEST(BufferPoolTest, CachedBytesStayUnderTheCap) {
  BufferPool pool(/*max_cached_bytes=*/64 << 10);
  std::vector<std::shared_ptr<std::string>> held;
  for (int i = 0; i < 32; ++i) held.push_back(pool.Acquire(8 << 10));
  held.clear();  // 256 KiB returned against a 64 KiB cap
  EXPECT_LE(pool.stats().cached_bytes, 64u << 10);
}

TEST(BufferPoolTest, BuffersOutliveThePoolHandleChain) {
  // A buffer acquired from the pool and handed to a RecordBatch keeps
  // its bytes alive through the usual shared_ptr ownership chain.
  std::shared_ptr<std::string> buf = BufferPool::Global()->Acquire(16);
  buf->assign("0123456789abcdef");
  mr::RecordBatch batch(buf);
  batch.Add(Slice(buf->data(), 4), Slice(buf->data() + 4, 4));
  buf.reset();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].key.ToString(), "0123");
  EXPECT_EQ(batch[0].value.ToString(), "4567");
}

TEST(BufferPoolTest, ConcurrentAcquireReleaseIsClean) {
  // The asan/tsan target: many threads hammering Acquire/release while
  // another thread Trims.  Invariants checked are the stats' internal
  // consistency; the sanitizers check the rest.
  BufferPool pool(/*max_cached_bytes=*/1 << 20);
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  threads.reserve(5);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&pool, t] {
      Pcg32 rng(0x9000 + static_cast<uint64_t>(t));
      for (int i = 0; i < 2000; ++i) {
        size_t n = 1 + rng.NextBounded(32 << 10);
        std::shared_ptr<std::string> s = pool.Acquire(n);
        ASSERT_EQ(s->size(), n);
        (*s)[0] = static_cast<char>(i);       // touch first/last byte
        (*s)[n - 1] = static_cast<char>(i);   // (asan bounds check)
      }
    });
  }
  threads.emplace_back([&pool, &stop] {
    while (!stop.load()) pool.Trim();
  });
  for (int t = 0; t < 4; ++t) threads[t].join();
  stop.store(true);
  threads[4].join();

  BufferPool::Stats s = pool.stats();
  EXPECT_EQ(s.acquires, 4u * 2000u);
  EXPECT_GE(s.acquires, s.reuses);
}

}  // namespace
}  // namespace bmr
