// Fixture self-test for tools/bmr_check (docs/GUIDE.md §12): feeds
// known-bad snippets through Analyze() and asserts each check fires —
// and, just as important, that the clean twin of every fixture stays
// silent.  Fixtures use the same "src/<dir>/<name>" paths as the repo
// because paths decide layering rules and header-vs-TU roles.
#include "analyzer.h"

#include <algorithm>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace bmr_check {
namespace {

std::vector<Finding> RunCheck(const std::vector<FileContent>& files,
                         const std::string& check) {
  Options options;
  if (!check.empty()) options.checks.insert(check);
  return Analyze(files, options);
}

std::vector<Finding> Of(const std::vector<Finding>& all,
                        const std::string& check) {
  std::vector<Finding> out;
  for (const Finding& f : all)
    if (f.check == check) out.push_back(f);
  return out;
}

bool AnyContains(const std::vector<Finding>& fs, const std::string& needle) {
  return std::any_of(fs.begin(), fs.end(), [&](const Finding& f) {
    return f.message.find(needle) != std::string::npos;
  });
}

// ---- lock-order ----------------------------------------------------

TEST(LockOrder, AnnotatedCycleIsReported) {
  std::vector<FileContent> files = {{"src/mr/locks.h", R"cc(
#pragma once
namespace bmr::mr {
class A {
  BMR_ACQUIRED_AFTER("lock.b")
  OrderedMutex mu_{"lock.a"};
};
class B {
  BMR_ACQUIRED_AFTER("lock.a")
  OrderedMutex mu_{"lock.b"};
};
}  // namespace bmr::mr
)cc"}};
  auto fs = Of(RunCheck(files, "lock-order"), "lock-order");
  ASSERT_EQ(fs.size(), 1u) << FormatFindings(fs);
  EXPECT_NE(fs[0].message.find("cycle"), std::string::npos);
  EXPECT_NE(fs[0].message.find("lock.a"), std::string::npos);
  EXPECT_NE(fs[0].message.find("annotated"), std::string::npos);
}

TEST(LockOrder, NestedAcquisitionCycleAcrossFunctions) {
  std::vector<FileContent> files = {{"src/mr/locks.cc", R"cc(
OrderedMutex g_a{"g.a"};
OrderedMutex g_b{"g.b"};
void Forward() {
  MutexLock la(g_a);
  MutexLock lb(g_b);
}
void Backward() {
  MutexLock lb(g_b);
  MutexLock la(g_a);
}
)cc"}};
  auto fs = Of(RunCheck(files, "lock-order"), "lock-order");
  ASSERT_EQ(fs.size(), 1u) << FormatFindings(fs);
  EXPECT_NE(fs[0].message.find("cycle"), std::string::npos);
  EXPECT_NE(fs[0].message.find("nested"), std::string::npos);
}

TEST(LockOrder, ConsistentNestingIsClean) {
  std::vector<FileContent> files = {{"src/mr/locks.cc", R"cc(
OrderedMutex g_a{"g.a"};
OrderedMutex g_b{"g.b"};
void Forward() {
  MutexLock la(g_a);
  MutexLock lb(g_b);
}
void AlsoForward() {
  MutexLock la(g_a);
  MutexLock lb(g_b);
}
)cc"}};
  EXPECT_TRUE(Of(RunCheck(files, "lock-order"), "lock-order").empty());
}

TEST(LockOrder, RecursiveAcquisitionIsReported) {
  std::vector<FileContent> files = {{"src/mr/locks.cc", R"cc(
OrderedMutex g_a{"g.a"};
void Twice() {
  MutexLock outer(g_a);
  MutexLock inner(g_a);
}
)cc"}};
  auto fs = Of(RunCheck(files, "lock-order"), "lock-order");
  ASSERT_EQ(fs.size(), 1u) << FormatFindings(fs);
  EXPECT_NE(fs[0].message.find("recursive"), std::string::npos);
}

TEST(LockOrder, SameMemberNameResolvesByClass) {
  // Two classes both call their mutex mu_ (the repo's dfs.h does this);
  // nesting B's lock under A's must produce an edge between the right
  // two lock names, not a self-edge on an ambiguous mu_.
  std::vector<FileContent> files = {{"src/mr/two.h", R"cc(
#pragma once
namespace bmr::mr {
class A {
 public:
  void Poke(class B* b);
 private:
  OrderedMutex mu_{"two.a"};
};
class B {
 public:
  void Use() { MutexLock l(mu_); }
 private:
  OrderedMutex mu_{"two.b"};
};
inline void A::Poke(B* b) {
  MutexLock l(mu_);
  MutexLock m(b->mu_);
}
}  // namespace bmr::mr
)cc"}};
  // Edge two.a -> two.b only: acyclic, no findings.
  EXPECT_TRUE(Of(RunCheck(files, "lock-order"), "lock-order").empty());
}

// ---- layering ------------------------------------------------------

TEST(Layering, DirectionViolationIsReported) {
  std::vector<FileContent> files = {{"src/common/bad.h", R"cc(
#pragma once
#include "mr/engine.h"
)cc"}};
  auto fs = Of(RunCheck(files, "layering"), "layering");
  ASSERT_EQ(fs.size(), 1u) << FormatFindings(fs);
  EXPECT_NE(fs[0].message.find("mr/engine.h"), std::string::npos);
  EXPECT_EQ(fs[0].file, "src/common/bad.h");
}

TEST(Layering, IncludeCycleIsReported) {
  std::vector<FileContent> files = {
      {"src/mr/p.h", "#pragma once\n#include \"mr/q.h\"\nusing P = int;\n"},
      {"src/mr/q.h", "#pragma once\n#include \"mr/p.h\"\nusing Q = P;\n"},
  };
  auto fs = Of(RunCheck(files, "layering"), "layering");
  ASSERT_TRUE(AnyContains(fs, "include cycle")) << FormatFindings(fs);
}

TEST(Layering, UnusedIncludeIsReported) {
  std::vector<FileContent> files = {
      {"src/mr/widget.h",
       "#pragma once\nnamespace bmr::mr {\nclass Widget {};\n}\n"},
      {"src/mr/used.h",
       "#pragma once\nnamespace bmr::mr {\nclass Gear {};\n}\n"},
      {"src/mr/user.cc", R"cc(
#include "mr/widget.h"
#include "mr/used.h"
namespace bmr::mr {
int Spin(Gear* g) { return g ? 1 : 0; }
}  // namespace bmr::mr
)cc"},
  };
  auto fs = Of(RunCheck(files, "layering"), "layering");
  ASSERT_EQ(fs.size(), 1u) << FormatFindings(fs);
  EXPECT_NE(fs[0].message.find("mr/widget.h"), std::string::npos);
  EXPECT_NE(fs[0].message.find("stale include"), std::string::npos);
}

TEST(Layering, PairedHeaderIsNeverStale) {
  std::vector<FileContent> files = {
      {"src/mr/thing.h",
       "#pragma once\nnamespace bmr::mr {\nclass Thing {};\n}\n"},
      // thing.cc references nothing from thing.h — still exempt.
      {"src/mr/thing.cc", "#include \"mr/thing.h\"\nint x = 0;\n"},
  };
  EXPECT_TRUE(Of(RunCheck(files, "layering"), "layering").empty());
}

// ---- status-discard ------------------------------------------------

TEST(StatusDiscard, BareCallInCcIsReported) {
  std::vector<FileContent> files = {{"src/mr/use.cc", R"cc(
Status DoThing();
void F() {
  DoThing();
}
)cc"}};
  auto fs = Of(RunCheck(files, "status-discard"), "status-discard");
  ASSERT_EQ(fs.size(), 1u) << FormatFindings(fs);
  EXPECT_NE(fs[0].message.find("DoThing"), std::string::npos);
}

TEST(StatusDiscard, ConsumedAndPropagatedAreClean) {
  std::vector<FileContent> files = {{"src/mr/use.cc", R"cc(
Status DoThing();
Status G() {
  Status s = DoThing();
  if (!s.ok()) return s;
  return DoThing();
}
)cc"}};
  EXPECT_TRUE(Of(RunCheck(files, "status-discard"), "status-discard").empty());
}

TEST(StatusDiscard, VoidCastNeedsReasonComment) {
  std::vector<FileContent> files = {{"src/mr/use.cc", R"cc(
Status DoThing();
void F() {
  (void)DoThing();
}
void G() {
  (void)DoThing();  // best-effort cleanup; failure already logged
}
)cc"}};
  auto fs = Of(RunCheck(files, "status-discard"), "status-discard");
  ASSERT_EQ(fs.size(), 1u) << FormatFindings(fs);
  EXPECT_EQ(fs[0].line, 4);
  EXPECT_NE(fs[0].message.find("reason"), std::string::npos);
}

TEST(StatusDiscard, AmbiguousNameIsSkipped) {
  // Append returns Status in one class and void in another (the repo
  // has exactly this); without type resolution the check must stay
  // quiet rather than guess.
  std::vector<FileContent> files = {
      {"src/mr/a.h", R"cc(
#pragma once
class W { public: [[nodiscard]] Status Append(); };
class B { public: void Append(); };
)cc"},
      {"src/mr/use.cc", R"cc(
#include "mr/a.h"
void F(B* b) {
  b->Append();
}
)cc"}};
  EXPECT_TRUE(Of(RunCheck(files, "status-discard"), "status-discard").empty());
}

// ---- nodiscard -----------------------------------------------------

TEST(Nodiscard, HeaderDeclWithoutAttributeIsReported) {
  std::vector<FileContent> files = {{"src/mr/api.h", R"cc(
#pragma once
namespace bmr::mr {
class C {
 public:
  Status Flush();
};
}  // namespace bmr::mr
)cc"}};
  auto fs = Of(RunCheck(files, "nodiscard"), "nodiscard");
  ASSERT_EQ(fs.size(), 1u) << FormatFindings(fs);
  EXPECT_NE(fs[0].message.find("Flush"), std::string::npos);
}

TEST(Nodiscard, MultiLineDeclarationIsCaught) {
  // Return type and name on different lines — the shape the old awk
  // scan (lint.sh check 2) could not see.  Regression fixture.
  std::vector<FileContent> files = {{"src/mr/api.h", R"cc(
#pragma once
namespace bmr::mr {
class C {
 public:
  StatusOr<std::unique_ptr<Writer>>
  OpenWriter(const std::string& path,
             int flags);
};
}  // namespace bmr::mr
)cc"}};
  auto fs = Of(RunCheck(files, "nodiscard"), "nodiscard");
  ASSERT_EQ(fs.size(), 1u) << FormatFindings(fs);
  EXPECT_NE(fs[0].message.find("OpenWriter"), std::string::npos);
}

TEST(Nodiscard, AnnotatedDeclIsClean) {
  std::vector<FileContent> files = {{"src/mr/api.h", R"cc(
#pragma once
namespace bmr::mr {
class C {
 public:
  [[nodiscard]] Status Flush();
  [[nodiscard]] StatusOr<int>
  Count() const;
};
Status C::Flush() { return Status(); }
}  // namespace bmr::mr
)cc"}};
  EXPECT_TRUE(Of(RunCheck(files, "nodiscard"), "nodiscard").empty());
}

// ---- metric-registry -----------------------------------------------

TEST(MetricRegistry, DeadConstantIsReported) {
  std::vector<FileContent> files = {
      {"src/obs/metric_names.h", R"cc(
#pragma once
inline constexpr const char* kHUsedUs = "bmr_job_used_us";
inline constexpr const char* kHDeadUs = "bmr_job_dead_us";
)cc"},
      {"src/mr/rec.cc", "void F(M* m) { m->RecordLatency(kHUsedUs, 1); }\n"},
  };
  auto fs = Of(RunCheck(files, "metric-registry"), "metric-registry");
  ASSERT_EQ(fs.size(), 1u) << FormatFindings(fs);
  EXPECT_NE(fs[0].message.find("kHDeadUs"), std::string::npos);
  EXPECT_NE(fs[0].message.find("dead series"), std::string::npos);
}

TEST(MetricRegistry, UnregisteredConstantAtSiteIsReported) {
  std::vector<FileContent> files = {
      {"src/obs/metric_names.h",
       "#pragma once\ninline constexpr const char* kHUsedUs = \"u\";\n"},
      {"src/mr/rec.cc",
       "void F(M* m) { m->RecordLatency(kHUsedUs, 1);\n"
       "  m->AddCounter(kHTypoUs, 1); }\n"},
  };
  auto fs = Of(RunCheck(files, "metric-registry"), "metric-registry");
  ASSERT_EQ(fs.size(), 1u) << FormatFindings(fs);
  EXPECT_NE(fs[0].message.find("kHTypoUs"), std::string::npos);
}

TEST(MetricRegistry, StringLiteralAtSiteIsReported) {
  std::vector<FileContent> files = {
      {"src/obs/metric_names.h",
       "#pragma once\ninline constexpr const char* kHUsedUs = \"u\";\n"},
      {"src/mr/rec.cc",
       "void F(M* m, T* t) { m->RecordLatency(kHUsedUs, 1);\n"
       "  LatencyTimer timer(t, \"bmr_raw_us\"); }\n"},
  };
  auto fs = Of(RunCheck(files, "metric-registry"), "metric-registry");
  ASSERT_EQ(fs.size(), 1u) << FormatFindings(fs);
  EXPECT_NE(fs[0].message.find("string-literal"), std::string::npos);
}

TEST(MetricRegistry, UnknownSubsystemInNameIsReported) {
  std::vector<FileContent> files = {
      {"src/obs/metric_names.h",
       "#pragma once\n"
       "inline constexpr const char* kHBadUs = \"bmr_warpdrive_spin_us\";\n"},
      {"src/mr/rec.cc", "void F(M* m) { m->RecordLatency(kHBadUs, 1); }\n"},
  };
  auto fs = Of(RunCheck(files, "metric-registry"), "metric-registry");
  ASSERT_EQ(fs.size(), 1u) << FormatFindings(fs);
  EXPECT_NE(fs[0].message.find("unknown subsystem 'warpdrive'"),
            std::string::npos);
}

TEST(MetricRegistry, MissingUnitSuffixIsReported) {
  std::vector<FileContent> files = {
      {"src/obs/metric_names.h",
       "#pragma once\n"
       "inline constexpr const char* kHBad = \"bmr_codec_blocks\";\n"},
      {"src/mr/rec.cc", "void F(M* m) { m->AddCounter(kHBad, 1); }\n"},
  };
  auto fs = Of(RunCheck(files, "metric-registry"), "metric-registry");
  ASSERT_EQ(fs.size(), 1u) << FormatFindings(fs);
  EXPECT_NE(fs[0].message.find("unit suffix"), std::string::npos);
}

TEST(MetricRegistry, ArenaCodecFamiliesAndLabeledNamesAreValid) {
  // The PR 8 families pass the taxonomy, a {label} suffix is stripped
  // before validation, and a trailing-underscore prefix constant is
  // exempt (it names a family, not a series).
  std::vector<FileContent> files = {
      {"src/obs/metric_names.h", R"cc(
#pragma once
inline constexpr const char* kPromArenaCachedBytes = "bmr_arena_cached_bytes";
inline constexpr const char* kHCodecEncodeUs = "bmr_codec_encode_us";
inline constexpr const char* kHRpcInproc =
    "bmr_rpc_call_us{transport=\"inproc\"}";
inline constexpr const char* kPromJobCounterPrefix = "bmr_job_";
)cc"},
      {"src/mr/rec.cc",
       "void F(M* m, T* t) { m->AddCounter(kPromArenaCachedBytes, 1);\n"
       "  LatencyTimer a(t, kHCodecEncodeUs);\n"
       "  LatencyTimer b(t, kHRpcInproc);\n"
       "  Use(kPromJobCounterPrefix); }\n"},
  };
  auto fs = Of(RunCheck(files, "metric-registry"), "metric-registry");
  EXPECT_TRUE(fs.empty()) << FormatFindings(fs);
}

TEST(MetricRegistry, ObsSelfMetricFamilyIsValid) {
  // The §15 observability self-metrics ride the obs subsystem.
  std::vector<FileContent> files = {
      {"src/obs/metric_names.h",
       "#pragma once\n"
       "inline constexpr const char* kPromObsSpansDropped =\n"
       "    \"bmr_obs_spans_dropped_total\";\n"},
      {"src/mr/rec.cc",
       "void F(M* m) { m->AddCounter(kPromObsSpansDropped, 1); }\n"},
  };
  auto fs = Of(RunCheck(files, "metric-registry"), "metric-registry");
  EXPECT_TRUE(fs.empty()) << FormatFindings(fs);
}

TEST(Layering, ObsMayUseConcurrencyButNotNet) {
  // §15 added obs -> concurrency (the introspection server's loop
  // thread).  The reverse direction net -> obs was already legal; obs
  // reaching into net stays a violation.
  std::vector<FileContent> files = {{"src/obs/ok.h", R"cc(
#pragma once
#include "concurrency/thread_pool.h"
namespace bmr::obs {
class Loop { ThreadPool pool_{1}; };
}  // namespace bmr::obs
)cc"}};
  EXPECT_TRUE(Of(RunCheck(files, "layering"), "layering").empty());

  std::vector<FileContent> bad = {{"src/obs/bad.h", R"cc(
#pragma once
#include "net/transport.h"
)cc"}};
  auto fs = Of(RunCheck(bad, "layering"), "layering");
  ASSERT_EQ(fs.size(), 1u) << FormatFindings(fs);
  EXPECT_NE(fs[0].message.find("net/transport.h"), std::string::npos);
}

// ---- suppression ---------------------------------------------------

TEST(Suppression, AllowWithReasonSilencesFinding) {
  std::vector<FileContent> files = {{"src/common/bad.h", R"cc(
#pragma once
// bmr_check:allow(layering) exercising the suppression path in tests
#include "mr/engine.h"
)cc"}};
  EXPECT_TRUE(Of(RunCheck(files, "layering"), "layering").empty());
}

TEST(Suppression, AllowWithoutReasonIsItselfAFinding) {
  std::vector<FileContent> files = {{"src/common/bad.h", R"cc(
#pragma once
// bmr_check:allow(layering)
#include "mr/engine.h"
)cc"}};
  auto all = RunCheck(files, "layering");
  // The reasonless allow() does not suppress, and is flagged itself.
  EXPECT_EQ(Of(all, "layering").size(), 1u) << FormatFindings(all);
  EXPECT_EQ(Of(all, "allow").size(), 1u) << FormatFindings(all);
}

TEST(Suppression, WrongCheckIdDoesNotSuppress) {
  std::vector<FileContent> files = {{"src/common/bad.h", R"cc(
#pragma once
// bmr_check:allow(lock-order) wrong id on purpose
#include "mr/engine.h"
)cc"}};
  EXPECT_EQ(Of(RunCheck(files, "layering"), "layering").size(), 1u);
}

// ---- harness plumbing ----------------------------------------------

TEST(Plumbing, CheckSelectionRunsOnlyRequestedChecks) {
  // One fixture violating two checks; selecting one yields only it.
  std::vector<FileContent> files = {{"src/common/bad.h", R"cc(
#pragma once
#include "mr/engine.h"
namespace bmr {
class C { public: Status Flush(); };
}
)cc"}};
  auto layering_only = RunCheck(files, "layering");
  EXPECT_EQ(Of(layering_only, "nodiscard").size(), 0u);
  EXPECT_EQ(Of(layering_only, "layering").size(), 1u);
  auto both = RunCheck(files, "");
  EXPECT_EQ(Of(both, "nodiscard").size(), 1u);
  EXPECT_EQ(Of(both, "layering").size(), 1u);
}

TEST(Plumbing, FormatFindingsIsSortedAndStable) {
  std::vector<Finding> fs = {
      {"layering", "src/b.h", 2, "two"},
      {"layering", "src/a.h", 9, "one"},
  };
  std::string text = FormatFindings(fs);
  EXPECT_LT(text.find("src/a.h"), text.find("src/b.h"));
  EXPECT_NE(text.find("[layering]"), std::string::npos);
}

TEST(Plumbing, LoadTreeOnMissingRootIsEmpty) {
  EXPECT_TRUE(LoadTree("/nonexistent/definitely/missing").empty());
}

}  // namespace
}  // namespace bmr_check
