// Chaos/equivalence harness: many seeded random fault scenarios, each
// asserting the paper's recovery invariant — a job that survives
// injected faults (node crash, RPC drop/delay/duplicate, fetch
// timeout, segment corruption, spill I/O errors) produces output
// byte-identical to a fault-free golden run of the same app and store.
//
// Scenario count comes from BMR_CHAOS_SEEDS (default 200); a failing
// seed is reproduced exactly by running with the same seed because
// FaultPlan::Generate is pure in the seed (see docs/GUIDE.md §8).
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "apps/registry.h"
#include "faults/fault_injector.h"
#include "faults/fault_plan.h"
#include "test_util.h"
#include "workload/generators.h"

namespace bmr {
namespace {

using faults::FaultEvent;
using faults::FaultInjector;
using faults::FaultKind;
using faults::FaultPlan;
using faults::FaultPlanOptions;
using mr::JobRunner;
using mr::Record;
using testutil::MakeTestCluster;

// Apps whose barrier-less output is bytewise deterministic (finalize
// emits in merged key order), so golden comparison can be exact.
const char* const kApps[] = {"wordcount", "sort", "lastfm"};
constexpr core::StoreType kStores[] = {core::StoreType::kInMemory,
                                       core::StoreType::kSpillMerge,
                                       core::StoreType::kKvStore};

int NumSeeds() {
  const char* env = std::getenv("BMR_CHAOS_SEEDS");
  if (env == nullptr) return 200;
  int n = std::atoi(env);
  return n > 0 ? n : 200;
}

// Small deterministic inputs; tiny DFS blocks so even these make
// several map tasks (more fetch traffic for faults to hit).
std::unique_ptr<mr::ClusterContext> MakeChaosCluster() {
  return MakeTestCluster(/*slaves=*/3, /*block_bytes=*/4 << 10);
}

std::vector<std::string> MakeInput(mr::ClusterContext* cluster,
                                   const std::string& app) {
  if (app == "wordcount") {
    workload::TextGenOptions gen;
    gen.total_bytes = 24 << 10;
    gen.vocabulary = 150;
    gen.seed = 7;
    return *workload::GenerateZipfText(cluster, "/in-wc", gen);
  }
  if (app == "sort") {
    workload::IntGenOptions gen;
    gen.count = 3000;
    gen.seed = 8;
    return *workload::GenerateRandomInts(cluster, "/in-sort", gen);
  }
  workload::ListenGenOptions gen;
  gen.count = 5000;
  gen.num_users = 20;
  gen.num_tracks = 100;
  gen.seed = 9;
  return *workload::GenerateListens(cluster, "/in-fm", gen);
}

mr::JobSpec MakeChaosSpec(const std::string& app,
                          const std::vector<std::string>& files,
                          core::StoreType store,
                          const std::string& output_path) {
  apps::AppOptions options;
  options.input_files = files;
  options.output_path = output_path;
  options.num_reducers = 2;
  options.barrierless = true;
  options.store.type = store;
  options.store.spill_threshold_bytes = 4 << 10;  // force spills
  options.store.kv_cache_bytes = 4 << 10;         // force evictions
  const apps::AppCase* entry = apps::FindApp(app);
  EXPECT_NE(entry, nullptr) << app;
  mr::JobSpec spec = entry->make_job(options);
  // Recovery budgets generous enough that every bounded fault plan
  // (<= 6 events, small counts) is survivable.
  spec.config.SetInt("job.max_restarts", 6);
  spec.config.SetInt("reduce.max_restarts", 4);
  spec.config.SetInt("shuffle.fetch.max_retries", 4);
  spec.config.SetDouble("shuffle.fetch.backoff_ms", 0.2);
  spec.config.SetDouble("shuffle.fetch.backoff_max_ms", 2.0);
  return spec;
}

TEST(ChaosTest, SeededScenariosMatchFaultFreeGolden) {
  const int num_seeds = NumSeeds();
  const int num_apps = 3;
  const int num_stores = 3;
  // Golden outputs per (app, store), from fault-free runs on their own
  // clusters — the deterministic workload generators reproduce the
  // exact same input on every cluster.
  std::map<std::pair<std::string, int>, std::vector<std::string>> golden;
  std::map<std::string, uint64_t> fired;

  for (int seed = 0; seed < num_seeds; ++seed) {
    const std::string app = kApps[seed % num_apps];
    core::StoreType store = kStores[(seed / num_apps) % num_stores];
    auto combo = std::make_pair(app, static_cast<int>(store));
    if (golden.find(combo) == golden.end()) {
      auto cluster = MakeChaosCluster();
      auto files = MakeInput(cluster.get(), app);
      auto out = testutil::RunAndReadOutput(
          cluster.get(), MakeChaosSpec(app, files, store, "/golden"));
      ASSERT_TRUE(out.ok()) << "golden " << app << ": " << out.status();
      golden[combo] = testutil::ExactSequence(*out);
      ASSERT_FALSE(golden[combo].empty());
    }

    FaultPlanOptions plan_options;
    plan_options.num_nodes = 4;  // 3 slaves + master (node 0, protected)
    FaultPlan plan = FaultPlan::Generate(static_cast<uint64_t>(seed),
                                         plan_options);
    FaultInjector injector(plan);
    auto cluster = MakeChaosCluster();
    auto files = MakeInput(cluster.get(), app);  // before injection
    mr::JobSpec spec = MakeChaosSpec(app, files, store, "/out");
    cluster->InstallFaultInjector(&injector);
    JobRunner runner(cluster.get());
    mr::JobResult result = runner.Run(spec);
    // Read the output fault-free: the invariant under test is engine
    // recovery, not the test's own read path.
    cluster->InstallFaultInjector(nullptr);
    ASSERT_TRUE(result.ok())
        << "seed " << seed << " app " << app << " store "
        << core::StoreTypeName(store) << ": " << result.status << "\n"
        << plan.ToString();
    auto out = JobRunner::ReadAllOutput(cluster->client(0), result,
                                        spec.output_format);
    ASSERT_TRUE(out.ok()) << "seed " << seed << ": " << out.status();
    EXPECT_EQ(testutil::ExactSequence(*out), golden[combo])
        << "seed " << seed << " app " << app << " store "
        << core::StoreTypeName(store) << "\n"
        << plan.ToString();
    for (const auto& [name, count] : injector.CounterSnapshot()) {
      fired[name] += count;
    }
  }

  // Coverage: with the default sweep every required fault family must
  // actually have fired somewhere (scheduled != fired: an event whose
  // threshold exceeds the scenario's call volume stays dormant).
  if (num_seeds >= 200) {
    EXPECT_GT(fired["fault_injected_node_crash"], 0u);
    EXPECT_GT(fired["fault_injected_rpc_drop"], 0u);
    EXPECT_GT(fired["fault_injected_rpc_delay"], 0u);
    EXPECT_GT(fired["fault_injected_fetch_timeout"], 0u);
    EXPECT_GT(fired["fault_injected_segment_corrupt"], 0u);
    EXPECT_GT(fired["fault_injected_spill_write_error"] +
                  fired["fault_injected_spill_read_error"],
              0u);
  }
}

// Batched delivery is an implementation detail of the data plane, not
// an observable: for every store backend, shrinking the FIFO batch
// budget to pathological sizes (every record its own batch; the FIFO
// one batch deep) must yield output byte-identical to the default
// batching's golden run.
TEST(ChaosTest, BatchedDeliveryPreservesOutputAcrossStores) {
  struct BatchKnobs {
    int64_t fifo_batches;
    int64_t batch_bytes;
  };
  // Default; 1-byte budget (one record per batch, max wakeup traffic);
  // single-slot FIFO with small batches (constant full/empty edges).
  const BatchKnobs kKnobs[] = {{64, 256 << 10}, {64, 1}, {1, 512}};
  for (core::StoreType store : kStores) {
    std::vector<std::string> golden;
    for (size_t k = 0; k < std::size(kKnobs); ++k) {
      auto cluster = MakeChaosCluster();
      auto files = MakeInput(cluster.get(), "wordcount");
      mr::JobSpec spec = MakeChaosSpec("wordcount", files, store, "/out");
      spec.config.SetInt("shuffle.fifo_batches", kKnobs[k].fifo_batches);
      spec.config.SetInt("shuffle.batch_bytes", kKnobs[k].batch_bytes);
      auto out = testutil::RunAndReadOutput(cluster.get(), spec);
      ASSERT_TRUE(out.ok()) << core::StoreTypeName(store) << " knobs " << k
                            << ": " << out.status();
      auto seq = testutil::ExactSequence(*out);
      ASSERT_FALSE(seq.empty());
      if (k == 0) {
        golden = std::move(seq);
      } else {
        EXPECT_EQ(seq, golden)
            << "batch knobs (" << kKnobs[k].fifo_batches << ", "
            << kKnobs[k].batch_bytes << ") changed output for store "
            << core::StoreTypeName(store);
      }
    }
  }
}

// The shuffle codec is an implementation detail of the wire, not an
// observable: for every store backend, every `shuffle.codec` value
// must yield output byte-identical to the uncompressed golden run.
// scripts/chaos.sh re-runs this whole binary per (transport, codec)
// combination via BMR_NET_TRANSPORT / BMR_SHUFFLE_CODEC, so the full
// matrix is {mem,spill,kv} x {inproc,tcp} x {none,lz4} — with seeded
// faults riding along in the sweep above.
TEST(ChaosTest, ShuffleCodecPreservesOutputAcrossStores) {
  const char* const kCodecs[] = {"none", "lz4"};
  for (core::StoreType store : kStores) {
    std::vector<std::string> golden;
    for (size_t c = 0; c < std::size(kCodecs); ++c) {
      auto cluster = MakeChaosCluster();
      auto files = MakeInput(cluster.get(), "wordcount");
      mr::JobSpec spec = MakeChaosSpec("wordcount", files, store, "/out");
      spec.config.Set("shuffle.codec", kCodecs[c]);
      spec.config.SetInt("shuffle.block_bytes", 4 << 10);  // many blocks
      auto out = testutil::RunAndReadOutput(cluster.get(), spec);
      ASSERT_TRUE(out.ok()) << core::StoreTypeName(store) << " codec "
                            << kCodecs[c] << ": " << out.status();
      auto seq = testutil::ExactSequence(*out);
      ASSERT_FALSE(seq.empty());
      if (c == 0) {
        golden = std::move(seq);
      } else {
        EXPECT_EQ(seq, golden)
            << "codec " << kCodecs[c] << " changed output for store "
            << core::StoreTypeName(store);
      }
    }
  }
}

// An unknown codec name is a job-spec typo: the run must fail loudly
// at submit time, never fall back to an unencoded shuffle.
TEST(ChaosTest, UnknownCodecFailsTheJobUpFront) {
  auto cluster = MakeChaosCluster();
  auto files = MakeInput(cluster.get(), "wordcount");
  mr::JobSpec spec =
      MakeChaosSpec("wordcount", files, core::StoreType::kInMemory, "/out");
  spec.config.Set("shuffle.codec", "zstd-but-typoed");
  JobRunner runner(cluster.get());
  mr::JobResult result = runner.Run(spec);
  EXPECT_FALSE(result.ok());
}

// The harness has teeth: disable the recovery path and the same kind
// of fault must fail the run (and hence the sweep above would catch a
// recovery regression, not silently pass).
TEST(ChaosTest, BrokenRecoveryPathIsDetected) {
  auto cluster = MakeChaosCluster();
  auto files = MakeInput(cluster.get(), "wordcount");
  mr::JobSpec spec =
      MakeChaosSpec("wordcount", files, core::StoreType::kInMemory, "/out");
  spec.config.SetBool("shuffle.fail_on_fetch_error", true);  // no retry
  spec.config.SetInt("job.max_restarts", 0);                 // no rerun

  FaultEvent corrupt;
  corrupt.kind = FaultKind::kSegmentCorrupt;
  FaultPlan plan;
  plan.events = {corrupt};
  FaultInjector injector(plan);
  cluster->InstallFaultInjector(&injector);
  JobRunner runner(cluster.get());
  mr::JobResult result = runner.Run(spec);
  cluster->InstallFaultInjector(nullptr);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(injector.injected(FaultKind::kSegmentCorrupt), 1u);
}

}  // namespace
}  // namespace bmr
