// Tests for the common substrate: status, serde, hashing, rng,
// histograms, config.
#include <gtest/gtest.h>

#include <set>

#include "common/config.h"
#include "common/logging.h"
#include "common/hash.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/serde.h"
#include "common/status.h"
#include "common/table.h"

namespace bmr {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status st = Status::NotFound("missing thing");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.ToString(), "NOT_FOUND: missing thing");
}

TEST(StatusTest, StatusOrValueAndError) {
  StatusOr<int> good(42);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);
  StatusOr<int> bad(Status::Internal("boom"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(StatusTest, ReturnIfErrorMacro) {
  auto fails = []() -> Status {
    BMR_RETURN_IF_ERROR(Status::InvalidArgument("x"));
    return Status::Ok();
  };
  EXPECT_EQ(fails().code(), StatusCode::kInvalidArgument);
}

TEST(SerdeTest, VarintRoundTrip) {
  ByteBuffer buf;
  Encoder enc(&buf);
  std::vector<uint64_t> values = {0, 1, 127, 128, 300, 1u << 20,
                                  (1ull << 35) + 7, UINT64_MAX};
  for (uint64_t v : values) enc.PutVarint64(v);
  Decoder dec(buf.AsSlice());
  for (uint64_t v : values) {
    uint64_t got = 0;
    ASSERT_TRUE(dec.GetVarint64(&got));
    EXPECT_EQ(got, v);
  }
  EXPECT_TRUE(dec.empty());
}

TEST(SerdeTest, SignedVarintRoundTrip) {
  for (int64_t v : {INT64_MIN, int64_t{-1}, int64_t{0}, int64_t{1},
                    int64_t{-123456789}, INT64_MAX}) {
    int64_t got = 0;
    ASSERT_TRUE(DecodeI64(EncodeI64(v), &got));
    EXPECT_EQ(got, v);
  }
}

TEST(SerdeTest, StringsAndDoubles) {
  ByteBuffer buf;
  Encoder enc(&buf);
  enc.PutString("hello");
  enc.PutString("");
  enc.PutDouble(3.14159);
  Decoder dec(buf.AsSlice());
  std::string a, b;
  double d = 0;
  ASSERT_TRUE(dec.GetString(&a));
  ASSERT_TRUE(dec.GetString(&b));
  ASSERT_TRUE(dec.GetDouble(&d));
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "");
  EXPECT_DOUBLE_EQ(d, 3.14159);
}

TEST(SerdeTest, TruncatedInputFailsCleanly) {
  ByteBuffer buf;
  Encoder enc(&buf);
  enc.PutString("some payload");
  Slice whole = buf.AsSlice();
  Decoder dec(Slice(whole.data(), whole.size() - 3));
  Slice out;
  EXPECT_FALSE(dec.GetString(&out));
  uint64_t v;
  Decoder dec2(Slice("\xff\xff\xff", 3));  // unterminated varint
  EXPECT_FALSE(dec2.GetVarint64(&v));
}

TEST(SerdeTest, OverlongVarintFinalByteRejected) {
  // A 10-byte varint reaches shift 63, where only the low bit of the
  // last byte fits in a uint64_t.  Bytes with value bits above 2^63
  // used to be silently truncated: "\xff...\x7f" (last byte 0x7f)
  // decoded to the same value as a valid UINT64_MAX encoding.  Malformed
  // input must fail, not alias a legitimate value.
  uint64_t v = 0;
  // Valid: nine 0xff continuation bytes, final byte 0x01 => UINT64_MAX.
  Decoder ok(Slice("\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01", 10));
  ASSERT_TRUE(ok.GetVarint64(&v));
  EXPECT_EQ(v, UINT64_MAX);

  // Overflow value bits in the 10th byte.
  Decoder overflow(Slice("\xff\xff\xff\xff\xff\xff\xff\xff\xff\x7f", 10));
  EXPECT_FALSE(overflow.GetVarint64(&v));

  // Continuation bit set on the 10th byte (11-byte varint).
  Decoder too_long(Slice("\xff\xff\xff\xff\xff\xff\xff\xff\xff\x81\x00", 11));
  EXPECT_FALSE(too_long.GetVarint64(&v));

  // Smallest bad final byte: 0x02 (bit 64) must be rejected while 0x01
  // (bit 63) is fine — the boundary is exact.
  Decoder bit64(Slice("\x80\x80\x80\x80\x80\x80\x80\x80\x80\x02", 10));
  EXPECT_FALSE(bit64.GetVarint64(&v));
  Decoder bit63(Slice("\x80\x80\x80\x80\x80\x80\x80\x80\x80\x01", 10));
  ASSERT_TRUE(bit63.GetVarint64(&v));
  EXPECT_EQ(v, 1ull << 63);
}

/// Property: the ordered i64 encoding preserves numeric order bytewise.
class OrderedEncodingTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OrderedEncodingTest, OrderPreservedOnRandomPairs) {
  Pcg32 rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    int64_t a = static_cast<int64_t>(rng.NextU64());
    int64_t b = static_cast<int64_t>(rng.NextU64());
    std::string ea = EncodeOrderedI64(a);
    std::string eb = EncodeOrderedI64(b);
    EXPECT_EQ(a < b, ea < eb) << a << " vs " << b;
    int64_t back = 0;
    ASSERT_TRUE(DecodeOrderedI64(ea, &back));
    EXPECT_EQ(back, a);
  }
}

TEST_P(OrderedEncodingTest, DoubleOrderPreservedOnRandomPairs) {
  Pcg32 rng(GetParam() + 99);
  for (int i = 0; i < 2000; ++i) {
    double a = (rng.NextDouble() - 0.5) * 1e12;
    double b = (rng.NextDouble() - 0.5) * 1e12;
    std::string ea = EncodeOrderedDouble(a);
    std::string eb = EncodeOrderedDouble(b);
    EXPECT_EQ(a < b, ea < eb) << a << " vs " << b;
    double back = 0;
    ASSERT_TRUE(DecodeOrderedDouble(ea, &back));
    EXPECT_DOUBLE_EQ(back, a);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderedEncodingTest,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(HashTest, Deterministic) {
  EXPECT_EQ(Fnv1a64("hello"), Fnv1a64("hello"));
  EXPECT_NE(Fnv1a64("hello"), Fnv1a64("hellp"));
  EXPECT_NE(SeededHash64("x", 1), SeededHash64("x", 2));
}

TEST(RngTest, PcgDeterministicAndBounded) {
  Pcg32 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU32(), b.NextU32());
  Pcg32 c(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(c.NextBounded(17), 17u);
    double d = c.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  ZipfGenerator zipf(1000, 1.0, 5);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 20000; ++i) counts[zipf.Next()]++;
  // Rank 0 must be much more frequent than rank 500.
  EXPECT_GT(counts[0], 20 * std::max(counts[500], 1));
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Pcg32 rng(31);
  double sum = 0, sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double z = rng.NextGaussian();
    sum += z;
    sum_sq += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.1);
}

TEST(DistributionTest, QuantilesAndMoments) {
  Distribution d;
  for (int i = 1; i <= 100; ++i) d.Add(i);
  EXPECT_DOUBLE_EQ(d.Mean(), 50.5);
  EXPECT_DOUBLE_EQ(d.Min(), 1);
  EXPECT_DOUBLE_EQ(d.Max(), 100);
  EXPECT_NEAR(d.Median(), 50.5, 1e-9);
  EXPECT_NEAR(d.Quantile(0.25), 25.75, 1e-9);
  EXPECT_NEAR(d.Quantile(0.75), 75.25, 1e-9);
}

TEST(LogHistogramTest, CountsAndApproxQuantiles) {
  LogHistogram h;
  for (uint64_t i = 1; i <= 1000; ++i) h.Add(i);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
  uint64_t p50 = h.ApproxQuantile(0.5);
  EXPECT_GE(p50, 255u);
  EXPECT_LE(p50, 1024u);
}

TEST(ConfigTest, TypedAccessorsWithFallbacks) {
  Config c;
  c.SetInt("answer", 42);
  c.SetDouble("pi", 3.14);
  c.SetBool("flag", true);
  c.Set("name", "bmr");
  EXPECT_EQ(c.GetInt("answer"), 42);
  EXPECT_DOUBLE_EQ(c.GetDouble("pi"), 3.14);
  EXPECT_TRUE(c.GetBool("flag"));
  EXPECT_EQ(c.GetString("name"), "bmr");
  EXPECT_EQ(c.GetInt("missing", -1), -1);
  EXPECT_FALSE(c.GetBool("missing"));
  c.Set("junk", "not-a-number");
  EXPECT_EQ(c.GetInt("junk", 9), 9);
}

TEST(TextTableTest, AlignsColumns) {
  TextTable t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"long-name", "2"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("long-name"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(LoggingTest, LevelsFilterMessages) {
  // Below-threshold messages must not be emitted (no crash, no output
  // assertion possible portably — exercise the paths).
  SetLogLevel(LogLevel::kError);
  BMR_DEBUG << "dropped";
  BMR_INFO << "dropped";
  BMR_WARN << "dropped";
  SetLogLevel(LogLevel::kOff);
  BMR_ERROR << "dropped too";
  SetLogLevel(LogLevel::kWarn);  // restore default for other tests
  SUCCEED();
}

TEST(SliceTest, ParsingHelpers) {
  Slice s("hello world");
  EXPECT_TRUE(s.StartsWith("hello"));
  EXPECT_FALSE(s.StartsWith("world"));
  s.RemovePrefix(6);
  EXPECT_EQ(s.ToString(), "world");
  EXPECT_LT(Slice("abc").Compare("abd"), 0);
}

}  // namespace
}  // namespace bmr
