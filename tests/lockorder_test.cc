// Tests for the debug lock-order (deadlock-potential) detector:
// the LockOrderRegistry graph logic in any build type, and the
// OrderedMutex wiring end-to-end when BMR_LOCK_ORDER_CHECKS is on
// (Debug presets: asan, tsan).
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/lock_order.h"
#include "common/mutex.h"

// This binary intentionally constructs lock-order inversions to prove
// the registry catches them; under the tsan preset, ThreadSanitizer's
// own deadlock detector would (correctly) flag the same inversions and
// fail the run.  Default it off for this test only — a real TSAN_OPTIONS
// environment variable still overrides this hook.
extern "C" const char* __tsan_default_options() {
  return "detect_deadlocks=0";
}

namespace bmr {
namespace {

class LockOrderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LockOrderRegistry::Instance().Reset();
    previous_ = LockOrderRegistry::Instance().SetHandler(
        [this](const LockOrderRegistry::Violation& v) {
          std::lock_guard<std::mutex> lock(mu_);
          violations_.push_back(v);
        });
  }

  void TearDown() override {
    LockOrderRegistry::Instance().SetHandler(std::move(previous_));
    LockOrderRegistry::Instance().Reset();
  }

  std::vector<LockOrderRegistry::Violation> violations() {
    std::lock_guard<std::mutex> lock(mu_);
    return violations_;
  }

 private:
  std::mutex mu_;
  std::vector<LockOrderRegistry::Violation> violations_;
  LockOrderRegistry::Handler previous_;
};

// Distinct dummy addresses standing in for mutexes at the registry API
// level (no real locking involved).
struct Dummies {
  char a, b, c;
};

void Acquire(const void* m, const char* name) {
  LockOrderRegistry::Instance().OnAcquire(m, name);
}
void Release(const void* m) { LockOrderRegistry::Instance().OnRelease(m); }

TEST_F(LockOrderTest, ConsistentOrderAcrossThreadsIsClean) {
  Dummies d;
  auto a_then_b = [&d] {
    for (int i = 0; i < 100; ++i) {
      Acquire(&d.a, "A");
      Acquire(&d.b, "B");
      Release(&d.b);
      Release(&d.a);
    }
  };
  std::thread t1(a_then_b);
  std::thread t2(a_then_b);
  t1.join();
  t2.join();
  EXPECT_TRUE(violations().empty());
}

TEST_F(LockOrderTest, InversionAcrossThreadsIsDetected) {
  Dummies d;
  std::thread t([&d] {  // establishes A -> B
    Acquire(&d.a, "A");
    Acquire(&d.b, "B");
    Release(&d.b);
    Release(&d.a);
  });
  t.join();

  Acquire(&d.b, "B");  // opposite order on this thread
  Acquire(&d.a, "A");
  Release(&d.a);
  Release(&d.b);

  auto got = violations();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].acquiring, "A");
  EXPECT_EQ(got[0].held, "B");
  EXPECT_NE(got[0].message.find("lock-order inversion"), std::string::npos);
  EXPECT_NE(got[0].message.find("\"A\" -> \"B\""), std::string::npos);
}

TEST_F(LockOrderTest, TransitiveCycleIsDetected) {
  Dummies d;
  // Establish A -> B and B -> C on one thread.
  Acquire(&d.a, "A");
  Acquire(&d.b, "B");
  Release(&d.b);
  Release(&d.a);
  Acquire(&d.b, "B");
  Acquire(&d.c, "C");
  Release(&d.c);
  Release(&d.b);
  ASSERT_TRUE(violations().empty());

  // C -> A closes the cycle through B even though the direct pair was
  // never taken together.
  Acquire(&d.c, "C");
  Acquire(&d.a, "A");
  Release(&d.a);
  Release(&d.c);

  auto got = violations();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].acquiring, "A");
  EXPECT_EQ(got[0].held, "C");
  EXPECT_NE(got[0].message.find("\"A\" -> \"B\" -> \"C\""),
            std::string::npos);
}

TEST_F(LockOrderTest, RecursiveAcquisitionIsDetected) {
  Dummies d;
  Acquire(&d.a, "A");
  Acquire(&d.a, "A");
  Release(&d.a);
  Release(&d.a);

  auto got = violations();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_NE(got[0].message.find("recursive acquisition"), std::string::npos);
}

TEST_F(LockOrderTest, RepeatedSameOrderAddsNoDuplicateReports) {
  Dummies d;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&d] {
      for (int i = 0; i < 50; ++i) {
        Acquire(&d.a, "A");
        Acquire(&d.b, "B");
        Acquire(&d.c, "C");
        Release(&d.c);
        Release(&d.b);
        Release(&d.a);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(violations().empty());
}

TEST_F(LockOrderTest, ResetDropsEstablishedEdges) {
  Dummies d;
  Acquire(&d.a, "A");
  Acquire(&d.b, "B");
  Release(&d.b);
  Release(&d.a);

  LockOrderRegistry::Instance().Reset();

  Acquire(&d.b, "B");
  Acquire(&d.a, "A");
  Release(&d.a);
  Release(&d.b);
  EXPECT_TRUE(violations().empty());
}

TEST_F(LockOrderTest, DestroyedMutexDoesNotConstrainAddressReuse) {
  Dummies d;
  Acquire(&d.a, "A");
  Acquire(&d.b, "B");
  Release(&d.b);
  Release(&d.a);

  // "B" dies; a new mutex reuses its address.  The old A -> B edge must
  // not outlive it.
  LockOrderRegistry::Instance().OnDestroy(&d.b);

  Acquire(&d.b, "B2");
  Acquire(&d.a, "A");
  Release(&d.a);
  Release(&d.b);
  EXPECT_TRUE(violations().empty());
}

#if BMR_LOCK_ORDER_CHECKS
// End-to-end through OrderedMutex itself (compiled only when the hooks
// are on, i.e. Debug builds — the default preset is RelWithDebInfo and
// strips them for zero-cost release locking).
TEST_F(LockOrderTest, OrderedMutexEndToEnd) {
  OrderedMutex a("test.a");
  OrderedMutex b("test.b");

  std::thread t([&] {  // establishes test.a -> test.b
    MutexLock la(a);
    MutexLock lb(b);
  });
  t.join();
  EXPECT_TRUE(violations().empty());

  {
    MutexLock lb(b);
    MutexLock la(a);  // inversion: fires the (capturing) handler
  }

  auto got = violations();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].acquiring, "test.a");
  EXPECT_EQ(got[0].held, "test.b");
}

TEST_F(LockOrderTest, OrderedMutexConsistentUseIsClean) {
  OrderedMutex a("test.outer");
  OrderedMutex b("test.inner");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        MutexLock la(a);
        MutexLock lb(b);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(violations().empty());
}
#endif  // BMR_LOCK_ORDER_CHECKS

}  // namespace
}  // namespace bmr
