// Tests for split planning and record readers, including the Hadoop
// line-straddling contract at split boundaries.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "mr/input.h"
#include "test_util.h"

namespace bmr::mr {
namespace {

using testutil::MakeTestCluster;

TEST(SplitPlanTest, SplitsCoverFileExactly) {
  auto cluster = MakeTestCluster(3, /*block_bytes=*/1000);
  std::string data(4500, 'x');
  ASSERT_TRUE(cluster->client(1)->WriteFile("/f", data).ok());
  auto splits = PlanSplits(cluster->client(0), {"/f"}, InputKind::kTextLines,
                           /*split_bytes=*/0);
  ASSERT_TRUE(splits.ok());
  ASSERT_EQ(splits->size(), 5u);  // 4500 / 1000-byte blocks
  uint64_t covered = 0;
  for (const auto& s : *splits) {
    EXPECT_EQ(s.offset, covered);
    covered += s.length;
    EXPECT_FALSE(s.preferred_nodes.empty());
  }
  EXPECT_EQ(covered, 4500u);
}

TEST(SplitPlanTest, EmptyFilesYieldNoSplits) {
  auto cluster = MakeTestCluster(2);
  ASSERT_TRUE(cluster->client(1)->WriteFile("/empty", "").ok());
  auto splits = PlanSplits(cluster->client(0), {"/empty"},
                           InputKind::kTextLines, 0);
  ASSERT_TRUE(splits.ok());
  EXPECT_TRUE(splits->empty());
}

TEST(SplitPlanTest, KvInputsGetOneSplitPerFile) {
  auto cluster = MakeTestCluster(2, /*block_bytes=*/128);
  ASSERT_TRUE(
      cluster->client(1)->WriteFile("/kv", std::string(1000, 'x')).ok());
  auto splits =
      PlanSplits(cluster->client(0), {"/kv"}, InputKind::kKvPairs, 0);
  ASSERT_TRUE(splits.ok());
  ASSERT_EQ(splits->size(), 1u);
  EXPECT_EQ((*splits)[0].length, 1000u);
}

/// Property: for any split size, every line is read exactly once and
/// with its correct byte-offset key.
class LineBoundaryTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LineBoundaryTest, EachLineExactlyOnce) {
  uint64_t split_bytes = GetParam();
  auto cluster = MakeTestCluster(3, /*block_bytes=*/64 << 10);
  // Lines of varying lengths, including empties.
  Pcg32 rng(split_bytes);
  std::string data;
  std::vector<std::pair<uint64_t, std::string>> expected;
  for (int i = 0; i < 300; ++i) {
    std::string line(rng.NextBounded(40), 'a' + i % 26);
    expected.emplace_back(data.size(), line);
    data += line;
    data += '\n';
  }
  ASSERT_TRUE(cluster->client(1)->WriteFile("/lines", data).ok());

  auto splits = PlanSplits(cluster->client(0), {"/lines"},
                           InputKind::kTextLines, split_bytes);
  ASSERT_TRUE(splits.ok());
  std::vector<std::pair<uint64_t, std::string>> got;
  for (const auto& split : *splits) {
    TextLineReader reader(cluster->client(0), split);
    Record record;
    bool has = false;
    for (;;) {
      ASSERT_TRUE(reader.Next(&record, &has).ok());
      if (!has) break;
      got.emplace_back(std::stoull(record.key), record.value);
    }
  }
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected);
}

INSTANTIATE_TEST_SUITE_P(SplitSizes, LineBoundaryTest,
                         ::testing::Values(64u, 100u, 257u, 1000u, 4096u,
                                           1u << 20));

TEST(TextLineReaderTest, FileWithoutTrailingNewline) {
  auto cluster = MakeTestCluster(2);
  ASSERT_TRUE(cluster->client(1)->WriteFile("/f", "one\ntwo\nthree").ok());
  auto splits =
      PlanSplits(cluster->client(0), {"/f"}, InputKind::kTextLines, 0);
  ASSERT_TRUE(splits.ok());
  ASSERT_EQ(splits->size(), 1u);
  TextLineReader reader(cluster->client(0), (*splits)[0]);
  std::vector<std::string> lines;
  Record r;
  bool has;
  for (;;) {
    ASSERT_TRUE(reader.Next(&r, &has).ok());
    if (!has) break;
    lines.push_back(r.value);
  }
  EXPECT_EQ(lines, (std::vector<std::string>{"one", "two", "three"}));
}

TEST(KvPairReaderTest, RoundTripThroughDfs) {
  auto cluster = MakeTestCluster(2);
  ByteBuffer buf;
  for (int i = 0; i < 50; ++i) {
    AppendFramedRecord(&buf, "k" + std::to_string(i),
                       std::string(i % 17, 'v'));
  }
  ASSERT_TRUE(cluster->client(1)->WriteFile("/kv", buf.AsSlice()).ok());
  auto splits =
      PlanSplits(cluster->client(0), {"/kv"}, InputKind::kKvPairs, 0);
  ASSERT_TRUE(splits.ok());
  KvPairReader reader(cluster->client(0), (*splits)[0]);
  Record r;
  bool has;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(reader.Next(&r, &has).ok());
    ASSERT_TRUE(has);
    EXPECT_EQ(r.key, "k" + std::to_string(i));
    EXPECT_EQ(r.value, std::string(i % 17, 'v'));
  }
  ASSERT_TRUE(reader.Next(&r, &has).ok());
  EXPECT_FALSE(has);
}

TEST(KvPairReaderTest, CorruptDataIsDataLoss) {
  auto cluster = MakeTestCluster(2);
  ASSERT_TRUE(cluster->client(1)->WriteFile("/bad", "\xff\xff\xff").ok());
  auto splits =
      PlanSplits(cluster->client(0), {"/bad"}, InputKind::kKvPairs, 0);
  ASSERT_TRUE(splits.ok());
  KvPairReader reader(cluster->client(0), (*splits)[0]);
  Record r;
  bool has;
  EXPECT_EQ(reader.Next(&r, &has).code(), StatusCode::kDataLoss);
}

}  // namespace
}  // namespace bmr::mr
