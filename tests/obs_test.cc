// Observability subsystem tests: tracer mechanics, exporter output and
// self-validation, engine integration (nested spans + latency
// histograms from a traced run), the simulator flowing through the
// same exporters, fault counters surfacing in the Prometheus
// exposition, and golden text for the human-facing reports.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "apps/registry.h"
#include "cluster/cluster.h"
#include "faults/fault_injector.h"
#include "mr/engine.h"
#include "mr/metrics.h"
#include "mr/obs_export.h"
#include "mr/timeline.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/http_introspect.h"
#include "obs/metric_names.h"
#include "obs/trace.h"
#include "obs/validate.h"
#include "simmr/hadoop_sim.h"
#include "simmr/profiles.h"
#include "test_util.h"
#include "workload/generators.h"

namespace bmr {
namespace {

using testutil::MakeTestCluster;

// ---- Tracer -----------------------------------------------------------

TEST(Tracer, DisabledTracerRecordsNothing) {
  obs::Tracer tracer;  // never enabled
  {
    obs::ScopedSpan span(&tracer, "noop", "test");
    EXPECT_EQ(span.id(), 0u);
    EXPECT_EQ(obs::CurrentSpan(), 0u);
    obs::LatencyTimer timer(&tracer, obs::kHStoreGetUs);
  }
  tracer.RecordLatency(obs::kHStoreGetUs, 5);
  EXPECT_TRUE(tracer.CollectTrace().spans.empty());
  EXPECT_TRUE(tracer.SnapshotHistograms().empty());

  // Null tracer: the instrumented call sites pass nullptr freely.
  obs::ScopedSpan null_span(nullptr, "noop", "test");
  obs::LatencyTimer null_timer(nullptr, obs::kHStoreGetUs);
  EXPECT_EQ(null_span.id(), 0u);
}

TEST(Tracer, NestedSpansParentImplicitly) {
  obs::Tracer tracer;
  tracer.Enable();
  tracer.RestartClock();
  obs::SpanId root = tracer.NextSpanId();
  tracer.SetRootSpan(root);

  obs::SpanId outer_id;
  obs::SpanId inner_id;
  {
    obs::ScopedSpan outer(&tracer, "outer", "test");
    outer_id = outer.id();
    EXPECT_EQ(obs::CurrentSpan(), outer_id);
    {
      obs::ScopedSpan inner(&tracer, "inner", "test", /*arg=*/7);
      inner_id = inner.id();
      EXPECT_EQ(obs::CurrentSpan(), inner_id);
    }
    EXPECT_EQ(obs::CurrentSpan(), outer_id);
  }
  EXPECT_EQ(obs::CurrentSpan(), 0u);

  obs::TraceLog log = tracer.CollectTrace();
  ASSERT_EQ(log.spans.size(), 2u);
  std::set<obs::SpanId> ids;
  for (const obs::Span& s : log.spans) {
    ids.insert(s.id);
    EXPECT_NE(s.id, 0u);
    EXPECT_GE(s.end_s, s.start_s);
    if (std::strcmp(s.name, "outer") == 0) {
      // No enclosing span on this thread: parents to the job root.
      EXPECT_EQ(s.parent, root);
    } else {
      EXPECT_EQ(s.parent, outer_id);
      EXPECT_EQ(s.arg, 7);
    }
  }
  EXPECT_EQ(ids.size(), 2u) << "span ids must be unique";
  EXPECT_EQ(ids.count(root), 0u) << "root id is reserved for the job span";
  EXPECT_TRUE(ids.count(inner_id) == 1);

  // CollectTrace is repeatable: spans accumulate, nothing is lost.
  EXPECT_EQ(tracer.CollectTrace().spans.size(), 2u);
}

TEST(Tracer, ThreadsGetDistinctLanesAndExplicitParents) {
  obs::Tracer tracer;
  tracer.Enable(obs::TracerOptions{/*buffer_spans=*/2});  // force flushes
  tracer.RestartClock();

  obs::SpanId parent_id;
  {
    obs::ScopedSpan parent(&tracer, "parent", "test");
    parent_id = parent.id();
    std::vector<std::thread> threads;
    for (int i = 0; i < 3; ++i) {
      threads.emplace_back([&tracer, parent_id, i] {
        for (int k = 0; k < 5; ++k) {
          // Worker threads have no open span: causality crosses the
          // thread boundary via the explicit parent id.
          obs::ScopedSpan child(&tracer, "child", "test", i, parent_id);
        }
      });
    }
    for (auto& t : threads) t.join();
  }

  obs::TraceLog log = tracer.CollectTrace();
  ASSERT_EQ(log.spans.size(), 16u);
  std::set<int> child_tids;
  for (const obs::Span& s : log.spans) {
    if (std::strcmp(s.name, "child") == 0) {
      EXPECT_EQ(s.parent, parent_id);
      child_tids.insert(s.tid);
    }
  }
  EXPECT_EQ(child_tids.size(), 3u) << "one trace lane per thread";
  EXPECT_EQ(log.tracks.size(), 4u);  // main thread + 3 workers
}

TEST(Tracer, LatencyHistogramsAccumulateAndMerge) {
  obs::Tracer tracer;
  tracer.Enable();
  tracer.RecordLatency(obs::kHStoreGetUs, 3);
  tracer.RecordLatency(obs::kHStoreGetUs, 100);

  LogHistogram local;
  local.Add(7);
  local.Add(9);
  tracer.MergeHistogram(obs::kHStoreGetUs, local);
  tracer.MergeHistogram(obs::kHStorePutUs, LogHistogram());  // empty: no-op

  auto histograms = tracer.SnapshotHistograms();
  ASSERT_EQ(histograms.size(), 1u);
  const LogHistogram& h = histograms.at(obs::kHStoreGetUs);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 119u);
  EXPECT_EQ(h.min(), 3u);
  EXPECT_EQ(h.max(), 100u);
}

// Wire trace-context (GUIDE §15): what an outgoing RPC carries, and
// what the receiving side accepts as a cross-node parent.
TEST(Tracer, CurrentContextAndPropagatedParent) {
  obs::Tracer tracer;
  // Disabled: nothing goes on the wire.
  EXPECT_FALSE(tracer.CurrentContext().valid());

  tracer.Enable();
  tracer.RestartClock();
  obs::SpanId root = tracer.NextSpanId();
  tracer.SetRootSpan(root);

  // No open span: context falls back to the job root.
  obs::TraceContext at_root = tracer.CurrentContext();
  EXPECT_TRUE(at_root.valid());
  EXPECT_EQ(at_root.trace_id, tracer.trace_id());
  EXPECT_EQ(at_root.parent_span, root);
  EXPECT_EQ(at_root.flags & obs::kTraceFlagSampled, obs::kTraceFlagSampled);

  obs::TraceContext inside;
  obs::SpanId span_id;
  {
    obs::ScopedSpan span(&tracer, "caller", "test");
    span_id = span.id();
    inside = tracer.CurrentContext();
  }
  EXPECT_EQ(inside.parent_span, span_id);

  // Accepting side: same generation stitches, anything else falls
  // back to 0 (ScopedSpan then parents locally — never an orphan).
  EXPECT_EQ(tracer.PropagatedParent(inside), span_id);
  EXPECT_EQ(tracer.PropagatedParent(obs::TraceContext{}), 0u);
  obs::TraceContext foreign = inside;
  foreign.trace_id = inside.trace_id + 1;  // a different tracer's id
  EXPECT_EQ(tracer.PropagatedParent(foreign), 0u);

  obs::Tracer disabled;
  EXPECT_EQ(disabled.PropagatedParent(inside), 0u);
}

// Two tracers in one process never share a trace id — a stale context
// from job A cannot stitch into job B's tree.
TEST(Tracer, TraceIdsAreProcessUnique) {
  obs::Tracer a, b;
  EXPECT_NE(a.trace_id(), 0u);
  EXPECT_NE(b.trace_id(), 0u);
  EXPECT_NE(a.trace_id(), b.trace_id());
}

// The central log is bounded: overflow is dropped and counted, never
// an allocation runaway and never silent.
TEST(Tracer, CentralCapDropsAndCountsSpans) {
  obs::Tracer tracer;
  tracer.Enable(obs::TracerOptions{/*buffer_spans=*/2, /*max_spans=*/10});
  tracer.RestartClock();
  for (int i = 0; i < 50; ++i) {
    obs::ScopedSpan span(&tracer, "burst", "test", i);
  }
  obs::TraceLog log = tracer.CollectTrace();
  EXPECT_LE(log.spans.size(), 10u);
  EXPECT_EQ(tracer.dropped_spans() + log.spans.size(), 50u);
  EXPECT_GT(tracer.dropped_spans(), 0u);
}

// The drop counter reaches the exposition as
// bmr_obs_spans_dropped_total whenever tracing was on (a zero is a
// healthy signal, not noise).
TEST(Tracer, DroppedSpansReachTheExposition) {
  mr::JobMetrics m;
  m.trace_enabled = true;
  m.spans_dropped = 7;
  std::string prom = obs::PrometheusText(mr::BuildMetricsSnapshot(m));
  EXPECT_NE(prom.find(std::string(obs::kPromObsSpansDropped) + " 7"),
            std::string::npos);
  ASSERT_TRUE(obs::ValidatePrometheusText(prom).ok());

  m.spans_dropped = 0;
  prom = obs::PrometheusText(mr::BuildMetricsSnapshot(m));
  EXPECT_NE(prom.find(obs::kPromObsSpansDropped), std::string::npos);

  m.trace_enabled = false;
  prom = obs::PrometheusText(mr::BuildMetricsSnapshot(m));
  EXPECT_EQ(prom.find(obs::kPromObsSpansDropped), std::string::npos);
}

// ---- Exporters and validators -----------------------------------------

obs::TraceLog MakeSyntheticTrace() {
  obs::TraceLog log;
  log.spans.push_back(
      {/*id=*/1, /*parent=*/0, "job", "job", 1, 0, -1, 0.0, 1.0});
  log.spans.push_back(
      {/*id=*/2, /*parent=*/1, "task.map", "task", 1, 0, 3, 0.1, 0.4});
  log.spans.push_back(
      {/*id=*/3, /*parent=*/2, "shuffle.fetch", "shuffle", 1, 1, 3, 0.2, 0.3});
  log.tracks.push_back({1, 0, "worker-0"});
  log.tracks.push_back({1, 1, "worker-1"});
  log.counters.push_back({"heap_bytes_r0", 1, 0, 0.5, 4096.0});
  return log;
}

TEST(Exporters, PerfettoJsonRoundTripsThroughValidator) {
  const std::string json = obs::PerfettoTraceJson(MakeSyntheticTrace());
  Status st = obs::ValidatePerfettoJson(json, /*min_spans=*/3);
  EXPECT_TRUE(st.ok()) << st;
  // Spot-check the Chrome trace_event shape the validator abstracts.
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"shuffle.fetch\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
}

TEST(Exporters, ValidatorRejectsMalformedTraces) {
  EXPECT_FALSE(obs::ValidatePerfettoJson("not json at all").ok());
  EXPECT_FALSE(obs::ValidatePerfettoJson("{\"traceEvents\":{}}").ok());
  // ts must be monotonic non-decreasing across "X" events.
  EXPECT_FALSE(
      obs::ValidatePerfettoJson(
          "{\"traceEvents\":["
          "{\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":5.0,\"dur\":1.0,"
          "\"name\":\"a\",\"args\":{\"span\":1,\"parent\":0}},"
          "{\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":2.0,\"dur\":1.0,"
          "\"name\":\"b\",\"args\":{\"span\":2,\"parent\":0}}]}")
          .ok());
  // A child span leaking outside its parent's interval is a causality
  // bug the validator must catch.
  obs::TraceLog bad = MakeSyntheticTrace();
  bad.spans[2].end_s = 2.0;  // fetch outlives the whole job
  EXPECT_FALSE(obs::ValidatePerfettoJson(obs::PerfettoTraceJson(bad)).ok());
  // min_spans guards against silently-empty traces.
  EXPECT_FALSE(
      obs::ValidatePerfettoJson(obs::PerfettoTraceJson(MakeSyntheticTrace()),
                                /*min_spans=*/100)
          .ok());
}

// Orphan detection (satellite of GUIDE §15): a span naming a parent
// that never appears is tolerated by default (partial snapshots) but
// an error under require_parents — the mode `bmr_trace --check` uses
// on complete single-job traces.
TEST(Exporters, ValidatorFlagsOrphanSpansWhenStrict) {
  obs::TraceLog log = MakeSyntheticTrace();
  log.spans.push_back({/*id=*/9, /*parent=*/777, "task.reduce", "task", 1, 1,
                       0, 0.5, 0.6});  // parent 777 exists nowhere
  const std::string json = obs::PerfettoTraceJson(log);
  EXPECT_TRUE(obs::ValidatePerfettoJson(json).ok());
  Status st = obs::ValidatePerfettoJson(json, /*min_spans=*/0,
                                        /*require_parents=*/true);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("orphan"), std::string::npos) << st;
  // A fully stitched tree passes strict validation.
  EXPECT_TRUE(obs::ValidatePerfettoJson(
                  obs::PerfettoTraceJson(MakeSyntheticTrace()),
                  /*min_spans=*/0, /*require_parents=*/true)
                  .ok());
}

TEST(Exporters, JsonTextValidatorAcceptsDocumentsRejectsGarbage) {
  EXPECT_TRUE(obs::ValidateJsonText("{\"pools\":[{\"queued\":0}]}").ok());
  EXPECT_TRUE(obs::ValidateJsonText("[]").ok());
  EXPECT_FALSE(obs::ValidateJsonText("{\"pools\":[").ok());
  EXPECT_FALSE(obs::ValidateJsonText("").ok());
}

TEST(Exporters, PrometheusTextExposesAllFamilies) {
  obs::MetricsSnapshot snap;
  snap.counters["map_input_records"] = 1744;
  snap.counters["fault_injected_fetch_timeout"] = 2;
  snap.gauges[obs::kPromJobElapsedSeconds] = 1.25;
  LogHistogram h;
  h.Add(0);
  h.Add(3);
  h.Add(100);
  snap.histograms[obs::kHShuffleFetchRttUs] = h;

  const std::string text = obs::PrometheusText(snap);
  Status st = obs::ValidatePrometheusText(text);
  EXPECT_TRUE(st.ok()) << st << "\n" << text;
  EXPECT_NE(text.find("bmr_job_map_input_records_total 1744"),
            std::string::npos);
  EXPECT_NE(text.find("bmr_faults_injected_total{kind=\"fetch_timeout\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("bmr_job_elapsed_seconds 1.250000"), std::string::npos);
  EXPECT_NE(text.find("bmr_shuffle_fetch_rtt_us_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("bmr_shuffle_fetch_rtt_us_sum 103"), std::string::npos);
  EXPECT_NE(text.find("bmr_shuffle_fetch_rtt_us_count 3"), std::string::npos);
}

// Histograms registered with a label set (the per-transport RPC
// latency families) re-attach their labels to every series, keep `le`
// last, and validate as independent families.
TEST(Exporters, LabeledHistogramsRoundTripThroughValidator) {
  obs::MetricsSnapshot snap;
  LogHistogram inproc;
  inproc.Add(2);
  inproc.Add(40);
  snap.histograms[obs::kHRpcCallInprocUs] = inproc;
  LogHistogram tcp;
  tcp.Add(900);
  snap.histograms[obs::kHRpcCallTcpUs] = tcp;

  const std::string text = obs::PrometheusText(snap);
  Status st = obs::ValidatePrometheusText(text);
  EXPECT_TRUE(st.ok()) << st << "\n" << text;
  EXPECT_NE(
      text.find("bmr_rpc_call_us_bucket{transport=\"inproc\",le=\"+Inf\"} 2"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("bmr_rpc_call_us_sum{transport=\"inproc\"} 42"),
            std::string::npos);
  EXPECT_NE(text.find("bmr_rpc_call_us_count{transport=\"tcp\"} 1"),
            std::string::npos);
  // The label never leaks into the family name itself.
  EXPECT_EQ(text.find("bmr_rpc_call_us{"), std::string::npos);
}

TEST(Exporters, PrometheusValidatorEnforcesNamingAndCoherence) {
  // Off-convention family name (no bmr_ prefix).
  EXPECT_FALSE(obs::ValidatePrometheusText("my_metric_total 1\n").ok());
  // Missing unit suffix.
  EXPECT_FALSE(obs::ValidatePrometheusText("bmr_job_stuff 1\n").ok());
  // Histogram whose cumulative buckets decrease.
  EXPECT_FALSE(obs::ValidatePrometheusText(
                   "bmr_store_get_us_bucket{le=\"1\"} 5\n"
                   "bmr_store_get_us_bucket{le=\"3\"} 2\n"
                   "bmr_store_get_us_bucket{le=\"+Inf\"} 5\n"
                   "bmr_store_get_us_sum 9\n"
                   "bmr_store_get_us_count 5\n")
                   .ok());
  // +Inf bucket disagreeing with _count.
  EXPECT_FALSE(obs::ValidatePrometheusText(
                   "bmr_store_get_us_bucket{le=\"+Inf\"} 4\n"
                   "bmr_store_get_us_sum 9\n"
                   "bmr_store_get_us_count 5\n")
                   .ok());
}

// ---- Flight recorder ---------------------------------------------------

TEST(FlightRecorder, RecordsAndSnapshotsValidPerfettoJson) {
  obs::FlightRecorder recorder(64);
  recorder.RecordSpan("task.map", "task", /*arg=*/3, /*node=*/1, 0.002);
  recorder.Note("map.relaunch", "recovery", 3, 2);
  recorder.RecordCounter("inflight", 5);
  EXPECT_EQ(recorder.size(), 3u);
  EXPECT_EQ(recorder.overwritten(), 0u);

  const std::string json = recorder.SnapshotJson(0);
  Status st = obs::ValidatePerfettoJson(json, /*min_spans=*/2);
  EXPECT_TRUE(st.ok()) << st << "\n" << json;
  EXPECT_NE(json.find("task.map"), std::string::npos);
  EXPECT_NE(json.find("map.relaunch"), std::string::npos);
  EXPECT_NE(json.find("inflight"), std::string::npos);
}

TEST(FlightRecorder, RingBoundOverwritesOldestAndCounts) {
  obs::FlightRecorder recorder(4);
  for (int i = 0; i < 10; ++i) {
    recorder.Note("event." + std::to_string(i), "test", i, -1);
  }
  EXPECT_EQ(recorder.size(), 4u);
  EXPECT_EQ(recorder.overwritten(), 6u);
  const std::string json = recorder.SnapshotJson(0);
  // The retained window is the most recent events.
  EXPECT_EQ(json.find("event.5"), std::string::npos);
  EXPECT_NE(json.find("event.6"), std::string::npos);
  EXPECT_NE(json.find("event.9"), std::string::npos);
  // last_n trims further from the recent end.
  const std::string last = recorder.SnapshotJson(2);
  EXPECT_EQ(last.find("event.7"), std::string::npos);
  EXPECT_NE(last.find("event.8"), std::string::npos);
  EXPECT_NE(last.find("event.9"), std::string::npos);
}

TEST(FlightRecorder, DumpTriggerIsStickyUntilTaken) {
  obs::FlightRecorder recorder(16);
  EXPECT_FALSE(recorder.dump_pending());
  recorder.RequestDump("job.failure: reducer 2 tainted", /*arg=*/2);
  recorder.RequestDump("fault.node_crash node=1", /*arg=*/1);
  EXPECT_TRUE(recorder.dump_pending());
  // The triggers are themselves events in the ring, under the category
  // the chaos harness greps for.
  EXPECT_NE(recorder.SnapshotJson(0).find(obs::kFlightTriggerCategory),
            std::string::npos);
  std::vector<std::string> reasons = recorder.TakeDumpReasons();
  ASSERT_EQ(reasons.size(), 2u);
  EXPECT_EQ(reasons[0], "job.failure: reducer 2 tainted");
  EXPECT_FALSE(recorder.dump_pending());
  EXPECT_TRUE(recorder.TakeDumpReasons().empty());
}

TEST(FlightRecorder, DumpToDirWritesValidatableArtifact) {
  char tmpl[] = "/tmp/bmr_flight_test_XXXXXX";
  ASSERT_NE(mkdtemp(tmpl), nullptr);
  obs::FlightRecorder recorder(16);
  recorder.RecordSpan("task.reduce", "task", 2, 1, 0.001);
  recorder.RequestDump("reduce.restart task=2: tainted", 2);
  StatusOr<std::string> path = recorder.DumpToDir(tmpl);
  ASSERT_TRUE(path.ok()) << path.status();
  EXPECT_NE(path->find("flight_"), std::string::npos);

  std::ifstream in(*path);
  ASSERT_TRUE(in.is_open());
  std::string json((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_TRUE(obs::ValidatePerfettoJson(json, /*min_spans=*/1).ok());
  EXPECT_NE(json.find(obs::kFlightTriggerCategory), std::string::npos);
  EXPECT_NE(json.find("reduce.restart task=2"), std::string::npos);

  // Unwritable target surfaces a Status, not a silent no-op.
  EXPECT_FALSE(recorder.DumpToDir("/nonexistent/dir").ok());
  std::remove(path->c_str());
  rmdir(tmpl);
}

TEST(FlightRecorder, GlobalIsAlwaysArmed) {
  obs::FlightRecorder* global = obs::FlightRecorder::Global();
  ASSERT_NE(global, nullptr);
  EXPECT_EQ(global, obs::FlightRecorder::Global());
  global->Note("test.global", "test", -1, -1);
  EXPECT_GE(global->size(), 1u);
}

// ---- Live introspection HTTP server ------------------------------------

/// Blocking one-shot HTTP/1.0 client against 127.0.0.1:`port`.
std::string HttpGet(int port, const std::string& target) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::string req = "GET " + target + " HTTP/1.0\r\n\r\n";
  EXPECT_EQ(::send(fd, req.data(), req.size(), 0),
            static_cast<ssize_t>(req.size()));
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) response.append(buf, n);
  ::close(fd);
  return response;
}

TEST(HttpIntrospect, ServesRegisteredPathsAndQueryStrings) {
  auto server = obs::HttpIntrospectServer::Create(0);
  ASSERT_TRUE(server.ok()) << server.status();
  ASSERT_GT((*server)->port(), 0);
  (*server)->Handle("/ping", "text/plain",
                    [](const std::string& query) { return "pong:" + query; });

  std::string response = HttpGet((*server)->port(), "/ping");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("Content-Type: text/plain"), std::string::npos);
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  EXPECT_NE(response.find("pong:"), std::string::npos);

  // The query string (text after '?') reaches the handler.
  response = HttpGet((*server)->port(), "/ping?last=25");
  EXPECT_NE(response.find("pong:last=25"), std::string::npos) << response;

  // Unregistered path and non-GET method are rejected, not crashed.
  EXPECT_NE(HttpGet((*server)->port(), "/nope").find("404"),
            std::string::npos);
}

TEST(HttpIntrospect, SequentialScrapesAndCleanShutdown) {
  int port = 0;
  {
    auto server = obs::HttpIntrospectServer::Create(0);
    ASSERT_TRUE(server.ok()) << server.status();
    port = (*server)->port();
    (*server)->Handle("/n", "text/plain",
                      [](const std::string&) { return "ok"; });
    for (int i = 0; i < 8; ++i) {
      EXPECT_NE(HttpGet(port, "/n").find("ok"), std::string::npos);
    }
  }
  // After destruction the port no longer accepts connections.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_NE(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ::close(fd);
}

// ---- Engine integration ------------------------------------------------

mr::JobResult RunWordCount(mr::ClusterContext* cluster, bool traced,
                           const std::string& output_path) {
  workload::TextGenOptions gen;
  gen.total_bytes = 48 << 10;
  gen.vocabulary = 200;
  gen.seed = 77;
  auto files = workload::GenerateZipfText(cluster, output_path + "-in", gen);
  EXPECT_TRUE(files.ok()) << files.status();

  apps::AppOptions options;
  options.input_files = *files;
  options.output_path = output_path;
  options.num_reducers = 2;
  options.barrierless = true;
  if (traced) options.extra.SetBool("obs.trace", true);
  mr::JobRunner runner(cluster);
  return runner.Run(apps::FindApp("wordcount")->make_job(options));
}

TEST(EngineTracing, TracedRunProducesNestedSpansAndHistograms) {
  auto cluster = MakeTestCluster(/*slaves=*/3, /*block_bytes=*/8 << 10);
  mr::JobResult result = RunWordCount(cluster.get(), /*traced=*/true, "/out");
  ASSERT_TRUE(result.ok()) << result.status;
  ASSERT_TRUE(result.trace_enabled);

  obs::SpanId job_id = 0;
  std::set<obs::SpanId> map_ids;
  std::set<obs::SpanId> reduce_ids;
  for (const obs::Span& s : result.trace.spans) {
    if (std::strcmp(s.name, obs::kSpanJob) == 0) {
      EXPECT_EQ(job_id, 0u) << "exactly one job span";
      EXPECT_EQ(s.parent, 0u);
      job_id = s.id;
    } else if (std::strcmp(s.name, obs::kSpanMapTask) == 0) {
      map_ids.insert(s.id);
    } else if (std::strcmp(s.name, obs::kSpanReduceTask) == 0) {
      reduce_ids.insert(s.id);
    }
  }
  ASSERT_NE(job_id, 0u);
  EXPECT_GE(map_ids.size(), 2u) << "small blocks => several map tasks";
  EXPECT_EQ(reduce_ids.size(), 2u);

  size_t fetches = 0;
  for (const obs::Span& s : result.trace.spans) {
    if (std::strcmp(s.name, obs::kSpanMapTask) == 0 ||
        std::strcmp(s.name, obs::kSpanReduceTask) == 0) {
      EXPECT_EQ(s.parent, job_id) << "task spans hang off the job span";
    } else if (std::strcmp(s.name, obs::kSpanShuffleFetch) == 0) {
      ++fetches;
      EXPECT_TRUE(reduce_ids.count(s.parent) == 1)
          << "fetch spans carry cross-thread causality to their reduce task";
    }
  }
  EXPECT_GT(fetches, 0u);

  for (const char* name :
       {obs::kHShuffleFetchRttUs, obs::kHShuffleQueueWaitUs,
        obs::kHReduceInvokeUs, obs::kHStoreGetUs, obs::kHStorePutUs,
        obs::kHRpcCallInprocUs, obs::kHOutputWriteUs}) {
    auto it = result.histograms.find(name);
    ASSERT_NE(it, result.histograms.end()) << name;
    EXPECT_GT(it->second.count(), 0u) << name;
  }

  // The full artifact path (serialize -> self-validate -> write).
  mr::JobMetrics metrics = result.ToMetrics();
  std::string dir = ::testing::TempDir();
  Status st = mr::WriteTraceArtifacts(metrics, dir + "/obs_trace.json",
                                      dir + "/obs_metrics.prom");
  EXPECT_TRUE(st.ok()) << st;
}

// Tentpole assertion at the engine level: every rpc.handler span in a
// traced run stitches under a present parent — the propagated trace
// context, not an orphan and not a local guess.
TEST(EngineTracing, HandlerSpansStitchUnderPropagatedParents) {
  auto cluster = MakeTestCluster(/*slaves=*/3, /*block_bytes=*/8 << 10);
  mr::JobResult result = RunWordCount(cluster.get(), /*traced=*/true, "/out");
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(result.spans_dropped, 0u);

  std::set<obs::SpanId> ids;
  for (const obs::Span& s : result.trace.spans) ids.insert(s.id);
  size_t handlers = 0;
  for (const obs::Span& s : result.trace.spans) {
    if (std::strcmp(s.name, obs::kSpanRpcHandler) != 0) continue;
    ++handlers;
    ASSERT_NE(s.parent, 0u) << "handler span without propagated context";
    EXPECT_EQ(ids.count(s.parent), 1u) << "orphan handler span";
  }
  EXPECT_GT(handlers, 0u);

  // The stitched tree passes the strict (orphan-rejecting) validator.
  mr::JobMetrics metrics = result.ToMetrics();
  const std::string json =
      obs::PerfettoTraceJson(mr::BuildTraceLog(metrics));
  Status st = obs::ValidatePerfettoJson(json, /*min_spans=*/10,
                                        /*require_parents=*/true);
  EXPECT_TRUE(st.ok()) << st;
}

// Crash flight recorder, end to end: a node-crash fault mid-job marks
// the global recorder, and the engine dumps a validatable post-mortem
// artifact into obs.flight_dir at the job boundary.
TEST(EngineTracing, NodeCrashLeavesValidatedFlightArtifact) {
  char tmpl[] = "/tmp/bmr_flight_engine_XXXXXX";
  ASSERT_NE(mkdtemp(tmpl), nullptr);

  auto cluster = MakeTestCluster(/*slaves=*/4, /*block_bytes=*/8 << 10);
  workload::TextGenOptions gen;
  gen.total_bytes = 48 << 10;
  gen.vocabulary = 200;
  gen.seed = 77;
  auto files = workload::GenerateZipfText(cluster.get(), "/flight-in", gen);
  ASSERT_TRUE(files.ok()) << files.status();

  faults::FaultEvent crash;
  crash.kind = faults::FaultKind::kNodeCrash;
  crash.node = 2;
  crash.after_calls = 30;
  faults::FaultPlan plan;
  plan.events = {crash};
  faults::FaultInjector injector(plan);
  cluster->InstallFaultInjector(&injector);

  apps::AppOptions options;
  options.input_files = *files;
  options.output_path = "/flight-out";
  options.num_reducers = 2;
  options.barrierless = true;
  options.extra.Set("obs.flight_dir", tmpl);
  mr::JobRunner runner(cluster.get());
  mr::JobResult result =
      runner.Run(apps::FindApp("wordcount")->make_job(options));
  cluster->InstallFaultInjector(nullptr);
  ASSERT_TRUE(result.ok()) << result.status;  // recovery still succeeds
  ASSERT_EQ(injector.injected(faults::FaultKind::kNodeCrash), 1u);
  EXPECT_EQ(result.flight_dumps, 1u);

  // Exactly the artifact the chaos harness validates: Perfetto JSON
  // carrying the trigger event that names the crash.
  DIR* d = opendir(tmpl);
  ASSERT_NE(d, nullptr);
  size_t artifacts = 0;
  while (dirent* entry = readdir(d)) {
    std::string name = entry->d_name;
    if (name.find("flight_") != 0) continue;
    ++artifacts;
    std::ifstream in(std::string(tmpl) + "/" + name);
    std::string json((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_TRUE(obs::ValidatePerfettoJson(json, /*min_spans=*/1).ok());
    EXPECT_NE(json.find(obs::kFlightTriggerCategory), std::string::npos);
    EXPECT_NE(json.find("fault.node_crash"), std::string::npos);
    std::remove((std::string(tmpl) + "/" + name).c_str());
  }
  closedir(d);
  EXPECT_EQ(artifacts, 1u);
  rmdir(tmpl);
}

TEST(EngineTracing, UntracedRunCarriesNoTraceState) {
  auto cluster = MakeTestCluster(/*slaves=*/3, /*block_bytes=*/8 << 10);
  mr::JobResult result = RunWordCount(cluster.get(), /*traced=*/false, "/out");
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_FALSE(result.trace_enabled);
  EXPECT_TRUE(result.trace.empty());
  EXPECT_TRUE(result.histograms.empty());
}

TEST(EngineTracing, SimulatedRunFlowsThroughTheSameExporters) {
  simmr::SimResult sim =
      simmr::SimulateJob(cluster::PaperCluster(), simmr::WordCountSim(0.1));
  mr::JobMetrics metrics = simmr::ToJobMetrics(sim);

  obs::TraceLog log = mr::BuildTraceLog(metrics);
  EXPECT_GE(log.spans.size(), metrics.events.size());
  Status st = obs::ValidatePerfettoJson(obs::PerfettoTraceJson(log),
                                        /*min_spans=*/10);
  EXPECT_TRUE(st.ok()) << st;
  st = obs::ValidatePrometheusText(
      obs::PrometheusText(mr::BuildMetricsSnapshot(metrics)));
  EXPECT_TRUE(st.ok()) << st;
}

// Satellite: faults that fire during a chaos run must surface in the
// Prometheus exposition as the labeled bmr_faults_injected_total family.
TEST(EngineTracing, InjectedFaultsAppearInPrometheusExposition) {
  faults::FaultEvent timeout;
  timeout.kind = faults::FaultKind::kFetchTimeout;
  timeout.count = 2;
  faults::FaultPlan plan;
  plan.events = {timeout};
  faults::FaultInjector injector(plan);

  auto cluster = MakeTestCluster(/*slaves=*/3, /*block_bytes=*/8 << 10);
  cluster->InstallFaultInjector(&injector);
  mr::JobResult result = RunWordCount(cluster.get(), /*traced=*/true, "/out");
  cluster->InstallFaultInjector(nullptr);
  ASSERT_TRUE(result.ok()) << result.status;  // fetch retries recover
  ASSERT_EQ(injector.injected(faults::FaultKind::kFetchTimeout), 2u);

  mr::JobMetrics metrics = result.ToMetrics();
  EXPECT_EQ(metrics.counters.Get("fault_injected_fetch_timeout"), 2u);
  const std::string text =
      obs::PrometheusText(mr::BuildMetricsSnapshot(metrics));
  Status st = obs::ValidatePrometheusText(text);
  EXPECT_TRUE(st.ok()) << st;
  EXPECT_NE(text.find("bmr_faults_injected_total{kind=\"fetch_timeout\"} 2"),
            std::string::npos)
      << text;
}

// ---- Golden report text ------------------------------------------------

TEST(GoldenText, FormatJobMetricsIsStable) {
  mr::JobMetrics m;
  m.elapsed_seconds = 1.5;
  m.first_map_done = 0.25;
  m.last_map_done = 0.75;
  m.counters.Add("map_input_records", 100);
  m.counters.Add("reduce_output_records", 40);
  m.events.push_back({mr::Phase::kMap, 0, 1, 0.0, 0.5});
  m.memory_samples.push_back({0.5, 0, 1024});
  m.output_files.push_back("/out/part-00000");

  EXPECT_EQ(mr::FormatJobMetrics("gold", m),
            "[gold] elapsed 1.500s  maps done 0.250s..0.750s\n"
            "[gold] 1 task events, 1 memory samples, 1 output files\n"
            "[gold]   map_input_records                100\n"
            "[gold]   reduce_output_records            40\n");

  LogHistogram h;
  h.Add(3);
  m.histograms[obs::kHStoreGetUs] = h;
  EXPECT_EQ(
      mr::FormatJobMetrics("gold", m),
      "[gold] elapsed 1.500s  maps done 0.250s..0.750s\n"
      "[gold] 1 task events, 1 memory samples, 1 output files\n"
      "[gold]   map_input_records                100\n"
      "[gold]   reduce_output_records            40\n"
      "[gold] 1 latency histograms\n"
      "[gold]   bmr_store_get_us                     "
      "count 1        mean 3.0        p50<=3        p95<=3        p99<=3  "
      "      max 3\n");
}

TEST(GoldenText, RenderActivityIsStable) {
  std::vector<mr::TaskEvent> events;
  events.push_back({mr::Phase::kMap, 0, 1, 0.0, 0.2});
  events.push_back({mr::Phase::kReduce, 1, 2, 0.1, 0.3});

  EXPECT_EQ(mr::Timeline::RenderActivity(events, /*step=*/0.1),
            "time\tMap\tReduce\n"
            "0.0\t1\t0\n"
            "0.1\t1\t1\n"
            "0.2\t0\t1\n"
            "0.3\t0\t0\n");
}

}  // namespace
}  // namespace bmr
