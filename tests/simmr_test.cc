// Tests for the paper-scale simulator: determinism, mechanics, and the
// headline result *shapes* (who wins, roughly by how much, where the
// crossovers fall) that EXPERIMENTS.md relies on.
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "simmr/calibrate.h"
#include "simmr/hadoop_sim.h"
#include "simmr/profiles.h"

namespace bmr::simmr {
namespace {

using cluster::PaperCluster;

double Improvement(SimJob job) {
  job.barrierless = false;
  double with = SimulateJob(PaperCluster(), job).completion_seconds;
  job.barrierless = true;
  double without = SimulateJob(PaperCluster(), job).completion_seconds;
  return (with - without) / with * 100.0;
}

TEST(SimMechanicsTest, DeterministicInSeed) {
  SimJob job = WordCountSim(4.0);
  SimResult a = SimulateJob(PaperCluster(), job);
  SimResult b = SimulateJob(PaperCluster(), job);
  EXPECT_DOUBLE_EQ(a.completion_seconds, b.completion_seconds);
  // Same seed ⇒ the identical event timeline, element for element —
  // catches any accidental wall-clock or unseeded-RNG dependence.
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].phase, b.events[i].phase) << "event " << i;
    EXPECT_EQ(a.events[i].task_id, b.events[i].task_id) << "event " << i;
    EXPECT_EQ(a.events[i].node, b.events[i].node) << "event " << i;
    EXPECT_DOUBLE_EQ(a.events[i].start, b.events[i].start) << "event " << i;
    EXPECT_DOUBLE_EQ(a.events[i].end, b.events[i].end) << "event " << i;
  }

  job.seed = 99;
  SimResult c = SimulateJob(PaperCluster(), job);
  EXPECT_NE(a.completion_seconds, c.completion_seconds);
}

TEST(SimMechanicsTest, MapWavesMatchSlotCapacity) {
  // 8 GB = 128 map tasks over 60 slots: at most 60 concurrently.
  SimJob job = WordCountSim(8.0);
  SimResult result = SimulateJob(PaperCluster(), job);
  int max_active = 0;
  for (const auto& e : result.events) {
    if (e.phase != mr::Phase::kMap) continue;
    int active = mr::Timeline::ActiveAt(result.events, mr::Phase::kMap,
                                        (e.start + e.end) / 2);
    max_active = std::max(max_active, active);
  }
  EXPECT_LE(max_active, PaperCluster().total_map_slots());
  EXPECT_GT(max_active, PaperCluster().total_map_slots() / 2);
}

TEST(SimMechanicsTest, BarrierDelaysReduceUntilLastMap) {
  SimJob job = WordCountSim(4.0);
  job.barrierless = false;
  SimResult result = SimulateJob(PaperCluster(), job);
  for (const auto& e : result.events) {
    if (e.phase == mr::Phase::kReduce) {
      EXPECT_GE(e.start, result.last_map_done - 1e-9);
    }
  }
}

TEST(SimMechanicsTest, BarrierlessFinishesShortlyAfterLastMap) {
  SimJob job = WordCountSim(4.0);
  job.barrierless = true;
  SimResult result = SimulateJob(PaperCluster(), job);
  // The Fig. 4 observation: completion within a small tail after the
  // final map (10s on the paper's 3 GB run; allow a proportional tail).
  EXPECT_LT(result.completion_seconds,
            result.last_map_done + 0.2 * result.last_map_done);
  EXPECT_GT(result.completion_seconds, result.last_map_done);
}

TEST(SimMechanicsTest, MapperSlackGrowsWithInput) {
  SimJob small = WordCountSim(2.0);
  SimJob large = WordCountSim(16.0);
  small.barrierless = false;
  large.barrierless = false;
  EXPECT_GT(SimulateJob(PaperCluster(), large).mapper_slack,
            SimulateJob(PaperCluster(), small).mapper_slack);
}

TEST(SimMechanicsTest, HeterogeneityStretchesCompletion) {
  cluster::ClusterSpec uniform = PaperCluster();
  cluster::ClusterSpec spread = PaperCluster();
  cluster::ApplyHeterogeneity(&spread, 0.5, 3);
  SimJob job = WordCountSim(8.0);
  EXPECT_GT(SimulateJob(spread, job).completion_seconds,
            SimulateJob(uniform, job).completion_seconds);
}

// ---- Result shapes (the reproduction contract) --------------------------

TEST(PaperShapeTest, WordCountImprovesTenToTwentyFivePercent) {
  for (double gb : {4.0, 8.0, 16.0}) {
    double improvement = Improvement(WordCountSim(gb));
    EXPECT_GT(improvement, 8.0) << gb << " GB";
    EXPECT_LT(improvement, 30.0) << gb << " GB";
  }
}

TEST(PaperShapeTest, SortSlightlyWorseWithoutBarrier) {
  // §6.1.1: slowdowns up to 9%, shrinking at 16 GB.
  for (double gb : {4.0, 8.0, 16.0}) {
    double improvement = Improvement(SortSim(gb));
    EXPECT_LT(improvement, 2.0) << gb << " GB";
    EXPECT_GT(improvement, -15.0) << gb << " GB";
  }
}

TEST(PaperShapeTest, KnnAndLastFmImproveTeens) {
  EXPECT_GT(Improvement(KnnSim(8.0)), 10.0);
  EXPECT_LT(Improvement(KnnSim(8.0)), 30.0);
  EXPECT_GT(Improvement(LastFmSim(8.0)), 12.0);
  EXPECT_LT(Improvement(LastFmSim(8.0)), 35.0);
}

TEST(PaperShapeTest, GeneticImprovesRoughlyFifteenPercent) {
  double improvement = Improvement(GeneticSim(100));
  EXPECT_GT(improvement, 8.0);
  EXPECT_LT(improvement, 25.0);
}

TEST(PaperShapeTest, BlackScholesImprovesMostAndGrowsWithMappers) {
  double at_25 = Improvement(BlackScholesSim(25));
  double at_200 = Improvement(BlackScholesSim(200));
  EXPECT_GT(at_25, 35.0);
  EXPECT_GT(at_200, at_25);  // benefit grows with input
  EXPECT_GT(at_200, 60.0);
  EXPECT_LT(at_200, 90.0);
}

TEST(PaperShapeTest, BlackScholesBeatsEveryOtherClass) {
  double bs = Improvement(BlackScholesSim(100));
  EXPECT_GT(bs, Improvement(WordCountSim(8.0)));
  EXPECT_GT(bs, Improvement(KnnSim(8.0)));
  EXPECT_GT(bs, Improvement(LastFmSim(8.0)));
  EXPECT_GT(bs, Improvement(GeneticSim(100)));
}

TEST(PaperShapeTest, Figure8ReducerSweepShape) {
  // Improvement shrinks as reducers approach the 60 slots, then rises
  // again at 70 when a second wave appears; completion time jumps.
  auto improvement_at = [](int reducers) {
    return Improvement(GeneticSim(100, reducers));
  };
  double at_30 = improvement_at(30);
  double at_60 = improvement_at(60);
  double at_70 = improvement_at(70);
  EXPECT_GT(at_30, at_60);
  EXPECT_GT(at_70, at_60);

  SimJob job = GeneticSim(100, 60);
  job.barrierless = false;
  double t60 = SimulateJob(PaperCluster(), job).completion_seconds;
  job = GeneticSim(100, 70);
  job.barrierless = false;
  double t70 = SimulateJob(PaperCluster(), job).completion_seconds;
  EXPECT_GT(t70, t60);
}

TEST(PaperShapeTest, Figure5InMemoryOomsAndSpillMergeCompletes) {
  SimJob job = WordCountSim(16.0, 10);
  job.barrierless = true;
  job.store.type = core::StoreType::kInMemory;
  job.store.heap_limit_bytes = 1400ull << 20;
  SimResult in_memory = SimulateJob(PaperCluster(), job);
  EXPECT_TRUE(in_memory.failed_oom);
  EXPECT_GT(in_memory.failure_time, 0);

  job.store.type = core::StoreType::kSpillMerge;
  job.store.heap_limit_bytes = 0;
  job.store.spill_threshold_bytes = 240ull << 20;
  SimResult spill = SimulateJob(PaperCluster(), job);
  EXPECT_TRUE(spill.ok());
  // Memory stays bounded by the threshold (modulo one entry).
  for (const auto& sample : spill.memory_samples) {
    EXPECT_LE(sample.bytes, 245.0 * (1 << 20));
  }
}

TEST(PaperShapeTest, Figure9SchemeOrdering) {
  // At 40 reducers on 16 GB: in-memory <= spill-merge < barrier << KV.
  SimJob base = WordCountSim(16.0, 40);

  SimJob barrier = base;
  barrier.barrierless = false;
  double t_barrier = SimulateJob(PaperCluster(), barrier).completion_seconds;

  SimJob in_memory = base;
  in_memory.barrierless = true;
  in_memory.store.heap_limit_bytes = 1400ull << 20;
  SimResult r_mem = SimulateJob(PaperCluster(), in_memory);
  ASSERT_TRUE(r_mem.ok());

  SimJob spill = base;
  spill.barrierless = true;
  spill.store.type = core::StoreType::kSpillMerge;
  double t_spill = SimulateJob(PaperCluster(), spill).completion_seconds;

  SimJob kv = base;
  kv.barrierless = true;
  kv.store.type = core::StoreType::kKvStore;
  double t_kv = SimulateJob(PaperCluster(), kv).completion_seconds;

  EXPECT_LE(r_mem.completion_seconds, t_spill + 1.0);
  EXPECT_LT(t_spill, t_barrier);
  EXPECT_GT(t_kv, 3 * t_barrier);
}

TEST(PaperShapeTest, Figure9InMemoryOomsOnlyAtLowReducerCounts) {
  auto run = [](int reducers) {
    SimJob job = WordCountSim(16.0, reducers);
    job.barrierless = true;
    job.store.heap_limit_bytes = 1400ull << 20;
    return SimulateJob(PaperCluster(), job);
  };
  EXPECT_TRUE(run(10).failed_oom);   // few reducers: partials overflow
  EXPECT_FALSE(run(40).failed_oom);  // spread thin enough to fit
}

TEST(SimMechanicsTest, PullDispatchAbsorbsHeterogeneity) {
  // A pull-based scheduler gives slow nodes fewer tasks; makespan must
  // grow far less than the slowest node's slowdown factor.
  cluster::ClusterSpec uniform = PaperCluster();
  cluster::ClusterSpec skewed = PaperCluster();
  skewed.nodes[3].speed = 0.5;
  SimJob job = WordCountSim(8.0);
  job.barrierless = false;
  double t_uniform = SimulateJob(uniform, job).completion_seconds;
  double t_skewed = SimulateJob(skewed, job).completion_seconds;
  EXPECT_GT(t_skewed, t_uniform);
  EXPECT_LT(t_skewed, t_uniform * 1.6);  // not 2x: other nodes took the load
}

TEST(SimMechanicsTest, SpeculationClipsFaultyNodeTail) {
  cluster::ClusterSpec cluster = PaperCluster();
  cluster.nodes[5].speed = 0.2;
  SimJob job = WordCountSim(8.0);
  job.barrierless = false;
  double without = SimulateJob(cluster, job).completion_seconds;
  job.speculative_execution = true;
  SimResult with = SimulateJob(cluster, job);
  EXPECT_LT(with.completion_seconds, without * 0.8);
  EXPECT_GT(with.backups_launched, 0);
  EXPECT_GT(with.backups_won, 0);
}

TEST(SimMechanicsTest, SpeculationHarmlessOnHealthyCluster) {
  SimJob job = WordCountSim(8.0);
  job.barrierless = false;
  double base = SimulateJob(PaperCluster(), job).completion_seconds;
  job.speculative_execution = true;
  double spec = SimulateJob(PaperCluster(), job).completion_seconds;
  EXPECT_NEAR(spec, base, base * 0.05);
}

TEST(SimMechanicsTest, CombinerShrinksShuffleAndCompletion) {
  SimJob job = WordCountSim(8.0);
  job.barrierless = false;
  SimResult plain = SimulateJob(PaperCluster(), job);
  job.combiner_reduction = 0.8;
  SimResult combined = SimulateJob(PaperCluster(), job);
  EXPECT_LT(combined.shuffle_bytes, plain.shuffle_bytes * 0.3);
  EXPECT_LT(combined.completion_seconds, plain.completion_seconds);
}

TEST(CalibrationTest, SortFoldSlowerThanMergePerRecord) {
  // The Fig. 6(a) mechanism, measured on the real engine.
  MicroCosts sort = MeasureSortCosts(50000, 8, 3);
  EXPECT_GT(sort.incremental_secs_per_record,
            sort.merge_secs_per_record + sort.grouped_reduce_secs_per_record);
  EXPECT_GT(sort.merge_secs_per_record, 0);
}

TEST(CalibrationTest, AggregationRatioBelowSortRatio) {
  MicroCosts agg = MeasureAggregationCosts(50000, 2000, 8, 3);
  MicroCosts sort = MeasureSortCosts(50000, 8, 3);
  double agg_ratio =
      agg.incremental_secs_per_record /
      (agg.merge_secs_per_record + agg.grouped_reduce_secs_per_record);
  double sort_ratio =
      sort.incremental_secs_per_record /
      (sort.merge_secs_per_record + sort.grouped_reduce_secs_per_record);
  EXPECT_LT(agg_ratio, sort_ratio);
}

}  // namespace
}  // namespace bmr::simmr
