// Tests for the discrete-event simulation core.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/flownet.h"
#include "sim/resources.h"

namespace bmr::sim {
namespace {

TEST(SimulationTest, EventsFireInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.ScheduleAt(3.0, [&] { order.push_back(3); });
  sim.ScheduleAt(1.0, [&] { order.push_back(1); });
  sim.ScheduleAt(2.0, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.Now(), 3.0);
}

TEST(SimulationTest, TiesBreakByInsertionOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.ScheduleAt(1.0, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulationTest, EventsCanScheduleEvents) {
  Simulation sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    if (++fired < 10) sim.ScheduleAfter(1.0, chain);
  };
  sim.ScheduleAt(0.0, chain);
  sim.Run();
  EXPECT_EQ(fired, 10);
  EXPECT_DOUBLE_EQ(sim.Now(), 9.0);
}

TEST(SimulationTest, CancelSkipsEvent) {
  Simulation sim;
  bool fired = false;
  uint64_t id = sim.ScheduleAt(1.0, [&] { fired = true; });
  sim.Cancel(id);
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(SimulationTest, RunUntilStopsAtDeadline) {
  Simulation sim;
  int fired = 0;
  sim.ScheduleAt(1.0, [&] { ++fired; });
  sim.ScheduleAt(5.0, [&] { ++fired; });
  sim.RunUntil(3.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.Now(), 3.0);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SlotResourceTest, QueuesBeyondCapacity) {
  Simulation sim;
  SlotResource slots(&sim, 2);
  std::vector<double> completion_times;
  for (int i = 0; i < 4; ++i) {
    slots.Request(10.0, nullptr,
                  [&] { completion_times.push_back(sim.Now()); });
  }
  sim.Run();
  // 2 at a time: waves at t=10 and t=20.
  ASSERT_EQ(completion_times.size(), 4u);
  EXPECT_DOUBLE_EQ(completion_times[0], 10.0);
  EXPECT_DOUBLE_EQ(completion_times[1], 10.0);
  EXPECT_DOUBLE_EQ(completion_times[2], 20.0);
  EXPECT_DOUBLE_EQ(completion_times[3], 20.0);
}

TEST(SlotResourceTest, OnStartFiresAtAcquisition) {
  Simulation sim;
  SlotResource slots(&sim, 1);
  std::vector<double> starts;
  for (int i = 0; i < 3; ++i) {
    slots.Request(5.0, [&] { starts.push_back(sim.Now()); }, nullptr);
  }
  sim.Run();
  EXPECT_EQ(starts, (std::vector<double>{0.0, 5.0, 10.0}));
}

TEST(ProcessorSharingTest, TwoEqualJobsHalveThroughput) {
  Simulation sim;
  ProcessorSharingResource cpu(&sim, /*capacity=*/1.0);
  std::vector<double> done;
  cpu.Submit(1.0, [&] { done.push_back(sim.Now()); });
  cpu.Submit(1.0, [&] { done.push_back(sim.Now()); });
  sim.Run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 2.0, 1e-6);  // both share; each takes 2s
  EXPECT_NEAR(done[1], 2.0, 1e-6);
}

TEST(ProcessorSharingTest, LateArrivalSlowsEarlierJob) {
  Simulation sim;
  ProcessorSharingResource cpu(&sim, 1.0);
  std::vector<double> done;
  cpu.Submit(2.0, [&] { done.push_back(sim.Now()); });   // alone until t=1
  sim.ScheduleAt(1.0, [&] {
    cpu.Submit(0.5, [&] { done.push_back(sim.Now()); });
  });
  sim.Run();
  // Job A: 1 unit by t=1, then shares; remaining 1 unit at rate 0.5
  // until B finishes.  B: 0.5 units at rate 0.5 => done at t=2.
  // A: at t=2 has 0.5 left, alone => done at 2.5.
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 2.0, 1e-6);
  EXPECT_NEAR(done[1], 2.5, 1e-6);
}

TEST(FlowNetworkTest, SingleFlowRunsAtLinkRate) {
  Simulation sim;
  FlowNetConfig config;
  config.num_nodes = 4;
  config.link_bytes_per_sec = 100.0;
  FlowNetwork net(&sim, config);
  double done_at = -1;
  net.StartFlow(0, 1, 500.0, [&] { done_at = sim.Now(); });
  sim.Run();
  EXPECT_NEAR(done_at, 5.0, 1e-6);
}

TEST(FlowNetworkTest, SharedDownlinkSplitsFairly) {
  Simulation sim;
  FlowNetConfig config;
  config.num_nodes = 4;
  config.link_bytes_per_sec = 100.0;
  FlowNetwork net(&sim, config);
  std::vector<double> done;
  // Two flows into the same destination: each gets 50 B/s.
  net.StartFlow(0, 2, 500.0, [&] { done.push_back(sim.Now()); });
  net.StartFlow(1, 2, 500.0, [&] { done.push_back(sim.Now()); });
  sim.Run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 10.0, 1e-6);
  EXPECT_NEAR(done[1], 10.0, 1e-6);
}

TEST(FlowNetworkTest, EarlyFinisherReleasesBandwidth) {
  Simulation sim;
  FlowNetConfig config;
  config.num_nodes = 4;
  config.link_bytes_per_sec = 100.0;
  FlowNetwork net(&sim, config);
  std::vector<double> done;
  net.StartFlow(0, 2, 100.0, [&] { done.push_back(sim.Now()); });
  net.StartFlow(1, 2, 500.0, [&] { done.push_back(sim.Now()); });
  sim.Run();
  // Short flow: 100B at 50B/s => t=2.  Long flow: 100B by t=2, then
  // 400B at 100B/s => t=6.
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 2.0, 1e-6);
  EXPECT_NEAR(done[1], 6.0, 1e-6);
}

TEST(FlowNetworkTest, OversubscriptionCapsAggregate) {
  Simulation sim;
  FlowNetConfig config;
  config.num_nodes = 4;
  config.link_bytes_per_sec = 100.0;
  config.oversubscription = 4.0;  // backbone = 4*100/4 = 100 B/s total
  FlowNetwork net(&sim, config);
  std::vector<double> done;
  // Four disjoint src->dst pairs would each get 100 B/s un-oversubscribed;
  // the backbone limits each to 25 B/s.
  net.StartFlow(0, 1, 100.0, [&] { done.push_back(sim.Now()); });
  net.StartFlow(1, 2, 100.0, [&] { done.push_back(sim.Now()); });
  net.StartFlow(2, 3, 100.0, [&] { done.push_back(sim.Now()); });
  net.StartFlow(3, 0, 100.0, [&] { done.push_back(sim.Now()); });
  sim.Run();
  ASSERT_EQ(done.size(), 4u);
  for (double t : done) EXPECT_NEAR(t, 4.0, 1e-6);
}

TEST(FlowNetworkTest, LoopbackBypassesFabric) {
  Simulation sim;
  FlowNetConfig config;
  config.num_nodes = 2;
  config.link_bytes_per_sec = 100.0;
  config.loopback_bytes_per_sec = 1000.0;
  FlowNetwork net(&sim, config);
  double local_done = -1, remote_done = -1;
  net.StartFlow(0, 0, 1000.0, [&] { local_done = sim.Now(); });
  net.StartFlow(0, 1, 1000.0, [&] { remote_done = sim.Now(); });
  sim.Run();
  EXPECT_NEAR(local_done, 1.0, 1e-6);    // loopback: 1000B @ 1000B/s
  EXPECT_NEAR(remote_done, 10.0, 1e-6);  // uplink: 1000B @ 100B/s
}

TEST(FlowNetworkTest, ZeroByteFlowCompletes) {
  Simulation sim;
  FlowNetwork net(&sim, FlowNetConfig{});
  bool fired = false;
  net.StartFlow(0, 1, 0.0, [&] { fired = true; });
  sim.Run();
  EXPECT_TRUE(fired);
}

}  // namespace
}  // namespace bmr::sim
