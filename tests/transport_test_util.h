// Transport construction for tests.  Unit tests that exercise RPC
// (shuffle service, DFS, the rpc suite itself) build their transport
// through these helpers so the same binaries re-run over TCP with
// BMR_NET_TRANSPORT=tcp — the check.sh `tcp` leg does exactly that.
#pragma once

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>

#include "net/transport.h"

namespace bmr::testutil {

/// The transport kind under test: BMR_NET_TRANSPORT, or "inproc".
inline std::string TransportKind() {
  const char* env = std::getenv("BMR_NET_TRANSPORT");
  return env != nullptr && *env != '\0' ? env : "inproc";
}

/// Build a transport of the kind under test; fails the test (and
/// returns null) if construction fails.
inline std::unique_ptr<net::Transport> MakeTransport(
    int num_nodes, const net::TransportOptions& options = {}) {
  auto transport = net::CreateTransport(TransportKind(), num_nodes, options);
  EXPECT_TRUE(transport.ok()) << transport.status();
  if (!transport.ok()) return nullptr;
  return std::move(*transport);
}

/// Build a transport of an explicit kind (cross-transport tests).
inline std::unique_ptr<net::Transport> MakeTransportOfKind(
    const std::string& kind, int num_nodes,
    const net::TransportOptions& options = {}) {
  auto transport = net::CreateTransport(kind, num_nodes, options);
  EXPECT_TRUE(transport.ok()) << kind << ": " << transport.status();
  if (!transport.ok()) return nullptr;
  return std::move(*transport);
}

}  // namespace bmr::testutil
