// Tests for the concurrency primitives the shuffle paths are built on.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "concurrency/bounded_queue.h"
#include "concurrency/rate_limiter.h"
#include "concurrency/thread_pool.h"

namespace bmr {
namespace {

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> q(10);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.Push(i));
  for (int i = 0; i < 5; ++i) {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(BoundedQueueTest, CloseDrainsThenSignalsEnd) {
  BoundedQueue<int> q(10);
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  q.Close();
  EXPECT_FALSE(q.Push(3));  // closed
  EXPECT_EQ(*q.Pop(), 1);
  EXPECT_EQ(*q.Pop(), 2);
  EXPECT_FALSE(q.Pop().has_value());  // drained + closed
}

TEST(BoundedQueueTest, TryOpsNeverBlock) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));  // full
  EXPECT_EQ(*q.TryPop(), 1);
  EXPECT_TRUE(q.TryPush(3));
  EXPECT_EQ(*q.TryPop(), 2);
  EXPECT_EQ(*q.TryPop(), 3);
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(BoundedQueueTest, ManyProducersOneConsumerStress) {
  // The exact shape of the barrier-less shuffle: N fetchers, 1 reducer.
  BoundedQueue<int> q(64);
  const int kProducers = 8;
  const int kPerProducer = 2000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i));
      }
    });
  }
  std::atomic<int> remaining{kProducers};
  std::thread closer([&] {
    for (auto& t : producers) t.join();
    q.Close();
  });
  long long sum = 0;
  int count = 0;
  while (auto v = q.Pop()) {
    sum += *v;
    ++count;
  }
  closer.join();
  EXPECT_EQ(count, kProducers * kPerProducer);
  long long n = kProducers * kPerProducer;
  EXPECT_EQ(sum, n * (n - 1) / 2);
  (void)remaining;
}

TEST(BoundedQueueTest, BlockedProducerWakesOnClose) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::atomic<bool> returned{false};
  std::thread producer([&] {
    bool ok = q.Push(2);  // blocks: queue full
    EXPECT_FALSE(ok);     // woken by Close
    returned = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned.load());
  q.Close();
  producer.join();
  EXPECT_TRUE(returned.load());
}

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&done] { done.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPoolTest, TasksSubmittedFromTasksRun) {
  // RelaunchMap submits into the map pool from a reduce thread; also
  // verify re-entrant submission from inside the pool itself.
  ThreadPool pool(2);
  std::atomic<int> done{0};
  pool.Submit([&] {
    done.fetch_add(1);
    pool.Submit([&] { done.fetch_add(1); });
  });
  pool.Wait();
  EXPECT_EQ(done.load(), 2);
}

TEST(ThreadPoolTest, WaitReturnsImmediatelyWhenIdle) {
  ThreadPool pool(2);
  pool.Wait();  // no tasks: must not hang
  SUCCEED();
}

TEST(CountdownLatchTest, ReleasesAtZero) {
  CountdownLatch latch(3);
  std::atomic<bool> released{false};
  std::thread waiter([&] {
    latch.Wait();
    released = true;
  });
  latch.CountDown();
  latch.CountDown();
  EXPECT_FALSE(released.load());
  latch.CountDown();
  waiter.join();
  EXPECT_TRUE(released.load());
  EXPECT_EQ(latch.pending(), 0);
}

TEST(VirtualRateLimiterTest, BurstThenPacing) {
  VirtualRateLimiter limiter(/*rate=*/100.0, /*burst=*/10.0);
  // First 10 tokens are free (burst).
  EXPECT_DOUBLE_EQ(limiter.Acquire(0.0, 10.0), 0.0);
  // The next 100 tokens take 1 second at rate 100/s.
  EXPECT_NEAR(limiter.Acquire(0.0, 100.0), 1.0, 1e-9);
  // A request arriving later sees refilled tokens.
  EXPECT_NEAR(limiter.Acquire(2.0, 5.0), 2.0, 1e-9);
}

TEST(VirtualRateLimiterTest, NeverTravelsBackInTime) {
  VirtualRateLimiter limiter(10.0, 1.0);
  double t = 0;
  for (int i = 0; i < 100; ++i) {
    double ready = limiter.Acquire(t, 1.0);
    EXPECT_GE(ready, t);
    t = ready;
  }
  // 100 tokens at 10/s from a 1-token burst: ~9.9s.
  EXPECT_NEAR(t, 9.9, 0.2);
}

}  // namespace
}  // namespace bmr
