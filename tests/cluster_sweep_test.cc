// Property sweep: the engine produces correct results regardless of
// cluster shape — slave count, slot counts, block size, reducer count,
// execution mode.  WordCount's answer must always equal the direct
// computation.
#include <gtest/gtest.h>

#include <map>

#include "apps/wordcount.h"
#include "test_util.h"
#include "workload/generators.h"

namespace bmr {
namespace {

using mr::JobResult;
using mr::JobRunner;
using testutil::MakeTestCluster;

struct Shape {
  int slaves;
  int map_slots;
  int reduce_slots;
  uint64_t block_bytes;
  int reducers;
  bool barrierless;
};

std::string ShapeName(const ::testing::TestParamInfo<Shape>& info) {
  const Shape& s = info.param;
  return "s" + std::to_string(s.slaves) + "m" + std::to_string(s.map_slots) +
         "r" + std::to_string(s.reduce_slots) + "b" +
         std::to_string(s.block_bytes >> 10) + "k_red" +
         std::to_string(s.reducers) + (s.barrierless ? "_bl" : "_b");
}

class ClusterSweepTest : public ::testing::TestWithParam<Shape> {};

TEST_P(ClusterSweepTest, WordCountAlwaysCorrect) {
  const Shape& shape = GetParam();
  auto cluster = MakeTestCluster(shape.slaves, shape.block_bytes,
                                 shape.map_slots, shape.reduce_slots);
  workload::TextGenOptions gen;
  gen.total_bytes = 96 << 10;
  gen.vocabulary = 200;
  gen.num_files = 2;
  gen.seed = 101;
  auto files = workload::GenerateZipfText(cluster.get(), "/in", gen);
  ASSERT_TRUE(files.ok());

  // Direct ground truth (identical generation is deterministic).
  std::map<std::string, int64_t> expected;
  for (const auto& file : *files) {
    auto text = cluster->client(0)->ReadAll(file);
    ASSERT_TRUE(text.ok());
    size_t pos = 0;
    std::string_view view = *text;
    while (pos < view.size()) {
      size_t end = view.find_first_of(" \n", pos);
      if (end == std::string_view::npos) end = view.size();
      if (end > pos) expected[std::string(view.substr(pos, end - pos))]++;
      pos = end + 1;
    }
  }

  apps::AppOptions options;
  options.input_files = *files;
  options.output_path = "/out";
  options.num_reducers = shape.reducers;
  options.barrierless = shape.barrierless;
  JobRunner runner(cluster.get());
  JobResult result = runner.Run(apps::MakeWordCountJob(options));
  ASSERT_TRUE(result.ok()) << result.status;

  auto output = JobRunner::ReadAllOutput(cluster->client(0), result);
  ASSERT_TRUE(output.ok());
  std::map<std::string, int64_t> actual;
  for (const auto& r : *output) {
    actual[r.key] = apps::DecodeCount(Slice(r.value));
  }
  EXPECT_EQ(actual, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ClusterSweepTest,
    ::testing::Values(
        // One slave, one slot each: fully serialized execution.
        Shape{1, 1, 1, 16 << 10, 1, false},
        Shape{1, 1, 1, 16 << 10, 1, true},
        // Tiny blocks: many map tasks, several waves.
        Shape{2, 1, 1, 8 << 10, 2, true},
        Shape{2, 2, 2, 8 << 10, 3, false},
        // Wide cluster, more reducers than keys' partitions need.
        Shape{6, 2, 2, 32 << 10, 8, true},
        Shape{6, 4, 4, 32 << 10, 8, false},
        // Reducer waves: more reducers than total reduce slots.
        Shape{2, 2, 1, 16 << 10, 5, true},
        Shape{2, 2, 1, 16 << 10, 5, false},
        // Single big block: one map task feeding many reducers.
        Shape{3, 2, 2, 1 << 20, 4, true}),
    ShapeName);

}  // namespace
}  // namespace bmr
