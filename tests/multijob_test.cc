// Shared-cluster mode: two JobRunners drive jobs concurrently on ONE
// ClusterContext.  Job-scoped shuffle registration (shuffle.fetch.<id>)
// must keep the jobs' intermediate data apart, so each concurrent run
// reproduces its solo-run output exactly, with no cross-job leakage.
#include <gtest/gtest.h>

#include <thread>

#include "apps/sort.h"
#include "apps/wordcount.h"
#include "test_util.h"
#include "workload/generators.h"

namespace bmr {
namespace {

using mr::ClusterContext;
using mr::JobResult;
using mr::JobRunner;
using testutil::MakeTestCluster;

TEST(MultiJobTest, JobIdsAreUniquePerCluster) {
  auto cluster = MakeTestCluster(2);
  EXPECT_EQ(cluster->AllocateJobId(), 0);
  EXPECT_EQ(cluster->AllocateJobId(), 1);
  EXPECT_EQ(cluster->AllocateJobId(), 2);
}

TEST(MultiJobTest, SequentialJobsDontLeakShuffleState) {
  // Regression guard for the job-scoped RPC registration: running the
  // same runner twice must tear down job N's shuffle service before job
  // N+1 registers its own.
  auto cluster = MakeTestCluster(3);
  workload::TextGenOptions gen;
  gen.total_bytes = 96 << 10;
  gen.vocabulary = 200;
  gen.seed = 5;
  auto files = workload::GenerateZipfText(cluster.get(), "/in", gen);
  ASSERT_TRUE(files.ok());

  JobRunner runner(cluster.get());
  apps::AppOptions options;
  options.input_files = *files;
  options.num_reducers = 2;
  options.output_path = "/out-first";
  JobResult first = runner.Run(apps::MakeWordCountJob(options));
  ASSERT_TRUE(first.ok()) << first.status;
  options.output_path = "/out-second";
  JobResult second = runner.Run(apps::MakeWordCountJob(options));
  ASSERT_TRUE(second.ok()) << second.status;

  auto out_a = JobRunner::ReadAllOutput(cluster->client(0), first);
  auto out_b = JobRunner::ReadAllOutput(cluster->client(0), second);
  ASSERT_TRUE(out_a.ok());
  ASSERT_TRUE(out_b.ok());
  EXPECT_EQ(testutil::AsMap(*out_a), testutil::AsMap(*out_b));
}

TEST(MultiJobTest, TwoConcurrentJobsOnOneClusterProduceCorrectOutputs) {
  auto cluster = MakeTestCluster(4);

  // Disjoint inputs with different vocabularies/seeds: if the jobs'
  // shuffles interleaved, word counts (and the sort's record count)
  // could not both match their solo references.
  workload::TextGenOptions wc_gen;
  wc_gen.total_bytes = 128 << 10;
  wc_gen.vocabulary = 250;
  wc_gen.seed = 21;
  auto wc_files = workload::GenerateZipfText(cluster.get(), "/wc/in", wc_gen);
  ASSERT_TRUE(wc_files.ok());

  workload::IntGenOptions sort_gen;
  sort_gen.count = 8000;
  sort_gen.seed = 22;
  auto sort_files =
      workload::GenerateRandomInts(cluster.get(), "/sort/in", sort_gen);
  ASSERT_TRUE(sort_files.ok());

  apps::AppOptions wc_options;
  wc_options.input_files = *wc_files;
  wc_options.num_reducers = 3;
  wc_options.barrierless = true;  // exercise the FIFO path under sharing

  apps::AppOptions sort_options;
  sort_options.input_files = *sort_files;
  sort_options.num_reducers = 2;

  // Solo reference runs.
  JobResult wc_solo, sort_solo;
  {
    JobRunner runner(cluster.get());
    wc_options.output_path = "/wc/out-ref";
    wc_solo = runner.Run(apps::MakeWordCountJob(wc_options));
    ASSERT_TRUE(wc_solo.ok()) << wc_solo.status;
    sort_options.output_path = "/sort/out-ref";
    sort_solo = runner.Run(apps::MakeSortJob(sort_options));
    ASSERT_TRUE(sort_solo.ok()) << sort_solo.status;
  }

  // Concurrent runs: two runners, one shared ClusterContext, two
  // threads in flight at once.
  wc_options.output_path = "/wc/out-conc";
  sort_options.output_path = "/sort/out-conc";
  JobResult wc_conc, sort_conc;
  {
    JobRunner wc_runner(cluster.get());
    JobRunner sort_runner(cluster.get());
    std::thread wc_thread([&] {
      wc_conc = wc_runner.Run(apps::MakeWordCountJob(wc_options));
    });
    std::thread sort_thread([&] {
      sort_conc = sort_runner.Run(apps::MakeSortJob(sort_options));
    });
    wc_thread.join();
    sort_thread.join();
  }
  ASSERT_TRUE(wc_conc.ok()) << wc_conc.status;
  ASSERT_TRUE(sort_conc.ok()) << sort_conc.status;

  // Each concurrent job reproduces its solo output exactly.
  auto wc_expected = JobRunner::ReadAllOutput(cluster->client(0), wc_solo);
  auto wc_actual = JobRunner::ReadAllOutput(cluster->client(0), wc_conc);
  ASSERT_TRUE(wc_expected.ok());
  ASSERT_TRUE(wc_actual.ok());
  EXPECT_EQ(testutil::AsMap(*wc_expected), testutil::AsMap(*wc_actual));

  auto sort_expected = JobRunner::ReadAllOutput(cluster->client(0), sort_solo);
  auto sort_actual = JobRunner::ReadAllOutput(cluster->client(0), sort_conc);
  ASSERT_TRUE(sort_expected.ok());
  ASSERT_TRUE(sort_actual.ok());
  EXPECT_EQ(sort_actual->size(), sort_expected->size());
  EXPECT_EQ(testutil::AsMultiset(*sort_expected),
            testutil::AsMultiset(*sort_actual));

  // The sort output must still be globally ordered — shuffled-in
  // foreign records would break monotonicity as well as the multiset.
  for (size_t i = 1; i < sort_actual->size(); ++i) {
    ASSERT_LE((*sort_actual)[i - 1].key, (*sort_actual)[i].key);
  }

  // No cross-contamination of counters either: record counts match the
  // solo runs.
  EXPECT_EQ(wc_conc.counters.Get(mr::kCtrMapInputRecords),
            wc_solo.counters.Get(mr::kCtrMapInputRecords));
  EXPECT_EQ(sort_conc.counters.Get(mr::kCtrMapInputRecords),
            sort_solo.counters.Get(mr::kCtrMapInputRecords));
}

}  // namespace
}  // namespace bmr
