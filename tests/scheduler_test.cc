// TaskScheduler unit tests — data-local placement, least-loaded
// tie-break, retry exclusion, first-commit-wins — plus an end-to-end
// forced-straggler run proving a speculative backup attempt wins and
// the loser's output is discarded exactly once.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "apps/wordcount.h"
#include "mr/task_scheduler.h"
#include "test_util.h"
#include "workload/generators.h"

namespace bmr {
namespace {

using mr::InputSplit;
using mr::JobResult;
using mr::JobRunner;
using mr::TaskScheduler;
using testutil::MakeTestCluster;

InputSplit Split(std::vector<int> preferred) {
  InputSplit split;
  split.file = "/in";
  split.length = 1;
  split.preferred_nodes = std::move(preferred);
  return split;
}

/// 4 slaves (ids 1..4) behind a master (id 0).
cluster::ClusterSpec FourSlaves() { return cluster::SmallCluster(4, 2, 2); }

TEST(TaskSchedulerTest, PlacementPrefersReplicaHolders) {
  // Both splits live only on node 3: placement must stack them there
  // even though nodes 1, 2, 4 are idle.
  std::vector<InputSplit> splits = {Split({3}), Split({3})};
  TaskScheduler scheduler(FourSlaves(), &splits);

  TaskScheduler::Attempt a = scheduler.Assign(0);
  TaskScheduler::Attempt b = scheduler.Assign(1);
  EXPECT_EQ(a.node, 3);
  EXPECT_EQ(b.node, 3);
  EXPECT_EQ(scheduler.load(3), 2);
  EXPECT_EQ(scheduler.load(1), 0);
}

TEST(TaskSchedulerTest, LeastLoadedTieBreakAmongReplicaHolders) {
  std::vector<InputSplit> splits = {Split({1, 2}), Split({1, 2}),
                                    Split({1, 2})};
  TaskScheduler scheduler(FourSlaves(), &splits);

  // Equal load: the first-listed holder wins; once it is loaded, the
  // other holder is least-loaded and takes the next task.
  EXPECT_EQ(scheduler.Assign(0).node, 1);
  EXPECT_EQ(scheduler.Assign(1).node, 2);
  EXPECT_EQ(scheduler.Assign(2).node, 1);
}

TEST(TaskSchedulerTest, MasterIsNeverChosenAndFallbackIsLeastLoaded) {
  // Replica list names only the master (can happen after node deaths):
  // placement must fall back to the least-loaded slave, never node 0.
  std::vector<InputSplit> splits = {Split({0}), Split({0})};
  TaskScheduler scheduler(FourSlaves(), &splits);

  TaskScheduler::Attempt a = scheduler.Assign(0);
  EXPECT_NE(a.node, 0);
  EXPECT_GE(a.node, 1);
  EXPECT_EQ(scheduler.load(0), 0);
}

TEST(TaskSchedulerTest, PickNodePairsWithReleaseNode) {
  std::vector<InputSplit> splits = {Split({2})};
  TaskScheduler scheduler(FourSlaves(), &splits);

  int node = scheduler.PickNode(splits[0]);
  EXPECT_EQ(node, 2);
  EXPECT_EQ(scheduler.load(2), 1);
  scheduler.ReleaseNode(node);
  EXPECT_EQ(scheduler.load(2), 0);
}

TEST(TaskSchedulerTest, RetryExcludesTheFailedNode) {
  // The task's only replica holder lost its output; the retry must go
  // elsewhere even though the holder is the placement favourite.
  std::vector<InputSplit> splits = {Split({2})};
  TaskScheduler scheduler(FourSlaves(), &splits);

  TaskScheduler::Attempt original = scheduler.Assign(0);
  ASSERT_EQ(original.node, 2);
  ASSERT_TRUE(scheduler.TryCommit(original));
  scheduler.Finish(original, 0.1);

  scheduler.ReopenTask(0);
  EXPECT_FALSE(scheduler.AllCommitted());
  TaskScheduler::Attempt retry = scheduler.Assign(0, /*exclude_node=*/2);
  EXPECT_NE(retry.node, 2);
  EXPECT_GE(retry.node, 1);
  EXPECT_EQ(retry.id, 1);
  EXPECT_EQ(scheduler.attempts_started(0), 2);
  EXPECT_TRUE(scheduler.TryCommit(retry));
  EXPECT_TRUE(scheduler.AllCommitted());
}

TEST(TaskSchedulerTest, ReopenedTaskAdmitsExactlyOneNewCommit) {
  // Lost-map recovery path: a committed task's output disappears with
  // its node, the task is reopened, and two replacement attempts race
  // (relaunch plus a speculative backup).  Exactly one may commit, or
  // the consumers would observe that map's output twice.
  std::vector<InputSplit> splits = {Split({1})};
  TaskScheduler scheduler(FourSlaves(), &splits);

  TaskScheduler::Attempt original = scheduler.Assign(0);
  ASSERT_TRUE(scheduler.TryCommit(original));
  scheduler.Finish(original, 0.1);
  ASSERT_TRUE(scheduler.AllCommitted());

  scheduler.ReopenTask(0);
  EXPECT_FALSE(scheduler.AllCommitted());
  TaskScheduler::Attempt a = scheduler.Assign(0, /*exclude_node=*/1);
  TaskScheduler::Attempt b = scheduler.Assign(0, /*exclude_node=*/1);
  EXPECT_NE(a.node, 1);
  EXPECT_NE(b.node, 1);
  EXPECT_TRUE(scheduler.TryCommit(b));
  EXPECT_FALSE(scheduler.TryCommit(a));
  EXPECT_TRUE(scheduler.AllCommitted());
  EXPECT_EQ(scheduler.attempts_started(0), 3);
}

TEST(TaskSchedulerTest, NodeLoadReturnsToZeroAfterMixedFlows) {
  // Regression: Finish used to decrement node_load_ with only a `> 0`
  // clamp, so any path that reported an attempt's end twice silently
  // stole another attempt's load slot and skewed placement.  Release
  // is now idempotent per attempt: after a mixed commit / lost-output
  // relaunch / speculative-race flow — including redundant Finish
  // calls — every node's load must be exactly zero.
  TaskScheduler::Options options;
  options.speculative = true;
  options.max_attempts = 2;
  std::vector<InputSplit> splits = {Split({1}), Split({2}), Split({3})};
  TaskScheduler scheduler(FourSlaves(), &splits, options);

  // Task 0: plain commit, then a redundant Finish (retry-path replay).
  TaskScheduler::Attempt a0 = scheduler.Assign(0);
  scheduler.Begin(a0, 0.0);
  ASSERT_TRUE(scheduler.TryCommit(a0));
  scheduler.Finish(a0, 0.1);
  int load_after_first = scheduler.load(a0.node);
  scheduler.Finish(a0, 0.2);  // must be a no-op
  EXPECT_EQ(scheduler.load(a0.node), load_after_first);

  // Task 1: commit, output lost, reopen, relaunch elsewhere, commit.
  TaskScheduler::Attempt a1 = scheduler.Assign(1);
  scheduler.Begin(a1, 0.0);
  ASSERT_TRUE(scheduler.TryCommit(a1));
  scheduler.Finish(a1, 0.1);
  scheduler.ReopenTask(1);
  TaskScheduler::Attempt r1 = scheduler.Assign(1, /*exclude_node=*/a1.node);
  scheduler.Begin(r1, 0.2);
  ASSERT_TRUE(scheduler.TryCommit(r1));
  scheduler.Finish(r1, 0.3);
  scheduler.Finish(a1, 0.3);  // stale replay of the lost original

  // Task 2: speculative race — backup wins, loser finishes after.
  TaskScheduler::Attempt a2 = scheduler.Assign(2);
  scheduler.Begin(a2, 0.0);
  std::vector<TaskScheduler::Attempt> backups = scheduler.PollSpeculation(1.0);
  ASSERT_EQ(backups.size(), 1u);
  scheduler.Begin(backups[0], 1.0);
  ASSERT_TRUE(scheduler.TryCommit(backups[0]));
  scheduler.Finish(backups[0], 1.1);
  scheduler.Finish(a2, 1.2);  // loser discards and reports its end

  EXPECT_TRUE(scheduler.AllCommitted());
  for (int n = 0; n <= 4; ++n) {
    EXPECT_EQ(scheduler.load(n), 0) << "node " << n;
  }
}

TEST(TaskSchedulerTest, PollSpeculationSkipsTaskWithTwoRunningAttempts) {
  // Regression: with original + backup both running and both over the
  // straggler threshold, the scan used to take the *last* attempt's
  // slowness and spawn a backup-of-backup until max_attempts.  A task
  // with more than one running attempt is never a speculation
  // candidate, whatever max_attempts allows.
  TaskScheduler::Options options;
  options.speculative = true;
  options.max_attempts = 3;  // room for the buggy third attempt
  options.slowness = 1.5;
  options.min_runtime = 0.05;
  std::vector<InputSplit> splits = {Split({1}), Split({2})};
  TaskScheduler scheduler(FourSlaves(), &splits, options);

  // Establish a median: task 0 completes in 0.1s => threshold 0.15.
  TaskScheduler::Attempt fast = scheduler.Assign(0);
  scheduler.Begin(fast, 0.0);
  ASSERT_TRUE(scheduler.TryCommit(fast));
  scheduler.Finish(fast, 0.1);

  // Task 1 straggles and is legitimately backed up once.
  TaskScheduler::Attempt slow = scheduler.Assign(1);
  scheduler.Begin(slow, 0.0);
  std::vector<TaskScheduler::Attempt> backups = scheduler.PollSpeculation(0.3);
  ASSERT_EQ(backups.size(), 1u);
  scheduler.Begin(backups[0], 0.3);

  // Both attempts now run and both are far over the threshold: the
  // task must be skipped, not backed up again.
  EXPECT_TRUE(scheduler.PollSpeculation(5.0).empty());
  EXPECT_EQ(scheduler.attempts_started(1), 2);

  // Once one of the two finishes (losing the race), the survivor is a
  // lone running attempt again and may be speculated normally.
  ASSERT_TRUE(scheduler.TryCommit(backups[0]));
  scheduler.Finish(backups[0], 5.0);
  EXPECT_TRUE(scheduler.PollSpeculation(10.0).empty());  // committed
}

TEST(TaskSchedulerTest, AssignRetriesInPlaceWhenAllNodesExcluded) {
  // Single-slave cluster relaunch: the only slave lost the task's
  // output, so excluding it leaves no candidate.  Assign must drop the
  // exclusion and rerun in place (the node is alive, only the output
  // is gone) instead of silently recording node = -1 and failing the
  // job with "no node available".
  std::vector<InputSplit> splits = {Split({1})};
  TaskScheduler scheduler(cluster::SmallCluster(1, 2, 2), &splits);

  TaskScheduler::Attempt original = scheduler.Assign(0);
  ASSERT_EQ(original.node, 1);
  ASSERT_TRUE(scheduler.TryCommit(original));
  scheduler.Finish(original, 0.1);

  scheduler.ReopenTask(0);
  TaskScheduler::Attempt retry = scheduler.Assign(0, /*exclude_node=*/1);
  EXPECT_EQ(retry.node, 1);
  EXPECT_EQ(retry.id, 1);
  EXPECT_TRUE(scheduler.TryCommit(retry));
  scheduler.Finish(retry, 0.2);
  EXPECT_TRUE(scheduler.AllCommitted());
  EXPECT_EQ(scheduler.load(1), 0);
}

TEST(TaskSchedulerTest, FirstAttemptToCommitWins) {
  std::vector<InputSplit> splits = {Split({1})};
  TaskScheduler scheduler(FourSlaves(), &splits);

  TaskScheduler::Attempt a = scheduler.Assign(0);
  TaskScheduler::Attempt b = scheduler.Assign(0);
  EXPECT_TRUE(scheduler.TryCommit(b));   // backup got there first
  EXPECT_FALSE(scheduler.TryCommit(a));  // loser must discard
  EXPECT_TRUE(scheduler.AllCommitted());
}

TEST(TaskSchedulerTest, PollSpeculationBacksUpLoneStraggler) {
  TaskScheduler::Options options;
  options.speculative = true;
  options.slowness = 1.5;
  options.min_runtime = 0.05;
  std::vector<InputSplit> splits = {Split({1}), Split({2})};
  TaskScheduler scheduler(FourSlaves(), &splits, options);

  // Task 0 completes in 0.1s => median 0.1, threshold 0.15.
  TaskScheduler::Attempt fast = scheduler.Assign(0);
  scheduler.Begin(fast, 0.0);
  ASSERT_TRUE(scheduler.TryCommit(fast));
  scheduler.Finish(fast, 0.1);

  // Task 1 started at 0 and is still running.
  TaskScheduler::Attempt slow = scheduler.Assign(1);
  scheduler.Begin(slow, 0.0);

  // Under threshold: no backup yet.
  EXPECT_TRUE(scheduler.PollSpeculation(0.12).empty());

  // Over threshold: exactly one backup, off the straggling node.
  std::vector<TaskScheduler::Attempt> backups = scheduler.PollSpeculation(0.3);
  ASSERT_EQ(backups.size(), 1u);
  EXPECT_EQ(backups[0].task, 1);
  EXPECT_TRUE(backups[0].speculative);
  EXPECT_NE(backups[0].node, slow.node);
  EXPECT_EQ(backups[0].id, 1);

  // max_attempts = 2: the task is never backed up twice.
  EXPECT_TRUE(scheduler.PollSpeculation(0.6).empty());
  EXPECT_EQ(scheduler.attempts_started(1), 2);

  // Once an attempt commits the task stops being a candidate.
  EXPECT_TRUE(scheduler.TryCommit(slow));
  EXPECT_TRUE(scheduler.PollSpeculation(1.0).empty());
}

TEST(TaskSchedulerTest, NoSpeculationBeforeAnyCompletedAttempt) {
  TaskScheduler::Options options;
  options.speculative = true;
  options.min_runtime = 0.0;
  std::vector<InputSplit> splits = {Split({1})};
  TaskScheduler scheduler(FourSlaves(), &splits, options);

  TaskScheduler::Attempt a = scheduler.Assign(0);
  scheduler.Begin(a, 0.0);
  // No completed attempt => no median => no threshold => no backups,
  // however long the attempt has been running.
  EXPECT_TRUE(scheduler.PollSpeculation(100.0).empty());
}

TEST(TaskSchedulerTest, SpeculationDisabledByDefault) {
  std::vector<InputSplit> splits = {Split({1}), Split({2})};
  TaskScheduler scheduler(FourSlaves(), &splits);

  TaskScheduler::Attempt fast = scheduler.Assign(0);
  scheduler.Begin(fast, 0.0);
  ASSERT_TRUE(scheduler.TryCommit(fast));
  scheduler.Finish(fast, 0.01);
  TaskScheduler::Attempt slow = scheduler.Assign(1);
  scheduler.Begin(slow, 0.0);
  EXPECT_TRUE(scheduler.PollSpeculation(100.0).empty());
}

// ---------------------------------------------------------------------
// End-to-end forced straggler: one map attempt sleeps long enough to be
// declared a straggler; the speculative backup runs at full speed, wins
// the commit race, and the sleeping original's output is discarded.
// ---------------------------------------------------------------------

/// Coordination state shared by every mapper attempt of the straggler
/// job.  Exactly one attempt job-wide claims the straggler role; it
/// then stalls until the backup attempt of its *own* split has mapped
/// all records (observed via the split's first key), plus a margin
/// that dwarfs the backup's remaining serialize-and-commit work.  This
/// keeps the intended winner deterministic at any execution speed
/// (plain, ASan, TSan) without calibrated sleeps.
struct StragglerControl {
  std::atomic<int> budget{1};
  std::mutex mu;
  std::string straggler_key;  // first key of the straggling attempt
  std::atomic<bool> backup_mapped{false};
};

class StragglerMapper : public mr::Mapper {
 public:
  StragglerMapper(std::unique_ptr<mr::Mapper> inner, StragglerControl* c)
      : inner_(std::move(inner)), control_(c) {}

  void Map(Slice key, Slice value, mr::MapContext* ctx) override {
    if (first_key_.empty()) {
      first_key_ = std::string(key.data(), key.size());
      if (control_->budget.fetch_sub(1) > 0) {
        claimed_ = true;
        {
          std::lock_guard<std::mutex> lock(control_->mu);
          control_->straggler_key = first_key_;
        }
        // Stall until our backup has mapped everything (bounded so a
        // speculation bug fails the test instead of hanging it).
        for (int i = 0; i < 30000 && !control_->backup_mapped.load(); ++i) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        // The backup only has to serialize one small partition set and
        // commit; this margin dwarfs that even under sanitizers.
        std::this_thread::sleep_for(std::chrono::milliseconds(400));
      }
    }
    inner_->Map(key, value, ctx);
  }

  void Cleanup(mr::MapContext* ctx) override {
    inner_->Cleanup(ctx);
    if (!claimed_) {
      std::lock_guard<std::mutex> lock(control_->mu);
      if (control_->straggler_key == first_key_) {
        control_->backup_mapped.store(true);
      }
    }
  }

 private:
  std::unique_ptr<mr::Mapper> inner_;
  StragglerControl* control_;
  std::string first_key_;
  bool claimed_ = false;
};

TEST(SpeculativeExecutionTest, BackupAttemptWinsAndLoserIsDiscardedOnce) {
  auto cluster = MakeTestCluster(4, /*block_bytes=*/32 << 10);
  workload::TextGenOptions gen;
  gen.total_bytes = 192 << 10;  // 6 map tasks: a healthy median
  gen.num_files = 1;  // unique byte offsets: first key identifies a split
  gen.vocabulary = 300;
  gen.seed = 17;
  auto files = workload::GenerateZipfText(cluster.get(), "/in", gen);
  ASSERT_TRUE(files.ok()) << files.status();

  apps::AppOptions options;
  options.input_files = *files;
  options.num_reducers = 2;
  JobRunner runner(cluster.get());

  // Reference answer with no sleeping and no speculation.
  options.output_path = "/out-ref";
  JobResult reference = runner.Run(apps::MakeWordCountJob(options));
  ASSERT_TRUE(reference.ok()) << reference.status;
  auto expected = JobRunner::ReadAllOutput(cluster->client(0), reference);
  ASSERT_TRUE(expected.ok());

  // Same job, but exactly one map attempt stalls on its first record
  // until its backup has overtaken it — a straggler by construction.
  StragglerControl control;
  options.output_path = "/out-spec";
  mr::JobSpec spec = apps::MakeWordCountJob(options);
  spec.speculative_maps = true;
  spec.speculation_min_runtime = 0.1;
  mr::MapperFactory inner = spec.mapper;
  spec.mapper = [inner, &control]() -> std::unique_ptr<mr::Mapper> {
    return std::make_unique<StragglerMapper>(inner(), &control);
  };

  JobResult result = runner.Run(spec);
  ASSERT_TRUE(result.ok()) << result.status;

  // The straggler was backed up, the backup won, and every launched
  // backup produced exactly one discarded loser (original or backup —
  // whichever lost the commit race).
  uint64_t launched = result.counters.Get(mr::kCtrSpeculativeMapsLaunched);
  uint64_t won = result.counters.Get(mr::kCtrSpeculativeMapsWon);
  uint64_t discarded = result.counters.Get(mr::kCtrMapAttemptsDiscarded);
  EXPECT_GE(launched, 1u);
  EXPECT_GE(won, 1u);
  EXPECT_EQ(discarded, launched);

  // Discarding the loser must not corrupt the answer: output matches
  // the reference run exactly (no duplicated or lost map output).
  auto actual = JobRunner::ReadAllOutput(cluster->client(0), result);
  ASSERT_TRUE(actual.ok());
  EXPECT_EQ(testutil::AsMap(*expected), testutil::AsMap(*actual));
}

}  // namespace
}  // namespace bmr
