// End-to-end tests of the execution engine: with-barrier vs
// barrier-less equivalence, counters, timelines, fault tolerance.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "apps/sort.h"
#include "apps/wordcount.h"
#include "test_util.h"
#include "workload/generators.h"

namespace bmr {
namespace {

using mr::ClusterContext;
using mr::JobResult;
using mr::JobRunner;
using mr::Record;
using testutil::MakeTestCluster;

/// Ground truth: word counts computed directly from the generated files.
std::map<std::string, int64_t> DirectWordCount(
    ClusterContext* cluster, const std::vector<std::string>& files) {
  std::map<std::string, int64_t> counts;
  for (const auto& file : files) {
    auto contents = cluster->client(0)->ReadAll(file);
    EXPECT_TRUE(contents.ok()) << contents.status();
    std::string_view text = *contents;
    size_t pos = 0;
    while (pos < text.size()) {
      size_t end = text.find_first_of(" \n", pos);
      if (end == std::string_view::npos) end = text.size();
      if (end > pos) counts[std::string(text.substr(pos, end - pos))]++;
      pos = end + 1;
    }
  }
  return counts;
}

class EngineWordCountTest : public ::testing::TestWithParam<bool> {};

TEST_P(EngineWordCountTest, MatchesDirectComputation) {
  bool barrierless = GetParam();
  auto cluster = MakeTestCluster(4);
  workload::TextGenOptions gen;
  gen.total_bytes = 300 << 10;  // several blocks => several map tasks
  gen.num_files = 3;
  gen.vocabulary = 500;
  gen.seed = 42;
  auto files = workload::GenerateZipfText(cluster.get(), "/wc/in", gen);
  ASSERT_TRUE(files.ok()) << files.status();

  apps::AppOptions options;
  options.input_files = *files;
  options.output_path = barrierless ? "/wc/out-bl" : "/wc/out-b";
  options.num_reducers = 3;
  options.barrierless = barrierless;
  JobRunner runner(cluster.get());
  JobResult result = runner.Run(apps::MakeWordCountJob(options));
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(result.output_files.size(), 3u);

  auto output = JobRunner::ReadAllOutput(cluster->client(0), result);
  ASSERT_TRUE(output.ok()) << output.status();

  std::map<std::string, int64_t> expected =
      DirectWordCount(cluster.get(), *files);
  std::map<std::string, int64_t> actual;
  for (const Record& r : *output) {
    ASSERT_EQ(actual.count(r.key), 0u) << "duplicate key " << r.key;
    actual[r.key] = apps::DecodeCount(Slice(r.value));
  }
  EXPECT_EQ(actual, expected);

  // Counter sanity: map output records == reduce input records (no
  // combiner), and some bytes were shuffled.
  EXPECT_EQ(result.counters.Get(mr::kCtrMapOutputRecords),
            result.counters.Get(mr::kCtrReduceInputRecords));
  EXPECT_GT(result.counters.Get(mr::kCtrShuffleBytes), 0u);
  EXPECT_GT(result.counters.Get(mr::kCtrMapTasksLaunched), 1u);
}

INSTANTIATE_TEST_SUITE_P(Modes, EngineWordCountTest, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "Barrierless" : "Barrier";
                         });

TEST(EngineTest, BarrierAndBarrierlessProduceIdenticalWordCounts) {
  auto cluster = MakeTestCluster(4);
  workload::TextGenOptions gen;
  gen.total_bytes = 200 << 10;
  gen.vocabulary = 300;
  gen.seed = 7;
  auto files = workload::GenerateZipfText(cluster.get(), "/in", gen);
  ASSERT_TRUE(files.ok());

  JobRunner runner(cluster.get());
  apps::AppOptions base;
  base.input_files = *files;
  base.num_reducers = 4;

  apps::AppOptions with = base;
  with.output_path = "/out-barrier";
  JobResult barrier = runner.Run(apps::MakeWordCountJob(with));
  ASSERT_TRUE(barrier.ok()) << barrier.status;

  apps::AppOptions without = base;
  without.output_path = "/out-barrierless";
  without.barrierless = true;
  JobResult barrierless = runner.Run(apps::MakeWordCountJob(without));
  ASSERT_TRUE(barrierless.ok()) << barrierless.status;

  auto out_a = JobRunner::ReadAllOutput(cluster->client(0), barrier);
  auto out_b = JobRunner::ReadAllOutput(cluster->client(0), barrierless);
  ASSERT_TRUE(out_a.ok());
  ASSERT_TRUE(out_b.ok());
  EXPECT_EQ(testutil::AsMultiset(*out_a), testutil::AsMultiset(*out_b));
}

TEST(EngineTest, CombinerReducesShuffleVolumePreservingResult) {
  auto cluster = MakeTestCluster(3);
  workload::TextGenOptions gen;
  gen.total_bytes = 150 << 10;
  gen.vocabulary = 100;  // heavy duplication => combiner bites
  gen.seed = 3;
  auto files = workload::GenerateZipfText(cluster.get(), "/in", gen);
  ASSERT_TRUE(files.ok());

  JobRunner runner(cluster.get());
  apps::AppOptions plain;
  plain.input_files = *files;
  plain.output_path = "/out-plain";
  plain.num_reducers = 2;
  JobResult without = runner.Run(apps::MakeWordCountJob(plain));
  ASSERT_TRUE(without.ok());

  apps::AppOptions combined = plain;
  combined.output_path = "/out-combined";
  combined.extra.SetBool("wordcount.use_combiner", true);
  JobResult with = runner.Run(apps::MakeWordCountJob(combined));
  ASSERT_TRUE(with.ok());

  EXPECT_LT(with.counters.Get(mr::kCtrShuffleBytes),
            without.counters.Get(mr::kCtrShuffleBytes));
  EXPECT_GT(with.counters.Get(mr::kCtrCombineInputRecords),
            with.counters.Get(mr::kCtrCombineOutputRecords));

  auto out_a = JobRunner::ReadAllOutput(cluster->client(0), without);
  auto out_b = JobRunner::ReadAllOutput(cluster->client(0), with);
  ASSERT_TRUE(out_a.ok());
  ASSERT_TRUE(out_b.ok());
  EXPECT_EQ(testutil::AsMultiset(*out_a), testutil::AsMultiset(*out_b));
}

TEST(EngineTest, SortProducesGloballyOrderedOutput) {
  auto cluster = MakeTestCluster(4);
  workload::IntGenOptions gen;
  gen.count = 20000;
  gen.seed = 11;
  auto files = workload::GenerateRandomInts(cluster.get(), "/sort/in", gen);
  ASSERT_TRUE(files.ok());

  for (bool barrierless : {false, true}) {
    apps::AppOptions options;
    options.input_files = *files;
    options.output_path = barrierless ? "/sort/out-bl" : "/sort/out-b";
    options.num_reducers = 4;
    options.barrierless = barrierless;
    JobRunner runner(cluster.get());
    JobResult result = runner.Run(apps::MakeSortJob(options));
    ASSERT_TRUE(result.ok()) << result.status;

    // Part files concatenated in partition order must be globally
    // sorted (range partitioner) and contain every input value.
    auto output = JobRunner::ReadAllOutput(cluster->client(0), result);
    ASSERT_TRUE(output.ok());
    EXPECT_EQ(output->size(), 20000u);
    for (size_t i = 1; i < output->size(); ++i) {
      EXPECT_LE((*output)[i - 1].key, (*output)[i].key)
          << "output out of order at " << i << " (barrierless="
          << barrierless << ")";
    }
  }
}

TEST(EngineTest, TimelineShowsBarrierGapAndPipelinedOverlap) {
  auto cluster = MakeTestCluster(4, /*block_bytes=*/32 << 10);
  workload::TextGenOptions gen;
  gen.total_bytes = 256 << 10;  // 8 blocks over 8 map slots
  gen.vocabulary = 2000;
  auto files = workload::GenerateZipfText(cluster.get(), "/in", gen);
  ASSERT_TRUE(files.ok());

  JobRunner runner(cluster.get());
  apps::AppOptions options;
  options.input_files = *files;
  options.num_reducers = 2;

  options.output_path = "/out-b";
  JobResult barrier = runner.Run(apps::MakeWordCountJob(options));
  ASSERT_TRUE(barrier.ok());

  options.output_path = "/out-bl";
  options.barrierless = true;
  JobResult barrierless = runner.Run(apps::MakeWordCountJob(options));
  ASSERT_TRUE(barrierless.ok());

  // With barrier: reduce phases must start after the LAST map ends.
  double last_map_end = 0;
  for (const auto& e : barrier.events) {
    if (e.phase == mr::Phase::kMap) last_map_end = std::max(last_map_end, e.end);
  }
  for (const auto& e : barrier.events) {
    if (e.phase == mr::Phase::kReduce) {
      EXPECT_GE(e.start, last_map_end - 1e-6);
    }
  }

  // Barrier-less: the combined shuffle+reduce phase starts before the
  // last map finishes (pipelining).
  double bl_last_map_end = 0;
  for (const auto& e : barrierless.events) {
    if (e.phase == mr::Phase::kMap) {
      bl_last_map_end = std::max(bl_last_map_end, e.end);
    }
  }
  bool any_overlap = false;
  for (const auto& e : barrierless.events) {
    if (e.phase == mr::Phase::kShuffleReduce && e.start < bl_last_map_end) {
      any_overlap = true;
    }
  }
  EXPECT_TRUE(any_overlap);
}

TEST(EngineTest, MapReexecutionSurvivesNodeLoss) {
  auto cluster = MakeTestCluster(4);
  workload::TextGenOptions gen;
  gen.total_bytes = 100 << 10;
  gen.vocabulary = 200;
  auto files = workload::GenerateZipfText(cluster.get(), "/in", gen);
  ASSERT_TRUE(files.ok());

  // Run once to learn the answer.
  JobRunner runner(cluster.get());
  apps::AppOptions options;
  options.input_files = *files;
  options.output_path = "/out-ref";
  options.num_reducers = 2;
  JobResult reference = runner.Run(apps::MakeWordCountJob(options));
  ASSERT_TRUE(reference.ok());
  auto expected = JobRunner::ReadAllOutput(cluster->client(0), reference);
  ASSERT_TRUE(expected.ok());

  // Kill a slave *after* input generation (its shuffle service and DFS
  // blocks vanish), then run again: map tasks on that node must re-run
  // elsewhere and reads must fail over to replicas.
  cluster->KillNode(2);
  options.output_path = "/out-postkill";
  JobResult result = runner.Run(apps::MakeWordCountJob(options));
  ASSERT_TRUE(result.ok()) << result.status;
  auto actual = JobRunner::ReadAllOutput(cluster->client(0), result);
  ASSERT_TRUE(actual.ok());
  EXPECT_EQ(testutil::AsMap(*expected), testutil::AsMap(*actual));
}

TEST(EngineTest, InvalidSpecsAreRejected) {
  auto cluster = MakeTestCluster(2);
  JobRunner runner(cluster.get());

  mr::JobSpec empty;
  EXPECT_EQ(runner.Run(empty).status.code(), StatusCode::kInvalidArgument);

  apps::AppOptions options;
  options.input_files = {"/does/not/exist"};
  mr::JobSpec spec = apps::MakeWordCountJob(options);
  EXPECT_FALSE(runner.Run(spec).ok());

  options.num_reducers = 0;
  spec = apps::MakeWordCountJob(options);
  EXPECT_EQ(runner.Run(spec).status.code(), StatusCode::kInvalidArgument);
}

TEST(EngineTest, ReducerWavesWhenReducersExceedSlots) {
  // 2 slaves x 2 reduce slots = 4 slots; 6 reducers => two waves.
  auto cluster = MakeTestCluster(2, 64 << 10, 2, 2);
  workload::TextGenOptions gen;
  gen.total_bytes = 100 << 10;
  gen.vocabulary = 400;
  auto files = workload::GenerateZipfText(cluster.get(), "/in", gen);
  ASSERT_TRUE(files.ok());

  apps::AppOptions options;
  options.input_files = *files;
  options.output_path = "/out";
  options.num_reducers = 6;
  options.barrierless = true;
  JobRunner runner(cluster.get());
  JobResult result = runner.Run(apps::MakeWordCountJob(options));
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(result.output_files.size(), 6u);
}

}  // namespace
}  // namespace bmr
