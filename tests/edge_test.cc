// Edge cases and failure injection across the stack.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <thread>

#include "apps/blackscholes.h"
#include "apps/genetic.h"
#include "apps/grep.h"
#include "apps/knn.h"
#include "apps/sort.h"
#include "apps/wordcount.h"
#include "common/rng.h"
#include "common/serde.h"
#include "core/scratch_dir.h"
#include "mr/timeline.h"
#include "sim/flownet.h"
#include "test_util.h"
#include "workload/generators.h"

namespace bmr {
namespace {

using mr::JobResult;
using mr::JobRunner;
using mr::Record;
using testutil::MakeTestCluster;

TEST(EngineEdgeTest, BarrierlessOomKillsJobWithResourceExhausted) {
  auto cluster = MakeTestCluster(2);
  workload::TextGenOptions gen;
  gen.total_bytes = 64 << 10;
  gen.vocabulary = 5000;  // many distinct keys
  auto files = workload::GenerateZipfText(cluster.get(), "/in", gen);
  ASSERT_TRUE(files.ok());

  apps::AppOptions options;
  options.input_files = *files;
  options.output_path = "/out";
  options.num_reducers = 2;
  options.barrierless = true;
  options.store.heap_limit_bytes = 2048;  // tiny reducer heap

  JobRunner runner(cluster.get());
  JobResult result = runner.Run(apps::MakeWordCountJob(options));
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.failed_oom()) << result.status;
  // The same job with spill-and-merge survives: the §5.1 fix.
  options.store.type = core::StoreType::kSpillMerge;
  options.store.heap_limit_bytes = 0;
  options.store.spill_threshold_bytes = 2048;
  options.output_path = "/out2";
  JobResult fixed = runner.Run(apps::MakeWordCountJob(options));
  EXPECT_TRUE(fixed.ok()) << fixed.status;
  EXPECT_GT(fixed.counters.Get(mr::kCtrSpills), 0u);
}

TEST(EngineEdgeTest, SingleLineInput) {
  auto cluster = MakeTestCluster(2);
  ASSERT_TRUE(cluster->client(1)->WriteFile("/one", "hello world hello").ok());
  apps::AppOptions options;
  options.input_files = {"/one"};
  options.output_path = "/out";
  options.num_reducers = 1;
  options.barrierless = true;
  JobRunner runner(cluster.get());
  JobResult result = runner.Run(apps::MakeWordCountJob(options));
  ASSERT_TRUE(result.ok()) << result.status;
  auto out = JobRunner::ReadAllOutput(cluster->client(0), result);
  ASSERT_TRUE(out.ok());
  auto as_map = testutil::AsMap(*out);
  ASSERT_EQ(as_map.size(), 2u);
  EXPECT_EQ(apps::DecodeCount(Slice(as_map["hello"])), 2);
  EXPECT_EQ(apps::DecodeCount(Slice(as_map["world"])), 1);
}

TEST(EngineEdgeTest, MoreReducersThanKeys) {
  auto cluster = MakeTestCluster(3);
  ASSERT_TRUE(cluster->client(1)->WriteFile("/tiny", "a b a\n").ok());
  apps::AppOptions options;
  options.input_files = {"/tiny"};
  options.output_path = "/out";
  options.num_reducers = 6;  // most reducers get nothing
  options.barrierless = true;
  JobRunner runner(cluster.get());
  JobResult result = runner.Run(apps::MakeWordCountJob(options));
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(result.output_files.size(), 6u);  // empty parts still written
  auto out = JobRunner::ReadAllOutput(cluster->client(0), result);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u);
}

TEST(SortEdgeTest, NegativeValuesAndDuplicatesStaySorted) {
  auto cluster = MakeTestCluster(2);
  std::string data;
  for (int v : {5, -3, 0, 5, -3, 100, -100, 0, 0}) {
    data += std::to_string(v) + "\n";
  }
  ASSERT_TRUE(cluster->client(1)->WriteFile("/ints", data).ok());
  apps::AppOptions options;
  options.input_files = {"/ints"};
  options.output_path = "/out";
  options.num_reducers = 2;
  options.barrierless = true;
  options.extra.SetInt("sort.min", -100);
  options.extra.SetInt("sort.max", 100);
  JobRunner runner(cluster.get());
  JobResult result = runner.Run(apps::MakeSortJob(options));
  ASSERT_TRUE(result.ok()) << result.status;
  auto out = JobRunner::ReadAllOutput(cluster->client(0), result);
  ASSERT_TRUE(out.ok());
  std::vector<int64_t> values;
  for (const Record& r : *out) {
    int64_t v;
    ASSERT_TRUE(DecodeOrderedI64(Slice(r.key), &v));
    values.push_back(v);
  }
  EXPECT_EQ(values, (std::vector<int64_t>{-100, -3, -3, 0, 0, 0, 5, 5, 100}));
}

TEST(KnnEdgeTest, KLargerThanTrainingSetEmitsEverything) {
  auto cluster = MakeTestCluster(2);
  ASSERT_TRUE(cluster->client(1)->WriteFile("/exp", "10\n20\n").ok());
  apps::AppOptions options;
  options.input_files = {"/exp"};
  options.output_path = "/out";
  options.num_reducers = 1;
  options.barrierless = true;
  options.extra.SetInt("knn.k", 50);  // training set has only 3 values
  options.extra.Set("knn.training", apps::EncodeTrainingSet({1, 2, 3}));
  JobRunner runner(cluster.get());
  JobResult result = runner.Run(apps::MakeKnnJob(options));
  ASSERT_TRUE(result.ok()) << result.status;
  auto out = JobRunner::ReadAllOutput(cluster->client(0), result);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 6u);  // 2 exps x 3 training values
}

TEST(GrepEdgeTest, NoMatchesProducesEmptyOutput) {
  auto cluster = MakeTestCluster(2);
  ASSERT_TRUE(cluster->client(1)->WriteFile("/f", "aaa\nbbb\n").ok());
  apps::AppOptions options;
  options.input_files = {"/f"};
  options.output_path = "/out";
  options.num_reducers = 2;
  options.barrierless = true;
  options.extra.Set("grep.pattern", "zzz");
  JobRunner runner(cluster.get());
  JobResult result = runner.Run(apps::MakeGrepJob(options));
  ASSERT_TRUE(result.ok());
  auto out = JobRunner::ReadAllOutput(cluster->client(0), result);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
}

TEST(GeneticEdgeTest, WindowLargerThanPopulationFlushesOnce) {
  auto cluster = MakeTestCluster(2);
  ASSERT_TRUE(cluster->client(1)->WriteFile("/pop", "7\n11\n13\n").ok());
  apps::AppOptions options;
  options.input_files = {"/pop"};
  options.output_path = "/out";
  options.num_reducers = 1;
  options.barrierless = true;
  options.extra.SetInt("ga.window", 1000);
  JobRunner runner(cluster.get());
  JobResult result = runner.Run(apps::MakeGeneticJob(options));
  ASSERT_TRUE(result.ok()) << result.status;
  auto out = JobRunner::ReadAllOutput(cluster->client(0), result);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 3u);  // one offspring per individual
}

TEST(BlackScholesEdgeTest, ZeroIterationsYieldNoOutput) {
  auto cluster = MakeTestCluster(2);
  ASSERT_TRUE(cluster->client(1)->WriteFile("/units", "1 0\n").ok());
  apps::AppOptions options;
  options.input_files = {"/units"};
  options.output_path = "/out";
  options.barrierless = true;
  JobRunner runner(cluster.get());
  JobResult result = runner.Run(apps::MakeBlackScholesJob(options));
  ASSERT_TRUE(result.ok()) << result.status;
  auto out = JobRunner::ReadAllOutput(cluster->client(0), result);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());  // count==0: nothing to summarize
}

TEST(GeneticEdgeTest, ChainedGenerationsRaiseFitness) {
  auto cluster = MakeTestCluster(3);
  workload::PopulationGenOptions gen;
  gen.population = 6000;
  gen.seed = 8;
  auto files = workload::GeneratePopulation(cluster.get(), "/g0", gen);
  ASSERT_TRUE(files.ok());

  JobRunner runner(cluster.get());
  std::vector<std::string> inputs = *files;
  double first_mean = 0, last_mean = 0;
  for (int g = 1; g <= 4; ++g) {
    apps::AppOptions options;
    options.input_files = inputs;
    options.output_path = "/g" + std::to_string(g);
    options.num_reducers = 2;
    options.barrierless = true;
    options.extra.SetInt("ga.window", 64);
    options.extra.SetInt("ga.seed", g);
    if (g > 1) options.extra.SetBool("ga.kv_input", true);
    JobResult result = runner.Run(apps::MakeGeneticJob(options));
    ASSERT_TRUE(result.ok()) << "generation " << g << ": " << result.status;
    auto out = JobRunner::ReadAllOutput(cluster->client(0), result);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out->size(), 6000u);  // population size invariant
    double mean = 0;
    for (const auto& r : *out) {
      int64_t f = 0;
      DecodeI64(Slice(r.value), &f);
      mean += static_cast<double>(f);
    }
    mean /= out->size();
    if (g == 1) first_mean = mean;
    last_mean = mean;
    inputs = result.output_files;
  }
  EXPECT_GT(last_mean, first_mean + 1.0);  // selection pressure works
}

TEST(EngineEdgeTest, NodeKilledMidJobStillCompletesCorrectly) {
  auto cluster = MakeTestCluster(4);
  workload::TextGenOptions gen;
  gen.total_bytes = 256 << 10;
  gen.vocabulary = 300;
  gen.seed = 66;
  auto files = workload::GenerateZipfText(cluster.get(), "/in", gen);
  ASSERT_TRUE(files.ok());

  JobRunner runner(cluster.get());
  apps::AppOptions options;
  options.input_files = *files;
  options.output_path = "/ref";
  options.num_reducers = 3;
  options.barrierless = true;
  JobResult reference = runner.Run(apps::MakeWordCountJob(options));
  ASSERT_TRUE(reference.ok());
  auto expected = JobRunner::ReadAllOutput(cluster->client(0), reference);
  ASSERT_TRUE(expected.ok());

  // Kill a slave from a concurrent thread while the job runs.  Timing
  // is nondeterministic; correctness must hold regardless of when the
  // failure lands (map running, fetch in flight, or already done).
  options.output_path = "/killed";
  std::thread killer([&cluster] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    cluster->KillNode(3);
  });
  JobResult result = runner.Run(apps::MakeWordCountJob(options));
  killer.join();
  ASSERT_TRUE(result.ok()) << result.status;
  auto actual = JobRunner::ReadAllOutput(cluster->client(0), result);
  ASSERT_TRUE(actual.ok());
  EXPECT_EQ(testutil::AsMap(*actual), testutil::AsMap(*expected));
}

TEST(FlowNetPropertyTest, BytesConserved) {
  sim::Simulation simulation;
  sim::FlowNetConfig config;
  config.num_nodes = 6;
  config.link_bytes_per_sec = 1000;
  config.oversubscription = 2.0;
  sim::FlowNetwork net(&simulation, config);
  Pcg32 rng(17);
  double total = 0;
  int completed = 0;
  const int kFlows = 60;
  for (int i = 0; i < kFlows; ++i) {
    int src = rng.NextBounded(6);
    int dst = rng.NextBounded(6);
    double bytes = 1 + rng.NextBounded(50000);
    total += bytes;
    simulation.ScheduleAt(rng.NextDouble() * 10, [&net, &completed, src, dst,
                                                  bytes] {
      net.StartFlow(src, dst, bytes, [&completed] { ++completed; });
    });
  }
  simulation.Run();
  EXPECT_EQ(completed, kFlows);
  EXPECT_NEAR(net.bytes_delivered(), total, total * 1e-6 + kFlows);
}

TEST(FlowNetPropertyTest, MoreBytesNeverFinishEarlier) {
  auto time_for = [](double bytes) {
    sim::Simulation simulation;
    sim::FlowNetwork net(&simulation, sim::FlowNetConfig{});
    double done = 0;
    net.StartFlow(0, 1, bytes, [&] { done = simulation.Now(); });
    simulation.Run();
    return done;
  };
  double prev = -1;
  for (double bytes : {1e3, 1e5, 1e7, 1e9}) {
    double t = time_for(bytes);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(TimelineTest, RenderActivityCountsPhases) {
  mr::Timeline timeline;
  timeline.Record(mr::Phase::kMap, 0, 1, 0.0, 10.0);
  timeline.Record(mr::Phase::kMap, 1, 2, 5.0, 15.0);
  timeline.Record(mr::Phase::kReduce, 0, 1, 15.0, 20.0);
  auto events = timeline.Snapshot();
  EXPECT_EQ(mr::Timeline::ActiveAt(events, mr::Phase::kMap, 7.0), 2);
  EXPECT_EQ(mr::Timeline::ActiveAt(events, mr::Phase::kMap, 12.0), 1);
  EXPECT_EQ(mr::Timeline::ActiveAt(events, mr::Phase::kReduce, 16.0), 1);
  EXPECT_EQ(mr::Timeline::ActiveAt(events, mr::Phase::kReduce, 7.0), 0);
  std::string rendered = mr::Timeline::RenderActivity(events, 5.0);
  EXPECT_NE(rendered.find("Map"), std::string::npos);
  EXPECT_NE(rendered.find("Reduce"), std::string::npos);
}

TEST(ScratchDirTest, CreatesAndCleansUp) {
  std::string path;
  {
    core::ScratchDir scratch;
    path = scratch.path();
    EXPECT_TRUE(std::filesystem::exists(path));
    std::ofstream(scratch.FilePath("f")) << "data";
  }
  EXPECT_FALSE(std::filesystem::exists(path));
}

}  // namespace
}  // namespace bmr
