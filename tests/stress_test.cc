// Shutdown-under-load stress for the concurrency primitives beneath
// the barrier-less shuffle: fault recovery cancels reduce attempts
// while producer threads are parked on a full FIFO and consumers on an
// empty one, so Close() must reliably unblock every waiter.  Run under
// tsan (scripts/check.sh tsan) to catch lost-wakeup and data races.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "common/codec.h"
#include "concurrency/bounded_queue.h"
#include "concurrency/thread_pool.h"
#include "mr/encoding_pipeline.h"

namespace bmr {
namespace {

constexpr int kRounds = 25;

TEST(ShutdownStressTest, CloseUnblocksProducersParkedOnFullQueue) {
  for (int round = 0; round < kRounds; ++round) {
    BoundedQueue<int> queue(2);
    std::atomic<int> accepted{0};
    std::atomic<int> rejected{0};
    {
      ThreadPool pool(4);
      for (int p = 0; p < 4; ++p) {
        pool.Submit([&queue, &accepted, &rejected] {
          for (int i = 0; i < 1000; ++i) {
            if (queue.Push(i)) {
              accepted.fetch_add(1);
            } else {
              rejected.fetch_add(1);
              return;
            }
          }
        });
      }
      // Nobody pops, so the queue fills and every producer ends up
      // parked inside Push() on the not-full condition.
      while (queue.size() < queue.capacity()) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
      queue.Close();
      pool.Wait();  // deadlocks here if Close() loses a wakeup
    }
    EXPECT_EQ(accepted.load(), 2) << "round " << round;
    EXPECT_EQ(rejected.load(), 4) << "round " << round;
    // Close() drains, not discards: the two accepted items survive.
    EXPECT_TRUE(queue.Pop().has_value());
    EXPECT_TRUE(queue.Pop().has_value());
    EXPECT_FALSE(queue.Pop().has_value());
  }
}

TEST(ShutdownStressTest, CloseUnblocksConsumersParkedOnEmptyQueue) {
  for (int round = 0; round < kRounds; ++round) {
    BoundedQueue<int> queue(8);
    std::atomic<int> finished{0};
    {
      ThreadPool pool(4);
      for (int c = 0; c < 4; ++c) {
        pool.Submit([&queue, &finished] {
          while (queue.Pop().has_value()) {
          }
          finished.fetch_add(1);
        });
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      queue.Close();
      pool.Wait();
    }
    EXPECT_EQ(finished.load(), 4) << "round " << round;
  }
}

// Producers, consumers, and an asynchronous Close() all racing — the
// shape of a reduce-attempt cancellation mid-shuffle.  Invariant:
// every record accepted by Push() before the close is popped exactly
// once (consumers drain until the closed-and-empty signal).
TEST(ShutdownStressTest, AsyncCloseNeverLosesAcceptedItems) {
  for (int round = 0; round < kRounds; ++round) {
    BoundedQueue<int> queue(4);
    std::atomic<int> accepted{0};
    std::atomic<int> popped{0};
    {
      ThreadPool pool(6);
      for (int p = 0; p < 3; ++p) {
        pool.Submit([&queue, &accepted] {
          for (int i = 0; i < 5000; ++i) {
            if (!queue.Push(i)) return;
            accepted.fetch_add(1);
          }
        });
      }
      for (int c = 0; c < 3; ++c) {
        pool.Submit([&queue, &popped] {
          while (queue.Pop().has_value()) popped.fetch_add(1);
        });
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1 + round % 3));
      queue.Close();
      pool.Wait();
    }
    EXPECT_EQ(popped.load(), accepted.load()) << "round " << round;
  }
}

// Batched data plane: several producers push record batches with
// PushAll while one consumer drains batch-wise with PopAll — the exact
// shape of the barrier-less shuffle's fetcher/reducer threads.
// Invariant: every item of every accepted batch arrives exactly once
// (batches are atomic: all-in or rejected whole).
TEST(BatchedQueueStressTest, PushAllPopAllDeliverEveryBatchExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kBatchesPerProducer = 300;
  constexpr int kBatchSize = 7;
  for (int round = 0; round < kRounds; ++round) {
    BoundedQueue<int> queue(3);  // tiny: constant full/empty transitions
    std::atomic<long> pushed_sum{0};
    long popped_sum = 0;
    long popped_count = 0;
    {
      ThreadPool pool(kProducers);
      for (int p = 0; p < kProducers; ++p) {
        pool.Submit([&queue, &pushed_sum, p] {
          for (int b = 0; b < kBatchesPerProducer; ++b) {
            std::vector<int> batch;
            long sum = 0;
            for (int i = 0; i < kBatchSize; ++i) {
              int v = p * 1000000 + b * 100 + i;
              batch.push_back(v);
              sum += v;
            }
            if (!queue.PushAll(std::move(batch))) return;
            pushed_sum.fetch_add(sum);
          }
        });
      }
      std::vector<int> drained;
      // Consumer runs on this thread; producers close nothing, so the
      // drain ends when every producer is done and the queue is empty.
      long expect =
          static_cast<long>(kProducers) * kBatchesPerProducer * kBatchSize;
      while (popped_count < expect) {
        drained.clear();
        size_t n = queue.PopAll(&drained);
        ASSERT_GT(n, 0u) << "queue closed early, round " << round;
        for (int v : drained) popped_sum += v;
        popped_count += static_cast<long>(n);
      }
      pool.Wait();
    }
    EXPECT_EQ(popped_count,
              static_cast<long>(kProducers) * kBatchesPerProducer * kBatchSize);
    EXPECT_EQ(popped_sum, pushed_sum.load()) << "round " << round;
    EXPECT_EQ(queue.size(), 0u);
  }
}

TEST(BatchedQueueStressTest, CloseUnblocksBatchProducersAndConsumers) {
  for (int round = 0; round < kRounds; ++round) {
    BoundedQueue<int> queue(2);
    std::atomic<int> producer_exits{0};
    std::atomic<int> consumer_exits{0};
    {
      ThreadPool pool(6);
      for (int p = 0; p < 3; ++p) {
        pool.Submit([&queue, &producer_exits] {
          while (queue.PushAll({1, 2, 3, 4, 5})) {
          }
          producer_exits.fetch_add(1);
        });
      }
      for (int c = 0; c < 3; ++c) {
        pool.Submit([&queue, &consumer_exits] {
          std::vector<int> out;
          while (queue.PopAll(&out) > 0) out.clear();
          consumer_exits.fetch_add(1);
        });
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1 + round % 3));
      queue.Close();
      pool.Wait();  // deadlocks if Close() loses a batched waiter
    }
    EXPECT_EQ(producer_exits.load(), 3) << "round " << round;
    EXPECT_EQ(consumer_exits.load(), 3) << "round " << round;
  }
}

// Mixed single-record and batched traffic against the transition-based
// not_full_ signalling: pops only notify on the full->not-full edge and
// producers cascade the wakeup, so every parked producer must still get
// through.  (Regression shape for the lost-wakeup this design risks.)
TEST(BatchedQueueStressTest, MixedSingleAndBatchedOpsMakeProgress) {
  for (int round = 0; round < kRounds; ++round) {
    BoundedQueue<int> queue(2);
    std::atomic<long> accepted{0};
    std::atomic<long> popped{0};
    {
      ThreadPool pool(6);
      for (int p = 0; p < 2; ++p) {
        pool.Submit([&queue, &accepted] {
          for (int i = 0; i < 2000; ++i) {
            if (!queue.Push(i)) return;
            accepted.fetch_add(1);
          }
        });
      }
      pool.Submit([&queue, &accepted] {
        for (int b = 0; b < 500; ++b) {
          if (!queue.PushAll({1, 2, 3, 4})) return;
          accepted.fetch_add(4);
        }
      });
      for (int c = 0; c < 2; ++c) {
        pool.Submit([&queue, &popped] {
          while (queue.Pop().has_value()) popped.fetch_add(1);
        });
      }
      pool.Submit([&queue, &popped] {
        std::vector<int> out;
        size_t n;
        while ((n = queue.PopAll(&out, /*max_items=*/3)) > 0) {
          popped.fetch_add(static_cast<long>(n));
          out.clear();
        }
      });
      // All producers finish only if no wakeup is ever lost; then close
      // so the consumers see the termination signal.
      while (accepted.load() < 2 * 2000 + 500 * 4) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
      queue.Close();
      pool.Wait();
    }
    EXPECT_EQ(popped.load(), accepted.load()) << "round " << round;
  }
}

// ~EncodingPipeline while a producer is parked on the window: the
// destructor used to Drain() only admitted work, see pending_jobs_ ==
// 0, and free the worker pool under a Submit still blocked on
// window_open_ (use-after-free, lost DoneFn).  The contract pinned
// down in encoding_pipeline.h: in-flight Submits are admitted, encoded,
// and their DoneFns run before destruction completes.
TEST(ShutdownStressTest, EncodingPipelineDestructionDrainsBlockedSubmit) {
  auto codec = FindCodec("none");
  ASSERT_TRUE(codec.ok());
  for (int round = 0; round < kRounds; ++round) {
    std::atomic<bool> first_done{false};
    std::atomic<bool> second_done{false};
    std::atomic<bool> second_admitted{false};
    CountdownLatch release_first(1);
    ThreadPool producer(1);
    {
      mr::EncodingPipeline::Options options;
      options.codec = *codec;
      options.window_bytes = 64;  // the second submit cannot fit
      options.threads = 1;
      mr::EncodingPipeline pipeline(options);

      // Fills the window and holds it open: the DoneFn parks until the
      // second producer has made it through Submit.
      pipeline.Submit({std::string(256, 'a')},
                      [&](mr::EncodingPipeline::Encoded) {
                        release_first.Wait();
                        first_done.store(true);
                      });
      std::atomic<bool> second_entered{false};
      producer.Submit([&] {
        second_entered.store(true);
        // Blocks on window_open_: the window is full and stays full
        // while the first DoneFn is parked.
        pipeline.Submit({std::string(256, 'b')},
                        [&](mr::EncodingPipeline::Encoded) {
                          second_done.store(true);
                        });
        second_admitted.store(true);
        release_first.CountDown();
      });
      // Let the second producer reach the window wait, then destroy
      // the pipeline under it.
      while (!second_entered.load()) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      EXPECT_FALSE(second_admitted.load());
    }
    // Destruction drained everything: both submits were admitted and
    // both completion callbacks ran.
    EXPECT_TRUE(second_admitted.load()) << "round " << round;
    EXPECT_TRUE(first_done.load()) << "round " << round;
    EXPECT_TRUE(second_done.load()) << "round " << round;
    producer.Wait();
  }
}

}  // namespace
}  // namespace bmr
