// Shutdown-under-load stress for the concurrency primitives beneath
// the barrier-less shuffle: fault recovery cancels reduce attempts
// while producer threads are parked on a full FIFO and consumers on an
// empty one, so Close() must reliably unblock every waiter.  Run under
// tsan (scripts/check.sh tsan) to catch lost-wakeup and data races.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "concurrency/bounded_queue.h"
#include "concurrency/thread_pool.h"

namespace bmr {
namespace {

constexpr int kRounds = 25;

TEST(ShutdownStressTest, CloseUnblocksProducersParkedOnFullQueue) {
  for (int round = 0; round < kRounds; ++round) {
    BoundedQueue<int> queue(2);
    std::atomic<int> accepted{0};
    std::atomic<int> rejected{0};
    {
      ThreadPool pool(4);
      for (int p = 0; p < 4; ++p) {
        pool.Submit([&queue, &accepted, &rejected] {
          for (int i = 0; i < 1000; ++i) {
            if (queue.Push(i)) {
              accepted.fetch_add(1);
            } else {
              rejected.fetch_add(1);
              return;
            }
          }
        });
      }
      // Nobody pops, so the queue fills and every producer ends up
      // parked inside Push() on the not-full condition.
      while (queue.size() < queue.capacity()) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
      queue.Close();
      pool.Wait();  // deadlocks here if Close() loses a wakeup
    }
    EXPECT_EQ(accepted.load(), 2) << "round " << round;
    EXPECT_EQ(rejected.load(), 4) << "round " << round;
    // Close() drains, not discards: the two accepted items survive.
    EXPECT_TRUE(queue.Pop().has_value());
    EXPECT_TRUE(queue.Pop().has_value());
    EXPECT_FALSE(queue.Pop().has_value());
  }
}

TEST(ShutdownStressTest, CloseUnblocksConsumersParkedOnEmptyQueue) {
  for (int round = 0; round < kRounds; ++round) {
    BoundedQueue<int> queue(8);
    std::atomic<int> finished{0};
    {
      ThreadPool pool(4);
      for (int c = 0; c < 4; ++c) {
        pool.Submit([&queue, &finished] {
          while (queue.Pop().has_value()) {
          }
          finished.fetch_add(1);
        });
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      queue.Close();
      pool.Wait();
    }
    EXPECT_EQ(finished.load(), 4) << "round " << round;
  }
}

// Producers, consumers, and an asynchronous Close() all racing — the
// shape of a reduce-attempt cancellation mid-shuffle.  Invariant:
// every record accepted by Push() before the close is popped exactly
// once (consumers drain until the closed-and-empty signal).
TEST(ShutdownStressTest, AsyncCloseNeverLosesAcceptedItems) {
  for (int round = 0; round < kRounds; ++round) {
    BoundedQueue<int> queue(4);
    std::atomic<int> accepted{0};
    std::atomic<int> popped{0};
    {
      ThreadPool pool(6);
      for (int p = 0; p < 3; ++p) {
        pool.Submit([&queue, &accepted] {
          for (int i = 0; i < 5000; ++i) {
            if (!queue.Push(i)) return;
            accepted.fetch_add(1);
          }
        });
      }
      for (int c = 0; c < 3; ++c) {
        pool.Submit([&queue, &popped] {
          while (queue.Pop().has_value()) popped.fetch_add(1);
        });
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1 + round % 3));
      queue.Close();
      pool.Wait();
    }
    EXPECT_EQ(popped.load(), accepted.load()) << "round " << round;
  }
}

}  // namespace
}  // namespace bmr
