// Shutdown-under-load stress for the concurrency primitives beneath
// the barrier-less shuffle: fault recovery cancels reduce attempts
// while producer threads are parked on a full FIFO and consumers on an
// empty one, so Close() must reliably unblock every waiter.  Run under
// tsan (scripts/check.sh tsan) to catch lost-wakeup and data races.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "concurrency/bounded_queue.h"
#include "concurrency/thread_pool.h"

namespace bmr {
namespace {

constexpr int kRounds = 25;

TEST(ShutdownStressTest, CloseUnblocksProducersParkedOnFullQueue) {
  for (int round = 0; round < kRounds; ++round) {
    BoundedQueue<int> queue(2);
    std::atomic<int> accepted{0};
    std::atomic<int> rejected{0};
    {
      ThreadPool pool(4);
      for (int p = 0; p < 4; ++p) {
        pool.Submit([&queue, &accepted, &rejected] {
          for (int i = 0; i < 1000; ++i) {
            if (queue.Push(i)) {
              accepted.fetch_add(1);
            } else {
              rejected.fetch_add(1);
              return;
            }
          }
        });
      }
      // Nobody pops, so the queue fills and every producer ends up
      // parked inside Push() on the not-full condition.
      while (queue.size() < queue.capacity()) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
      queue.Close();
      pool.Wait();  // deadlocks here if Close() loses a wakeup
    }
    EXPECT_EQ(accepted.load(), 2) << "round " << round;
    EXPECT_EQ(rejected.load(), 4) << "round " << round;
    // Close() drains, not discards: the two accepted items survive.
    EXPECT_TRUE(queue.Pop().has_value());
    EXPECT_TRUE(queue.Pop().has_value());
    EXPECT_FALSE(queue.Pop().has_value());
  }
}

TEST(ShutdownStressTest, CloseUnblocksConsumersParkedOnEmptyQueue) {
  for (int round = 0; round < kRounds; ++round) {
    BoundedQueue<int> queue(8);
    std::atomic<int> finished{0};
    {
      ThreadPool pool(4);
      for (int c = 0; c < 4; ++c) {
        pool.Submit([&queue, &finished] {
          while (queue.Pop().has_value()) {
          }
          finished.fetch_add(1);
        });
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      queue.Close();
      pool.Wait();
    }
    EXPECT_EQ(finished.load(), 4) << "round " << round;
  }
}

// Producers, consumers, and an asynchronous Close() all racing — the
// shape of a reduce-attempt cancellation mid-shuffle.  Invariant:
// every record accepted by Push() before the close is popped exactly
// once (consumers drain until the closed-and-empty signal).
TEST(ShutdownStressTest, AsyncCloseNeverLosesAcceptedItems) {
  for (int round = 0; round < kRounds; ++round) {
    BoundedQueue<int> queue(4);
    std::atomic<int> accepted{0};
    std::atomic<int> popped{0};
    {
      ThreadPool pool(6);
      for (int p = 0; p < 3; ++p) {
        pool.Submit([&queue, &accepted] {
          for (int i = 0; i < 5000; ++i) {
            if (!queue.Push(i)) return;
            accepted.fetch_add(1);
          }
        });
      }
      for (int c = 0; c < 3; ++c) {
        pool.Submit([&queue, &popped] {
          while (queue.Pop().has_value()) popped.fetch_add(1);
        });
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1 + round % 3));
      queue.Close();
      pool.Wait();
    }
    EXPECT_EQ(popped.load(), accepted.load()) << "round " << round;
  }
}

// Batched data plane: several producers push record batches with
// PushAll while one consumer drains batch-wise with PopAll — the exact
// shape of the barrier-less shuffle's fetcher/reducer threads.
// Invariant: every item of every accepted batch arrives exactly once
// (batches are atomic: all-in or rejected whole).
TEST(BatchedQueueStressTest, PushAllPopAllDeliverEveryBatchExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kBatchesPerProducer = 300;
  constexpr int kBatchSize = 7;
  for (int round = 0; round < kRounds; ++round) {
    BoundedQueue<int> queue(3);  // tiny: constant full/empty transitions
    std::atomic<long> pushed_sum{0};
    long popped_sum = 0;
    long popped_count = 0;
    {
      ThreadPool pool(kProducers);
      for (int p = 0; p < kProducers; ++p) {
        pool.Submit([&queue, &pushed_sum, p] {
          for (int b = 0; b < kBatchesPerProducer; ++b) {
            std::vector<int> batch;
            long sum = 0;
            for (int i = 0; i < kBatchSize; ++i) {
              int v = p * 1000000 + b * 100 + i;
              batch.push_back(v);
              sum += v;
            }
            if (!queue.PushAll(std::move(batch))) return;
            pushed_sum.fetch_add(sum);
          }
        });
      }
      std::vector<int> drained;
      // Consumer runs on this thread; producers close nothing, so the
      // drain ends when every producer is done and the queue is empty.
      long expect =
          static_cast<long>(kProducers) * kBatchesPerProducer * kBatchSize;
      while (popped_count < expect) {
        drained.clear();
        size_t n = queue.PopAll(&drained);
        ASSERT_GT(n, 0u) << "queue closed early, round " << round;
        for (int v : drained) popped_sum += v;
        popped_count += static_cast<long>(n);
      }
      pool.Wait();
    }
    EXPECT_EQ(popped_count,
              static_cast<long>(kProducers) * kBatchesPerProducer * kBatchSize);
    EXPECT_EQ(popped_sum, pushed_sum.load()) << "round " << round;
    EXPECT_EQ(queue.size(), 0u);
  }
}

TEST(BatchedQueueStressTest, CloseUnblocksBatchProducersAndConsumers) {
  for (int round = 0; round < kRounds; ++round) {
    BoundedQueue<int> queue(2);
    std::atomic<int> producer_exits{0};
    std::atomic<int> consumer_exits{0};
    {
      ThreadPool pool(6);
      for (int p = 0; p < 3; ++p) {
        pool.Submit([&queue, &producer_exits] {
          while (queue.PushAll({1, 2, 3, 4, 5})) {
          }
          producer_exits.fetch_add(1);
        });
      }
      for (int c = 0; c < 3; ++c) {
        pool.Submit([&queue, &consumer_exits] {
          std::vector<int> out;
          while (queue.PopAll(&out) > 0) out.clear();
          consumer_exits.fetch_add(1);
        });
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1 + round % 3));
      queue.Close();
      pool.Wait();  // deadlocks if Close() loses a batched waiter
    }
    EXPECT_EQ(producer_exits.load(), 3) << "round " << round;
    EXPECT_EQ(consumer_exits.load(), 3) << "round " << round;
  }
}

// Mixed single-record and batched traffic against the transition-based
// not_full_ signalling: pops only notify on the full->not-full edge and
// producers cascade the wakeup, so every parked producer must still get
// through.  (Regression shape for the lost-wakeup this design risks.)
TEST(BatchedQueueStressTest, MixedSingleAndBatchedOpsMakeProgress) {
  for (int round = 0; round < kRounds; ++round) {
    BoundedQueue<int> queue(2);
    std::atomic<long> accepted{0};
    std::atomic<long> popped{0};
    {
      ThreadPool pool(6);
      for (int p = 0; p < 2; ++p) {
        pool.Submit([&queue, &accepted] {
          for (int i = 0; i < 2000; ++i) {
            if (!queue.Push(i)) return;
            accepted.fetch_add(1);
          }
        });
      }
      pool.Submit([&queue, &accepted] {
        for (int b = 0; b < 500; ++b) {
          if (!queue.PushAll({1, 2, 3, 4})) return;
          accepted.fetch_add(4);
        }
      });
      for (int c = 0; c < 2; ++c) {
        pool.Submit([&queue, &popped] {
          while (queue.Pop().has_value()) popped.fetch_add(1);
        });
      }
      pool.Submit([&queue, &popped] {
        std::vector<int> out;
        size_t n;
        while ((n = queue.PopAll(&out, /*max_items=*/3)) > 0) {
          popped.fetch_add(static_cast<long>(n));
          out.clear();
        }
      });
      // All producers finish only if no wakeup is ever lost; then close
      // so the consumers see the termination signal.
      while (accepted.load() < 2 * 2000 + 500 * 4) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
      queue.Close();
      pool.Wait();
    }
    EXPECT_EQ(popped.load(), accepted.load()) << "round " << round;
  }
}

}  // namespace
}  // namespace bmr
