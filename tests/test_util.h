// Shared helpers for the bmr test suite.
#pragma once

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "mr/engine.h"
#include "mr/types.h"

namespace bmr::testutil {

/// A small test cluster: `slaves` workers + master, tiny DFS blocks so
/// even small inputs produce several map tasks.
inline std::unique_ptr<mr::ClusterContext> MakeTestCluster(
    int slaves = 4, uint64_t block_bytes = 64 << 10, int map_slots = 2,
    int reduce_slots = 2) {
  cluster::ClusterSpec spec =
      cluster::SmallCluster(slaves, map_slots, reduce_slots);
  spec.dfs_block_bytes = block_bytes;
  return mr::ClusterContext::Create(std::move(spec));
}

/// Multiset view of job output records, for mode-equivalence checks
/// that must ignore arrival order and partition boundaries.
inline std::multiset<std::pair<std::string, std::string>> AsMultiset(
    const std::vector<mr::Record>& records) {
  std::multiset<std::pair<std::string, std::string>> out;
  for (const auto& r : records) out.emplace(r.key, r.value);
  return out;
}

/// Key → value map; fails the caller's expectations if keys repeat.
inline std::map<std::string, std::string> AsMap(
    const std::vector<mr::Record>& records) {
  std::map<std::string, std::string> out;
  for (const auto& r : records) out[r.key] = r.value;
  return out;
}

}  // namespace bmr::testutil
