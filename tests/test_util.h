// Shared helpers for the bmr test suite.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "mr/engine.h"
#include "mr/types.h"

namespace bmr::testutil {

/// A small test cluster: `slaves` workers + master, tiny DFS blocks so
/// even small inputs produce several map tasks.
inline std::unique_ptr<mr::ClusterContext> MakeTestCluster(
    int slaves = 4, uint64_t block_bytes = 64 << 10, int map_slots = 2,
    int reduce_slots = 2) {
  cluster::ClusterSpec spec =
      cluster::SmallCluster(slaves, map_slots, reduce_slots);
  spec.dfs_block_bytes = block_bytes;
  return mr::ClusterContext::Create(std::move(spec));
}

/// Multiset view of job output records, for mode-equivalence checks
/// that must ignore arrival order and partition boundaries.
inline std::multiset<std::pair<std::string, std::string>> AsMultiset(
    const std::vector<mr::Record>& records) {
  std::multiset<std::pair<std::string, std::string>> out;
  for (const auto& r : records) out.emplace(r.key, r.value);
  return out;
}

/// Key → value map; fails the caller's expectations if keys repeat.
inline std::map<std::string, std::string> AsMap(
    const std::vector<mr::Record>& records) {
  std::map<std::string, std::string> out;
  for (const auto& r : records) out[r.key] = r.value;
  return out;
}

/// Runs one job and reads back its concatenated output (part files in
/// path order).
inline StatusOr<std::vector<mr::Record>> RunAndReadOutput(
    mr::ClusterContext* cluster, const mr::JobSpec& spec) {
  mr::JobRunner runner(cluster);
  mr::JobResult result = runner.Run(spec);
  BMR_RETURN_IF_ERROR(result.status);
  return mr::JobRunner::ReadAllOutput(cluster->client(0), result,
                                      spec.output_format);
}

/// Canonical form of a job output for equivalence comparison.  The
/// strictest form is the exact output sequence; apps whose output
/// order or representation legitimately differs across modes supply a
/// looser canonicalizer.
using CanonicalizeFn =
    std::function<std::vector<std::string>(const std::vector<mr::Record>&)>;

/// "key<TAB>value" lines in output order — byte-identical equivalence.
inline std::vector<std::string> ExactSequence(
    const std::vector<mr::Record>& records) {
  std::vector<std::string> out;
  out.reserve(records.size());
  for (const auto& r : records) out.push_back(r.key + "\t" + r.value);
  return out;
}

/// Keys only, in output order (e.g. sort, whose payload is empty).
inline std::vector<std::string> KeySequence(
    const std::vector<mr::Record>& records) {
  std::vector<std::string> out;
  out.reserve(records.size());
  for (const auto& r : records) out.push_back(r.key);
  return out;
}

/// Records as a sorted multiset — order-insensitive equivalence for
/// apps where arrival order is not part of the contract.
inline std::vector<std::string> SortedRecords(
    const std::vector<mr::Record>& records) {
  std::vector<std::string> out = ExactSequence(records);
  std::sort(out.begin(), out.end());
  return out;
}

/// Golden-output equivalence: runs `reference_spec` and `spec` on the
/// same cluster and asserts their canonicalized outputs are identical
/// (the paper's claim that barrier removal does not compromise
/// correctness).  Returns `spec`'s output for further app-specific
/// checks; empty on failure.
inline std::vector<mr::Record> ExpectEquivalentOutputs(
    mr::ClusterContext* cluster, const mr::JobSpec& reference_spec,
    const mr::JobSpec& spec, const CanonicalizeFn& canonicalize = nullptr) {
  auto reference = RunAndReadOutput(cluster, reference_spec);
  EXPECT_TRUE(reference.ok()) << "reference run: " << reference.status();
  auto out = RunAndReadOutput(cluster, spec);
  EXPECT_TRUE(out.ok()) << "case run: " << out.status();
  if (!reference.ok() || !out.ok()) return {};
  const CanonicalizeFn& canon =
      canonicalize ? canonicalize : CanonicalizeFn(ExactSequence);
  EXPECT_EQ(canon(*out), canon(*reference));
  return std::move(*out);
}

/// The barrier-less vs. with-barrier special case: `make_spec(mode)`
/// builds the same job in either mode (distinct output paths!); the
/// with-barrier run is the golden reference.
inline std::vector<mr::Record> ExpectBarrierlessEquivalence(
    mr::ClusterContext* cluster,
    const std::function<mr::JobSpec(bool barrierless)>& make_spec,
    const CanonicalizeFn& canonicalize = nullptr) {
  return ExpectEquivalentOutputs(cluster, make_spec(false), make_spec(true),
                                 canonicalize);
}

}  // namespace bmr::testutil
