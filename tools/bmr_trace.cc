// bmr_trace: run any registered app (or a simmr profile) with tracing
// on and emit the observability artifacts — Chrome/Perfetto trace JSON
// and Prometheus text exposition — plus an optional human report.
//
//   bmr_trace --app=wordcount --mode=barrierless --store=spill
//             --trace-out=trace.json --prom-out=metrics.prom --report
//   bmr_trace --sim --sim-gb=1 --trace-out=sim.json --prom-out=sim.prom
//   bmr_trace --check        # self-test: the `check.sh obs` leg
//
// Open the JSON at https://ui.perfetto.dev (or chrome://tracing); see
// docs/GUIDE.md §10 for the span taxonomy and histogram reading guide.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/knn.h"
#include "apps/registry.h"
#include "apps/wordcount.h"
#include "mr/engine.h"
#include "mr/obs_export.h"
#include "mr/timeline.h"
#include "obs/metric_names.h"
#include "obs/validate.h"
#include "service/job_service.h"
#include "simmr/hadoop_sim.h"
#include "simmr/profiles.h"
#include "workload/generators.h"

namespace bmr {
namespace {

struct CliOptions {
  std::string app = "wordcount";
  std::string mode = "barrierless";
  std::string store = "mem";
  int reducers = 4;
  int input_kb = 64;
  std::string trace_out = "trace.json";
  std::string prom_out = "metrics.prom";
  bool sim = false;
  double sim_gb = 0.5;
  bool report = false;
  bool check = false;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *out = arg + prefix.size();
  return true;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: bmr_trace [--app=NAME] [--mode=barrierless|barrier]\n"
      "                 [--store=mem|spill|kv] [--reducers=N]\n"
      "                 [--input-kb=N] [--trace-out=F] [--prom-out=F]\n"
      "                 [--sim] [--sim-gb=G] [--report] [--check]\n");
  return 2;
}

/// Generate a small DFS-resident workload for `app` (mirrors the
/// matrix test's generators, scaled by input_kb where it applies).
StatusOr<apps::AppOptions> PrepareWorkload(mr::ClusterContext* cluster,
                                           const CliOptions& cli) {
  apps::AppOptions options;
  const std::string& app = cli.app;
  if (app == "grep" || app == "wordcount") {
    workload::TextGenOptions gen;
    gen.total_bytes = static_cast<uint64_t>(cli.input_kb) << 10;
    gen.vocabulary = app == "grep" ? 80 : 400;
    gen.seed = 41;
    BMR_ASSIGN_OR_RETURN(options.input_files,
                         workload::GenerateZipfText(cluster, "/" + app, gen));
    if (app == "grep") options.extra.Set("grep.pattern", "w1");
  } else if (app == "sort") {
    workload::IntGenOptions gen;
    gen.count = cli.input_kb * 125;  // ~8 bytes/int
    gen.seed = 42;
    BMR_ASSIGN_OR_RETURN(options.input_files,
                         workload::GenerateRandomInts(cluster, "/" + app, gen));
  } else if (app == "knn") {
    workload::KnnGenOptions gen;
    gen.training_size = 40;
    gen.experimental_count = 600;
    gen.seed = 43;
    BMR_ASSIGN_OR_RETURN(auto data,
                         workload::GenerateKnnData(cluster, "/" + app, gen));
    options.input_files = data.experimental_files;
    options.extra.SetInt("knn.k", 7);
    options.extra.Set("knn.training", apps::EncodeTrainingSet(data.training));
  } else if (app == "lastfm") {
    workload::ListenGenOptions gen;
    gen.count = 8000;
    gen.num_users = 25;
    gen.num_tracks = 120;
    gen.seed = 44;
    BMR_ASSIGN_OR_RETURN(options.input_files,
                         workload::GenerateListens(cluster, "/" + app, gen));
  } else if (app == "genetic") {
    workload::PopulationGenOptions gen;
    gen.population = 4000;
    gen.seed = 45;
    BMR_ASSIGN_OR_RETURN(options.input_files,
                         workload::GeneratePopulation(cluster, "/" + app, gen));
    options.extra.SetInt("ga.window", 16);
  } else if (app == "blackscholes") {
    workload::BlackScholesGenOptions gen;
    gen.num_mappers = 2;
    gen.iterations_per_mapper = 4000;
    gen.seed = 46;
    BMR_ASSIGN_OR_RETURN(
        options.input_files,
        workload::GenerateBlackScholesUnits(cluster, "/" + app, gen));
  } else {
    return Status::InvalidArgument("no workload generator for app " + app);
  }
  return options;
}

StatusOr<mr::JobMetrics> RunTracedApp(const CliOptions& cli) {
  const apps::AppCase* app = apps::FindApp(cli.app);
  if (app == nullptr) return Status::NotFound("unknown app " + cli.app);

  cluster::ClusterSpec spec = cluster::SmallCluster(3);
  spec.dfs_block_bytes = 16 << 10;  // several map tasks even when small
  auto cluster = mr::ClusterContext::Create(std::move(spec));

  BMR_ASSIGN_OR_RETURN(apps::AppOptions options,
                       PrepareWorkload(cluster.get(), cli));
  options.output_path = "/out";
  options.num_reducers = cli.reducers;
  options.barrierless = cli.mode != "barrier";
  if (cli.store == "spill") {
    options.store.type = core::StoreType::kSpillMerge;
    options.store.spill_threshold_bytes = 16 << 10;
  } else if (cli.store == "kv") {
    options.store.type = core::StoreType::kKvStore;
    options.store.kv_cache_bytes = 16 << 10;
  } else if (cli.store != "mem") {
    return Status::InvalidArgument("unknown store " + cli.store);
  }
  options.extra.SetBool("obs.trace", true);

  mr::JobRunner runner(cluster.get());
  mr::JobResult result = runner.Run(app->make_job(options));
  BMR_RETURN_IF_ERROR(result.status);
  return result.ToMetrics();
}

mr::JobMetrics RunSim(const CliOptions& cli) {
  simmr::SimResult result = simmr::SimulateJob(
      cluster::PaperCluster(), simmr::WordCountSim(cli.sim_gb, cli.reducers));
  return simmr::ToJobMetrics(result);
}

int EmitArtifacts(const mr::JobMetrics& metrics, const CliOptions& cli,
                  const char* label) {
  Status st =
      mr::WriteTraceArtifacts(metrics, cli.trace_out, cli.prom_out);
  if (!st.ok()) {
    std::fprintf(stderr, "bmr_trace: %s artifacts failed: %s\n", label,
                 st.ToString().c_str());
    return 1;
  }
  std::printf("[%s] trace: %s\n[%s] prometheus: %s\n", label,
              cli.trace_out.c_str(), label, cli.prom_out.c_str());
  if (cli.report) {
    std::fputs(mr::FormatJobMetrics(label, metrics).c_str(), stdout);
    std::fputs(mr::Timeline::RenderActivity(metrics.events, /*step=*/0.01)
                   .c_str(),
               stdout);
  }
  return 0;
}

/// The check.sh obs leg: run a traced wordcount and a simulated run
/// through the same exporters; validate both artifacts structurally
/// and assert the promised span names and histogram families exist.
int RunCheck(CliOptions cli) {
  auto fail = [](const std::string& what) {
    std::fprintf(stderr, "bmr_trace --check FAILED: %s\n", what.c_str());
    return 1;
  };

  cli.app = "wordcount";
  cli.mode = "barrierless";
  StatusOr<mr::JobMetrics> metrics = RunTracedApp(cli);
  if (!metrics.ok()) return fail(metrics.status().ToString());

  for (const char* name :
       {obs::kSpanJob, obs::kSpanMapTask, obs::kSpanReduceTask,
        obs::kSpanShuffleFetch, obs::kSpanReduceBatch, obs::kSpanOutputWrite}) {
    bool found = false;
    for (const obs::Span& s : metrics->trace.spans) {
      if (std::strcmp(s.name, name) == 0) {
        found = true;
        break;
      }
    }
    if (!found) return fail(std::string("no span named ") + name);
  }
  for (const char* name :
       {obs::kHShuffleFetchRttUs, obs::kHShuffleQueueWaitUs,
        obs::kHReduceInvokeUs, obs::kHStoreGetUs, obs::kHStorePutUs,
        obs::kHOutputWriteUs}) {
    auto it = metrics->histograms.find(name);
    if (it == metrics->histograms.end() || it->second.count() == 0) {
      return fail(std::string("missing/empty histogram ") + name);
    }
  }
  // RPC latency is recorded per transport (bmr_rpc_call_us{transport=...});
  // whichever transport carried the run must have samples.
  bool rpc_seen = false;
  for (const char* name : {obs::kHRpcCallInprocUs, obs::kHRpcCallTcpUs}) {
    auto it = metrics->histograms.find(name);
    if (it != metrics->histograms.end() && it->second.count() > 0) {
      rpc_seen = true;
    }
  }
  if (!rpc_seen) return fail("missing/empty bmr_rpc_call_us family");

  const std::string json = obs::PerfettoTraceJson(mr::BuildTraceLog(*metrics));
  Status st = obs::ValidatePerfettoJson(json, /*min_spans=*/10);
  if (!st.ok()) return fail("trace json: " + st.ToString());
  const std::string prom =
      obs::PrometheusText(mr::BuildMetricsSnapshot(*metrics));
  st = obs::ValidatePrometheusText(prom);
  if (!st.ok()) return fail("prometheus text: " + st.ToString());
  if (prom.find(obs::kHShuffleFetchRttUs) == std::string::npos) {
    return fail("fetch RTT histogram missing from exposition");
  }

  // Same pipeline on a simulated run (no tracer — task-event lanes).
  mr::JobMetrics sim = RunSim(cli);
  const std::string sim_json = obs::PerfettoTraceJson(mr::BuildTraceLog(sim));
  st = obs::ValidatePerfettoJson(sim_json, /*min_spans=*/10);
  if (!st.ok()) return fail("sim trace json: " + st.ToString());
  st = obs::ValidatePrometheusText(
      obs::PrometheusText(mr::BuildMetricsSnapshot(sim)));
  if (!st.ok()) return fail("sim prometheus text: " + st.ToString());

  // Multi-tenant job service: run a small two-pool workload and
  // validate the per-pool bmr_service_* families through the same
  // Prometheus exposition.
  {
    auto spec = cluster::SmallCluster(2, 2, 2);
    spec.dfs_block_bytes = 64 << 10;
    auto cluster = mr::ClusterContext::Create(std::move(spec));
    workload::TextGenOptions gen;
    gen.total_bytes = 8 << 10;
    gen.num_files = 1;
    gen.vocabulary = 100;
    gen.seed = 3;
    auto files = workload::GenerateZipfText(cluster.get(), "/svc/in", gen);
    if (!files.ok()) return fail("service input: " + files.status().ToString());

    service::JobService svc(cluster.get());
    for (const char* pool : {"svc-a", "svc-b"}) {
      service::PoolConfig config;
      config.name = pool;
      if (Status add = svc.AddPool(config); !add.ok()) {
        return fail("service AddPool: " + add.ToString());
      }
    }
    std::vector<service::JobTicket> tickets;
    int run = 0;
    for (const char* pool : {"svc-a", "svc-a", "svc-b"}) {
      apps::AppOptions job;
      job.input_files = *files;
      job.num_reducers = 1;
      job.output_path = "/svc/out-" + std::to_string(run++);
      auto ticket = svc.Submit(pool, apps::MakeWordCountJob(job));
      if (!ticket.ok()) {
        return fail("service Submit: " + ticket.status().ToString());
      }
      tickets.push_back(*ticket);
    }
    for (const service::JobTicket& ticket : tickets) {
      service::JobOutcome outcome = svc.Wait(ticket);
      if (!outcome.status.ok()) {
        return fail("service job: " + outcome.status.ToString());
      }
    }
    const std::string service_prom = svc.PrometheusMetrics();
    st = obs::ValidatePrometheusText(service_prom);
    if (!st.ok()) return fail("service prometheus text: " + st.ToString());
    for (const char* series :
         {"bmr_service_jobs_completed_total{pool=\"svc-a\"} 2",
          "bmr_service_jobs_completed_total{pool=\"svc-b\"} 1",
          "bmr_service_jobs_submitted_total{pool=\"svc-a\"} 2",
          "bmr_service_job_latency_us_count{pool=\"svc-a\"}",
          "bmr_service_queue_wait_us_count{pool=\"svc-b\"}"}) {
      if (service_prom.find(series) == std::string::npos) {
        return fail(std::string("service series missing: ") + series);
      }
    }
  }

  if (EmitArtifacts(*metrics, cli, "check") != 0) return 1;
  std::printf("bmr_trace --check OK (%zu spans, %zu histograms)\n",
              metrics->trace.spans.size(), metrics->histograms.size());
  return 0;
}

int Main(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "app", &cli.app) ||
        ParseFlag(argv[i], "mode", &cli.mode) ||
        ParseFlag(argv[i], "store", &cli.store) ||
        ParseFlag(argv[i], "trace-out", &cli.trace_out) ||
        ParseFlag(argv[i], "prom-out", &cli.prom_out)) {
      continue;
    }
    if (ParseFlag(argv[i], "reducers", &value)) {
      cli.reducers = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "input-kb", &value)) {
      cli.input_kb = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "sim-gb", &value)) {
      cli.sim_gb = std::atof(value.c_str());
    } else if (std::strcmp(argv[i], "--sim") == 0) {
      cli.sim = true;
    } else if (std::strcmp(argv[i], "--report") == 0) {
      cli.report = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      cli.check = true;
    } else {
      return Usage();
    }
  }
  if (cli.check) return RunCheck(cli);
  if (cli.sim) return EmitArtifacts(RunSim(cli), cli, "sim");

  StatusOr<mr::JobMetrics> metrics = RunTracedApp(cli);
  if (!metrics.ok()) {
    std::fprintf(stderr, "bmr_trace: %s\n", metrics.status().ToString().c_str());
    return 1;
  }
  return EmitArtifacts(*metrics, cli, cli.app.c_str());
}

}  // namespace
}  // namespace bmr

int main(int argc, char** argv) { return bmr::Main(argc, argv); }
