// bmr_trace: run any registered app (or a simmr profile) with tracing
// on and emit the observability artifacts — Chrome/Perfetto trace JSON
// and Prometheus text exposition — plus an optional human report.
//
//   bmr_trace --app=wordcount --mode=barrierless --store=spill
//             --trace-out=trace.json --prom-out=metrics.prom --report
//   bmr_trace --sim --sim-gb=1 --trace-out=sim.json --prom-out=sim.prom
//   bmr_trace --check        # self-test: the `check.sh obs` leg
//   bmr_trace --stragglers   # per-task skew + wire/handler RTT split
//   bmr_trace --serve=20     # job service + live introspection HTTP
//   bmr_trace --validate-trace=F / --validate-prom=F / --validate-json=F
//   bmr_trace --validate-flight=DIR   # flight-recorder artifacts
//
// Open the JSON at https://ui.perfetto.dev (or chrome://tracing); see
// docs/GUIDE.md §10 for the span taxonomy and §15 for the distributed
// tracing / introspection / flight-recorder model.
#include <dirent.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/knn.h"
#include "apps/registry.h"
#include "apps/wordcount.h"
#include "mr/engine.h"
#include "mr/obs_export.h"
#include "mr/timeline.h"
#include "obs/flight_recorder.h"
#include "obs/metric_names.h"
#include "obs/validate.h"
#include "service/job_service.h"
#include "simmr/hadoop_sim.h"
#include "simmr/profiles.h"
#include "workload/generators.h"

namespace bmr {
namespace {

struct CliOptions {
  std::string app = "wordcount";
  std::string mode = "barrierless";
  std::string store = "mem";
  int reducers = 4;
  int input_kb = 64;
  std::string trace_out = "trace.json";
  std::string prom_out = "metrics.prom";
  bool sim = false;
  double sim_gb = 0.5;
  bool report = false;
  bool check = false;
  bool stragglers = false;
  int serve_seconds = 0;          // > 0 = --serve mode
  std::string validate_trace;     // file paths; non-empty = validate mode
  std::string validate_prom;
  std::string validate_json;
  std::string validate_flight;    // directory of flight artifacts
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *out = arg + prefix.size();
  return true;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: bmr_trace [--app=NAME] [--mode=barrierless|barrier]\n"
      "                 [--store=mem|spill|kv] [--reducers=N]\n"
      "                 [--input-kb=N] [--trace-out=F] [--prom-out=F]\n"
      "                 [--sim] [--sim-gb=G] [--report] [--check]\n"
      "                 [--stragglers] [--serve=SECONDS]\n"
      "                 [--validate-trace=F] [--validate-prom=F]\n"
      "                 [--validate-json=F] [--validate-flight=DIR]\n");
  return 2;
}

/// Generate a small DFS-resident workload for `app` (mirrors the
/// matrix test's generators, scaled by input_kb where it applies).
StatusOr<apps::AppOptions> PrepareWorkload(mr::ClusterContext* cluster,
                                           const CliOptions& cli) {
  apps::AppOptions options;
  const std::string& app = cli.app;
  if (app == "grep" || app == "wordcount") {
    workload::TextGenOptions gen;
    gen.total_bytes = static_cast<uint64_t>(cli.input_kb) << 10;
    gen.vocabulary = app == "grep" ? 80 : 400;
    gen.seed = 41;
    BMR_ASSIGN_OR_RETURN(options.input_files,
                         workload::GenerateZipfText(cluster, "/" + app, gen));
    if (app == "grep") options.extra.Set("grep.pattern", "w1");
  } else if (app == "sort") {
    workload::IntGenOptions gen;
    gen.count = cli.input_kb * 125;  // ~8 bytes/int
    gen.seed = 42;
    BMR_ASSIGN_OR_RETURN(options.input_files,
                         workload::GenerateRandomInts(cluster, "/" + app, gen));
  } else if (app == "knn") {
    workload::KnnGenOptions gen;
    gen.training_size = 40;
    gen.experimental_count = 600;
    gen.seed = 43;
    BMR_ASSIGN_OR_RETURN(auto data,
                         workload::GenerateKnnData(cluster, "/" + app, gen));
    options.input_files = data.experimental_files;
    options.extra.SetInt("knn.k", 7);
    options.extra.Set("knn.training", apps::EncodeTrainingSet(data.training));
  } else if (app == "lastfm") {
    workload::ListenGenOptions gen;
    gen.count = 8000;
    gen.num_users = 25;
    gen.num_tracks = 120;
    gen.seed = 44;
    BMR_ASSIGN_OR_RETURN(options.input_files,
                         workload::GenerateListens(cluster, "/" + app, gen));
  } else if (app == "genetic") {
    workload::PopulationGenOptions gen;
    gen.population = 4000;
    gen.seed = 45;
    BMR_ASSIGN_OR_RETURN(options.input_files,
                         workload::GeneratePopulation(cluster, "/" + app, gen));
    options.extra.SetInt("ga.window", 16);
  } else if (app == "blackscholes") {
    workload::BlackScholesGenOptions gen;
    gen.num_mappers = 2;
    gen.iterations_per_mapper = 4000;
    gen.seed = 46;
    BMR_ASSIGN_OR_RETURN(
        options.input_files,
        workload::GenerateBlackScholesUnits(cluster, "/" + app, gen));
  } else {
    return Status::InvalidArgument("no workload generator for app " + app);
  }
  return options;
}

StatusOr<mr::JobMetrics> RunTracedApp(const CliOptions& cli) {
  const apps::AppCase* app = apps::FindApp(cli.app);
  if (app == nullptr) return Status::NotFound("unknown app " + cli.app);

  cluster::ClusterSpec spec = cluster::SmallCluster(3);
  spec.dfs_block_bytes = 16 << 10;  // several map tasks even when small
  auto cluster = mr::ClusterContext::Create(std::move(spec));

  BMR_ASSIGN_OR_RETURN(apps::AppOptions options,
                       PrepareWorkload(cluster.get(), cli));
  options.output_path = "/out";
  options.num_reducers = cli.reducers;
  options.barrierless = cli.mode != "barrier";
  if (cli.store == "spill") {
    options.store.type = core::StoreType::kSpillMerge;
    options.store.spill_threshold_bytes = 16 << 10;
  } else if (cli.store == "kv") {
    options.store.type = core::StoreType::kKvStore;
    options.store.kv_cache_bytes = 16 << 10;
  } else if (cli.store != "mem") {
    return Status::InvalidArgument("unknown store " + cli.store);
  }
  options.extra.SetBool("obs.trace", true);

  mr::JobRunner runner(cluster.get());
  mr::JobResult result = runner.Run(app->make_job(options));
  BMR_RETURN_IF_ERROR(result.status);
  return result.ToMetrics();
}

mr::JobMetrics RunSim(const CliOptions& cli) {
  simmr::SimResult result = simmr::SimulateJob(
      cluster::PaperCluster(), simmr::WordCountSim(cli.sim_gb, cli.reducers));
  return simmr::ToJobMetrics(result);
}

/// --stragglers: per-task skew from the stitched span tree — task
/// durations grouped by span arg (task id), flagging tasks beyond
/// 1.5x the phase median — plus the wire-vs-handler split of the
/// shuffle fetch RTT, which only exists once rpc.handler spans stitch
/// under shuffle.fetch parents (GUIDE §15).
void PrintStragglerReport(const mr::JobMetrics& metrics) {
  for (const char* phase : {obs::kSpanMapTask, obs::kSpanReduceTask}) {
    // One duration per task id: tasks can have several attempts
    // (speculation, restarts); keep the longest, which is what skew
    // hunting cares about.
    std::map<int64_t, double> by_task;
    for (const obs::Span& s : metrics.trace.spans) {
      if (std::strcmp(s.name, phase) != 0 || s.arg < 0) continue;
      double dur = (s.end_s - s.start_s) * 1e3;
      if (dur > by_task[s.arg]) by_task[s.arg] = dur;
    }
    if (by_task.empty()) {
      std::printf("[stragglers] %s: no spans\n", phase);
      continue;
    }
    std::vector<double> durs;
    for (const auto& [task, dur] : by_task) durs.push_back(dur);
    std::sort(durs.begin(), durs.end());
    double median = durs[durs.size() / 2];
    double max = durs.back();
    std::printf("[stragglers] %s: %zu tasks, median %.2f ms, max %.2f ms "
                "(skew %.2fx)\n",
                phase, by_task.size(), median, max,
                median > 0 ? max / median : 0.0);
    for (const auto& [task, dur] : by_task) {
      if (median > 0 && dur > 1.5 * median) {
        std::printf("[stragglers]   task %lld: %.2f ms (%.2fx median)\n",
                    static_cast<long long>(task), dur, dur / median);
      }
    }
  }

  // Wire vs handler share of the fetch RTT: handler spans propagated
  // across the transport parent directly under their shuffle.fetch
  // client span, so RTT - handler time = wire + queueing.
  std::set<obs::SpanId> fetch_ids;
  double fetch_total_s = 0;
  size_t fetches = 0;
  for (const obs::Span& s : metrics.trace.spans) {
    if (std::strcmp(s.name, obs::kSpanShuffleFetch) != 0) continue;
    fetch_ids.insert(s.id);
    fetch_total_s += s.end_s - s.start_s;
    ++fetches;
  }
  double handler_total_s = 0;
  size_t handlers = 0;
  for (const obs::Span& s : metrics.trace.spans) {
    if (std::strcmp(s.name, obs::kSpanRpcHandler) != 0) continue;
    if (fetch_ids.count(s.parent) == 0) continue;
    handler_total_s += s.end_s - s.start_s;
    ++handlers;
  }
  if (fetches > 0 && handlers > 0) {
    double wire_share = 1.0 - handler_total_s / fetch_total_s;
    std::printf(
        "[stragglers] fetch RTT split: %zu fetches (mean %.1f us), "
        "%zu handler spans (mean %.1f us), wire+queue share %.0f%%\n",
        fetches, fetch_total_s * 1e6 / fetches, handlers,
        handler_total_s * 1e6 / handlers, wire_share * 100.0);
  } else {
    std::printf("[stragglers] fetch RTT split: no stitched handler spans\n");
  }
}

int EmitArtifacts(const mr::JobMetrics& metrics, const CliOptions& cli,
                  const char* label) {
  Status st =
      mr::WriteTraceArtifacts(metrics, cli.trace_out, cli.prom_out);
  if (!st.ok()) {
    std::fprintf(stderr, "bmr_trace: %s artifacts failed: %s\n", label,
                 st.ToString().c_str());
    return 1;
  }
  std::printf("[%s] trace: %s\n[%s] prometheus: %s\n", label,
              cli.trace_out.c_str(), label, cli.prom_out.c_str());
  if (cli.report) {
    std::fputs(mr::FormatJobMetrics(label, metrics).c_str(), stdout);
    std::fputs(mr::Timeline::RenderActivity(metrics.events, /*step=*/0.01)
                   .c_str(),
               stdout);
    if (metrics.trace_enabled) {
      std::printf("[%s] spans dropped at central cap: %llu\n", label,
                  static_cast<unsigned long long>(metrics.spans_dropped));
    }
  }
  if (cli.stragglers) PrintStragglerReport(metrics);
  return 0;
}

/// The check.sh obs leg: run a traced wordcount and a simulated run
/// through the same exporters; validate both artifacts structurally
/// and assert the promised span names and histogram families exist.
int RunCheck(CliOptions cli) {
  auto fail = [](const std::string& what) {
    std::fprintf(stderr, "bmr_trace --check FAILED: %s\n", what.c_str());
    return 1;
  };

  cli.app = "wordcount";
  cli.mode = "barrierless";
  StatusOr<mr::JobMetrics> metrics = RunTracedApp(cli);
  if (!metrics.ok()) return fail(metrics.status().ToString());

  for (const char* name :
       {obs::kSpanJob, obs::kSpanMapTask, obs::kSpanReduceTask,
        obs::kSpanShuffleFetch, obs::kSpanReduceBatch, obs::kSpanOutputWrite}) {
    bool found = false;
    for (const obs::Span& s : metrics->trace.spans) {
      if (std::strcmp(s.name, name) == 0) {
        found = true;
        break;
      }
    }
    if (!found) return fail(std::string("no span named ") + name);
  }
  for (const char* name :
       {obs::kHShuffleFetchRttUs, obs::kHShuffleQueueWaitUs,
        obs::kHReduceInvokeUs, obs::kHStoreGetUs, obs::kHStorePutUs,
        obs::kHOutputWriteUs}) {
    auto it = metrics->histograms.find(name);
    if (it == metrics->histograms.end() || it->second.count() == 0) {
      return fail(std::string("missing/empty histogram ") + name);
    }
  }
  // RPC latency is recorded per transport (bmr_rpc_call_us{transport=...});
  // whichever transport carried the run must have samples.
  bool rpc_seen = false;
  for (const char* name : {obs::kHRpcCallInprocUs, obs::kHRpcCallTcpUs}) {
    auto it = metrics->histograms.find(name);
    if (it != metrics->histograms.end() && it->second.count() > 0) {
      rpc_seen = true;
    }
  }
  if (!rpc_seen) return fail("missing/empty bmr_rpc_call_us family");

  // Wire propagation (GUIDE §15): the run must contain handler spans,
  // and every one of them must stitch under a present parent — on the
  // TCP transport that parent crossed address spaces on the wire.
  {
    std::set<obs::SpanId> ids;
    for (const obs::Span& s : metrics->trace.spans) ids.insert(s.id);
    size_t handler_spans = 0;
    for (const obs::Span& s : metrics->trace.spans) {
      if (std::strcmp(s.name, obs::kSpanRpcHandler) != 0) continue;
      ++handler_spans;
      if (s.parent == 0) {
        return fail("rpc.handler span " + std::to_string(s.id) +
                    " has no parent (trace context not propagated)");
      }
      if (ids.count(s.parent) == 0) {
        return fail("rpc.handler span " + std::to_string(s.id) +
                    " is an orphan: parent " + std::to_string(s.parent) +
                    " never recorded");
      }
    }
    if (handler_spans == 0) return fail("no rpc.handler spans in the trace");
  }

  const std::string json = obs::PerfettoTraceJson(mr::BuildTraceLog(*metrics));
  // require_parents: a span whose parent id never appears is a bug,
  // not a vacuous pass, now that contexts propagate across the wire.
  Status st = obs::ValidatePerfettoJson(json, /*min_spans=*/10,
                                        /*require_parents=*/true);
  if (!st.ok()) return fail("trace json: " + st.ToString());
  const std::string prom =
      obs::PrometheusText(mr::BuildMetricsSnapshot(*metrics));
  st = obs::ValidatePrometheusText(prom);
  if (!st.ok()) return fail("prometheus text: " + st.ToString());
  if (prom.find(obs::kHShuffleFetchRttUs) == std::string::npos) {
    return fail("fetch RTT histogram missing from exposition");
  }
  if (prom.find(obs::kPromObsSpansDropped) == std::string::npos) {
    return fail("span-loss counter missing from exposition");
  }
  if (metrics->spans_dropped != 0) {
    return fail("tracer dropped " + std::to_string(metrics->spans_dropped) +
                " spans on a small run");
  }

  // Flight recorder: the run above recorded task-phase events into the
  // always-armed ring; a requested dump must validate and carry the
  // trigger event.
  {
    obs::FlightRecorder* recorder = obs::FlightRecorder::Global();
    if (recorder->size() == 0) return fail("flight ring empty after a run");
    recorder->RequestDump("check.synthetic_trigger", /*arg=*/-1);
    const std::string flight_json = recorder->SnapshotJson(0);
    st = obs::ValidatePerfettoJson(flight_json, /*min_spans=*/1);
    if (!st.ok()) return fail("flight snapshot: " + st.ToString());
    if (flight_json.find(obs::kFlightTriggerCategory) == std::string::npos) {
      return fail("flight snapshot lost the trigger event");
    }
    (void)recorder->TakeDumpReasons();  // leave no sticky trigger behind
  }

  // Same pipeline on a simulated run (no tracer — task-event lanes).
  mr::JobMetrics sim = RunSim(cli);
  const std::string sim_json = obs::PerfettoTraceJson(mr::BuildTraceLog(sim));
  st = obs::ValidatePerfettoJson(sim_json, /*min_spans=*/10);
  if (!st.ok()) return fail("sim trace json: " + st.ToString());
  st = obs::ValidatePrometheusText(
      obs::PrometheusText(mr::BuildMetricsSnapshot(sim)));
  if (!st.ok()) return fail("sim prometheus text: " + st.ToString());

  // Multi-tenant job service: run a small two-pool workload and
  // validate the per-pool bmr_service_* families through the same
  // Prometheus exposition.
  {
    auto spec = cluster::SmallCluster(2, 2, 2);
    spec.dfs_block_bytes = 64 << 10;
    auto cluster = mr::ClusterContext::Create(std::move(spec));
    workload::TextGenOptions gen;
    gen.total_bytes = 8 << 10;
    gen.num_files = 1;
    gen.vocabulary = 100;
    gen.seed = 3;
    auto files = workload::GenerateZipfText(cluster.get(), "/svc/in", gen);
    if (!files.ok()) return fail("service input: " + files.status().ToString());

    service::JobService svc(cluster.get());
    for (const char* pool : {"svc-a", "svc-b"}) {
      service::PoolConfig config;
      config.name = pool;
      if (Status add = svc.AddPool(config); !add.ok()) {
        return fail("service AddPool: " + add.ToString());
      }
    }
    std::vector<service::JobTicket> tickets;
    int run = 0;
    for (const char* pool : {"svc-a", "svc-a", "svc-b"}) {
      apps::AppOptions job;
      job.input_files = *files;
      job.num_reducers = 1;
      job.output_path = "/svc/out-" + std::to_string(run++);
      auto ticket = svc.Submit(pool, apps::MakeWordCountJob(job));
      if (!ticket.ok()) {
        return fail("service Submit: " + ticket.status().ToString());
      }
      tickets.push_back(*ticket);
    }
    for (const service::JobTicket& ticket : tickets) {
      service::JobOutcome outcome = svc.Wait(ticket);
      if (!outcome.status.ok()) {
        return fail("service job: " + outcome.status.ToString());
      }
    }
    const std::string service_prom = svc.PrometheusMetrics();
    st = obs::ValidatePrometheusText(service_prom);
    if (!st.ok()) return fail("service prometheus text: " + st.ToString());
    for (const char* series :
         {"bmr_service_jobs_completed_total{pool=\"svc-a\"} 2",
          "bmr_service_jobs_completed_total{pool=\"svc-b\"} 1",
          "bmr_service_jobs_submitted_total{pool=\"svc-a\"} 2",
          "bmr_service_job_latency_us_count{pool=\"svc-a\"}",
          "bmr_service_queue_wait_us_count{pool=\"svc-b\"}"}) {
      if (service_prom.find(series) == std::string::npos) {
        return fail(std::string("service series missing: ") + series);
      }
    }
  }

  if (EmitArtifacts(*metrics, cli, "check") != 0) return 1;
  std::printf("bmr_trace --check OK (%zu spans, %zu histograms)\n",
              metrics->trace.spans.size(), metrics->histograms.size());
  return 0;
}

/// --serve=N: stand up a job service with live introspection, run a
/// couple of traced jobs through it, and keep the HTTP endpoints up for
/// N seconds so an external scraper (the check.sh introspect leg) can
/// curl /metrics, /jobs, and /trace.
int RunServe(const CliOptions& cli) {
  auto spec = cluster::SmallCluster(2, 2, 2);
  spec.dfs_block_bytes = 16 << 10;
  auto cluster = mr::ClusterContext::Create(std::move(spec));

  workload::TextGenOptions gen;
  gen.total_bytes = static_cast<uint64_t>(cli.input_kb) << 10;
  gen.vocabulary = 200;
  gen.seed = 7;
  auto files = workload::GenerateZipfText(cluster.get(), "/serve/in", gen);
  if (!files.ok()) {
    std::fprintf(stderr, "bmr_trace --serve: input: %s\n",
                 files.status().ToString().c_str());
    return 1;
  }

  service::JobService svc(cluster.get());
  for (const char* pool : {"svc-a", "svc-b"}) {
    service::PoolConfig config;
    config.name = pool;
    if (Status st = svc.AddPool(config); !st.ok()) {
      std::fprintf(stderr, "bmr_trace --serve: AddPool: %s\n",
                   st.ToString().c_str());
      return 1;
    }
  }
  if (Status st = svc.ServeIntrospection(0); !st.ok()) {
    std::fprintf(stderr, "bmr_trace --serve: introspection: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  // The scraper greps this exact line to find the ephemeral port.
  std::printf("INTROSPECT PORT=%d\n", svc.introspect_port());
  std::fflush(stdout);

  std::vector<service::JobTicket> tickets;
  int run = 0;
  for (const char* pool : {"svc-a", "svc-a", "svc-b"}) {
    apps::AppOptions job;
    job.input_files = *files;
    job.num_reducers = cli.reducers;
    job.output_path = "/serve/out-" + std::to_string(run++);
    job.extra.SetBool("obs.trace", true);
    auto ticket = svc.Submit(pool, apps::MakeWordCountJob(job));
    if (!ticket.ok()) {
      std::fprintf(stderr, "bmr_trace --serve: Submit: %s\n",
                   ticket.status().ToString().c_str());
      return 1;
    }
    tickets.push_back(*ticket);
  }
  for (const service::JobTicket& ticket : tickets) {
    service::JobOutcome outcome = svc.Wait(ticket);
    if (!outcome.status.ok()) {
      std::fprintf(stderr, "bmr_trace --serve: job: %s\n",
                   outcome.status.ToString().c_str());
      return 1;
    }
  }
  std::printf("SERVE JOBS DONE\n");
  std::fflush(stdout);

  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::seconds(cli.serve_seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  return 0;
}

StatusOr<std::string> ReadFileText(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// File-based validation modes: re-run the structural validators over
/// artifacts scraped off a live server or dumped by the flight
/// recorder, from a separate process (check.sh / chaos.sh).
int RunValidateFile(const std::string& path, const char* kind) {
  StatusOr<std::string> text = ReadFileText(path);
  Status st = text.status();
  if (st.ok()) {
    if (std::strcmp(kind, "trace") == 0) {
      st = obs::ValidatePerfettoJson(*text, /*min_spans=*/1);
    } else if (std::strcmp(kind, "prom") == 0) {
      st = obs::ValidatePrometheusText(*text);
    } else {
      st = obs::ValidateJsonText(*text);
    }
  }
  if (!st.ok()) {
    std::fprintf(stderr, "bmr_trace --validate-%s FAILED: %s: %s\n", kind,
                 path.c_str(), st.ToString().c_str());
    return 1;
  }
  std::printf("bmr_trace --validate-%s OK: %s\n", kind, path.c_str());
  return 0;
}

/// --validate-flight=DIR: every flight_*.json artifact in DIR must be
/// a valid Perfetto document carrying its dump-trigger event, and
/// there must be at least one (a faulted run that dumped nothing is a
/// flight-recorder regression, not a pass).
int RunValidateFlight(const std::string& dir) {
  auto fail = [&](const std::string& what) {
    std::fprintf(stderr, "bmr_trace --validate-flight FAILED: %s\n",
                 what.c_str());
    return 1;
  };
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) return fail("cannot open directory " + dir);
  size_t artifacts = 0;
  while (dirent* entry = readdir(d)) {
    std::string name = entry->d_name;
    if (name.size() < 5 || name.compare(name.size() - 5, 5, ".json") != 0) {
      continue;
    }
    const std::string path = dir + "/" + name;
    StatusOr<std::string> text = ReadFileText(path);
    if (!text.ok()) {
      closedir(d);
      return fail(text.status().ToString());
    }
    Status st = obs::ValidatePerfettoJson(*text, /*min_spans=*/1);
    if (!st.ok()) {
      closedir(d);
      return fail(path + ": " + st.ToString());
    }
    if (text->find(obs::kFlightTriggerCategory) == std::string::npos) {
      closedir(d);
      return fail(path + ": no " + std::string(obs::kFlightTriggerCategory) +
                  " event (dump without a recorded trigger)");
    }
    ++artifacts;
  }
  closedir(d);
  if (artifacts == 0) return fail("no flight artifacts in " + dir);
  std::printf("bmr_trace --validate-flight OK: %zu artifact%s in %s\n",
              artifacts, artifacts == 1 ? "" : "s", dir.c_str());
  return 0;
}

int Main(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "app", &cli.app) ||
        ParseFlag(argv[i], "mode", &cli.mode) ||
        ParseFlag(argv[i], "store", &cli.store) ||
        ParseFlag(argv[i], "trace-out", &cli.trace_out) ||
        ParseFlag(argv[i], "prom-out", &cli.prom_out)) {
      continue;
    }
    if (ParseFlag(argv[i], "reducers", &value)) {
      cli.reducers = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "input-kb", &value)) {
      cli.input_kb = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "sim-gb", &value)) {
      cli.sim_gb = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "serve", &value)) {
      cli.serve_seconds = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "validate-trace", &cli.validate_trace) ||
               ParseFlag(argv[i], "validate-prom", &cli.validate_prom) ||
               ParseFlag(argv[i], "validate-json", &cli.validate_json) ||
               ParseFlag(argv[i], "validate-flight", &cli.validate_flight)) {
      continue;
    } else if (std::strcmp(argv[i], "--sim") == 0) {
      cli.sim = true;
    } else if (std::strcmp(argv[i], "--report") == 0) {
      cli.report = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      cli.check = true;
    } else if (std::strcmp(argv[i], "--stragglers") == 0) {
      cli.stragglers = true;
    } else {
      return Usage();
    }
  }
  // Validation modes need no cluster; they run against files on disk.
  if (!cli.validate_trace.empty()) {
    return RunValidateFile(cli.validate_trace, "trace");
  }
  if (!cli.validate_prom.empty()) {
    return RunValidateFile(cli.validate_prom, "prom");
  }
  if (!cli.validate_json.empty()) {
    return RunValidateFile(cli.validate_json, "json");
  }
  if (!cli.validate_flight.empty()) return RunValidateFlight(cli.validate_flight);
  if (cli.serve_seconds > 0) return RunServe(cli);
  if (cli.check) return RunCheck(cli);
  if (cli.sim) return EmitArtifacts(RunSim(cli), cli, "sim");

  StatusOr<mr::JobMetrics> metrics = RunTracedApp(cli);
  if (!metrics.ok()) {
    std::fprintf(stderr, "bmr_trace: %s\n", metrics.status().ToString().c_str());
    return 1;
  }
  return EmitArtifacts(*metrics, cli, cli.app.c_str());
}

}  // namespace
}  // namespace bmr

int main(int argc, char** argv) { return bmr::Main(argc, argv); }
