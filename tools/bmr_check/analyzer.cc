#include "analyzer.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <utility>

namespace bmr_check {
namespace {

// ===================================================================
// Lexer
// ===================================================================

struct Token {
  enum Kind { kIdent, kNumber, kString, kPunct };
  Kind kind;
  std::string text;
  int line;
};

struct Inc {
  std::string target;  // "mr/types.h" (quoted project includes only)
  int line;
};

/// One lexed file plus everything the checks need to know about it.
struct Pf {
  std::string path;  // "src/mr/engine.cc"
  std::string dir;   // "mr" ("" if not src/<dir>/...)
  std::string stem;  // "engine"
  bool is_header = false;
  std::vector<Token> toks;
  std::vector<Inc> includes;
  std::map<int, std::string> comments;  // line -> text
};

bool IdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

/// Lexes C++ enough for structural analysis: comments captured aside,
/// strings/chars opaque, preprocessor lines reduced to their includes
/// and `#define NAME` tokens, everything else as ident/number/punct.
void Lex(const std::string& text, Pf* pf) {
  size_t i = 0, n = text.size();
  int line = 1;
  bool at_line_start = true;
  auto add_comment = [&](int at, const std::string& s) {
    auto& slot = pf->comments[at];
    if (!slot.empty()) slot += ' ';
    slot += s;
  };
  // Skips to the end of a (possibly continued) preprocessor line.
  auto skip_pp_line = [&]() {
    while (i < n) {
      if (text[i] == '\\' && i + 1 < n && text[i + 1] == '\n') {
        i += 2;
        ++line;
        continue;
      }
      if (text[i] == '\n') return;  // leave newline for the main loop
      ++i;
    }
  };
  while (i < n) {
    char c = text[i];
    if (c == '\n') {
      ++line;
      at_line_start = true;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      size_t j = i + 2;
      while (j < n && text[j] != '\n') ++j;
      add_comment(line, text.substr(i + 2, j - i - 2));
      i = j;
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      size_t j = i + 2;
      int start = line;
      while (j + 1 < n && !(text[j] == '*' && text[j + 1] == '/')) {
        if (text[j] == '\n') ++line;
        ++j;
      }
      add_comment(start, text.substr(i + 2, j - i - 2));
      i = (j + 1 < n) ? j + 2 : n;
      at_line_start = false;
      continue;
    }
    if (c == '#' && at_line_start) {
      ++i;
      while (i < n && (text[i] == ' ' || text[i] == '\t')) ++i;
      size_t w = i;
      while (w < n && IdentChar(text[w])) ++w;
      std::string directive = text.substr(i, w - i);
      i = w;
      if (directive == "include") {
        while (i < n && text[i] != '"' && text[i] != '<' && text[i] != '\n')
          ++i;
        if (i < n && text[i] == '"') {
          size_t e = text.find('"', i + 1);
          if (e != std::string::npos) {
            pf->includes.push_back({text.substr(i + 1, e - i - 1), line});
            i = e + 1;
          }
        }
      } else if (directive == "define") {
        while (i < n && (text[i] == ' ' || text[i] == '\t')) ++i;
        size_t e = i;
        while (e < n && IdentChar(text[e])) ++e;
        if (e > i) {
          pf->toks.push_back({Token::kPunct, "#", line});
          pf->toks.push_back({Token::kIdent, "define", line});
          pf->toks.push_back({Token::kIdent, text.substr(i, e - i), line});
        }
        i = e;
      }
      skip_pp_line();
      at_line_start = false;
      continue;
    }
    at_line_start = false;
    if (c == '"' || (c == 'R' && i + 1 < n && text[i + 1] == '"' &&
                     (pf->toks.empty() || pf->toks.back().text != "R"))) {
      // String literal (raw strings handled below via the R branch).
      if (c == 'R') {
        // R"delim( ... )delim"
        size_t p = i + 2;
        size_t open = text.find('(', p);
        if (open == std::string::npos) {
          ++i;
          continue;
        }
        std::string delim = text.substr(p, open - p);
        std::string close = ")" + delim + "\"";
        size_t e = text.find(close, open + 1);
        size_t end = (e == std::string::npos) ? n : e + close.size();
        std::string body = text.substr(open + 1, (e == std::string::npos ? n : e) - open - 1);
        pf->toks.push_back({Token::kString, body, line});
        for (size_t k = i; k < end && k < n; ++k)
          if (text[k] == '\n') ++line;
        i = end;
        continue;
      }
      size_t j = i + 1;
      std::string body;
      while (j < n && text[j] != '"') {
        if (text[j] == '\\' && j + 1 < n) {
          body += text[j];
          body += text[j + 1];
          j += 2;
          continue;
        }
        if (text[j] == '\n') ++line;  // unterminated; be forgiving
        body += text[j];
        ++j;
      }
      pf->toks.push_back({Token::kString, body, line});
      i = j + 1;
      continue;
    }
    if (c == '\'') {
      size_t j = i + 1;
      while (j < n && text[j] != '\'') {
        if (text[j] == '\\' && j + 1 < n) {
          j += 2;
          continue;
        }
        ++j;
      }
      pf->toks.push_back({Token::kNumber, text.substr(i, j - i + 1), line});
      i = j + 1;
      continue;
    }
    if (IdentStart(c)) {
      size_t j = i;
      while (j < n && IdentChar(text[j])) ++j;
      pf->toks.push_back({Token::kIdent, text.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      while (j < n && (IdentChar(text[j]) || text[j] == '.' || text[j] == '\'' ||
                       ((text[j] == '+' || text[j] == '-') && j > i &&
                        (text[j - 1] == 'e' || text[j - 1] == 'E' ||
                         text[j - 1] == 'p' || text[j - 1] == 'P'))))
        ++j;
      pf->toks.push_back({Token::kNumber, text.substr(i, j - i), line});
      i = j;
      continue;
    }
    pf->toks.push_back({Token::kPunct, std::string(1, c), line});
    ++i;
  }
}

const std::set<std::string>& Keywords() {
  static const std::set<std::string> kw = {
      "alignas", "alignof", "auto", "bool", "break", "case", "catch", "char",
      "class", "const", "constexpr", "continue", "decltype", "default",
      "delete", "do", "double", "else", "enum", "explicit", "extern", "false",
      "final", "float", "for", "friend", "goto", "if", "inline", "int",
      "long", "mutable", "namespace", "new", "noexcept", "nullptr",
      "operator", "override", "private", "protected", "public", "return",
      "short", "signed", "sizeof", "static", "struct", "switch", "template",
      "this", "throw", "true", "try", "typedef", "typename", "union",
      "unsigned", "using", "virtual", "void", "volatile", "while"};
  return kw;
}

// ===================================================================
// Scope annotation: for every token, is it at namespace/type scope
// (where declarations live) or inside a function body, and which class
// "owns" the code here (for resolving unqualified member names).
// ===================================================================

struct Scope {
  enum Kind { kNamespace, kType, kOpaque };
  Kind kind;
  std::string type_name;  // innermost enclosing type
  std::string owner;      // class whose members are in unqualified scope
  bool transparent;       // every enclosing brace is namespace/type
  int parent;
};

struct ScopeAnn {
  std::vector<Scope> scopes;
  std::vector<int> of;  // per token: index into scopes
};

/// Matches the trailing `Qualifier::Name(` (or `Qualifier::~Name(`)
/// pattern inside a statement head; returns the qualifier or "".
std::string OwnerFromHead(const std::vector<Token>& t, size_t lo, size_t hi) {
  std::string owner;
  for (size_t p = lo; p + 3 < hi; ++p) {
    if (t[p].text != ":" || t[p + 1].text != ":") continue;
    if (p == lo || t[p - 1].kind != Token::kIdent) continue;
    size_t name = p + 2;
    if (name < hi && t[name].text == "~") ++name;
    if (name + 1 < hi && t[name].kind == Token::kIdent &&
        t[name + 1].text == "(")
      owner = t[p - 1].text;
  }
  return owner;
}

ScopeAnn AnnotateScopes(const std::vector<Token>& t) {
  ScopeAnn ann;
  ann.scopes.push_back({Scope::kNamespace, "", "", true, -1});
  ann.of.resize(t.size(), 0);
  int cur = 0;
  std::vector<int> stack{0};
  for (size_t i = 0; i < t.size(); ++i) {
    ann.of[i] = cur;
    if (t[i].text == "{" && t[i].kind == Token::kPunct) {
      // Statement head: tokens since the previous ; { or }.
      size_t lo = i;
      while (lo > 0) {
        const std::string& s = t[lo - 1].text;
        if (t[lo - 1].kind == Token::kPunct &&
            (s == ";" || s == "{" || s == "}"))
          break;
        --lo;
      }
      const Scope& enc = ann.scopes[cur];
      Scope sc;
      sc.parent = cur;
      bool is_ns = false, is_type = false;
      size_t kw_at = 0;
      for (size_t p = lo; p < i; ++p) {
        if (t[p].kind != Token::kIdent) continue;
        if (t[p].text == "namespace") {
          is_ns = true;
          break;
        }
        if (t[p].text == "class" || t[p].text == "struct" ||
            t[p].text == "union" || t[p].text == "enum") {
          is_type = true;
          kw_at = p;
          break;
        }
      }
      if (is_ns) {
        sc.kind = Scope::kNamespace;
        sc.type_name = "";
        sc.owner = "";
        sc.transparent = enc.transparent;
      } else if (is_type) {
        sc.kind = Scope::kType;
        std::string name;
        for (size_t p = kw_at + 1; p < i; ++p) {
          if (t[p].kind == Token::kPunct && t[p].text == "[") continue;
          if (t[p].kind == Token::kPunct && t[p].text == "]") continue;
          if (t[p].kind != Token::kIdent) break;
          if (t[p].text == "class" || t[p].text == "struct") continue;
          if (p + 1 < i && t[p + 1].text == "(") {
            // Macro attribute, e.g. `class BMR_CAPABILITY("mutex") Mutex`.
            int depth = 0;
            size_t q = p + 1;
            for (; q < i; ++q) {
              if (t[q].text == "(") ++depth;
              if (t[q].text == ")" && --depth == 0) break;
            }
            p = q;
            continue;
          }
          name = t[p].text;
          break;
        }
        sc.type_name = name;
        sc.owner = name;
        sc.transparent = enc.transparent;
      } else {
        sc.kind = Scope::kOpaque;
        sc.type_name = enc.type_name;
        std::string qual = OwnerFromHead(t, lo, i);
        sc.owner = qual.empty() ? enc.owner : qual;
        sc.transparent = false;
      }
      ann.scopes.push_back(sc);
      cur = static_cast<int>(ann.scopes.size()) - 1;
      stack.push_back(cur);
    } else if (t[i].text == "}" && t[i].kind == Token::kPunct) {
      if (stack.size() > 1) {
        stack.pop_back();
        cur = stack.back();
      }
      ann.of[i] = cur;
    }
  }
  return ann;
}

// ===================================================================
// Shared helpers
// ===================================================================

size_t MatchForward(const std::vector<Token>& t, size_t open,
                    const char* o = "(", const char* c = ")") {
  int depth = 0;
  for (size_t i = open; i < t.size(); ++i) {
    if (t[i].kind != Token::kPunct) continue;
    if (t[i].text == o) ++depth;
    if (t[i].text == c && --depth == 0) return i;
  }
  return t.size();
}

size_t MatchBackward(const std::vector<Token>& t, size_t close,
                     const char* o = "(", const char* c = ")") {
  int depth = 0;
  for (size_t i = close + 1; i-- > 0;) {
    if (t[i].kind != Token::kPunct) continue;
    if (t[i].text == c) ++depth;
    if (t[i].text == o && --depth == 0) return i;
  }
  return 0;
}

struct Ctx {
  std::vector<Pf> files;
  std::map<std::string, size_t> by_path;
  std::vector<Finding> findings;
  std::set<std::string> enabled;

  bool On(const std::string& check) const {
    return enabled.empty() || enabled.count(check) > 0;
  }

  const Pf* Paired(const Pf& f) const {
    if (f.is_header) return nullptr;
    std::string h = f.path.substr(0, f.path.size() - 3) + ".h";
    auto it = by_path.find(h);
    return it == by_path.end() ? nullptr : &files[it->second];
  }

  /// True (and swallows the finding) when an inline
  /// `// bmr_check:allow(<check>) reason` annotation covers `line`.
  bool Suppressed(const Pf& f, int line, const std::string& check) {
    for (int l : {line, line - 1}) {
      auto it = f.comments.find(l);
      if (it == f.comments.end()) continue;
      std::string needle = "bmr_check:allow(" + check + ")";
      size_t at = it->second.find(needle);
      if (at == std::string::npos) continue;
      std::string reason = it->second.substr(at + needle.size());
      size_t s = reason.find_first_not_of(" \t");
      if (s != std::string::npos) return true;
    }
    return false;
  }

  void Report(const std::string& check, const Pf& f, int line,
              std::string message) {
    if (Suppressed(f, line, check)) return;
    findings.push_back({check, f.path, line, std::move(message)});
  }
  void ReportGlobal(const std::string& check, std::string message) {
    findings.push_back({check, "(global)", 0, std::move(message)});
  }
};

/// Flags allow() annotations that carry no reason: a suppression with
/// no justification is itself a finding (any check's id).
void CheckAllowAnnotations(Ctx* ctx) {
  for (const Pf& f : ctx->files) {
    for (const auto& [line, text] : f.comments) {
      size_t at = text.find("bmr_check:allow(");
      if (at == std::string::npos) continue;
      size_t close = text.find(')', at);
      if (close == std::string::npos) continue;
      std::string rest = text.substr(close + 1);
      if (rest.find_first_not_of(" \t") == std::string::npos) {
        ctx->findings.push_back(
            {"allow", f.path, line,
             "bmr_check:allow() without a reason — every suppression "
             "must say why the violation is acceptable"});
      }
    }
  }
}

// ===================================================================
// Check: lock-order
// ===================================================================

struct LockDecl {
  std::string var;
  std::string lock;
  std::string cls;  // enclosing class ("" at namespace scope)
  const Pf* file;
  int line;
};

struct EdgeProv {
  std::string file;
  int line;
  bool annotated;  // true: BMR_ACQUIRED_AFTER; false: observed nesting
};

void CheckLockOrder(Ctx* ctx) {
  const std::string kCheck = "lock-order";
  std::vector<LockDecl> decls;
  // held -> acquiring, with provenance.
  std::map<std::pair<std::string, std::string>, EdgeProv> edges;

  // Pass 1: OrderedMutex declarations + BMR_ACQUIRED_AFTER annotations.
  for (const Pf& f : ctx->files) {
    ScopeAnn ann = AnnotateScopes(f.toks);
    const auto& t = f.toks;
    std::vector<std::string> pending;  // names from BMR_ACQUIRED_AFTER
    int pending_line = 0;
    for (size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != Token::kIdent) continue;
      if (t[i].text == "BMR_ACQUIRED_AFTER" && i + 1 < t.size() &&
          t[i + 1].text == "(") {
        size_t close = MatchForward(t, i + 1);
        std::vector<std::string> names;
        for (size_t p = i + 2; p < close; ++p)
          if (t[p].kind == Token::kString) names.push_back(t[p].text);
        if (!names.empty()) {
          pending = names;
          pending_line = t[i].line;
        }
        i = close;
        continue;
      }
      if (t[i].text != "OrderedMutex") continue;
      if (i + 3 >= t.size()) continue;
      if (t[i + 1].kind != Token::kIdent ||
          Keywords().count(t[i + 1].text) > 0)
        continue;
      const std::string& var = t[i + 1].text;
      if (t[i + 2].text != "{" && t[i + 2].text != "(") continue;
      if (t[i + 3].kind != Token::kString) continue;
      const std::string& lock = t[i + 3].text;
      decls.push_back({var, lock, ann.scopes[ann.of[i]].type_name, &f,
                       t[i].line});
      for (const std::string& after : pending) {
        auto key = std::make_pair(after, lock);
        if (edges.find(key) == edges.end())
          edges[key] = {f.path, pending_line, true};
      }
      pending.clear();
    }
    if (!pending.empty()) {
      ctx->Report(kCheck, f, pending_line,
                  "BMR_ACQUIRED_AFTER annotation is not followed by an "
                  "OrderedMutex declaration in this file");
    }
  }

  // Lookup tables for resolving a mutex variable name at a use site.
  std::map<std::string, std::vector<const LockDecl*>> by_var;
  for (const LockDecl& d : decls) by_var[d.var].push_back(&d);

  auto resolve = [&](const Pf& f, const std::string& owner,
                     const std::string& var,
                     bool single_ident) -> std::string {
    auto it = by_var.find(var);
    if (it == by_var.end()) return "";
    const std::vector<const LockDecl*>& cands = it->second;
    if (single_ident && !owner.empty()) {
      const Pf* paired = ctx->Paired(f);
      for (const LockDecl* d : cands) {
        if (d->cls == owner && (d->file == &f || d->file == paired))
          return d->lock;
      }
      // The owner class may be declared in any included header.
      for (const LockDecl* d : cands)
        if (d->cls == owner) return d->lock;
    }
    std::set<std::string> names;
    for (const LockDecl* d : cands) names.insert(d->lock);
    if (names.size() == 1) return *names.begin();
    return "";  // ambiguous — don't guess
  };

  // Pass 2: MutexLock nesting inside each file.
  for (const Pf& f : ctx->files) {
    ScopeAnn ann = AnnotateScopes(f.toks);
    const auto& t = f.toks;
    struct Held {
      int depth;
      std::string lock;  // "" when not an OrderedMutex
      std::string guard;
      int line;
    };
    std::vector<Held> held;
    int depth = 0;
    for (size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind == Token::kPunct) {
        if (t[i].text == "{") ++depth;
        if (t[i].text == "}") {
          --depth;
          while (!held.empty() && held.back().depth > depth)
            held.pop_back();
        }
        continue;
      }
      if (t[i].kind != Token::kIdent) continue;
      // guard.Unlock() releases early.
      if (i + 3 < t.size() && t[i + 1].text == "." &&
          t[i + 2].text == "Unlock" && t[i + 3].text == "(") {
        for (size_t h = held.size(); h-- > 0;) {
          if (held[h].guard == t[i].text) {
            held.erase(held.begin() + h);
            break;
          }
        }
        continue;
      }
      if (t[i].text != "MutexLock") continue;
      size_t j = i + 1;
      if (j < t.size() && t[j].text == "<")  // MutexLock<T> guard(...)
        j = MatchForward(t, j, "<", ">") + 1;
      if (j + 1 >= t.size() || t[j].kind != Token::kIdent ||
          t[j + 1].text != "(")
        continue;
      const std::string& guard = t[j].text;
      size_t close = MatchForward(t, j + 1);
      std::string var;
      size_t idents = 0;
      for (size_t p = j + 2; p < close; ++p) {
        if (t[p].kind == Token::kIdent && Keywords().count(t[p].text) == 0) {
          var = t[p].text;
          ++idents;
        }
      }
      if (var.empty()) continue;
      std::string lock =
          resolve(f, ann.scopes[ann.of[i]].owner, var, idents == 1);
      for (const Held& h : held) {
        if (h.lock.empty() || lock.empty()) continue;
        if (h.lock == lock) {
          ctx->Report(kCheck, f, t[i].line,
                      "lock '" + lock + "' acquired while already held "
                      "(recursive acquisition, guard at line " +
                          std::to_string(h.line) + ")");
          continue;
        }
        auto key = std::make_pair(h.lock, lock);
        if (edges.find(key) == edges.end())
          edges[key] = {f.path, t[i].line, false};
      }
      held.push_back({depth, lock, guard, t[i].line});
      i = close;
    }
  }

  // Cycle detection over the combined graph.
  std::map<std::string, std::vector<std::string>> adj;
  for (const auto& [key, prov] : edges) adj[key.first].push_back(key.second);
  std::set<std::vector<std::string>> reported;
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> stack;
  std::function<void(const std::string&)> dfs = [&](const std::string& u) {
    color[u] = 1;
    stack.push_back(u);
    for (const std::string& v : adj[u]) {
      if (color[v] == 1) {
        auto at = std::find(stack.begin(), stack.end(), v);
        std::vector<std::string> cycle(at, stack.end());
        auto mn = std::min_element(cycle.begin(), cycle.end());
        std::rotate(cycle.begin(), mn, cycle.end());
        if (reported.insert(cycle).second) {
          std::ostringstream msg;
          msg << "lock-order cycle: ";
          for (const std::string& c : cycle) msg << c << " -> ";
          msg << cycle.front() << "  [";
          for (size_t k = 0; k < cycle.size(); ++k) {
            const std::string& a = cycle[k];
            const std::string& b = cycle[(k + 1) % cycle.size()];
            const EdgeProv& p = edges.at({a, b});
            if (k) msg << "; ";
            msg << a << "->" << b << " "
                << (p.annotated ? "annotated at " : "nested at ") << p.file
                << ":" << p.line;
          }
          msg << "]";
          ctx->ReportGlobal(kCheck, msg.str());
        }
      } else if (color[v] == 0) {
        dfs(v);
      }
    }
    stack.pop_back();
    color[u] = 2;
  };
  for (const auto& [u, _] : adj)
    if (color[u] == 0) dfs(u);
}

// ===================================================================
// Check: layering (direction, include cycles, unused includes)
// ===================================================================

const std::map<std::string, std::set<std::string>>& AllowedDeps() {
  static const std::map<std::string, std::set<std::string>> allowed = {
      {"common", {"common"}},
      {"concurrency", {"concurrency", "common"}},
      {"obs", {"obs", "common", "concurrency"}},
      {"net", {"net", "common", "concurrency", "faults", "obs"}},
      {"sim", {"sim"}},
      {"cluster", {"cluster", "common"}},
      {"dfs", {"dfs", "common", "net"}},
      {"core", {"core", "common", "faults", "obs"}},
      {"faults", {"faults", "common"}},
      {"mr",
       {"mr", "cluster", "common", "concurrency", "core", "dfs", "faults",
        "net", "obs"}},
      {"workload", {"workload", "common", "mr"}},
      {"simmr", {"simmr", "cluster", "common", "core", "mr", "sim"}},
      {"apps", {"apps", "common", "core", "mr"}},
      {"service",
       {"service", "common", "concurrency", "mr", "obs", "cluster", "core",
        "dfs", "faults", "net"}},
  };
  return allowed;
}

/// Identifiers a header offers to its includers: type names, usings,
/// macros, and namespace/class-scope function and variable names.
std::set<std::string> ProvidedIdents(const Pf& f) {
  std::set<std::string> out;
  ScopeAnn ann = AnnotateScopes(f.toks);
  const auto& t = f.toks;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::kIdent) continue;
    // #define NAME
    if (t[i].text == "define" && i > 0 && t[i - 1].text == "#" &&
        i + 1 < t.size()) {
      out.insert(t[i + 1].text);
      ++i;
      continue;
    }
    if (!ann.scopes[ann.of[i]].transparent) continue;
    const std::string& s = t[i].text;
    if (s == "class" || s == "struct" || s == "union" || s == "enum") {
      for (size_t p = i + 1; p < t.size(); ++p) {
        if (t[p].kind == Token::kPunct &&
            (t[p].text == "[" || t[p].text == "]"))
          continue;
        if (t[p].kind != Token::kIdent) break;
        if (t[p].text == "class" || t[p].text == "struct") continue;
        if (p + 1 < t.size() && t[p + 1].text == "(") {
          p = MatchForward(t, p + 1);
          continue;
        }
        out.insert(t[p].text);
        break;
      }
      continue;
    }
    if (s == "using" && i + 2 < t.size() && t[i + 1].kind == Token::kIdent &&
        t[i + 2].text == "=") {
      out.insert(t[i + 1].text);
      continue;
    }
    if (Keywords().count(s) > 0) continue;
    if (i == 0) continue;
    const Token& prev = t[i - 1];
    bool type_tail = (prev.kind == Token::kIdent &&
                      Keywords().count(prev.text) == 0) ||
                     prev.text == ">" || prev.text == "*" || prev.text == "&" ||
                     (prev.kind == Token::kIdent &&
                      (prev.text == "bool" || prev.text == "void" ||
                       prev.text == "int" || prev.text == "double" ||
                       prev.text == "char" || prev.text == "auto"));
    if (!type_tail) continue;
    if (i + 1 >= t.size()) continue;
    const std::string& next = t[i + 1].text;
    if (next == "(" || next == "=" || next == ";" || next == "{")
      out.insert(s);
  }
  return out;
}

void CheckLayering(Ctx* ctx) {
  const std::string kCheck = "layering";
  static const std::set<std::string> kCoreExceptions = {"mr/types.h",
                                                        "mr/emitter.h"};
  // -- direction violations -----------------------------------------
  for (const Pf& f : ctx->files) {
    if (f.dir.empty()) continue;
    auto allowed_it = AllowedDeps().find(f.dir);
    if (allowed_it == AllowedDeps().end()) {
      ctx->Report(kCheck, f, 1,
                  "directory src/" + f.dir +
                      " is not in the layering DAG — add it to "
                      "AllowedDeps() in tools/bmr_check/analyzer.cc");
      continue;
    }
    for (const Inc& inc : f.includes) {
      size_t slash = inc.target.find('/');
      if (slash == std::string::npos) continue;
      std::string target_dir = inc.target.substr(0, slash);
      if (AllowedDeps().find(target_dir) == AllowedDeps().end()) continue;
      if (allowed_it->second.count(target_dir) > 0) continue;
      if (f.dir == "core" && kCoreExceptions.count(inc.target) > 0) continue;
      std::ostringstream allowed;
      for (const std::string& a : allowed_it->second) allowed << a << " ";
      ctx->Report(kCheck, f, inc.line,
                  "includes \"" + inc.target + "\" but src/" + f.dir +
                      " may only include: " + allowed.str());
    }
  }

  // -- include cycles (file-level graph over project includes) -------
  std::map<std::string, std::vector<std::pair<std::string, int>>> g;
  for (const Pf& f : ctx->files) {
    for (const Inc& inc : f.includes) {
      std::string target = "src/" + inc.target;
      if (ctx->by_path.count(target) > 0)
        g[f.path].push_back({target, inc.line});
    }
  }
  {
    std::map<std::string, int> color;
    std::vector<std::string> stack;
    std::set<std::vector<std::string>> reported;
    std::function<void(const std::string&)> dfs = [&](const std::string& u) {
      color[u] = 1;
      stack.push_back(u);
      for (const auto& [v, line] : g[u]) {
        if (color[v] == 1) {
          auto at = std::find(stack.begin(), stack.end(), v);
          std::vector<std::string> cycle(at, stack.end());
          auto mn = std::min_element(cycle.begin(), cycle.end());
          std::rotate(cycle.begin(), mn, cycle.end());
          if (reported.insert(cycle).second) {
            std::ostringstream msg;
            msg << "include cycle: ";
            for (const std::string& c : cycle) msg << c << " -> ";
            msg << cycle.front();
            ctx->ReportGlobal(kCheck, msg.str());
          }
        } else if (color[v] == 0) {
          dfs(v);
        }
      }
      stack.pop_back();
      color[u] = 2;
    };
    for (const auto& [u, _] : g)
      if (color[u] == 0) dfs(u);
  }

  // -- unused includes ----------------------------------------------
  std::map<std::string, std::set<std::string>> provided_cache;
  for (const Pf& f : ctx->files) {
    std::set<std::string> used;
    for (const Token& tok : f.toks)
      if (tok.kind == Token::kIdent) used.insert(tok.text);
    for (const Inc& inc : f.includes) {
      std::string target = "src/" + inc.target;
      auto it = ctx->by_path.find(target);
      if (it == ctx->by_path.end()) continue;
      const Pf& h = ctx->files[it->second];
      if (!f.is_header && h.dir == f.dir && h.stem == f.stem)
        continue;  // paired header: always legitimate
      auto cached = provided_cache.find(target);
      if (cached == provided_cache.end())
        cached = provided_cache.emplace(target, ProvidedIdents(h)).first;
      const std::set<std::string>& provided = cached->second;
      if (provided.empty()) continue;  // nothing to judge by
      bool referenced = false;
      for (const std::string& p : provided) {
        if (used.count(p) > 0) {
          referenced = true;
          break;
        }
      }
      if (!referenced) {
        ctx->Report(kCheck, f, inc.line,
                    "includes \"" + inc.target +
                        "\" but references none of its declarations — "
                        "stale include (or a transitive-include "
                        "dependency that should be direct)");
      }
    }
  }
}

// ===================================================================
// Checks: status-discard (.cc) and nodiscard (headers)
// ===================================================================

struct StatusDecls {
  std::set<std::string> returners;    // names of Status/StatusOr returners
  std::set<std::string> non_status;   // same-name decls with other returns
};

bool TypeKeyword(const std::string& s) {
  return s == "void" || s == "bool" || s == "int" || s == "unsigned" ||
         s == "long" || s == "short" || s == "float" || s == "double" ||
         s == "char" || s == "auto" || s == "size_t" || s == "uint64_t" ||
         s == "uint32_t" || s == "int64_t" || s == "int32_t";
}

/// Collects declarations `T Name(` with T not Status/StatusOr, at
/// namespace/type scope (no statements live there, so the shape really
/// is a declaration).  A name in both sets is ambiguous and the
/// status-discard check skips it rather than guessing the callee.
void ScanNonStatusDecls(const Pf& f, StatusDecls* out) {
  ScopeAnn ann = AnnotateScopes(f.toks);
  const auto& t = f.toks;
  for (size_t i = 1; i + 1 < t.size(); ++i) {
    if (t[i].kind != Token::kIdent || t[i + 1].text != "(") continue;
    if (Keywords().count(t[i].text) > 0) continue;
    if (!ann.scopes[ann.of[i]].transparent) continue;
    // Walk back over an optional Qual:: chain to the return type slot.
    size_t q = i;
    while (q >= 3 && t[q - 1].text == ":" && t[q - 2].text == ":" &&
           t[q - 3].kind == Token::kIdent)
      q -= 3;
    if (q == 0) continue;
    const Token& ty = t[q - 1];
    bool type_tail =
        ty.text == ">" || ty.text == "*" || ty.text == "&" ||
        (ty.kind == Token::kIdent &&
         (TypeKeyword(ty.text) || Keywords().count(ty.text) == 0));
    if (!type_tail) continue;
    if (ty.text == "Status" || ty.text == "StatusOr") continue;
    // `>` must close a template (e.g. std::vector<T> f()), and the
    // template head must not be StatusOr.
    if (ty.text == ">") {
      size_t open = MatchBackward(t, q - 1, "<", ">");
      if (open == 0 || t[open - 1].text == "StatusOr") continue;
    }
    out->non_status.insert(t[i].text);
  }
}

/// Scans declarations shaped `Status Name(` / `StatusOr<T> Name(`
/// (multi-line friendly: the lexer already joined lines).  Also drives
/// the nodiscard check when `f` is a header.
void ScanStatusDecls(Ctx* ctx, const Pf& f, StatusDecls* out,
                     bool check_nodiscard) {
  const std::string kCheck = "nodiscard";
  ScopeAnn ann = AnnotateScopes(f.toks);
  const auto& t = f.toks;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::kIdent) continue;
    if (t[i].text != "Status" && t[i].text != "StatusOr") continue;
    size_t j = i + 1;
    if (t[i].text == "StatusOr") {
      if (j >= t.size() || t[j].text != "<") continue;
      j = MatchForward(t, j, "<", ">") + 1;
    }
    if (j >= t.size()) continue;
    if (t[j].text == "*" || t[j].text == "&") continue;  // not by-value
    // Optional qualified name: Name or Qual::Name — record the last
    // ident before '('.
    size_t name_at = 0;
    size_t p = j;
    while (p + 1 < t.size() && t[p].kind == Token::kIdent &&
           Keywords().count(t[p].text) == 0) {
      if (t[p + 1].text == "(") {
        name_at = p;
        break;
      }
      if (p + 2 < t.size() && t[p + 1].text == ":" && t[p + 2].text == ":")
        p += 3;
      else
        break;
    }
    if (name_at == 0) continue;
    bool qualified = name_at != j;
    // Reject call-ish contexts: `Status` here must start a declaration,
    // i.e. the preceding token is not part of an expression.
    if (i > 0) {
      const std::string& prev = t[i - 1].text;
      if (prev == "return" || prev == "=" || prev == "(" || prev == "," ||
          prev == "<" || prev == "new")
        continue;
    }
    out->returners.insert(t[name_at].text);

    if (!check_nodiscard || !f.is_header) continue;
    if (qualified) continue;  // out-of-class definition; decl carries it
    if (!ann.scopes[ann.of[i]].transparent) continue;  // local variable
    // The parameter list must be followed by declaration tail tokens —
    // weeds out constructor calls that happen to look like decls.
    size_t close = MatchForward(t, name_at + 1);
    if (close + 1 < t.size()) {
      const std::string& tail = t[close + 1].text;
      bool decl_tail = tail == ";" || tail == "{" || tail == "const" ||
                       tail == "override" || tail == "final" ||
                       tail == "noexcept" || tail == "=" || tail == "&" ||
                       (t[close + 1].kind == Token::kIdent &&
                        tail.rfind("BMR_", 0) == 0);
      if (!decl_tail) continue;
    }
    // Walk back over the (possibly qualified) return type, then over
    // specifiers, looking for a [[nodiscard]] attribute group.
    size_t q = i;
    while (q >= 3 && t[q - 1].text == ":" && t[q - 2].text == ":" &&
           t[q - 3].kind == Token::kIdent)
      q -= 3;
    bool has = false;
    size_t b = q;
    while (b > 0) {
      const Token& pv = t[b - 1];
      if (pv.kind == Token::kIdent &&
          (pv.text == "static" || pv.text == "virtual" ||
           pv.text == "inline" || pv.text == "explicit" ||
           pv.text == "friend" || pv.text == "constexpr")) {
        --b;
        continue;
      }
      if (pv.text == "]" && b >= 2 && t[b - 2].text == "]") {
        size_t open = MatchBackward(t, b - 1, "[", "]");
        for (size_t k = open; k < b; ++k)
          if (t[k].text == "nodiscard") has = true;
        b = open;
        continue;
      }
      break;
    }
    if (!has) {
      ctx->Report(kCheck, f, t[i].line,
                  "Status/StatusOr returner '" + t[name_at].text +
                      "' declared in a header without [[nodiscard]]");
    }
  }
}

void CheckStatusDiscard(Ctx* ctx, const StatusDecls& decls) {
  const std::string kCheck = "status-discard";
  for (const Pf& f : ctx->files) {
    if (f.is_header) continue;
    const auto& t = f.toks;
    for (size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != Token::kIdent) continue;
      if (decls.returners.count(t[i].text) == 0) continue;
      // Names also declared with a non-Status return type somewhere in
      // the tree are ambiguous without real type resolution — skip.
      if (decls.non_status.count(t[i].text) > 0) continue;
      if (i + 1 >= t.size() || t[i + 1].text != "(") continue;
      size_t close = MatchForward(t, i + 1);
      if (close + 1 >= t.size() || t[close + 1].text != ";") continue;
      // Walk back to the start of the postfix chain: a.b->c::d(...)
      size_t s = i;
      bool bail = false;
      while (s > 0 && !bail) {
        size_t p;
        if (t[s - 1].text == ".")
          p = s - 2;
        else if (s >= 2 && t[s - 1].text == ">" && t[s - 2].text == "-")
          p = s - 3;
        else if (s >= 2 && t[s - 1].text == ":" && t[s - 2].text == ":")
          p = s - 3;
        else
          break;
        if (p + 1 == 0 || p >= t.size()) break;
        if (t[p].kind == Token::kIdent) {
          s = p;
        } else if (t[p].text == ")") {
          size_t open = MatchBackward(t, p);
          if (open > 0 && t[open - 1].kind == Token::kIdent &&
              Keywords().count(t[open - 1].text) == 0) {
            s = open - 1;  // `maker(x).Use()` — chain starts at maker
          } else {
            s = open;  // `(*writer)->Close()` — chain starts at the paren
            break;
          }
        } else {
          bail = true;
        }
      }
      if (bail || s == 0) continue;
      const Token& before = t[s - 1];
      bool discarded = false;
      if (before.text == ";" || before.text == "{" || before.text == "}" ||
          before.text == "else" || before.text == "do") {
        discarded = true;
      } else if (before.text == ")") {
        size_t open = MatchBackward(t, s - 1);
        // `(void) call();` — allowed only with a same-line reason
        // comment; `if (...) call();` — a discarded statement.
        if (open + 2 == s - 1 && t[open + 1].text == "void") {
          // The reason comment may trail any line of the (possibly
          // wrapped) statement, `(void)` through `;`.
          bool has_reason = false;
          for (int line = t[open].line; line <= t[close + 1].line; ++line) {
            auto it = f.comments.find(line);
            if (it != f.comments.end() &&
                it->second.find_first_not_of(" \t") != std::string::npos) {
              has_reason = true;
              break;
            }
          }
          if (!has_reason) {
            ctx->Report(kCheck, f, t[i].line,
                        "(void)-discarded Status from '" + t[i].text +
                            "' without a same-line reason comment");
          }
          continue;
        }
        if (open > 0 && t[open - 1].kind == Token::kIdent) {
          const std::string& kw = t[open - 1].text;
          if (kw == "if" || kw == "for" || kw == "while" || kw == "switch")
            discarded = true;
        }
      }
      if (discarded) {
        ctx->Report(kCheck, f, t[i].line,
                    "result of Status-returning call '" + t[i].text +
                        "' is discarded — consume it, propagate it, or "
                        "(void)-cast with a reason comment");
      }
    }
  }
}

// ===================================================================
// Check: metric-registry
// ===================================================================

bool IsRegistryFile(const Pf& f) {
  return f.path == "src/obs/metric_names.h" || f.path == "src/mr/types.h";
}

/// Subsystems allowed in bmr_<subsystem>_... series names (GUIDE §10).
/// A new family (like arena/codec in PR 8) is registered by adding its
/// subsystem here — a name outside the list is a taxonomy typo.
const std::set<std::string>& MetricSubsystems() {
  static const std::set<std::string> subsystems = {
      "arena", "codec",  "faults",  "job", "net",     "obs",
      "output", "reduce", "reducer", "rpc", "service", "shuffle",
      "store"};
  return subsystems;
}

void CheckMetricRegistry(Ctx* ctx) {
  const std::string kCheck = "metric-registry";
  struct Constant {
    const Pf* file;
    int line;
    std::string value;
  };
  std::map<std::string, Constant> registry;
  for (const Pf& f : ctx->files) {
    if (!IsRegistryFile(f)) continue;
    const auto& t = f.toks;
    for (size_t i = 0; i + 2 < t.size(); ++i) {
      if (t[i].kind != Token::kIdent || t[i].text[0] != 'k') continue;
      if (t[i + 1].text != "=" || t[i + 2].kind != Token::kString) continue;
      registry[t[i].text] = {&f, t[i].line, t[i + 2].text};
    }
  }
  if (registry.empty()) return;

  // Name-format validation: every bmr_-prefixed series name must be
  // bmr_<subsystem>_<name>_<unit> with a known subsystem and unit.
  // Raw counter names, span labels (no bmr_ prefix) and prefix
  // constants (trailing '_') are exempt; a {label="..."} suffix is
  // stripped before validation.
  static const std::set<std::string> kUnits = {"us", "bytes", "seconds",
                                               "total"};
  for (const auto& [name, def] : registry) {
    std::string v = def.value;
    if (v.rfind("bmr_", 0) != 0) continue;
    if (!v.empty() && v.back() == '_') continue;  // family prefix
    size_t brace = v.find('{');
    if (brace != std::string::npos) v = v.substr(0, brace);
    bool well_formed = !v.empty();
    for (char c : v) {
      if (!(std::islower(static_cast<unsigned char>(c)) ||
            std::isdigit(static_cast<unsigned char>(c)) || c == '_'))
        well_formed = false;
    }
    if (!well_formed) {
      ctx->Report(kCheck, *def.file, def.line,
                  "metric name \"" + def.value + "\" ('" + name +
                      "') has characters outside [a-z0-9_]");
      continue;
    }
    size_t sub_end = v.find('_', 4);
    std::string subsystem =
        sub_end == std::string::npos ? "" : v.substr(4, sub_end - 4);
    if (MetricSubsystems().count(subsystem) == 0) {
      ctx->Report(kCheck, *def.file, def.line,
                  "metric name \"" + v + "\" ('" + name +
                      "') has unknown subsystem '" + subsystem +
                      "' — bmr_<subsystem>_<name>_<unit>, subsystems "
                      "listed in MetricSubsystems() "
                      "(tools/bmr_check/analyzer.cc)");
    }
    size_t unit_at = v.find_last_of('_');
    std::string unit =
        unit_at == std::string::npos ? "" : v.substr(unit_at + 1);
    if (kUnits.count(unit) == 0) {
      ctx->Report(kCheck, *def.file, def.line,
                  "metric name \"" + v + "\" ('" + name +
                      "') does not end in a unit suffix "
                      "(us, bytes, seconds, total)");
    }
  }

  // Recording sites: the metric-name argument must be a registered
  // constant (an identifier the exporters and this check can resolve),
  // never a string literal and never an unregistered k-constant.
  static const std::map<std::string, int> kNameArg = {
      {"AddCounter", 0},    {"RecordLatency", 0}, {"MergeHistogram", 0},
      {"LatencyTimer", 1},  {"ScopedSpan", 1},
  };
  std::set<std::string> referenced;
  for (const Pf& f : ctx->files) {
    const auto& t = f.toks;
    for (const Token& tok : t)
      if (tok.kind == Token::kIdent && !IsRegistryFile(f) &&
          registry.count(tok.text) > 0)
        referenced.insert(tok.text);
    // The definition files of the recording API are not call sites.
    if (f.path == "src/mr/metrics.h" || f.path == "src/mr/metrics.cc" ||
        f.path == "src/obs/trace.h" || f.path == "src/obs/trace.cc")
      continue;
    for (size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != Token::kIdent) continue;
      auto site = kNameArg.find(t[i].text);
      if (site == kNameArg.end()) continue;
      size_t open;
      if (site->second == 0) {
        if (i + 1 >= t.size() || t[i + 1].text != "(") continue;
        open = i + 1;
      } else {
        // `LatencyTimer timer(tracer, kName)` — declaration-with-var
        // shape; the name is the second argument.
        if (i + 2 >= t.size() || t[i + 1].kind != Token::kIdent ||
            t[i + 2].text != "(")
          continue;
        open = i + 2;
      }
      size_t close = MatchForward(t, open);
      // Split top-level arguments.
      std::vector<std::pair<size_t, size_t>> args;
      int depth = 0;
      size_t start = open + 1;
      for (size_t p = open + 1; p <= close && p < t.size(); ++p) {
        if (t[p].kind == Token::kPunct) {
          if (t[p].text == "(" || t[p].text == "[" || t[p].text == "{")
            ++depth;
          if (t[p].text == ")" || t[p].text == "]" || t[p].text == "}")
            --depth;
        }
        bool at_end = (p == close);
        if ((t[p].text == "," && depth == 0 && t[p].kind == Token::kPunct) ||
            at_end) {
          if (p > start) args.push_back({start, p});
          start = p + 1;
        }
      }
      size_t arg_index = static_cast<size_t>(site->second);
      if (args.size() <= arg_index) continue;
      auto [lo, hi] = args[arg_index];
      if (hi - lo == 1 && t[lo].kind == Token::kString) {
        ctx->Report(kCheck, f, t[lo].line,
                    "string-literal metric name \"" + t[lo].text + "\" at a " +
                        t[i].text +
                        " site — use a registry constant "
                        "(obs/metric_names.h, mr/types.h)");
        continue;
      }
      for (size_t p = lo; p < hi; ++p) {
        if (t[p].kind != Token::kIdent || t[p].text[0] != 'k') continue;
        if (t[p].text.size() < 2 || !std::isupper(static_cast<unsigned char>(
                                        t[p].text[1])))
          continue;
        if (registry.count(t[p].text) == 0) {
          ctx->Report(kCheck, f, t[p].line,
                      "metric constant '" + t[p].text +
                          "' is not registered in obs/metric_names.h / "
                          "mr/types.h — typo or missing registration");
        }
      }
    }
  }

  for (const auto& [name, def] : registry) {
    if (referenced.count(name) > 0) continue;
    ctx->Report(kCheck, *def.file, def.line,
                "metric constant '" + name +
                    "' is registered but never referenced by any "
                    "recording or export site — dead series");
  }
}

}  // namespace

// ===================================================================
// Public API
// ===================================================================

const std::vector<std::string>& AllCheckIds() {
  static const std::vector<std::string> ids = {
      "lock-order", "layering", "status-discard", "nodiscard",
      "metric-registry"};
  return ids;
}

std::vector<Finding> Analyze(const std::vector<FileContent>& files,
                             const Options& options) {
  Ctx ctx;
  ctx.enabled = options.checks;
  for (const FileContent& fc : files) {
    Pf pf;
    pf.path = fc.path;
    pf.is_header = fc.path.size() > 2 &&
                   fc.path.compare(fc.path.size() - 2, 2, ".h") == 0;
    if (fc.path.rfind("src/", 0) == 0) {
      size_t slash = fc.path.find('/', 4);
      if (slash != std::string::npos) pf.dir = fc.path.substr(4, slash - 4);
    }
    size_t base = fc.path.find_last_of('/');
    std::string name =
        base == std::string::npos ? fc.path : fc.path.substr(base + 1);
    size_t dot = name.find_last_of('.');
    pf.stem = dot == std::string::npos ? name : name.substr(0, dot);
    Lex(fc.text, &pf);
    ctx.files.push_back(std::move(pf));
  }
  for (size_t i = 0; i < ctx.files.size(); ++i)
    ctx.by_path[ctx.files[i].path] = i;

  CheckAllowAnnotations(&ctx);
  if (ctx.On("lock-order")) CheckLockOrder(&ctx);
  if (ctx.On("layering")) CheckLayering(&ctx);
  StatusDecls decls;
  if (ctx.On("status-discard") || ctx.On("nodiscard")) {
    for (const Pf& f : ctx.files)
      ScanStatusDecls(&ctx, f, &decls, ctx.On("nodiscard"));
  }
  if (ctx.On("status-discard")) {
    for (const Pf& f : ctx.files) ScanNonStatusDecls(f, &decls);
    CheckStatusDiscard(&ctx, decls);
  }
  if (ctx.On("metric-registry")) CheckMetricRegistry(&ctx);

  std::sort(ctx.findings.begin(), ctx.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.check, a.message) <
                     std::tie(b.file, b.line, b.check, b.message);
            });
  return ctx.findings;
}

std::vector<FileContent> LoadTree(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<FileContent> out;
  fs::path src = fs::path(root) / "src";
  if (!fs::exists(src)) return out;
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file()) continue;
    std::string ext = entry.path().extension().string();
    if (ext != ".h" && ext != ".cc") continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string rel = fs::relative(entry.path(), fs::path(root)).string();
    out.push_back({rel, ss.str()});
  }
  std::sort(out.begin(), out.end(),
            [](const FileContent& a, const FileContent& b) {
              return a.path < b.path;
            });
  return out;
}

std::string FormatFindings(const std::vector<Finding>& findings) {
  std::vector<Finding> sorted = findings;
  std::sort(sorted.begin(), sorted.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.check, a.message) <
                     std::tie(b.file, b.line, b.check, b.message);
            });
  std::ostringstream os;
  for (const Finding& f : sorted) {
    os << f.file;
    if (f.line > 0) os << ":" << f.line;
    os << ": [" << f.check << "] " << f.message << "\n";
  }
  return os.str();
}

}  // namespace bmr_check
