// bmr_check CLI — run the repo's static analyzer (docs/GUIDE.md §12).
//
//   bmr_check [--root=DIR] [--check=a,b,...] [--list]
//
// Exit status: 0 when every enabled check is clean, 1 when findings
// were reported, 2 on usage errors.  `scripts/check.sh analyze` builds
// and runs this before anything else in `check.sh all`.
#include <cstdio>
#include <cstring>
#include <string>

#include "analyzer.h"

int main(int argc, char** argv) {
  std::string root = ".";
  bmr_check::Options options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg.rfind("--check=", 0) == 0) {
      std::string list = arg.substr(8);
      size_t pos = 0;
      while (pos != std::string::npos) {
        size_t comma = list.find(',', pos);
        std::string id = list.substr(
            pos, comma == std::string::npos ? std::string::npos : comma - pos);
        if (!id.empty()) options.checks.insert(id);
        pos = comma == std::string::npos ? comma : comma + 1;
      }
    } else if (arg == "--list") {
      for (const std::string& id : bmr_check::AllCheckIds())
        std::printf("%s\n", id.c_str());
      return 0;
    } else {
      std::fprintf(stderr,
                   "usage: bmr_check [--root=DIR] [--check=a,b,...] [--list]\n");
      return 2;
    }
  }
  for (const std::string& id : options.checks) {
    bool known = false;
    for (const std::string& all : bmr_check::AllCheckIds())
      if (all == id) known = true;
    if (!known) {
      std::fprintf(stderr, "bmr_check: unknown check '%s' (see --list)\n",
                   id.c_str());
      return 2;
    }
  }

  std::vector<bmr_check::FileContent> files = bmr_check::LoadTree(root);
  if (files.empty()) {
    std::fprintf(stderr, "bmr_check: no src/**/*.{h,cc} under '%s'\n",
                 root.c_str());
    return 2;
  }
  std::vector<bmr_check::Finding> findings =
      bmr_check::Analyze(files, options);
  if (!findings.empty()) {
    std::string report = bmr_check::FormatFindings(findings);
    std::fwrite(report.data(), 1, report.size(), stderr);
    std::fprintf(stderr, "bmr_check: %zu finding(s)\n", findings.size());
    return 1;
  }
  size_t nchecks = options.checks.empty() ? bmr_check::AllCheckIds().size()
                                          : options.checks.size();
  std::printf("bmr_check: OK (%zu files, %zu checks)\n", files.size(),
              nchecks);
  return 0;
}
