// bmr_check — a lightweight static analyzer for the repo's structural
// invariants (docs/GUIDE.md §12).  It is deliberately self-contained
// (standard library only, no libclang) so it builds and runs on the
// GCC-only container in well under a second, early enough to gate the
// rest of `check.sh all`.
//
// The analyzer lexes src/**/*.{h,cc} (comments and string literals
// understood, preprocessor lines handled) and runs graph-level checks
// the grep/awk lint gate could not express:
//
//   lock-order       the acquires-after relation — BMR_ACQUIRED_AFTER
//                    annotations plus MutexLock nesting inside function
//                    bodies resolved against OrderedMutex declarations —
//                    must stay acyclic, transitively, before any test
//                    runs.  Self-acquisition is flagged too.
//   layering         a real include graph: direction violations against
//                    the dependency DAG, include cycles among project
//                    headers, and headers included but never referenced.
//   status-discard   a call to a Status/StatusOr returner used as a bare
//                    expression statement in a .cc file silently drops
//                    the error ([[nodiscard]] only fires when the
//                    declaration is visible and annotated); `(void)`
//                    casts must carry a same-line reason comment.
//   nodiscard        every Status/StatusOr returner declared in a header
//                    carries [[nodiscard]] — including declarations whose
//                    return type and name sit on different lines, which
//                    the old awk scan missed.
//   metric-registry  every constant in obs/metric_names.h / mr/types.h
//                    is recorded at >=1 site and every recording site
//                    resolves to a registered constant (dead series and
//                    typo'd names both fail).  Registered bmr_* names
//                    must also follow the GUIDE §10 taxonomy —
//                    bmr_<subsystem>_<name>_<unit> with a known
//                    subsystem (arena, codec, job, ...) and unit
//                    (us/bytes/seconds/total).
//
// Suppression: a finding is silenced by an inline annotation on the
// same or the preceding line —
//     // bmr_check:allow(<check>) <non-empty reason>
// The reason is mandatory; an allow() with no justification is itself a
// finding.
#pragma once

#include <set>
#include <string>
#include <vector>

namespace bmr_check {

struct Finding {
  std::string check;    // "lock-order", "layering", ...
  std::string file;     // path as given (repo-relative in CLI use)
  int line = 0;         // 1-based; 0 when the finding is graph-global
  std::string message;
};

struct FileContent {
  std::string path;  // repo-relative, e.g. "src/mr/engine.cc"
  std::string text;
};

struct Options {
  // Empty = run every check.  Otherwise the subset to run, by id.
  std::set<std::string> checks;
};

/// All check ids, in report order.
const std::vector<std::string>& AllCheckIds();

/// Runs the selected checks over an in-memory tree.  Paths decide the
/// role of each file (header vs translation unit, directory layer), so
/// fixtures in tests use the same "src/<dir>/<name>" shape as the repo.
std::vector<Finding> Analyze(const std::vector<FileContent>& files,
                             const Options& options);

/// Loads src/**/*.h and src/**/*.cc under `root` (paths returned
/// relative to it).  Missing tree => empty vector.
std::vector<FileContent> LoadTree(const std::string& root);

/// One "file:line: [check] message" line per finding, sorted.
std::string FormatFindings(const std::vector<Finding>& findings);

}  // namespace bmr_check
