// Map-task scheduling, extracted from the old monolithic JobExecution:
// data-local placement with least-loaded tie-break, per-task attempt
// tracking, retry placement that excludes the failed node, and
// Hadoop-0.20-style speculative execution of straggler map tasks
// (backup attempts; the first attempt to commit wins, the loser's
// output is discarded).
#pragma once

#include <vector>

#include "cluster/cluster.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "mr/input.h"

namespace bmr::mr {

struct TaskSchedulerOptions {
  /// Launch backup attempts for straggler map tasks.
  bool speculative = false;
  /// A running attempt is a straggler once its runtime exceeds
  /// `slowness` x the median runtime of completed map attempts.
  double slowness = 1.5;
  /// Never speculate an attempt younger than this many seconds
  /// (guards against speculating everything on a cold start).
  double min_runtime = 0.05;
  /// Original + at most one backup, as in Hadoop 0.20.
  int max_attempts = 2;
};

class TaskScheduler {
 public:
  using Options = TaskSchedulerOptions;

  /// One scheduled execution of one map task.
  struct Attempt {
    int task = -1;
    int id = -1;    // per-task attempt ordinal, 0 = original
    int node = -1;  // -1 = no node available
    bool speculative = false;
  };

  TaskScheduler(const cluster::ClusterSpec& cluster,
                const std::vector<InputSplit>* splits, Options options = {});

  /// Data-local placement: least-loaded among the split's replica
  /// holders, then least-loaded slave overall; `exclude` (a failed or
  /// already-running node) is never chosen.  Bumps the chosen node's
  /// load; placement-only callers must pair with ReleaseNode.
  int PickNode(const InputSplit& split, int exclude = -1) BMR_EXCLUDES(mu_);
  void ReleaseNode(int node) BMR_EXCLUDES(mu_);

  /// Plan a new attempt of `task` on a node other than `exclude_node`
  /// (pass the failed node for retries, -1 for first launches).  If
  /// excluding leaves no candidate (single-slave cluster relaunch),
  /// the exclusion is dropped and the task reruns in place: the node
  /// lost the output but is still alive.
  Attempt Assign(int task, int exclude_node = -1) BMR_EXCLUDES(mu_);

  /// The attempt started running at `now` (call from the worker, not
  /// at submit time, so pool queueing does not count as runtime).
  void Begin(const Attempt& attempt, double now) BMR_EXCLUDES(mu_);

  /// First committer of a task wins; a false return means another
  /// attempt already committed and the caller must discard its output.
  [[nodiscard]] bool TryCommit(const Attempt& attempt) BMR_EXCLUDES(mu_);

  /// The attempt stopped running (after winning, losing, or erroring).
  /// Idempotent per attempt: the load slot taken at Assign time is
  /// released exactly once no matter how many paths report the end.
  void Finish(const Attempt& attempt, double now) BMR_EXCLUDES(mu_);

  /// The task's committed output was lost (node death discovered by a
  /// fetcher): clear the commit so a retry attempt can commit again.
  void ReopenTask(int task) BMR_EXCLUDES(mu_);

  /// Straggler scan: returns newly planned backup attempts (already
  /// assigned to nodes); the caller submits them for execution.  Each
  /// task is backed up at most once per commit generation.
  std::vector<Attempt> PollSpeculation(double now) BMR_EXCLUDES(mu_);

  bool AllCommitted() const BMR_EXCLUDES(mu_);

  // Introspection (tests, metrics).
  int attempts_started(int task) const BMR_EXCLUDES(mu_);
  int load(int node) const BMR_EXCLUDES(mu_);

 private:
  int PickNodeLocked(const InputSplit& split, int exclude) BMR_REQUIRES(mu_);

  struct AttemptState {
    int node = -1;
    double begin = -1;  // <0: queued, not yet running
    double end = -1;    // <0: still running or queued
    bool speculative = false;
    // The attempt's load slot has been given back.  Guards Finish so
    // mixed commit/lost/speculative flows release each slot exactly
    // once, never twice.
    bool released = false;
  };
  struct TaskState {
    std::vector<AttemptState> attempts;
    bool committed = false;
  };

  const std::vector<InputSplit>* splits_;
  std::vector<int> slaves_;
  std::vector<bool> is_master_;
  Options options_;

  mutable OrderedMutex mu_{"mr.task_scheduler"};
  std::vector<TaskState> tasks_ BMR_GUARDED_BY(mu_);
  // Queued + running attempts per node.
  std::vector<int> node_load_ BMR_GUARDED_BY(mu_);
  std::vector<double> completed_durations_ BMR_GUARDED_BY(mu_);
};

}  // namespace bmr::mr
