// JobMetrics → obs adapter: turns the engine/simmr reporting schema
// into the plain structures the obs exporters consume, so one pipeline
// renders real and simulated runs (ISSUE 5 tentpole piece 3).
#pragma once

#include <string>

#include "common/status.h"
#include "mr/metrics.h"
#include "obs/export.h"
#include "obs/span.h"

namespace bmr::mr {

/// Build the full trace view of a run: the tracer's fine-grained spans
/// (when the run had obs.trace=on), plus one span lane per task-phase
/// TaskEvent (pid 2 — present for every run, including simmr, whose
/// "trace" is exactly its simulated timeline), plus the reducer heap
/// samples as Perfetto counter tracks.
obs::TraceLog BuildTraceLog(const JobMetrics& m);

/// Build the Prometheus-facing snapshot: engine counters verbatim
/// (PrometheusText applies the naming policy, incl. the
/// fault_injected_<kind> → labeled-family mapping), the latency
/// histograms, and job-level gauges (elapsed, map-done marks, peak
/// reducer heap).
obs::MetricsSnapshot BuildMetricsSnapshot(const JobMetrics& m);

/// Convenience: serialize + self-validate both artifacts.
[[nodiscard]] Status WriteTraceArtifacts(const JobMetrics& m,
                                         const std::string& trace_json_path,
                                         const std::string& prom_text_path);

}  // namespace bmr::mr
