#include "mr/encoding_pipeline.h"

#include <cstring>

#include "common/arena.h"
#include "obs/metric_names.h"

namespace bmr::mr {

EncodingPipeline::EncodingPipeline(Options options)
    : options_(options),
      pool_(std::make_unique<ThreadPool>(
          options.threads > 0 ? static_cast<size_t>(options.threads) : 1)) {}

EncodingPipeline::~EncodingPipeline() {
  // Open the window for producers parked in Submit, then wait for them
  // to be admitted AND encoded.  Without this, Drain below would see
  // pending_jobs_ == 0, return, and free the pool and this object
  // under a Submit still blocked on window_open_.
  {
    MutexLock lock(mu_);
    closed_ = true;
  }
  window_open_.NotifyAll();
  Drain();
}

void EncodingPipeline::Submit(std::vector<std::string> segments, DoneFn done) {
  uint64_t raw_bytes = 0;
  for (const std::string& s : segments) raw_bytes += s.size();
  {
    MutexLock lock(mu_);
    ++submitting_;
    // Admit when the window has room — or unconditionally when the
    // pipeline is idle, so one oversized task cannot wedge forever —
    // or at shutdown, when the window stops gating so this producer
    // drains through (the overshoot is bounded by the producers
    // already in flight).
    while (!closed_ && pending_bytes_ != 0 &&
           pending_bytes_ + raw_bytes > options_.window_bytes) {
      window_open_.Wait(mu_);
    }
    pending_bytes_ += raw_bytes;
    ++pending_jobs_;
    --submitting_;
  }
  // shared_ptr wrapper: std::function must stay copyable.
  auto task = std::make_shared<std::pair<std::vector<std::string>, DoneFn>>(
      std::move(segments), std::move(done));
  pool_->Submit([this, task, raw_bytes] {
    Encode(task->first, task->second);
    MutexLock lock(mu_);
    pending_bytes_ -= raw_bytes;
    --pending_jobs_;
    lock.Unlock();
    window_open_.NotifyAll();
    idle_.NotifyAll();
  });
}

void EncodingPipeline::Encode(const std::vector<std::string>& segments,
                              DoneFn& done) {
  Encoded encoded(segments.size());
  SegmentEncodeStats total;
  {
    obs::LatencyTimer encode_time(options_.tracer, obs::kHCodecEncodeUs);
    ByteBuffer scratch;
    for (size_t p = 0; p < segments.size(); ++p) {
      scratch.Clear();
      SegmentEncodeStats stats;
      EncodeShuffleSegment(Slice(segments[p]), *options_.codec,
                           options_.block_bytes, &scratch, &stats);
      std::shared_ptr<std::string> buf =
          BufferPool::Global()->Acquire(scratch.size());
      if (scratch.size() != 0) {
        std::memcpy(buf->data(), scratch.data(), scratch.size());
      }
      encoded[p] = std::move(buf);
      total.raw_bytes += stats.raw_bytes;
      total.wire_bytes += stats.wire_bytes;
      total.blocks += stats.blocks;
      total.compressed_blocks += stats.compressed_blocks;
    }
  }
  done(std::move(encoded));
  MutexLock lock(mu_);
  stats_.raw_bytes += total.raw_bytes;
  stats_.wire_bytes += total.wire_bytes;
  stats_.blocks += total.blocks;
  stats_.compressed_blocks += total.compressed_blocks;
}

void EncodingPipeline::Drain() {
  MutexLock lock(mu_);
  // A producer inside Submit (counted by submitting_) bumps
  // pending_jobs_ under mu_ before it drops out of the count, so this
  // condition can never observe "nothing in flight" between admission
  // and enqueue.
  while (submitting_ != 0 || pending_jobs_ != 0) idle_.Wait(mu_);
}

SegmentEncodeStats EncodingPipeline::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace bmr::mr
