// Human-readable TSV output format for part files (alongside the
// default framed binary): `key<TAB>value<NL>` with C-style escaping so
// arbitrary byte strings survive the round trip.
#pragma once

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "mr/types.h"

namespace bmr::mr {

enum class OutputFormat {
  kFramedBinary,  // length-prefixed records (default; lossless, compact)
  kTextTsv,       // escaped key<TAB>value lines (greppable)
};

/// Escape a field for TSV: backslash, tab, newline and CR become
/// \\ \t \n \r; other non-printable bytes become \xHH.
std::string EscapeTsvField(Slice field);

/// Inverse of EscapeTsvField; false on malformed escapes.
bool UnescapeTsvField(Slice field, std::string* out);

/// Append one escaped "key\tvalue\n" record.
void AppendTsvRecord(ByteBuffer* out, Slice key, Slice value);

/// Parse a whole TSV part file back into records.
[[nodiscard]] Status ParseTsvRecords(Slice data, std::vector<Record>* out);

}  // namespace bmr::mr
