// Shuffle-side coordination: the map-output tracker (which map task
// finished where) and the k-way merge / grouped iteration used by the
// with-barrier reduce path.
#pragma once

#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "mr/api.h"
#include "mr/types.h"
#include "obs/trace.h"

namespace bmr::mr {

/// Tracks completion (and loss) of map tasks.  Reduce-side fetch
/// threads block on WaitForMapDone; a fetch failure reports the output
/// lost, which un-completes the task until the engine re-runs it —
/// the map re-execution path of MapReduce fault tolerance.
class MapOutputTracker {
 public:
  explicit MapOutputTracker(int num_map_tasks);

  /// Map task `m` (attempt `version`) finished on `node`.
  void MarkDone(int m, int node) BMR_EXCLUDES(mu_);

  /// Block until map `m` is done; returns (node, version).
  /// version==-1 => the job was cancelled.
  struct Location {
    int node = -1;
    int version = -1;
  };
  Location WaitForMapDone(int m) BMR_EXCLUDES(mu_);

  /// A fetcher failed to read `m`'s output of attempt `version`.
  /// Returns true if this call transitioned the task to lost (the
  /// caller must arrange a re-run); false if someone already did or a
  /// newer attempt exists.
  [[nodiscard]] bool ReportLost(int m, int version) BMR_EXCLUDES(mu_);

  /// Wake all waiters with a cancelled signal.
  void Cancel() BMR_EXCLUDES(mu_);

  int num_done() const BMR_EXCLUDES(mu_);
  int num_map_tasks() const { return num_map_tasks_; }

 private:
  struct TaskState {
    bool done = false;
    int node = -1;
    int version = 0;  // bumped on every MarkDone
  };

  const int num_map_tasks_;
  BMR_ACQUIRED_AFTER("mr.task_scheduler")
  mutable OrderedMutex mu_{"mr.shuffle.tracker"};
  CondVar cv_;
  std::vector<TaskState> state_ BMR_GUARDED_BY(mu_);
  bool cancelled_ BMR_GUARDED_BY(mu_) = false;
};

/// Iterate sorted records grouped by `group_cmp`, invoking the
/// with-barrier Reducer once per group.  `records` must already be
/// sorted by the job's sort comparator.  With a tracer, samples every
/// 16th group's Reduce latency into bmr_reduce_invoke_us.
[[nodiscard]] Status ReduceGroups(const std::vector<Record>& records,
                    const KeyCompareFn& group_cmp, Reducer* reducer,
                    ReduceContext* ctx, obs::Tracer* tracer = nullptr);

/// k-way merge of per-map sorted runs into one sorted vector.
/// Runs with identical keys interleave in run order (stable).
std::vector<Record> MergeSortedRuns(std::vector<std::vector<Record>> runs,
                                    const KeyCompareFn& sort_cmp);

}  // namespace bmr::mr
