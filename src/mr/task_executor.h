// Map and reduce task executors: the task-attempt bodies of the old
// monolithic JobExecution, behind narrow interfaces.  Executors hold
// no scheduling or placement logic — they run exactly one attempt and
// report through TaskScheduler (commit), ShuffleService (segments,
// fetches), and MetricsRegistry (counters, samples, timeline).
#pragma once

#include <vector>

#include "mr/engine.h"
#include "mr/input.h"
#include "mr/job.h"
#include "mr/job_control.h"
#include "mr/metrics.h"
#include "mr/shuffle_service.h"
#include "mr/task_scheduler.h"

namespace bmr::mr {

class ReduceTaskContext;  // defined in task_executor.cc

/// Runs one map task attempt: read the split, run the mapper, finish
/// (sort/combine/serialize) the output, then race to commit.  The
/// first attempt of a task to commit publishes its segments; a losing
/// attempt (speculative race or stale retry) discards its output.
class MapTaskExecutor {
 public:
  MapTaskExecutor(ClusterContext* cluster, const JobSpec& spec,
                  const std::vector<InputSplit>* splits,
                  TaskScheduler* scheduler, ShuffleService* shuffle,
                  MetricsRegistry* metrics, JobControl* control)
      : cluster_(cluster),
        spec_(spec),
        splits_(splits),
        scheduler_(scheduler),
        shuffle_(shuffle),
        metrics_(metrics),
        control_(control) {}

  void Execute(TaskScheduler::Attempt attempt);

 private:
  ClusterContext* cluster_;
  const JobSpec& spec_;
  const std::vector<InputSplit>* splits_;
  TaskScheduler* scheduler_;
  ShuffleService* shuffle_;
  MetricsRegistry* metrics_;
  JobControl* control_;
};

/// Runs one reduce task: fetch every mapper's segment through the
/// ShuffleService (BarrierSink or FifoSink), reduce, and write the
/// part file.  Both modes share the fetch substrate and differ only in
/// the sink and the reduce driver.
class ReduceTaskExecutor {
 public:
  ReduceTaskExecutor(ClusterContext* cluster, const JobSpec& spec,
                     ShuffleService* shuffle, MetricsRegistry* metrics,
                     JobControl* control,
                     ShuffleService::RelaunchFn relaunch)
      : cluster_(cluster),
        spec_(spec),
        shuffle_(shuffle),
        metrics_(metrics),
        control_(control),
        relaunch_(std::move(relaunch)) {}

  /// Runs the reduce task to completion, restarting the attempt from
  /// scratch (fresh sink, fetch, and partial store) when it fails
  /// recoverably — most importantly when the attempt consumed map
  /// output that was later lost to a node death (a tainted fetch, the
  /// restart cost of consuming before the barrier).  Unrecoverable
  /// errors and exhausted restarts fail the job.
  void Execute(int r, int node);

 private:
  [[nodiscard]] Status RunBarrier(int r, int node, ReduceTaskContext* ctx);
  [[nodiscard]] Status RunBarrierless(int r, int node, ReduceTaskContext* ctx);
  [[nodiscard]] Status WriteOutput(int r, int node, const std::vector<Record>& records);

  ClusterContext* cluster_;
  const JobSpec& spec_;
  ShuffleService* shuffle_;
  MetricsRegistry* metrics_;
  JobControl* control_;
  ShuffleService::RelaunchFn relaunch_;
};

}  // namespace bmr::mr
