#include "mr/timeline.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace bmr::mr {

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kMap: return "Map";
    case Phase::kShuffle: return "Shuffle";
    case Phase::kSortMerge: return "Sort";
    case Phase::kReduce: return "Reduce";
    case Phase::kShuffleReduce: return "Shuffle+Reduce";
    case Phase::kOutput: return "Output";
    case Phase::kFault: return "Fault";
  }
  return "?";
}

void Timeline::Record(Phase phase, int task_id, int node, double start,
                      double end) {
  MutexLock lock(mu_);
  events_.push_back(TaskEvent{phase, task_id, node, start, end});
}

std::vector<TaskEvent> Timeline::Snapshot() const {
  MutexLock lock(mu_);
  return events_;
}

int Timeline::ActiveAt(const std::vector<TaskEvent>& events, Phase phase,
                       double t) {
  int n = 0;
  for (const auto& e : events) {
    if (e.phase == phase && e.start <= t && t < e.end) ++n;
  }
  return n;
}

std::string Timeline::RenderActivity(const std::vector<TaskEvent>& events,
                                     double step) {
  constexpr int kNumPhases = 7;
  double horizon = 0;
  bool phases_present[kNumPhases] = {};
  for (const auto& e : events) {
    horizon = std::max(horizon, e.end);
    phases_present[static_cast<int>(e.phase)] = true;
  }
  std::ostringstream out;
  out << "time";
  for (int p = 0; p < kNumPhases; ++p) {
    if (phases_present[p]) out << '\t' << PhaseName(static_cast<Phase>(p));
  }
  out << '\n';
  for (double t = 0; t <= horizon + step / 2; t += step) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", t);
    out << buf;
    for (int p = 0; p < kNumPhases; ++p) {
      if (phases_present[p]) {
        out << '\t' << ActiveAt(events, static_cast<Phase>(p), t);
      }
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace bmr::mr
