// Window-limited asynchronous segment encoder (the ytsaurus
// encoding_writer shape): map tasks hand their finished per-partition
// segments to Submit() and return to mapping immediately; a small
// worker pool compresses the segments into the block container
// (mr/segment_codec.h) and runs the completion callback — in the
// shuffle service, the store Put + tracker MarkDone.  Compression
// therefore overlaps map execution instead of serializing it.
//
// The window bounds raw bytes admitted but not yet encoded: a Submit
// that would overflow it blocks the *map* thread (backpressure toward
// the producer, never toward fetchers — encoded segments are already
// in the store by the time fetchers can see the task as done).  A
// single oversized submit is always admitted when the pipeline is
// idle, so the window cannot deadlock.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/codec.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "concurrency/thread_pool.h"
#include "mr/segment_codec.h"
#include "obs/trace.h"

namespace bmr::mr {

class EncodingPipeline {
 public:
  struct Options {
    /// Resolved block codec; must not be null.
    const Codec* codec = nullptr;
    size_t block_bytes = kDefaultShuffleBlockBytes;
    /// Raw bytes admitted but not yet encoded before Submit blocks.
    size_t window_bytes = 8 << 20;
    /// Encoder worker threads.
    int threads = 2;
    /// For the bmr_codec_encode_us histogram; null = no recording.
    obs::Tracer* tracer = nullptr;
  };

  /// One map task's encoded output: segments[p] is partition p's block
  /// container, in a pool-backed buffer.
  using Encoded = std::vector<std::shared_ptr<const std::string>>;
  /// Runs on an encoder thread, once per Submit, in submit order per
  /// worker but unordered across workers.
  using DoneFn = std::function<void(Encoded encoded)>;

  explicit EncodingPipeline(Options options);
  /// Drains: every Submit already in flight — including one currently
  /// blocked on the window — is admitted (the window stops gating at
  /// shutdown), encoded, and has its DoneFn run before the destructor
  /// returns.  Callers must not start NEW Submits once destruction has
  /// begun; in-flight ones are safe.
  ~EncodingPipeline();

  EncodingPipeline(const EncodingPipeline&) = delete;
  EncodingPipeline& operator=(const EncodingPipeline&) = delete;

  /// Queue one map task's raw segments for encoding.  May block on the
  /// window (see above).
  void Submit(std::vector<std::string> segments, DoneFn done)
      BMR_EXCLUDES(mu_);

  /// Block until every Submit in flight has been admitted and every
  /// admitted task has been encoded and its DoneFn has returned.
  void Drain() BMR_EXCLUDES(mu_);

  /// Aggregate encode stats of everything drained so far.
  SegmentEncodeStats stats() const BMR_EXCLUDES(mu_);

 private:
  void Encode(const std::vector<std::string>& segments, DoneFn& done)
      BMR_EXCLUDES(mu_);

  Options options_;
  mutable Mutex mu_;
  CondVar window_open_;
  CondVar idle_;
  uint64_t pending_bytes_ BMR_GUARDED_BY(mu_) = 0;
  int pending_jobs_ BMR_GUARDED_BY(mu_) = 0;
  // Submits between entry and admission; Drain must wait these out or
  // the destructor frees the pool (and this object) under a producer
  // still parked on window_open_.
  int submitting_ BMR_GUARDED_BY(mu_) = 0;
  // Destruction has begun: the window stops gating so parked producers
  // drain through instead of blocking forever.
  bool closed_ BMR_GUARDED_BY(mu_) = false;
  SegmentEncodeStats stats_ BMR_GUARDED_BY(mu_);
  // Last member: workers must stop before the state above dies.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace bmr::mr
