// Input splits and record readers over the DFS.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "dfs/dfs.h"
#include "mr/job.h"
#include "mr/types.h"

namespace bmr::mr {

/// One map task's slice of the input.
struct InputSplit {
  std::string file;
  uint64_t offset = 0;
  uint64_t length = 0;
  /// Nodes holding a replica of the first block (for data-local
  /// scheduling).
  std::vector<int> preferred_nodes;
};

/// Expand input patterns: an entry ending in '*' matches every DFS
/// file with that prefix (e.g. "/logs/*"); other entries pass through.
[[nodiscard]] StatusOr<std::vector<std::string>> ExpandInputs(
    dfs::DfsClient* client, const std::vector<std::string>& patterns);

/// Plan block-aligned splits over the input files.  Text inputs split
/// at `split_bytes` boundaries (record straddling handled by the
/// reader, Hadoop-style); kv-pair inputs get one split per file.
[[nodiscard]] StatusOr<std::vector<InputSplit>> PlanSplits(dfs::DfsClient* client,
                                             const std::vector<std::string>& files,
                                             InputKind kind,
                                             uint64_t split_bytes);

/// Sequential record iteration over one split.
class RecordReader {
 public:
  virtual ~RecordReader() = default;
  /// OK + *has=false at end of split.
  [[nodiscard]] virtual Status Next(Record* record, bool* has) = 0;
};

/// Newline-delimited text.  Key = decimal byte offset of the line,
/// value = line without the terminator.  A split starting past 0 skips
/// its first partial line; the line straddling the split end belongs to
/// this split (exactly Hadoop's TextInputFormat contract, so no line is
/// read twice and none is lost).
class TextLineReader final : public RecordReader {
 public:
  TextLineReader(dfs::DfsClient* client, InputSplit split);
  [[nodiscard]] Status Next(Record* record, bool* has) override;

 private:
  [[nodiscard]] Status Refill();

  dfs::DfsClient* client_;
  InputSplit split_;
  uint64_t file_size_ = 0;
  bool initialized_ = false;
  uint64_t read_pos_ = 0;    // next byte to fetch from DFS
  uint64_t logical_pos_ = 0; // offset of buffer_[cursor_]
  std::string buffer_;
  size_t cursor_ = 0;
  bool exhausted_ = false;
};

/// Framed binary records: [varint klen][key][varint vlen][value]...
class KvPairReader final : public RecordReader {
 public:
  KvPairReader(dfs::DfsClient* client, InputSplit split);
  [[nodiscard]] Status Next(Record* record, bool* has) override;

 private:
  [[nodiscard]] Status EnsureLoaded();

  dfs::DfsClient* client_;
  InputSplit split_;
  bool loaded_ = false;
  std::string data_;
  size_t cursor_ = 0;
};

std::unique_ptr<RecordReader> MakeReader(dfs::DfsClient* client,
                                         InputKind kind, InputSplit split);

/// Helper used by workload generators and tests: frame one record.
void AppendFramedRecord(ByteBuffer* out, Slice key, Slice value);

}  // namespace bmr::mr
