// The real execution engine: runs a JobSpec on one cluster context
// (net transport + DFS + per-node slots), in either with-barrier or
// barrier-less mode, on real data.
//
// JobRunner::Run is a thin composition of four layers, each its own
// translation unit with a narrow interface:
//   TaskScheduler   (task_scheduler.h)  placement, attempts, retry,
//                                       speculative backup tasks
//   executors       (task_executor.h)   one map / reduce attempt body
//   ShuffleService  (shuffle_service.h) job-scoped segment stores,
//                                       tracker, fetch threads, sinks
//   MetricsRegistry (metrics.h)         counters, samples, timeline
//
// Mode structure mirrors Hadoop 0.20 as described in §3.1 of the
// paper:
//   with barrier  — map tasks sort+store output locally; each reducer
//                   runs one asynchronous fetch thread per mapper into
//                   per-mapper buffers (BarrierSink); when all are in
//                   (the barrier), buffers are merge-sorted and Reduce
//                   runs per key group.
//   barrier-less  — the same fetch threads push records into a single
//                   FIFO buffer (FifoSink); the reduce thread runs the
//                   single-record Reduce on them in arrival order via
//                   the core::BarrierlessDriver (sort bypassed).
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "dfs/dfs.h"
#include "mr/job.h"
#include "mr/metrics.h"
#include "mr/timeline.h"
#include "mr/types.h"
#include "net/transport.h"

namespace bmr::faults {
class FaultInjector;
}  // namespace bmr::faults

namespace bmr::mr {

/// Wires the substrates into one cluster: the spec's `transport` knob
/// (or BMR_NET_TRANSPORT) picks the net::Transport carrying all RPC
/// and shuffle traffic — in-process by default.  Shared-cluster
/// mode: any number of JobRunners may run concurrently against one
/// context — every job draws a unique id from AllocateJobId() and all
/// of its shuffle state is scoped to that id.
struct ClusterContext {
  cluster::ClusterSpec spec;
  std::unique_ptr<net::Transport> transport;
  std::unique_ptr<dfs::Dfs> dfs;
  std::vector<std::unique_ptr<dfs::DfsClient>> clients;
  std::atomic<int> next_job_id{0};
  /// Chaos-test hook, installed via InstallFaultInjector.  Not owned.
  faults::FaultInjector* fault_injector = nullptr;

  static std::unique_ptr<ClusterContext> Create(cluster::ClusterSpec spec);

  dfs::DfsClient* client(int node) { return clients[node].get(); }

  /// Next unique job id on this cluster (shuffle-service scoping).
  int AllocateJobId() { return next_job_id.fetch_add(1); }

  /// Simulate a machine loss: DFS blocks gone, shuffle service gone.
  void KillNode(int node);

  /// Install (or with nullptr, remove) a deterministic fault injector:
  /// hooks it into the transport and binds its node-crash action to
  /// KillNode.  The injector must outlive every job run against this
  /// cluster while installed.
  void InstallFaultInjector(faults::FaultInjector* injector);
};

struct JobResult {
  Status status;
  double elapsed_seconds = 0;
  double first_map_done = 0;
  double last_map_done = 0;
  Counters counters;
  std::vector<TaskEvent> events;
  std::vector<std::string> output_files;
  std::vector<MemorySample> memory_samples;
  uint64_t rpc_handler_reregistrations = 0;
  /// Shuffle codec byte counts + pooled-memory counters (GUIDE §13).
  DataPlaneStats data_plane;
  /// Filled when the run had obs.trace=on (see mr/obs_export.h).
  bool trace_enabled = false;
  obs::TraceLog trace;
  std::map<std::string, LogHistogram> histograms;
  /// Spans lost at the tracer's central-log cap (GUIDE §15).
  uint64_t spans_dropped = 0;
  /// Flight-recorder artifacts this run dumped (0 or 1).
  uint64_t flight_dumps = 0;

  bool ok() const { return status.ok(); }
  /// True when the job died of partial-result heap overflow (Fig 5a).
  bool failed_oom() const {
    return status.code() == StatusCode::kResourceExhausted;
  }

  /// The run's metrics in the schema shared with the simulator
  /// (simmr::ToJobMetrics), for uniform reporting.
  JobMetrics ToMetrics() const;
};

class JobRunner {
 public:
  explicit JobRunner(ClusterContext* cluster) : cluster_(cluster) {}

  /// Execute the job to completion (or failure).  Blocking.
  JobResult Run(const JobSpec& spec);

  /// Read one output part file (test/bench helper).
  [[nodiscard]] static StatusOr<std::vector<Record>> ReadPartFile(
      dfs::DfsClient* client, const std::string& path,
      OutputFormat format = OutputFormat::kFramedBinary);

  /// Read and concatenate all part files of a finished job.
  [[nodiscard]] static StatusOr<std::vector<Record>> ReadAllOutput(
      dfs::DfsClient* client, const JobResult& result,
      OutputFormat format = OutputFormat::kFramedBinary);

 private:
  ClusterContext* cluster_;
};

}  // namespace bmr::mr
