// The real execution engine: runs a JobSpec on the in-process cluster
// (RPC fabric + DFS + per-node slots), in either with-barrier or
// barrier-less mode, on real data.
//
// Structure mirrors Hadoop 0.20 as described in §3.1 of the paper:
//   with barrier  — map tasks sort+store output locally; each reducer
//                   runs one asynchronous fetch thread per mapper into
//                   per-mapper buffers; when all are in (the barrier),
//                   buffers are merge-sorted and Reduce runs per key
//                   group.
//   barrier-less  — fetch threads push records into a single FIFO
//                   buffer; a separate thread runs the single-record
//                   Reduce on them in arrival order via the
//                   core::BarrierlessDriver (sort bypassed).
#pragma once

#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "dfs/dfs.h"
#include "mr/job.h"
#include "mr/timeline.h"
#include "mr/types.h"
#include "net/rpc.h"

namespace bmr::mr {

/// Wires the substrates into one in-process cluster.
struct ClusterContext {
  cluster::ClusterSpec spec;
  std::unique_ptr<net::RpcFabric> fabric;
  std::unique_ptr<dfs::Dfs> dfs;
  std::vector<std::unique_ptr<dfs::DfsClient>> clients;

  static std::unique_ptr<ClusterContext> Create(cluster::ClusterSpec spec);

  dfs::DfsClient* client(int node) { return clients[node].get(); }

  /// Simulate a machine loss: DFS blocks gone, shuffle service gone.
  void KillNode(int node);
};

/// One (elapsed-time, reducer, bytes) heap sample — Fig. 5's raw data.
struct MemorySample {
  double t = 0;
  int reducer = 0;
  uint64_t bytes = 0;
};

struct JobResult {
  Status status;
  double elapsed_seconds = 0;
  double first_map_done = 0;
  double last_map_done = 0;
  Counters counters;
  std::vector<TaskEvent> events;
  std::vector<std::string> output_files;
  std::vector<MemorySample> memory_samples;

  bool ok() const { return status.ok(); }
  /// True when the job died of partial-result heap overflow (Fig 5a).
  bool failed_oom() const {
    return status.code() == StatusCode::kResourceExhausted;
  }
};

class JobRunner {
 public:
  explicit JobRunner(ClusterContext* cluster) : cluster_(cluster) {}

  /// Execute the job to completion (or failure).  Blocking.
  JobResult Run(const JobSpec& spec);

  /// Read one output part file (test/bench helper).
  static StatusOr<std::vector<Record>> ReadPartFile(
      dfs::DfsClient* client, const std::string& path,
      OutputFormat format = OutputFormat::kFramedBinary);

  /// Read and concatenate all part files of a finished job.
  static StatusOr<std::vector<Record>> ReadAllOutput(
      dfs::DfsClient* client, const JobResult& result,
      OutputFormat format = OutputFormat::kFramedBinary);

 private:
  ClusterContext* cluster_;
};

}  // namespace bmr::mr
