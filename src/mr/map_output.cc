#include "mr/map_output.h"

#include <algorithm>
#include <cstring>

#include "common/serde.h"
#include "mr/input.h"
#include "mr/partition.h"

namespace bmr::mr {

MapOutputCollector::MapOutputCollector(int num_partitions,
                                       PartitionFn partitioner)
    : num_partitions_(num_partitions),
      partitioner_(partitioner ? std::move(partitioner) : HashPartition),
      buffers_(num_partitions) {}

void MapOutputCollector::Emit(Slice key, Slice value) {
  int p = partitioner_(key, num_partitions_);
  // One arena allocation covers both byte runs; the Slices stay valid
  // until Finish() retires this generation.
  char* dst = arena_.Allocate(key.size() + value.size());
  if (!key.empty()) std::memcpy(dst, key.data(), key.size());
  if (!value.empty()) std::memcpy(dst + key.size(), value.data(), value.size());
  buffers_[p].push_back(
      Staged{Slice(dst, key.size()), Slice(dst + key.size(), value.size())});
}

uint64_t MapOutputCollector::buffered_records() const {
  uint64_t n = 0;
  for (const auto& b : buffers_) n += b.size();
  return n;
}

/// Applies the combiner to consecutive same-key runs of a sorted
/// partition buffer.  Combined output is staged back into the arena —
/// the combiner's emitted bytes may alias its inputs, and the inputs'
/// generation is still live, so the copies are safe and stay pooled.
class MapOutputCollector::CombineEmitter final : public MapEmitter {
 public:
  CombineEmitter(Arena* arena, std::vector<Staged>* out)
      : arena_(arena), out_(out) {}
  void Emit(Slice key, Slice value) override {
    out_->push_back(Staged{arena_->Copy(key), arena_->Copy(value)});
  }

 private:
  Arena* arena_;
  std::vector<Staged>* out_;
};

std::vector<MapOutputCollector::Staged> MapOutputCollector::RunCombiner(
    std::vector<Staged> sorted, Combiner* combiner, const KeyCompareFn& cmp,
    uint64_t* in, uint64_t* out_count) {
  std::vector<Staged> combined;
  CombineEmitter emitter(&arena_, &combined);
  size_t i = 0;
  while (i < sorted.size()) {
    size_t j = i + 1;
    while (j < sorted.size() &&
           (cmp ? cmp(sorted[j].key, sorted[i].key) == 0
                : sorted[j].key == sorted[i].key)) {
      ++j;
    }
    std::vector<Slice> values;
    values.reserve(j - i);
    for (size_t k = i; k < j; ++k) values.emplace_back(sorted[k].value);
    *in += j - i;
    combiner->Combine(sorted[i].key, values, &emitter);
    i = j;
  }
  *out_count += combined.size();
  return combined;
}

StatusOr<MapOutputCollector::Finished> MapOutputCollector::Finish(
    bool sort, const KeyCompareFn& sort_cmp, Combiner* combiner) {
  Finished result;
  result.segments.resize(num_partitions_);
  for (int p = 0; p < num_partitions_; ++p) {
    std::vector<Staged>& buf = buffers_[p];
    if (sort) {
      std::stable_sort(buf.begin(), buf.end(),
                       [&sort_cmp](const Staged& a, const Staged& b) {
                         return sort_cmp ? sort_cmp(a.key, b.key) < 0
                                         : a.key < b.key;
                       });
    }
    if (combiner != nullptr) {
      if (!sort) {
        return Status::FailedPrecondition(
            "combiner requires map-side sort to group keys");
      }
      buf = RunCombiner(std::move(buf), combiner, sort_cmp,
                        &result.combine_in, &result.combine_out);
    }
    ByteBuffer segment;
    for (const Staged& r : buf) {
      AppendFramedRecord(&segment, r.key, r.value);
    }
    result.output_records += buf.size();
    result.output_bytes += segment.size();
    result.segments[p] = segment.ToString();
    buf.clear();
    buf.shrink_to_fit();
  }
  // All partitions are serialized: retire the staged bytes in one stroke
  // and park the chunks for this task slot's next attempt.
  arena_.Reset();
  return result;
}

void MapOutputStore::Put(int map_task, int partition,
                         std::shared_ptr<const std::string> segment) {
  MutexLock lock(mu_);
  auto key = std::make_pair(map_task, partition);
  auto it = segments_.find(key);
  if (it != segments_.end()) {
    stored_bytes_ -= it->second->size();  // re-run overwrites
  }
  stored_bytes_ += segment->size();
  segments_[key] = std::move(segment);
}

void MapOutputStore::Put(int map_task, int partition, std::string segment) {
  Put(map_task, partition,
      std::make_shared<const std::string>(std::move(segment)));
}

StatusOr<std::shared_ptr<const std::string>> MapOutputStore::Get(
    int map_task, int partition) const {
  MutexLock lock(mu_);
  auto it = segments_.find({map_task, partition});
  if (it == segments_.end()) {
    return Status::NotFound("no segment for map " + std::to_string(map_task) +
                            " partition " + std::to_string(partition));
  }
  return it->second;
}

uint64_t MapOutputStore::stored_bytes() const {
  MutexLock lock(mu_);
  return stored_bytes_;
}

std::string ShuffleMethodName(int job_id) {
  return "shuffle.fetch." + std::to_string(job_id);
}

void RegisterShuffleService(net::Transport* transport, int node,
                            MapOutputStore* store, int job_id,
                            faults::FaultInjector* injector) {
  transport->Register(
      node, ShuffleMethodName(job_id),
      [store, node, injector](Slice req, ByteBuffer* resp) {
        Decoder dec(req);
        uint64_t map_task, partition;
        if (!dec.GetVarint64(&map_task) || !dec.GetVarint64(&partition)) {
          return Status::DataLoss("bad shuffle.fetch req");
        }
        auto segment = store->Get(static_cast<int>(map_task),
                                  static_cast<int>(partition));
        if (!segment.ok()) return segment.status();
        if (injector != nullptr) {
          // Wire-boundary corruption injection: mangle the response
          // bytes as they leave the serving node, identically on both
          // transports (satellite of PR 8 — the hook used to fire
          // client-side after the fetch).  The store copy is intact,
          // so the fetcher's retry can succeed.
          std::string wire(**segment);
          if (injector->MaybeCorruptSegment(node,
                                            static_cast<int>(map_task),
                                            &wire)) {
            resp->Append(Slice(wire));
            return Status::Ok();
          }
        }
        resp->Append(Slice(**segment));
        return Status::Ok();
      });
}

void UnregisterShuffleService(net::Transport* transport, int node, int job_id) {
  transport->Unregister(node, ShuffleMethodName(job_id));
}

Status FetchSegment(net::Transport* transport, int from_node, int at_node,
                    int map_task, int partition, std::string* segment,
                    int job_id) {
  ByteBuffer req;
  Encoder enc(&req);
  enc.PutVarint64(static_cast<uint64_t>(map_task));
  enc.PutVarint64(static_cast<uint64_t>(partition));
  ByteBuffer resp;
  BMR_RETURN_IF_ERROR(transport->Call(at_node, from_node,
                                   ShuffleMethodName(job_id), req.AsSlice(),
                                   &resp));
  *segment = resp.ToString();
  return Status::Ok();
}

Status DecodeSegment(Slice segment, std::vector<Record>* out) {
  Decoder dec(segment);
  while (!dec.empty()) {
    Slice key, value;
    if (!dec.GetString(&key) || !dec.GetString(&value)) {
      return Status::DataLoss("malformed shuffle segment");
    }
    out->emplace_back(key.ToString(), value.ToString());
  }
  return Status::Ok();
}

Status DecodeSegment(std::shared_ptr<const std::string> segment,
                     RecordBatch* out) {
  Slice contents(*segment);
  RecordBatch batch(std::move(segment));
  Decoder dec(contents);
  while (!dec.empty()) {
    Slice key, value;
    if (!dec.GetString(&key) || !dec.GetString(&value)) {
      return Status::DataLoss("malformed shuffle segment");
    }
    batch.Add(key, value);
  }
  *out = std::move(batch);
  return Status::Ok();
}

}  // namespace bmr::mr
