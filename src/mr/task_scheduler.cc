#include "mr/task_scheduler.h"

#include <algorithm>

namespace bmr::mr {

TaskScheduler::TaskScheduler(const cluster::ClusterSpec& cluster,
                             const std::vector<InputSplit>* splits,
                             Options options)
    : splits_(splits),
      slaves_(cluster.SlaveIds()),
      options_(options),
      tasks_(splits->size()),
      node_load_(cluster.nodes.size(), 0) {
  is_master_.resize(cluster.nodes.size(), false);
  for (const auto& node : cluster.nodes) is_master_[node.id] = node.is_master;
}

int TaskScheduler::PickNodeLocked(const InputSplit& split, int exclude) {
  // Least-loaded among the split's replica holders, then least-loaded
  // slave overall.
  int best = -1;
  for (int n : split.preferred_nodes) {
    if (n == exclude) continue;
    if (is_master_[n]) continue;
    if (best < 0 || node_load_[n] < node_load_[best]) best = n;
  }
  if (best < 0) {
    for (int n : slaves_) {
      if (n == exclude) continue;
      if (best < 0 || node_load_[n] < node_load_[best]) best = n;
    }
  }
  if (best >= 0) node_load_[best]++;
  return best;
}

int TaskScheduler::PickNode(const InputSplit& split, int exclude) {
  MutexLock lock(mu_);
  return PickNodeLocked(split, exclude);
}

void TaskScheduler::ReleaseNode(int node) {
  MutexLock lock(mu_);
  if (node >= 0 && node_load_[node] > 0) node_load_[node]--;
}

TaskScheduler::Attempt TaskScheduler::Assign(int task, int exclude_node) {
  MutexLock lock(mu_);
  Attempt attempt;
  attempt.task = task;
  attempt.node = PickNodeLocked((*splits_)[task], exclude_node);
  attempt.id = static_cast<int>(tasks_[task].attempts.size());
  AttemptState state;
  state.node = attempt.node;
  tasks_[task].attempts.push_back(state);
  return attempt;
}

void TaskScheduler::Begin(const Attempt& attempt, double now) {
  MutexLock lock(mu_);
  tasks_[attempt.task].attempts[attempt.id].begin = now;
}

bool TaskScheduler::TryCommit(const Attempt& attempt) {
  MutexLock lock(mu_);
  TaskState& task = tasks_[attempt.task];
  if (task.committed) return false;
  task.committed = true;
  return true;
}

void TaskScheduler::Finish(const Attempt& attempt, double now) {
  MutexLock lock(mu_);
  AttemptState& state = tasks_[attempt.task].attempts[attempt.id];
  state.end = now;
  if (state.begin >= 0) completed_durations_.push_back(now - state.begin);
  if (attempt.node >= 0 && node_load_[attempt.node] > 0) {
    node_load_[attempt.node]--;
  }
}

void TaskScheduler::ReopenTask(int task) {
  MutexLock lock(mu_);
  tasks_[task].committed = false;
}

std::vector<TaskScheduler::Attempt> TaskScheduler::PollSpeculation(
    double now) {
  std::vector<Attempt> backups;
  if (!options_.speculative) return backups;
  MutexLock lock(mu_);
  if (completed_durations_.empty()) return backups;
  std::vector<double> durations = completed_durations_;
  std::nth_element(durations.begin(),
                   durations.begin() + durations.size() / 2, durations.end());
  double median = durations[durations.size() / 2];
  double threshold = std::max(options_.slowness * median, options_.min_runtime);

  for (size_t t = 0; t < tasks_.size(); ++t) {
    TaskState& task = tasks_[t];
    if (task.committed) continue;
    if (static_cast<int>(task.attempts.size()) >= options_.max_attempts) {
      continue;
    }
    // Only a lone running attempt can be a straggler: queued attempts
    // are waiting on a slot, not slow.
    bool straggling = false;
    int running_node = -1;
    for (const AttemptState& a : task.attempts) {
      if (a.end >= 0 || a.begin < 0) continue;  // finished or queued
      running_node = a.node;
      straggling = (now - a.begin) > threshold;
    }
    if (!straggling) continue;
    Attempt backup;
    backup.task = static_cast<int>(t);
    backup.node = PickNodeLocked((*splits_)[t], running_node);
    if (backup.node < 0) continue;
    backup.id = static_cast<int>(task.attempts.size());
    backup.speculative = true;
    AttemptState state;
    state.node = backup.node;
    state.speculative = true;
    task.attempts.push_back(state);
    backups.push_back(backup);
  }
  return backups;
}

bool TaskScheduler::AllCommitted() const {
  MutexLock lock(mu_);
  for (const TaskState& task : tasks_) {
    if (!task.committed) return false;
  }
  return true;
}

int TaskScheduler::attempts_started(int task) const {
  MutexLock lock(mu_);
  return static_cast<int>(tasks_[task].attempts.size());
}

int TaskScheduler::load(int node) const {
  MutexLock lock(mu_);
  return node_load_[node];
}

}  // namespace bmr::mr
