#include "mr/task_scheduler.h"

#include <algorithm>

namespace bmr::mr {

TaskScheduler::TaskScheduler(const cluster::ClusterSpec& cluster,
                             const std::vector<InputSplit>* splits,
                             Options options)
    : splits_(splits),
      slaves_(cluster.SlaveIds()),
      options_(options),
      tasks_(splits->size()),
      node_load_(cluster.nodes.size(), 0) {
  is_master_.resize(cluster.nodes.size(), false);
  for (const auto& node : cluster.nodes) is_master_[node.id] = node.is_master;
}

int TaskScheduler::PickNodeLocked(const InputSplit& split, int exclude) {
  // Least-loaded among the split's replica holders, then least-loaded
  // slave overall.
  int best = -1;
  for (int n : split.preferred_nodes) {
    if (n == exclude) continue;
    if (is_master_[n]) continue;
    if (best < 0 || node_load_[n] < node_load_[best]) best = n;
  }
  if (best < 0) {
    for (int n : slaves_) {
      if (n == exclude) continue;
      if (best < 0 || node_load_[n] < node_load_[best]) best = n;
    }
  }
  if (best >= 0) node_load_[best]++;
  return best;
}

int TaskScheduler::PickNode(const InputSplit& split, int exclude) {
  MutexLock lock(mu_);
  return PickNodeLocked(split, exclude);
}

void TaskScheduler::ReleaseNode(int node) {
  MutexLock lock(mu_);
  if (node >= 0 && node_load_[node] > 0) node_load_[node]--;
}

TaskScheduler::Attempt TaskScheduler::Assign(int task, int exclude_node) {
  MutexLock lock(mu_);
  Attempt attempt;
  attempt.task = task;
  attempt.node = PickNodeLocked((*splits_)[task], exclude_node);
  if (attempt.node < 0 && exclude_node >= 0) {
    // Every slave was excluded (single-slave cluster relaunch).  The
    // excluded node lost the task's output but is still alive, so
    // rerun in place rather than planning an unassignable attempt.
    attempt.node = PickNodeLocked((*splits_)[task], -1);
  }
  attempt.id = static_cast<int>(tasks_[task].attempts.size());
  AttemptState state;
  state.node = attempt.node;
  tasks_[task].attempts.push_back(state);
  return attempt;
}

void TaskScheduler::Begin(const Attempt& attempt, double now) {
  MutexLock lock(mu_);
  tasks_[attempt.task].attempts[attempt.id].begin = now;
}

bool TaskScheduler::TryCommit(const Attempt& attempt) {
  MutexLock lock(mu_);
  TaskState& task = tasks_[attempt.task];
  if (task.committed) return false;
  task.committed = true;
  return true;
}

void TaskScheduler::Finish(const Attempt& attempt, double now) {
  MutexLock lock(mu_);
  AttemptState& state = tasks_[attempt.task].attempts[attempt.id];
  // Idempotent per attempt: only the first Finish records the end and
  // gives the load slot back.  A second call (retry path reporting an
  // attempt a relaunch already closed) is a no-op, so node_load_ can
  // never be decremented twice for one slot — the old `> 0` clamp
  // masked exactly that bug by silently eating the double-decrement
  // and skewing placement toward recently-failed nodes.
  if (state.released) return;
  state.released = true;
  state.end = now;
  if (state.begin >= 0) completed_durations_.push_back(now - state.begin);
  if (state.node >= 0) node_load_[state.node]--;
}

void TaskScheduler::ReopenTask(int task) {
  MutexLock lock(mu_);
  tasks_[task].committed = false;
}

std::vector<TaskScheduler::Attempt> TaskScheduler::PollSpeculation(
    double now) {
  std::vector<Attempt> backups;
  if (!options_.speculative) return backups;
  MutexLock lock(mu_);
  if (completed_durations_.empty()) return backups;
  std::vector<double> durations = completed_durations_;
  std::nth_element(durations.begin(),
                   durations.begin() + durations.size() / 2, durations.end());
  double median = durations[durations.size() / 2];
  double threshold = std::max(options_.slowness * median, options_.min_runtime);

  for (size_t t = 0; t < tasks_.size(); ++t) {
    TaskState& task = tasks_[t];
    if (task.committed) continue;
    if (static_cast<int>(task.attempts.size()) >= options_.max_attempts) {
      continue;
    }
    // Only a lone running attempt can be a straggler: queued attempts
    // are waiting on a slot, not slow, and a task that already has two
    // attempts running (original + backup) must never spawn a
    // backup-of-backup just because the newest attempt is also slow.
    int running = 0;
    int running_node = -1;
    double running_begin = -1;
    for (const AttemptState& a : task.attempts) {
      if (a.end >= 0 || a.begin < 0) continue;  // finished or queued
      ++running;
      running_node = a.node;
      running_begin = a.begin;
    }
    if (running != 1) continue;
    if ((now - running_begin) <= threshold) continue;
    Attempt backup;
    backup.task = static_cast<int>(t);
    backup.node = PickNodeLocked((*splits_)[t], running_node);
    if (backup.node < 0) continue;
    backup.id = static_cast<int>(task.attempts.size());
    backup.speculative = true;
    AttemptState state;
    state.node = backup.node;
    state.speculative = true;
    task.attempts.push_back(state);
    backups.push_back(backup);
  }
  return backups;
}

bool TaskScheduler::AllCommitted() const {
  MutexLock lock(mu_);
  for (const TaskState& task : tasks_) {
    if (!task.committed) return false;
  }
  return true;
}

int TaskScheduler::attempts_started(int task) const {
  MutexLock lock(mu_);
  return static_cast<int>(tasks_[task].attempts.size());
}

int TaskScheduler::load(int node) const {
  MutexLock lock(mu_);
  return node_load_[node];
}

}  // namespace bmr::mr
