// Output sinks passed to user Map / Reduce functions.
#pragma once

#include "common/bytes.h"

namespace bmr::mr {

/// Where Map emits intermediate records.
class MapEmitter {
 public:
  virtual ~MapEmitter() = default;
  virtual void Emit(Slice key, Slice value) = 0;
};

/// Where Reduce (either flavour) emits final output records.
class ReduceEmitter {
 public:
  virtual ~ReduceEmitter() = default;
  virtual void Emit(Slice key, Slice value) = 0;
};

/// A ReduceEmitter that appends to an in-memory vector; used by tests
/// and by the drivers before the DFS writer stage.
template <typename RecordVector>
class VectorEmitter final : public ReduceEmitter {
 public:
  explicit VectorEmitter(RecordVector* out) : out_(out) {}
  void Emit(Slice key, Slice value) override {
    out_->emplace_back(key.ToString(), value.ToString());
  }

 private:
  RecordVector* out_;
};

}  // namespace bmr::mr
