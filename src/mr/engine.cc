#include "mr/engine.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "concurrency/bounded_queue.h"
#include "concurrency/thread_pool.h"
#include "core/barrierless_driver.h"
#include "mr/input.h"
#include "mr/map_output.h"
#include "mr/shuffle.h"

namespace bmr::mr {

std::unique_ptr<ClusterContext> ClusterContext::Create(
    cluster::ClusterSpec spec) {
  auto ctx = std::make_unique<ClusterContext>();
  ctx->spec = std::move(spec);
  int n = static_cast<int>(ctx->spec.nodes.size());
  ctx->fabric = std::make_unique<net::RpcFabric>(n);
  ctx->dfs = std::make_unique<dfs::Dfs>(ctx->fabric.get(),
                                        ctx->spec.dfs_replication,
                                        ctx->spec.dfs_block_bytes);
  ctx->clients.resize(n);
  for (int i = 0; i < n; ++i) {
    ctx->clients[i] = std::make_unique<dfs::DfsClient>(ctx->dfs.get(), i);
  }
  return ctx;
}

void ClusterContext::KillNode(int node) {
  fabric->KillNode(node);       // drops dn.*, shuffle.fetch on that node
  dfs->KillDataNode(node);      // excludes it from future placement
}

namespace {

constexpr size_t kFifoCapacity = 64 << 10;
constexpr uint64_t kMemorySampleEvery = 2048;

/// Concrete MapContext: forwards emits to the collector.
class MapCtx final : public MapContext {
 public:
  MapCtx(MapOutputCollector* collector, const Config& config,
         Counters* counters)
      : collector_(collector), config_(config), counters_(counters) {}

  void Emit(Slice key, Slice value) override { collector_->Emit(key, value); }
  const Config& config() const override { return config_; }
  Counters* counters() override { return counters_; }

 private:
  MapOutputCollector* collector_;
  const Config& config_;
  Counters* counters_;
};

/// Concrete ReduceContext: buffers output records.
class ReduceCtx final : public ReduceContext {
 public:
  ReduceCtx(const Config& config, Counters* counters)
      : config_(config), counters_(counters) {}

  void Emit(Slice key, Slice value) override {
    out_.emplace_back(key.ToString(), value.ToString());
  }
  const Config& config() const override { return config_; }
  Counters* counters() override { return counters_; }

  std::vector<Record>& records() { return out_; }

 private:
  std::vector<Record> out_;
  const Config& config_;
  Counters* counters_;
};

/// ReduceEmitter adapter over ReduceCtx for the barrier-less driver.
class CtxEmitter final : public ReduceEmitter {
 public:
  explicit CtxEmitter(ReduceCtx* ctx) : ctx_(ctx) {}
  void Emit(Slice key, Slice value) override { ctx_->Emit(key, value); }

 private:
  ReduceCtx* ctx_;
};

/// All mutable state of one job run.
class JobExecution {
 public:
  JobExecution(ClusterContext* cluster, const JobSpec& spec)
      : cluster_(cluster),
        spec_(spec),
        slaves_(cluster->spec.SlaveIds()) {}

  JobResult Run();

 private:
  Status Validate() const;
  int PickNode(const InputSplit& split, int exclude);
  void RunMapTask(int m, int node);
  void RelaunchMap(int m, int exclude_node);
  void RunReduceTask(int r);
  void RunReduceBarrier(int r, int node, ReduceCtx* ctx);
  void RunReduceBarrierless(int r, int node, ReduceCtx* ctx);
  Status WriteOutput(int r, int node, const std::vector<Record>& records);
  void Fail(const Status& status);
  bool cancelled() const { return cancelled_.load(std::memory_order_relaxed); }
  void MergeCounters(const Counters& c) {
    std::lock_guard<std::mutex> lock(counters_mu_);
    counters_.MergeFrom(c);
  }
  void SampleMemory(int reducer, uint64_t bytes) {
    std::lock_guard<std::mutex> lock(samples_mu_);
    samples_.push_back(MemorySample{clock_.ElapsedSeconds(), reducer, bytes});
  }
  void NoteMapDone() {
    std::lock_guard<std::mutex> lock(map_times_mu_);
    double t = clock_.ElapsedSeconds();
    if (first_map_done_ == 0) first_map_done_ = t;
    last_map_done_ = std::max(last_map_done_, t);
  }

  ClusterContext* cluster_;
  const JobSpec& spec_;
  std::vector<int> slaves_;
  Stopwatch clock_;
  Timeline timeline_;

  std::vector<InputSplit> splits_;
  std::unique_ptr<MapOutputTracker> tracker_;
  std::vector<std::unique_ptr<MapOutputStore>> stores_;

  std::unique_ptr<ThreadPool> map_pool_;
  std::unique_ptr<ThreadPool> reduce_pool_;

  std::mutex status_mu_;
  Status job_status_;
  std::atomic<bool> cancelled_{false};

  std::mutex counters_mu_;
  Counters counters_;
  std::mutex samples_mu_;
  std::vector<MemorySample> samples_;
  std::mutex map_times_mu_;
  double first_map_done_ = 0;
  double last_map_done_ = 0;

  std::mutex assign_mu_;
  std::vector<int> node_load_;  // queued/running map tasks per node id

  std::mutex fifo_reg_mu_;
  std::vector<BoundedQueue<Record>*> live_fifos_;

  std::vector<std::string> output_files_;
  std::mutex output_mu_;
};

Status JobExecution::Validate() const {
  if (spec_.input_files.empty()) {
    return Status::InvalidArgument("job has no input files");
  }
  if (!spec_.mapper) return Status::InvalidArgument("job has no mapper");
  if (spec_.num_reducers < 1) {
    return Status::InvalidArgument("num_reducers must be >= 1");
  }
  if (spec_.barrierless && !spec_.incremental) {
    return Status::InvalidArgument(
        "barrier-less job needs an IncrementalReducer");
  }
  if (!spec_.barrierless && !spec_.reducer) {
    return Status::InvalidArgument("with-barrier job needs a Reducer");
  }
  if (slaves_.empty()) return Status::InvalidArgument("no slave nodes");
  return Status::Ok();
}

void JobExecution::Fail(const Status& status) {
  {
    std::lock_guard<std::mutex> lock(status_mu_);
    if (job_status_.ok()) job_status_ = status;
  }
  cancelled_.store(true, std::memory_order_relaxed);
  if (tracker_) tracker_->Cancel();
  std::lock_guard<std::mutex> lock(fifo_reg_mu_);
  for (auto* q : live_fifos_) q->Close();
}

int JobExecution::PickNode(const InputSplit& split, int exclude) {
  std::lock_guard<std::mutex> lock(assign_mu_);
  if (node_load_.empty()) node_load_.resize(cluster_->spec.nodes.size(), 0);
  // Least-loaded among the split's replica holders, then least-loaded
  // slave overall.
  int best = -1;
  for (int n : split.preferred_nodes) {
    if (n == exclude) continue;
    if (cluster_->spec.nodes[n].is_master) continue;
    if (best < 0 || node_load_[n] < node_load_[best]) best = n;
  }
  if (best < 0) {
    for (int n : slaves_) {
      if (n == exclude) continue;
      if (best < 0 || node_load_[n] < node_load_[best]) best = n;
    }
  }
  if (best >= 0) node_load_[best]++;
  return best;
}

JobResult JobExecution::Run() {
  JobResult result;
  Status valid = Validate();
  if (!valid.ok()) {
    result.status = valid;
    return result;
  }

  auto inputs = ExpandInputs(cluster_->client(0), spec_.input_files);
  if (!inputs.ok()) {
    result.status = inputs.status();
    return result;
  }
  auto splits = PlanSplits(cluster_->client(0), *inputs, spec_.input_kind,
                           spec_.split_bytes);
  if (!splits.ok()) {
    result.status = splits.status();
    return result;
  }
  splits_ = std::move(*splits);
  if (splits_.empty()) {
    result.status = Status::InvalidArgument("input is empty");
    return result;
  }

  int nmaps = static_cast<int>(splits_.size());
  tracker_ = std::make_unique<MapOutputTracker>(nmaps);

  stores_.resize(cluster_->spec.nodes.size());
  for (size_t n = 0; n < stores_.size(); ++n) {
    stores_[n] = std::make_unique<MapOutputStore>();
    RegisterShuffleService(cluster_->fabric.get(), static_cast<int>(n),
                           stores_[n].get());
  }

  map_pool_ =
      std::make_unique<ThreadPool>(cluster_->spec.total_map_slots());
  reduce_pool_ =
      std::make_unique<ThreadPool>(cluster_->spec.total_reduce_slots());

  clock_.Restart();
  for (int m = 0; m < nmaps; ++m) {
    int node = PickNode(splits_[m], -1);
    map_pool_->Submit([this, m, node] { RunMapTask(m, node); });
  }
  for (int r = 0; r < spec_.num_reducers; ++r) {
    reduce_pool_->Submit([this, r] { RunReduceTask(r); });
  }
  reduce_pool_->Wait();
  map_pool_->Wait();

  result.elapsed_seconds = clock_.ElapsedSeconds();
  {
    std::lock_guard<std::mutex> lock(status_mu_);
    result.status = job_status_;
  }
  result.counters = counters_;
  result.events = timeline_.Snapshot();
  result.memory_samples = std::move(samples_);
  result.output_files = std::move(output_files_);
  result.first_map_done = first_map_done_;
  result.last_map_done = last_map_done_;
  return result;
}

void JobExecution::RunMapTask(int m, int node) {
  if (cancelled()) return;
  if (node < 0) {
    Fail(Status::Unavailable("no node available for map task"));
    return;
  }
  double start = clock_.ElapsedSeconds();
  Counters local;
  local.Add(kCtrMapTasksLaunched, 1);

  auto reader = MakeReader(cluster_->client(node), spec_.input_kind,
                           splits_[m]);
  auto mapper = spec_.mapper();
  MapOutputCollector collector(spec_.num_reducers, spec_.partitioner);
  MapCtx ctx(&collector, spec_.config, &local);
  mapper->Setup(&ctx);
  Record record;
  bool has = false;
  for (;;) {
    Status st = reader->Next(&record, &has);
    if (!st.ok()) {
      Fail(st);
      return;
    }
    if (!has) break;
    local.Add(kCtrMapInputRecords, 1);
    mapper->Map(Slice(record.key), Slice(record.value), &ctx);
    if (cancelled()) return;
  }
  mapper->Cleanup(&ctx);

  // Barrier-less mode bypasses the sort (§3.1) — unless a combiner is
  // configured, which needs sorted runs to group keys at the mapper.
  bool sort = spec_.combiner ? true
                             : (spec_.barrierless ? false : spec_.map_side_sort);
  std::unique_ptr<Combiner> combiner;
  if (spec_.combiner) combiner = spec_.combiner();
  auto finished = collector.Finish(sort, spec_.sort_cmp, combiner.get());
  if (!finished.ok()) {
    Fail(finished.status());
    return;
  }
  for (int p = 0; p < spec_.num_reducers; ++p) {
    stores_[node]->Put(m, p, std::move(finished->segments[p]));
  }
  local.Add(kCtrMapOutputRecords, finished->output_records);
  local.Add(kCtrMapOutputBytes, finished->output_bytes);
  local.Add(kCtrCombineInputRecords, finished->combine_in);
  local.Add(kCtrCombineOutputRecords, finished->combine_out);
  MergeCounters(local);

  timeline_.Record(Phase::kMap, m, node, start, clock_.ElapsedSeconds());
  NoteMapDone();
  tracker_->MarkDone(m, node);
}

void JobExecution::RelaunchMap(int m, int exclude_node) {
  {
    std::lock_guard<std::mutex> lock(counters_mu_);
    counters_.Add(kCtrMapTaskRetries, 1);
  }
  int node = PickNode(splits_[m], exclude_node);
  map_pool_->Submit([this, m, node] { RunMapTask(m, node); });
}

void JobExecution::RunReduceTask(int r) {
  if (cancelled()) return;
  // Reducers are placed round-robin over slaves (Hadoop assigns them to
  // free reduce slots; placement does not depend on data locality).
  int node = slaves_[r % slaves_.size()];
  Counters local;
  ReduceCtx ctx(spec_.config, &local);
  if (spec_.barrierless) {
    RunReduceBarrierless(r, node, &ctx);
  } else {
    RunReduceBarrier(r, node, &ctx);
  }
  if (cancelled()) return;
  local.Add(kCtrReduceOutputRecords, ctx.records().size());
  MergeCounters(local);

  double out_start = clock_.ElapsedSeconds();
  Status st = WriteOutput(r, node, ctx.records());
  if (!st.ok()) {
    Fail(st);
    return;
  }
  timeline_.Record(Phase::kOutput, r, node, out_start,
                   clock_.ElapsedSeconds());
}

void JobExecution::RunReduceBarrier(int r, int node, ReduceCtx* ctx) {
  int nmaps = tracker_->num_map_tasks();
  double shuffle_start = clock_.ElapsedSeconds();

  // One asynchronous fetch thread and one buffer per mapper (§3.1).
  std::vector<std::vector<Record>> runs(nmaps);
  std::atomic<uint64_t> shuffle_bytes{0};
  std::vector<std::thread> fetchers;
  fetchers.reserve(nmaps);
  for (int m = 0; m < nmaps; ++m) {
    fetchers.emplace_back([this, m, r, node, &runs, &shuffle_bytes] {
      for (;;) {
        MapOutputTracker::Location loc = tracker_->WaitForMapDone(m);
        if (loc.version < 0) return;  // cancelled
        std::string segment;
        Status st = FetchSegment(cluster_->fabric.get(), loc.node, node, m, r,
                                 &segment);
        if (st.ok()) {
          shuffle_bytes.fetch_add(segment.size());
          Status dst = DecodeSegment(Slice(segment), &runs[m]);
          if (!dst.ok()) Fail(dst);
          return;
        }
        // Output lost (e.g. node died): trigger re-execution and wait
        // for the new attempt.
        if (tracker_->ReportLost(m, loc.version)) RelaunchMap(m, loc.node);
      }
    });
  }
  for (auto& t : fetchers) t.join();
  if (cancelled()) return;
  double barrier_time = clock_.ElapsedSeconds();
  timeline_.Record(Phase::kShuffle, r, node, shuffle_start, barrier_time);
  ctx->counters()->Add(kCtrShuffleBytes, shuffle_bytes.load());

  // Barrier reached: merge-sort the per-mapper buffers (Fig. 2(c)).
  std::vector<Record> records;
  if (spec_.map_side_sort) {
    records = MergeSortedRuns(std::move(runs), spec_.sort_cmp);
  } else {
    for (auto& run : runs) {
      records.insert(records.end(), std::make_move_iterator(run.begin()),
                     std::make_move_iterator(run.end()));
    }
    const KeyCompareFn& cmp = spec_.sort_cmp;
    std::stable_sort(records.begin(), records.end(),
                     [&cmp](const Record& a, const Record& b) {
                       return cmp ? cmp(Slice(a.key), Slice(b.key)) < 0
                                  : a.key < b.key;
                     });
  }
  double sort_done = clock_.ElapsedSeconds();
  timeline_.Record(Phase::kSortMerge, r, node, barrier_time, sort_done);
  SampleMemory(r, records.size() == 0
                      ? 0
                      : [&records] {
                          uint64_t b = 0;
                          for (const auto& rec : records) {
                            b += core::EntryFootprint(rec.key.size(),
                                                      rec.value.size());
                          }
                          return b;
                        }());

  // Grouped reduce execution (Fig. 2(d)).
  ctx->counters()->Add(kCtrReduceInputRecords, records.size());
  auto reducer = spec_.reducer();
  reducer->Setup(ctx);
  const KeyCompareFn& group =
      spec_.group_cmp ? spec_.group_cmp : spec_.sort_cmp;
  Status st = ReduceGroups(records, group, reducer.get(), ctx);
  if (!st.ok()) {
    Fail(st);
    return;
  }
  reducer->Cleanup(ctx);
  timeline_.Record(Phase::kReduce, r, node, sort_done,
                   clock_.ElapsedSeconds());
}

void JobExecution::RunReduceBarrierless(int r, int node, ReduceCtx* ctx) {
  int nmaps = tracker_->num_map_tasks();
  double start = clock_.ElapsedSeconds();

  // Single FIFO buffer shared by all fetchers; the reduce thread (this
  // one) drains it record by record (§3.1 design decision (2)).
  BoundedQueue<Record> fifo(kFifoCapacity);
  {
    std::lock_guard<std::mutex> lock(fifo_reg_mu_);
    live_fifos_.push_back(&fifo);
  }
  std::atomic<int> fetchers_left{nmaps};
  std::atomic<uint64_t> shuffle_bytes{0};
  std::vector<std::thread> fetchers;
  fetchers.reserve(nmaps);
  for (int m = 0; m < nmaps; ++m) {
    fetchers.emplace_back(
        [this, m, r, node, &fifo, &fetchers_left, &shuffle_bytes] {
          for (;;) {
            MapOutputTracker::Location loc = tracker_->WaitForMapDone(m);
            if (loc.version < 0) break;  // cancelled
            std::string segment;
            Status st = FetchSegment(cluster_->fabric.get(), loc.node, node,
                                     m, r, &segment);
            if (st.ok()) {
              shuffle_bytes.fetch_add(segment.size());
              std::vector<Record> records;
              Status dst = DecodeSegment(Slice(segment), &records);
              if (!dst.ok()) {
                Fail(dst);
              } else {
                for (auto& rec : records) {
                  if (!fifo.Push(std::move(rec))) break;  // closed
                }
              }
              break;
            }
            if (tracker_->ReportLost(m, loc.version)) RelaunchMap(m, loc.node);
          }
          if (fetchers_left.fetch_sub(1) == 1) fifo.Close();
        });
  }

  // Pipelined reduce: pop records in arrival order and fold them into
  // partial results.
  core::StoreConfig store_config = spec_.store;
  if (!store_config.key_cmp && spec_.sort_cmp) {
    store_config.key_cmp = spec_.sort_cmp;
  }
  auto reducer = spec_.incremental();
  core::BarrierlessDriver driver(reducer.get(), store_config, spec_.config);
  CtxEmitter emitter(ctx);
  // Memoization: seed the store from the previous run's snapshot.
  if (spec_.session != nullptr) {
    if (const auto* snapshot = spec_.session->Get(r)) {
      for (const Record& p : *snapshot) {
        Status st = driver.PreloadPartial(Slice(p.key), Slice(p.value));
        if (!st.ok()) {
          Fail(st);
          return;
        }
      }
    }
  }
  uint64_t consumed = 0;
  while (auto item = fifo.Pop()) {
    Status st = driver.Consume(Slice(item->key), Slice(item->value), &emitter);
    if (!st.ok()) {
      SampleMemory(r, driver.MemoryBytes());
      Fail(st);
      break;
    }
    if (++consumed % kMemorySampleEvery == 0) {
      SampleMemory(r, driver.MemoryBytes());
    }
  }
  for (auto& t : fetchers) t.join();
  {
    std::lock_guard<std::mutex> lock(fifo_reg_mu_);
    live_fifos_.erase(std::find(live_fifos_.begin(), live_fifos_.end(), &fifo));
  }
  if (cancelled()) return;

  ctx->counters()->Add(kCtrShuffleBytes, shuffle_bytes.load());
  ctx->counters()->Add(kCtrReduceInputRecords, driver.records_consumed());
  Status st;
  if (spec_.session != nullptr) {
    std::vector<Record> snapshot;
    st = driver.FinalizeWithSnapshot(&emitter, &snapshot);
    if (st.ok()) spec_.session->Save(r, std::move(snapshot));
  } else {
    st = driver.Finalize(&emitter);
  }
  if (const core::PartialStore* store = driver.store()) {
    ctx->counters()->Add(kCtrSpills, store->stats().spills);
    ctx->counters()->Add(kCtrSpilledBytes, store->stats().spilled_bytes);
    ctx->counters()->Add(kCtrKvStoreOps,
                         store->stats().gets + store->stats().puts);
  }
  if (!st.ok()) {
    Fail(st);
    return;
  }
  SampleMemory(r, driver.MemoryBytes());
  timeline_.Record(Phase::kShuffleReduce, r, node, start,
                   clock_.ElapsedSeconds());
}

Status JobExecution::WriteOutput(int r, int node,
                                 const std::vector<Record>& records) {
  char name[32];
  std::snprintf(name, sizeof(name), "/part-r-%05d", r);
  std::string path = spec_.output_path + name;
  auto writer = cluster_->client(node)->Create(path);
  if (!writer.ok()) return writer.status();
  ByteBuffer buf;
  for (const Record& rec : records) {
    if (spec_.output_format == OutputFormat::kTextTsv) {
      AppendTsvRecord(&buf, Slice(rec.key), Slice(rec.value));
    } else {
      AppendFramedRecord(&buf, Slice(rec.key), Slice(rec.value));
    }
    if (buf.size() >= (1 << 20)) {
      BMR_RETURN_IF_ERROR((*writer)->Append(buf.AsSlice()));
      buf.Clear();
    }
  }
  BMR_RETURN_IF_ERROR((*writer)->Append(buf.AsSlice()));
  BMR_RETURN_IF_ERROR((*writer)->Close());
  {
    std::lock_guard<std::mutex> lock(output_mu_);
    output_files_.push_back(path);
  }
  return Status::Ok();
}

}  // namespace

JobResult JobRunner::Run(const JobSpec& spec) {
  JobExecution execution(cluster_, spec);
  return execution.Run();
}

StatusOr<std::vector<Record>> JobRunner::ReadPartFile(
    dfs::DfsClient* client, const std::string& path, OutputFormat format) {
  BMR_ASSIGN_OR_RETURN(std::string data, client->ReadAll(path));
  std::vector<Record> records;
  if (format == OutputFormat::kTextTsv) {
    BMR_RETURN_IF_ERROR(ParseTsvRecords(Slice(data), &records));
  } else {
    BMR_RETURN_IF_ERROR(DecodeSegment(Slice(data), &records));
  }
  return records;
}

StatusOr<std::vector<Record>> JobRunner::ReadAllOutput(
    dfs::DfsClient* client, const JobResult& result, OutputFormat format) {
  std::vector<Record> all;
  std::vector<std::string> files = result.output_files;
  std::sort(files.begin(), files.end());
  for (const auto& file : files) {
    BMR_ASSIGN_OR_RETURN(std::vector<Record> part,
                         ReadPartFile(client, file, format));
    all.insert(all.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  return all;
}

}  // namespace bmr::mr
