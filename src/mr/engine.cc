#include "mr/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "common/arena.h"
#include "common/codec.h"
#include "common/logging.h"
#include "concurrency/thread_pool.h"
#include "faults/fault_injector.h"
#include "mr/input.h"
#include "mr/job_control.h"
#include "mr/map_output.h"
#include "mr/shuffle_service.h"
#include "mr/task_executor.h"
#include "mr/task_scheduler.h"
#include "obs/flight_recorder.h"
#include "obs/metric_names.h"
#include "obs/trace.h"

namespace bmr::mr {

std::unique_ptr<ClusterContext> ClusterContext::Create(
    cluster::ClusterSpec spec) {
  auto ctx = std::make_unique<ClusterContext>();
  ctx->spec = std::move(spec);
  int n = static_cast<int>(ctx->spec.nodes.size());
  // Transport selection: the spec's knob wins, then the environment
  // (so whole test binaries can be re-run over TCP without code
  // changes), then the deterministic in-process default.
  std::string kind = ctx->spec.transport;
  if (kind.empty()) {
    const char* env = std::getenv("BMR_NET_TRANSPORT");
    if (env != nullptr) kind = env;
  }
  auto transport = net::CreateTransport(kind, n);
  if (!transport.ok()) {
    BMR_ERROR << "cannot create '" << kind
              << "' transport, falling back to inproc: "
              << transport.status();
    transport = net::CreateTransport("inproc", n);
  }
  ctx->transport = std::move(*transport);
  ctx->dfs = std::make_unique<dfs::Dfs>(ctx->transport.get(),
                                        ctx->spec.dfs_replication,
                                        ctx->spec.dfs_block_bytes);
  ctx->clients.resize(n);
  for (int i = 0; i < n; ++i) {
    ctx->clients[i] = std::make_unique<dfs::DfsClient>(ctx->dfs.get(), i);
  }
  return ctx;
}

void ClusterContext::KillNode(int node) {
  transport->KillNode(node);    // drops dn.*, shuffle fetch on that node
  dfs->KillDataNode(node);      // excludes it from future placement
}

void ClusterContext::InstallFaultInjector(faults::FaultInjector* injector) {
  fault_injector = injector;
  transport->SetFaultInjector(injector);
  if (injector != nullptr) {
    injector->BindCrash([this](int node) { KillNode(node); });
  }
}

namespace {

/// One job run: validates the spec, composes the scheduler / executor /
/// shuffle-service / metrics layers, submits the tasks, and assembles
/// the result.  All placement, retry, fetch, and metrics logic lives in
/// the layers.
class JobExecution {
 public:
  JobExecution(ClusterContext* cluster, const JobSpec& spec)
      : cluster_(cluster),
        spec_(spec),
        slaves_(cluster->spec.SlaveIds()) {}

  JobResult Run();

 private:
  Status Validate() const;
  Status PlanInput();

  /// Lost-output recovery: reopen the task and queue a fresh attempt
  /// on a node other than the one that lost it.
  void Relaunch(int map_task, int lost_node) {
    metrics_.AddCounter(kCtrMapTaskRetries, 1);
    obs::FlightRecorder::Global()->Note("map.relaunch", "recovery", map_task,
                                        lost_node);
    scheduler_->ReopenTask(map_task);
    TaskScheduler::Attempt attempt = scheduler_->Assign(map_task, lost_node);
    map_pool_->Submit(
        [this, attempt] { map_executor_->Execute(attempt); });
  }

  ClusterContext* cluster_;
  const JobSpec& spec_;
  std::vector<int> slaves_;
  std::vector<InputSplit> splits_;

  MetricsRegistry metrics_;
  std::unique_ptr<ShuffleService> shuffle_;
  std::unique_ptr<TaskScheduler> scheduler_;
  std::unique_ptr<JobControl> control_;
  std::unique_ptr<MapTaskExecutor> map_executor_;
  std::unique_ptr<ReduceTaskExecutor> reduce_executor_;
  // Pools last: destroyed first, so no task can outlive the layers.
  std::unique_ptr<ThreadPool> map_pool_;
  std::unique_ptr<ThreadPool> reduce_pool_;
};

Status JobExecution::Validate() const {
  if (spec_.input_files.empty()) {
    return Status::InvalidArgument("job has no input files");
  }
  if (!spec_.mapper) return Status::InvalidArgument("job has no mapper");
  if (spec_.num_reducers < 1) {
    return Status::InvalidArgument("num_reducers must be >= 1");
  }
  if (spec_.barrierless && !spec_.incremental) {
    return Status::InvalidArgument(
        "barrier-less job needs an IncrementalReducer");
  }
  if (!spec_.barrierless && !spec_.reducer) {
    return Status::InvalidArgument("with-barrier job needs a Reducer");
  }
  if (slaves_.empty()) return Status::InvalidArgument("no slave nodes");
  return Status::Ok();
}

Status JobExecution::PlanInput() {
  BMR_ASSIGN_OR_RETURN(std::vector<std::string> inputs,
                       ExpandInputs(cluster_->client(0), spec_.input_files));
  BMR_ASSIGN_OR_RETURN(splits_,
                       PlanSplits(cluster_->client(0), inputs,
                                  spec_.input_kind, spec_.split_bytes));
  if (splits_.empty()) return Status::InvalidArgument("input is empty");
  return Status::Ok();
}

JobResult JobExecution::Run() {
  JobResult result;
  result.status = Validate();
  if (!result.status.ok()) return result;
  result.status = PlanInput();
  if (!result.status.ok()) return result;

  // Compose the layers.  The obs.trace knob arms the job's tracer
  // before any layer is built, so every span and latency sample of the
  // run lands in one log.  Tracing state is job-scoped; the shared
  // transport carries one observer at a time (same single-traced-job
  // caveat as the fault-injector clock below).
  const bool traced = spec_.config.GetBool("obs.trace", false);
  obs::Tracer* tracer = metrics_.tracer();
  if (traced) {
    metrics_.EnableTracing();
    cluster_->transport->SetObserver(tracer);
  }

  int nmaps = static_cast<int>(splits_.size());
  ShuffleService::Options shuffle_options;
  shuffle_options.injector = cluster_->fault_injector;
  shuffle_options.tracer = tracer;
  shuffle_options.max_fetch_retries = static_cast<int>(
      spec_.config.GetInt("shuffle.fetch.max_retries",
                          shuffle_options.max_fetch_retries));
  shuffle_options.backoff_ms = spec_.config.GetDouble(
      "shuffle.fetch.backoff_ms", shuffle_options.backoff_ms);
  shuffle_options.backoff_max_ms = spec_.config.GetDouble(
      "shuffle.fetch.backoff_max_ms", shuffle_options.backoff_max_ms);
  shuffle_options.fail_on_fetch_error =
      spec_.config.GetBool("shuffle.fail_on_fetch_error", false);
  // Segment codec selection mirrors the transport knob: the spec wins,
  // then the environment (BMR_SHUFFLE_CODEC — resolved inside
  // ShuffleService so directly-constructed services honor it too).  A
  // knob typo fails the job rather than silently running uncompressed.
  const std::string codec_name = spec_.config.GetString("shuffle.codec", "");
  if (!codec_name.empty()) {
    StatusOr<const Codec*> codec = FindCodec(codec_name);
    if (!codec.ok()) {
      result.status = codec.status();
      return result;
    }
    shuffle_options.codec = *codec;
  }
  shuffle_options.block_bytes = static_cast<size_t>(spec_.config.GetInt(
      "shuffle.block_bytes", static_cast<int64_t>(kDefaultShuffleBlockBytes)));
  const uint64_t job_id = cluster_->AllocateJobId();
  shuffle_ = std::make_unique<ShuffleService>(
      cluster_->transport.get(),
      static_cast<int>(cluster_->spec.nodes.size()), nmaps, job_id,
      shuffle_options);
  TaskScheduler::Options sched_options;
  sched_options.speculative = spec_.speculative_maps;
  sched_options.slowness = spec_.speculation_slowness;
  sched_options.min_runtime = spec_.speculation_min_runtime;
  scheduler_ =
      std::make_unique<TaskScheduler>(cluster_->spec, &splits_, sched_options);
  control_ = std::make_unique<JobControl>(shuffle_.get());
  auto relaunch = [this](int m, int node) { Relaunch(m, node); };
  map_executor_ = std::make_unique<MapTaskExecutor>(
      cluster_, spec_, &splits_, scheduler_.get(), shuffle_.get(), &metrics_,
      control_.get());
  reduce_executor_ = std::make_unique<ReduceTaskExecutor>(
      cluster_, spec_, shuffle_.get(), &metrics_, control_.get(), relaunch);
  map_pool_ =
      std::make_unique<ThreadPool>(cluster_->spec.total_map_slots());
  reduce_pool_ =
      std::make_unique<ThreadPool>(cluster_->spec.total_reduce_slots());

  // Launch.
  metrics_.RestartClock();
  obs::FlightRecorder::Global()->Note("job.start", "job",
                                      static_cast<int64_t>(job_id), -1);
  obs::SpanId root_span = 0;
  if (traced) {
    // The job span stays open for the whole run; task spans parent to
    // it from the pool threads, so it is emitted manually at the end
    // rather than through a ScopedSpan.
    root_span = tracer->NextSpanId();
    tracer->SetRootSpan(root_span);
  }
  if (faults::FaultInjector* injector = cluster_->fault_injector) {
    // Stamp injected faults on this job's clock.  One job at a time per
    // injector: chaos runs drive a single job against the cluster.
    injector->SetClock([this] { return metrics_.Now(); });
  }
  for (int m = 0; m < nmaps; ++m) {
    TaskScheduler::Attempt attempt = scheduler_->Assign(m);
    map_pool_->Submit(
        [this, attempt] { map_executor_->Execute(attempt); });
  }
  for (int r = 0; r < spec_.num_reducers; ++r) {
    int node = slaves_[r % slaves_.size()];
    reduce_pool_->Submit(
        [this, r, node] { reduce_executor_->Execute(r, node); });
  }

  // Straggler watchdog: poll the scheduler for backup attempts while
  // map tasks are still uncommitted.  Runs on a single-worker pool so
  // the engine owns no raw std::threads (lint rule).
  std::atomic<bool> stop_watchdog{false};
  std::unique_ptr<ThreadPool> watchdog;
  if (spec_.speculative_maps) {
    watchdog = std::make_unique<ThreadPool>(1);
    watchdog->Submit([this, &stop_watchdog] {
      while (!stop_watchdog.load(std::memory_order_relaxed)) {
        if (control_->cancelled() || scheduler_->AllCommitted()) break;
        for (const TaskScheduler::Attempt& backup :
             scheduler_->PollSpeculation(metrics_.Now())) {
          map_pool_->Submit(
              [this, backup] { map_executor_->Execute(backup); });
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    });
  }

  // Reducers finish only once every map output has been fetched, so
  // the watchdog can be retired before draining the map pool.
  reduce_pool_->Wait();
  stop_watchdog.store(true, std::memory_order_relaxed);
  watchdog.reset();  // joins the watchdog worker
  map_pool_->Wait();

  // Export the faults that fired during this run into the job's own
  // observability: timeline events (instantaneous, task_id = kind) and
  // per-kind counters.
  if (faults::FaultInjector* injector = cluster_->fault_injector) {
    Counters fault_counters;
    for (const faults::FaultInjector::FaultRecord& rec :
         injector->DrainLog()) {
      metrics_.RecordEvent(Phase::kFault, static_cast<int>(rec.kind),
                           rec.node, rec.t, rec.t);
      fault_counters.Add(
          std::string(obs::kCtrFaultInjectedPrefix) +
              faults::FaultKindName(rec.kind),
          1);
      obs::FlightRecorder::Global()->Note(
          std::string("fault.") + faults::FaultKindName(rec.kind), "fault",
          static_cast<int64_t>(rec.kind), rec.node);
      if (rec.kind == faults::FaultKind::kNodeCrash) {
        // An injected crash is always dump-worthy forensics, even when
        // recovery saves the job.
        obs::FlightRecorder::Global()->RequestDump(
            "fault.node_crash node=" + std::to_string(rec.node), rec.node);
      }
    }
    metrics_.MergeCounters(fault_counters);
    injector->SetClock(nullptr);
  }

  if (traced) {
    // Close the job span (it contains every task span by construction)
    // and detach from the shared transport before another job traces.
    obs::Span job_span;
    job_span.id = root_span;
    job_span.name = obs::kSpanJob;
    job_span.category = "job";
    job_span.start_s = 0;
    job_span.end_s = tracer->Now();
    tracer->EmitSpan(job_span);
    cluster_->transport->SetObserver(nullptr);
  }

  // Every reducer has drained and every map completed: flush any encode
  // still in flight so the codec byte counts below are complete.
  shuffle_->DrainPublishes();
  SegmentEncodeStats encode_stats = shuffle_->encode_stats();
  result.data_plane.codec_raw_bytes = encode_stats.raw_bytes;
  result.data_plane.codec_wire_bytes = encode_stats.wire_bytes;
  Arena::GlobalStatsSnapshot arena_stats = Arena::GlobalStats();
  result.data_plane.arena_allocated_bytes = arena_stats.allocated_bytes;
  result.data_plane.arena_chunk_reuses = arena_stats.chunks_reused;
  BufferPool::Stats pool_stats = BufferPool::Global()->stats();
  result.data_plane.arena_buffer_reuses = pool_stats.reuses;
  result.data_plane.arena_cached_bytes = pool_stats.cached_bytes;

  // Assemble the result from the metrics layer.
  JobMetrics metrics = metrics_.Snapshot();
  result.status = control_->status();

  // Post-mortem flight dump (GUIDE §15): anything that requested one
  // during the run — injected crash, tainted-reducer restart — plus a
  // job failure here, produces one artifact per job run, written to
  // the obs.flight_dir knob / BMR_FLIGHT_DIR env.  No directory
  // configured = triggers are dropped (the ring keeps recording).
  obs::FlightRecorder* recorder = obs::FlightRecorder::Global();
  if (!result.status.ok()) {
    recorder->RequestDump(
        std::string("job.failure: ") + result.status.message(),
        static_cast<int64_t>(job_id));
  }
  std::vector<std::string> dump_reasons = recorder->TakeDumpReasons();
  if (!dump_reasons.empty()) {
    std::string flight_dir = spec_.config.GetString("obs.flight_dir", "");
    if (flight_dir.empty()) {
      const char* env = std::getenv("BMR_FLIGHT_DIR");
      if (env != nullptr) flight_dir = env;
    }
    if (!flight_dir.empty()) {
      StatusOr<std::string> path = recorder->DumpToDir(flight_dir);
      if (path.ok()) {
        result.flight_dumps = 1;
        BMR_INFO << "flight recorder dumped " << *path << " ("
                 << dump_reasons.front() << ")";
      } else {
        BMR_WARN << "flight recorder dump failed: "
                 << path.status().message();
      }
    }
  }
  result.elapsed_seconds = metrics.elapsed_seconds;
  result.first_map_done = metrics.first_map_done;
  result.last_map_done = metrics.last_map_done;
  result.counters = std::move(metrics.counters);
  result.events = std::move(metrics.events);
  result.memory_samples = std::move(metrics.memory_samples);
  result.output_files = std::move(metrics.output_files);
  result.rpc_handler_reregistrations =
      cluster_->transport->handler_reregistrations();
  result.trace_enabled = metrics.trace_enabled;
  result.trace = std::move(metrics.trace);
  result.histograms = std::move(metrics.histograms);
  result.spans_dropped = metrics.spans_dropped;
  return result;
}

}  // namespace

JobMetrics JobResult::ToMetrics() const {
  JobMetrics m;
  m.counters = counters;
  m.events = events;
  m.memory_samples = memory_samples;
  m.output_files = output_files;
  m.elapsed_seconds = elapsed_seconds;
  m.first_map_done = first_map_done;
  m.last_map_done = last_map_done;
  m.rpc_handler_reregistrations = rpc_handler_reregistrations;
  m.data_plane = data_plane;
  m.trace_enabled = trace_enabled;
  m.trace = trace;
  m.histograms = histograms;
  m.spans_dropped = spans_dropped;
  m.flight_dumps = flight_dumps;
  return m;
}

JobResult JobRunner::Run(const JobSpec& spec) {
  // Job-level recovery of last resort: when task-level recovery could
  // not save a run (e.g. injected spill-file errors past the reduce
  // restart budget), rerun the whole job.  Off by default; memoized
  // sessions never auto-restart (a failed run may have saved partial
  // snapshots the rerun would double-count).
  int max_restarts =
      static_cast<int>(spec.config.GetInt("job.max_restarts", 0));
  if (spec.session != nullptr) max_restarts = 0;
  uint64_t restarts = 0;
  for (;;) {
    JobExecution execution(cluster_, spec);
    JobResult result = execution.Run();
    result.counters.Add(kCtrJobRestarts, restarts);
    bool recoverable =
        result.status.code() == StatusCode::kUnavailable ||
        result.status.code() == StatusCode::kDataLoss ||
        result.status.code() == StatusCode::kNotFound;
    if (result.ok() || !recoverable ||
        restarts >= static_cast<uint64_t>(max_restarts)) {
      return result;
    }
    ++restarts;
  }
}

StatusOr<std::vector<Record>> JobRunner::ReadPartFile(
    dfs::DfsClient* client, const std::string& path, OutputFormat format) {
  BMR_ASSIGN_OR_RETURN(std::string data, client->ReadAll(path));
  std::vector<Record> records;
  if (format == OutputFormat::kTextTsv) {
    BMR_RETURN_IF_ERROR(ParseTsvRecords(Slice(data), &records));
  } else {
    BMR_RETURN_IF_ERROR(DecodeSegment(Slice(data), &records));
  }
  return records;
}

StatusOr<std::vector<Record>> JobRunner::ReadAllOutput(
    dfs::DfsClient* client, const JobResult& result, OutputFormat format) {
  std::vector<Record> all;
  std::vector<std::string> files = result.output_files;
  std::sort(files.begin(), files.end());
  for (const auto& file : files) {
    BMR_ASSIGN_OR_RETURN(std::vector<Record> part,
                         ReadPartFile(client, file, format));
    all.insert(all.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  return all;
}

}  // namespace bmr::mr
