#include "mr/metrics.h"

#include <algorithm>
#include <cstdio>

#include "obs/export.h"
#include "obs/flight_recorder.h"

namespace bmr::mr {

void MetricsRegistry::AddCounter(const char* name, uint64_t delta) {
  MutexLock lock(mu_);
  counters_.Add(name, delta);
}

void MetricsRegistry::MergeCounters(const Counters& c) {
  MutexLock lock(mu_);
  counters_.MergeFrom(c);
}

uint64_t MetricsRegistry::GetCounter(const char* name) const {
  MutexLock lock(mu_);
  return counters_.Get(name);
}

void MetricsRegistry::SampleMemory(int reducer, uint64_t bytes) {
  double t = Now();
  MutexLock lock(mu_);
  samples_.push_back(MemorySample{t, reducer, bytes});
}

void MetricsRegistry::NoteMapDone() {
  double t = Now();
  MutexLock lock(mu_);
  if (first_map_done_ == 0) first_map_done_ = t;
  last_map_done_ = std::max(last_map_done_, t);
}

void MetricsRegistry::NoteOutputFile(std::string path) {
  MutexLock lock(mu_);
  output_files_.push_back(std::move(path));
}

void MetricsRegistry::RecordEvent(Phase phase, int task_id, int node,
                                  double start, double end) {
  timeline_.Record(phase, task_id, node, start, end);
  // Mirror every task-phase event into the always-armed flight ring
  // (GUIDE §15) so a post-mortem dump shows recent task history even
  // for runs with obs.trace off.
  obs::FlightRecorder::Global()->RecordSpan(PhaseName(phase), "task", task_id,
                                            node, end - start);
}

JobMetrics MetricsRegistry::Snapshot() const {
  JobMetrics m;
  m.events = timeline_.Snapshot();
  m.elapsed_seconds = Now();
  if (tracer_.enabled()) {
    m.trace_enabled = true;
    m.trace = tracer_.CollectTrace();
    m.histograms = tracer_.SnapshotHistograms();
    m.spans_dropped = tracer_.dropped_spans();
  }
  MutexLock lock(mu_);
  m.counters = counters_;
  m.memory_samples = samples_;
  m.output_files = output_files_;
  m.first_map_done = first_map_done_;
  m.last_map_done = last_map_done_;
  return m;
}

std::string FormatJobMetrics(const std::string& label, const JobMetrics& m) {
  char line[160];
  std::string out;
  std::snprintf(line, sizeof(line), "[%s] elapsed %.3fs  maps done %.3fs..%.3fs\n",
                label.c_str(), m.elapsed_seconds, m.first_map_done,
                m.last_map_done);
  out += line;
  std::snprintf(line, sizeof(line),
                "[%s] %zu task events, %zu memory samples, %zu output files\n",
                label.c_str(), m.events.size(), m.memory_samples.size(),
                m.output_files.size());
  out += line;
  for (const auto& [name, value] : m.counters.values()) {
    std::snprintf(line, sizeof(line), "[%s]   %-32s %llu\n", label.c_str(),
                  name.c_str(), static_cast<unsigned long long>(value));
    out += line;
  }
  if (!m.histograms.empty()) {
    std::snprintf(line, sizeof(line), "[%s] %zu latency histograms\n",
                  label.c_str(), m.histograms.size());
    out += line;
    std::string summaries = obs::FormatHistogramSummaries(m.histograms);
    size_t pos = 0;
    while (pos < summaries.size()) {
      size_t eol = summaries.find('\n', pos);
      if (eol == std::string::npos) eol = summaries.size();
      out += "[" + label + "]   " + summaries.substr(pos, eol - pos) + "\n";
      pos = eol + 1;
    }
  }
  return out;
}

}  // namespace bmr::mr
