// User-facing Map / Reduce / Combine interfaces (the barrier-mode
// programming model; the barrier-less model is core/incremental.h).
#pragma once

#include <memory>
#include <vector>

#include "common/bytes.h"
#include "common/config.h"
#include "mr/emitter.h"
#include "mr/types.h"

namespace bmr::mr {

/// Context handed to Map: an emitter plus job config and counters.
class MapContext : public MapEmitter {
 public:
  virtual const Config& config() const = 0;
  virtual Counters* counters() = 0;
};

class Mapper {
 public:
  virtual ~Mapper() = default;
  virtual void Setup(MapContext* ctx) { (void)ctx; }
  /// `key` is input-format defined (byte offset for text lines), and
  /// `value` is the record body (the line).
  virtual void Map(Slice key, Slice value, MapContext* ctx) = 0;
  virtual void Cleanup(MapContext* ctx) { (void)ctx; }
};

/// Iteration over the values of one key group in barrier mode.
class ValuesIterator {
 public:
  virtual ~ValuesIterator() = default;
  virtual bool Next(Slice* value) = 0;
};

class ReduceContext : public ReduceEmitter {
 public:
  virtual const Config& config() const = 0;
  virtual Counters* counters() = 0;
};

/// Barrier-mode Reducer: invoked once per key group with all values,
/// after the shuffle barrier and merge sort (Figure 2).
class Reducer {
 public:
  virtual ~Reducer() = default;
  virtual void Setup(ReduceContext* ctx) { (void)ctx; }
  virtual void Reduce(Slice key, ValuesIterator* values,
                      ReduceContext* ctx) = 0;
  virtual void Cleanup(ReduceContext* ctx) { (void)ctx; }
};

/// Map-side combiner: folds one key's buffered values before shuffle.
class Combiner {
 public:
  virtual ~Combiner() = default;
  virtual void Combine(Slice key, const std::vector<Slice>& values,
                       MapEmitter* out) = 0;
};

using MapperFactory = std::function<std::unique_ptr<Mapper>()>;
using ReducerFactory = std::function<std::unique_ptr<Reducer>()>;
using CombinerFactory = std::function<std::unique_ptr<Combiner>()>;

}  // namespace bmr::mr
