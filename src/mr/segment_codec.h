// The shuffle segment wire container (GUIDE §13): what MapOutputStore
// stores and FetchSegment moves since the encoding pass.  A framed
// record stream (map_output.h) is carved into blocks of at most
// `shuffle.block_bytes` raw bytes; each block is independently
// compressed (or stored verbatim when the codec cannot shrink it) and
// carries an FNV-1a checksum of its encoded bytes, verified *before*
// any decompression touches the data:
//
//   header  u8 magic 0xB5 | u8 version (1) | u8 codec id (diagnostic)
//           | varint raw_total
//   block*  varint raw_len | u8 flags (0 = stored, else codec wire id)
//           | varint enc_len | fixed64 fnv1a(enc) | enc bytes
//
// Blocks must cover exactly raw_total bytes with no trailing input.
// Decode allocates the raw buffer from BufferPool::Global(), so the
// zero-copy RecordBatch built on top of it recycles through the pool.
#pragma once

#include <memory>
#include <string>

#include "common/bytes.h"
#include "common/codec.h"
#include "common/status.h"

namespace bmr::mr {

/// Hard ceiling on a decoded segment (matches the transport framing
/// cap): untrusted headers cannot make us allocate more than this.
inline constexpr uint64_t kMaxSegmentRawBytes = 64ull << 20;
/// Default raw bytes per compression block (`shuffle.block_bytes`).
inline constexpr size_t kDefaultShuffleBlockBytes = 64 << 10;

struct SegmentEncodeStats {
  uint64_t raw_bytes = 0;
  uint64_t wire_bytes = 0;
  uint64_t blocks = 0;
  uint64_t compressed_blocks = 0;  ///< blocks the codec actually shrank
};

/// Encode `raw` (a framed record stream) into the block container,
/// appending to `out`.  Never fails: incompressible blocks are stored.
void EncodeShuffleSegment(Slice raw, const Codec& codec, size_t block_bytes,
                          ByteBuffer* out, SegmentEncodeStats* stats = nullptr);

/// Decode a block container into its raw bytes (pool-backed buffer).
/// Verifies structure and every block checksum before decompressing;
/// any violation is DataLoss and `*raw` is untouched.  Safe on fully
/// untrusted input (fuzz-swept in tests/fuzz_decoders_test.cc).
[[nodiscard]] Status DecodeShuffleSegment(
    Slice wire, std::shared_ptr<const std::string>* raw);

}  // namespace bmr::mr
