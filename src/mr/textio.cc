#include "mr/textio.h"

#include <cctype>
#include <cstdio>

namespace bmr::mr {

std::string EscapeTsvField(Slice field) {
  std::string out;
  out.reserve(field.size());
  for (size_t i = 0; i < field.size(); ++i) {
    unsigned char c = static_cast<unsigned char>(field[i]);
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default:
        if (std::isprint(c)) {
          out += static_cast<char>(c);
        } else {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\x%02x", c);
          out += buf;
        }
    }
  }
  return out;
}

namespace {

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

bool UnescapeTsvField(Slice field, std::string* out) {
  out->clear();
  out->reserve(field.size());
  for (size_t i = 0; i < field.size(); ++i) {
    char c = field[i];
    if (c != '\\') {
      out->push_back(c);
      continue;
    }
    if (++i >= field.size()) return false;
    switch (field[i]) {
      case '\\': out->push_back('\\'); break;
      case 't': out->push_back('\t'); break;
      case 'n': out->push_back('\n'); break;
      case 'r': out->push_back('\r'); break;
      case 'x': {
        if (i + 2 >= field.size()) return false;
        int hi = HexValue(field[i + 1]);
        int lo = HexValue(field[i + 2]);
        if (hi < 0 || lo < 0) return false;
        out->push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
        break;
      }
      default:
        return false;
    }
  }
  return true;
}

void AppendTsvRecord(ByteBuffer* out, Slice key, Slice value) {
  std::string k = EscapeTsvField(key);
  std::string v = EscapeTsvField(value);
  out->Append(k.data(), k.size());
  out->PushByte('\t');
  out->Append(v.data(), v.size());
  out->PushByte('\n');
}

Status ParseTsvRecords(Slice data, std::vector<Record>* out) {
  std::string_view text = data.view();
  size_t pos = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) nl = text.size();
    std::string_view line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    size_t tab = line.find('\t');
    if (tab == std::string_view::npos) {
      return Status::DataLoss("TSV line without a tab separator");
    }
    Record record;
    if (!UnescapeTsvField(Slice(line.data(), tab), &record.key) ||
        !UnescapeTsvField(Slice(line.data() + tab + 1, line.size() - tab - 1),
                          &record.value)) {
      return Status::DataLoss("malformed TSV escape sequence");
    }
    out->push_back(std::move(record));
  }
  return Status::Ok();
}

}  // namespace bmr::mr
