#include "mr/obs_export.h"

#include <algorithm>
#include <fstream>
#include <set>

#include "obs/metric_names.h"
#include "obs/validate.h"

namespace bmr::mr {
namespace {

// Task-phase lanes render in a separate Perfetto process so the
// fine-grained engine-thread spans (pid 1) and the coarse per-task
// phase bars (pid 2) do not interleave on one lane.
constexpr int kTaskPid = 2;

}  // namespace

obs::TraceLog BuildTraceLog(const JobMetrics& m) {
  obs::TraceLog log = m.trace;

  obs::SpanId next_id = 1;
  for (const obs::Span& s : log.spans) next_id = std::max(next_id, s.id + 1);

  std::set<int> task_lanes;
  for (const TaskEvent& ev : m.events) {
    obs::Span span;
    span.id = next_id++;
    span.parent = 0;
    span.name = PhaseName(ev.phase);
    span.category = "task";
    span.pid = kTaskPid;
    span.tid = ev.task_id;
    span.arg = ev.task_id;
    span.start_s = ev.start;
    span.end_s = std::max(ev.end, ev.start);
    log.spans.push_back(span);
    task_lanes.insert(ev.task_id);
  }
  for (int tid : task_lanes) {
    log.tracks.push_back({kTaskPid, tid, "task-" + std::to_string(tid)});
  }

  for (const MemorySample& s : m.memory_samples) {
    log.counters.push_back({"heap_bytes_r" + std::to_string(s.reducer),
                            kTaskPid, s.reducer, s.t,
                            static_cast<double>(s.bytes)});
  }
  return log;
}

obs::MetricsSnapshot BuildMetricsSnapshot(const JobMetrics& m) {
  obs::MetricsSnapshot snap;
  snap.counters = m.counters.values();
  snap.histograms = m.histograms;
  snap.gauges[obs::kPromJobElapsedSeconds] = m.elapsed_seconds;
  snap.gauges[obs::kPromJobFirstMapDoneSeconds] = m.first_map_done;
  snap.gauges[obs::kPromJobLastMapDoneSeconds] = m.last_map_done;
  snap.gauges[obs::kPromRpcHandlerReregistered] =
      static_cast<double>(m.rpc_handler_reregistrations);
  uint64_t peak = 0;
  for (const MemorySample& s : m.memory_samples) peak = std::max(peak, s.bytes);
  snap.gauges[obs::kPromReducerHeapPeakBytes] = static_cast<double>(peak);
  const DataPlaneStats& dp = m.data_plane;
  snap.gauges[obs::kPromCodecRawBytes] = static_cast<double>(dp.codec_raw_bytes);
  snap.gauges[obs::kPromCodecWireBytes] =
      static_cast<double>(dp.codec_wire_bytes);
  snap.gauges[obs::kPromArenaAllocatedBytes] =
      static_cast<double>(dp.arena_allocated_bytes);
  snap.gauges[obs::kPromArenaChunkReuseTotal] =
      static_cast<double>(dp.arena_chunk_reuses);
  snap.gauges[obs::kPromArenaBufferReuseTotal] =
      static_cast<double>(dp.arena_buffer_reuses);
  snap.gauges[obs::kPromArenaCachedBytes] =
      static_cast<double>(dp.arena_cached_bytes);
  // Observability self-metrics (GUIDE §15): traced runs always expose
  // the span-loss counter — 0 is the interesting common case, nonzero
  // means the trace is a sampled prefix.
  if (m.trace_enabled) {
    snap.counters[obs::kPromObsSpansDropped] = m.spans_dropped;
  }
  if (m.flight_dumps > 0) {
    snap.counters[obs::kPromObsFlightDumps] = m.flight_dumps;
  }
  return snap;
}

Status WriteTraceArtifacts(const JobMetrics& m,
                           const std::string& trace_json_path,
                           const std::string& prom_text_path) {
  const std::string json = obs::PerfettoTraceJson(BuildTraceLog(m));
  Status s = obs::ValidatePerfettoJson(json);
  if (!s.ok()) return s;
  const std::string prom = obs::PrometheusText(BuildMetricsSnapshot(m));
  s = obs::ValidatePrometheusText(prom);
  if (!s.ok()) return s;

  std::ofstream trace_out(trace_json_path, std::ios::trunc);
  trace_out << json;
  trace_out.close();
  if (!trace_out) {
    return Status::Internal("cannot write " + trace_json_path);
  }
  std::ofstream prom_out(prom_text_path, std::ios::trunc);
  prom_out << prom;
  prom_out.close();
  if (!prom_out) {
    return Status::Internal("cannot write " + prom_text_path);
  }
  return Status::Ok();
}

}  // namespace bmr::mr
