#include "mr/input.h"

#include <algorithm>

#include "common/serde.h"

namespace bmr::mr {

namespace {
constexpr uint64_t kReadChunkBytes = 256 << 10;
}

StatusOr<std::vector<std::string>> ExpandInputs(
    dfs::DfsClient* client, const std::vector<std::string>& patterns) {
  std::vector<std::string> files;
  for (const auto& pattern : patterns) {
    if (!pattern.empty() && pattern.back() == '*') {
      std::string prefix = pattern.substr(0, pattern.size() - 1);
      BMR_ASSIGN_OR_RETURN(std::vector<std::string> matched,
                           client->ListFiles(prefix));
      if (matched.empty()) {
        return Status::NotFound("no files match " + pattern);
      }
      files.insert(files.end(), matched.begin(), matched.end());
    } else {
      files.push_back(pattern);
    }
  }
  return files;
}

StatusOr<std::vector<InputSplit>> PlanSplits(
    dfs::DfsClient* client, const std::vector<std::string>& files,
    InputKind kind, uint64_t split_bytes) {
  std::vector<InputSplit> splits;
  for (const auto& file : files) {
    BMR_ASSIGN_OR_RETURN(dfs::FileInfo info, client->GetFileInfo(file));
    if (info.size == 0) continue;

    if (kind == InputKind::kKvPairs) {
      InputSplit split;
      split.file = file;
      split.offset = 0;
      split.length = info.size;
      if (!info.blocks.empty()) {
        split.preferred_nodes = info.blocks.front().replicas;
      }
      splits.push_back(std::move(split));
      continue;
    }

    uint64_t target = split_bytes == 0 ? client->dfs()->block_bytes()
                                       : split_bytes;
    uint64_t offset = 0;
    while (offset < info.size) {
      InputSplit split;
      split.file = file;
      split.offset = offset;
      split.length = std::min<uint64_t>(target, info.size - offset);
      // Locate the block containing the split start for locality.
      uint64_t block_start = 0;
      for (const auto& block : info.blocks) {
        if (offset < block_start + block.size) {
          split.preferred_nodes = block.replicas;
          break;
        }
        block_start += block.size;
      }
      offset += split.length;
      splits.push_back(std::move(split));
    }
  }
  return splits;
}

// ----------------------------------------------------------- TextLineReader

TextLineReader::TextLineReader(dfs::DfsClient* client, InputSplit split)
    : client_(client), split_(std::move(split)) {}

Status TextLineReader::Refill() {
  if (read_pos_ >= file_size_) {
    exhausted_ = true;
    return Status::Ok();
  }
  uint64_t n = std::min<uint64_t>(kReadChunkBytes, file_size_ - read_pos_);
  ByteBuffer chunk;
  BMR_RETURN_IF_ERROR(client_->Pread(split_.file, read_pos_, n, &chunk));
  if (chunk.empty()) {
    exhausted_ = true;
    return Status::Ok();
  }
  // Compact the consumed prefix before appending.
  if (cursor_ > 0) {
    logical_pos_ += cursor_;
    buffer_.erase(0, cursor_);
    cursor_ = 0;
  }
  buffer_.append(chunk.data(), chunk.size());
  read_pos_ += chunk.size();
  return Status::Ok();
}

Status TextLineReader::Next(Record* record, bool* has) {
  if (!initialized_) {
    initialized_ = true;
    BMR_ASSIGN_OR_RETURN(dfs::FileInfo info, client_->GetFileInfo(split_.file));
    file_size_ = info.size;
    // Hadoop's LineRecordReader trick: a split starting past 0 begins
    // scanning at offset-1 and discards everything through the first
    // newline.  If byte offset-1 *is* a newline, nothing real is
    // discarded and a line starting exactly at the boundary is kept.
    read_pos_ = split_.offset > 0 ? split_.offset - 1 : 0;
    logical_pos_ = read_pos_;
    BMR_RETURN_IF_ERROR(Refill());
    if (split_.offset > 0) {
      // Skip the partial line owned by the previous split.
      for (;;) {
        size_t nl = buffer_.find('\n', cursor_);
        if (nl != std::string::npos) {
          cursor_ = nl + 1;
          break;
        }
        cursor_ = buffer_.size();
        if (exhausted_) break;
        BMR_RETURN_IF_ERROR(Refill());
      }
    }
  }

  // A line belongs to this split iff it *starts* before offset+length.
  uint64_t line_start = logical_pos_ + cursor_;
  if (line_start >= split_.offset + split_.length ||
      (exhausted_ && cursor_ >= buffer_.size())) {
    *has = false;
    return Status::Ok();
  }

  size_t nl;
  for (;;) {
    nl = buffer_.find('\n', cursor_);
    if (nl != std::string::npos || exhausted_) break;
    BMR_RETURN_IF_ERROR(Refill());
  }
  size_t line_end = nl == std::string::npos ? buffer_.size() : nl;
  record->key = std::to_string(line_start);
  record->value.assign(buffer_.data() + cursor_, line_end - cursor_);
  cursor_ = nl == std::string::npos ? buffer_.size() : nl + 1;
  *has = true;
  return Status::Ok();
}

// ------------------------------------------------------------- KvPairReader

KvPairReader::KvPairReader(dfs::DfsClient* client, InputSplit split)
    : client_(client), split_(std::move(split)) {}

Status KvPairReader::EnsureLoaded() {
  if (loaded_) return Status::Ok();
  loaded_ = true;
  ByteBuffer buf;
  buf.Reserve(split_.length);
  BMR_RETURN_IF_ERROR(
      client_->Pread(split_.file, split_.offset, split_.length, &buf));
  data_ = buf.ToString();
  return Status::Ok();
}

Status KvPairReader::Next(Record* record, bool* has) {
  BMR_RETURN_IF_ERROR(EnsureLoaded());
  if (cursor_ >= data_.size()) {
    *has = false;
    return Status::Ok();
  }
  Decoder dec(Slice(data_.data() + cursor_, data_.size() - cursor_));
  size_t before = dec.remaining();
  Slice key, value;
  if (!dec.GetString(&key) || !dec.GetString(&value)) {
    return Status::DataLoss("malformed kv record in " + split_.file);
  }
  record->key = key.ToString();
  record->value = value.ToString();
  cursor_ += before - dec.remaining();
  *has = true;
  return Status::Ok();
}

std::unique_ptr<RecordReader> MakeReader(dfs::DfsClient* client,
                                         InputKind kind, InputSplit split) {
  if (kind == InputKind::kTextLines) {
    return std::make_unique<TextLineReader>(client, std::move(split));
  }
  return std::make_unique<KvPairReader>(client, std::move(split));
}

void AppendFramedRecord(ByteBuffer* out, Slice key, Slice value) {
  Encoder enc(out);
  enc.PutString(key);
  enc.PutString(value);
}

}  // namespace bmr::mr
