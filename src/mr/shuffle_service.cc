#include "mr/shuffle_service.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "mr/segment_codec.h"

namespace bmr::mr {

ShuffleService::ShuffleService(net::Transport* transport, int num_nodes,
                               int num_map_tasks, int job_id, Options options)
    : transport_(transport),
      num_nodes_(num_nodes),
      job_id_(job_id),
      options_(options),
      tracker_(num_map_tasks) {
  if (options_.codec == nullptr) {
    const char* env = std::getenv("BMR_SHUFFLE_CODEC");
    // Unknown env values fall back to "none": the env var is a test
    // override, not job configuration — the engine validates the
    // shuffle.codec knob properly and fails the job on a typo.
    auto codec = FindCodec(env == nullptr ? "" : env);
    options_.codec = codec.ok() ? *codec : *FindCodec("none");
  }
  EncodingPipeline::Options enc_options;
  enc_options.codec = options_.codec;
  enc_options.block_bytes = options_.block_bytes;
  enc_options.window_bytes = options_.encoder_window_bytes;
  enc_options.threads = options_.encoder_threads;
  enc_options.tracer = options_.tracer;
  encoder_ = std::make_unique<EncodingPipeline>(enc_options);
  stores_.resize(num_nodes);
  for (int n = 0; n < num_nodes; ++n) {
    stores_[n] = std::make_unique<MapOutputStore>();
    RegisterShuffleService(transport_, n, stores_[n].get(), job_id_,
                           options_.injector);
  }
}

ShuffleService::~ShuffleService() {
  encoder_->Drain();  // in-flight encodes still Put into stores_
  for (int n = 0; n < num_nodes_; ++n) {
    UnregisterShuffleService(transport_, n, job_id_);
  }
}

void ShuffleService::Publish(int map_task, int node,
                             std::vector<std::string> segments) {
  encoder_->Submit(
      std::move(segments),
      [this, map_task, node](EncodingPipeline::Encoded encoded) {
        for (size_t p = 0; p < encoded.size(); ++p) {
          stores_[node]->Put(map_task, static_cast<int>(p),
                             std::move(encoded[p]));
        }
        // Only after every partition is stored: a fetcher woken by
        // MarkDone must find its segment.
        tracker_.MarkDone(map_task, node);
      });
}

ShuffleService::Fetch::~Fetch() {
  Join();
  service_->Unregister(sink_);
}

void ShuffleService::Fetch::Join() {
  if (fetchers_) fetchers_->Wait();
}

std::unique_ptr<ShuffleService::Fetch> ShuffleService::StartFetch(
    int r, int node, ShuffleSink* sink, RelaunchFn relaunch, ErrorFn on_error,
    obs::SpanId parent_span) {
  // No public constructor: make_unique can't reach it.
  auto fetch = std::unique_ptr<Fetch>(new Fetch(this, sink));
  Fetch* f = fetch.get();
  int nmaps = tracker_.num_map_tasks();
  {
    MutexLock lock(sinks_mu_);
    live_sinks_.push_back(FetchEntry{f, sink, std::vector<int>(nmaps, -1)});
  }
  fetch->fetchers_left_.store(nmaps);
  fetch->fetchers_ = std::make_unique<ThreadPool>(nmaps);
  for (int m = 0; m < nmaps; ++m) {
    fetch->fetchers_->Submit([this, f, m, r, node, sink, relaunch, on_error,
                              parent_span] {
      int failures = 0;  // consecutive failures against loc.version
      for (;;) {
        MapOutputTracker::Location loc = tracker_.WaitForMapDone(m);
        if (loc.version < 0) break;  // job cancelled
        std::string segment;
        Status st = options_.injector
                        ? options_.injector->OnShuffleFetch(loc.node, node, m)
                        : Status::Ok();
        if (st.ok()) {
          obs::ScopedSpan fetch_span(options_.tracer, obs::kSpanShuffleFetch,
                                     "shuffle", m, parent_span);
          obs::LatencyTimer rtt(options_.tracer, obs::kHShuffleFetchRttUs);
          st = FetchSegment(transport_, loc.node, node, m, r, &segment, job_id_);
        }
        RecordBatch batch;
        if (st.ok()) {
          // Unwrap the block container: verify every block checksum,
          // decompress into a pool-backed buffer, then decode the
          // record framing zero-copy — the batch shares the pooled
          // buffer and the last batch standing recycles it.
          std::shared_ptr<const std::string> raw;
          {
            obs::LatencyTimer decode_time(options_.tracer,
                                          obs::kHCodecDecodeUs);
            st = DecodeShuffleSegment(Slice(segment), &raw);
          }
          if (st.ok()) st = DecodeSegment(std::move(raw), &batch);
        }
        if (st.ok()) {
          f->bytes_.fetch_add(segment.size());  // wire (encoded) bytes
          // Record the consumed attempt before handing records to the
          // sink, so a concurrent loss report can never miss us.
          NoteDelivered(f, m, loc.version);
          sink->Accept(m, std::move(batch));
          break;
        }
        if (options_.fail_on_fetch_error) {
          on_error(st);
          break;
        }
        if (failures < options_.max_fetch_retries) {
          ++failures;
          f->retries_.fetch_add(1);
          double ms = std::min(
              options_.backoff_ms * static_cast<double>(1 << (failures - 1)),
              options_.backoff_max_ms);
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(ms));
          continue;
        }
        // Retries exhausted: the attempt's output is gone (node died or
        // segments unreadable).  Declare it lost — first reporter taints
        // any reducer that already consumed it and triggers
        // re-execution — then wait for the new attempt.
        failures = 0;
        if (tracker_.ReportLost(m, loc.version)) {
          TaintConsumers(m, loc.version);
          relaunch(m, loc.node);
        }
      }
      if (f->fetchers_left_.fetch_sub(1) == 1) sink->AllDelivered();
    });
  }
  return fetch;
}

void ShuffleService::Cancel() {
  tracker_.Cancel();
  MutexLock lock(sinks_mu_);
  for (const FetchEntry& entry : live_sinks_) entry.sink->Cancel();
}

void ShuffleService::Unregister(ShuffleSink* sink) {
  MutexLock lock(sinks_mu_);
  live_sinks_.erase(std::find_if(
      live_sinks_.begin(), live_sinks_.end(),
      [sink](const FetchEntry& entry) { return entry.sink == sink; }));
}

void ShuffleService::NoteDelivered(Fetch* fetch, int map_task, int version) {
  MutexLock lock(sinks_mu_);
  for (FetchEntry& entry : live_sinks_) {
    if (entry.fetch == fetch) {
      entry.delivered[map_task] = version;
      return;
    }
  }
}

void ShuffleService::TaintConsumers(int map_task, int version) {
  MutexLock lock(sinks_mu_);
  for (FetchEntry& entry : live_sinks_) {
    if (entry.delivered[map_task] == version) {
      entry.fetch->tainted_.store(true);
      entry.sink->Cancel();
    }
  }
}

}  // namespace bmr::mr
