#include "mr/shuffle_service.h"

#include <algorithm>

namespace bmr::mr {

ShuffleService::ShuffleService(net::RpcFabric* fabric, int num_nodes,
                               int num_map_tasks, int job_id)
    : fabric_(fabric),
      num_nodes_(num_nodes),
      job_id_(job_id),
      tracker_(num_map_tasks) {
  stores_.resize(num_nodes);
  for (int n = 0; n < num_nodes; ++n) {
    stores_[n] = std::make_unique<MapOutputStore>();
    RegisterShuffleService(fabric_, n, stores_[n].get(), job_id_);
  }
}

ShuffleService::~ShuffleService() {
  for (int n = 0; n < num_nodes_; ++n) {
    UnregisterShuffleService(fabric_, n, job_id_);
  }
}

void ShuffleService::Publish(int map_task, int node,
                             std::vector<std::string> segments) {
  for (size_t p = 0; p < segments.size(); ++p) {
    stores_[node]->Put(map_task, static_cast<int>(p), std::move(segments[p]));
  }
  tracker_.MarkDone(map_task, node);
}

ShuffleService::Fetch::~Fetch() {
  Join();
  service_->Unregister(sink_);
}

void ShuffleService::Fetch::Join() {
  if (fetchers_) fetchers_->Wait();
}

std::unique_ptr<ShuffleService::Fetch> ShuffleService::StartFetch(
    int r, int node, ShuffleSink* sink, RelaunchFn relaunch,
    ErrorFn on_error) {
  {
    MutexLock lock(sinks_mu_);
    live_sinks_.push_back(sink);
  }
  // No public constructor: make_unique can't reach it.
  auto fetch = std::unique_ptr<Fetch>(new Fetch(this, sink));
  int nmaps = tracker_.num_map_tasks();
  fetch->fetchers_left_.store(nmaps);
  fetch->fetchers_ = std::make_unique<ThreadPool>(nmaps);
  Fetch* f = fetch.get();
  for (int m = 0; m < nmaps; ++m) {
    fetch->fetchers_->Submit([this, f, m, r, node, sink, relaunch,
                              on_error] {
      for (;;) {
        MapOutputTracker::Location loc = tracker_.WaitForMapDone(m);
        if (loc.version < 0) break;  // job cancelled
        std::string segment;
        Status st = FetchSegment(fabric_, loc.node, node, m, r, &segment,
                                 job_id_);
        if (st.ok()) {
          f->bytes_.fetch_add(segment.size());
          std::vector<Record> records;
          Status dst = DecodeSegment(Slice(segment), &records);
          if (!dst.ok()) {
            on_error(dst);
          } else {
            sink->Accept(m, std::move(records));
          }
          break;
        }
        // Output lost (e.g. node died): trigger re-execution and wait
        // for the new attempt.
        if (tracker_.ReportLost(m, loc.version)) relaunch(m, loc.node);
      }
      if (f->fetchers_left_.fetch_sub(1) == 1) sink->AllDelivered();
    });
  }
  return fetch;
}

void ShuffleService::Cancel() {
  tracker_.Cancel();
  MutexLock lock(sinks_mu_);
  for (ShuffleSink* sink : live_sinks_) sink->Cancel();
}

void ShuffleService::Unregister(ShuffleSink* sink) {
  MutexLock lock(sinks_mu_);
  live_sinks_.erase(std::find(live_sinks_.begin(), live_sinks_.end(), sink));
}

}  // namespace bmr::mr
