// Core record and comparator types for the MapReduce engine.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "common/bytes.h"

namespace bmr::mr {

/// One intermediate or output record.  Keys and values are byte strings
/// (the Writable model): typed apps encode via common/serde.h.
struct Record {
  std::string key;
  std::string value;

  Record() = default;
  Record(std::string k, std::string v)
      : key(std::move(k)), value(std::move(v)) {}

  bool operator==(const Record& o) const {
    return key == o.key && value == o.value;
  }
};

/// Three-way key comparison; negative / zero / positive like memcmp.
using KeyCompareFn = std::function<int(Slice, Slice)>;

/// Default byte-wise ordering (order-preserving encodings make this the
/// numeric order too).
inline int BytewiseCompare(Slice a, Slice b) { return a.Compare(b); }

/// Partition assignment: key → [0, num_partitions).
using PartitionFn = std::function<int(Slice key, int num_partitions)>;

/// Named monotonically increasing counters, aggregated across tasks.
class Counters {
 public:
  void Add(const std::string& name, uint64_t delta) { values_[name] += delta; }
  uint64_t Get(const std::string& name) const {
    auto it = values_.find(name);
    return it == values_.end() ? 0 : it->second;
  }
  void MergeFrom(const Counters& other) {
    for (const auto& [k, v] : other.values_) values_[k] += v;
  }
  const std::map<std::string, uint64_t>& values() const { return values_; }

 private:
  std::map<std::string, uint64_t> values_;
};

// Counter names used by the engine.
inline constexpr const char* kCtrMapInputRecords = "map_input_records";
inline constexpr const char* kCtrMapOutputRecords = "map_output_records";
inline constexpr const char* kCtrMapOutputBytes = "map_output_bytes";
inline constexpr const char* kCtrCombineInputRecords = "combine_input_records";
inline constexpr const char* kCtrCombineOutputRecords = "combine_output_records";
inline constexpr const char* kCtrShuffleBytes = "shuffle_bytes";
inline constexpr const char* kCtrReduceInputRecords = "reduce_input_records";
inline constexpr const char* kCtrReduceOutputRecords = "reduce_output_records";
inline constexpr const char* kCtrSpills = "partial_result_spills";
inline constexpr const char* kCtrSpilledBytes = "partial_result_spilled_bytes";
inline constexpr const char* kCtrKvStoreOps = "kv_store_ops";
inline constexpr const char* kCtrMapTasksLaunched = "map_tasks_launched";
inline constexpr const char* kCtrMapTaskRetries = "map_task_retries";
inline constexpr const char* kCtrSpeculativeMapsLaunched =
    "speculative_maps_launched";
inline constexpr const char* kCtrSpeculativeMapsWon = "speculative_maps_won";
inline constexpr const char* kCtrMapAttemptsDiscarded =
    "map_attempts_discarded";
inline constexpr const char* kCtrMapTasksCommitted = "map_tasks_committed";
inline constexpr const char* kCtrShuffleFetchRetries =
    "shuffle_fetch_retries";
inline constexpr const char* kCtrReduceTaskRestarts = "reduce_task_restarts";
inline constexpr const char* kCtrJobRestarts = "job_restarts";

}  // namespace bmr::mr
