// Map-side output handling: partition, (optionally) sort, (optionally)
// combine, serialize into per-partition segments, and the per-node
// segment store that the shuffle fetches from over RPC.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/bytes.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "faults/fault_injector.h"
#include "mr/api.h"
#include "mr/job.h"
#include "mr/record_batch.h"
#include "mr/types.h"
#include "net/transport.h"

namespace bmr::mr {

/// Collects one map task's emitted records and finishes them into
/// per-partition serialized segments.  Record bytes are staged in an
/// arena (one bump allocation per record instead of two heap strings),
/// so the per-record global-allocator traffic of the map hot loop is
/// gone; the staged Slices live exactly one arena generation — Finish
/// serializes and retires them together.
class MapOutputCollector {
 public:
  MapOutputCollector(int num_partitions, PartitionFn partitioner);

  void Emit(Slice key, Slice value);

  struct Finished {
    /// One serialized segment per partition (framed records).
    std::vector<std::string> segments;
    uint64_t output_records = 0;
    uint64_t output_bytes = 0;
    uint64_t combine_in = 0;
    uint64_t combine_out = 0;
  };

  /// Sorts each partition by `sort_cmp` when `sort` is set (map-side
  /// sort: what makes the reduce-side merge of with-barrier Hadoop
  /// cheap), applies the combiner if given, and serializes.
  [[nodiscard]] StatusOr<Finished> Finish(bool sort, const KeyCompareFn& sort_cmp,
                            Combiner* combiner);

  uint64_t buffered_records() const;

 private:
  /// One staged record: views into arena_, valid for the generation
  /// that allocated them.
  struct Staged {
    Slice key;
    Slice value;
  };
  class CombineEmitter;

  std::vector<Staged> RunCombiner(std::vector<Staged> sorted,
                                  Combiner* combiner, const KeyCompareFn& cmp,
                                  uint64_t* in, uint64_t* out_count);

  int num_partitions_;
  PartitionFn partitioner_;
  Arena arena_;
  std::vector<std::vector<Staged>> buffers_;
};

/// Per-node storage of finished map-output segments — the "local disk"
/// the mappers write to and reducers remotely read from.  One instance
/// per node per job; fetch is exposed on the RPC transport under the
/// job-scoped method name ShuffleMethodName(job_id).
class MapOutputStore {
 public:
  /// Segments are held (and served) by shared pointer so pool-backed
  /// encoded buffers flow from the encoding pipeline to the RPC
  /// handler without a copy and recycle when the job's store dies.
  void Put(int map_task, int partition,
           std::shared_ptr<const std::string> segment) BMR_EXCLUDES(mu_);
  void Put(int map_task, int partition, std::string segment)
      BMR_EXCLUDES(mu_);
  [[nodiscard]] StatusOr<std::shared_ptr<const std::string>> Get(
      int map_task, int partition) const BMR_EXCLUDES(mu_);
  uint64_t stored_bytes() const BMR_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::map<std::pair<int, int>, std::shared_ptr<const std::string>> segments_
      BMR_GUARDED_BY(mu_);
  uint64_t stored_bytes_ BMR_GUARDED_BY(mu_) = 0;
};

/// RPC method name of job `job_id`'s shuffle service.  Fetches are
/// job-scoped so concurrent jobs on one shared cluster cannot clobber
/// or serve each other's segments.
std::string ShuffleMethodName(int job_id);

/// Register the shuffle-fetch handler for `store` on `node` under job
/// `job_id`.  Request: varint map_task, varint partition.  Response:
/// segment.  `injector` (may be null) is consulted once per served
/// segment at the wire boundary — the response bytes about to leave
/// the serving node — so corruption injection hits the same point on
/// both transports (on TCP the corrupted bytes really cross the
/// socket); the store copy stays intact for the retry.
void RegisterShuffleService(net::Transport* transport, int node,
                            MapOutputStore* store, int job_id = 0,
                            faults::FaultInjector* injector = nullptr);

/// Remove job `job_id`'s shuffle-fetch handler from `node`.
void UnregisterShuffleService(net::Transport* transport, int node, int job_id);

/// Client side of the shuffle fetch.
[[nodiscard]] Status FetchSegment(net::Transport* transport, int from_node, int at_node,
                    int map_task, int partition, std::string* segment,
                    int job_id = 0);

/// Decode a framed segment into records, appending to `out`.  Copies
/// every key and value; prefer the RecordBatch overload on hot paths.
[[nodiscard]] Status DecodeSegment(Slice segment, std::vector<Record>* out);

/// Zero-copy decode: `out` takes shared ownership of `segment` and its
/// entries are Slice views into it — no key or value bytes are copied.
/// `out` is reset first.
[[nodiscard]] Status DecodeSegment(std::shared_ptr<const std::string> segment,
                                   RecordBatch* out);

}  // namespace bmr::mr
