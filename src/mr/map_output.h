// Map-side output handling: partition, (optionally) sort, (optionally)
// combine, serialize into per-partition segments, and the per-node
// segment store that the shuffle fetches from over RPC.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "mr/api.h"
#include "mr/job.h"
#include "mr/record_batch.h"
#include "mr/types.h"
#include "net/transport.h"

namespace bmr::mr {

/// Collects one map task's emitted records and finishes them into
/// per-partition serialized segments.
class MapOutputCollector {
 public:
  MapOutputCollector(int num_partitions, PartitionFn partitioner);

  void Emit(Slice key, Slice value);

  struct Finished {
    /// One serialized segment per partition (framed records).
    std::vector<std::string> segments;
    uint64_t output_records = 0;
    uint64_t output_bytes = 0;
    uint64_t combine_in = 0;
    uint64_t combine_out = 0;
  };

  /// Sorts each partition by `sort_cmp` when `sort` is set (map-side
  /// sort: what makes the reduce-side merge of with-barrier Hadoop
  /// cheap), applies the combiner if given, and serializes.
  [[nodiscard]] StatusOr<Finished> Finish(bool sort, const KeyCompareFn& sort_cmp,
                            Combiner* combiner);

  uint64_t buffered_records() const;

 private:
  int num_partitions_;
  PartitionFn partitioner_;
  std::vector<std::vector<Record>> buffers_;
};

/// Per-node storage of finished map-output segments — the "local disk"
/// the mappers write to and reducers remotely read from.  One instance
/// per node per job; fetch is exposed on the RPC transport under the
/// job-scoped method name ShuffleMethodName(job_id).
class MapOutputStore {
 public:
  void Put(int map_task, int partition, std::string segment)
      BMR_EXCLUDES(mu_);
  [[nodiscard]] StatusOr<std::string> Get(int map_task, int partition) const
      BMR_EXCLUDES(mu_);
  uint64_t stored_bytes() const BMR_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::map<std::pair<int, int>, std::string> segments_ BMR_GUARDED_BY(mu_);
  uint64_t stored_bytes_ BMR_GUARDED_BY(mu_) = 0;
};

/// RPC method name of job `job_id`'s shuffle service.  Fetches are
/// job-scoped so concurrent jobs on one shared cluster cannot clobber
/// or serve each other's segments.
std::string ShuffleMethodName(int job_id);

/// Register the shuffle-fetch handler for `store` on `node` under job
/// `job_id`.  Request: varint map_task, varint partition.  Response:
/// segment.
void RegisterShuffleService(net::Transport* transport, int node,
                            MapOutputStore* store, int job_id = 0);

/// Remove job `job_id`'s shuffle-fetch handler from `node`.
void UnregisterShuffleService(net::Transport* transport, int node, int job_id);

/// Client side of the shuffle fetch.
[[nodiscard]] Status FetchSegment(net::Transport* transport, int from_node, int at_node,
                    int map_task, int partition, std::string* segment,
                    int job_id = 0);

/// Decode a framed segment into records, appending to `out`.  Copies
/// every key and value; prefer the RecordBatch overload on hot paths.
[[nodiscard]] Status DecodeSegment(Slice segment, std::vector<Record>* out);

/// Zero-copy decode: `out` takes shared ownership of `segment` and its
/// entries are Slice views into it — no key or value bytes are copied.
/// `out` is reset first.
[[nodiscard]] Status DecodeSegment(std::shared_ptr<const std::string> segment,
                                   RecordBatch* out);

}  // namespace bmr::mr
