// Per-job shuffle layer: owns the per-node map-output segment stores
// and their job-scoped RPC registration, the map-output tracker, and
// the reduce-side fetch machinery (one asynchronous fetch thread per
// mapper, §3.1).  The with-barrier and barrier-less reduce paths run
// the *same* fetch code and differ only in the ShuffleSink they plug
// in: per-mapper buffers that complete at the barrier, or one bounded
// FIFO drained while fetchers still produce.
//
// Fault tolerance (§ fault tolerance of the paper): a failed fetch is
// retried with capped exponential backoff; once retries are exhausted
// the map output is declared lost (tracker.ReportLost) and the engine
// re-executes the map task.  Because barrier-less reducers consume map
// output *before* the job ends, a reducer that already consumed a
// now-lost attempt is tainted: its sink is cancelled and the reduce
// task restarts from scratch — the restart cost the paper accepts in
// exchange for removing the barrier.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "common/codec.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "concurrency/bounded_queue.h"
#include "concurrency/thread_pool.h"
#include "faults/fault_injector.h"
#include "mr/encoding_pipeline.h"
#include "mr/map_output.h"
#include "mr/record_batch.h"
#include "mr/shuffle.h"
#include "net/transport.h"
#include "obs/metric_names.h"
#include "obs/trace.h"

namespace bmr::mr {

/// Default payload-byte budget of one FIFO batch (see FifoSink); the
/// `shuffle.batch_bytes` config knob overrides it per job.
inline constexpr uint64_t kDefaultShuffleBatchBytes = 256 << 10;
/// Default FIFO capacity in *batches* (`shuffle.fifo_batches` knob):
/// bounds reducer-side buffering at roughly capacity x batch budget.
inline constexpr size_t kDefaultShuffleFifoBatches = 64;

/// Destination of one reducer's fetched records.
class ShuffleSink {
 public:
  virtual ~ShuffleSink() = default;
  /// Deliver one mapper's decoded records as a zero-copy batch (the
  /// batch keeps the fetched segment alive).  Returns false once the
  /// sink has stopped accepting (job cancelled).
  virtual bool Accept(int map_task, RecordBatch batch) = 0;
  /// Every mapper's output has been delivered.
  virtual void AllDelivered() {}
  /// Unblock any producer or consumer immediately (job failure).
  virtual void Cancel() = 0;
};

/// With-barrier sink: per-mapper runs, consumed only after all arrive.
class BarrierSink final : public ShuffleSink {
 public:
  explicit BarrierSink(int num_map_tasks) : runs_(num_map_tasks) {}

  bool Accept(int map_task, RecordBatch batch) override {
    runs_[map_task] = std::move(batch);  // one producer per slot
    return true;
  }
  void Cancel() override {}  // fetchers unblock via the tracker

  std::vector<RecordBatch>& runs() { return runs_; }

 private:
  std::vector<RecordBatch> runs_;
};

/// Barrier-less sink: the single FIFO buffer of §3.1; fetchers push
/// while the reduce thread drains in arrival order.  The FIFO moves
/// byte-budgeted RecordBatches, not records: one mapper's segment is
/// carved into sub-batches of at most `batch_bytes` payload (sharing
/// the segment buffer) and enqueued under a single lock acquisition,
/// so per-record mutex/condvar traffic is gone from the data plane.
class FifoSink final : public ShuffleSink {
 public:
  explicit FifoSink(size_t capacity_batches,
                    uint64_t batch_bytes = kDefaultShuffleBatchBytes,
                    obs::Tracer* tracer = nullptr)
      : batch_bytes_(batch_bytes), tracer_(tracer), fifo_(capacity_batches) {}

  bool Accept(int map_task, RecordBatch batch) override {
    (void)map_task;
    if (batch.empty()) return !fifo_.closed();
    // Producer-side backpressure: time spent blocked on a full FIFO
    // (the reducer can't keep up) lands in its own histogram, distinct
    // from the consumer-side pop wait.
    obs::LatencyTimer wait(tracer_, obs::kHShuffleQueuePushWaitUs);
    return fifo_.PushAll(batch.SplitByBytes(batch_bytes_));
  }
  void AllDelivered() override { fifo_.Close(); }
  void Cancel() override { fifo_.Close(); }

  BoundedQueue<RecordBatch>& fifo() { return fifo_; }

 private:
  uint64_t batch_bytes_;
  obs::Tracer* tracer_;
  BoundedQueue<RecordBatch> fifo_;
};

/// Fetch-path tuning and fault hooks for a ShuffleService.  Namespace
/// scope (not nested) so it can serve as a defaulted `{}` argument —
/// g++ rejects that for nested classes with member initializers
/// (gcc bug 88165).
struct ShuffleOptions {
  /// Consulted before every fetch (timeout injection) and on every
  /// fetched segment (corruption).  Not owned; null = no injection.
  faults::FaultInjector* injector = nullptr;
  /// Failed fetches of one map attempt before its output is declared
  /// lost and the map re-executed.
  int max_fetch_retries = 4;
  /// Capped exponential backoff between fetch retries.
  double backoff_ms = 0.5;
  double backoff_max_ms = 8.0;
  /// Legacy behaviour: any fetch/decode error fails the job through
  /// ErrorFn instead of retrying.  Exists so the chaos harness can
  /// prove it detects a broken recovery path.
  bool fail_on_fetch_error = false;
  /// Fetch observability (shuffle.fetch spans + RTT histogram).  Not
  /// owned; null or disabled = no recording.
  obs::Tracer* tracer = nullptr;
  /// Block codec for published segments (`shuffle.codec` knob).  Null
  /// resolves from the BMR_SHUFFLE_CODEC env var, default "none" — so
  /// whole test binaries rerun compressed with one env var, mirroring
  /// BMR_NET_TRANSPORT.
  const Codec* codec = nullptr;
  /// Raw bytes per compression block (`shuffle.block_bytes` knob).
  size_t block_bytes = kDefaultShuffleBlockBytes;
  /// Async encoder tuning (see mr/encoding_pipeline.h).
  size_t encoder_window_bytes = 8 << 20;
  int encoder_threads = 2;
};

class ShuffleService {
 public:
  /// Invoked when a fetcher discovers `map_task`'s committed output
  /// lost on `node` (node death): must arrange re-execution.  The
  /// engine's implementation clears the commit (TaskScheduler::
  /// ReopenTask) *before* queueing the new attempt, so a stale attempt
  /// can never double-commit against the re-execution.
  using RelaunchFn = std::function<void(int map_task, int node)>;
  /// Invoked on unrecoverable shuffle errors.  With the default
  /// options fetch errors are retried and then escalate to map
  /// re-execution, so this only fires when retry is disabled
  /// (Options::fail_on_fetch_error, the chaos harness' "broken
  /// recovery" mode).
  using ErrorFn = std::function<void(const Status&)>;

  using Options = ShuffleOptions;

  /// Registers a segment store for every node under the job-scoped
  /// fetch method, so concurrent jobs on one transport don't interfere.
  ShuffleService(net::Transport* transport, int num_nodes, int num_map_tasks,
                 int job_id, Options options = {});
  ~ShuffleService();  // unregisters the job's fetch handlers

  ShuffleService(const ShuffleService&) = delete;
  ShuffleService& operator=(const ShuffleService&) = delete;

  int job_id() const { return job_id_; }
  MapOutputTracker& tracker() { return tracker_; }
  MapOutputStore& store(int node) { return *stores_[node]; }
  /// The resolved block codec ("none" unless configured otherwise).
  const Codec& codec() const { return *options_.codec; }
  /// Aggregate encode stats of every Publish drained so far (the
  /// engine exports them as the bmr_codec_* gauges at job end).
  SegmentEncodeStats encode_stats() const { return encoder_->stats(); }

  /// Publish one committed map attempt's per-partition segments from
  /// `node`: the raw record streams are handed to the async encoding
  /// pipeline, and the task is marked fetchable once its encoded
  /// segments are in the store — so compression overlaps map execution
  /// and fetchers can never observe a half-encoded task.
  void Publish(int map_task, int node, std::vector<std::string> segments);

  /// Block until every Publish so far is encoded, stored and marked
  /// done (tests and benchmarks; the destructor drains implicitly).
  void DrainPublishes() { encoder_->Drain(); }

  /// One reducer's in-flight fetch: per-mapper threads delivering into
  /// `sink`.  The sink is registered for job-failure cancellation for
  /// exactly the lifetime of this object (RAII) — a reducer returning
  /// early can never leave a dangling sink behind for Cancel().
  class Fetch {
   public:
    ~Fetch();

    Fetch(const Fetch&) = delete;
    Fetch& operator=(const Fetch&) = delete;

    /// Block until every fetcher thread has finished.  Idempotent.
    void Join();
    uint64_t bytes_fetched() const { return bytes_.load(); }
    /// Fetch attempts that failed and were retried.
    uint64_t retries() const { return retries_.load(); }
    /// True once this fetch delivered records of a map attempt whose
    /// output was later declared lost: the consuming reduce task must
    /// restart (its sink has been cancelled).
    bool tainted() const { return tainted_.load(); }

   private:
    friend class ShuffleService;
    Fetch(ShuffleService* service, ShuffleSink* sink) :
        service_(service), sink_(sink) {}

    ShuffleService* service_;
    ShuffleSink* sink_;
    // One worker per mapper; the pool outlives Join() so a second
    // Join() is a cheap no-op Wait().
    std::unique_ptr<ThreadPool> fetchers_;
    std::atomic<uint64_t> bytes_{0};
    std::atomic<uint64_t> retries_{0};
    std::atomic<bool> tainted_{false};
    std::atomic<int> fetchers_left_{0};
  };

  /// Start reducer `r` (running on `node`)'s fetch of every mapper's
  /// partition-`r` segment into `sink`.  `parent_span` (usually the
  /// reducer's task span) becomes the parent of every shuffle.fetch
  /// span — fetchers run on their own threads, so the implicit
  /// same-thread parent chain can't reach them.
  std::unique_ptr<Fetch> StartFetch(int r, int node, ShuffleSink* sink,
                                    RelaunchFn relaunch, ErrorFn on_error,
                                    obs::SpanId parent_span = 0);

  /// Job failure: wake every tracker waiter and cancel every sink with
  /// a fetch in flight.
  ///
  /// Sinks are cancelled while sinks_mu_ is held: Unregister (from
  /// ~Fetch) may destroy a sink the moment it leaves live_sinks_, so
  /// releasing the lock around the callback would race destruction.
  /// Sink::Cancel implementations must therefore never call back into
  /// ShuffleService (lock-order leaf; see docs/GUIDE.md).
  void Cancel() BMR_EXCLUDES(sinks_mu_);

 private:
  struct FetchEntry {
    Fetch* fetch = nullptr;
    ShuffleSink* sink = nullptr;
    /// delivered[m] = attempt version this fetch consumed (-1 = none).
    std::vector<int> delivered;
  };

  void Unregister(ShuffleSink* sink) BMR_EXCLUDES(sinks_mu_);
  void NoteDelivered(Fetch* fetch, int map_task, int version)
      BMR_EXCLUDES(sinks_mu_);
  /// Map `map_task` attempt `version` was lost: taint and cancel every
  /// live fetch that already consumed it.  Same lock-order leaf rule
  /// as Cancel().
  void TaintConsumers(int map_task, int version) BMR_EXCLUDES(sinks_mu_);

  net::Transport* transport_;
  int num_nodes_;
  int job_id_;
  Options options_;
  MapOutputTracker tracker_;
  std::vector<std::unique_ptr<MapOutputStore>> stores_;
  // After stores_: the pipeline's destructor drains in-flight encodes
  // (which Put into stores_) before the stores can die.
  std::unique_ptr<EncodingPipeline> encoder_;

  OrderedMutex sinks_mu_{"mr.shuffle.sinks"};
  std::vector<FetchEntry> live_sinks_ BMR_GUARDED_BY(sinks_mu_);
};

}  // namespace bmr::mr
