#include "mr/task_executor.h"

#include <algorithm>
#include <cstdio>

#include "core/barrierless_driver.h"
#include "mr/map_output.h"
#include "mr/textio.h"
#include "obs/flight_recorder.h"
#include "obs/metric_names.h"
#include "obs/trace.h"

namespace bmr::mr {

namespace {

constexpr uint64_t kMemorySampleEvery = 2048;

/// Concrete MapContext: forwards emits to the collector.
class MapCtx final : public MapContext {
 public:
  MapCtx(MapOutputCollector* collector, const Config& config,
         Counters* counters)
      : collector_(collector), config_(config), counters_(counters) {}

  void Emit(Slice key, Slice value) override { collector_->Emit(key, value); }
  const Config& config() const override { return config_; }
  Counters* counters() override { return counters_; }

 private:
  MapOutputCollector* collector_;
  const Config& config_;
  Counters* counters_;
};

}  // namespace

/// Concrete ReduceContext: buffers output records.
class ReduceTaskContext final : public ReduceContext {
 public:
  ReduceTaskContext(const Config& config, Counters* counters)
      : config_(config), counters_(counters) {}

  void Emit(Slice key, Slice value) override {
    out_.emplace_back(key.ToString(), value.ToString());
  }
  const Config& config() const override { return config_; }
  Counters* counters() override { return counters_; }

  std::vector<Record>& records() { return out_; }

 private:
  std::vector<Record> out_;
  const Config& config_;
  Counters* counters_;
};

namespace {

/// ReduceEmitter adapter over ReduceTaskContext for the barrier-less
/// driver.
class CtxEmitter final : public ReduceEmitter {
 public:
  explicit CtxEmitter(ReduceTaskContext* ctx) : ctx_(ctx) {}
  void Emit(Slice key, Slice value) override { ctx_->Emit(key, value); }

 private:
  ReduceTaskContext* ctx_;
};

}  // namespace

void MapTaskExecutor::Execute(TaskScheduler::Attempt attempt) {
  if (control_->cancelled()) return;
  if (attempt.node < 0) {
    control_->Fail(Status::Unavailable("no node available for map task"));
    return;
  }
  scheduler_->Begin(attempt, metrics_->Now());
  // Pool threads have no open span, so this parents to the job span.
  obs::ScopedSpan task_span(metrics_->tracer(), obs::kSpanMapTask, "task",
                            attempt.task);
  double start = metrics_->Now();
  Counters local;
  local.Add(kCtrMapTasksLaunched, 1);
  if (attempt.speculative) local.Add(kCtrSpeculativeMapsLaunched, 1);

  auto finish = [&](bool merge_counters) {
    if (merge_counters) metrics_->MergeCounters(local);
    scheduler_->Finish(attempt, metrics_->Now());
  };

  auto reader = MakeReader(cluster_->client(attempt.node), spec_.input_kind,
                           (*splits_)[attempt.task]);
  auto mapper = spec_.mapper();
  MapOutputCollector collector(spec_.num_reducers, spec_.partitioner);
  MapCtx ctx(&collector, spec_.config, &local);
  mapper->Setup(&ctx);
  Record record;
  bool has = false;
  for (;;) {
    Status st = reader->Next(&record, &has);
    if (!st.ok()) {
      control_->Fail(st);
      finish(false);
      return;
    }
    if (!has) break;
    local.Add(kCtrMapInputRecords, 1);
    mapper->Map(Slice(record.key), Slice(record.value), &ctx);
    if (control_->cancelled()) {
      finish(false);
      return;
    }
  }
  mapper->Cleanup(&ctx);

  // Barrier-less mode bypasses the sort (§3.1) — unless a combiner is
  // configured, which needs sorted runs to group keys at the mapper.
  bool sort = spec_.combiner ? true
                             : (spec_.barrierless ? false : spec_.map_side_sort);
  std::unique_ptr<Combiner> combiner;
  if (spec_.combiner) combiner = spec_.combiner();
  auto finished = collector.Finish(sort, spec_.sort_cmp, combiner.get());
  if (!finished.ok()) {
    control_->Fail(finished.status());
    finish(false);
    return;
  }

  // First attempt to commit wins; the loser (a speculative race or a
  // stale retry) discards its output without publishing.
  if (scheduler_->TryCommit(attempt)) {
    local.Add(kCtrMapTasksCommitted, 1);
    local.Add(kCtrMapOutputRecords, finished->output_records);
    local.Add(kCtrMapOutputBytes, finished->output_bytes);
    local.Add(kCtrCombineInputRecords, finished->combine_in);
    local.Add(kCtrCombineOutputRecords, finished->combine_out);
    if (attempt.speculative) local.Add(kCtrSpeculativeMapsWon, 1);
    // Record the completion BEFORE publishing: Publish wakes waiting
    // fetchers, and any reduce event they record must not predate this
    // map's recorded end (the barrier-ordering invariant).
    metrics_->RecordEvent(Phase::kMap, attempt.task, attempt.node, start,
                          metrics_->Now());
    metrics_->NoteMapDone();
    shuffle_->Publish(attempt.task, attempt.node,
                      std::move(finished->segments));
  } else {
    local.Add(kCtrMapAttemptsDiscarded, 1);
  }
  finish(true);
}

namespace {

/// Failures a fresh attempt can plausibly heal: lost or unreadable
/// intermediate state.  Resource exhaustion, invalid input, and
/// internal errors stay fatal so OOMs and real bugs remain loud.
bool IsRecoverable(const Status& st) {
  return st.code() == StatusCode::kUnavailable ||
         st.code() == StatusCode::kDataLoss ||
         st.code() == StatusCode::kNotFound;
}

}  // namespace

void ReduceTaskExecutor::Execute(int r, int node) {
  int max_restarts =
      static_cast<int>(spec_.config.GetInt("reduce.max_restarts", 2));
  for (int attempt = 0;; ++attempt) {
    if (control_->cancelled()) return;
    // Fresh counters per attempt: a discarded attempt's data-flow
    // counters (shuffle bytes, reduce inputs) must not pollute the
    // job's totals.  Recovery counters go through metrics_ directly so
    // they survive the discard.
    Counters local;
    ReduceTaskContext ctx(spec_.config, &local);
    // One span per attempt: a restarted reducer shows as separate bars.
    obs::ScopedSpan task_span(metrics_->tracer(), obs::kSpanReduceTask,
                              "task", r);
    Status st = spec_.barrierless ? RunBarrierless(r, node, &ctx)
                                  : RunBarrier(r, node, &ctx);
    if (control_->cancelled()) return;
    if (st.ok()) {
      local.Add(kCtrReduceOutputRecords, ctx.records().size());
      metrics_->MergeCounters(local);
      double out_start = metrics_->Now();
      st = WriteOutput(r, node, ctx.records());
      if (st.ok()) {
        metrics_->RecordEvent(Phase::kOutput, r, node, out_start,
                              metrics_->Now());
        return;
      }
    }
    if (attempt < max_restarts && IsRecoverable(st)) {
      metrics_->AddCounter(kCtrReduceTaskRestarts, 1);
      // A restart means a tainted or failed reducer threw work away —
      // post-mortem worthy even if the retry succeeds (GUIDE §15).
      obs::FlightRecorder::Global()->RequestDump(
          std::string("reduce.restart task=") + std::to_string(r) + ": " +
              st.message(),
          r);
      continue;
    }
    control_->Fail(st);
    return;
  }
}

Status ReduceTaskExecutor::RunBarrier(int r, int node,
                                      ReduceTaskContext* ctx) {
  double shuffle_start = metrics_->Now();

  // Per-mapper buffers filled by the shared fetch substrate; complete
  // only when every fetcher is in — the barrier.
  BarrierSink sink(shuffle_->tracker().num_map_tasks());
  bool tainted = false;
  {
    auto fetch = shuffle_->StartFetch(
        r, node, &sink, relaunch_,
        [this](const Status& st) { control_->Fail(st); }, obs::CurrentSpan());
    fetch->Join();
    ctx->counters()->Add(kCtrShuffleBytes, fetch->bytes_fetched());
    metrics_->AddCounter(kCtrShuffleFetchRetries, fetch->retries());
    tainted = fetch->tainted();
  }
  if (control_->cancelled()) return Status::Ok();
  if (tainted) {
    return Status::Unavailable("reduce consumed output of a lost map attempt");
  }
  double barrier_time = metrics_->Now();
  metrics_->RecordEvent(Phase::kShuffle, r, node, shuffle_start, barrier_time);

  // Barrier reached: materialize the per-mapper batches (the barrier
  // path owns and reorders records, so this is where the copy belongs)
  // and merge-sort them (Fig. 2(c)).
  std::vector<std::vector<Record>> runs;
  runs.reserve(sink.runs().size());
  for (RecordBatch& batch : sink.runs()) {
    runs.push_back(batch.ToRecords());
    batch = RecordBatch();  // release the fetched buffer early
  }
  std::vector<Record> records;
  {
    obs::ScopedSpan sort_span(metrics_->tracer(), obs::kSpanReduceSort,
                              "reduce", r);
    if (spec_.map_side_sort) {
      records = MergeSortedRuns(std::move(runs), spec_.sort_cmp);
    } else {
      for (auto& run : runs) {
        records.insert(records.end(), std::make_move_iterator(run.begin()),
                       std::make_move_iterator(run.end()));
      }
      const KeyCompareFn& cmp = spec_.sort_cmp;
      std::stable_sort(records.begin(), records.end(),
                       [&cmp](const Record& a, const Record& b) {
                         return cmp ? cmp(Slice(a.key), Slice(b.key)) < 0
                                    : a.key < b.key;
                       });
    }
  }
  double sort_done = metrics_->Now();
  metrics_->RecordEvent(Phase::kSortMerge, r, node, barrier_time, sort_done);
  uint64_t heap_bytes = 0;
  for (const auto& rec : records) {
    heap_bytes += core::EntryFootprint(rec.key.size(), rec.value.size());
  }
  metrics_->SampleMemory(r, heap_bytes);

  // Grouped reduce execution (Fig. 2(d)).
  ctx->counters()->Add(kCtrReduceInputRecords, records.size());
  auto reducer = spec_.reducer();
  reducer->Setup(ctx);
  const KeyCompareFn& group =
      spec_.group_cmp ? spec_.group_cmp : spec_.sort_cmp;
  BMR_RETURN_IF_ERROR(
      ReduceGroups(records, group, reducer.get(), ctx, metrics_->tracer()));
  reducer->Cleanup(ctx);
  metrics_->RecordEvent(Phase::kReduce, r, node, sort_done, metrics_->Now());
  return Status::Ok();
}

Status ReduceTaskExecutor::RunBarrierless(int r, int node,
                                          ReduceTaskContext* ctx) {
  double start = metrics_->Now();

  // Single FIFO buffer shared by all fetchers; the reduce thread (this
  // one) drains it a byte-budgeted batch at a time, in arrival order
  // (§3.1 design decision (2)).  The sink registration lives exactly
  // as long as `fetch` (RAII), so an early return can never leave a
  // dangling queue behind for a concurrent JobControl::Fail to close.
  size_t fifo_batches = static_cast<size_t>(spec_.config.GetInt(
      "shuffle.fifo_batches",
      static_cast<int64_t>(kDefaultShuffleFifoBatches)));
  uint64_t batch_bytes = static_cast<uint64_t>(spec_.config.GetInt(
      "shuffle.batch_bytes",
      static_cast<int64_t>(kDefaultShuffleBatchBytes)));
  if (fifo_batches == 0) fifo_batches = 1;
  obs::Tracer* tracer = metrics_->tracer();
  FifoSink sink(fifo_batches, batch_bytes, tracer);
  auto fetch = shuffle_->StartFetch(
      r, node, &sink, relaunch_,
      [this](const Status& st) { control_->Fail(st); }, obs::CurrentSpan());

  // Pipelined reduce: pop records in arrival order and fold them into
  // partial results.
  core::StoreConfig store_config = spec_.store;
  if (!store_config.key_cmp && spec_.sort_cmp) {
    store_config.key_cmp = spec_.sort_cmp;
  }
  if (store_config.fault_injector == nullptr) {
    store_config.fault_injector = cluster_->fault_injector;
  }
  if (store_config.tracer == nullptr) store_config.tracer = tracer;
  auto reducer = spec_.incremental();
  core::BarrierlessDriver driver(reducer.get(), store_config, spec_.config);
  CtxEmitter emitter(ctx);
  // Memoization: seed the store from the previous run's snapshot.
  if (spec_.session != nullptr) {
    if (const auto* snapshot = spec_.session->Get(r)) {
      for (const Record& p : *snapshot) {
        Status st = driver.PreloadPartial(Slice(p.key), Slice(p.value));
        // fetch's destructor joins and unregisters the sink
        if (!st.ok()) return st;
      }
    }
  }
  uint64_t consumed = 0;
  Status consume_st;
  std::vector<RecordBatch> batches;
  while (consume_st.ok()) {
    size_t popped;
    {
      // Consumer-side starvation: time blocked waiting for fetchers to
      // deliver (the "reducer idles on the network" signal).
      obs::LatencyTimer wait(tracer, obs::kHShuffleQueueWaitUs);
      popped = sink.fifo().PopAll(&batches);
    }
    if (popped == 0) break;
    obs::ScopedSpan drain_span(tracer, obs::kSpanReduceBatch, "reduce", r);
    for (const RecordBatch& batch : batches) {
      for (const RecordBatch::Entry& entry : batch) {
        Status st = driver.Consume(entry.key, entry.value, &emitter);
        if (!st.ok()) {
          metrics_->SampleMemory(r, driver.MemoryBytes());
          consume_st = st;
          // Close our own FIFO so producers stop blocking, then fall
          // through to the join — Execute (or the job) handles the
          // error.
          sink.Cancel();
          break;
        }
        if (++consumed % kMemorySampleEvery == 0) {
          metrics_->SampleMemory(r, driver.MemoryBytes());
        }
      }
      if (!consume_st.ok()) break;
    }
    batches.clear();  // drop the batch views — frees fetched buffers
  }
  fetch->Join();
  ctx->counters()->Add(kCtrShuffleBytes, fetch->bytes_fetched());
  metrics_->AddCounter(kCtrShuffleFetchRetries, fetch->retries());
  bool tainted = fetch->tainted();
  fetch.reset();  // deregister the sink before it goes out of scope
  if (control_->cancelled()) return Status::Ok();
  BMR_RETURN_IF_ERROR(consume_st);
  if (tainted) {
    return Status::Unavailable("reduce consumed output of a lost map attempt");
  }

  ctx->counters()->Add(kCtrReduceInputRecords, driver.records_consumed());
  Status st;
  if (spec_.session != nullptr) {
    std::vector<Record> snapshot;
    st = driver.FinalizeWithSnapshot(&emitter, &snapshot);
    if (st.ok()) spec_.session->Save(r, std::move(snapshot));
  } else {
    st = driver.Finalize(&emitter);
  }
  if (const core::PartialStore* store = driver.store()) {
    ctx->counters()->Add(kCtrSpills, store->stats().spills);
    ctx->counters()->Add(kCtrSpilledBytes, store->stats().spilled_bytes);
    ctx->counters()->Add(kCtrKvStoreOps,
                         store->stats().gets + store->stats().puts);
  }
  BMR_RETURN_IF_ERROR(st);
  metrics_->SampleMemory(r, driver.MemoryBytes());
  metrics_->RecordEvent(Phase::kShuffleReduce, r, node, start,
                        metrics_->Now());
  return Status::Ok();
}

Status ReduceTaskExecutor::WriteOutput(int r, int node,
                                       const std::vector<Record>& records) {
  obs::ScopedSpan out_span(metrics_->tracer(), obs::kSpanOutputWrite, "task",
                           r);
  obs::LatencyTimer out_latency(metrics_->tracer(), obs::kHOutputWriteUs);
  char name[32];
  std::snprintf(name, sizeof(name), "/part-r-%05d", r);
  std::string path = spec_.output_path + name;
  // A restarted task or job may have left a partial part file behind;
  // Create refuses to overwrite, so clear it first (NotFound is fine).
  Status deleted = cluster_->client(node)->Delete(path);
  (void)deleted;
  auto writer = cluster_->client(node)->Create(path);
  if (!writer.ok()) return writer.status();
  ByteBuffer buf;
  for (const Record& rec : records) {
    if (spec_.output_format == OutputFormat::kTextTsv) {
      AppendTsvRecord(&buf, Slice(rec.key), Slice(rec.value));
    } else {
      AppendFramedRecord(&buf, Slice(rec.key), Slice(rec.value));
    }
    if (buf.size() >= (1 << 20)) {
      BMR_RETURN_IF_ERROR((*writer)->Append(buf.AsSlice()));
      buf.Clear();
    }
  }
  BMR_RETURN_IF_ERROR((*writer)->Append(buf.AsSlice()));
  BMR_RETURN_IF_ERROR((*writer)->Close());
  metrics_->NoteOutputFile(std::move(path));
  return Status::Ok();
}

}  // namespace bmr::mr
