// Job specification: everything the engine needs to run one MapReduce
// job in either with-barrier or barrier-less mode.
#pragma once

#include <string>
#include <vector>

#include "common/config.h"
#include "core/incremental.h"
#include "core/job_session.h"
#include "core/partial_store.h"
#include "mr/api.h"
#include "mr/textio.h"
#include "mr/types.h"

namespace bmr::mr {

enum class InputKind {
  kTextLines,  // newline-delimited; Map key = byte offset (decimal)
  kKvPairs,    // framed binary records; one split per file
};

struct JobSpec {
  std::string name = "job";

  // -- Input / output ---------------------------------------------------
  std::vector<std::string> input_files;
  InputKind input_kind = InputKind::kTextLines;
  /// Target split size; 0 = the DFS block size.
  uint64_t split_bytes = 0;
  /// Output directory; reducers write <output_path>/part-r-NNNNN.
  std::string output_path = "/out";
  /// Part-file encoding: lossless framed binary (default) or escaped
  /// TSV text for human consumption.
  OutputFormat output_format = OutputFormat::kFramedBinary;

  // -- User code --------------------------------------------------------
  MapperFactory mapper;
  /// Barrier mode reduce function.
  ReducerFactory reducer;
  /// Barrier-less single-record reduce function.
  core::IncrementalReducerFactory incremental;
  /// Optional map-side combiner.
  CombinerFactory combiner;

  // -- Shuffle shape ----------------------------------------------------
  int num_reducers = 1;
  /// Sort order of intermediate keys (with-barrier merge order, and
  /// the final-emission order of barrier-less stores).
  KeyCompareFn sort_cmp;   // null = bytewise
  /// Grouping comparator for secondary sort (kNN's barrier version
  /// groups by a key prefix).  Null = same as sort_cmp.
  KeyCompareFn group_cmp;
  PartitionFn partitioner;  // null = hash of whole key

  // -- Scheduling -------------------------------------------------------
  /// Hadoop-0.20-style backup tasks: launch a speculative copy of a
  /// straggler map task on another node; the first attempt to commit
  /// wins and the loser's output is discarded.
  bool speculative_maps = false;
  /// A running map attempt is a straggler once its runtime exceeds
  /// `speculation_slowness` x the median completed map runtime.
  double speculation_slowness = 1.5;
  /// Attempts younger than this many (wall-clock) seconds are never
  /// speculated.
  double speculation_min_runtime = 0.05;

  // -- Execution mode (the paper's setIncrementalReduction(true)) -------
  bool barrierless = false;
  /// Optional memoization session (§8 / DryadInc-style): barrier-less
  /// reduce tasks seed their partial-result stores from the previous
  /// run's snapshot for the same partition and save a fresh snapshot
  /// at the end.  Caller must keep num_reducers, partitioner, and key
  /// order stable across runs.  Not owned.
  core::JobSession* session = nullptr;
  /// Barrier mode sorts map output at the mapper and merges at the
  /// reducer (Hadoop).  Barrier-less mode bypasses the sort entirely —
  /// design decision (1) in §3.1.  Kept as an explicit knob for the
  /// ablation bench.
  bool map_side_sort = true;
  core::StoreConfig store;

  Config config;
};

}  // namespace bmr::mr
