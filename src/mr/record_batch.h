// Zero-copy record batches for the shuffle->reduce data plane.
//
// A fetched map-output segment is decoded once into a RecordBatch: the
// segment buffer is kept alive by shared ownership and every record is
// a pair of Slice views into it.  Batches (and the sub-batches
// SplitByBytes carves out) travel through the shuffle sink and the
// reduce FIFO without re-copying key or value bytes; the only heap
// traffic per segment is the entry vector.
//
// Lifetime rule: a Slice handed out by a RecordBatch is valid exactly
// as long as *some* RecordBatch sharing the buffer is alive.  Consumers
// that need bytes beyond the batch's lifetime (partial stores, output
// buffers) must copy — everything upstream of them must not.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "mr/types.h"

namespace bmr::mr {

class RecordBatch {
 public:
  struct Entry {
    Slice key;
    Slice value;
  };

  RecordBatch() = default;

  /// An empty batch taking shared ownership of `buffer`; Add entries
  /// whose slices point into it.
  explicit RecordBatch(std::shared_ptr<const std::string> buffer)
      : buffer_(std::move(buffer)) {}

  /// Owning batch built from materialized records (tests, replay
  /// paths): the bytes are packed into a fresh shared buffer.
  static RecordBatch FromRecords(const std::vector<Record>& records) {
    size_t total = 0;
    for (const Record& r : records) total += r.key.size() + r.value.size();
    auto buffer = std::make_shared<std::string>();
    buffer->reserve(total);
    for (const Record& r : records) {
      buffer->append(r.key);
      buffer->append(r.value);
    }
    RecordBatch batch{std::shared_ptr<const std::string>(buffer)};
    const char* p = buffer->data();
    for (const Record& r : records) {
      Slice key(p, r.key.size());
      p += r.key.size();
      Slice value(p, r.value.size());
      p += r.value.size();
      batch.Add(key, value);
    }
    return batch;
  }

  /// Append one record view.  `key`/`value` must point into (or
  /// outlive) the shared buffer — see the lifetime rule above.
  void Add(Slice key, Slice value) {
    payload_bytes_ += key.size() + value.size();
    entries_.push_back(Entry{key, value});
  }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  /// Total key+value payload bytes across all entries.
  uint64_t payload_bytes() const { return payload_bytes_; }

  const Entry& operator[](size_t i) const { return entries_[i]; }
  std::vector<Entry>::const_iterator begin() const { return entries_.begin(); }
  std::vector<Entry>::const_iterator end() const { return entries_.end(); }

  const std::shared_ptr<const std::string>& buffer() const { return buffer_; }

  /// Carve this batch into consecutive sub-batches of at most `budget`
  /// payload bytes each (every sub-batch holds at least one record, so
  /// a record larger than the budget travels alone).  Sub-batches share
  /// the buffer — no bytes are copied.
  std::vector<RecordBatch> SplitByBytes(uint64_t budget) const {
    std::vector<RecordBatch> out;
    if (entries_.empty()) return out;
    if (budget == 0 || payload_bytes_ <= budget) {
      out.push_back(*this);
      return out;
    }
    RecordBatch current(buffer_);
    for (const Entry& e : entries_) {
      uint64_t entry_bytes = e.key.size() + e.value.size();
      if (!current.empty() &&
          current.payload_bytes() + entry_bytes > budget) {
        out.push_back(std::move(current));
        current = RecordBatch(buffer_);
      }
      current.Add(e.key, e.value);
    }
    if (!current.empty()) out.push_back(std::move(current));
    return out;
  }

  /// Materialize owned Records (the with-barrier sort/merge path and
  /// tests; the barrier-less hot path never calls this).
  void AppendRecordsTo(std::vector<Record>* out) const {
    out->reserve(out->size() + entries_.size());
    for (const Entry& e : entries_) {
      out->emplace_back(e.key.ToString(), e.value.ToString());
    }
  }

  std::vector<Record> ToRecords() const {
    std::vector<Record> out;
    AppendRecordsTo(&out);
    return out;
  }

 private:
  std::shared_ptr<const std::string> buffer_;
  std::vector<Entry> entries_;
  uint64_t payload_bytes_ = 0;
};

}  // namespace bmr::mr
