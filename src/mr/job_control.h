// First-failure latch shared by every task of one job run: records
// the first non-OK status, flips the cancellation flag, and cancels
// the shuffle layer (tracker waiters and live sinks) so every blocked
// thread unwinds promptly.
#pragma once

#include <atomic>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "mr/shuffle_service.h"

namespace bmr::mr {

class JobControl {
 public:
  explicit JobControl(ShuffleService* shuffle) : shuffle_(shuffle) {}

  JobControl(const JobControl&) = delete;
  JobControl& operator=(const JobControl&) = delete;

  /// The latch holds no lock while calling into the shuffle layer, so
  /// a sink's Cancel may safely report back into this JobControl.
  void Fail(const Status& status) BMR_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      if (status_.ok()) status_ = status;
    }
    cancelled_.store(true, std::memory_order_relaxed);
    shuffle_->Cancel();
  }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// The first failure, or OK if the job succeeded.
  [[nodiscard]] Status status() const BMR_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return status_;
  }

 private:
  ShuffleService* shuffle_;
  mutable Mutex mu_;
  Status status_ BMR_GUARDED_BY(mu_);
  std::atomic<bool> cancelled_{false};
};

}  // namespace bmr::mr
