#include "mr/segment_codec.h"

#include <cstring>

#include "common/arena.h"
#include "common/hash.h"
#include "common/serde.h"

namespace bmr::mr {

namespace {

constexpr uint8_t kSegmentMagic = 0xB5;
constexpr uint8_t kSegmentVersion = 1;
constexpr uint8_t kBlockStored = 0;

}  // namespace

void EncodeShuffleSegment(Slice raw, const Codec& codec, size_t block_bytes,
                          ByteBuffer* out, SegmentEncodeStats* stats) {
  if (block_bytes == 0) block_bytes = kDefaultShuffleBlockBytes;
  const size_t start = out->size();
  const size_t raw_total = raw.size();
  Encoder enc(out);
  enc.PutU8(kSegmentMagic);
  enc.PutU8(kSegmentVersion);
  enc.PutU8(codec.id());
  enc.PutVarint64(raw.size());
  ByteBuffer scratch;
  SegmentEncodeStats local;
  while (!raw.empty()) {
    const size_t take = raw.size() < block_bytes ? raw.size() : block_bytes;
    const Slice block(raw.data(), take);
    raw.RemovePrefix(take);
    scratch.Clear();
    const bool compressed = codec.Compress(block, &scratch);
    const Slice enc_bytes = compressed ? scratch.AsSlice() : block;
    enc.PutVarint64(take);
    enc.PutU8(compressed ? codec.id() : kBlockStored);
    enc.PutVarint64(enc_bytes.size());
    enc.PutFixed64(Fnv1a64(enc_bytes));
    out->Append(enc_bytes);
    ++local.blocks;
    if (compressed) ++local.compressed_blocks;
  }
  if (stats != nullptr) {
    local.raw_bytes = raw_total;
    local.wire_bytes = out->size() - start;
    *stats = local;
  }
}

Status DecodeShuffleSegment(Slice wire,
                            std::shared_ptr<const std::string>* raw) {
  Decoder dec(wire);
  uint8_t magic = 0, version = 0, codec_id = 0;
  uint64_t raw_total = 0;
  if (!dec.GetU8(&magic) || !dec.GetU8(&version) || !dec.GetU8(&codec_id) ||
      !dec.GetVarint64(&raw_total)) {
    return Status::DataLoss("segment: truncated header");
  }
  if (magic != kSegmentMagic) {
    return Status::DataLoss("segment: bad magic");
  }
  if (version != kSegmentVersion) {
    return Status::DataLoss("segment: unknown version");
  }
  if (raw_total > kMaxSegmentRawBytes) {
    return Status::DataLoss("segment: raw size over cap");
  }
  std::shared_ptr<std::string> buf =
      BufferPool::Global()->Acquire(static_cast<size_t>(raw_total));
  char* out = buf->data();
  uint64_t pos = 0;
  while (pos < raw_total) {
    uint64_t raw_len = 0, enc_len = 0, checksum = 0;
    uint8_t flags = 0;
    if (!dec.GetVarint64(&raw_len) || !dec.GetU8(&flags) ||
        !dec.GetVarint64(&enc_len) || !dec.GetFixed64(&checksum)) {
      return Status::DataLoss("segment: truncated block header");
    }
    if (raw_len == 0 || raw_len > raw_total - pos) {
      return Status::DataLoss("segment: block length out of range");
    }
    // A stored block is exactly its raw bytes; a compressed block must
    // be strictly smaller or the encoder would have stored it.
    if (flags == kBlockStored ? enc_len != raw_len : enc_len >= raw_len) {
      return Status::DataLoss("segment: block encoded length out of range");
    }
    Slice enc_bytes;
    if (!dec.GetBytes(enc_len, &enc_bytes)) {
      return Status::DataLoss("segment: truncated block payload");
    }
    if (Fnv1a64(enc_bytes) != checksum) {
      return Status::DataLoss("segment: block checksum mismatch");
    }
    if (flags == kBlockStored) {
      std::memcpy(out + pos, enc_bytes.data(), enc_bytes.size());
    } else {
      const Codec* codec = CodecById(flags);
      if (codec == nullptr) {
        return Status::DataLoss("segment: unknown block codec");
      }
      BMR_RETURN_IF_ERROR(codec->Decompress(enc_bytes, out + pos,
                                            static_cast<size_t>(raw_len)));
    }
    pos += raw_len;
  }
  if (!dec.empty()) {
    return Status::DataLoss("segment: trailing bytes after last block");
  }
  *raw = std::move(buf);
  return Status::Ok();
}

}  // namespace bmr::mr
