// Job-scoped metrics: one registry that every task of a run reports
// into (counters, heap samples, map completion times, output files,
// task timeline) and one snapshot schema (`JobMetrics`) shared by the
// real engine, the benches, and the simulator, so real and simulated
// runs can be printed and compared through the same code path.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/mutex.h"
#include "common/stopwatch.h"
#include "common/thread_annotations.h"
#include "mr/timeline.h"
#include "mr/types.h"
#include "obs/trace.h"

namespace bmr::mr {

/// One (elapsed-time, reducer, bytes) heap sample — Fig. 5's raw data.
struct MemorySample {
  double t = 0;
  int reducer = 0;
  uint64_t bytes = 0;
};

/// Shuffle data-plane memory/encoding stats (GUIDE §13): the block
/// codec's byte counts for this job, and the process-wide pooled-memory
/// counters snapshotted at job end.  Exported as the bmr_codec_* /
/// bmr_arena_* gauge families.
struct DataPlaneStats {
  uint64_t codec_raw_bytes = 0;   ///< published segment bytes pre-codec
  uint64_t codec_wire_bytes = 0;  ///< same segments in container form
  uint64_t arena_allocated_bytes = 0;  ///< process-lifetime bump allocs
  uint64_t arena_chunk_reuses = 0;     ///< chunks recycled across resets
  uint64_t arena_buffer_reuses = 0;    ///< BufferPool freelist hits
  uint64_t arena_cached_bytes = 0;     ///< idle pooled capacity now
};

/// The common reporting schema of a job run — real (engine) or virtual
/// (simmr::ToJobMetrics).
struct JobMetrics {
  Counters counters;
  std::vector<TaskEvent> events;
  std::vector<MemorySample> memory_samples;
  std::vector<std::string> output_files;
  double elapsed_seconds = 0;
  double first_map_done = 0;
  double last_map_done = 0;
  /// Times Transport::Register overwrote a live handler during the run
  /// (exported as bmr_rpc_handler_reregistered_total; zero for simmr).
  uint64_t rpc_handler_reregistrations = 0;
  /// Shuffle codec/arena stats (zero for simmr — virtual bytes are not
  /// encoded).
  DataPlaneStats data_plane;

  /// Observability extension (populated only when the run had
  /// obs.trace=on; simmr fills spans from simulated TaskEvents).
  bool trace_enabled = false;
  obs::TraceLog trace;
  std::map<std::string, LogHistogram> histograms;
  /// Spans lost at the tracer's central-log cap (GUIDE §15); exported
  /// as bmr_obs_spans_dropped_total so span loss is never silent.
  uint64_t spans_dropped = 0;
  /// Flight-recorder artifacts written at this job's end.
  uint64_t flight_dumps = 0;
};

/// Render the headline numbers of a JobMetrics as an aligned text
/// block; `label` distinguishes e.g. "real" from "simulated" runs.
std::string FormatJobMetrics(const std::string& label, const JobMetrics& m);

/// Thread-safe sink for everything a running job reports.  Owns the
/// job clock so that every sample and event shares one time base.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Seconds since the job clock (re)started.
  double Now() const { return clock_.ElapsedSeconds(); }
  /// Must happen-before any concurrent reporting (called once by the
  /// engine before tasks are submitted): the Stopwatch itself is
  /// unsynchronized.  Also restarts the tracer clock so spans and
  /// task events share one time base.
  void RestartClock() {
    clock_.Restart();
    tracer_.RestartClock();
  }

  /// Arm the span/latency tracer (the `obs.trace` knob).  Must
  /// happen-before concurrent reporting, like RestartClock.
  void EnableTracing(const obs::TracerOptions& options = {}) {
    tracer_.Enable(options);
  }
  /// The job's tracer — never null; a no-op sink until EnableTracing.
  obs::Tracer* tracer() const { return &tracer_; }

  void AddCounter(const char* name, uint64_t delta) BMR_EXCLUDES(mu_);
  void MergeCounters(const Counters& c) BMR_EXCLUDES(mu_);
  uint64_t GetCounter(const char* name) const BMR_EXCLUDES(mu_);

  void SampleMemory(int reducer, uint64_t bytes) BMR_EXCLUDES(mu_);
  void NoteMapDone() BMR_EXCLUDES(mu_);
  void NoteOutputFile(std::string path) BMR_EXCLUDES(mu_);
  // BMR_EXCLUDES(mu_) even though the timeline has its own lock:
  // every reporting method carries the annotation so a future change
  // that touches guarded state under mu_ cannot silently create a
  // hold-across-report deadlock path.
  void RecordEvent(Phase phase, int task_id, int node, double start,
                   double end) BMR_EXCLUDES(mu_);

  /// Consistent copy of everything reported so far; stamps
  /// elapsed_seconds with Now().  When tracing is enabled the snapshot
  /// carries the span log and latency histograms too.
  JobMetrics Snapshot() const BMR_EXCLUDES(mu_);

 private:
  Stopwatch clock_;
  Timeline timeline_;          // internally synchronized
  mutable obs::Tracer tracer_;  // internally synchronized
  mutable OrderedMutex mu_{"mr.metrics"};
  Counters counters_ BMR_GUARDED_BY(mu_);
  std::vector<MemorySample> samples_ BMR_GUARDED_BY(mu_);
  std::vector<std::string> output_files_ BMR_GUARDED_BY(mu_);
  double first_map_done_ BMR_GUARDED_BY(mu_) = 0;
  double last_map_done_ BMR_GUARDED_BY(mu_) = 0;
};

}  // namespace bmr::mr
