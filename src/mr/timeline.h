// Task lifecycle timeline, the data behind Figure 4's task-count plots.
#pragma once

#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace bmr::mr {

enum class Phase {
  kMap,
  kShuffle,        // with-barrier: remote reads before the barrier
  kSortMerge,      // with-barrier: merge sort at the reducer
  kReduce,         // with-barrier: grouped reduce execution
  kShuffleReduce,  // barrier-less: pipelined fetch+reduce
  kOutput,         // final DFS write
  kFault,          // injected fault firing (chaos runs; start == end)
};

const char* PhaseName(Phase phase);

struct TaskEvent {
  Phase phase;
  int task_id = 0;
  int node = -1;
  double start = 0;  // seconds since job start
  double end = 0;
};

/// Thread-safe event sink.
class Timeline {
 public:
  void Record(Phase phase, int task_id, int node, double start, double end)
      BMR_EXCLUDES(mu_);
  std::vector<TaskEvent> Snapshot() const BMR_EXCLUDES(mu_);

  /// Number of tasks in `phase` active at time t.
  static int ActiveAt(const std::vector<TaskEvent>& events, Phase phase,
                      double t);

  /// Render a per-phase activity table sampled every `step` seconds —
  /// the textual form of Figure 4.
  static std::string RenderActivity(const std::vector<TaskEvent>& events,
                                    double step);

 private:
  mutable Mutex mu_;
  std::vector<TaskEvent> events_ BMR_GUARDED_BY(mu_);
};

}  // namespace bmr::mr
