#include "mr/shuffle.h"

#include <algorithm>
#include <queue>

#include "obs/metric_names.h"

namespace bmr::mr {

MapOutputTracker::MapOutputTracker(int num_map_tasks)
    : num_map_tasks_(num_map_tasks), state_(num_map_tasks) {}

void MapOutputTracker::MarkDone(int m, int node) {
  {
    MutexLock lock(mu_);
    state_[m].done = true;
    state_[m].node = node;
    state_[m].version++;
  }
  cv_.NotifyAll();
}

MapOutputTracker::Location MapOutputTracker::WaitForMapDone(int m) {
  MutexLock lock(mu_);
  while (!cancelled_ && !state_[m].done) cv_.Wait(mu_);
  if (cancelled_) return Location{-1, -1};
  return Location{state_[m].node, state_[m].version};
}

bool MapOutputTracker::ReportLost(int m, int version) {
  MutexLock lock(mu_);
  if (!state_[m].done || state_[m].version != version) {
    return false;  // stale report: a newer attempt already exists
  }
  state_[m].done = false;
  return true;
}

void MapOutputTracker::Cancel() {
  {
    MutexLock lock(mu_);
    cancelled_ = true;
  }
  cv_.NotifyAll();
}

int MapOutputTracker::num_done() const {
  MutexLock lock(mu_);
  int n = 0;
  for (const auto& s : state_) n += s.done ? 1 : 0;
  return n;
}

namespace {

/// ValuesIterator over a contiguous sorted range.
class RangeValuesIterator final : public ValuesIterator {
 public:
  RangeValuesIterator(const std::vector<Record>& records, size_t begin,
                      size_t end)
      : records_(records), pos_(begin), end_(end) {}

  bool Next(Slice* value) override {
    if (pos_ >= end_) return false;
    *value = Slice(records_[pos_].value);
    ++pos_;
    return true;
  }

 private:
  const std::vector<Record>& records_;
  size_t pos_;
  size_t end_;
};

}  // namespace

Status ReduceGroups(const std::vector<Record>& records,
                    const KeyCompareFn& group_cmp, Reducer* reducer,
                    ReduceContext* ctx, obs::Tracer* tracer) {
  auto equal = [&group_cmp](const Record& a, const Record& b) {
    return group_cmp ? group_cmp(Slice(a.key), Slice(b.key)) == 0
                     : a.key == b.key;
  };
  if (tracer != nullptr && !tracer->enabled()) tracer = nullptr;
  size_t i = 0;
  size_t group = 0;
  while (i < records.size()) {
    size_t j = i + 1;
    while (j < records.size() && equal(records[j], records[i])) ++j;
    RangeValuesIterator values(records, i, j);
    // Sampled (1 in 16): per-group timing on every group would cost
    // more than many reducers' Reduce bodies.
    if (tracer != nullptr && (group++ & 15) == 0) {
      obs::LatencyTimer invoke(tracer, obs::kHReduceInvokeUs);
      reducer->Reduce(Slice(records[i].key), &values, ctx);
    } else {
      reducer->Reduce(Slice(records[i].key), &values, ctx);
    }
    i = j;
  }
  return Status::Ok();
}

std::vector<Record> MergeSortedRuns(std::vector<std::vector<Record>> runs,
                                    const KeyCompareFn& sort_cmp) {
  struct Head {
    size_t run;
    size_t pos;
  };
  auto key_of = [&runs](const Head& h) -> const std::string& {
    return runs[h.run][h.pos].key;
  };
  auto greater = [&](const Head& a, const Head& b) {
    int c = sort_cmp ? sort_cmp(Slice(key_of(a)), Slice(key_of(b)))
                     : key_of(a).compare(key_of(b));
    if (c != 0) return c > 0;
    return a.run > b.run;  // stable across runs
  };
  std::priority_queue<Head, std::vector<Head>, decltype(greater)> heap(greater);
  size_t total = 0;
  for (size_t r = 0; r < runs.size(); ++r) {
    total += runs[r].size();
    if (!runs[r].empty()) heap.push(Head{r, 0});
  }
  std::vector<Record> out;
  out.reserve(total);
  while (!heap.empty()) {
    Head h = heap.top();
    heap.pop();
    out.push_back(std::move(runs[h.run][h.pos]));
    if (h.pos + 1 < runs[h.run].size()) heap.push(Head{h.run, h.pos + 1});
  }
  return out;
}

}  // namespace bmr::mr
