// Partitioners: key → reducer assignment.
#pragma once

#include "common/hash.h"
#include "mr/types.h"

namespace bmr::mr {

/// Default: FNV-1a hash of the whole key, Hadoop's HashPartitioner
/// equivalent.
inline int HashPartition(Slice key, int num_partitions) {
  return static_cast<int>(Fnv1a64(key) % static_cast<uint64_t>(num_partitions));
}

/// Partition on a fixed-length key prefix — used with secondary sort,
/// where the key carries (group, order) but routing must depend only on
/// the group part.
inline PartitionFn PrefixHashPartition(size_t prefix_len) {
  return [prefix_len](Slice key, int num_partitions) {
    Slice prefix(key.data(), std::min(prefix_len, key.size()));
    return HashPartition(prefix, num_partitions);
  };
}

/// Range partitioner over order-preserving encoded keys: assumes keys
/// are uniformly distributed byte strings and splits the first 8 bytes'
/// numeric space evenly.  This is what makes Sort's output globally
/// ordered across part files (Hadoop terasort uses a sampled analogue).
inline int UniformRangePartition(Slice key, int num_partitions) {
  uint64_t v = 0;
  for (size_t i = 0; i < 8; ++i) {
    v = (v << 8) | (i < key.size() ? static_cast<uint8_t>(key[i]) : 0);
  }
  // Map the 64-bit space onto partitions via 128-bit multiply-shift.
  return static_cast<int>(
      (static_cast<unsigned __int128>(v) * num_partitions) >> 64);
}

}  // namespace bmr::mr
