#include "apps/blackscholes.h"

#include <charconv>
#include <cmath>

#include "common/rng.h"
#include "common/serde.h"
#include "core/incremental.h"
#include "mr/api.h"

namespace bmr::apps {

namespace {

constexpr const char* kBsKey = "bs";

struct BsParams {
  double spot = 100.0;
  double strike = 100.0;
  double rate = 0.05;
  double volatility = 0.2;
  double maturity = 1.0;

  static BsParams From(const Config& config) {
    BsParams p;
    p.spot = config.GetDouble("bs.spot", p.spot);
    p.strike = config.GetDouble("bs.strike", p.strike);
    p.rate = config.GetDouble("bs.rate", p.rate);
    p.volatility = config.GetDouble("bs.volatility", p.volatility);
    p.maturity = config.GetDouble("bs.maturity", p.maturity);
    return p;
  }
};

/// Running sums partial: [sum, sum_sq, count].
std::string EncodeSums(double sum, double sum_sq, int64_t count) {
  ByteBuffer buf(24);
  Encoder enc(&buf);
  enc.PutDouble(sum);
  enc.PutDouble(sum_sq);
  enc.PutSignedVarint64(count);
  return buf.ToString();
}

bool DecodeSums(Slice value, double* sum, double* sum_sq, int64_t* count) {
  Decoder dec(value);
  return dec.GetDouble(sum) && dec.GetDouble(sum_sq) &&
         dec.GetSignedVarint64(count);
}

std::string EncodeSample(double x) {
  // The paper's mapper emits the value and its square.
  ByteBuffer buf(16);
  Encoder enc(&buf);
  enc.PutDouble(x);
  enc.PutDouble(x * x);
  return buf.ToString();
}

class BsMapper final : public mr::Mapper {
 public:
  void Map(Slice /*key*/, Slice value, mr::MapContext* ctx) override {
    // Work unit line: "<seed> <iterations>".
    std::string_view line = value.view();
    size_t space = line.find(' ');
    if (space == std::string_view::npos) return;
    uint64_t seed = 0;
    int64_t iterations = 0;
    std::from_chars(line.data(), line.data() + space, seed);
    std::from_chars(line.data() + space + 1, line.data() + line.size(),
                    iterations);
    BsParams p = BsParams::From(ctx->config());
    Pcg32 rng(seed);
    double drift =
        (p.rate - 0.5 * p.volatility * p.volatility) * p.maturity;
    double diffusion = p.volatility * std::sqrt(p.maturity);
    double discount = std::exp(-p.rate * p.maturity);
    for (int64_t i = 0; i < iterations; ++i) {
      double z = rng.NextGaussian();
      double terminal = p.spot * std::exp(drift + diffusion * z);
      double payoff = discount * std::max(terminal - p.strike, 0.0);
      std::string sample = EncodeSample(payoff);
      ctx->Emit(Slice(kBsKey), Slice(sample));
    }
  }
};

void EmitSummary(double sum, double sum_sq, int64_t count,
                 mr::ReduceEmitter* out) {
  if (count == 0) return;
  double mean = sum / count;
  double variance = sum_sq / count - mean * mean;
  if (variance < 0) variance = 0;
  ByteBuffer buf(24);
  Encoder enc(&buf);
  enc.PutDouble(mean);
  enc.PutDouble(std::sqrt(variance));
  enc.PutSignedVarint64(count);
  out->Emit(Slice(kBsKey), buf.AsSlice());
}

class BsReducer final : public mr::Reducer {
 public:
  void Reduce(Slice /*key*/, mr::ValuesIterator* values,
              mr::ReduceContext* ctx) override {
    double sum = 0, sum_sq = 0;
    int64_t count = 0;
    Slice value;
    while (values->Next(&value)) {
      Decoder dec(value);
      double x = 0, x2 = 0;
      if (dec.GetDouble(&x) && dec.GetDouble(&x2)) {
        sum += x;
        sum_sq += x2;
        ++count;
      }
    }
    EmitSummary(sum, sum_sq, count, ctx);
  }
};

class BsIncremental final : public core::IncrementalReducer {
 public:
  std::string InitPartial(Slice /*key*/) override {
    return EncodeSums(0, 0, 0);
  }

  void Update(Slice /*key*/, Slice value, std::string* partial,
              mr::ReduceEmitter* /*out*/) override {
    double sum, sum_sq;
    int64_t count;
    if (!DecodeSums(Slice(*partial), &sum, &sum_sq, &count)) return;
    Decoder dec(value);
    double x = 0, x2 = 0;
    if (dec.GetDouble(&x) && dec.GetDouble(&x2)) {
      *partial = EncodeSums(sum + x, sum_sq + x2, count + 1);
    }
  }

  std::string MergePartials(Slice /*key*/, Slice a, Slice b) override {
    double sa, qa, sb, qb;
    int64_t ca, cb;
    if (!DecodeSums(a, &sa, &qa, &ca)) return b.ToString();
    if (!DecodeSums(b, &sb, &qb, &cb)) return a.ToString();
    return EncodeSums(sa + sb, qa + qb, ca + cb);
  }

  void Finish(Slice /*key*/, Slice partial, mr::ReduceEmitter* out) override {
    double sum, sum_sq;
    int64_t count;
    if (DecodeSums(partial, &sum, &sum_sq, &count)) {
      EmitSummary(sum, sum_sq, count, out);
    }
  }
};

}  // namespace

double BlackScholesCallPrice(double spot, double strike, double rate,
                             double volatility, double maturity) {
  double d1 = (std::log(spot / strike) +
               (rate + 0.5 * volatility * volatility) * maturity) /
              (volatility * std::sqrt(maturity));
  double d2 = d1 - volatility * std::sqrt(maturity);
  auto norm_cdf = [](double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); };
  return spot * norm_cdf(d1) -
         strike * std::exp(-rate * maturity) * norm_cdf(d2);
}

bool DecodeBsSummary(Slice value, BsSummary* summary) {
  Decoder dec(value);
  return dec.GetDouble(&summary->mean) && dec.GetDouble(&summary->stddev) &&
         dec.GetSignedVarint64(&summary->count);
}

mr::JobSpec MakeBlackScholesJob(const AppOptions& options) {
  mr::JobSpec spec = BaseJob("blackscholes", options);
  spec.num_reducers = 1;  // single-reducer aggregation by definition
  spec.mapper = [] { return std::make_unique<BsMapper>(); };
  spec.reducer = [] { return std::make_unique<BsReducer>(); };
  spec.incremental = [] { return std::make_unique<BsIncremental>(); };
  return spec;
}

}  // namespace bmr::apps
