#include "apps/registry.h"

#include "apps/blackscholes.h"
#include "apps/genetic.h"
#include "apps/grep.h"
#include "apps/knn.h"
#include "apps/lastfm.h"
#include "apps/sort.h"
#include "apps/wordcount.h"

namespace bmr::apps {

const std::vector<AppCase>& AllApps() {
  static const std::vector<AppCase> kApps = {
      {"grep", "Distributed Grep", "Identity", false, "O(1)", MakeGrepJob},
      {"sort", "Sort", "Sorting", true, "O(records)", MakeSortJob},
      {"wordcount", "Word Count", "Aggregation", false, "O(keys)",
       MakeWordCountJob},
      {"knn", "k-Nearest Neighbors", "Selection", false, "O(k * keys)",
       MakeKnnJob},
      {"lastfm", "Last.fm unique listens", "Post-reduction processing", false,
       "O(records)", MakeLastFmJob},
      {"genetic", "Genetic Algorithms", "Cross-key operations", false,
       "O(window_size)", MakeGeneticJob},
      {"blackscholes", "Black Scholes", "Single Reducer Aggregation", false,
       "O(1)", MakeBlackScholesJob},
  };
  return kApps;
}

const AppCase* FindApp(const std::string& name) {
  for (const AppCase& app : AllApps()) {
    if (app.name == name) return &app;
  }
  return nullptr;
}

}  // namespace bmr::apps
