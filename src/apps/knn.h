// k-Nearest Neighbors — the Selection Reduce class (§4.4, §6.1.3).
//
// Input: experimental values (one per line).  The training set travels
// in the job config (the distributed-cache analogue).  Distance is
// |exp - train|.
//
// With barrier: the Map key is the tuple (exp_value, distance); a
// secondary sort orders by distance within each exp_value group, so
// Reduce just takes the first k values.  Without barrier: the key is
// exp_value alone and the Reducer keeps a size-k ordered list per key
// (the O(k·keys) partial result of Table 1), updating it as records
// arrive.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/app.h"

namespace bmr::apps {

/// Options.extra keys: "knn.k" (int, default 10) and "knn.training"
/// (comma-separated int64 list — use EncodeTrainingSet).
mr::JobSpec MakeKnnJob(const AppOptions& options);

std::string EncodeTrainingSet(const std::vector<int64_t>& training);
std::vector<int64_t> DecodeTrainingSet(const std::string& encoded);

/// Output record helpers: key = ordered-encoded exp value (8 bytes),
/// value = ordered-encoded distance (8 bytes) + varint train value.
struct KnnNeighbor {
  int64_t distance = 0;
  int64_t train_value = 0;
};
std::string EncodeNeighbor(const KnnNeighbor& n);
bool DecodeNeighbor(Slice value, KnnNeighbor* n);

}  // namespace bmr::apps
