#include "apps/sort.h"

#include <charconv>

#include "common/serde.h"
#include "core/incremental.h"
#include "mr/api.h"

namespace bmr::apps {

namespace {

int64_t ParseI64(Slice s) {
  int64_t v = 0;
  std::from_chars(s.data(), s.data() + s.size(), v);
  return v;
}

class SortMapper final : public mr::Mapper {
 public:
  void Map(Slice /*key*/, Slice value, mr::MapContext* ctx) override {
    std::string key = EncodeOrderedI64(ParseI64(value));
    ctx->Emit(Slice(key), Slice());
  }
};

/// With barrier: Identity — the framework already sorted.
class SortReducer final : public mr::Reducer {
 public:
  void Reduce(Slice key, mr::ValuesIterator* values,
              mr::ReduceContext* ctx) override {
    Slice value;
    while (values->Next(&value)) ctx->Emit(key, value);
  }
};

/// Without barrier: per-key duplicate count in the ordered store, keys
/// re-emitted count times at the end in store order (§6.1.1).
class SortIncremental final : public core::IncrementalReducer {
 public:
  std::string InitPartial(Slice /*key*/) override { return EncodeI64(0); }

  void Update(Slice /*key*/, Slice /*value*/, std::string* partial,
              mr::ReduceEmitter* /*out*/) override {
    int64_t n = 0;
    DecodeI64(Slice(*partial), &n);
    *partial = EncodeI64(n + 1);
  }

  std::string MergePartials(Slice /*key*/, Slice a, Slice b) override {
    int64_t x = 0, y = 0;
    DecodeI64(a, &x);
    DecodeI64(b, &y);
    return EncodeI64(x + y);
  }

  void Finish(Slice key, Slice partial, mr::ReduceEmitter* out) override {
    int64_t n = 0;
    DecodeI64(partial, &n);
    for (int64_t i = 0; i < n; ++i) out->Emit(key, Slice());
  }
};

/// Linear range partitioner over the configured value range: makes
/// part files globally ordered when concatenated in partition order.
mr::PartitionFn RangePartitioner(int64_t min_value, int64_t max_value) {
  return [min_value, max_value](Slice key, int parts) {
    int64_t v = 0;
    if (!DecodeOrderedI64(key, &v)) return 0;
    if (v < min_value) v = min_value;
    if (v > max_value) v = max_value;
    double frac = max_value > min_value
                      ? static_cast<double>(v - min_value) /
                            (static_cast<double>(max_value - min_value) + 1)
                      : 0.0;
    int p = static_cast<int>(frac * parts);
    return p >= parts ? parts - 1 : p;
  };
}

}  // namespace

mr::JobSpec MakeSortJob(const AppOptions& options) {
  mr::JobSpec spec = BaseJob("sort", options);
  spec.mapper = [] { return std::make_unique<SortMapper>(); };
  spec.reducer = [] { return std::make_unique<SortReducer>(); };
  spec.incremental = [] { return std::make_unique<SortIncremental>(); };
  spec.partitioner =
      RangePartitioner(options.extra.GetInt("sort.min", 0),
                       options.extra.GetInt("sort.max", 1000000));
  return spec;
}

}  // namespace bmr::apps
