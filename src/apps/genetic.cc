#include "apps/genetic.h"

#include <charconv>
#include <deque>

#include "common/rng.h"
#include "common/serde.h"
#include "core/incremental.h"
#include "mr/api.h"

namespace bmr::apps {

int64_t GaFitness(uint32_t genome) { return __builtin_popcount(genome); }

namespace {

uint32_t ParseU32(Slice s) {
  uint32_t v = 0;
  std::from_chars(s.data(), s.data() + s.size(), v);
  return v;
}

class GaMapper final : public mr::Mapper {
 public:
  void Map(Slice /*key*/, Slice value, mr::MapContext* ctx) override {
    uint32_t genome = ParseU32(value);
    std::string key = EncodeOrderedI64(static_cast<int64_t>(genome));
    std::string fitness = EncodeI64(GaFitness(genome));
    ctx->Emit(Slice(key), Slice(fitness));
  }
};

/// The windowed selection + crossover shared by both modes.  Emits
/// exactly one offspring per consumed individual, so output cardinality
/// equals input cardinality — the invariant the tests check.
class GaWindow {
 public:
  GaWindow(size_t window_size, uint64_t seed)
      : window_size_(window_size), rng_(seed) {}

  void Push(uint32_t genome, mr::ReduceEmitter* out) {
    window_.push_back(genome);
    if (window_.size() >= window_size_) Evolve(out);
  }

  void Flush(mr::ReduceEmitter* out) {
    if (!window_.empty()) Evolve(out);
  }

 private:
  uint32_t Tournament() {
    // Binary tournament over the window.
    uint32_t a = window_[rng_.NextBounded(static_cast<uint32_t>(window_.size()))];
    uint32_t b = window_[rng_.NextBounded(static_cast<uint32_t>(window_.size()))];
    return GaFitness(a) >= GaFitness(b) ? a : b;
  }

  void Evolve(mr::ReduceEmitter* out) {
    size_t n = window_.size();
    for (size_t i = 0; i < n; ++i) {
      uint32_t p1 = Tournament();
      uint32_t p2 = Tournament();
      uint32_t mask = rng_.NextU32();                  // uniform crossover
      uint32_t child = (p1 & mask) | (p2 & ~mask);
      child ^= 1u << rng_.NextBounded(32);             // point mutation
      std::string key = EncodeOrderedI64(static_cast<int64_t>(child));
      std::string fitness = EncodeI64(GaFitness(child));
      out->Emit(Slice(key), Slice(fitness));
    }
    window_.clear();
  }

  size_t window_size_;
  Pcg32 rng_;
  std::deque<uint32_t> window_;
};

/// Mapper over a previous generation's framed output: key is already
/// the ordered-encoded genome, value its fitness — re-evaluate and
/// re-emit (generation chaining for iterative evolution).
class GaKvMapper final : public mr::Mapper {
 public:
  void Map(Slice key, Slice /*value*/, mr::MapContext* ctx) override {
    int64_t genome = 0;
    if (!DecodeOrderedI64(key, &genome)) return;
    std::string fitness =
        EncodeI64(GaFitness(static_cast<uint32_t>(genome)));
    ctx->Emit(key, Slice(fitness));
  }
};

class GaReducer final : public mr::Reducer {
 public:
  void Setup(mr::ReduceContext* ctx) override {
    window_ = std::make_unique<GaWindow>(
        ctx->config().GetInt("ga.window", 16),
        static_cast<uint64_t>(ctx->config().GetInt("ga.seed", 1)));
  }
  void Reduce(Slice key, mr::ValuesIterator* values,
              mr::ReduceContext* ctx) override {
    int64_t genome = 0;
    DecodeOrderedI64(key, &genome);
    Slice value;
    while (values->Next(&value)) {
      window_->Push(static_cast<uint32_t>(genome), ctx);
    }
  }
  void Cleanup(mr::ReduceContext* ctx) override { window_->Flush(ctx); }

 private:
  std::unique_ptr<GaWindow> window_;
};

class GaIncremental final : public core::IncrementalReducer {
 public:
  void Setup(const Config& config) override {
    window_ = std::make_unique<GaWindow>(
        config.GetInt("ga.window", 16),
        static_cast<uint64_t>(config.GetInt("ga.seed", 1)));
  }
  bool UsesStore() const override { return false; }
  void Update(Slice key, Slice /*value*/, std::string* /*partial*/,
              mr::ReduceEmitter* out) override {
    int64_t genome = 0;
    DecodeOrderedI64(key, &genome);
    window_->Push(static_cast<uint32_t>(genome), out);
  }
  void Flush(mr::ReduceEmitter* out) override { window_->Flush(out); }

 private:
  std::unique_ptr<GaWindow> window_;
};

}  // namespace

mr::JobSpec MakeGeneticJob(const AppOptions& options) {
  mr::JobSpec spec = BaseJob("genetic", options);
  if (options.extra.GetBool("ga.kv_input", false)) {
    // Chained generation: input is a previous run's framed output.
    spec.input_kind = mr::InputKind::kKvPairs;
    spec.mapper = [] { return std::make_unique<GaKvMapper>(); };
  } else {
    spec.mapper = [] { return std::make_unique<GaMapper>(); };
  }
  spec.reducer = [] { return std::make_unique<GaReducer>(); };
  spec.incremental = [] { return std::make_unique<GaIncremental>(); };
  return spec;
}

}  // namespace bmr::apps
