// Distributed Grep — the Identity Reduce class (§4.1).
//
// Map emits matching lines; Reduce merely writes them out.  No key
// ordering is needed and no partial results are kept, so the barrier
// and barrier-less programs are effectively identical — which is why
// the paper omits Grep from the performance plots.
#pragma once

#include "apps/app.h"

namespace bmr::apps {

/// Options.extra keys: "grep.pattern" (substring to match, required).
mr::JobSpec MakeGrepJob(const AppOptions& options);

}  // namespace bmr::apps
