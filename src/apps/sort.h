// Sort — the Sorting Reduce class (§4.2, §6.1.1).
//
// The only class that *requires* key order in the output.  With a
// barrier the job is Identity code: the framework's shuffle merge-sort
// does all the work (range partitioning makes the concatenated part
// files globally sorted).  Without a barrier, the Reduce function must
// sort itself: a red-black tree keyed by value with a duplicate count
// as the partial result — the degenerate case where barrier-less
// MapReduce is a little *slower* (RB insert loses to merge sort).
#pragma once

#include "apps/app.h"

namespace bmr::apps {

/// Options.extra keys: "sort.min" / "sort.max" (int64 range of the
/// input values, for the range partitioner; defaults 0 / 1000000).
mr::JobSpec MakeSortJob(const AppOptions& options);

}  // namespace bmr::apps
