// Black-Scholes Monte Carlo option pricing — the Single reducer
// aggregation class (§4.7, §6.1.6).
//
// Each map work unit runs N Monte Carlo iterations of the option
// payoff; for every sampled value x it emits x together with x², so a
// single reducer can fold mean and standard deviation from running
// sums in O(1) memory:   σ = sqrt( E[x²] − E[x]² ).
#pragma once

#include "apps/app.h"

namespace bmr::apps {

/// Option parameters (defaults: the canonical S=100, K=100, r=5%,
/// σ=20%, T=1y European call).  Configure via options.extra:
/// "bs.spot", "bs.strike", "bs.rate", "bs.volatility", "bs.maturity".
mr::JobSpec MakeBlackScholesJob(const AppOptions& options);

/// Closed-form Black-Scholes call price, for validating the Monte
/// Carlo estimate in tests.
double BlackScholesCallPrice(double spot, double strike, double rate,
                             double volatility, double maturity);

/// Reducer output: value = [mean, stddev, count] (two doubles + varint).
struct BsSummary {
  double mean = 0;
  double stddev = 0;
  int64_t count = 0;
};
bool DecodeBsSummary(Slice value, BsSummary* summary);

}  // namespace bmr::apps
