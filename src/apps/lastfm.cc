#include "apps/lastfm.h"

#include <algorithm>
#include <set>
#include <vector>

#include "common/serde.h"
#include "core/incremental.h"
#include "mr/api.h"

namespace bmr::apps {

namespace {

class ListenMapper final : public mr::Mapper {
 public:
  void Map(Slice /*key*/, Slice value, mr::MapContext* ctx) override {
    std::string_view line = value.view();
    size_t space = line.find(' ');
    if (space == std::string_view::npos) return;
    Slice user(line.data(), space);
    Slice track(line.data() + space + 1, line.size() - space - 1);
    ctx->Emit(track, user);
  }
};

/// With barrier: all listens for a track arrive together; a Set
/// deduplicates, then the post-processing step counts it.
class ListenReducer final : public mr::Reducer {
 public:
  void Reduce(Slice key, mr::ValuesIterator* values,
              mr::ReduceContext* ctx) override {
    std::set<std::string> users;
    Slice value;
    while (values->Next(&value)) users.insert(value.ToString());
    std::string count = EncodeI64(static_cast<int64_t>(users.size()));
    ctx->Emit(key, Slice(count));
  }
};

/// Without barrier: the per-track user set *is* the partial result,
/// serialized as sorted length-prefixed strings.
class ListenIncremental final : public core::IncrementalReducer {
 public:
  void Update(Slice /*key*/, Slice value, std::string* partial,
              mr::ReduceEmitter* /*out*/) override {
    std::vector<std::string> users = Parse(Slice(*partial));
    std::string user = value.ToString();
    auto it = std::lower_bound(users.begin(), users.end(), user);
    if (it == users.end() || *it != user) {
      users.insert(it, std::move(user));
      *partial = Serialize(users);
    }
  }

  /// Set union across spill fragments.
  std::string MergePartials(Slice /*key*/, Slice a, Slice b) override {
    std::vector<std::string> ua = Parse(a);
    std::vector<std::string> ub = Parse(b);
    std::vector<std::string> merged;
    merged.reserve(ua.size() + ub.size());
    std::set_union(ua.begin(), ua.end(), ub.begin(), ub.end(),
                   std::back_inserter(merged));
    return Serialize(merged);
  }

  /// Post-processing: count the deduplicated set.
  void Finish(Slice key, Slice partial, mr::ReduceEmitter* out) override {
    std::string count =
        EncodeI64(static_cast<int64_t>(Parse(partial).size()));
    out->Emit(key, Slice(count));
  }

 private:
  static std::vector<std::string> Parse(Slice partial) {
    std::vector<std::string> out;
    Decoder dec(partial);
    std::string user;
    while (!dec.empty() && dec.GetString(&user)) out.push_back(user);
    return out;
  }

  static std::string Serialize(const std::vector<std::string>& users) {
    ByteBuffer buf;
    Encoder enc(&buf);
    for (const auto& user : users) enc.PutString(user);
    return buf.ToString();
  }
};

}  // namespace

mr::JobSpec MakeLastFmJob(const AppOptions& options) {
  mr::JobSpec spec = BaseJob("lastfm", options);
  spec.mapper = [] { return std::make_unique<ListenMapper>(); };
  spec.reducer = [] { return std::make_unique<ListenReducer>(); };
  spec.incremental = [] { return std::make_unique<ListenIncremental>(); };
  return spec;
}

}  // namespace bmr::apps
