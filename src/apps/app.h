// Shared application plumbing: every case-study app builds a JobSpec
// from these options, in either execution mode.
#pragma once

#include <string>
#include <vector>

#include "common/config.h"
#include "core/partial_store.h"
#include "mr/job.h"

namespace bmr::apps {

struct AppOptions {
  std::vector<std::string> input_files;
  std::string output_path = "/out";
  int num_reducers = 4;
  /// setIncrementalReduction(true) — the paper's one-flag switch.
  bool barrierless = false;
  core::StoreConfig store;
  /// App-specific tunables (grep.pattern, knn.k, ga.window, ...).
  Config extra;
};

/// Fill the generic JobSpec fields from options.
inline mr::JobSpec BaseJob(const std::string& name, const AppOptions& options) {
  mr::JobSpec spec;
  spec.name = name;
  spec.input_files = options.input_files;
  spec.output_path = options.output_path;
  spec.num_reducers = options.num_reducers;
  spec.barrierless = options.barrierless;
  spec.store = options.store;
  spec.config = options.extra;
  return spec;
}

}  // namespace bmr::apps
