// Genetic algorithm — the Cross-key operations class (§4.6, §6.1.5),
// after Verma et al.'s "Scaling Genetic Algorithms using MapReduce".
//
// Map computes each individual's fitness and emits (individual,
// fitness).  Reduce keeps a sliding window of the previous W
// individuals; when the window fills it runs tournament selection and
// uniform crossover over the window and emits the offspring.  State is
// O(window_size) regardless of input size, and no per-key partial
// results are needed — which is why the paper reports zero extra lines
// of code to convert this app (Table 2).
#pragma once

#include <cstdint>

#include "apps/app.h"

namespace bmr::apps {

/// Options.extra keys: "ga.window" (int, default 16),
/// "ga.seed" (uint64, default 1), and "ga.kv_input" (bool): treat the
/// input as a previous generation's framed output instead of text —
/// the chaining hook for multi-generation evolution (see
/// examples/evolve.cc).
mr::JobSpec MakeGeneticJob(const AppOptions& options);

/// Fitness function (OneMax: count of set genome bits) shared with
/// tests.
int64_t GaFitness(uint32_t genome);

}  // namespace bmr::apps
