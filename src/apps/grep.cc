#include "apps/grep.h"

#include "core/incremental.h"
#include "mr/api.h"

namespace bmr::apps {

namespace {

class GrepMapper final : public mr::Mapper {
 public:
  void Setup(mr::MapContext* ctx) override {
    pattern_ = ctx->config().GetString("grep.pattern");
  }
  void Map(Slice key, Slice value, mr::MapContext* ctx) override {
    if (pattern_.empty()) return;
    if (value.view().find(pattern_) != std::string_view::npos) {
      ctx->Emit(key, value);
    }
  }

 private:
  std::string pattern_;
};

/// With barrier: the Identity Reducer.
class GrepReducer final : public mr::Reducer {
 public:
  void Reduce(Slice key, mr::ValuesIterator* values,
              mr::ReduceContext* ctx) override {
    Slice value;
    while (values->Next(&value)) ctx->Emit(key, value);
  }
};

/// Without barrier: pass-through, no partial results (O(1) memory).
class GrepIncremental final : public core::IncrementalReducer {
 public:
  bool UsesStore() const override { return false; }
  void Update(Slice key, Slice value, std::string* /*partial*/,
              mr::ReduceEmitter* out) override {
    out->Emit(key, value);
  }
};

}  // namespace

mr::JobSpec MakeGrepJob(const AppOptions& options) {
  mr::JobSpec spec = BaseJob("grep", options);
  spec.mapper = [] { return std::make_unique<GrepMapper>(); };
  spec.reducer = [] { return std::make_unique<GrepReducer>(); };
  spec.incremental = [] { return std::make_unique<GrepIncremental>(); };
  return spec;
}

}  // namespace bmr::apps
