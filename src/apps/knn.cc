#include "apps/knn.h"

#include <algorithm>
#include <charconv>
#include <cstdlib>

#include "common/serde.h"
#include "core/incremental.h"
#include "mr/api.h"
#include "mr/partition.h"

namespace bmr::apps {

std::string EncodeTrainingSet(const std::vector<int64_t>& training) {
  std::string out;
  for (size_t i = 0; i < training.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(training[i]);
  }
  return out;
}

std::vector<int64_t> DecodeTrainingSet(const std::string& encoded) {
  std::vector<int64_t> out;
  size_t pos = 0;
  while (pos < encoded.size()) {
    size_t comma = encoded.find(',', pos);
    if (comma == std::string::npos) comma = encoded.size();
    int64_t v = 0;
    std::from_chars(encoded.data() + pos, encoded.data() + comma, v);
    out.push_back(v);
    pos = comma + 1;
  }
  return out;
}

std::string EncodeNeighbor(const KnnNeighbor& n) {
  return EncodeOrderedI64(n.distance) + EncodeI64(n.train_value);
}

bool DecodeNeighbor(Slice value, KnnNeighbor* n) {
  if (value.size() < 8) return false;
  if (!DecodeOrderedI64(Slice(value.data(), 8), &n->distance)) return false;
  return DecodeI64(Slice(value.data() + 8, value.size() - 8),
                   &n->train_value);
}

namespace {

int64_t ParseI64(Slice s) {
  int64_t v = 0;
  std::from_chars(s.data(), s.data() + s.size(), v);
  return v;
}

/// With barrier: key = (exp, distance) for the secondary sort.
class KnnBarrierMapper final : public mr::Mapper {
 public:
  void Setup(mr::MapContext* ctx) override {
    training_ = DecodeTrainingSet(ctx->config().GetString("knn.training"));
  }
  void Map(Slice /*key*/, Slice value, mr::MapContext* ctx) override {
    int64_t exp = ParseI64(value);
    for (int64_t train : training_) {
      int64_t dist = std::llabs(exp - train);
      std::string key = EncodeOrderedI64(exp) + EncodeOrderedI64(dist);
      std::string val = EncodeI64(train);
      ctx->Emit(Slice(key), Slice(val));
    }
  }

 private:
  std::vector<int64_t> training_;
};

/// With barrier: values arrive distance-sorted; keep the first k.
class KnnBarrierReducer final : public mr::Reducer {
 public:
  void Setup(mr::ReduceContext* ctx) override {
    k_ = ctx->config().GetInt("knn.k", 10);
  }
  void Reduce(Slice key, mr::ValuesIterator* values,
              mr::ReduceContext* ctx) override {
    // Group key: the first 8 bytes (exp).  Distance is bytes 8..16 of
    // the *sort* key of each record — but the grouped iterator hands us
    // only the first record's full key, so re-derive distance from
    // |exp - train| per value (identical by construction).
    Slice exp_key(key.data(), 8);
    int64_t exp = 0;
    DecodeOrderedI64(exp_key, &exp);
    int64_t emitted = 0;
    Slice value;
    while (values->Next(&value) && emitted < k_) {
      int64_t train = 0;
      DecodeI64(value, &train);
      KnnNeighbor n{std::llabs(exp - train), train};
      std::string encoded = EncodeNeighbor(n);
      ctx->Emit(exp_key, Slice(encoded));
      ++emitted;
    }
  }

 private:
  int64_t k_ = 10;
};

/// Without barrier: key = exp only; value carries (distance, train).
class KnnIncrementalMapper final : public mr::Mapper {
 public:
  void Setup(mr::MapContext* ctx) override {
    training_ = DecodeTrainingSet(ctx->config().GetString("knn.training"));
  }
  void Map(Slice /*key*/, Slice value, mr::MapContext* ctx) override {
    int64_t exp = ParseI64(value);
    std::string key = EncodeOrderedI64(exp);
    for (int64_t train : training_) {
      KnnNeighbor n{std::llabs(exp - train), train};
      std::string val = EncodeNeighbor(n);
      ctx->Emit(Slice(key), Slice(val));
    }
  }

 private:
  std::vector<int64_t> training_;
};

/// Partial result: concatenation of at most k EncodeNeighbor entries,
/// ascending by distance (the ordered linked list of §4.4).
class KnnIncremental final : public core::IncrementalReducer {
 public:
  void Setup(const Config& config) override {
    k_ = config.GetInt("knn.k", 10);
  }

  void Update(Slice /*key*/, Slice value, std::string* partial,
              mr::ReduceEmitter* /*out*/) override {
    std::vector<KnnNeighbor> list = Parse(Slice(*partial));
    KnnNeighbor n;
    if (!DecodeNeighbor(value, &n)) return;
    Insert(&list, n);
    *partial = Serialize(list);
  }

  std::string MergePartials(Slice /*key*/, Slice a, Slice b) override {
    std::vector<KnnNeighbor> list = Parse(a);
    for (const KnnNeighbor& n : Parse(b)) Insert(&list, n);
    return Serialize(list);
  }

  void Finish(Slice key, Slice partial, mr::ReduceEmitter* out) override {
    for (const KnnNeighbor& n : Parse(partial)) {
      std::string encoded = EncodeNeighbor(n);
      out->Emit(key, Slice(encoded));
    }
  }

 private:
  std::vector<KnnNeighbor> Parse(Slice partial) const {
    std::vector<KnnNeighbor> out;
    Decoder dec(partial);
    while (!dec.empty()) {
      Slice entry;
      if (!dec.GetString(&entry)) break;
      KnnNeighbor n;
      if (DecodeNeighbor(entry, &n)) out.push_back(n);
    }
    return out;
  }

  std::string Serialize(const std::vector<KnnNeighbor>& list) const {
    ByteBuffer buf;
    Encoder enc(&buf);
    for (const KnnNeighbor& n : list) enc.PutString(EncodeNeighbor(n));
    return buf.ToString();
  }

  void Insert(std::vector<KnnNeighbor>* list, const KnnNeighbor& n) const {
    auto it = std::lower_bound(
        list->begin(), list->end(), n,
        [](const KnnNeighbor& a, const KnnNeighbor& b) {
          if (a.distance != b.distance) return a.distance < b.distance;
          return a.train_value < b.train_value;
        });
    list->insert(it, n);
    if (list->size() > static_cast<size_t>(k_)) list->pop_back();
  }

  int64_t k_ = 10;
};

int CompareFirst8(Slice a, Slice b) {
  Slice pa(a.data(), std::min<size_t>(8, a.size()));
  Slice pb(b.data(), std::min<size_t>(8, b.size()));
  return pa.Compare(pb);
}

}  // namespace

mr::JobSpec MakeKnnJob(const AppOptions& options) {
  mr::JobSpec spec = BaseJob("knn", options);
  if (options.barrierless) {
    spec.mapper = [] { return std::make_unique<KnnIncrementalMapper>(); };
    spec.incremental = [] { return std::make_unique<KnnIncremental>(); };
    // Keys are plain exp values; default bytewise sort and hash
    // partitioning apply.
  } else {
    spec.mapper = [] { return std::make_unique<KnnBarrierMapper>(); };
    spec.reducer = [] { return std::make_unique<KnnBarrierReducer>(); };
    // Secondary sort: order by the full (exp, distance) key, group and
    // partition by the exp prefix.
    spec.group_cmp = CompareFirst8;
    spec.partitioner = mr::PrefixHashPartition(8);
  }
  return spec;
}

}  // namespace bmr::apps
