// WordCount — the Aggregation Reduce class (§3.2, §4.3).
//
// Map emits (word, 1).  With a barrier, Reduce receives all counts for
// a word at once and sums them.  Without one, a running count per word
// is kept as the partial result (O(keys) memory) — the TreeMap program
// of Algorithm 2 / the paper's appendix.
#pragma once

#include "apps/app.h"

namespace bmr::apps {

/// Options.extra keys: "wordcount.use_combiner" (bool, default false —
/// the paper's runs don't combine).
mr::JobSpec MakeWordCountJob(const AppOptions& options);

/// Value codec shared with tests/benches: counts travel as signed
/// varints.
std::string EncodeCount(int64_t count);
int64_t DecodeCount(Slice value);

}  // namespace bmr::apps
