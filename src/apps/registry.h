// Registry of the case-study applications with their Table 1 metadata
// (Reduce classification, sort requirement, partial-result size class).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "apps/app.h"

namespace bmr::apps {

struct AppCase {
  std::string name;            // "wordcount"
  std::string application;     // Table 1's application label
  std::string reduce_class;    // Table 1's classification
  bool key_sort_required;      // Table 1 column 2
  std::string partial_results; // Table 1 column 3 (memory complexity)
  std::function<mr::JobSpec(const AppOptions&)> make_job;
};

/// All seven Reduce classes, in Table 1 order.
const std::vector<AppCase>& AllApps();

/// Lookup by name; nullptr if unknown.
const AppCase* FindApp(const std::string& name);

}  // namespace bmr::apps
