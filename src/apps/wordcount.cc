#include "apps/wordcount.h"

#include "common/serde.h"
#include "core/incremental.h"
#include "mr/api.h"

namespace bmr::apps {

std::string EncodeCount(int64_t count) { return EncodeI64(count); }

int64_t DecodeCount(Slice value) {
  int64_t v = 0;
  DecodeI64(value, &v);
  return v;
}

namespace {

class WordCountMapper final : public mr::Mapper {
 public:
  void Map(Slice /*key*/, Slice value, mr::MapContext* ctx) override {
    // Tokenize on single spaces (the generator's format); empty tokens
    // are skipped so stray separators are harmless.
    std::string_view line = value.view();
    size_t pos = 0;
    while (pos < line.size()) {
      size_t space = line.find(' ', pos);
      if (space == std::string_view::npos) space = line.size();
      if (space > pos) {
        ctx->Emit(Slice(line.data() + pos, space - pos), Slice(one_));
      }
      pos = space + 1;
    }
  }

 private:
  std::string one_ = EncodeCount(1);
};

class WordCountReducer final : public mr::Reducer {
 public:
  void Reduce(Slice key, mr::ValuesIterator* values,
              mr::ReduceContext* ctx) override {
    int64_t sum = 0;
    Slice value;
    while (values->Next(&value)) sum += DecodeCount(value);
    std::string encoded = EncodeCount(sum);
    ctx->Emit(key, Slice(encoded));
  }
};

class WordCountCombiner final : public mr::Combiner {
 public:
  void Combine(Slice key, const std::vector<Slice>& values,
               mr::MapEmitter* out) override {
    int64_t sum = 0;
    for (Slice v : values) sum += DecodeCount(v);
    std::string encoded = EncodeCount(sum);
    out->Emit(key, Slice(encoded));
  }
};

/// Barrier-less: running count per word (Algorithm 2).
class WordCountIncremental final : public core::IncrementalReducer {
 public:
  std::string InitPartial(Slice /*key*/) override { return EncodeCount(0); }

  void Update(Slice /*key*/, Slice value, std::string* partial,
              mr::ReduceEmitter* /*out*/) override {
    *partial = EncodeCount(DecodeCount(Slice(*partial)) + DecodeCount(value));
  }

  /// Counts from different spill fragments simply add — the merge
  /// function is the combiner, as §5.1 observes.
  std::string MergePartials(Slice /*key*/, Slice a, Slice b) override {
    return EncodeCount(DecodeCount(a) + DecodeCount(b));
  }
};

}  // namespace

mr::JobSpec MakeWordCountJob(const AppOptions& options) {
  mr::JobSpec spec = BaseJob("wordcount", options);
  spec.mapper = [] { return std::make_unique<WordCountMapper>(); };
  spec.reducer = [] { return std::make_unique<WordCountReducer>(); };
  spec.incremental = [] { return std::make_unique<WordCountIncremental>(); };
  if (options.extra.GetBool("wordcount.use_combiner", false)) {
    spec.combiner = [] { return std::make_unique<WordCountCombiner>(); };
  }
  return spec;
}

}  // namespace bmr::apps
