// Last.fm unique listens — the Post-reduction processing class
// (§4.5, §6.1.4).
//
// Input lines are "userId trackId".  For each track, the number of
// *unique* listeners is counted: values are first folded into a
// duplicate-free set (the processing step), then the set is counted
// (the post-processing step).  Partial results can reach O(records).
#pragma once

#include "apps/app.h"

namespace bmr::apps {

mr::JobSpec MakeLastFmJob(const AppOptions& options);

}  // namespace bmr::apps
