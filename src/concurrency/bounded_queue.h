// Blocking MPMC bounded queue.  This is the single FIFO buffer at the
// heart of the barrier-less shuffle (Section 3.1 of the paper): all
// per-mapper fetch threads push into one queue and one reduce thread
// drains it in arrival order.
//
// The hot path moves *batches*: PushAll/PopAll transfer a whole vector
// of items under one lock acquisition and at most one condition-variable
// wakeup, so the per-record mutex/condvar cycle of the naive design
// disappears from the shuffle->reduce data plane.  Producers blocked on
// a full queue are woken only when a pop actually crosses the
// full->not-full boundary; pops from a non-full queue signal nobody.
#pragma once

#include <deque>
#include <optional>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace bmr {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is full.  Returns false iff the queue was
  /// closed before the item could be enqueued.
  bool Push(T item) BMR_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (!closed_ && items_.size() >= capacity_) not_full_.Wait(mu_);
    if (closed_) return false;
    items_.push_back(std::move(item));
    const bool room = items_.size() < capacity_;
    lock.Unlock();
    not_empty_.NotifyOne();
    // Cascade: pops only signal on the full->not-full *transition*, so a
    // woken producer that leaves room must pass the wakeup on, or a
    // second parked producer could sleep through available capacity.
    if (room) not_full_.NotifyOne();
    return true;
  }

  /// Enqueue every element of `batch` under one lock acquisition and
  /// one wakeup.  Blocks while the queue is full; once there is *any*
  /// room the whole batch goes in (the capacity is a backpressure
  /// watermark, not a hard ceiling — a batch may transiently overshoot
  /// it, bounded by one batch).  Returns false iff the queue was closed
  /// before the batch could be enqueued; the batch is consumed either
  /// way.
  bool PushAll(std::vector<T> batch) BMR_EXCLUDES(mu_) {
    if (batch.empty()) return !closed();
    MutexLock lock(mu_);
    while (!closed_ && items_.size() >= capacity_) not_full_.Wait(mu_);
    if (closed_) return false;
    const bool more_than_one = batch.size() > 1;
    for (T& item : batch) items_.push_back(std::move(item));
    const bool room = items_.size() < capacity_;
    lock.Unlock();
    // One wakeup per batch: a single consumer drains everything via
    // PopAll; with several consumers a multi-item batch must wake them
    // all or risk leaving work parked behind a single wakeup.
    if (more_than_one) {
      not_empty_.NotifyAll();
    } else {
      not_empty_.NotifyOne();
    }
    if (room) not_full_.NotifyOne();  // cascade, see Push
    return true;
  }

  /// Non-blocking push; returns false if full or closed.
  bool TryPush(T item) BMR_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    lock.Unlock();
    not_empty_.NotifyOne();
    return true;
  }

  /// Blocks while the queue is empty.  Returns nullopt when the queue is
  /// closed *and* drained — the consumer's termination signal.
  std::optional<T> Pop() BMR_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (!closed_ && items_.empty()) not_empty_.Wait(mu_);
    if (items_.empty()) return std::nullopt;
    const bool was_full = items_.size() >= capacity_;
    T item = std::move(items_.front());
    items_.pop_front();
    const bool now_below = items_.size() < capacity_;
    lock.Unlock();
    if (was_full && now_below) not_full_.NotifyOne();
    return item;
  }

  /// Drain everything currently queued (at most `max_items`) into
  /// `*out` under one lock acquisition, blocking while the queue is
  /// empty and open.  Appends to `*out`.  Returns the number of items
  /// transferred; 0 means closed-and-drained — the consumer's
  /// termination signal.
  size_t PopAll(std::vector<T>* out, size_t max_items = SIZE_MAX)
      BMR_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (!closed_ && items_.empty()) not_empty_.Wait(mu_);
    if (items_.empty()) return 0;
    const bool was_full = items_.size() >= capacity_;
    size_t n = items_.size() < max_items ? items_.size() : max_items;
    for (size_t i = 0; i < n; ++i) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
    }
    const bool now_below = items_.size() < capacity_;
    lock.Unlock();
    // Only producers parked on a genuinely full queue need waking, and
    // a batched pop frees room for many of them at once.
    if (was_full && now_below) not_full_.NotifyAll();
    return n;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() BMR_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (items_.empty()) return std::nullopt;
    const bool was_full = items_.size() >= capacity_;
    T item = std::move(items_.front());
    items_.pop_front();
    const bool now_below = items_.size() < capacity_;
    lock.Unlock();
    if (was_full && now_below) not_full_.NotifyOne();
    return item;
  }

  /// After Close(), pushes fail and pops drain the remaining items.
  void Close() BMR_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    not_empty_.NotifyAll();
    not_full_.NotifyAll();
  }

  bool closed() const BMR_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return closed_;
  }

  size_t size() const BMR_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<T> items_ BMR_GUARDED_BY(mu_);
  bool closed_ BMR_GUARDED_BY(mu_) = false;
};

}  // namespace bmr
