// Blocking MPMC bounded queue.  This is the single FIFO record buffer at
// the heart of the barrier-less shuffle (Section 3.1 of the paper): all
// per-mapper fetch threads push into one queue and one reduce thread
// pops records in arrival order.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace bmr {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is full.  Returns false iff the queue was
  /// closed before the item could be enqueued.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false if full or closed.
  bool TryPush(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while the queue is empty.  Returns nullopt when the queue is
  /// closed *and* drained — the consumer's termination signal.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// After Close(), pushes fail and pops drain the remaining items.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace bmr
