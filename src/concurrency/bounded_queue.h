// Blocking MPMC bounded queue.  This is the single FIFO record buffer at
// the heart of the barrier-less shuffle (Section 3.1 of the paper): all
// per-mapper fetch threads push into one queue and one reduce thread
// pops records in arrival order.
#pragma once

#include <deque>
#include <optional>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace bmr {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is full.  Returns false iff the queue was
  /// closed before the item could be enqueued.
  bool Push(T item) BMR_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (!closed_ && items_.size() >= capacity_) not_full_.Wait(mu_);
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.Unlock();
    not_empty_.NotifyOne();
    return true;
  }

  /// Non-blocking push; returns false if full or closed.
  bool TryPush(T item) BMR_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    lock.Unlock();
    not_empty_.NotifyOne();
    return true;
  }

  /// Blocks while the queue is empty.  Returns nullopt when the queue is
  /// closed *and* drained — the consumer's termination signal.
  std::optional<T> Pop() BMR_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (!closed_ && items_.empty()) not_empty_.Wait(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.Unlock();
    not_full_.NotifyOne();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() BMR_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.Unlock();
    not_full_.NotifyOne();
    return item;
  }

  /// After Close(), pushes fail and pops drain the remaining items.
  void Close() BMR_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    not_empty_.NotifyAll();
    not_full_.NotifyAll();
  }

  bool closed() const BMR_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return closed_;
  }

  size_t size() const BMR_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<T> items_ BMR_GUARDED_BY(mu_);
  bool closed_ BMR_GUARDED_BY(mu_) = false;
};

}  // namespace bmr
