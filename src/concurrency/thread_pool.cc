#include "concurrency/thread_pool.h"

namespace bmr {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_available_.NotifyAll();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_available_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  while (!queue_.empty() || active_ != 0) all_done_.Wait(mu_);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && queue_.empty()) work_available_.Wait(mu_);
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      MutexLock lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) {
        lock.Unlock();
        all_done_.NotifyAll();
      }
    }
  }
}

}  // namespace bmr
