#include "concurrency/thread_pool.h"

namespace bmr {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [&] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace bmr
