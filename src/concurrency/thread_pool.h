// Fixed-size worker pool used by the real execution engine for task
// slots (map slots / reduce slots), and a CountdownLatch for stage
// rendezvous.  The ONLY component outside src/common/ that may own raw
// std::threads (enforced by scripts/lint.sh): every other layer runs
// its concurrency on a ThreadPool.
#pragma once

#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace bmr {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task.  Tasks run in FIFO order across workers.
  void Submit(std::function<void()> task) BMR_EXCLUDES(mu_);

  /// Block until every submitted task has finished executing.
  void Wait() BMR_EXCLUDES(mu_);

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  Mutex mu_;
  CondVar work_available_;
  CondVar all_done_;
  std::deque<std::function<void()>> queue_ BMR_GUARDED_BY(mu_);
  std::vector<std::thread> workers_;  // written only in ctor/dtor
  size_t active_ BMR_GUARDED_BY(mu_) = 0;
  bool shutdown_ BMR_GUARDED_BY(mu_) = false;
};

/// One-shot countdown latch (the explicit "barrier" object of the
/// with-barrier reduce driver).
class CountdownLatch {
 public:
  explicit CountdownLatch(int count) : count_(count) {}

  void CountDown() BMR_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (count_ > 0 && --count_ == 0) {
      lock.Unlock();
      cv_.NotifyAll();
    }
  }

  void Wait() BMR_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (count_ != 0) cv_.Wait(mu_);
  }

  int pending() const BMR_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return count_;
  }

 private:
  mutable Mutex mu_;
  CondVar cv_;
  int count_ BMR_GUARDED_BY(mu_);
};

}  // namespace bmr
