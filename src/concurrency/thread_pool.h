// Fixed-size worker pool used by the real execution engine for task
// slots (map slots / reduce slots), and a CountdownLatch for stage
// rendezvous.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bmr {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task.  Tasks run in FIFO order across workers.
  void Submit(std::function<void()> task);

  /// Block until every submitted task has finished executing.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t active_ = 0;
  bool shutdown_ = false;
};

/// One-shot countdown latch (the explicit "barrier" object of the
/// with-barrier reduce driver).
class CountdownLatch {
 public:
  explicit CountdownLatch(int count) : count_(count) {}

  void CountDown() {
    std::lock_guard<std::mutex> lock(mu_);
    if (count_ > 0 && --count_ == 0) cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return count_ == 0; });
  }

  int pending() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int count_;
};

}  // namespace bmr
