// Token-bucket rate limiter.  The real engine uses it to emulate
// bounded-throughput components (the BerkeleyDB-like KV store's insert
// rate) without a real disk; the cost is charged as virtual time, never
// as a wall-clock sleep, so benches stay fast and deterministic.
#pragma once

#include <algorithm>
#include <cstdint>

namespace bmr {

/// Deterministic virtual-time token bucket: Acquire(n) returns the
/// virtual time at which n tokens become available, advancing internal
/// state.  No blocking, no wall clock.
class VirtualRateLimiter {
 public:
  /// rate: tokens per second; burst: bucket capacity in tokens.
  VirtualRateLimiter(double rate, double burst)
      : rate_(rate), burst_(burst), tokens_(burst), last_time_(0) {}

  /// Request n tokens at virtual time `now`.  Returns the virtual time
  /// at which the request is satisfied (>= now).
  double Acquire(double now, double n) {
    Refill(now);
    if (tokens_ >= n) {
      tokens_ -= n;
      return now;
    }
    double deficit = n - tokens_;
    tokens_ = 0;
    double ready = last_time_ + deficit / rate_;
    last_time_ = ready;
    return ready;
  }

  double rate() const { return rate_; }

 private:
  void Refill(double now) {
    if (now > last_time_) {
      tokens_ = std::min(burst_, tokens_ + (now - last_time_) * rate_);
      last_time_ = now;
    }
  }

  double rate_;
  double burst_;
  double tokens_;
  double last_time_;
};

}  // namespace bmr
