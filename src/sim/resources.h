// Queued resources for the DES: a k-server FIFO slot resource (task
// slots, disk heads) and a processor-sharing resource (a CPU whose
// active jobs share cycles equally).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "sim/event_queue.h"

namespace bmr::sim {

/// k identical servers with a FIFO queue.  A request occupies one server
/// for a fixed service duration, then completes.  Models map/reduce task
/// slots and disk heads.
class SlotResource {
 public:
  SlotResource(Simulation* sim, int num_slots, std::string name = "")
      : sim_(sim), free_slots_(num_slots), name_(std::move(name)) {}

  /// Enqueue a request needing `duration` seconds of a server.
  /// `on_start` fires when a server is acquired, `on_done` when the
  /// service completes.  Either callback may be null.
  void Request(double duration, std::function<void()> on_start,
               std::function<void()> on_done);

  /// Open-ended occupancy: `on_acquired` fires (synchronously if a
  /// server is free) and the holder keeps the server until Release().
  /// Used for tasks whose duration is not known up front (reducers).
  void Acquire(std::function<void()> on_acquired);
  void Release();

  int free_slots() const { return free_slots_; }
  size_t queue_length() const { return waiting_.size(); }
  const std::string& name() const { return name_; }

 private:
  struct Pending {
    double duration;
    std::function<void()> on_start;
    std::function<void()> on_done;
  };

  void StartNext();
  void RunOne(Pending p);

  Simulation* sim_;
  int free_slots_;
  std::deque<Pending> waiting_;
  std::string name_;
};

/// Processor-sharing resource: all active jobs progress at
/// capacity / n_active.  Used to model a node's CPU when reduce work
/// and shuffle fetch threads contend (the I/O-interference effect the
/// paper's pipelined design mitigates).
class ProcessorSharingResource {
 public:
  ProcessorSharingResource(Simulation* sim, double capacity)
      : sim_(sim), capacity_(capacity) {}

  /// Submit a job needing `work` units; on_done fires at completion.
  void Submit(double work, std::function<void()> on_done);

  int active_jobs() const { return static_cast<int>(jobs_.size()); }

 private:
  struct Job {
    uint64_t id;
    double remaining;
    std::function<void()> on_done;
  };

  void Reschedule();
  void AdvanceTo(double now);

  Simulation* sim_;
  double capacity_;
  double last_update_ = 0;
  uint64_t next_id_ = 0;
  uint64_t pending_event_ = 0;
  bool has_pending_event_ = false;
  std::deque<Job> jobs_;
};

}  // namespace bmr::sim
