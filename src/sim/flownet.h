// Max-min fair flow network for the DES.
//
// Models a cluster fabric as: per-node uplink capacity, per-node
// downlink capacity, and an aggregate backbone capacity (uplinks
// summed / oversubscription factor).  Active flows receive max-min
// fair rates via water-filling; on every flow arrival/departure the
// allocation is recomputed and the next completion event rescheduled.
//
// This reproduces the paper's observation that commodity datacenters
// have oversubscribed links, which stretches the shuffle interval —
// exactly the waiting the barrier-less design overlaps with reduce work.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/event_queue.h"

namespace bmr::sim {

struct FlowNetConfig {
  int num_nodes = 16;
  double link_bytes_per_sec = 125e6;   // 1 GbE full duplex per node
  double oversubscription = 1.0;       // backbone = N*link/oversub
  /// Transfers on the same node bypass the network at this rate.
  double loopback_bytes_per_sec = 2e9;
};

/// One simulated bulk transfer.
struct Flow {
  uint64_t id;
  int src;
  int dst;
  double remaining_bytes;
  double rate = 0;  // current max-min allocation, bytes/sec
  std::function<void()> on_complete;
};

class FlowNetwork {
 public:
  FlowNetwork(Simulation* sim, FlowNetConfig config);

  /// Start a transfer of `bytes` from node src to node dst; on_complete
  /// fires at virtual completion time.  Returns the flow id.
  uint64_t StartFlow(int src, int dst, double bytes,
                     std::function<void()> on_complete);

  int active_flows() const { return static_cast<int>(flows_.size()); }

  /// Total bytes delivered so far (all flows, including in-progress).
  double bytes_delivered() const { return bytes_delivered_; }

  const FlowNetConfig& config() const { return config_; }

 private:
  void AdvanceTo(double now);
  void RecomputeRates();
  void Reschedule();
  void CompleteFinished();

  Simulation* sim_;
  FlowNetConfig config_;
  uint64_t next_flow_id_ = 0;
  std::vector<Flow> flows_;
  double last_update_ = 0;
  double bytes_delivered_ = 0;
  uint64_t pending_event_ = 0;
  bool has_pending_event_ = false;
};

}  // namespace bmr::sim
