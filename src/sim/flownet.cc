#include "sim/flownet.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace bmr::sim {

namespace {
// Transfers are physical bytes: remainders below one byte are done.
constexpr double kCompleteBytes = 1.0;
// Smallest virtual-time step the scheduler will take (1 ns), so time
// strictly advances even when a completion lands within the double
// rounding error of Now().
constexpr double kMinStepSeconds = 1e-9;
}  // namespace

FlowNetwork::FlowNetwork(Simulation* sim, FlowNetConfig config)
    : sim_(sim), config_(config) {
  assert(config_.num_nodes > 0);
  assert(config_.link_bytes_per_sec > 0);
  assert(config_.oversubscription >= 1.0);
}

uint64_t FlowNetwork::StartFlow(int src, int dst, double bytes,
                                std::function<void()> on_complete) {
  AdvanceTo(sim_->Now());
  Flow f;
  f.id = next_flow_id_++;
  f.src = src;
  f.dst = dst;
  f.remaining_bytes = std::max(bytes, 0.0);
  f.on_complete = std::move(on_complete);
  flows_.push_back(std::move(f));
  RecomputeRates();
  Reschedule();
  // Zero-byte flows complete via the scheduled event like any other so
  // that callback ordering stays deterministic.
  return flows_.back().id;
}

void FlowNetwork::AdvanceTo(double now) {
  double elapsed = now - last_update_;
  if (elapsed > 0) {
    for (auto& f : flows_) {
      double moved = f.rate * elapsed;
      moved = std::min(moved, f.remaining_bytes);
      f.remaining_bytes -= moved;
      bytes_delivered_ += moved;
    }
  }
  last_update_ = now;
}

void FlowNetwork::RecomputeRates() {
  // Water-filling max-min fairness over three constraint families:
  // uplink per src node, downlink per dst node, shared backbone.
  // Loopback flows (src == dst) only contend for the loopback device.
  const int n = config_.num_nodes;
  std::vector<double> up_cap(n, config_.link_bytes_per_sec);
  std::vector<double> down_cap(n, config_.link_bytes_per_sec);
  std::vector<double> loop_cap(n, config_.loopback_bytes_per_sec);
  double backbone_cap =
      n * config_.link_bytes_per_sec / config_.oversubscription;

  std::vector<Flow*> unfrozen;
  for (auto& f : flows_) {
    f.rate = 0;
    unfrozen.push_back(&f);
  }

  while (!unfrozen.empty()) {
    // Count unfrozen flows per constraint.
    std::vector<int> up_n(n, 0), down_n(n, 0), loop_n(n, 0);
    int backbone_n = 0;
    for (Flow* f : unfrozen) {
      if (f->src == f->dst) {
        loop_n[f->src]++;
      } else {
        up_n[f->src]++;
        down_n[f->dst]++;
        backbone_n++;
      }
    }
    // Tightest constraint determines the increment each unfrozen flow
    // can still receive.
    double bottleneck = std::numeric_limits<double>::max();
    for (int i = 0; i < n; ++i) {
      if (up_n[i] > 0) bottleneck = std::min(bottleneck, up_cap[i] / up_n[i]);
      if (down_n[i] > 0)
        bottleneck = std::min(bottleneck, down_cap[i] / down_n[i]);
      if (loop_n[i] > 0)
        bottleneck = std::min(bottleneck, loop_cap[i] / loop_n[i]);
    }
    if (backbone_n > 0)
      bottleneck = std::min(bottleneck, backbone_cap / backbone_n);
    if (bottleneck == std::numeric_limits<double>::max() || bottleneck <= 0) {
      break;
    }

    // Give every unfrozen flow the increment, charge the constraints,
    // then freeze flows sitting on a saturated constraint.
    for (Flow* f : unfrozen) {
      f->rate += bottleneck;
      if (f->src == f->dst) {
        loop_cap[f->src] -= bottleneck;
      } else {
        up_cap[f->src] -= bottleneck;
        down_cap[f->dst] -= bottleneck;
        backbone_cap -= bottleneck;
      }
    }
    const double eps = 1e-6;
    std::vector<Flow*> next;
    for (Flow* f : unfrozen) {
      bool saturated;
      if (f->src == f->dst) {
        saturated = loop_cap[f->src] <= eps * config_.loopback_bytes_per_sec;
      } else {
        saturated = up_cap[f->src] <= eps * config_.link_bytes_per_sec ||
                    down_cap[f->dst] <= eps * config_.link_bytes_per_sec ||
                    backbone_cap <= eps * config_.link_bytes_per_sec;
      }
      if (!saturated) next.push_back(f);
    }
    if (next.size() == unfrozen.size()) break;  // numeric safety valve
    unfrozen = std::move(next);
  }
}

void FlowNetwork::Reschedule() {
  if (has_pending_event_) {
    sim_->Cancel(pending_event_);
    has_pending_event_ = false;
  }
  if (flows_.empty()) return;

  double next_done = std::numeric_limits<double>::max();
  for (const auto& f : flows_) {
    if (f.remaining_bytes <= kCompleteBytes) {
      next_done = 0;
      continue;
    }
    if (f.rate <= 0) continue;
    next_done = std::min(next_done, f.remaining_bytes / f.rate);
  }
  if (next_done == std::numeric_limits<double>::max()) return;
  if (next_done < 0) next_done = 0;
  // Guard against sub-ulp steps: a remainder that would complete in
  // less than a nanosecond of virtual time is treated as due now plus
  // a fixed epsilon, so Now() strictly advances and the loop terminates.
  if (next_done > 0 && next_done < kMinStepSeconds) {
    next_done = kMinStepSeconds;
  }

  pending_event_ = sim_->ScheduleAfter(next_done, [this] {
    has_pending_event_ = false;
    AdvanceTo(sim_->Now());
    CompleteFinished();
  });
  has_pending_event_ = true;
}

void FlowNetwork::CompleteFinished() {
  std::vector<std::function<void()>> callbacks;
  std::vector<Flow> still_active;
  for (auto& f : flows_) {
    if (f.remaining_bytes <= kCompleteBytes) {
      callbacks.push_back(std::move(f.on_complete));
    } else {
      still_active.push_back(std::move(f));
    }
  }
  flows_ = std::move(still_active);
  RecomputeRates();
  Reschedule();
  for (auto& cb : callbacks) {
    if (cb) cb();
  }
}

}  // namespace bmr::sim
