#include "sim/event_queue.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace bmr::sim {

uint64_t Simulation::ScheduleAt(double time, std::function<void()> fn) {
  assert(time >= now_ - 1e-12 && "cannot schedule into the past");
  if (time < now_) time = now_;
  uint64_t seq = next_seq_++;
  queue_.push(Event{time, seq, std::move(fn)});
  return seq;
}

bool Simulation::IsCancelled(uint64_t seq) {
  auto it = std::find(cancelled_.begin(), cancelled_.end(), seq);
  if (it == cancelled_.end()) return false;
  cancelled_.erase(it);
  return true;
}

bool Simulation::Step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (IsCancelled(ev.seq)) continue;
    now_ = ev.time;
    ++executed_;
#ifdef BMR_SIM_TRACE
    if (executed_ % 1000000 == 0) {
      std::fprintf(stderr, "[sim] executed=%llu now=%f pending=%zu\n",
                   (unsigned long long)executed_, now_, queue_.size());
    }
#endif
    ev.fn();
    return true;
  }
  return false;
}

void Simulation::Run() {
  while (Step()) {
  }
}

void Simulation::RunUntil(double deadline) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (top.time > deadline) break;
    Step();
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace bmr::sim
