#include "sim/resources.h"

#include <cassert>
#include <limits>

namespace bmr::sim {

void SlotResource::Request(double duration, std::function<void()> on_start,
                           std::function<void()> on_done) {
  waiting_.push_back(Pending{duration, std::move(on_start), std::move(on_done)});
  StartNext();
}

void SlotResource::Acquire(std::function<void()> on_acquired) {
  // Model as a zero-duration service whose "completion" never fires;
  // the holder gives the server back via Release().
  waiting_.push_back(Pending{-1.0, std::move(on_acquired), nullptr});
  StartNext();
}

void SlotResource::Release() {
  ++free_slots_;
  StartNext();
}

void SlotResource::StartNext() {
  while (free_slots_ > 0 && !waiting_.empty()) {
    Pending p = std::move(waiting_.front());
    waiting_.pop_front();
    --free_slots_;
    RunOne(std::move(p));
  }
}

void SlotResource::RunOne(Pending p) {
  if (p.on_start) p.on_start();
  if (p.duration < 0) return;  // Acquire(): held until Release()
  auto on_done = std::move(p.on_done);
  sim_->ScheduleAfter(p.duration, [this, on_done = std::move(on_done)] {
    ++free_slots_;
    if (on_done) on_done();
    StartNext();
  });
}

void ProcessorSharingResource::Submit(double work,
                                      std::function<void()> on_done) {
  AdvanceTo(sim_->Now());
  jobs_.push_back(Job{next_id_++, work, std::move(on_done)});
  Reschedule();
}

void ProcessorSharingResource::AdvanceTo(double now) {
  if (jobs_.empty()) {
    last_update_ = now;
    return;
  }
  double elapsed = now - last_update_;
  if (elapsed > 0) {
    double per_job = elapsed * capacity_ / jobs_.size();
    for (auto& j : jobs_) j.remaining -= per_job;
  }
  last_update_ = now;
}

void ProcessorSharingResource::Reschedule() {
  if (has_pending_event_) {
    sim_->Cancel(pending_event_);
    has_pending_event_ = false;
  }
  if (jobs_.empty()) return;

  // Next completion: job with the smallest remaining work.
  double min_remaining = std::numeric_limits<double>::max();
  for (const auto& j : jobs_) min_remaining = std::min(min_remaining, j.remaining);
  if (min_remaining < 0) min_remaining = 0;
  double dt = min_remaining * jobs_.size() / capacity_;

  pending_event_ = sim_->ScheduleAfter(dt, [this] {
    has_pending_event_ = false;
    AdvanceTo(sim_->Now());
    // Complete every job that has (numerically) finished.
    std::deque<Job> still_running;
    std::deque<std::function<void()>> done;
    for (auto& j : jobs_) {
      if (j.remaining <= 1e-9) {
        done.push_back(std::move(j.on_done));
      } else {
        still_running.push_back(std::move(j));
      }
    }
    jobs_ = std::move(still_running);
    Reschedule();
    for (auto& fn : done) {
      if (fn) fn();
    }
  });
  has_pending_event_ = true;
}

}  // namespace bmr::sim
