// Discrete-event simulation core: a virtual clock and an event queue.
// Deterministic: ties in time break by insertion sequence number.
//
// The paper's evaluation ran on a 16-node cluster we do not have; the
// simulator (sim/ + simmr/) reproduces that cluster's scheduling and
// data-movement behaviour in virtual time (see DESIGN.md §2).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace bmr::sim {

class Simulation {
 public:
  Simulation() = default;

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current virtual time in seconds.
  double Now() const { return now_; }

  /// Schedule `fn` to run at absolute virtual time `time` (>= Now()).
  /// Returns an event id usable with Cancel().
  uint64_t ScheduleAt(double time, std::function<void()> fn);

  /// Schedule `fn` to run `delay` seconds from now.
  uint64_t ScheduleAfter(double delay, std::function<void()> fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  /// Lazily cancel a pending event; it will be skipped when popped.
  void Cancel(uint64_t event_id) { cancelled_.push_back(event_id); }

  /// Run until the event queue is empty.
  void Run();

  /// Run until the queue is empty or virtual time would exceed `deadline`.
  void RunUntil(double deadline);

  /// Execute at most one event.  Returns false if the queue was empty.
  bool Step();

  size_t pending_events() const { return queue_.size(); }
  uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    double time;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  bool IsCancelled(uint64_t seq);

  double now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::vector<uint64_t> cancelled_;
};

}  // namespace bmr::sim
