// Synthetic dataset generators, standing in for the paper's inputs
// (Wikipedia text, Last.fm listen logs, random integers, GA populations,
// Black-Scholes parameter sets).  All are deterministic in their seed;
// files are written into the DFS spread across slave nodes so block
// placement resembles a populated cluster.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "mr/engine.h"

namespace bmr::workload {

/// Zipf-distributed words, `words_per_line` per line — WordCount / Grep
/// input with natural-language-like key skew.
struct TextGenOptions {
  uint64_t total_bytes = 1 << 20;
  int num_files = 4;
  uint64_t vocabulary = 20000;
  double zipf_exponent = 1.0;
  int words_per_line = 10;
  uint64_t seed = 1;
};
[[nodiscard]] StatusOr<std::vector<std::string>> GenerateZipfText(
    mr::ClusterContext* cluster, const std::string& prefix,
    const TextGenOptions& options);

/// Uniform random integers, one decimal per line — Sort input.
struct IntGenOptions {
  uint64_t count = 100000;
  int num_files = 4;
  int64_t min_value = 0;
  int64_t max_value = 1000000;  // the kNN experiments' value range
  uint64_t seed = 1;
};
[[nodiscard]] StatusOr<std::vector<std::string>> GenerateRandomInts(
    mr::ClusterContext* cluster, const std::string& prefix,
    const IntGenOptions& options);

/// Last.fm style listen log: "userId trackId" uniform at random
/// (the paper used 50 users and 5000 tracks).
struct ListenGenOptions {
  uint64_t count = 100000;
  int num_files = 4;
  int num_users = 50;
  int num_tracks = 5000;
  uint64_t seed = 1;
};
[[nodiscard]] StatusOr<std::vector<std::string>> GenerateListens(
    mr::ClusterContext* cluster, const std::string& prefix,
    const ListenGenOptions& options);

/// GA population: one genome (decimal uint32) per line.
struct PopulationGenOptions {
  uint64_t population = 100000;
  int num_files = 4;
  uint64_t seed = 1;
};
[[nodiscard]] StatusOr<std::vector<std::string>> GeneratePopulation(
    mr::ClusterContext* cluster, const std::string& prefix,
    const PopulationGenOptions& options);

/// Black-Scholes work units: each line is "seed iterations"; a mapper
/// runs that many Monte Carlo iterations.  `lines_per_file` lines per
/// file, one file per simulated mapper.
struct BlackScholesGenOptions {
  int num_mappers = 4;
  uint64_t iterations_per_mapper = 10000;
  uint64_t seed = 1;
};
[[nodiscard]] StatusOr<std::vector<std::string>> GenerateBlackScholesUnits(
    mr::ClusterContext* cluster, const std::string& prefix,
    const BlackScholesGenOptions& options);

/// kNN: generate a training set (returned inline, to be passed via job
/// config like Hadoop's distributed cache) and experimental-value files.
struct KnnGenOptions {
  int training_size = 500;
  uint64_t experimental_count = 50000;
  int num_files = 4;
  int64_t min_value = 0;
  int64_t max_value = 1000000;
  uint64_t seed = 1;
};
struct KnnData {
  std::vector<int64_t> training;
  std::vector<std::string> experimental_files;
};
[[nodiscard]] StatusOr<KnnData> GenerateKnnData(mr::ClusterContext* cluster,
                                  const std::string& prefix,
                                  const KnnGenOptions& options);

}  // namespace bmr::workload
