#include "workload/generators.h"

#include <algorithm>

#include "common/rng.h"

namespace bmr::workload {

namespace {

/// Pick the client whose node will own the file's first replicas,
/// rotating over slaves so blocks spread across the cluster.
dfs::DfsClient* WriterFor(mr::ClusterContext* cluster, int file_index) {
  std::vector<int> slaves = cluster->spec.SlaveIds();
  int node = slaves[file_index % slaves.size()];
  return cluster->client(node);
}

Status WriteLines(dfs::DfsClient* client, const std::string& path,
                  const std::vector<std::string>& lines) {
  auto writer = client->Create(path);
  if (!writer.ok()) return writer.status();
  ByteBuffer buf;
  for (const auto& line : lines) {
    buf.Append(line.data(), line.size());
    buf.PushByte('\n');
    if (buf.size() >= (1 << 20)) {
      BMR_RETURN_IF_ERROR((*writer)->Append(buf.AsSlice()));
      buf.Clear();
    }
  }
  BMR_RETURN_IF_ERROR((*writer)->Append(buf.AsSlice()));
  return (*writer)->Close();
}

}  // namespace

StatusOr<std::vector<std::string>> GenerateZipfText(
    mr::ClusterContext* cluster, const std::string& prefix,
    const TextGenOptions& options) {
  std::vector<std::string> files;
  uint64_t bytes_per_file =
      std::max<uint64_t>(1, options.total_bytes / options.num_files);
  for (int f = 0; f < options.num_files; ++f) {
    ZipfGenerator zipf(options.vocabulary, options.zipf_exponent,
                       options.seed * 7919 + f);
    std::string path = prefix + "-" + std::to_string(f) + ".txt";
    std::vector<std::string> lines;
    uint64_t written = 0;
    std::string line;
    while (written < bytes_per_file) {
      line.clear();
      for (int w = 0; w < options.words_per_line; ++w) {
        if (w > 0) line += ' ';
        line += 'w';
        line += std::to_string(zipf.Next());
      }
      written += line.size() + 1;
      lines.push_back(line);
    }
    BMR_RETURN_IF_ERROR(WriteLines(WriterFor(cluster, f), path, lines));
    files.push_back(std::move(path));
  }
  return files;
}

StatusOr<std::vector<std::string>> GenerateRandomInts(
    mr::ClusterContext* cluster, const std::string& prefix,
    const IntGenOptions& options) {
  std::vector<std::string> files;
  uint64_t per_file = std::max<uint64_t>(1, options.count / options.num_files);
  for (int f = 0; f < options.num_files; ++f) {
    Pcg32 rng(options.seed * 104729 + f);
    std::string path = prefix + "-" + std::to_string(f) + ".txt";
    std::vector<std::string> lines;
    lines.reserve(per_file);
    for (uint64_t i = 0; i < per_file; ++i) {
      lines.push_back(std::to_string(
          rng.NextInRange(options.min_value, options.max_value)));
    }
    BMR_RETURN_IF_ERROR(WriteLines(WriterFor(cluster, f), path, lines));
    files.push_back(std::move(path));
  }
  return files;
}

StatusOr<std::vector<std::string>> GenerateListens(
    mr::ClusterContext* cluster, const std::string& prefix,
    const ListenGenOptions& options) {
  std::vector<std::string> files;
  uint64_t per_file = std::max<uint64_t>(1, options.count / options.num_files);
  for (int f = 0; f < options.num_files; ++f) {
    Pcg32 rng(options.seed * 31337 + f);
    std::string path = prefix + "-" + std::to_string(f) + ".log";
    std::vector<std::string> lines;
    lines.reserve(per_file);
    for (uint64_t i = 0; i < per_file; ++i) {
      int user = static_cast<int>(rng.NextBounded(options.num_users));
      int track = static_cast<int>(rng.NextBounded(options.num_tracks));
      lines.push_back("u" + std::to_string(user) + " t" +
                      std::to_string(track));
    }
    BMR_RETURN_IF_ERROR(WriteLines(WriterFor(cluster, f), path, lines));
    files.push_back(std::move(path));
  }
  return files;
}

StatusOr<std::vector<std::string>> GeneratePopulation(
    mr::ClusterContext* cluster, const std::string& prefix,
    const PopulationGenOptions& options) {
  std::vector<std::string> files;
  uint64_t per_file =
      std::max<uint64_t>(1, options.population / options.num_files);
  for (int f = 0; f < options.num_files; ++f) {
    Pcg32 rng(options.seed * 7 + f);
    std::string path = prefix + "-" + std::to_string(f) + ".pop";
    std::vector<std::string> lines;
    lines.reserve(per_file);
    for (uint64_t i = 0; i < per_file; ++i) {
      lines.push_back(std::to_string(rng.NextU32()));
    }
    BMR_RETURN_IF_ERROR(WriteLines(WriterFor(cluster, f), path, lines));
    files.push_back(std::move(path));
  }
  return files;
}

StatusOr<std::vector<std::string>> GenerateBlackScholesUnits(
    mr::ClusterContext* cluster, const std::string& prefix,
    const BlackScholesGenOptions& options) {
  std::vector<std::string> files;
  for (int f = 0; f < options.num_mappers; ++f) {
    std::string path = prefix + "-" + std::to_string(f) + ".units";
    std::vector<std::string> lines;
    lines.push_back(std::to_string(options.seed * 65537 + f) + " " +
                    std::to_string(options.iterations_per_mapper));
    BMR_RETURN_IF_ERROR(WriteLines(WriterFor(cluster, f), path, lines));
    files.push_back(std::move(path));
  }
  return files;
}

StatusOr<KnnData> GenerateKnnData(mr::ClusterContext* cluster,
                                  const std::string& prefix,
                                  const KnnGenOptions& options) {
  KnnData data;
  Pcg32 train_rng(options.seed * 999331);
  data.training.reserve(options.training_size);
  for (int i = 0; i < options.training_size; ++i) {
    data.training.push_back(
        train_rng.NextInRange(options.min_value, options.max_value));
  }
  uint64_t per_file =
      std::max<uint64_t>(1, options.experimental_count / options.num_files);
  for (int f = 0; f < options.num_files; ++f) {
    Pcg32 rng(options.seed * 15485863 + f);
    std::string path = prefix + "-exp-" + std::to_string(f) + ".txt";
    std::vector<std::string> lines;
    lines.reserve(per_file);
    for (uint64_t i = 0; i < per_file; ++i) {
      lines.push_back(std::to_string(
          rng.NextInRange(options.min_value, options.max_value)));
    }
    BMR_RETURN_IF_ERROR(WriteLines(WriterFor(cluster, f), path, lines));
    data.experimental_files.push_back(std::move(path));
  }
  return data;
}

}  // namespace bmr::workload
