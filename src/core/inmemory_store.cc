#include "core/inmemory_store.h"

#include <algorithm>

namespace bmr::core {

InMemoryStore::InMemoryStore(const StoreConfig& config)
    : config_(config), map_(MakeOrderedPartialMap(config.key_cmp)) {}

Status InMemoryStore::Get(Slice key, std::string* partial, bool* found) {
  ++stats_.gets;
  auto it = map_.find(key);  // transparent: no key copy
  if (it == map_.end()) {
    *found = false;
    return Status::Ok();
  }
  *partial = it->second;
  *found = true;
  return Status::Ok();
}

Status InMemoryStore::Put(Slice key, Slice partial) {
  ++stats_.puts;
  // Transparent lower_bound: the owning key string is materialized only
  // on a genuine insert, never on an update.
  auto it = map_.lower_bound(key);
  bool exists = it != map_.end() && !map_.key_comp()(key, it->first);
  if (!exists) {
    it = map_.emplace_hint(it, key.ToString(), std::string());
    memory_bytes_ += EntryFootprint(key.size(), partial.size());
  } else {
    // Replace: adjust for the value-size delta only.
    memory_bytes_ += partial.size();
    memory_bytes_ -= it->second.size();
  }
  it->second.assign(partial.data(), partial.size());
  stats_.peak_memory_bytes = std::max(stats_.peak_memory_bytes, memory_bytes_);
  if (config_.heap_limit_bytes != 0 &&
      memory_bytes_ > config_.heap_limit_bytes) {
    // The JVM analogue throws OutOfMemoryError and the job is killed
    // (Fig. 5a).  Reported as a status so the engine can record the
    // failure time.
    return Status::ResourceExhausted(
        "partial results exceed reducer heap (" +
        std::to_string(memory_bytes_) + " > " +
        std::to_string(config_.heap_limit_bytes) + " bytes)");
  }
  return Status::Ok();
}

Status InMemoryStore::ForEachMerged(const MergeFn& merge, const EmitFn& fn) {
  BMR_RETURN_IF_ERROR(ForEachCurrent(merge, fn));
  map_.clear();
  memory_bytes_ = 0;
  return Status::Ok();
}

Status InMemoryStore::ForEachCurrent(const MergeFn& merge,
                                     const EmitFn& fn) const {
  (void)merge;  // a single in-memory fragment per key: nothing to merge
  for (const auto& [key, partial] : map_) {
    fn(Slice(key), Slice(partial));
  }
  return Status::Ok();
}

}  // namespace bmr::core
