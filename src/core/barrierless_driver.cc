#include "core/barrierless_driver.h"

#include "obs/metric_names.h"
#include "obs/trace.h"

namespace bmr::core {

BarrierlessDriver::BarrierlessDriver(IncrementalReducer* reducer,
                                     const StoreConfig& store_config,
                                     const Config& job_config)
    : reducer_(reducer), tracer_(store_config.tracer) {
  reducer_->Setup(job_config);
  if (reducer_->UsesStore()) {
    store_ = CreatePartialStore(store_config);
  }
}

Status BarrierlessDriver::Consume(Slice key, Slice value,
                                  mr::ReduceEmitter* out) {
  if (finalized_) {
    return Status::FailedPrecondition("Consume after Finalize");
  }
  // Sampled (1 in 16) per-op latency: the Get/Update/Put cycle runs
  // per record, so timing every op would distort the path it measures.
  obs::Tracer* sampled =
      (tracer_ != nullptr && (records_consumed_ & 15) == 0) ? tracer_
                                                            : nullptr;
  ++records_consumed_;
  if (!store_) {
    // Identity / cross-key reducers: no per-key partial results.
    obs::LatencyTimer invoke(sampled, obs::kHReduceInvokeUs);
    reducer_->Update(key, value, /*partial=*/nullptr, out);
    return Status::Ok();
  }
  bool found = false;
  {
    obs::LatencyTimer get(sampled, obs::kHStoreGetUs);
    BMR_RETURN_IF_ERROR(store_->Get(key, &partial_scratch_, &found));
  }
  if (!found) {
    partial_scratch_ = reducer_->InitPartial(key);
  }
  {
    obs::LatencyTimer invoke(sampled, obs::kHReduceInvokeUs);
    reducer_->Update(key, value, &partial_scratch_, out);
  }
  obs::LatencyTimer put(sampled, obs::kHStorePutUs);
  return store_->Put(key, Slice(partial_scratch_));
}

Status BarrierlessDriver::Finalize(mr::ReduceEmitter* out) {
  return FinalizeWithSnapshot(out, nullptr);
}

Status BarrierlessDriver::PreloadPartial(Slice key, Slice partial) {
  if (finalized_) {
    return Status::FailedPrecondition("PreloadPartial after Finalize");
  }
  if (records_consumed_ > 0) {
    return Status::FailedPrecondition(
        "PreloadPartial must precede the first Consume");
  }
  if (!store_) return Status::Ok();  // stateless reducers: nothing to seed
  return store_->Put(key, partial);
}

Status BarrierlessDriver::EmitSnapshot(mr::ReduceEmitter* out) {
  if (finalized_) return Status::FailedPrecondition("snapshot after Finalize");
  if (!store_) return Status::Ok();  // stateless reducers emit eagerly
  IncrementalReducer* reducer = reducer_;
  return store_->ForEachCurrent(
      [reducer](Slice key, Slice a, Slice b) {
        return reducer->MergePartials(key, a, b);
      },
      [reducer, out](Slice key, Slice partial) {
        reducer->Finish(key, partial, out);
      });
}

Status BarrierlessDriver::FinalizeWithSnapshot(
    mr::ReduceEmitter* out, std::vector<mr::Record>* snapshot) {
  if (finalized_) return Status::Ok();
  finalized_ = true;
  if (store_) {
    IncrementalReducer* reducer = reducer_;
    BMR_RETURN_IF_ERROR(store_->ForEachMerged(
        [reducer](Slice key, Slice a, Slice b) {
          return reducer->MergePartials(key, a, b);
        },
        [reducer, out, snapshot](Slice key, Slice partial) {
          if (snapshot != nullptr) {
            snapshot->emplace_back(key.ToString(), partial.ToString());
          }
          reducer->Finish(key, partial, out);
        }));
  }
  reducer_->Flush(out);
  return Status::Ok();
}

}  // namespace bmr::core
