#include "core/scratch_dir.h"

#include <atomic>
#include <cstdlib>

namespace bmr::core {

namespace {
std::atomic<uint64_t> g_scratch_counter{0};
}

ScratchDir::ScratchDir(const std::string& base) {
  namespace fs = std::filesystem;
  fs::path root = base.empty() ? fs::temp_directory_path() : fs::path(base);
  // Unique name from pid + global counter; no randomness needed.
  uint64_t n = g_scratch_counter.fetch_add(1);
  path_ = (root / ("bmr_scratch_" + std::to_string(::getpid()) + "_" +
                   std::to_string(n)))
              .string();
  fs::create_directories(path_);
}

ScratchDir::~ScratchDir() {
  std::error_code ec;  // best-effort cleanup; ignore failures
  std::filesystem::remove_all(path_, ec);
}

}  // namespace bmr::core
