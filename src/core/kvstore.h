// Disk-spilling key/value store backend (Section 5.2).
//
// Stands in for BerkeleyDB Java Edition: a bounded LRU cache in front
// of an append-only on-disk log, with an in-memory index (BDB keeps its
// B-tree inner nodes resident the same way).  Every reduce record costs
// a read-modify-update cycle through this store; the paper measured
// ~30k inserts/s, far below the record rate of a wordcount reducer,
// which is why this scheme loses in Figs. 9–10.  We reproduce the
// mechanism with real disk I/O and charge the calibrated per-op cost as
// virtual time (StoreStats::charged_seconds) so the simulator can
// replay the throughput collapse at paper scale.
#pragma once

#include <cstdio>
#include <list>
#include <map>
#include <string>
#include <unordered_map>

#include "core/ordered_map.h"
#include "core/partial_store.h"
#include "core/scratch_dir.h"

namespace bmr::core {

class KvStoreBackend final : public PartialStore {
 public:
  explicit KvStoreBackend(const StoreConfig& config);
  ~KvStoreBackend() override;

  [[nodiscard]] Status Get(Slice key, std::string* partial,
                           bool* found) override;
  [[nodiscard]] Status Put(Slice key, Slice partial) override;
  uint64_t NumKeys() const override { return index_.size(); }
  uint64_t MemoryBytes() const override { return cache_bytes_; }
  [[nodiscard]] Status ForEachMerged(const MergeFn& merge, const EmitFn& fn) override;
  [[nodiscard]] Status ForEachCurrent(const MergeFn& merge,
                        const EmitFn& fn) const override;
  const StoreStats& stats() const override { return stats_; }

  uint64_t cache_hits() const { return cache_hits_; }
  uint64_t cache_misses() const { return cache_misses_; }
  uint64_t evictions() const { return evictions_; }

 private:
  struct DiskLocation {
    uint64_t offset = 0;
    uint32_t length = 0;
    bool on_disk = false;  // false => value only exists in cache
  };
  struct CacheEntry {
    std::string key;
    std::string value;
    bool dirty = false;
  };
  using LruList = std::list<CacheEntry>;

  [[nodiscard]] Status ScanAll(const EmitFn& fn);
  void ChargeOp();
  void Touch(LruList::iterator it);
  [[nodiscard]] Status EvictIfNeeded();
  [[nodiscard]] Status WriteToLog(Slice key, Slice value, DiskLocation* loc);
  [[nodiscard]] Status ReadFromLog(const DiskLocation& loc, std::string* value);
  /// Ok iff the backing log file opened; otherwise an explanatory error.
  [[nodiscard]] Status CheckLog() const;

  StoreConfig config_;
  ScratchDir scratch_;
  std::string log_path_;
  std::FILE* log_ = nullptr;
  uint64_t log_tail_ = 0;

  LruList lru_;  // front = most recent
  std::unordered_map<std::string, LruList::iterator, SliceHash, SliceEq>
      cache_index_;
  uint64_t cache_bytes_ = 0;

  /// Ordered key directory: key → latest on-disk location (if any).
  /// The ordering gives the final merged iteration for free (BDB's
  /// B-tree keeps keys sorted the same way).
  std::map<std::string, DiskLocation, KeyLess> index_;

  uint64_t cache_hits_ = 0;
  uint64_t cache_misses_ = 0;
  uint64_t evictions_ = 0;
  StoreStats stats_;
};

}  // namespace bmr::core
