// The barrier-less Reduce programming model (Sections 3–4 of the paper).
//
// In barrier-less MapReduce the Reduce function is invoked with a
// *single record* as it arrives off the shuffle, not with a key and all
// of its values.  Applications therefore keep a partial result per key
// and fold each arriving value into it; final output is emitted once
// all records have been consumed.  The paper has the programmer write a
// custom run() doing exactly this with a TreeMap; here the fold is
// factored into an interface so the framework can own the partial-result
// storage — which is what makes the pluggable overflow management of
// Section 5 (spill-and-merge, disk-spilling KV store) possible.
//
// The seven Reduce classes of Table 1 map onto it as:
//   Identity                  — UsesStore()=false, Update emits directly
//   Sorting                   — partial = duplicate count, O(records) keys
//   Aggregation               — partial = running aggregate, O(keys)
//   Selection                 — partial = top-k list, O(k·keys)
//   Post-reduction processing — partial = per-key set, O(records)
//   Cross-key operations      — UsesStore()=false, window kept in the
//                               reducer object, flushed in Flush()
//   Single-reducer aggregation— one fixed key, O(1)
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "common/bytes.h"
#include "common/config.h"
#include "mr/emitter.h"

namespace bmr::core {

class IncrementalReducer {
 public:
  virtual ~IncrementalReducer() = default;

  /// Called once before the first record.
  virtual void Setup(const Config& config) { (void)config; }

  /// Whether the framework should keep a per-key partial result in the
  /// configured PartialStore.  Identity and cross-key reducers return
  /// false and manage (none or windowed) state themselves.
  virtual bool UsesStore() const { return true; }

  /// Initial partial result for a key seen for the first time.  The
  /// paper's WordCount inserts (key, 0) before the first reduce call.
  virtual std::string InitPartial(Slice key) {
    (void)key;
    return std::string();
  }

  /// Fold one arriving value into the key's partial result.  `partial`
  /// is the current value (initially InitPartial) and is updated in
  /// place.  When UsesStore() is false, `partial` is nullptr and the
  /// implementation may emit output directly.
  virtual void Update(Slice key, Slice value, std::string* partial,
                      mr::ReduceEmitter* out) = 0;

  /// Merge two partial results for the same key that were accumulated
  /// independently (e.g. in different spill files).  Must be associative;
  /// the engine may call it in any grouping.  This plays the role the
  /// paper assigns to the combiner-like merge function of the
  /// spill-and-merge scheme (§5.1).
  virtual std::string MergePartials(Slice key, Slice a, Slice b) {
    (void)key;
    (void)a;
    // Default: last write wins.  Correct only for reducers that never
    // rely on spilled fragments, i.e. UsesStore()==false.
    return b.ToString();
  }

  /// Emit the final output for one key once all values are folded in.
  virtual void Finish(Slice key, Slice partial, mr::ReduceEmitter* out) {
    out->Emit(key, partial);
  }

  /// Called once after every key has been finished — cross-key windows
  /// and single-reducer aggregates emit their remainder here.
  virtual void Flush(mr::ReduceEmitter* out) { (void)out; }
};

using IncrementalReducerFactory =
    std::function<std::unique_ptr<IncrementalReducer>()>;

}  // namespace bmr::core
