// In-memory partial-result store: the ordered-map (Java TreeMap)
// baseline of Section 3.2.  Fast, but fails with RESOURCE_EXHAUSTED
// when the estimated footprint crosses the heap cap — reproducing the
// Fig. 5(a) out-of-memory job kill.
#pragma once

#include <map>

#include "core/ordered_map.h"
#include "core/partial_store.h"

namespace bmr::core {

class InMemoryStore final : public PartialStore {
 public:
  explicit InMemoryStore(const StoreConfig& config);

  [[nodiscard]] Status Get(Slice key, std::string* partial,
                           bool* found) override;
  [[nodiscard]] Status Put(Slice key, Slice partial) override;
  uint64_t NumKeys() const override { return map_.size(); }
  uint64_t MemoryBytes() const override { return memory_bytes_; }
  [[nodiscard]] Status ForEachMerged(const MergeFn& merge, const EmitFn& fn) override;
  [[nodiscard]] Status ForEachCurrent(const MergeFn& merge,
                        const EmitFn& fn) const override;
  const StoreStats& stats() const override { return stats_; }

 private:
  StoreConfig config_;
  OrderedPartialMap map_;
  uint64_t memory_bytes_ = 0;
  StoreStats stats_;
};

}  // namespace bmr::core
