// RAII temp directory for spill files and KV store logs.
#pragma once

#include <filesystem>
#include <string>


namespace bmr::core {

/// Creates a unique directory on construction (under `base`, or the
/// system temp dir when base is empty) and removes it recursively on
/// destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& base = "");
  ~ScratchDir();

  ScratchDir(const ScratchDir&) = delete;
  ScratchDir& operator=(const ScratchDir&) = delete;

  const std::string& path() const { return path_; }
  std::string FilePath(const std::string& name) const {
    return path_ + "/" + name;
  }

 private:
  std::string path_;
};

}  // namespace bmr::core
