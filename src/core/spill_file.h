// Sorted on-disk runs of (key, partial) pairs for the spill-and-merge
// scheme.  Format: repeated [varint key_len][key][varint val_len][val].
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "common/bytes.h"
#include "common/status.h"

namespace bmr::faults {
class FaultInjector;
}

namespace bmr::core {

class SpillFileWriter {
 public:
  explicit SpillFileWriter(std::string path,
                           faults::FaultInjector* injector = nullptr);
  ~SpillFileWriter();

  SpillFileWriter(const SpillFileWriter&) = delete;
  SpillFileWriter& operator=(const SpillFileWriter&) = delete;

  [[nodiscard]] Status Open();
  [[nodiscard]] Status Append(Slice key, Slice value);
  [[nodiscard]] Status Close();

  uint64_t bytes_written() const { return bytes_written_; }
  uint64_t records_written() const { return records_written_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  faults::FaultInjector* injector_;
  std::FILE* file_ = nullptr;
  uint64_t bytes_written_ = 0;
  uint64_t records_written_ = 0;
};

/// Sequential reader with an internal buffer; one record look-ahead so
/// it can act as a merge head.
class SpillFileReader {
 public:
  explicit SpillFileReader(std::string path,
                           faults::FaultInjector* injector = nullptr);
  ~SpillFileReader();

  SpillFileReader(const SpillFileReader&) = delete;
  SpillFileReader& operator=(const SpillFileReader&) = delete;

  [[nodiscard]] Status Open();

  /// Read the next record.  Returns OK+true via *has_record, or
  /// OK+false at end of file, or an error on corruption.
  [[nodiscard]] Status Next(std::string* key, std::string* value, bool* has_record);

  uint64_t bytes_read() const { return bytes_read_; }

 private:
  [[nodiscard]] Status FillBuffer(size_t need);
  [[nodiscard]] Status ReadVarint(uint64_t* v);
  [[nodiscard]] Status ReadBytes(std::string* out, size_t n);

  std::string path_;
  faults::FaultInjector* injector_;
  std::FILE* file_ = nullptr;
  std::string buffer_;
  size_t buffer_pos_ = 0;
  bool eof_ = false;
  uint64_t bytes_read_ = 0;
};

}  // namespace bmr::core
