// The barrier-less run() driver (Section 3.1/3.2).
//
// Plays the role of the custom run() function the paper has the
// programmer write: for each record popped off the shuffle FIFO it
// fetches the key's partial result (inserting InitPartial on first
// sight), invokes the single-record Reduce, and writes the updated
// partial back.  After the last record it emits all finished keys in
// key order — merging spilled fragments — and flushes reducer-internal
// state.
#pragma once

#include <memory>
#include <vector>

#include "common/config.h"
#include "core/incremental.h"
#include "core/partial_store.h"
#include "mr/emitter.h"
#include "mr/types.h"

namespace bmr::core {

class BarrierlessDriver {
 public:
  /// The driver does not own the reducer; it owns the store it creates.
  BarrierlessDriver(IncrementalReducer* reducer, const StoreConfig& store_config,
                    const Config& job_config);

  /// Feed one shuffled record, in arrival order.  RESOURCE_EXHAUSTED
  /// means the partial results overflowed the heap (job death, Fig 5a).
  [[nodiscard]] Status Consume(Slice key, Slice value, mr::ReduceEmitter* out);

  /// Called once after the last record: ordered final emission with
  /// fragment merging, then reducer Flush.
  [[nodiscard]] Status Finalize(mr::ReduceEmitter* out);

  /// Seed the store with a partial result captured by a previous run
  /// (memoization, §8).  Must be called before the first Consume; the
  /// value is installed verbatim, no Update is invoked.  A later value
  /// for the same key folds in through the store's normal merge path.
  [[nodiscard]] Status PreloadPartial(Slice key, Slice partial);

  /// Like Finalize, but additionally appends every (key, merged
  /// partial) — *before* Finish transforms it — to `snapshot`, so a
  /// future job can PreloadPartial from it.
  [[nodiscard]] Status FinalizeWithSnapshot(mr::ReduceEmitter* out,
                              std::vector<mr::Record>* snapshot);

  /// Progressive (online) results: emit the finished form of every key
  /// folded *so far*, without disturbing the store — callable any
  /// number of times while records keep arriving.  This is the
  /// online-processing capability the barrier fundamentally prevents.
  [[nodiscard]] Status EmitSnapshot(mr::ReduceEmitter* out);

  /// Estimated partial-result memory right now (Fig. 5 heap curves).
  uint64_t MemoryBytes() const { return store_ ? store_->MemoryBytes() : 0; }

  uint64_t records_consumed() const { return records_consumed_; }

  const PartialStore* store() const { return store_.get(); }
  PartialStore* mutable_store() { return store_.get(); }

 private:
  IncrementalReducer* reducer_;
  std::unique_ptr<PartialStore> store_;  // null if reducer skips the store
  obs::Tracer* tracer_ = nullptr;        // from StoreConfig; not owned
  uint64_t records_consumed_ = 0;
  bool finalized_ = false;
  std::string partial_scratch_;
};

}  // namespace bmr::core
