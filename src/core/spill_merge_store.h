// Disk spill-and-merge partial-result store (Section 5.1).
//
// Partial results accumulate in an ordered memtable; when the estimated
// footprint reaches the threshold, the whole memtable is written — in
// key order — to a new local spill file and memory is released.  A key
// may therefore have fragments in several spill files plus the live
// memtable; the final pass k-way merges all runs and folds fragments of
// equal keys together with the application's merge function (which the
// paper notes is usually the same as its combiner).
#pragma once

#include <memory>
#include <vector>

#include "core/ordered_map.h"
#include "core/partial_store.h"
#include "core/scratch_dir.h"

namespace bmr::core {

class SpillMergeStore final : public PartialStore {
 public:
  explicit SpillMergeStore(const StoreConfig& config);

  [[nodiscard]] Status Get(Slice key, std::string* partial,
                           bool* found) override;
  [[nodiscard]] Status Put(Slice key, Slice partial) override;
  uint64_t NumKeys() const override;
  uint64_t MemoryBytes() const override { return memory_bytes_; }
  [[nodiscard]] Status ForEachMerged(const MergeFn& merge, const EmitFn& fn) override;
  [[nodiscard]] Status ForEachCurrent(const MergeFn& merge,
                        const EmitFn& fn) const override;
  const StoreStats& stats() const override { return stats_; }

  /// Exposed for tests/benches: force a spill regardless of threshold.
  [[nodiscard]] Status SpillNow();

  size_t num_spill_files() const { return spill_paths_.size(); }

 private:
  /// Shared k-way merge over spill files + memtable; leaves all state
  /// intact (callers clear separately when draining).
  [[nodiscard]] Status MergeScan(const MergeFn& merge, const EmitFn& fn);

  StoreConfig config_;
  ScratchDir scratch_;
  OrderedPartialMap memtable_;
  uint64_t memory_bytes_ = 0;
  /// Upper bound on distinct keys (over-counts keys split across
  /// spills); exact count requires the merge pass.
  uint64_t approx_keys_ = 0;
  uint64_t memtable_keys_ = 0;
  std::vector<std::string> spill_paths_;
  StoreStats stats_;
};

}  // namespace bmr::core
