// Ordered (key → partial) map with a pluggable comparator — the role
// the paper's Java TreeMap (red-black tree) plays.  std::map is a
// red-black tree in every mainstream stdlib, so the asymptotics match
// the paper's analysis (O(log n) insert vs the framework's merge sort,
// which is what makes barrier-less Sort slightly lose in Fig. 6(a)).
//
// KeyLess is transparent: lookups take Slice directly (std::string
// converts implicitly), so the per-op key.ToString() heap allocation is
// gone from the store hot paths — only an actual *insert* materializes
// an owning std::string key.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <string_view>

#include "mr/types.h"

namespace bmr::core {

struct KeyLess {
  mr::KeyCompareFn cmp;  // null => bytewise

  using is_transparent = void;

  bool operator()(Slice a, Slice b) const {
    if (!cmp) return a.view() < b.view();
    return cmp(a, b) < 0;
  }
};

/// Transparent hash/equality for unordered containers keyed by
/// std::string: C++20 heterogeneous lookup lets the KV cache index be
/// probed with a Slice directly, no per-op key materialization.
struct SliceHash {
  using is_transparent = void;
  size_t operator()(Slice s) const {
    return std::hash<std::string_view>{}(s.view());
  }
};

struct SliceEq {
  using is_transparent = void;
  bool operator()(Slice a, Slice b) const { return a.view() == b.view(); }
};

using OrderedPartialMap = std::map<std::string, std::string, KeyLess>;

inline OrderedPartialMap MakeOrderedPartialMap(const mr::KeyCompareFn& cmp) {
  return OrderedPartialMap(KeyLess{cmp});
}

}  // namespace bmr::core
