// Ordered (key → partial) map with a pluggable comparator — the role
// the paper's Java TreeMap (red-black tree) plays.  std::map is a
// red-black tree in every mainstream stdlib, so the asymptotics match
// the paper's analysis (O(log n) insert vs the framework's merge sort,
// which is what makes barrier-less Sort slightly lose in Fig. 6(a)).
#pragma once

#include <map>
#include <string>

#include "mr/types.h"

namespace bmr::core {

struct KeyLess {
  mr::KeyCompareFn cmp;  // null => bytewise

  bool operator()(const std::string& a, const std::string& b) const {
    if (!cmp) return a < b;
    return cmp(Slice(a), Slice(b)) < 0;
  }
};

using OrderedPartialMap = std::map<std::string, std::string, KeyLess>;

inline OrderedPartialMap MakeOrderedPartialMap(const mr::KeyCompareFn& cmp) {
  return OrderedPartialMap(KeyLess{cmp});
}

}  // namespace bmr::core
