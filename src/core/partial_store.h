// Partial-result storage for barrier-less reducers (Section 5).
//
// Memory complexity of partial results ranges from O(1) to O(records)
// depending on the Reduce class (Table 1); for large inputs the reducer
// heap overflows, so storage is pluggable:
//
//   kInMemory   — ordered map, fails with RESOURCE_EXHAUSTED at the heap
//                 cap (reproduces the Fig. 5(a) OOM).
//   kSpillMerge — §5.1: on reaching a threshold, partial results are
//                 sorted and moved to a local spill file; a final k-way
//                 merge combines per-key fragments with the app's merge
//                 function.
//   kKvStore    — §5.2: a BerkeleyDB-like disk-spilling key/value store
//                 with an LRU cache; every record costs a read-modify-
//                 update cycle.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/bytes.h"
#include "common/status.h"
#include "mr/types.h"

namespace bmr::faults {
class FaultInjector;  // faults/fault_injector.h; stores only carry it
}

namespace bmr::obs {
class Tracer;  // obs/trace.h; stores only carry it
}

namespace bmr::core {

enum class StoreType { kInMemory, kSpillMerge, kKvStore };

const char* StoreTypeName(StoreType type);

struct StoreConfig {
  StoreType type = StoreType::kInMemory;
  /// Hard heap cap for partial results; exceeded => RESOURCE_EXHAUSTED
  /// (the job is killed, as in Fig. 5(a)).  0 = unlimited.
  uint64_t heap_limit_bytes = 0;
  /// kSpillMerge: spill to disk when estimated memory reaches this.
  uint64_t spill_threshold_bytes = 240ull << 20;  // paper's 240 MB
  /// Directory for spill files / KV store logs ("" = std temp dir).
  std::string scratch_dir;
  /// kKvStore: LRU cache capacity in bytes.
  uint64_t kv_cache_bytes = 64ull << 20;
  /// kKvStore: modeled sustained ops/sec of the store (the paper
  /// measured ~30k inserts/sec for BerkeleyDB JE).  Used for virtual-
  /// time charging, not wall-clock throttling.
  double kv_ops_per_sec = 30000.0;
  /// Modeled local-disk sequential bandwidth for spill I/O charging.
  double disk_bytes_per_sec = 80e6;
  /// Key ordering used for final emission and spill sorting.
  mr::KeyCompareFn key_cmp;  // defaults to bytewise when null
  /// Optional fault injector consulted on every spill-file write/read
  /// (chaos testing).  Not owned; null = no injection.
  faults::FaultInjector* fault_injector = nullptr;
  /// Optional tracer: store.spill spans plus sampled Get/Put latency
  /// (recorded by the BarrierlessDriver).  Not owned; null = off.
  obs::Tracer* tracer = nullptr;
};

/// Estimated in-memory footprint of one (key, partial) entry.  Mirrors
/// the JVM-era accounting the paper's heap plots reflect: payload plus
/// a per-entry object/tree-node overhead.
inline uint64_t EntryFootprint(size_t key_size, size_t value_size) {
  constexpr uint64_t kPerEntryOverhead = 64;  // tree node + object headers
  return key_size + value_size + kPerEntryOverhead;
}

/// Cumulative statistics a store exposes for benches and the simulator's
/// cost calibration.
struct StoreStats {
  uint64_t gets = 0;
  uint64_t puts = 0;
  uint64_t spills = 0;           // spill-file flushes
  uint64_t spilled_bytes = 0;
  uint64_t disk_reads = 0;       // KV store cache misses
  uint64_t disk_read_bytes = 0;
  uint64_t peak_memory_bytes = 0;
  /// Virtual seconds charged for modeled device costs (KV store ops,
  /// spill I/O).  Added to the reducer's virtual runtime by simmr.
  double charged_seconds = 0;
};

/// Per-key partial-result storage.  Single-threaded: each reduce task
/// owns exactly one store (matching one store per Reducer in the paper).
class PartialStore {
 public:
  virtual ~PartialStore() = default;

  /// Fetch the current partial result for `key`.  `*found` reports
  /// presence; the Status carries I/O errors (a disk-backed store may
  /// have to page the value in, or evict a dirty victim to make room —
  /// a failed victim write-back is data loss and must be loud, not
  /// swallowed).  On error `*found` is false and `*partial` untouched.
  [[nodiscard]] virtual Status Get(Slice key, std::string* partial,
                                   bool* found) = 0;

  /// Insert or replace the partial result for `key`.  May return
  /// RESOURCE_EXHAUSTED (in-memory store at its heap cap) or I/O errors.
  [[nodiscard]] virtual Status Put(Slice key, Slice partial) = 0;

  /// Number of keys currently tracked (including spilled ones).
  virtual uint64_t NumKeys() const = 0;

  /// Estimated bytes of partial results currently held in memory.
  virtual uint64_t MemoryBytes() const = 0;

  /// Iterate every key in key order with its fully merged partial
  /// result, invoking `fn(key, partial)`.  `merge` combines fragments
  /// of the same key from different spills.  Destructive: the store is
  /// drained.  Called exactly once, after the last Update.
  using MergeFn = std::function<std::string(Slice key, Slice a, Slice b)>;
  using EmitFn = std::function<void(Slice key, Slice partial)>;
  [[nodiscard]] virtual Status ForEachMerged(const MergeFn& merge, const EmitFn& fn) = 0;

  /// Non-destructive variant: iterate the *current* merged partials in
  /// key order without draining the store, so folding can continue
  /// afterwards.  Powers progressive (online) result snapshots.
  [[nodiscard]] virtual Status ForEachCurrent(const MergeFn& merge,
                                const EmitFn& fn) const = 0;

  virtual const StoreStats& stats() const = 0;
};

/// Factory over StoreConfig.
std::unique_ptr<PartialStore> CreatePartialStore(const StoreConfig& config);

}  // namespace bmr::core
