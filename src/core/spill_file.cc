#include "core/spill_file.h"

#include "common/serde.h"
#include "faults/fault_injector.h"

namespace bmr::core {

namespace {
constexpr size_t kIoBufferBytes = 64 << 10;
}

SpillFileWriter::SpillFileWriter(std::string path,
                                 faults::FaultInjector* injector)
    : path_(std::move(path)), injector_(injector) {}

SpillFileWriter::~SpillFileWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status SpillFileWriter::Open() {
  file_ = std::fopen(path_.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::Internal("cannot open spill file for write: " + path_);
  }
  return Status::Ok();
}

Status SpillFileWriter::Append(Slice key, Slice value) {
  if (injector_ != nullptr) {
    BMR_RETURN_IF_ERROR(injector_->OnSpillWrite(path_));
  }
  ByteBuffer buf(key.size() + value.size() + 20);
  Encoder enc(&buf);
  enc.PutString(key);
  enc.PutString(value);
  if (std::fwrite(buf.data(), 1, buf.size(), file_) != buf.size()) {
    return Status::Internal("short write to spill file: " + path_);
  }
  bytes_written_ += buf.size();
  ++records_written_;
  return Status::Ok();
}

Status SpillFileWriter::Close() {
  if (file_ == nullptr) return Status::Ok();
  int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return Status::Internal("close failed: " + path_);
  return Status::Ok();
}

SpillFileReader::SpillFileReader(std::string path,
                                 faults::FaultInjector* injector)
    : path_(std::move(path)), injector_(injector) {}

SpillFileReader::~SpillFileReader() {
  if (file_ != nullptr) std::fclose(file_);
}

Status SpillFileReader::Open() {
  file_ = std::fopen(path_.c_str(), "rb");
  if (file_ == nullptr) {
    return Status::Internal("cannot open spill file for read: " + path_);
  }
  return Status::Ok();
}

Status SpillFileReader::FillBuffer(size_t need) {
  // Compact consumed prefix, then top up to at least `need` available.
  if (buffer_pos_ > 0) {
    buffer_.erase(0, buffer_pos_);
    buffer_pos_ = 0;
  }
  while (buffer_.size() < need && !eof_) {
    size_t old = buffer_.size();
    size_t chunk = std::max(need - old, kIoBufferBytes);
    buffer_.resize(old + chunk);
    size_t n = std::fread(buffer_.data() + old, 1, chunk, file_);
    buffer_.resize(old + n);
    bytes_read_ += n;
    if (n < chunk) eof_ = true;
  }
  if (buffer_.size() < need) {
    return Status::DataLoss("truncated spill file: " + path_);
  }
  return Status::Ok();
}

Status SpillFileReader::ReadVarint(uint64_t* v) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63; shift += 7) {
    if (buffer_pos_ >= buffer_.size()) {
      BMR_RETURN_IF_ERROR(FillBuffer(1));
    }
    uint8_t byte = static_cast<uint8_t>(buffer_[buffer_pos_++]);
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if (!(byte & 0x80)) {
      *v = result;
      return Status::Ok();
    }
  }
  return Status::DataLoss("overlong varint in spill file");
}

Status SpillFileReader::ReadBytes(std::string* out, size_t n) {
  if (buffer_.size() - buffer_pos_ < n) {
    size_t deficit = n - (buffer_.size() - buffer_pos_);
    BMR_RETURN_IF_ERROR(FillBuffer(buffer_.size() - buffer_pos_ + deficit));
  }
  out->assign(buffer_.data() + buffer_pos_, n);
  buffer_pos_ += n;
  return Status::Ok();
}

Status SpillFileReader::Next(std::string* key, std::string* value,
                             bool* has_record) {
  if (injector_ != nullptr) {
    BMR_RETURN_IF_ERROR(injector_->OnSpillRead(path_));
  }
  // End of file is only legitimate exactly at a record boundary.
  if (buffer_pos_ >= buffer_.size() && eof_) {
    *has_record = false;
    return Status::Ok();
  }
  if (buffer_pos_ >= buffer_.size()) {
    Status st = FillBuffer(1);
    if (!st.ok() || (buffer_pos_ >= buffer_.size() && eof_)) {
      *has_record = false;
      return Status::Ok();
    }
  }
  uint64_t klen, vlen;
  BMR_RETURN_IF_ERROR(ReadVarint(&klen));
  BMR_RETURN_IF_ERROR(ReadBytes(key, klen));
  BMR_RETURN_IF_ERROR(ReadVarint(&vlen));
  BMR_RETURN_IF_ERROR(ReadBytes(value, vlen));
  *has_record = true;
  return Status::Ok();
}

}  // namespace bmr::core
