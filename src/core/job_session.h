// Cross-job memoization of partial results — the §8 future-work item
// ("Memoization, an optimization similar to DryadInc, becomes feasible
// in the barrier-less model").
//
// A barrier-less reducer's state is an explicit per-key partial result
// with an associative MergePartials, so a finished job can snapshot the
// partials per reduce partition and a later job over *additional*
// input can seed its stores from the snapshot: only the new records
// are folded, and the final outputs equal a from-scratch run over the
// union of the inputs.  The with-barrier model cannot do this — its
// reduce state is implicit in the sorted record stream.
//
// Requirements (caller's contract): the incremental job must keep the
// same number of reducers, partitioner, and key ordering across runs.
#pragma once

#include <map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "mr/types.h"

namespace bmr::core {

/// Thread-safe snapshot container: reducer partition → (key, partial)
/// pairs in key order.
class JobSession {
 public:
  JobSession() = default;

  JobSession(const JobSession&) = delete;
  JobSession& operator=(const JobSession&) = delete;

  /// Replace partition r's snapshot (called by the engine at the end of
  /// each barrier-less reduce task when a session is attached).
  void Save(int reducer, std::vector<mr::Record> partials)
      BMR_EXCLUDES(mu_);

  /// Partition r's snapshot from the previous run; nullptr if none.
  /// The pointer stays valid until the next Save(r).
  const std::vector<mr::Record>* Get(int reducer) const BMR_EXCLUDES(mu_);

  bool empty() const BMR_EXCLUDES(mu_);
  uint64_t TotalPartials() const BMR_EXCLUDES(mu_);
  /// Drop all snapshots (start over).
  void Clear() BMR_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::map<int, std::vector<mr::Record>> partials_ BMR_GUARDED_BY(mu_);
};

}  // namespace bmr::core
