#include "core/kvstore.h"

#include <cstdio>

#include <algorithm>

#include "common/serde.h"
#include "faults/fault_injector.h"

namespace bmr::core {

KvStoreBackend::KvStoreBackend(const StoreConfig& config)
    : config_(config),
      scratch_(config.scratch_dir),
      log_path_(scratch_.FilePath("kvlog")),
      index_(KeyLess{config.key_cmp}) {
  // A failed open is surfaced by CheckLog() on the first log access —
  // constructors can't return Status.
  log_ = std::fopen(log_path_.c_str(), "w+b");
}

Status KvStoreBackend::CheckLog() const {
  if (log_ != nullptr) return Status::Ok();
  return Status::Unavailable("kv store log failed to open: " + log_path_);
}

KvStoreBackend::~KvStoreBackend() {
  if (log_ != nullptr) std::fclose(log_);
}

void KvStoreBackend::ChargeOp() {
  if (config_.kv_ops_per_sec > 0) {
    stats_.charged_seconds += 1.0 / config_.kv_ops_per_sec;
  }
}

void KvStoreBackend::Touch(LruList::iterator it) {
  lru_.splice(lru_.begin(), lru_, it);
}

Status KvStoreBackend::WriteToLog(Slice key, Slice value, DiskLocation* loc) {
  BMR_RETURN_IF_ERROR(CheckLog());
  if (config_.fault_injector != nullptr) {
    BMR_RETURN_IF_ERROR(config_.fault_injector->OnSpillWrite(log_path_));
  }
  // fseeko: the log can exceed 2 GiB, so the offset must not be
  // narrowed through long (32-bit on LLP64 targets).
  if (::fseeko(log_, static_cast<off_t>(log_tail_), SEEK_SET) != 0) {
    return Status::Internal("kv log seek failed");
  }
  if (std::fwrite(value.data(), 1, value.size(), log_) != value.size()) {
    return Status::Internal("kv log write failed");
  }
  loc->offset = log_tail_;
  loc->length = static_cast<uint32_t>(value.size());
  loc->on_disk = true;
  log_tail_ += value.size();
  (void)key;
  return Status::Ok();
}

Status KvStoreBackend::ReadFromLog(const DiskLocation& loc,
                                   std::string* value) {
  BMR_RETURN_IF_ERROR(CheckLog());
  if (config_.fault_injector != nullptr) {
    BMR_RETURN_IF_ERROR(config_.fault_injector->OnSpillRead(log_path_));
  }
  if (::fseeko(log_, static_cast<off_t>(loc.offset), SEEK_SET) != 0) {
    return Status::Internal("kv log seek failed");
  }
  value->resize(loc.length);
  if (std::fread(value->data(), 1, loc.length, log_) != loc.length) {
    return Status::Internal("kv log short read");
  }
  ++stats_.disk_reads;
  stats_.disk_read_bytes += loc.length;
  return Status::Ok();
}

Status KvStoreBackend::EvictIfNeeded() {
  while (cache_bytes_ > config_.kv_cache_bytes && !lru_.empty()) {
    CacheEntry& victim = lru_.back();
    if (victim.dirty) {
      auto idx = index_.find(victim.key);
      if (idx == index_.end()) {
        return Status::Internal("kv cache entry missing from index");
      }
      BMR_RETURN_IF_ERROR(
          WriteToLog(Slice(victim.key), Slice(victim.value), &idx->second));
    }
    cache_bytes_ -= EntryFootprint(victim.key.size(), victim.value.size());
    // Heterogeneous erase is C++23; find-then-erase avoids a key copy.
    auto cidx = cache_index_.find(Slice(victim.key));
    if (cidx != cache_index_.end()) cache_index_.erase(cidx);
    lru_.pop_back();
    ++evictions_;
  }
  return Status::Ok();
}

Status KvStoreBackend::Get(Slice key, std::string* partial, bool* found) {
  ++stats_.gets;
  ChargeOp();
  *found = false;
  auto hit = cache_index_.find(key);  // transparent: no key copy
  if (hit != cache_index_.end()) {
    ++cache_hits_;
    Touch(hit->second);
    *partial = hit->second->value;
    *found = true;
    return Status::Ok();
  }
  auto idx = index_.find(key);
  if (idx == index_.end() || !idx->second.on_disk) return Status::Ok();
  ++cache_misses_;
  std::string value;
  BMR_RETURN_IF_ERROR(ReadFromLog(idx->second, &value));
  // Install in cache (clean: disk already has this version).
  lru_.push_front(CacheEntry{key.ToString(), value, /*dirty=*/false});
  cache_index_[lru_.front().key] = lru_.begin();
  cache_bytes_ += EntryFootprint(key.size(), value.size());
  // Eviction to make room may have to write back a dirty victim; a
  // failed write-back is lost data and must surface, not be swallowed.
  BMR_RETURN_IF_ERROR(EvictIfNeeded());
  *partial = std::move(value);
  *found = true;
  return Status::Ok();
}

Status KvStoreBackend::Put(Slice key, Slice partial) {
  ++stats_.puts;
  ChargeOp();
  auto hit = cache_index_.find(key);  // transparent: no key copy
  if (hit != cache_index_.end()) {
    CacheEntry& entry = *hit->second;
    cache_bytes_ += partial.size();
    cache_bytes_ -= entry.value.size();
    entry.value.assign(partial.data(), partial.size());
    entry.dirty = true;
    Touch(hit->second);
  } else {
    // Ensure the key exists in the directory (location filled on
    // evict).  Only this insert path materializes an owning key.
    std::string k = key.ToString();
    index_.try_emplace(k);
    lru_.push_front(CacheEntry{std::move(k), partial.ToString(),
                               /*dirty=*/true});
    cache_index_[lru_.front().key] = lru_.begin();
    cache_bytes_ += EntryFootprint(key.size(), partial.size());
  }
  stats_.peak_memory_bytes = std::max(stats_.peak_memory_bytes, cache_bytes_);
  return EvictIfNeeded();
}

Status KvStoreBackend::ScanAll(const EmitFn& fn) {
  for (const auto& [key, loc] : index_) {
    auto hit = cache_index_.find(key);
    if (hit != cache_index_.end()) {
      fn(Slice(key), Slice(hit->second->value));
    } else if (loc.on_disk) {
      std::string value;
      BMR_RETURN_IF_ERROR(ReadFromLog(loc, &value));
      fn(Slice(key), Slice(value));
    } else {
      return Status::Internal("kv index entry with no value anywhere");
    }
  }
  return Status::Ok();
}

Status KvStoreBackend::ForEachMerged(const MergeFn& merge, const EmitFn& fn) {
  (void)merge;  // read-modify-update keeps one authoritative value per key
  BMR_RETURN_IF_ERROR(ScanAll(fn));
  index_.clear();
  cache_index_.clear();
  lru_.clear();
  cache_bytes_ = 0;
  return Status::Ok();
}

Status KvStoreBackend::ForEachCurrent(const MergeFn& merge,
                                      const EmitFn& fn) const {
  (void)merge;
  // Logically const: reads may page values in from the log and bump
  // statistics, but the key/value contents are unchanged.
  return const_cast<KvStoreBackend*>(this)->ScanAll(fn);
}

}  // namespace bmr::core
