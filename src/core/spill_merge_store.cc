#include "core/spill_merge_store.h"

#include <algorithm>
#include <queue>

#include "core/spill_file.h"
#include "obs/metric_names.h"
#include "obs/trace.h"

namespace bmr::core {

SpillMergeStore::SpillMergeStore(const StoreConfig& config)
    : config_(config),
      scratch_(config.scratch_dir),
      memtable_(MakeOrderedPartialMap(config.key_cmp)) {}

Status SpillMergeStore::Get(Slice key, std::string* partial, bool* found) {
  ++stats_.gets;
  // Only the memtable is consulted: spilled fragments stay on disk and
  // are reconciled in the merge phase.  A key that was spilled restarts
  // from InitPartial, exactly as in the paper's scheme.
  auto it = memtable_.find(key);  // transparent: no key copy
  if (it == memtable_.end()) {
    *found = false;
    return Status::Ok();
  }
  *partial = it->second;
  *found = true;
  return Status::Ok();
}

Status SpillMergeStore::Put(Slice key, Slice partial) {
  ++stats_.puts;
  auto it = memtable_.lower_bound(key);
  bool exists = it != memtable_.end() && !memtable_.key_comp()(key, it->first);

  // Check the heap cap on the *prospective* footprint, before touching
  // the memtable: a rejected Put must leave the store (keys, bytes,
  // peak stats) exactly as it found it, so the OOM boundary is
  // observable and consistent.
  uint64_t new_bytes =
      exists ? memory_bytes_ + partial.size() - it->second.size()
             : memory_bytes_ + EntryFootprint(key.size(), partial.size());
  if (config_.heap_limit_bytes != 0 && new_bytes > config_.heap_limit_bytes) {
    return Status::ResourceExhausted("spill store exceeded heap cap");
  }

  if (!exists) {
    it = memtable_.emplace_hint(it, key.ToString(), std::string());
    ++approx_keys_;
    ++memtable_keys_;
  }
  it->second.assign(partial.data(), partial.size());
  memory_bytes_ = new_bytes;
  stats_.peak_memory_bytes = std::max(stats_.peak_memory_bytes, memory_bytes_);

  if (memory_bytes_ >= config_.spill_threshold_bytes && !memtable_.empty()) {
    return SpillNow();
  }
  return Status::Ok();
}

Status SpillMergeStore::SpillNow() {
  if (memtable_.empty()) return Status::Ok();
  // A spill is rare and expensive (sort + write of the whole memtable),
  // so it earns both a span and an unsampled latency sample.
  obs::ScopedSpan spill_span(config_.tracer, obs::kSpanStoreSpill, "store",
                             static_cast<int64_t>(spill_paths_.size()));
  obs::LatencyTimer spill_latency(config_.tracer, obs::kHStoreSpillUs);
  std::string path =
      scratch_.FilePath("spill_" + std::to_string(spill_paths_.size()));
  SpillFileWriter writer(path, config_.fault_injector);
  BMR_RETURN_IF_ERROR(writer.Open());
  for (const auto& [key, partial] : memtable_) {
    BMR_RETURN_IF_ERROR(writer.Append(Slice(key), Slice(partial)));
  }
  BMR_RETURN_IF_ERROR(writer.Close());
  spill_paths_.push_back(path);
  ++stats_.spills;
  stats_.spilled_bytes += writer.bytes_written();
  if (config_.disk_bytes_per_sec > 0) {
    stats_.charged_seconds +=
        writer.bytes_written() / config_.disk_bytes_per_sec;
  }
  memtable_.clear();
  memory_bytes_ = 0;
  memtable_keys_ = 0;
  return Status::Ok();
}

uint64_t SpillMergeStore::NumKeys() const { return approx_keys_; }

Status SpillMergeStore::ForEachMerged(const MergeFn& merge, const EmitFn& fn) {
  BMR_RETURN_IF_ERROR(MergeScan(merge, fn));
  memtable_.clear();
  memory_bytes_ = 0;
  memtable_keys_ = 0;
  approx_keys_ = 0;
  return Status::Ok();
}

Status SpillMergeStore::ForEachCurrent(const MergeFn& merge,
                                       const EmitFn& fn) const {
  // Logically const: the scan re-opens the spill files read-only and
  // walks the memtable; only statistics counters move.
  return const_cast<SpillMergeStore*>(this)->MergeScan(merge, fn);
}

Status SpillMergeStore::MergeScan(const MergeFn& merge, const EmitFn& fn) {
  // Merge heads: every spill file plus the live memtable, all already
  // in key order.  Standard loser-tree-free k-way merge over a heap.
  struct Head {
    std::string key;
    std::string value;
    size_t source;  // spill index, or spills.size() for the memtable
  };
  mr::KeyCompareFn cmp = config_.key_cmp;
  auto key_less = [&cmp](const Slice a, const Slice b) {
    return cmp ? cmp(a, b) < 0 : a.view() < b.view();
  };
  // Heap orders by (key asc, source asc) — source order keeps the merge
  // fold deterministic (spill order, then memtable), matching the order
  // in which the fragments were produced.
  auto head_greater = [&key_less](const Head& a, const Head& b) {
    if (key_less(Slice(a.key), Slice(b.key))) return false;
    if (key_less(Slice(b.key), Slice(a.key))) return true;
    return a.source > b.source;
  };
  std::priority_queue<Head, std::vector<Head>, decltype(head_greater)> heap(
      head_greater);

  std::vector<std::unique_ptr<SpillFileReader>> readers;
  readers.reserve(spill_paths_.size());
  for (const auto& path : spill_paths_) {
    readers.push_back(
        std::make_unique<SpillFileReader>(path, config_.fault_injector));
    BMR_RETURN_IF_ERROR(readers.back()->Open());
  }
  auto advance_reader = [&](size_t idx) -> Status {
    Head h;
    h.source = idx;
    bool has;
    BMR_RETURN_IF_ERROR(readers[idx]->Next(&h.key, &h.value, &has));
    if (has) {
      stats_.disk_read_bytes += h.key.size() + h.value.size();
      ++stats_.disk_reads;
      heap.push(std::move(h));
    }
    return Status::Ok();
  };
  for (size_t i = 0; i < readers.size(); ++i) {
    BMR_RETURN_IF_ERROR(advance_reader(i));
  }
  auto memtable_it = memtable_.begin();
  auto push_memtable_head = [&] {
    if (memtable_it != memtable_.end()) {
      heap.push(Head{memtable_it->first, memtable_it->second,
                     spill_paths_.size()});
      ++memtable_it;
    }
  };
  push_memtable_head();

  std::string current_key;
  std::string current_partial;
  bool have_current = false;
  auto flush_current = [&] {
    if (have_current) fn(Slice(current_key), Slice(current_partial));
    have_current = false;
  };

  while (!heap.empty()) {
    Head h = heap.top();
    heap.pop();
    if (h.source < readers.size()) {
      BMR_RETURN_IF_ERROR(advance_reader(h.source));
    } else {
      push_memtable_head();
    }
    bool same_key = have_current && !key_less(Slice(current_key), Slice(h.key)) &&
                    !key_less(Slice(h.key), Slice(current_key));
    if (same_key) {
      current_partial =
          merge ? merge(Slice(h.key), Slice(current_partial), Slice(h.value))
                : std::move(h.value);
    } else {
      flush_current();
      current_key = std::move(h.key);
      current_partial = std::move(h.value);
      have_current = true;
    }
  }
  flush_current();

  if (config_.disk_bytes_per_sec > 0) {
    stats_.charged_seconds += stats_.disk_read_bytes / config_.disk_bytes_per_sec;
  }
  return Status::Ok();
}

}  // namespace bmr::core
