#include "core/job_session.h"

namespace bmr::core {

void JobSession::Save(int reducer, std::vector<mr::Record> partials) {
  MutexLock lock(mu_);
  partials_[reducer] = std::move(partials);
}

const std::vector<mr::Record>* JobSession::Get(int reducer) const {
  MutexLock lock(mu_);
  auto it = partials_.find(reducer);
  return it == partials_.end() ? nullptr : &it->second;
}

bool JobSession::empty() const {
  MutexLock lock(mu_);
  for (const auto& [r, v] : partials_) {
    if (!v.empty()) return false;
  }
  return true;
}

uint64_t JobSession::TotalPartials() const {
  MutexLock lock(mu_);
  uint64_t n = 0;
  for (const auto& [r, v] : partials_) n += v.size();
  return n;
}

void JobSession::Clear() {
  MutexLock lock(mu_);
  partials_.clear();
}

}  // namespace bmr::core
