#include "core/inmemory_store.h"
#include "core/kvstore.h"
#include "core/partial_store.h"
#include "core/spill_merge_store.h"

namespace bmr::core {

const char* StoreTypeName(StoreType type) {
  switch (type) {
    case StoreType::kInMemory: return "in-memory";
    case StoreType::kSpillMerge: return "spill-merge";
    case StoreType::kKvStore: return "kv-store";
  }
  return "unknown";
}

std::unique_ptr<PartialStore> CreatePartialStore(const StoreConfig& config) {
  switch (config.type) {
    case StoreType::kInMemory:
      return std::make_unique<InMemoryStore>(config);
    case StoreType::kSpillMerge:
      return std::make_unique<SpillMergeStore>(config);
    case StoreType::kKvStore:
      return std::make_unique<KvStoreBackend>(config);
  }
  return nullptr;
}

}  // namespace bmr::core
