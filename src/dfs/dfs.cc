#include "dfs/dfs.h"

#include <algorithm>
#include <cassert>

#include "common/serde.h"

namespace bmr::dfs {

namespace {

// Wire helpers for FileInfo.
void EncodeFileInfo(const FileInfo& info, ByteBuffer* out) {
  Encoder enc(out);
  enc.PutString(info.path);
  enc.PutVarint64(info.size);
  enc.PutVarint64(info.blocks.size());
  for (const auto& b : info.blocks) {
    enc.PutVarint64(b.block_id);
    enc.PutVarint64(b.size);
    enc.PutVarint64(b.replicas.size());
    for (int r : b.replicas) enc.PutVarint64(static_cast<uint64_t>(r));
  }
}

bool DecodeFileInfo(Slice in, FileInfo* info) {
  Decoder dec(in);
  uint64_t nblocks;
  if (!dec.GetString(&info->path) || !dec.GetVarint64(&info->size) ||
      !dec.GetVarint64(&nblocks)) {
    return false;
  }
  info->blocks.resize(nblocks);
  for (auto& b : info->blocks) {
    uint64_t nrep;
    if (!dec.GetVarint64(&b.block_id) || !dec.GetVarint64(&b.size) ||
        !dec.GetVarint64(&nrep)) {
      return false;
    }
    b.replicas.resize(nrep);
    for (auto& r : b.replicas) {
      uint64_t v;
      if (!dec.GetVarint64(&v)) return false;
      r = static_cast<int>(v);
    }
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------- NameNode

NameNode::NameNode(int num_nodes, int replication, uint64_t block_bytes)
    : num_nodes_(num_nodes),
      replication_(std::min(replication, num_nodes)),
      block_bytes_(block_bytes),
      dead_(num_nodes, false) {
  assert(replication_ >= 1);
}

Status NameNode::Create(const std::string& path) {
  MutexLock lock(mu_);
  if (files_.count(path)) {
    return Status::AlreadyExists("file exists: " + path);
  }
  FileInfo info;
  info.path = path;
  files_[path] = std::move(info);
  return Status::Ok();
}

int NameNode::PickNextReplica(int exclude_first,
                              const std::vector<int>& chosen) {
  // Round-robin over live nodes, skipping already-chosen replicas.
  for (int tries = 0; tries < num_nodes_; ++tries) {
    int candidate = rr_cursor_;
    rr_cursor_ = (rr_cursor_ + 1) % num_nodes_;
    if (candidate == exclude_first || dead_[candidate]) continue;
    if (std::find(chosen.begin(), chosen.end(), candidate) != chosen.end()) {
      continue;
    }
    return candidate;
  }
  return -1;
}

StatusOr<BlockLocation> NameNode::AddBlock(const std::string& path,
                                           int writer_node, uint64_t size) {
  MutexLock lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);

  BlockLocation loc;
  loc.block_id = next_block_id_++;
  loc.size = size;
  // First replica local to the writer (the write-local policy); the
  // rest spread round-robin across live nodes.
  if (writer_node >= 0 && writer_node < num_nodes_ && !dead_[writer_node]) {
    loc.replicas.push_back(writer_node);
  }
  while (static_cast<int>(loc.replicas.size()) < replication_) {
    int next = PickNextReplica(/*exclude_first=*/-1, loc.replicas);
    if (next < 0) break;
    loc.replicas.push_back(next);
  }
  if (loc.replicas.empty()) {
    return Status::Unavailable("no live data nodes");
  }
  it->second.blocks.push_back(loc);
  it->second.size += size;
  return loc;
}

StatusOr<FileInfo> NameNode::GetFileInfo(const std::string& path) const {
  MutexLock lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  return it->second;
}

Status NameNode::Delete(const std::string& path) {
  MutexLock lock(mu_);
  if (files_.erase(path) == 0) {
    return Status::NotFound("no such file: " + path);
  }
  return Status::Ok();
}

std::vector<std::string> NameNode::ListFiles() const {
  MutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [path, info] : files_) out.push_back(path);
  std::sort(out.begin(), out.end());
  return out;
}

bool NameNode::Exists(const std::string& path) const {
  MutexLock lock(mu_);
  return files_.count(path) > 0;
}

void NameNode::MarkDead(int node) {
  MutexLock lock(mu_);
  if (node >= 0 && node < num_nodes_) dead_[node] = true;
}

std::vector<NameNode::RepairAction> NameNode::PlanRepairs(int dead) {
  MutexLock lock(mu_);
  std::vector<RepairAction> plan;
  for (auto& [path, info] : files_) {
    for (size_t b = 0; b < info.blocks.size(); ++b) {
      BlockLocation& block = info.blocks[b];
      auto it = std::find(block.replicas.begin(), block.replicas.end(), dead);
      if (it == block.replicas.end()) continue;
      RepairAction action;
      action.path = path;
      action.block_index = b;
      action.block_id = block.block_id;
      for (int replica : block.replicas) {
        if (replica != dead && !dead_[replica]) {
          action.source = replica;
          break;
        }
      }
      if (action.source < 0) continue;  // all replicas lost: unrecoverable
      action.target = PickNextReplica(/*exclude_first=*/-1, block.replicas);
      if (action.target < 0) continue;  // no spare live node
      plan.push_back(std::move(action));
    }
  }
  return plan;
}

Status NameNode::ConfirmRepair(const RepairAction& action, int dead) {
  MutexLock lock(mu_);
  auto it = files_.find(action.path);
  if (it == files_.end()) return Status::NotFound(action.path);
  if (action.block_index >= it->second.blocks.size()) {
    return Status::OutOfRange("block index");
  }
  BlockLocation& block = it->second.blocks[action.block_index];
  for (int& replica : block.replicas) {
    if (replica == dead) {
      replica = action.target;
      return Status::Ok();
    }
  }
  return Status::NotFound("dead replica already replaced");
}

// ---------------------------------------------------------------- DataNode

Status DataNode::PutBlock(uint64_t block_id, Slice data) {
  MutexLock lock(mu_);
  auto [it, inserted] = blocks_.emplace(block_id, data.ToString());
  if (!inserted) {
    return Status::AlreadyExists("block " + std::to_string(block_id));
  }
  stored_bytes_ += data.size();
  return Status::Ok();
}

Status DataNode::ReadBlock(uint64_t block_id, uint64_t offset, uint64_t len,
                           ByteBuffer* out) const {
  MutexLock lock(mu_);
  auto it = blocks_.find(block_id);
  if (it == blocks_.end()) {
    return Status::NotFound("block " + std::to_string(block_id));
  }
  const std::string& data = it->second;
  if (offset > data.size()) {
    return Status::OutOfRange("offset beyond block end");
  }
  uint64_t n = std::min<uint64_t>(len, data.size() - offset);
  out->Append(data.data() + offset, n);
  return Status::Ok();
}

bool DataNode::HasBlock(uint64_t block_id) const {
  MutexLock lock(mu_);
  return blocks_.count(block_id) > 0;
}

uint64_t DataNode::stored_bytes() const {
  MutexLock lock(mu_);
  return stored_bytes_;
}

size_t DataNode::num_blocks() const {
  MutexLock lock(mu_);
  return blocks_.size();
}

// --------------------------------------------------------------------- Dfs

Dfs::Dfs(net::Transport* transport, int replication, uint64_t block_bytes)
    : transport_(transport),
      block_bytes_(block_bytes),
      node_dead_(transport->num_nodes(), false) {
  name_node_ = std::make_unique<NameNode>(transport->num_nodes(), replication,
                                          block_bytes);
  data_nodes_.resize(transport->num_nodes());
  for (int i = 0; i < transport->num_nodes(); ++i) {
    data_nodes_[i] = std::make_unique<DataNode>(i);
    RegisterDataNodeService(i);
  }
  RegisterNameNodeService();
}

void Dfs::KillDataNode(int node) {
  name_node_->MarkDead(node);
  {
    MutexLock lock(mu_);
    node_dead_[node] = true;
  }
  // Unregister only this node's dn.* handlers by re-registering a
  // failing stub (Transport::KillNode would also drop nn.* on node 0).
  auto dead = [](Slice, ByteBuffer*) {
    return Status::Unavailable("data node is down");
  };
  transport_->Register(node, "dn.put", dead);
  transport_->Register(node, "dn.read", dead);

  // HDFS-style repair: copy every block the node held from a surviving
  // replica onto a live node, restoring the replication factor.  The
  // copies run without dfs.control held; only the final tally takes it.
  uint64_t repaired = 0;
  for (const auto& action : name_node_->PlanRepairs(node)) {
    DataNode* source = data_nodes_[action.source].get();
    DataNode* target = data_nodes_[action.target].get();
    ByteBuffer data;
    if (!source->ReadBlock(action.block_id, 0, UINT64_MAX, &data).ok()) {
      continue;
    }
    if (!target->PutBlock(action.block_id, data.AsSlice()).ok()) continue;
    if (name_node_->ConfirmRepair(action, node).ok()) ++repaired;
  }
  MutexLock lock(mu_);
  blocks_re_replicated_ += repaired;
}

void Dfs::RegisterNameNodeService() {
  NameNode* nn = name_node_.get();

  transport_->Register(0, "nn.create", [nn](Slice req, ByteBuffer*) {
    Decoder dec(req);
    std::string path;
    if (!dec.GetString(&path)) return Status::DataLoss("bad nn.create req");
    return nn->Create(path);
  });

  transport_->Register(0, "nn.add_block", [nn](Slice req, ByteBuffer* resp) {
    Decoder dec(req);
    std::string path;
    uint64_t writer, size;
    if (!dec.GetString(&path) || !dec.GetVarint64(&writer) ||
        !dec.GetVarint64(&size)) {
      return Status::DataLoss("bad nn.add_block req");
    }
    auto loc = nn->AddBlock(path, static_cast<int>(writer), size);
    if (!loc.ok()) return loc.status();
    Encoder enc(resp);
    enc.PutVarint64(loc->block_id);
    enc.PutVarint64(loc->size);
    enc.PutVarint64(loc->replicas.size());
    for (int r : loc->replicas) enc.PutVarint64(static_cast<uint64_t>(r));
    return Status::Ok();
  });

  transport_->Register(0, "nn.get_file_info", [nn](Slice req, ByteBuffer* resp) {
    Decoder dec(req);
    std::string path;
    if (!dec.GetString(&path)) return Status::DataLoss("bad req");
    auto info = nn->GetFileInfo(path);
    if (!info.ok()) return info.status();
    EncodeFileInfo(*info, resp);
    return Status::Ok();
  });

  transport_->Register(0, "nn.delete", [nn](Slice req, ByteBuffer*) {
    Decoder dec(req);
    std::string path;
    if (!dec.GetString(&path)) return Status::DataLoss("bad req");
    return nn->Delete(path);
  });

  transport_->Register(0, "nn.list", [nn](Slice req, ByteBuffer* resp) {
    Decoder dec(req);
    std::string prefix;
    if (!dec.GetString(&prefix)) return Status::DataLoss("bad req");
    Encoder enc(resp);
    std::vector<std::string> all = nn->ListFiles();
    std::vector<std::string> matched;
    for (const auto& path : all) {
      if (path.compare(0, prefix.size(), prefix) == 0) {
        matched.push_back(path);
      }
    }
    enc.PutVarint64(matched.size());
    for (const auto& path : matched) enc.PutString(path);
    return Status::Ok();
  });

  transport_->Register(0, "nn.exists", [nn](Slice req, ByteBuffer* resp) {
    Decoder dec(req);
    std::string path;
    if (!dec.GetString(&path)) return Status::DataLoss("bad req");
    Encoder enc(resp);
    enc.PutU8(nn->Exists(path) ? 1 : 0);
    return Status::Ok();
  });
}

void Dfs::RegisterDataNodeService(int node) {
  DataNode* dn = data_nodes_[node].get();

  transport_->Register(node, "dn.put", [dn](Slice req, ByteBuffer*) {
    Decoder dec(req);
    uint64_t block_id;
    Slice data;
    if (!dec.GetVarint64(&block_id) || !dec.GetString(&data)) {
      return Status::DataLoss("bad dn.put req");
    }
    return dn->PutBlock(block_id, data);
  });

  transport_->Register(node, "dn.read", [dn](Slice req, ByteBuffer* resp) {
    Decoder dec(req);
    uint64_t block_id, offset, len;
    if (!dec.GetVarint64(&block_id) || !dec.GetVarint64(&offset) ||
        !dec.GetVarint64(&len)) {
      return Status::DataLoss("bad dn.read req");
    }
    return dn->ReadBlock(block_id, offset, len, resp);
  });
}

// --------------------------------------------------------------- DfsClient

DfsClient::Writer::Writer(DfsClient* client, std::string path)
    : client_(client), path_(std::move(path)) {}

Status DfsClient::Writer::Append(Slice data) {
  if (closed_) return Status::FailedPrecondition("writer closed");
  buffer_.Append(data);
  bytes_written_ += data.size();
  uint64_t block = client_->dfs_->block_bytes();
  while (buffer_.size() >= block) {
    BMR_RETURN_IF_ERROR(FlushBlock());
  }
  return Status::Ok();
}

Status DfsClient::Writer::FlushBlock() {
  uint64_t block = client_->dfs_->block_bytes();
  uint64_t n = std::min<uint64_t>(buffer_.size(), block);
  BMR_RETURN_IF_ERROR(
      client_->WriteBlock(path_, Slice(buffer_.data(), n)));
  // Shift the remainder down.  Block-sized memmove at most once per
  // block write; acceptable for the substrate.
  std::memmove(buffer_.data(), buffer_.data() + n, buffer_.size() - n);
  buffer_.Resize(buffer_.size() - n);
  return Status::Ok();
}

Status DfsClient::Writer::Close() {
  if (closed_) return Status::Ok();
  while (!buffer_.empty()) {
    BMR_RETURN_IF_ERROR(FlushBlock());
  }
  closed_ = true;
  return Status::Ok();
}

StatusOr<std::unique_ptr<DfsClient::Writer>> DfsClient::Create(
    const std::string& path) {
  ByteBuffer req;
  Encoder enc(&req);
  enc.PutString(path);
  ByteBuffer resp;
  BMR_RETURN_IF_ERROR(
      dfs_->transport()->Call(node_id_, 0, "nn.create", req.AsSlice(), &resp));
  return std::make_unique<Writer>(this, path);
}

Status DfsClient::WriteBlock(const std::string& path, Slice data) {
  // Ask the NameNode for a placement, then push to every replica.
  ByteBuffer req;
  Encoder enc(&req);
  enc.PutString(path);
  enc.PutVarint64(static_cast<uint64_t>(node_id_));
  enc.PutVarint64(data.size());
  ByteBuffer resp;
  BMR_RETURN_IF_ERROR(
      dfs_->transport()->Call(node_id_, 0, "nn.add_block", req.AsSlice(), &resp));

  Decoder dec(resp.AsSlice());
  uint64_t block_id, size, nrep;
  if (!dec.GetVarint64(&block_id) || !dec.GetVarint64(&size) ||
      !dec.GetVarint64(&nrep)) {
    return Status::DataLoss("bad nn.add_block resp");
  }
  for (uint64_t i = 0; i < nrep; ++i) {
    uint64_t replica;
    if (!dec.GetVarint64(&replica)) return Status::DataLoss("bad resp");
    ByteBuffer put_req;
    Encoder put_enc(&put_req);
    put_enc.PutVarint64(block_id);
    put_enc.PutString(data);
    ByteBuffer put_resp;
    BMR_RETURN_IF_ERROR(dfs_->transport()->Call(node_id_,
                                             static_cast<int>(replica),
                                             "dn.put", put_req.AsSlice(),
                                             &put_resp));
  }
  return Status::Ok();
}

StatusOr<FileInfo> DfsClient::GetFileInfo(const std::string& path) {
  ByteBuffer req;
  Encoder enc(&req);
  enc.PutString(path);
  ByteBuffer resp;
  BMR_RETURN_IF_ERROR(dfs_->transport()->Call(node_id_, 0, "nn.get_file_info",
                                           req.AsSlice(), &resp));
  FileInfo info;
  if (!DecodeFileInfo(resp.AsSlice(), &info)) {
    return Status::DataLoss("bad file info");
  }
  return info;
}

Status DfsClient::Delete(const std::string& path) {
  ByteBuffer req;
  Encoder enc(&req);
  enc.PutString(path);
  ByteBuffer resp;
  return dfs_->transport()->Call(node_id_, 0, "nn.delete", req.AsSlice(), &resp);
}

bool DfsClient::Exists(const std::string& path) {
  ByteBuffer req;
  Encoder enc(&req);
  enc.PutString(path);
  ByteBuffer resp;
  Status st =
      dfs_->transport()->Call(node_id_, 0, "nn.exists", req.AsSlice(), &resp);
  if (!st.ok() || resp.size() != 1) return false;
  return resp.data()[0] == 1;
}

StatusOr<std::vector<std::string>> DfsClient::ListFiles(
    const std::string& prefix) {
  ByteBuffer req;
  Encoder enc(&req);
  enc.PutString(prefix);
  ByteBuffer resp;
  BMR_RETURN_IF_ERROR(
      dfs_->transport()->Call(node_id_, 0, "nn.list", req.AsSlice(), &resp));
  Decoder dec(resp.AsSlice());
  uint64_t n;
  if (!dec.GetVarint64(&n)) return Status::DataLoss("bad nn.list resp");
  std::vector<std::string> files(n);
  for (auto& f : files) {
    if (!dec.GetString(&f)) return Status::DataLoss("bad nn.list resp");
  }
  return files;
}

Status DfsClient::ReadBlockRange(const BlockLocation& loc, uint64_t offset,
                                 uint64_t len, ByteBuffer* out) {
  // Prefer a local replica, then fail over in placement order.
  std::vector<int> order = loc.replicas;
  auto local =
      std::find(order.begin(), order.end(), node_id_);
  if (local != order.end()) {
    std::iter_swap(order.begin(), local);
  }
  Status last = Status::Unavailable("no replicas");
  for (int replica : order) {
    ByteBuffer req;
    Encoder enc(&req);
    enc.PutVarint64(loc.block_id);
    enc.PutVarint64(offset);
    enc.PutVarint64(len);
    ByteBuffer resp;
    last = dfs_->transport()->Call(node_id_, replica, "dn.read", req.AsSlice(),
                                &resp);
    if (last.ok()) {
      out->Append(resp.AsSlice());
      return Status::Ok();
    }
  }
  return last;
}

Status DfsClient::Pread(const std::string& path, uint64_t offset, uint64_t len,
                        ByteBuffer* out) {
  BMR_ASSIGN_OR_RETURN(FileInfo info, GetFileInfo(path));
  if (offset >= info.size) return Status::Ok();  // read past EOF: 0 bytes
  len = std::min<uint64_t>(len, info.size - offset);

  uint64_t block_start = 0;
  for (const auto& block : info.blocks) {
    uint64_t block_end = block_start + block.size;
    if (len == 0) break;
    if (offset < block_end) {
      uint64_t in_block_off = offset - block_start;
      uint64_t n = std::min<uint64_t>(len, block.size - in_block_off);
      BMR_RETURN_IF_ERROR(ReadBlockRange(block, in_block_off, n, out));
      offset += n;
      len -= n;
    }
    block_start = block_end;
  }
  if (len > 0) {
    return Status::DataLoss("file metadata inconsistent with size");
  }
  return Status::Ok();
}

StatusOr<std::string> DfsClient::ReadAll(const std::string& path) {
  BMR_ASSIGN_OR_RETURN(FileInfo info, GetFileInfo(path));
  ByteBuffer out;
  out.Reserve(info.size);
  BMR_RETURN_IF_ERROR(Pread(path, 0, info.size, &out));
  return out.ToString();
}

Status DfsClient::WriteFile(const std::string& path, Slice contents) {
  BMR_ASSIGN_OR_RETURN(std::unique_ptr<Writer> writer, Create(path));
  BMR_RETURN_IF_ERROR(writer->Append(contents));
  return writer->Close();
}

}  // namespace bmr::dfs
