// Distributed file system substrate (HDFS stand-in).
//
// Files are split into fixed-size blocks.  A NameNode (on the master)
// keeps path → block metadata and picks replica placements with the
// write-local-first policy the paper highlights; DataNodes (one per
// slave) store block bytes and serve ranged reads over the RPC transport.
// A DfsClient per node provides create/append/close, positional reads
// and replica failover.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "net/transport.h"

namespace bmr::dfs {

struct BlockLocation {
  uint64_t block_id = 0;
  uint64_t size = 0;
  std::vector<int> replicas;  // data node ids, placement order
};

struct FileInfo {
  std::string path;
  uint64_t size = 0;
  std::vector<BlockLocation> blocks;
};

/// NameNode: file namespace and block placement.  Lives behind RPC
/// methods "nn.*" on the master node; the typed API below is what the
/// client stubs call into after decoding.
class NameNode {
 public:
  NameNode(int num_nodes, int replication, uint64_t block_bytes);

  [[nodiscard]] Status Create(const std::string& path) BMR_EXCLUDES(mu_);
  /// Allocate the next block of `path`, placing `replication` replicas
  /// starting at the writer's node (write-local policy).
  [[nodiscard]] StatusOr<BlockLocation> AddBlock(const std::string& path,
                                                 int writer_node,
                                                 uint64_t size)
      BMR_EXCLUDES(mu_);
  [[nodiscard]] StatusOr<FileInfo> GetFileInfo(const std::string& path) const
      BMR_EXCLUDES(mu_);
  [[nodiscard]] Status Delete(const std::string& path) BMR_EXCLUDES(mu_);
  std::vector<std::string> ListFiles() const BMR_EXCLUDES(mu_);
  bool Exists(const std::string& path) const BMR_EXCLUDES(mu_);

  uint64_t block_bytes() const { return block_bytes_; }
  int replication() const { return replication_; }

  /// Exclude a node from future placements (it died).
  void MarkDead(int node) BMR_EXCLUDES(mu_);

  /// One block copy needed to restore the replication factor after a
  /// node loss.
  struct RepairAction {
    std::string path;
    size_t block_index = 0;
    uint64_t block_id = 0;
    int source = -1;  // a surviving replica
    int target = -1;  // chosen live node
  };

  /// Plan re-replication for every block that lost a replica on `dead`,
  /// reserving targets; call ConfirmRepair once the copy succeeded.
  std::vector<RepairAction> PlanRepairs(int dead) BMR_EXCLUDES(mu_);

  /// Record the new replica in the block's metadata (replacing the
  /// dead node's entry).
  [[nodiscard]] Status ConfirmRepair(const RepairAction& action, int dead)
      BMR_EXCLUDES(mu_);

 private:
  int PickNextReplica(int exclude_first, const std::vector<int>& chosen)
      BMR_REQUIRES(mu_);

  BMR_ACQUIRED_AFTER("dfs.control")
  mutable OrderedMutex mu_{"dfs.namenode"};
  int num_nodes_;
  int replication_;
  uint64_t block_bytes_;
  uint64_t next_block_id_ BMR_GUARDED_BY(mu_) = 1;
  int rr_cursor_ BMR_GUARDED_BY(mu_) = 0;
  std::vector<bool> dead_ BMR_GUARDED_BY(mu_);
  std::unordered_map<std::string, FileInfo> files_ BMR_GUARDED_BY(mu_);
};

/// DataNode: in-memory block store for one simulated machine, plus the
/// RPC service wrapper.
class DataNode {
 public:
  explicit DataNode(int node_id) : node_id_(node_id) {}

  [[nodiscard]] Status PutBlock(uint64_t block_id, Slice data)
      BMR_EXCLUDES(mu_);
  [[nodiscard]] Status ReadBlock(uint64_t block_id, uint64_t offset,
                                 uint64_t len, ByteBuffer* out) const
      BMR_EXCLUDES(mu_);
  bool HasBlock(uint64_t block_id) const BMR_EXCLUDES(mu_);
  uint64_t stored_bytes() const BMR_EXCLUDES(mu_);
  size_t num_blocks() const BMR_EXCLUDES(mu_);

  int node_id() const { return node_id_; }

 private:
  int node_id_;
  BMR_ACQUIRED_AFTER("dfs.control")
  mutable OrderedMutex mu_{"dfs.datanode"};
  std::unordered_map<uint64_t, std::string> blocks_ BMR_GUARDED_BY(mu_);
  uint64_t stored_bytes_ BMR_GUARDED_BY(mu_) = 0;
};

/// The whole DFS: NameNode + DataNodes wired onto a net::Transport.
/// Master node id 0 hosts the NameNode service.
class Dfs {
 public:
  /// Registers nn.* on node 0 and dn.* on every node.
  Dfs(net::Transport* transport, int replication, uint64_t block_bytes);

  net::Transport* transport() { return transport_; }
  uint64_t block_bytes() const { return block_bytes_; }

  /// Simulate a machine loss: drop its DataNode service and blocks and
  /// exclude it from future placement.  Surviving replicas are then
  /// re-replicated onto live nodes (HDFS-style repair), so a second
  /// failure does not lose data.  Safe to call concurrently with jobs
  /// in flight (and with another KillDataNode).
  void KillDataNode(int node) BMR_EXCLUDES(mu_);

  /// Blocks copied by KillDataNode repair passes so far.
  uint64_t blocks_re_replicated() const BMR_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return blocks_re_replicated_;
  }

  // Direct (non-RPC) access for tests and for the master-side planner.
  NameNode* name_node() { return name_node_.get(); }
  DataNode* data_node(int node) { return data_nodes_[node].get(); }

 private:
  void RegisterNameNodeService();
  void RegisterDataNodeService(int node);

  net::Transport* transport_;
  uint64_t block_bytes_;
  std::unique_ptr<NameNode> name_node_;
  std::vector<std::unique_ptr<DataNode>> data_nodes_;
  // Guards the failure bookkeeping below; the NameNode and DataNodes
  // have their own locks and are never called with mu_ held beyond
  // the repair loop (dfs.control -> dfs.namenode/dfs.datanode only).
  mutable OrderedMutex mu_{"dfs.control"};
  std::vector<bool> node_dead_ BMR_GUARDED_BY(mu_);
  uint64_t blocks_re_replicated_ BMR_GUARDED_BY(mu_) = 0;
};

/// Per-node client stub.  All traffic goes through the RPC transport so it
/// is metered like any other remote I/O.
class DfsClient {
 public:
  DfsClient(Dfs* dfs, int node_id) : dfs_(dfs), node_id_(node_id) {}

  /// Streaming writer; buffers into blocks and replicates on Close/roll.
  class Writer {
   public:
    Writer(DfsClient* client, std::string path);
    [[nodiscard]] Status Append(Slice data);
    [[nodiscard]] Status Close();
    uint64_t bytes_written() const { return bytes_written_; }

   private:
    [[nodiscard]] Status FlushBlock();

    DfsClient* client_;
    std::string path_;
    ByteBuffer buffer_;
    uint64_t bytes_written_ = 0;
    bool closed_ = false;
  };

  [[nodiscard]] StatusOr<std::unique_ptr<Writer>> Create(
      const std::string& path);
  [[nodiscard]] StatusOr<FileInfo> GetFileInfo(const std::string& path);
  [[nodiscard]] Status Delete(const std::string& path);
  bool Exists(const std::string& path);

  /// All file paths starting with `prefix`, sorted ("" = everything).
  [[nodiscard]] StatusOr<std::vector<std::string>> ListFiles(
      const std::string& prefix);

  /// Positional read of [offset, offset+len) into out (may return fewer
  /// bytes at EOF).  Prefers a local replica; fails over across replicas.
  [[nodiscard]] Status Pread(const std::string& path, uint64_t offset,
                             uint64_t len, ByteBuffer* out);

  /// Convenience: read a whole (small) file into a string.
  [[nodiscard]] StatusOr<std::string> ReadAll(const std::string& path);

  /// Write a whole buffer as a new file.
  [[nodiscard]] Status WriteFile(const std::string& path, Slice contents);

  int node_id() const { return node_id_; }
  Dfs* dfs() { return dfs_; }

 private:
  friend class Writer;
  [[nodiscard]] Status WriteBlock(const std::string& path, Slice data);
  [[nodiscard]] Status ReadBlockRange(const BlockLocation& loc,
                                      uint64_t offset, uint64_t len,
                                      ByteBuffer* out);

  Dfs* dfs_;
  int node_id_;
};

}  // namespace bmr::dfs
