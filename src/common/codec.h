// Block codecs for the shuffle wire format (ROADMAP item 3b).  Two
// implementations, both in-repo — the container must not grow deps:
//
//   "none"  memcpy pass-through (the degenerate baseline).
//   "lz4"   LZ4-*style* byte-oriented LZ77: greedy hash-table match
//           finder, 4-byte minimum match, varint-coded
//           (literal-run, match-length, offset) sequences.  Not the
//           LZ4 frame format — same family of trade-offs (speed over
//           ratio, trivially safe decode), our own wire layout.
//
// Codecs compress one *block* at a time (shuffle.block_bytes, default
// 64 KiB); the per-block container format — lengths, checksums, stored
// fallback for incompressible blocks — lives in mr/segment_codec.h.
// Decompress() is written for untrusted input: every read and copy is
// bounds-checked, and output is exactly `raw_size` bytes or an error.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/status.h"

namespace bmr {

class Codec {
 public:
  virtual ~Codec() = default;

  /// Stable registry name ("none", "lz4") — the shuffle.codec knob.
  virtual const char* name() const = 0;
  /// Wire id stamped on encoded blocks (0 is reserved for stored /
  /// uncompressed blocks; see mr/segment_codec.h).
  virtual uint8_t id() const = 0;

  /// Compress `raw` onto the end of `out`.  Returns false when the
  /// encoded form would not be smaller than `raw` (caller stores the
  /// block raw instead); `out` is untouched in that case.
  virtual bool Compress(Slice raw, ByteBuffer* out) const = 0;

  /// Decompress `encoded` into out[0, raw_size).  `out` must have room
  /// for exactly raw_size bytes.  Any malformed input — truncated
  /// stream, out-of-range offset, output over- or underrun — fails.
  [[nodiscard]] virtual Status Decompress(Slice encoded, char* out,
                                          size_t raw_size) const = 0;
};

/// Look up a codec by knob value.  Unknown names are an error (a
/// mistyped knob must not silently run uncompressed).
[[nodiscard]] StatusOr<const Codec*> FindCodec(const std::string& name);

/// Look up a codec by wire id; null for unknown ids (untrusted input).
const Codec* CodecById(uint8_t id);

}  // namespace bmr
