#include "common/lock_order.h"

#include <cstdlib>
#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "common/logging.h"

namespace bmr {

namespace {

struct Node {
  const char* name = "?";
  std::set<const void*> succ;  // locks acquired while this one was held
};

struct Held {
  const void* id;
  const char* name;
};

// Per-thread stack of currently held OrderedMutexes.  Function-local so
// every TU shares one definition.
std::vector<Held>& HeldStack() {
  thread_local std::vector<Held> stack;
  return stack;
}

struct State {
  std::mutex mu;  // bottom of the lock hierarchy: guards only this map
  std::map<const void*, Node> graph;
  LockOrderRegistry::Handler handler;
};

State& GetState() {
  static State* state = new State();  // leaked: outlives all mutexes
  return *state;
}

void DefaultHandler(const LockOrderRegistry::Violation& v) {
  BMR_ERROR << v.message;
  std::abort();
}

/// Path from `from` to `to` along recorded edges, as lock names; empty
/// if unreachable.  Caller holds State::mu.
std::vector<const char*> FindPath(const std::map<const void*, Node>& graph,
                                  const void* from, const void* to) {
  std::vector<const void*> frontier{from};
  std::map<const void*, const void*> parent{{from, nullptr}};
  while (!frontier.empty()) {
    const void* cur = frontier.back();
    frontier.pop_back();
    if (cur == to) {
      std::vector<const char*> path;
      for (const void* p = cur; p != nullptr; p = parent.at(p)) {
        auto it = graph.find(p);
        path.insert(path.begin(), it == graph.end() ? "?" : it->second.name);
      }
      return path;
    }
    auto it = graph.find(cur);
    if (it == graph.end()) continue;
    for (const void* next : it->second.succ) {
      if (parent.emplace(next, cur).second) frontier.push_back(next);
    }
  }
  return {};
}

std::string JoinNames(const std::vector<const char*>& names) {
  std::string out;
  for (const char* n : names) {
    if (!out.empty()) out += " -> ";
    out += '"';
    out += n;
    out += '"';
  }
  return out;
}

}  // namespace

LockOrderRegistry& LockOrderRegistry::Instance() {
  static LockOrderRegistry registry;
  return registry;
}

void LockOrderRegistry::OnAcquire(const void* m, const char* name) {
  std::vector<Held>& held = HeldStack();
  Violation violation;
  bool bad = false;
  Handler handler;
  {
    State& state = GetState();
    std::lock_guard<std::mutex> lock(state.mu);
    state.graph[m].name = name;
    for (const Held& h : held) {
      if (h.id == m) {
        violation.acquiring = name;
        violation.held = h.name;
        violation.message = std::string("lock-order violation: recursive "
                                        "acquisition of \"") +
                            name + "\"";
        bad = true;
        break;
      }
    }
    if (!bad) {
      for (const Held& h : held) {
        Node& from = state.graph[h.id];
        if (from.succ.count(m)) continue;  // edge already established
        std::vector<const char*> reverse = FindPath(state.graph, m, h.id);
        if (!reverse.empty()) {
          violation.acquiring = name;
          violation.held = h.name;
          std::vector<const char*> held_names;
          for (const Held& e : held) held_names.push_back(e.name);
          violation.message =
              std::string("lock-order inversion: acquiring \"") + name +
              "\" while holding " + JoinNames(held_names) +
              ", but the opposite order " + JoinNames(reverse) +
              " was established earlier (potential deadlock)";
          bad = true;
          break;
        }
        from.succ.insert(m);
      }
    }
    handler = state.handler ? state.handler : DefaultHandler;
  }
  if (bad) handler(violation);
  held.push_back(Held{m, name});
}

void LockOrderRegistry::OnRelease(const void* m) {
  std::vector<Held>& held = HeldStack();
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    if (it->id == m) {
      held.erase(std::next(it).base());
      return;
    }
  }
}

void LockOrderRegistry::OnDestroy(const void* m) {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  state.graph.erase(m);
  for (auto& [id, node] : state.graph) node.succ.erase(m);
}

LockOrderRegistry::Handler LockOrderRegistry::SetHandler(Handler handler) {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  Handler previous = std::move(state.handler);
  state.handler = std::move(handler);
  return previous;
}

void LockOrderRegistry::Reset() {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  state.graph.clear();
}

}  // namespace bmr
