#include "common/serde.h"

#include <cmath>

namespace bmr {

std::string EncodeOrderedI64(int64_t v) {
  // Flip the sign bit, then store big-endian: byte order == numeric order.
  uint64_t u = static_cast<uint64_t>(v) ^ (1ull << 63);
  std::string out(8, '\0');
  for (int i = 7; i >= 0; --i) {
    out[i] = static_cast<char>(u & 0xff);
    u >>= 8;
  }
  return out;
}

bool DecodeOrderedI64(Slice s, int64_t* v) {
  if (s.size() != 8) return false;
  uint64_t u = 0;
  for (int i = 0; i < 8; ++i) {
    u = (u << 8) | static_cast<uint8_t>(s[i]);
  }
  *v = static_cast<int64_t>(u ^ (1ull << 63));
  return true;
}

std::string EncodeOrderedDouble(double v) {
  // IEEE754 trick: positive doubles sort by bit pattern; negatives sort
  // reversed.  Flip all bits for negatives, only the sign bit otherwise.
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  if (bits & (1ull << 63)) {
    bits = ~bits;
  } else {
    bits |= (1ull << 63);
  }
  std::string out(8, '\0');
  for (int i = 7; i >= 0; --i) {
    out[i] = static_cast<char>(bits & 0xff);
    bits >>= 8;
  }
  return out;
}

bool DecodeOrderedDouble(Slice s, double* v) {
  if (s.size() != 8) return false;
  uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits = (bits << 8) | static_cast<uint8_t>(s[i]);
  }
  if (bits & (1ull << 63)) {
    bits &= ~(1ull << 63);
  } else {
    bits = ~bits;
  }
  std::memcpy(v, &bits, 8);
  return true;
}

std::string EncodeI64(int64_t v) {
  ByteBuffer buf(10);
  Encoder enc(&buf);
  enc.PutSignedVarint64(v);
  return buf.ToString();
}

bool DecodeI64(Slice s, int64_t* v) {
  Decoder dec(s);
  return dec.GetSignedVarint64(v) && dec.empty();
}

std::string EncodeDouble(double v) {
  ByteBuffer buf(8);
  Encoder enc(&buf);
  enc.PutDouble(v);
  return buf.ToString();
}

bool DecodeDouble(Slice s, double* v) {
  Decoder dec(s);
  return dec.GetDouble(v) && dec.empty();
}

}  // namespace bmr
