// Serialization primitives: little-endian fixed ints, LEB128 varints,
// zigzag, length-prefixed strings, doubles.  This is the wire format for
// the RPC layer, the DFS block format, map-output segments and the
// partial-result spill files.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

#include "common/bytes.h"

namespace bmr {

/// Appends primitive values to a ByteBuffer in bmr wire format.
class Encoder {
 public:
  explicit Encoder(ByteBuffer* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->PushByte(v); }

  void PutFixed32(uint32_t v) {
    char buf[4];
    std::memcpy(buf, &v, 4);  // host is little-endian (x86-64)
    out_->Append(buf, 4);
  }

  void PutFixed64(uint64_t v) {
    char buf[8];
    std::memcpy(buf, &v, 8);
    out_->Append(buf, 8);
  }

  void PutVarint64(uint64_t v) {
    while (v >= 0x80) {
      out_->PushByte(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    out_->PushByte(static_cast<uint8_t>(v));
  }

  void PutVarint32(uint32_t v) { PutVarint64(v); }

  static uint64_t ZigZag(int64_t v) {
    return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
  }

  void PutSignedVarint64(int64_t v) { PutVarint64(ZigZag(v)); }

  void PutDouble(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, 8);
    PutFixed64(bits);
  }

  /// Length-prefixed byte string.
  void PutString(Slice s) {
    PutVarint64(s.size());
    out_->Append(s);
  }

 private:
  ByteBuffer* out_;
};

/// Consumes primitive values from a Slice; every Get* advances the view.
/// All getters return false (and leave the output untouched) on truncated
/// or malformed input, so callers can surface DataLoss instead of UB.
class Decoder {
 public:
  explicit Decoder(Slice in) : in_(in) {}

  size_t remaining() const { return in_.size(); }
  bool empty() const { return in_.empty(); }

  bool GetU8(uint8_t* v) {
    if (in_.size() < 1) return false;
    *v = static_cast<uint8_t>(in_[0]);
    in_.RemovePrefix(1);
    return true;
  }

  bool GetFixed32(uint32_t* v) {
    if (in_.size() < 4) return false;
    std::memcpy(v, in_.data(), 4);
    in_.RemovePrefix(4);
    return true;
  }

  bool GetFixed64(uint64_t* v) {
    if (in_.size() < 8) return false;
    std::memcpy(v, in_.data(), 8);
    in_.RemovePrefix(8);
    return true;
  }

  bool GetVarint64(uint64_t* v) {
    uint64_t result = 0;
    for (int shift = 0; shift <= 63; shift += 7) {
      if (in_.empty()) return false;
      uint8_t byte = static_cast<uint8_t>(in_[0]);
      in_.RemovePrefix(1);
      // The 10th byte lands at shift 63, where only its low bit fits in
      // the result.  Anything above it (a stray continuation bit or
      // value bits past 2^63) would be shifted out silently, making two
      // distinct byte strings decode to the same value — reject instead.
      if (shift == 63 && (byte & 0xfe) != 0) return false;
      result |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if (!(byte & 0x80)) {
        *v = result;
        return true;
      }
    }
    return false;  // varint longer than 10 bytes
  }

  bool GetVarint32(uint32_t* v) {
    uint64_t wide;
    if (!GetVarint64(&wide) || wide > UINT32_MAX) return false;
    *v = static_cast<uint32_t>(wide);
    return true;
  }

  static int64_t UnZigZag(uint64_t v) {
    return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
  }

  bool GetSignedVarint64(int64_t* v) {
    uint64_t raw;
    if (!GetVarint64(&raw)) return false;
    *v = UnZigZag(raw);
    return true;
  }

  bool GetDouble(double* v) {
    uint64_t bits;
    if (!GetFixed64(&bits)) return false;
    std::memcpy(v, &bits, 8);
    return true;
  }

  /// Length-prefixed byte string; returns a view into the input.
  bool GetString(Slice* s) {
    uint64_t len;
    if (!GetVarint64(&len) || in_.size() < len) return false;
    *s = Slice(in_.data(), len);
    in_.RemovePrefix(len);
    return true;
  }

  bool GetString(std::string* s) {
    Slice sl;
    if (!GetString(&sl)) return false;
    s->assign(sl.data(), sl.size());
    return true;
  }

  /// Unprefixed raw bytes: view of the next n bytes, consumed.  For
  /// formats that interleave varints with counted byte runs (block
  /// codecs).
  bool GetBytes(size_t n, Slice* s) {
    if (in_.size() < n) return false;
    *s = Slice(in_.data(), n);
    in_.RemovePrefix(n);
    return true;
  }

 private:
  Slice in_;
};

// -- Typed key helpers -------------------------------------------------
//
// MapReduce keys/values travel as byte strings.  Numeric keys are encoded
// big-endian with the sign bit flipped so that lexicographic byte order
// equals numeric order (this is what lets Sort use the framework's
// comparator directly, as Hadoop's Writable comparators do).

/// Order-preserving encoding of a signed 64-bit integer.
std::string EncodeOrderedI64(int64_t v);
/// Inverse of EncodeOrderedI64; returns false on malformed input.
bool DecodeOrderedI64(Slice s, int64_t* v);

/// Order-preserving encoding of a double (totally ordered, NaN last).
std::string EncodeOrderedDouble(double v);
bool DecodeOrderedDouble(Slice s, double* v);

/// Compact (not order-preserving) encodings for values.
std::string EncodeI64(int64_t v);
bool DecodeI64(Slice s, int64_t* v);
std::string EncodeDouble(double v);
bool DecodeDouble(Slice s, double* v);

}  // namespace bmr
