// Runtime lock-order (deadlock-potential) detector backing
// bmr::OrderedMutex in debug builds.
//
// Every OrderedMutex acquisition records "held -> acquiring" edges in a
// process-wide directed graph.  Edges persist for the process lifetime,
// so an A-before-B acquisition on one thread and a B-before-A
// acquisition on another are flagged as a potential deadlock even if
// the two threads never actually collide.  On a cycle the registry
// reports the acquiring thread's held-lock stack and the previously
// established opposite path, then calls the violation handler (which
// aborts by default; tests install a capturing handler).
//
// The registry itself is always compiled so tests can exercise it in
// any build type; OrderedMutex only calls into it when
// BMR_LOCK_ORDER_CHECKS is on (debug builds — see common/mutex.h).
#pragma once

#include <functional>
#include <string>

namespace bmr {

class LockOrderRegistry {
 public:
  struct Violation {
    std::string message;        // full human-readable report
    std::string acquiring;      // name of the lock being acquired
    std::string held;           // name of the conflicting held lock
  };

  /// Called on a detected inversion.  The default handler logs the
  /// report and aborts.  The handler runs outside the registry's
  /// internal lock and may not acquire OrderedMutexes.
  using Handler = std::function<void(const Violation&)>;

  static LockOrderRegistry& Instance();

  /// The calling thread is about to acquire mutex `m` (named `name`).
  /// Records held->m edges and fires the handler on a cycle or on a
  /// recursive acquisition.  `m` is pushed onto the thread's held
  /// stack regardless, so a non-aborting handler keeps the
  /// acquire/release bookkeeping balanced.
  void OnAcquire(const void* m, const char* name);

  /// The calling thread released mutex `m`.
  void OnRelease(const void* m);

  /// Mutex `m` is being destroyed: drop its node and every edge
  /// touching it, so a later mutex reusing the address cannot inherit
  /// stale ordering constraints.
  void OnDestroy(const void* m);

  /// Install a violation handler; returns the previous one.  Passing
  /// nullptr restores the default (log + abort).
  Handler SetHandler(Handler handler);

  /// Drop every recorded edge (tests only; held stacks are untouched,
  /// so only call it with no OrderedMutex held).
  void Reset();

 private:
  LockOrderRegistry() = default;
};

}  // namespace bmr
