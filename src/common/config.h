// Typed string-keyed configuration, Hadoop-Configuration style.  Job
// specs carry one of these so that apps can expose tunables (k for kNN,
// window size for the GA, spill thresholds, ...) without new plumbing.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/status.h"

namespace bmr {

class Config {
 public:
  Config() = default;

  void Set(const std::string& key, std::string value) {
    values_[key] = std::move(value);
  }
  void SetInt(const std::string& key, int64_t value) {
    values_[key] = std::to_string(value);
  }
  void SetDouble(const std::string& key, double value) {
    values_[key] = std::to_string(value);
  }
  void SetBool(const std::string& key, bool value) {
    values_[key] = value ? "true" : "false";
  }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  int64_t GetInt(const std::string& key, int64_t fallback = 0) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    try {
      return std::stoll(it->second);
    } catch (...) {
      return fallback;
    }
  }

  double GetDouble(const std::string& key, double fallback = 0.0) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    try {
      return std::stod(it->second);
    } catch (...) {
      return fallback;
    }
  }

  bool GetBool(const std::string& key, bool fallback = false) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    return it->second == "true" || it->second == "1";
  }

  const std::map<std::string, std::string>& values() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace bmr
