// Lightweight error propagation used across all bmr modules.
//
// We deliberately avoid exceptions on hot paths (shuffle, reduce drivers):
// a Status is returned and checked.  StatusOr<T> carries a value or an
// error, similar in spirit to absl::StatusOr.
#pragma once

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace bmr {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,  // e.g. reducer heap overflow (the paper's OOM)
  kFailedPrecondition,
  kUnavailable,
  kInternal,
  kCancelled,
  kUnimplemented,
  kDataLoss,
};

/// Human-readable name for a StatusCode ("OK", "NOT_FOUND", ...).
const char* StatusCodeName(StatusCode code);

/// Value-semantic error carrier.  An OK status stores no message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status Ok() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  [[nodiscard]] static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  [[nodiscard]] static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  [[nodiscard]] static Status OutOfRange(std::string m) {
    return Status(StatusCode::kOutOfRange, std::move(m));
  }
  [[nodiscard]] static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  [[nodiscard]] static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  [[nodiscard]] static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  [[nodiscard]] static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  [[nodiscard]] static Status Cancelled(std::string m) {
    return Status(StatusCode::kCancelled, std::move(m));
  }
  [[nodiscard]] static Status Unimplemented(std::string m) {
    return Status(StatusCode::kUnimplemented, std::move(m));
  }
  [[nodiscard]] static Status DataLoss(std::string m) {
    return Status(StatusCode::kDataLoss, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "CODE: message".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Either a value of type T or a non-OK Status.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagate a non-OK status to the caller.
#define BMR_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::bmr::Status _st = (expr);                \
    if (!_st.ok()) return _st;                 \
  } while (0)

// Assign the value of a StatusOr expression or propagate its error.
#define BMR_ASSIGN_OR_RETURN(lhs, expr)        \
  auto BMR_CONCAT_(_so_, __LINE__) = (expr);   \
  if (!BMR_CONCAT_(_so_, __LINE__).ok())       \
    return BMR_CONCAT_(_so_, __LINE__).status(); \
  lhs = std::move(BMR_CONCAT_(_so_, __LINE__)).value()

#define BMR_CONCAT_INNER_(a, b) a##b
#define BMR_CONCAT_(a, b) BMR_CONCAT_INNER_(a, b)

}  // namespace bmr
