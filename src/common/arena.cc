#include "common/arena.h"

#include <atomic>
#include <cstring>

namespace bmr {

namespace {

// Process-wide arena counters; relaxed — these are monitoring totals,
// not synchronization.
std::atomic<uint64_t> g_arena_allocated_bytes{0};
std::atomic<uint64_t> g_arena_chunks_created{0};
std::atomic<uint64_t> g_arena_chunks_reused{0};

}  // namespace

Arena::Arena(size_t chunk_bytes)
    : chunk_bytes_(chunk_bytes == 0 ? kDefaultChunkBytes : chunk_bytes) {}

char* Arena::Allocate(size_t n) {
  if (static_cast<size_t>(end_ - ptr_) >= n && ptr_ != nullptr) {
    char* out = ptr_;
    ptr_ += n;
    allocated_bytes_ += n;
    g_arena_allocated_bytes.fetch_add(n, std::memory_order_relaxed);
    return out;
  }
  return AllocateSlow(n);
}

char* Arena::AllocateSlow(size_t n) {
  // Oversized requests get a dedicated chunk and leave the bump cursor
  // alone, so they cannot strand the tail of the current chunk.
  if (n > chunk_bytes_) {
    Chunk big;
    big.data = std::make_unique<char[]>(n);
    big.size = n;
    g_arena_chunks_created.fetch_add(1, std::memory_order_relaxed);
    char* out = big.data.get();
    // Keep the bump chunk (if any) at the back: insert before it.
    chunks_.insert(chunks_.empty() ? chunks_.end() : chunks_.end() - 1,
                   std::move(big));
    allocated_bytes_ += n;
    g_arena_allocated_bytes.fetch_add(n, std::memory_order_relaxed);
    return out;
  }
  // Reuse a parked chunk when one is big enough, else malloc a fresh
  // one.  Parked chunks are all chunk_bytes_ or larger, so the first
  // fit check is really just "is there one".
  Chunk next;
  while (!free_.empty()) {
    Chunk candidate = std::move(free_.back());
    free_.pop_back();
    if (candidate.size >= chunk_bytes_) {
      next = std::move(candidate);
      g_arena_chunks_reused.fetch_add(1, std::memory_order_relaxed);
      break;
    }
  }
  if (next.data == nullptr) {
    next.data = std::make_unique<char[]>(chunk_bytes_);
    next.size = chunk_bytes_;
    g_arena_chunks_created.fetch_add(1, std::memory_order_relaxed);
  }
  ptr_ = next.data.get();
  end_ = ptr_ + next.size;
  chunks_.push_back(std::move(next));
  char* out = ptr_;
  ptr_ += n;
  allocated_bytes_ += n;
  g_arena_allocated_bytes.fetch_add(n, std::memory_order_relaxed);
  return out;
}

Slice Arena::Copy(Slice s) {
  char* dst = Allocate(s.size());
  if (!s.empty()) std::memcpy(dst, s.data(), s.size());
  return Slice(dst, s.size());
}

void Arena::Reset() {
  for (Chunk& c : chunks_) free_.push_back(std::move(c));
  chunks_.clear();
  ptr_ = nullptr;
  end_ = nullptr;
  allocated_bytes_ = 0;
  ++generation_;
}

Arena::GlobalStatsSnapshot Arena::GlobalStats() {
  GlobalStatsSnapshot snap;
  snap.allocated_bytes = g_arena_allocated_bytes.load(std::memory_order_relaxed);
  snap.chunks_created = g_arena_chunks_created.load(std::memory_order_relaxed);
  snap.chunks_reused = g_arena_chunks_reused.load(std::memory_order_relaxed);
  return snap;
}

BufferPool::BufferPool(size_t max_cached_bytes)
    : max_cached_bytes_(max_cached_bytes) {}

BufferPool::~BufferPool() { Trim(); }

BufferPool* BufferPool::Global() {
  // Deliberately leaked: buffers recycled from detached threads during
  // process teardown must always find a live pool.
  static BufferPool* pool = new BufferPool();
  return pool;
}

size_t BufferPool::ClassIndex(size_t size) {
  size_t cls = 0;
  size_t cap = kMinClassBytes;
  while (cap < size && cls + 1 < kNumClasses) {
    cap <<= 1;
    ++cls;
  }
  return cls;
}

std::shared_ptr<std::string> BufferPool::Acquire(size_t size) {
  std::string* s = nullptr;
  {
    MutexLock lock(mu_);
    ++stats_.acquires;
    // Start at the request's own class and take the smallest cached
    // buffer that fits; capacity above the class ceiling was recycled
    // into the class of its capacity, so lookups stay O(kNumClasses).
    for (size_t cls = ClassIndex(size); cls < kNumClasses && s == nullptr;
         ++cls) {
      auto& shelf = classes_[cls];
      if (!shelf.empty() && shelf.back()->capacity() >= size) {
        s = shelf.back();
        shelf.pop_back();
        stats_.cached_bytes -= s->capacity();
        --stats_.cached_buffers;
        ++stats_.reuses;
      }
    }
  }
  if (s == nullptr) s = new std::string();
  s->resize(size);
  return std::shared_ptr<std::string>(s,
                                      [this](std::string* p) { Recycle(p); });
}

void BufferPool::Recycle(std::string* s) {
  {
    MutexLock lock(mu_);
    if (stats_.cached_bytes + s->capacity() <= max_cached_bytes_) {
      s->clear();  // keeps capacity
      classes_[ClassIndex(s->capacity())].push_back(s);
      stats_.cached_bytes += s->capacity();
      stats_.recycled_bytes += s->capacity();
      ++stats_.cached_buffers;
      return;
    }
  }
  delete s;  // pool is full — let the allocator have it back
}

BufferPool::Stats BufferPool::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

void BufferPool::Trim() {
  MutexLock lock(mu_);
  for (auto& shelf : classes_) {
    for (std::string* s : shelf) delete s;
    shelf.clear();
  }
  stats_.cached_buffers = 0;
  stats_.cached_bytes = 0;
}

}  // namespace bmr
