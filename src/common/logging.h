// Minimal leveled logger.  Logging is off by default in tests/benches
// (level = kWarn) and can be raised via BMR_LOG_LEVEL env or SetLevel().
#pragma once

#include <sstream>
#include <string>

namespace bmr {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

namespace log_internal {

LogLevel CurrentLevel();
void Emit(LogLevel level, const char* file, int line, const std::string& msg);

/// Accumulates one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { Emit(level_, file_, line_, stream_.str()); }

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace log_internal

/// Set the global threshold; messages below it are discarded.
void SetLogLevel(LogLevel level);

#define BMR_LOG(level)                                                   \
  if (::bmr::LogLevel::level < ::bmr::log_internal::CurrentLevel()) {    \
  } else                                                                 \
    ::bmr::log_internal::LogMessage(::bmr::LogLevel::level, __FILE__,    \
                                    __LINE__)                            \
        .stream()

#define BMR_DEBUG BMR_LOG(kDebug)
#define BMR_INFO BMR_LOG(kInfo)
#define BMR_WARN BMR_LOG(kWarn)
#define BMR_ERROR BMR_LOG(kError)

}  // namespace bmr
