// Clang thread-safety-analysis annotation macros (no-ops on GCC and
// other compilers).  Annotate mutexes as capabilities, data as
// GUARDED_BY its mutex, and functions with the locks they REQUIRE or
// EXCLUDE; then `-Wthread-safety` (enabled automatically under Clang,
// see the `tidy` CMake preset) machine-checks the locking discipline.
//
// Conventions in this repo (see docs/GUIDE.md "Concurrency discipline"):
//   - every mutex-protected member carries BMR_GUARDED_BY(mu_)
//   - private *Locked() helpers carry BMR_REQUIRES(mu_)
//   - public entry points that take the lock carry BMR_EXCLUDES(mu_)
#pragma once

#if defined(__clang__)
#define BMR_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define BMR_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

// A type that acts as a lock (bmr::Mutex, bmr::OrderedMutex).
#define BMR_CAPABILITY(x) BMR_THREAD_ANNOTATION_(capability(x))

// An RAII type that acquires a capability in its constructor and
// releases it in its destructor (bmr::MutexLock).
#define BMR_SCOPED_CAPABILITY BMR_THREAD_ANNOTATION_(scoped_lockable)

// Data members protected by a mutex (directly / through a pointer).
#define BMR_GUARDED_BY(x) BMR_THREAD_ANNOTATION_(guarded_by(x))
#define BMR_PT_GUARDED_BY(x) BMR_THREAD_ANNOTATION_(pt_guarded_by(x))

// Functions that acquire / release a capability.
#define BMR_ACQUIRE(...) \
  BMR_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define BMR_RELEASE(...) \
  BMR_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define BMR_TRY_ACQUIRE(...) \
  BMR_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

// Functions that must be called with / without the capability held.
#define BMR_REQUIRES(...) \
  BMR_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define BMR_EXCLUDES(...) BMR_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

// Assert (at analysis level) that the capability is already held.
#define BMR_ASSERT_CAPABILITY(x) \
  BMR_THREAD_ANNOTATION_(assert_capability(x))

// A function returning a reference to the capability guarding its
// result (rarely needed; prefer returning copies out of the lock).
#define BMR_RETURN_CAPABILITY(x) BMR_THREAD_ANNOTATION_(lock_returned(x))

// Declares a static lock-order edge for tools/bmr_check: the
// OrderedMutex declared immediately after this annotation may be
// acquired while the named lock(s) are held (GUIDE §7 canonical order,
// GUIDE §12 static analysis).  Expands to nothing — the runtime
// detector (common/lock_order.h) learns the same edges dynamically;
// this makes the documented order checkable before any test runs.
//   BMR_ACQUIRED_AFTER("mr.task_scheduler")
//   mutable OrderedMutex mu_{"mr.shuffle.tracker"};
#define BMR_ACQUIRED_AFTER(...)

// Escape hatch for code the analysis cannot express.  Every use must
// carry a comment justifying why the locking is still correct.
#define BMR_NO_THREAD_SAFETY_ANALYSIS \
  BMR_THREAD_ANNOTATION_(no_thread_safety_analysis)
