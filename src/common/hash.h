// Non-cryptographic hashes used for partitioning and the KV store.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace bmr {

/// FNV-1a 64-bit.  Stable across platforms; used by the default
/// HashPartitioner so partition assignment is deterministic.
inline uint64_t Fnv1a64(Slice s) {
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < s.size(); ++i) {
    h ^= static_cast<uint8_t>(s[i]);
    h *= 1099511628211ull;
  }
  return h;
}

/// 64-bit avalanche mix (SplitMix64 finalizer).  Used to decorrelate
/// sequential ids before modulo placement.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Murmur-inspired 64-bit string hash with a seed, for the KV store's
/// bucket directory (distinct from the partitioner hash so that skew in
/// one does not induce skew in the other).
inline uint64_t SeededHash64(Slice s, uint64_t seed) {
  uint64_t h = seed ^ (s.size() * 0xc6a4a7935bd1e995ull);
  size_t i = 0;
  while (i + 8 <= s.size()) {
    uint64_t k;
    __builtin_memcpy(&k, s.data() + i, 8);
    k *= 0xc6a4a7935bd1e995ull;
    k ^= k >> 47;
    k *= 0xc6a4a7935bd1e995ull;
    h ^= k;
    h *= 0xc6a4a7935bd1e995ull;
    i += 8;
  }
  while (i < s.size()) {
    h ^= static_cast<uint64_t>(static_cast<uint8_t>(s[i])) << ((i % 8) * 8);
    ++i;
  }
  return Mix64(h);
}

}  // namespace bmr
