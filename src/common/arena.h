// Pooled memory for the shuffle data plane (ROADMAP item 3a, the
// ytsaurus chunked_memory_pool idiom):
//
//   bmr::Arena       chunked bump allocator for one task's short-lived
//                    byte staging (map-output records).  Allocation is
//                    a pointer bump; Reset() retires every allocation
//                    at once and parks the chunks on a local freelist
//                    for the next generation, so a long-running task
//                    slot stops paying the global allocator per record.
//                    NOT thread-safe — one Arena per task.
//
//   bmr::BufferPool  process-wide, thread-safe recycler of whole
//                    segment buffers (std::string), keyed by
//                    power-of-two size class.  Acquire() returns a
//                    shared_ptr whose deleter hands the string back to
//                    the pool, so RecordBatch's shared-ownership buffer
//                    type is unchanged — pooling is invisible above
//                    this layer.  Cached bytes are capped; overflow is
//                    simply freed.
//
// Both report into process-wide counters (Arena::GlobalStats /
// BufferPool::stats) exported as the bmr_arena_* gauge family.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace bmr {

class Arena {
 public:
  static constexpr size_t kDefaultChunkBytes = 64 << 10;

  explicit Arena(size_t chunk_bytes = kDefaultChunkBytes);
  ~Arena() = default;

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocate `n` bytes (unaligned — this is byte staging, not
  /// object storage).  Valid until the next Reset().  n == 0 returns a
  /// non-null pointer.
  char* Allocate(size_t n);

  /// Copy `s` into the arena and return a view of the copy.
  Slice Copy(Slice s);

  /// Retire every allocation.  Chunks are kept for reuse by the next
  /// generation; the generation counter advances, so any Slice handed
  /// out before Reset() is dangling — callers that stage slices must
  /// not let them outlive the generation they were allocated in
  /// (regression-tested in tests/arena_test.cc).
  void Reset();

  /// Generation counter: starts at 1, +1 per Reset().  Lets holders of
  /// arena-backed slices assert they are still in the generation that
  /// allocated them.
  uint64_t generation() const { return generation_; }

  /// Bytes handed out in the current generation.
  uint64_t allocated_bytes() const { return allocated_bytes_; }

  struct GlobalStatsSnapshot {
    uint64_t allocated_bytes = 0;  ///< bump-allocated, process lifetime
    uint64_t chunks_created = 0;   ///< chunks malloc'd by all arenas
    uint64_t chunks_reused = 0;    ///< chunks recycled across Reset()s
  };
  /// Process-wide totals across every Arena ever constructed
  /// (monotonic; exported as bmr_arena_* gauges at job end).
  static GlobalStatsSnapshot GlobalStats();

 private:
  struct Chunk {
    std::unique_ptr<char[]> data;
    size_t size = 0;
  };

  /// Slow path: current chunk exhausted; pull one off the freelist or
  /// malloc a new one (oversized requests get a dedicated chunk).
  char* AllocateSlow(size_t n);

  size_t chunk_bytes_;
  char* ptr_ = nullptr;  // bump cursor into chunks_.back()
  char* end_ = nullptr;
  std::vector<Chunk> chunks_;  // live in this generation
  std::vector<Chunk> free_;    // parked by Reset() for reuse
  uint64_t generation_ = 1;
  uint64_t allocated_bytes_ = 0;
};

class BufferPool {
 public:
  /// Total bytes of idle buffers the pool keeps before it starts
  /// freeing returns outright.
  static constexpr size_t kDefaultMaxCachedBytes = 64 << 20;

  explicit BufferPool(size_t max_cached_bytes = kDefaultMaxCachedBytes);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// The process-wide pool used by the shuffle data plane.
  static BufferPool* Global();

  /// A string of exactly `size` bytes (contents unspecified) whose
  /// deleter recycles the storage into this pool.  Implicitly converts
  /// to the shared_ptr<const std::string> that RecordBatch holds.
  std::shared_ptr<std::string> Acquire(size_t size) BMR_EXCLUDES(mu_);

  struct Stats {
    uint64_t acquires = 0;       ///< total Acquire() calls
    uint64_t reuses = 0;         ///< acquires served from the freelist
    uint64_t recycled_bytes = 0; ///< capacity returned and kept
    uint64_t cached_buffers = 0; ///< idle buffers right now
    uint64_t cached_bytes = 0;   ///< idle capacity right now
  };
  Stats stats() const BMR_EXCLUDES(mu_);

  /// Drop every idle buffer (tests; also bounds rss between bench runs).
  void Trim() BMR_EXCLUDES(mu_);

 private:
  // Size classes are powers of two from kMinClassBytes up; class i
  // caches strings whose capacity serves requests of at most
  // kMinClassBytes << i.
  static constexpr size_t kMinClassBytes = 4 << 10;
  static constexpr size_t kNumClasses = 16;  // 4 KiB .. 128 MiB

  static size_t ClassIndex(size_t size);

  void Recycle(std::string* s) BMR_EXCLUDES(mu_);

  const size_t max_cached_bytes_;
  mutable Mutex mu_;
  std::array<std::vector<std::string*>, kNumClasses> classes_
      BMR_GUARDED_BY(mu_);
  Stats stats_ BMR_GUARDED_BY(mu_);
};

}  // namespace bmr
