#include "common/status.h"

namespace bmr {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kCancelled: return "CANCELLED";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kDataLoss: return "DATA_LOSS";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace bmr
