#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace bmr {

namespace {

std::atomic<int> g_level{-1};  // -1 = uninitialized

int InitLevelFromEnv() {
  const char* env = std::getenv("BMR_LOG_LEVEL");
  if (env == nullptr) return static_cast<int>(LogLevel::kWarn);
  if (std::strcmp(env, "debug") == 0) return static_cast<int>(LogLevel::kDebug);
  if (std::strcmp(env, "info") == 0) return static_cast<int>(LogLevel::kInfo);
  if (std::strcmp(env, "warn") == 0) return static_cast<int>(LogLevel::kWarn);
  if (std::strcmp(env, "error") == 0) return static_cast<int>(LogLevel::kError);
  if (std::strcmp(env, "off") == 0) return static_cast<int>(LogLevel::kOff);
  return static_cast<int>(LogLevel::kWarn);
}

std::mutex& EmitMutex() {
  static std::mutex m;
  return m;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace log_internal {

LogLevel CurrentLevel() {
  int lvl = g_level.load(std::memory_order_relaxed);
  if (lvl < 0) {
    lvl = InitLevelFromEnv();
    g_level.store(lvl, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(lvl);
}

void Emit(LogLevel level, const char* file, int line, const std::string& msg) {
  static const char* names[] = {"D", "I", "W", "E"};
  const char* base = std::strrchr(file, '/');
  base = base ? base + 1 : file;
  std::lock_guard<std::mutex> lock(EmitMutex());
  std::fprintf(stderr, "[%s %s:%d] %s\n",
               names[static_cast<int>(level)], base, line, msg.c_str());
}

}  // namespace log_internal
}  // namespace bmr
