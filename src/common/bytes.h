// Byte-string helpers: Slice (non-owning view with helpers beyond
// std::string_view) and ByteBuffer (growable append-only buffer used by
// the serde layer and by map-output segments).
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace bmr {

/// Non-owning view over a run of bytes.  Thin wrapper over
/// std::string_view adding consume-style parsing helpers.
class Slice {
 public:
  Slice() = default;
  Slice(const char* data, size_t size) : view_(data, size) {}
  Slice(std::string_view v) : view_(v) {}                    // NOLINT
  Slice(const std::string& s) : view_(s) {}                  // NOLINT
  Slice(const char* cstr) : view_(cstr) {}                   // NOLINT

  const char* data() const { return view_.data(); }
  size_t size() const { return view_.size(); }
  bool empty() const { return view_.empty(); }

  char operator[](size_t i) const { return view_[i]; }

  std::string_view view() const { return view_; }
  std::string ToString() const { return std::string(view_); }

  /// Drop the first n bytes from the front of the view.
  void RemovePrefix(size_t n) { view_.remove_prefix(n); }

  bool StartsWith(Slice prefix) const {
    return view_.substr(0, prefix.size()) == prefix.view_;
  }

  int Compare(Slice other) const { return view_.compare(other.view_); }

  bool operator==(const Slice& o) const { return view_ == o.view_; }
  bool operator!=(const Slice& o) const { return view_ != o.view_; }
  bool operator<(const Slice& o) const { return view_ < o.view_; }

 private:
  std::string_view view_;
};

/// Growable append-only byte buffer.  Cheaper bookkeeping than
/// std::string for bulk record staging, and explicit about intent.
class ByteBuffer {
 public:
  ByteBuffer() = default;
  explicit ByteBuffer(size_t reserve) { data_.reserve(reserve); }

  void Append(const void* src, size_t n) {
    const char* p = static_cast<const char*>(src);
    data_.insert(data_.end(), p, p + n);
  }
  void Append(Slice s) { Append(s.data(), s.size()); }
  void PushByte(uint8_t b) { data_.push_back(static_cast<char>(b)); }

  void Clear() { data_.clear(); }
  void Reserve(size_t n) { data_.reserve(n); }

  const char* data() const { return data_.data(); }
  char* data() { return data_.data(); }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  size_t capacity() const { return data_.capacity(); }

  Slice AsSlice() const { return Slice(data_.data(), data_.size()); }
  std::string ToString() const { return std::string(data_.data(), data_.size()); }

  void Resize(size_t n) { data_.resize(n); }

  /// Steal the underlying storage, leaving this buffer empty.
  std::vector<char> Release() { return std::move(data_); }

 private:
  std::vector<char> data_;
};

}  // namespace bmr
