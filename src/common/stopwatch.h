// Wall-clock stopwatch for calibration and for real-engine timing.
#pragma once

#include <chrono>

namespace bmr {

class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace bmr
