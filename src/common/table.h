// ASCII table / series printer used by every bench binary so that the
// regenerated paper tables and figure series all share one format.
#pragma once

#include <string>
#include <vector>

namespace bmr {

/// Column-aligned ASCII table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  /// Convenience: format doubles with the given precision.
  static std::string Num(double v, int precision = 2);
  static std::string Int(long long v);
  static std::string Pct(double v, int precision = 1);

  /// Render with a separator line under the header.
  std::string ToString() const;
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders an (x, series...) line chart as rows, gnuplot-style data
/// block, so the bench output both reads as a table and can be piped
/// into a plotting tool.
class SeriesPrinter {
 public:
  SeriesPrinter(std::string title, std::string x_label,
                std::vector<std::string> series_names);

  void AddPoint(double x, std::vector<double> ys);
  void Print() const;

 private:
  std::string title_;
  std::string x_label_;
  std::vector<std::string> names_;
  std::vector<std::pair<double, std::vector<double>>> points_;
};

}  // namespace bmr
