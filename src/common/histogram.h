// Streaming summary statistics and a simple log-bucketed histogram.
// Used by the metrics layer and by the Fig. 7 box-plot harness
// (min / p25 / median / p75 / max of per-run % improvements).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace bmr {

/// Keeps every sample; exact quantiles.  Fine for the experiment scales
/// here (thousands of samples), where exactness matters more than memory.
class Distribution {
 public:
  void Add(double v) {
    samples_.push_back(v);
    sorted_ = false;
  }

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double Sum() const {
    double s = 0;
    for (double v : samples_) s += v;
    return s;
  }

  double Mean() const { return empty() ? 0.0 : Sum() / count(); }

  double Min() const {
    return empty() ? 0.0 : *std::min_element(samples_.begin(), samples_.end());
  }
  double Max() const {
    return empty() ? 0.0 : *std::max_element(samples_.begin(), samples_.end());
  }

  /// Exact quantile by linear interpolation between order statistics.
  double Quantile(double q) {
    if (samples_.empty()) return 0.0;
    EnsureSorted();
    if (q <= 0) return samples_.front();
    if (q >= 1) return samples_.back();
    double pos = q * (samples_.size() - 1);
    size_t lo = static_cast<size_t>(pos);
    double frac = pos - lo;
    if (lo + 1 >= samples_.size()) return samples_.back();
    return samples_[lo] * (1 - frac) + samples_[lo + 1] * frac;
  }

  double Median() { return Quantile(0.5); }

  double Stddev() const {
    if (samples_.size() < 2) return 0.0;
    double m = Mean();
    double acc = 0;
    for (double v : samples_) acc += (v - m) * (v - m);
    return std::sqrt(acc / samples_.size());
  }

  const std::vector<double>& samples() const { return samples_; }

 private:
  void EnsureSorted() {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  std::vector<double> samples_;
  bool sorted_ = false;
};

/// Power-of-two bucketed counter histogram for high-volume latencies.
class LogHistogram {
 public:
  LogHistogram() : buckets_(65, 0) {}

  void Add(uint64_t v) {
    int b = v == 0 ? 0 : 64 - __builtin_clzll(v);
    buckets_[b]++;
    count_++;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ ? min_ : 0; }
  uint64_t max() const { return max_; }
  double mean() const { return count_ ? static_cast<double>(sum_) / count_ : 0; }

  /// Fold another histogram's samples into this one.
  void Merge(const LogHistogram& o) {
    for (size_t b = 0; b < buckets_.size(); ++b) buckets_[b] += o.buckets_[b];
    count_ += o.count_;
    sum_ += o.sum_;
    if (o.count_ > 0) {
      min_ = std::min(min_, o.min_);
      max_ = std::max(max_, o.max_);
    }
  }

  /// Per-bucket counts; bucket b covers (2^(b-1), 2^b - 1] with upper
  /// bound (1<<b)-1 (bucket 0 holds the zeros).  Exporters turn these
  /// into cumulative Prometheus `le` buckets.
  const std::vector<uint64_t>& buckets() const { return buckets_; }

  /// Upper bound of the bucket containing the q-quantile.
  uint64_t ApproxQuantile(double q) const {
    if (count_ == 0) return 0;
    uint64_t target = static_cast<uint64_t>(q * count_);
    uint64_t seen = 0;
    for (size_t b = 0; b < buckets_.size(); ++b) {
      seen += buckets_[b];
      if (seen > target) return b == 0 ? 0 : (1ull << b) - 1;
    }
    return max_;
  }

 private:
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = std::numeric_limits<uint64_t>::max();
  uint64_t max_ = 0;
};

}  // namespace bmr
