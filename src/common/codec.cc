#include "common/codec.h"

#include <cstring>

#include "common/serde.h"

namespace bmr {

namespace {

class NoneCodec final : public Codec {
 public:
  const char* name() const override { return "none"; }
  uint8_t id() const override { return 0; }

  bool Compress(Slice raw, ByteBuffer* out) const override {
    (void)raw;
    (void)out;
    return false;  // never smaller: every block is stored verbatim
  }

  Status Decompress(Slice encoded, char* out,
                    size_t raw_size) const override {
    if (encoded.size() != raw_size) {
      return Status::DataLoss("none codec: size mismatch");
    }
    if (raw_size != 0) std::memcpy(out, encoded.data(), raw_size);
    return Status::Ok();
  }
};

// ---- "lz4"-style LZ77 ------------------------------------------------
//
// Sequence stream:  { varint lit_len, <literals>, varint token }*
// where token == 0 ends the block and token >= 1 means a match of
// length token+3 followed by varint offset (1 <= offset <= bytes
// already produced).  Matches may overlap their output (offset 1 is
// byte-RLE).

constexpr size_t kMinMatch = 4;
constexpr int kTableBits = 13;
constexpr size_t kTableSize = size_t{1} << kTableBits;

inline uint32_t Load32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

inline uint32_t Hash4(const char* p) {
  return (Load32(p) * 2654435761u) >> (32 - kTableBits);
}

inline size_t VarintCost(uint64_t v) {
  size_t c = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++c;
  }
  return c;
}

// Pointer-cursor varint reader for the decompress hot loop — same
// semantics as Decoder::GetVarint64 (truncation and the overlong
// 10th-byte encoding both fail) without per-byte Slice mutation, plus
// a single-compare fast path for the 1-byte values that dominate
// sequence streams (short literal runs, near offsets).
inline bool ReadVarint(const uint8_t*& p, const uint8_t* end, uint64_t* v) {
  if (p < end && *p < 0x80) {
    *v = *p++;
    return true;
  }
  uint64_t result = 0;
  for (int shift = 0; shift <= 63; shift += 7) {
    if (p == end) return false;
    const uint8_t byte = *p++;
    if (shift == 63 && (byte & 0xfe) != 0) return false;
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if (!(byte & 0x80)) {
      *v = result;
      return true;
    }
  }
  return false;  // varint longer than 10 bytes
}

class Lz4StyleCodec final : public Codec {
 public:
  const char* name() const override { return "lz4"; }
  uint8_t id() const override { return 1; }

  bool Compress(Slice raw, ByteBuffer* out) const override {
    const char* base = raw.data();
    const size_t n = raw.size();
    if (n < kMinMatch + 1) return false;
    ByteBuffer scratch(n / 2);
    Encoder enc(&scratch);
    // table[h] holds position+1 of the last occurrence of a 4-byte
    // prefix hashing to h; 0 = empty.
    uint32_t table[kTableSize] = {0};
    size_t i = 0;
    size_t lit_start = 0;
    while (i + kMinMatch <= n) {
      const uint32_t h = Hash4(base + i);
      const size_t cand = table[h];
      table[h] = static_cast<uint32_t>(i + 1);
      if (cand != 0 && Load32(base + cand - 1) == Load32(base + i)) {
        const size_t match = cand - 1;
        size_t len = kMinMatch;
        while (i + len < n && base[match + len] == base[i + len]) ++len;
        // A sequence spends one byte closing the literal run plus the
        // token and offset varints; a short far match (4 bytes at a
        // 3-byte offset varint) expands the stream, so take a match
        // only when it beats emitting its bytes as literals.
        const size_t cost =
            1 + VarintCost(len - kMinMatch + 1) + VarintCost(i - match);
        if (len < cost + 2) {
          ++i;
          continue;
        }
        enc.PutVarint64(i - lit_start);
        scratch.Append(base + lit_start, i - lit_start);
        enc.PutVarint64(len - kMinMatch + 1);  // token >= 1
        enc.PutVarint64(i - match);            // offset
        i += len;
        lit_start = i;
        if (scratch.size() >= n) return false;  // expanding — store it
        // Seed the table near the match tail so the next occurrence of
        // this run's suffix can land a candidate.
        if (i >= 2 && i + 2 <= n) {
          table[Hash4(base + i - 2)] = static_cast<uint32_t>(i - 1);
        }
      } else {
        ++i;
      }
    }
    enc.PutVarint64(n - lit_start);
    scratch.Append(base + lit_start, n - lit_start);
    enc.PutVarint64(0);  // end of block
    if (scratch.size() >= n) return false;
    out->Append(scratch.AsSlice());
    return true;
  }

  Status Decompress(Slice encoded, char* out,
                    size_t raw_size) const override {
    const uint8_t* p = reinterpret_cast<const uint8_t*>(encoded.data());
    const uint8_t* const end = p + encoded.size();
    size_t pos = 0;
    for (;;) {
      uint64_t lit_len;
      if (!ReadVarint(p, end, &lit_len)) {
        return Status::DataLoss("lz4: truncated literal length");
      }
      if (lit_len > raw_size - pos) {
        return Status::DataLoss("lz4: literal run overruns block");
      }
      if (lit_len > static_cast<size_t>(end - p)) {
        return Status::DataLoss("lz4: truncated literal run");
      }
      if (lit_len != 0) {
        // Fixed-width copy for the short runs that dominate sequence
        // streams: two 8-byte moves compile to load/store pairs, and
        // the bytes past lit_len are block-interior scratch the next
        // sequence overwrites.
        if (lit_len <= 16 && static_cast<size_t>(end - p) >= 16 &&
            raw_size - pos >= 16) {
          std::memcpy(out + pos, p, 8);
          std::memcpy(out + pos + 8, p + 8, 8);
        } else {
          std::memcpy(out + pos, p, lit_len);
        }
        p += lit_len;
        pos += lit_len;
      }
      uint64_t token;
      if (!ReadVarint(p, end, &token)) {
        return Status::DataLoss("lz4: truncated match token");
      }
      if (token == 0) break;
      const uint64_t len = token + kMinMatch - 1;
      uint64_t offset;
      if (!ReadVarint(p, end, &offset)) {
        return Status::DataLoss("lz4: truncated match offset");
      }
      if (offset == 0 || offset > pos) {
        return Status::DataLoss("lz4: match offset out of range");
      }
      if (len > raw_size - pos) {
        return Status::DataLoss("lz4: match overruns block");
      }
      const char* src = out + pos - offset;
      if (len <= 16 && offset >= 8 && raw_size - pos >= 16) {
        // Same fixed-width trick for short matches.  offset >= 8 keeps
        // each 8-byte move non-overlapping, and doing them in order
        // still replicates forward when 8 <= offset < 16.
        std::memcpy(out + pos, src, 8);
        std::memcpy(out + pos + 8, src + 8, 8);
      } else if (offset >= len) {
        std::memcpy(out + pos, src, len);
      } else {
        // Byte-wise forward copy: overlapping matches (offset < len)
        // replicate earlier output, which is the RLE case.
        for (uint64_t k = 0; k < len; ++k) out[pos + k] = src[k];
      }
      pos += len;
    }
    if (pos != raw_size) {
      return Status::DataLoss("lz4: block decodes short");
    }
    if (p != end) {
      return Status::DataLoss("lz4: trailing bytes after end token");
    }
    return Status::Ok();
  }
};

const NoneCodec kNone;
const Lz4StyleCodec kLz4;

}  // namespace

StatusOr<const Codec*> FindCodec(const std::string& name) {
  if (name.empty() || name == "none") return static_cast<const Codec*>(&kNone);
  if (name == "lz4") return static_cast<const Codec*>(&kLz4);
  return Status::InvalidArgument("unknown shuffle codec '" + name + "'");
}

const Codec* CodecById(uint8_t id) {
  if (id == kNone.id()) return &kNone;
  if (id == kLz4.id()) return &kLz4;
  return nullptr;
}

}  // namespace bmr
