// Annotated locking primitives — the only mutex types bmr code outside
// src/common// src/concurrency/ may use (enforced by scripts/lint.sh).
//
//   bmr::Mutex         annotated wrapper over std::mutex; use for
//                      leaf locks private to one component.
//   bmr::OrderedMutex  named mutex with debug lock-order checking; use
//                      for any lock that can be held across a call into
//                      another component (scheduler<->shuffle,
//                      dfs<->rpc).  Zero-cost in release builds.
//   bmr::MutexLock     RAII guard (scoped capability), CTAD-friendly:
//                      `MutexLock lock(mu_);`.  `lock.Unlock()`
//                      releases early, e.g. to notify a CondVar
//                      outside the critical section.
//   bmr::CondVar       condition variable usable with either mutex
//                      type; pair every Wait with a while-loop over
//                      the predicate *in the annotated caller* so the
//                      analysis sees the guarded reads.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/lock_order.h"
#include "common/thread_annotations.h"

// Lock-order checking is on in debug builds, off (zero-cost) in
// release builds; define BMR_LOCK_ORDER_CHECKS=0/1 to force.
#if !defined(BMR_LOCK_ORDER_CHECKS)
#if defined(NDEBUG)
#define BMR_LOCK_ORDER_CHECKS 0
#else
#define BMR_LOCK_ORDER_CHECKS 1
#endif
#endif

namespace bmr {

/// Plain annotated mutex.  Same cost as std::mutex in every build.
class BMR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() BMR_ACQUIRE() { mu_.lock(); }
  void unlock() BMR_RELEASE() { mu_.unlock(); }
  bool try_lock() BMR_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Named mutex participating in the debug lock-order graph (see
/// common/lock_order.h).  The name should be globally unique and
/// component-scoped, e.g. "mr.task_scheduler".
class BMR_CAPABILITY("mutex") OrderedMutex {
 public:
  explicit OrderedMutex(const char* name) : name_(name) {}
  OrderedMutex(const OrderedMutex&) = delete;
  OrderedMutex& operator=(const OrderedMutex&) = delete;

#if BMR_LOCK_ORDER_CHECKS
  ~OrderedMutex() { LockOrderRegistry::Instance().OnDestroy(this); }

  void lock() BMR_ACQUIRE() {
    LockOrderRegistry::Instance().OnAcquire(this, name_);
    mu_.lock();
  }
  void unlock() BMR_RELEASE() {
    mu_.unlock();
    LockOrderRegistry::Instance().OnRelease(this);
  }
#else
  void lock() BMR_ACQUIRE() { mu_.lock(); }
  void unlock() BMR_RELEASE() { mu_.unlock(); }
#endif

  const char* name() const { return name_; }

 private:
  std::mutex mu_;
  const char* name_;
};

/// RAII guard over either mutex type.  Modeled on absl::MutexLock /
/// absl::ReleasableMutexLock: the destructor releases unless Unlock()
/// already did.
template <typename MutexT>
class BMR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(MutexT& mu) BMR_ACQUIRE(mu) : mu_(&mu) { mu_->lock(); }
  ~MutexLock() BMR_RELEASE() {
    if (mu_ != nullptr) mu_->unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Release before scope exit (e.g. notify a CondVar off-lock).
  void Unlock() BMR_RELEASE() {
    mu_->unlock();
    mu_ = nullptr;
  }

 private:
  MutexT* mu_;
};

template <typename MutexT>
MutexLock(MutexT&) -> MutexLock<MutexT>;

/// Condition variable for bmr::Mutex / bmr::OrderedMutex.  Callers
/// hold the mutex (via MutexLock) and loop:
///
///   MutexLock lock(mu_);
///   while (!ready_) cv_.Wait(mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `mu`, block until notified, re-acquire.
  /// Spurious wakeups are possible: always wait in a predicate loop.
  template <typename MutexT>
  void Wait(MutexT& mu) BMR_REQUIRES(mu) {
    cv_.wait(mu);
  }

  /// Timed Wait: returns false if `timeout_ms` elapsed without a
  /// notification (the predicate may still have become true — re-check
  /// it either way, exactly as with Wait's spurious wakeups).
  template <typename MutexT>
  [[nodiscard]] bool WaitFor(MutexT& mu, double timeout_ms) BMR_REQUIRES(mu) {
    return cv_.wait_for(mu, std::chrono::duration<double, std::milli>(
                                timeout_ms)) == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace bmr
