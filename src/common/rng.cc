#include "common/rng.h"

#include <algorithm>
#include <cassert>

namespace bmr {

ZipfGenerator::ZipfGenerator(uint64_t n, double exponent, uint64_t seed)
    : n_(n), rng_(seed) {
  assert(n > 0);
  cdf_.resize(n);
  double sum = 0;
  for (uint64_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cdf_[i] = sum;
  }
  for (uint64_t i = 0; i < n; ++i) cdf_[i] /= sum;
}

uint64_t ZipfGenerator::Next() {
  double u = rng_.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace bmr
