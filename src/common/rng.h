// Deterministic random sources for workload generation and the simulator.
// All experiments are seeded; two runs with the same seed produce
// byte-identical inputs and therefore byte-identical outputs.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace bmr {

/// SplitMix64: seeds other generators and provides cheap stateless draws.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    state_ += 0x9e3779b97f4a7c15ull;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// PCG32 (pcg-xsh-rr-64/32): the workhorse generator.
class Pcg32 {
 public:
  explicit Pcg32(uint64_t seed, uint64_t stream = 0x853c49e6748fea9bull) {
    state_ = 0;
    inc_ = (stream << 1) | 1;
    NextU32();
    state_ += seed;
    NextU32();
  }

  uint32_t NextU32() {
    uint64_t old = state_;
    state_ = old * 6364136223846793005ull + inc_;
    uint32_t xorshifted = static_cast<uint32_t>(((old >> 18) ^ old) >> 27);
    uint32_t rot = static_cast<uint32_t>(old >> 59);
    return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
  }

  uint64_t NextU64() {
    return (static_cast<uint64_t>(NextU32()) << 32) | NextU32();
  }

  /// Unbiased draw in [0, bound) via Lemire rejection.
  uint32_t NextBounded(uint32_t bound) {
    if (bound == 0) return 0;
    uint64_t m = static_cast<uint64_t>(NextU32()) * bound;
    uint32_t l = static_cast<uint32_t>(m);
    if (l < bound) {
      uint32_t t = -bound % bound;
      while (l < t) {
        m = static_cast<uint64_t>(NextU32()) * bound;
        l = static_cast<uint32_t>(m);
      }
    }
    return static_cast<uint32_t>(m >> 32);
  }

  /// Uniform in [0, 1).
  double NextDouble() {
    return (NextU64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform in [lo, hi].
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextU64() % static_cast<uint64_t>(hi - lo + 1));
  }

  /// Standard normal via Box-Muller (one value per call; simple and
  /// deterministic, speed is not a concern for generation).
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Exponential with the given rate.
  double NextExponential(double rate) {
    double u = NextDouble();
    if (u >= 1.0) u = 0.9999999999999999;
    return -std::log(1.0 - u) / rate;
  }

 private:
  uint64_t state_;
  uint64_t inc_;
};

/// Zipf-distributed integers in [0, n).  Uses the classic inverse-CDF
/// over precomputed harmonic weights; construction is O(n) and sampling
/// is O(log n).  Word frequencies in natural-language corpora are
/// Zipfian, which is what makes WordCount's per-key skew realistic.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double exponent, uint64_t seed);

  uint64_t Next();

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  Pcg32 rng_;
  std::vector<double> cdf_;  // cumulative, normalized to [0,1]
};

}  // namespace bmr
