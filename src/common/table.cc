#include "common/table.h"

#include <cstdio>
#include <sstream>

namespace bmr {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::Int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

std::string TextTable::Pct(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, v);
  return buf;
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      out << row[c];
      for (size_t pad = row[c].size(); pad < widths[c]; ++pad) out << ' ';
    }
    out << '\n';
  };
  emit_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TextTable::Print() const { std::fputs(ToString().c_str(), stdout); }

SeriesPrinter::SeriesPrinter(std::string title, std::string x_label,
                             std::vector<std::string> series_names)
    : title_(std::move(title)),
      x_label_(std::move(x_label)),
      names_(std::move(series_names)) {}

void SeriesPrinter::AddPoint(double x, std::vector<double> ys) {
  ys.resize(names_.size());
  points_.emplace_back(x, std::move(ys));
}

void SeriesPrinter::Print() const {
  std::printf("# %s\n", title_.c_str());
  TextTable table([&] {
    std::vector<std::string> h;
    h.push_back(x_label_);
    for (const auto& n : names_) h.push_back(n);
    return h;
  }());
  for (const auto& [x, ys] : points_) {
    std::vector<std::string> row;
    row.push_back(TextTable::Num(x, 2));
    for (double y : ys) row.push_back(TextTable::Num(y, 2));
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("\n");
}

}  // namespace bmr
