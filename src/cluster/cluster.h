// Cluster description shared by the real engine and the simulator.
//
// Defaults mirror the paper's testbed (§6): 16 nodes on Gigabit
// Ethernet — 1 master + 15 slaves, dual quad-core (8 cores), 16 GB RAM,
// 4 map + 4 reduce slots per slave, DFS replication 3, 64 MB chunks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace bmr::cluster {

struct NodeDesc {
  int id = 0;
  int map_slots = 4;
  int reduce_slots = 4;
  /// Relative CPU speed (1.0 = nominal).  Heterogeneity, the paper's
  /// future-work axis, scales per-record costs by 1/speed.
  double speed = 1.0;
  /// Heap available to each reduce task, bytes (JVM-style cap).
  uint64_t reduce_heap_bytes = 1400ull << 20;
  bool is_master = false;
};

struct ClusterSpec {
  std::vector<NodeDesc> nodes;
  double link_bytes_per_sec = 125e6;  // 1 GbE
  double oversubscription = 2.0;
  double disk_bytes_per_sec = 80e6;   // 2010-era SATA sequential
  int dfs_replication = 3;
  uint64_t dfs_block_bytes = 64ull << 20;
  /// Which net::Transport carries RPC and shuffle traffic: "inproc"
  /// (in-process registry, deterministic) or "tcp" (real loopback
  /// sockets).  Empty defers to the BMR_NET_TRANSPORT environment
  /// variable, then to "inproc".
  std::string transport;

  int num_slaves() const {
    int n = 0;
    for (const auto& nd : nodes) n += nd.is_master ? 0 : 1;
    return n;
  }
  int total_map_slots() const {
    int n = 0;
    for (const auto& nd : nodes) n += nd.is_master ? 0 : nd.map_slots;
    return n;
  }
  int total_reduce_slots() const {
    int n = 0;
    for (const auto& nd : nodes) n += nd.is_master ? 0 : nd.reduce_slots;
    return n;
  }
  /// Ids of the worker (non-master) nodes.
  std::vector<int> SlaveIds() const {
    std::vector<int> ids;
    for (const auto& nd : nodes) {
      if (!nd.is_master) ids.push_back(nd.id);
    }
    return ids;
  }
};

/// The paper's 16-node CCT configuration.
ClusterSpec PaperCluster();

/// A small homogeneous cluster for tests: `slaves` worker nodes plus a
/// master, with the given slot counts.
ClusterSpec SmallCluster(int slaves, int map_slots = 2, int reduce_slots = 2);

/// Apply multiplicative speed jitter: each slave's speed is drawn
/// uniformly from [1-spread, 1+spread].  spread=0 leaves the cluster
/// homogeneous.  Deterministic in `seed`.
void ApplyHeterogeneity(ClusterSpec* spec, double spread, uint64_t seed);

/// A scheduled machine failure for the simulator / failure tests.
struct FailureEvent {
  double time = 0;  // virtual seconds into the job
  int node = -1;
};

}  // namespace bmr::cluster
