#include "cluster/cluster.h"

#include <cassert>

namespace bmr::cluster {

ClusterSpec PaperCluster() {
  ClusterSpec spec;
  spec.nodes.resize(16);
  for (int i = 0; i < 16; ++i) {
    spec.nodes[i].id = i;
    spec.nodes[i].map_slots = 4;
    spec.nodes[i].reduce_slots = 4;
    spec.nodes[i].speed = 1.0;
  }
  spec.nodes[0].is_master = true;  // JobTracker + NameNode
  spec.nodes[0].map_slots = 0;
  spec.nodes[0].reduce_slots = 0;
  return spec;
}

ClusterSpec SmallCluster(int slaves, int map_slots, int reduce_slots) {
  assert(slaves >= 1);
  ClusterSpec spec;
  spec.nodes.resize(slaves + 1);
  for (int i = 0; i <= slaves; ++i) {
    spec.nodes[i].id = i;
    spec.nodes[i].map_slots = map_slots;
    spec.nodes[i].reduce_slots = reduce_slots;
  }
  spec.nodes[0].is_master = true;
  spec.nodes[0].map_slots = 0;
  spec.nodes[0].reduce_slots = 0;
  spec.dfs_replication = slaves < 3 ? slaves : 3;
  return spec;
}

void ApplyHeterogeneity(ClusterSpec* spec, double spread, uint64_t seed) {
  assert(spread >= 0 && spread < 1.0);
  Pcg32 rng(seed);
  for (auto& node : spec->nodes) {
    if (node.is_master) continue;
    node.speed = 1.0 + spread * (2.0 * rng.NextDouble() - 1.0);
  }
}

}  // namespace bmr::cluster
