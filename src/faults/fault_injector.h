// Thread-safe runtime for a FaultPlan: the hook points the substrates
// consult (net transport, shuffle fetch, spill I/O) plus a log of every
// fault that actually fired, for export into the job's counters and
// timeline.  The injector holds no references into the engine — node
// crashes go through a caller-bound callback, and the fault-log clock
// is whatever the host installs — so src/faults/ depends only on
// src/common/ and every layer above may depend on it.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "faults/fault_plan.h"

namespace bmr::faults {

class FaultInjector {
 public:
  /// Kill a node (ClusterContext binds this to KillNode).  Invoked with
  /// no injector lock held; may call back into any hook.
  using CrashFn = std::function<void(int node)>;
  /// Seconds since job start, for fault-log timestamps.
  using ClockFn = std::function<double()>;

  explicit FaultInjector(FaultPlan plan);
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  const FaultPlan& plan() const { return plan_; }

  void BindCrash(CrashFn fn) BMR_EXCLUDES(mu_);
  /// Installed per job run (and cleared after) so records carry the
  /// running job's clock; null stamps t=0.
  void SetClock(ClockFn fn) BMR_EXCLUDES(mu_);

  // ---- Hook points ---------------------------------------------------
  // Each hook counts one invocation against every matching event and
  // applies whatever fires.  All hooks are cheap no-ops for calls no
  // event matches.

  /// Transport Call, at the wire-send boundary.  May sleep (delay), crash a
  /// node (via the bound CrashFn), or fail the call (drop => the caller
  /// sees UNAVAILABLE).  `duplicates` out-param: how many extra times
  /// the transport should deliver the request (at-least-once delivery).
  [[nodiscard]] Status OnRpcCall(int src, int dst, const std::string& method,
                                 int* duplicates) BMR_EXCLUDES(mu_);

  /// Shuffle fetch, before the segment RPC.  Non-OK simulates a fetch
  /// timeout; the fetcher retries with backoff.
  [[nodiscard]] Status OnShuffleFetch(int from_node, int at_node,
                                      int map_task) BMR_EXCLUDES(mu_);

  /// At the serving node's wire boundary, on the response about to
  /// leave it: true => `segment` was truncated so the decode fails
  /// (corruption in flight; the store copy stays intact for the retry).
  /// Serving-side injection means both transports corrupt at the same
  /// point — on TCP the broken bytes really cross the socket.
  bool MaybeCorruptSegment(int from_node, int map_task,
                           std::string* segment) BMR_EXCLUDES(mu_);

  /// Spill-file I/O hooks.
  [[nodiscard]] Status OnSpillWrite(const std::string& path)
      BMR_EXCLUDES(mu_);
  [[nodiscard]] Status OnSpillRead(const std::string& path)
      BMR_EXCLUDES(mu_);

  // ---- Observability -------------------------------------------------
  struct FaultRecord {
    FaultKind kind;
    int node = -1;  // target node, -1 when the site has none
    double t = 0;   // host clock at firing
  };

  /// Everything that fired since the last drain (the engine drains per
  /// job run into its counters and timeline).
  std::vector<FaultRecord> DrainLog() BMR_EXCLUDES(mu_);

  /// Total firings per kind since construction ("fault_injected_<kind>").
  std::map<std::string, uint64_t> CounterSnapshot() const BMR_EXCLUDES(mu_);
  uint64_t injected(FaultKind kind) const BMR_EXCLUDES(mu_);

 private:
  void LogFired(FaultKind kind, int node) BMR_REQUIRES(mu_);

  FaultPlan plan_;
  mutable Mutex mu_;
  // Per-event trigger state lives in the .cc (faults::internal).
  struct State;
  std::unique_ptr<State> state_ BMR_GUARDED_BY(mu_);
  CrashFn crash_ BMR_GUARDED_BY(mu_);
  ClockFn clock_ BMR_GUARDED_BY(mu_);
  std::vector<FaultRecord> log_ BMR_GUARDED_BY(mu_);
  std::map<std::string, uint64_t> fired_ BMR_GUARDED_BY(mu_);
};

}  // namespace bmr::faults
