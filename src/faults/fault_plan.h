// Seeded, deterministic fault schedules for the chaos harness.
//
// A FaultPlan is pure data: a list of fault events, each naming a hook
// point (RPC call site, shuffle fetch, spill I/O), an optional target
// node / method prefix, and a trigger threshold in hook invocations.
// Plans are either scripted by hand (targeted regression tests) or
// generated from a seed (chaos sweeps); Generate is a pure function of
// (seed, options), so a failing chaos scenario is reproduced exactly by
// its seed — see docs/GUIDE.md §8.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bmr::faults {

enum class FaultKind {
  kRpcDrop,         // the call fails with UNAVAILABLE, handler never runs
  kRpcDelay,        // the call is held for delay_ms before dispatch
  kRpcDuplicate,    // the handler runs twice (at-least-once delivery)
  kNodeCrash,       // ClusterContext::KillNode(node) at a scheduled call
  kFetchTimeout,    // one shuffle fetch fails with UNAVAILABLE (timeout)
  kSegmentCorrupt,  // a fetched segment is truncated => decode fails
  kSpillWriteError, // SpillFileWriter::Append fails with UNAVAILABLE
  kSpillReadError,  // SpillFileReader::Next fails with UNAVAILABLE
};

const char* FaultKindName(FaultKind kind);

/// One scheduled fault.  `after_calls` counts matching hook invocations
/// before the event starts firing; `count` is how many consecutive
/// matching invocations it then claims.
struct FaultEvent {
  FaultKind kind = FaultKind::kRpcDrop;
  /// RPC faults: only calls whose method starts with this fire the
  /// event ("" = any method).  Ignored by non-RPC kinds.
  std::string method_prefix;
  /// Target node (RPC: destination; fetch faults: serving node;
  /// kNodeCrash: the node to kill).  -1 = any node (never for crash).
  int node = -1;
  uint64_t after_calls = 0;
  int count = 1;
  double delay_ms = 0;  // kRpcDelay only
};

struct FaultPlanOptions {
  int num_nodes = 4;
  /// Never crashed: it hosts the NameNode, which has no failover.
  int master_node = 0;
  int max_faults = 6;
  bool allow_crash = true;
  bool allow_rpc = true;
  bool allow_fetch = true;
  bool allow_spill = true;
};

struct FaultPlan {
  uint64_t seed = 0;
  std::vector<FaultEvent> events;

  /// Deterministic in (seed, options): same inputs, same plan.  At most
  /// one node crash per plan, never the master.  Duplicates target only
  /// the idempotent shuffle-fetch reads.
  static FaultPlan Generate(uint64_t seed, const FaultPlanOptions& options);

  /// Canonical text form, one event per line — the determinism
  /// regression fingerprint and the chaos failure report.
  std::string ToString() const;
};

}  // namespace bmr::faults
