#include "faults/fault_injector.h"

#include <chrono>
#include <thread>

#include "faults/internal.h"

namespace bmr::faults {

using internal::EventState;

struct FaultInjector::State {
  std::vector<EventState> events;
};

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), state_(std::make_unique<State>()) {
  for (const FaultEvent& e : plan_.events) state_->events.emplace_back(e);
}

FaultInjector::~FaultInjector() = default;

void FaultInjector::BindCrash(CrashFn fn) {
  MutexLock lock(mu_);
  crash_ = std::move(fn);
}

void FaultInjector::SetClock(ClockFn fn) {
  MutexLock lock(mu_);
  clock_ = std::move(fn);
}

void FaultInjector::LogFired(FaultKind kind, int node) {
  double t = clock_ ? clock_() : 0;
  log_.push_back(FaultRecord{kind, node, t});
  fired_[std::string("fault_injected_") + FaultKindName(kind)]++;
}

Status FaultInjector::OnRpcCall(int src, int dst, const std::string& method,
                                int* duplicates) {
  (void)src;
  *duplicates = 0;
  // Decide under the lock, act (sleep / crash / fail) outside it: the
  // crash callback re-enters the transport and must not see our mutex held.
  bool drop = false;
  double delay_ms = 0;
  int crash_node = -1;
  CrashFn crash;
  {
    MutexLock lock(mu_);
    for (EventState& s : state_->events) {
      switch (s.event.kind) {
        case FaultKind::kRpcDrop:
          if (internal::MatchesRpc(s.event, dst, method) && s.Tick()) {
            drop = true;
            LogFired(s.event.kind, dst);
          }
          break;
        case FaultKind::kRpcDelay:
          if (internal::MatchesRpc(s.event, dst, method) && s.Tick()) {
            delay_ms += s.event.delay_ms;
            LogFired(s.event.kind, dst);
          }
          break;
        case FaultKind::kRpcDuplicate:
          if (internal::MatchesRpc(s.event, dst, method) && s.Tick()) {
            *duplicates += 1;
            LogFired(s.event.kind, dst);
          }
          break;
        case FaultKind::kNodeCrash:
          // The trigger counts every transport call, whatever its target.
          if (s.Tick()) {
            crash_node = s.event.node;
            crash = crash_;
            LogFired(s.event.kind, s.event.node);
          }
          break;
        default:
          break;
      }
    }
  }
  if (delay_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(delay_ms));
  }
  if (crash_node >= 0 && crash) crash(crash_node);
  if (drop) {
    return Status::Unavailable("injected rpc drop: " + method);
  }
  return Status::Ok();
}

Status FaultInjector::OnShuffleFetch(int from_node, int at_node,
                                     int map_task) {
  (void)at_node;
  (void)map_task;
  MutexLock lock(mu_);
  for (EventState& s : state_->events) {
    if (s.event.kind != FaultKind::kFetchTimeout) continue;
    if (internal::MatchesNode(s.event, from_node) && s.Tick()) {
      LogFired(s.event.kind, from_node);
      return Status::Unavailable("injected shuffle fetch timeout");
    }
  }
  return Status::Ok();
}

bool FaultInjector::MaybeCorruptSegment(int from_node, int map_task,
                                        std::string* segment) {
  (void)map_task;
  if (segment->empty()) return false;  // nothing to truncate
  MutexLock lock(mu_);
  for (EventState& s : state_->events) {
    if (s.event.kind != FaultKind::kSegmentCorrupt) continue;
    if (internal::MatchesNode(s.event, from_node) && s.Tick()) {
      // Truncation guarantees the framed decode fails (a flipped value
      // byte could decode cleanly and silently corrupt the output).
      segment->pop_back();
      LogFired(s.event.kind, from_node);
      return true;
    }
  }
  return false;
}

Status FaultInjector::OnSpillWrite(const std::string& path) {
  MutexLock lock(mu_);
  for (EventState& s : state_->events) {
    if (s.event.kind != FaultKind::kSpillWriteError) continue;
    if (s.Tick()) {
      LogFired(s.event.kind, -1);
      return Status::Unavailable("injected spill write error: " + path);
    }
  }
  return Status::Ok();
}

Status FaultInjector::OnSpillRead(const std::string& path) {
  MutexLock lock(mu_);
  for (EventState& s : state_->events) {
    if (s.event.kind != FaultKind::kSpillReadError) continue;
    if (s.Tick()) {
      LogFired(s.event.kind, -1);
      return Status::Unavailable("injected spill read error: " + path);
    }
  }
  return Status::Ok();
}

std::vector<FaultInjector::FaultRecord> FaultInjector::DrainLog() {
  MutexLock lock(mu_);
  std::vector<FaultRecord> out;
  out.swap(log_);
  return out;
}

std::map<std::string, uint64_t> FaultInjector::CounterSnapshot() const {
  MutexLock lock(mu_);
  return fired_;
}

uint64_t FaultInjector::injected(FaultKind kind) const {
  MutexLock lock(mu_);
  auto it = fired_.find(std::string("fault_injected_") + FaultKindName(kind));
  return it == fired_.end() ? 0 : it->second;
}

}  // namespace bmr::faults
