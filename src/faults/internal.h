// FaultInjector internals: per-event trigger state and hook matching.
// Private to src/faults/ — the repo lint gate (scripts/lint.sh check 5)
// rejects any include or reference from outside this directory, so
// production code can only reach the injector through the public hook
// points in fault_injector.h.
#pragma once

#include <string>

#include "faults/fault_plan.h"

namespace bmr::faults::internal {

/// Runtime state of one FaultEvent: how many matching hook invocations
/// it has seen and how many firings it has left.
struct EventState {
  FaultEvent event;
  uint64_t seen = 0;
  int remaining = 0;

  explicit EventState(FaultEvent e) : event(std::move(e)) {
    remaining = event.count;
  }

  /// Count one matching invocation; true iff the event fires on it.
  bool Tick() {
    if (remaining <= 0) return false;
    if (seen++ < event.after_calls) return false;
    --remaining;
    return true;
  }
};

/// RPC-site match: method prefix plus optional destination node.
inline bool MatchesRpc(const FaultEvent& e, int dst,
                       const std::string& method) {
  if (e.node >= 0 && e.node != dst) return false;
  return method.compare(0, e.method_prefix.size(), e.method_prefix) == 0;
}

/// Fetch-site match: optional serving node.
inline bool MatchesNode(const FaultEvent& e, int node) {
  return e.node < 0 || e.node == node;
}

}  // namespace bmr::faults::internal
