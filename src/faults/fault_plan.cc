#include "faults/fault_plan.h"

#include <sstream>

#include "common/rng.h"

namespace bmr::faults {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kRpcDrop: return "rpc_drop";
    case FaultKind::kRpcDelay: return "rpc_delay";
    case FaultKind::kRpcDuplicate: return "rpc_duplicate";
    case FaultKind::kNodeCrash: return "node_crash";
    case FaultKind::kFetchTimeout: return "fetch_timeout";
    case FaultKind::kSegmentCorrupt: return "segment_corrupt";
    case FaultKind::kSpillWriteError: return "spill_write_error";
    case FaultKind::kSpillReadError: return "spill_read_error";
  }
  return "?";
}

FaultPlan FaultPlan::Generate(uint64_t seed, const FaultPlanOptions& options) {
  FaultPlan plan;
  plan.seed = seed;
  Pcg32 rng(seed, /*stream=*/0xfa17u);

  // The drawable kinds under the options, in declaration order so the
  // plan depends only on (seed, options).
  std::vector<FaultKind> kinds;
  if (options.allow_rpc) {
    kinds.push_back(FaultKind::kRpcDrop);
    kinds.push_back(FaultKind::kRpcDelay);
    kinds.push_back(FaultKind::kRpcDuplicate);
  }
  if (options.allow_fetch) {
    kinds.push_back(FaultKind::kFetchTimeout);
    kinds.push_back(FaultKind::kSegmentCorrupt);
  }
  if (options.allow_spill) {
    kinds.push_back(FaultKind::kSpillWriteError);
    kinds.push_back(FaultKind::kSpillReadError);
  }
  if (options.allow_crash) kinds.push_back(FaultKind::kNodeCrash);
  if (kinds.empty() || options.max_faults < 1) return plan;

  int n = 1 + static_cast<int>(rng.NextBounded(
                  static_cast<uint32_t>(options.max_faults)));
  bool crashed = false;
  for (int i = 0; i < n; ++i) {
    FaultEvent e;
    e.kind = kinds[rng.NextBounded(static_cast<uint32_t>(kinds.size()))];
    if (e.kind == FaultKind::kNodeCrash) {
      // At most one crash per plan: with single-replica shuffle stores a
      // second concurrent loss can exceed what one retry wave recovers.
      if (crashed) {
        e.kind = FaultKind::kRpcDelay;
      } else {
        crashed = true;
      }
    }
    switch (e.kind) {
      case FaultKind::kNodeCrash: {
        // Any slave; the trigger counts every transport call, so small
        // thresholds make the crash land mid-job reliably.
        int node = 1 + static_cast<int>(rng.NextBounded(
                           static_cast<uint32_t>(options.num_nodes - 1)));
        if (node == options.master_node) node = options.num_nodes - 1;
        e.node = node;
        e.after_calls = rng.NextBounded(40);
        e.count = 1;
        break;
      }
      case FaultKind::kRpcDrop:
      case FaultKind::kRpcDelay: {
        // Bias towards the shuffle path but exercise the DFS too.
        static const char* kPrefixes[] = {"", "shuffle.fetch.", "dn."};
        e.method_prefix = kPrefixes[rng.NextBounded(3)];
        e.node = -1;
        e.after_calls = rng.NextBounded(120);
        e.count = 1 + static_cast<int>(rng.NextBounded(3));
        if (e.kind == FaultKind::kRpcDelay) {
          e.delay_ms = 1.0 + rng.NextBounded(5);
        }
        break;
      }
      case FaultKind::kRpcDuplicate:
        // Only the shuffle fetch is replay-safe (a pure read); nn/dn
        // mutations are not idempotent.
        e.method_prefix = "shuffle.fetch.";
        e.node = -1;
        e.after_calls = rng.NextBounded(30);
        e.count = 1 + static_cast<int>(rng.NextBounded(2));
        break;
      case FaultKind::kFetchTimeout:
      case FaultKind::kSegmentCorrupt:
        e.node = -1;
        e.after_calls = rng.NextBounded(20);
        e.count = 1 + static_cast<int>(rng.NextBounded(3));
        break;
      case FaultKind::kSpillWriteError:
      case FaultKind::kSpillReadError:
        e.node = -1;
        e.after_calls = rng.NextBounded(10);
        e.count = 1;
        break;
    }
    plan.events.push_back(std::move(e));
  }
  return plan;
}

std::string FaultPlan::ToString() const {
  std::ostringstream out;
  out << "plan seed=" << seed << " events=" << events.size() << "\n";
  for (const FaultEvent& e : events) {
    out << "  " << FaultKindName(e.kind);
    if (!e.method_prefix.empty()) out << " method=" << e.method_prefix;
    if (e.node >= 0) out << " node=" << e.node;
    out << " after=" << e.after_calls << " count=" << e.count;
    if (e.delay_ms > 0) out << " delay_ms=" << e.delay_ms;
    out << "\n";
  }
  return out.str();
}

}  // namespace bmr::faults
