#include "net/framing.h"

#include "common/hash.h"
#include "common/serde.h"

namespace bmr::net {
namespace {

Status Malformed(const std::string& what) {
  return Status::DataLoss("malformed frame: " + what);
}

}  // namespace

void EncodeFrame(const Frame& frame, ByteBuffer* out) {
  ByteBuffer body;
  Encoder enc(&body);
  enc.PutFixed32(kFrameMagic);
  enc.PutU8(static_cast<uint8_t>(frame.type));
  enc.PutFixed64(frame.request_id);
  enc.PutVarint64(static_cast<uint64_t>(frame.src));
  enc.PutVarint64(static_cast<uint64_t>(frame.dst));
  enc.PutString(frame.method);
  enc.PutU8(frame.status_code);
  enc.PutString(frame.status_message);
  enc.PutString(frame.payload);
  if (frame.trace.valid()) {
    enc.PutU8(kTraceContextTag);
    enc.PutFixed64(frame.trace.trace_id);
    enc.PutFixed32(frame.trace.parent_span);
    enc.PutU8(frame.trace.flags);
  }
  enc.PutFixed64(Fnv1a64(body.AsSlice()));

  Encoder prefix(out);
  prefix.PutFixed32(static_cast<uint32_t>(body.size()));
  out->Append(body.AsSlice());
}

DecodeResult DecodeFrame(Slice in, Frame* frame, size_t* consumed,
                         Status* error) {
  if (in.size() < 4) return DecodeResult::kNeedMore;
  uint32_t body_len;
  std::memcpy(&body_len, in.data(), 4);
  // Reject oversized frames from the 4-byte prefix alone, before the
  // body arrives — a corrupted length can't make us buffer gigabytes.
  if (body_len > kMaxFrameBytes) {
    *error = Malformed("body length " + std::to_string(body_len) +
                       " exceeds cap " + std::to_string(kMaxFrameBytes));
    return DecodeResult::kError;
  }
  if (in.size() < 4u + body_len) return DecodeResult::kNeedMore;

  Slice body(in.data() + 4, body_len);
  if (body_len < 8) {
    *error = Malformed("body shorter than its checksum");
    return DecodeResult::kError;
  }
  Slice checked(body.data(), body_len - 8);
  uint64_t want_sum;
  std::memcpy(&want_sum, body.data() + body_len - 8, 8);
  if (Fnv1a64(checked) != want_sum) {
    *error = Malformed("checksum mismatch");
    return DecodeResult::kError;
  }

  Decoder dec(checked);
  uint32_t magic;
  uint8_t type;
  uint64_t request_id, src, dst;
  uint8_t status_code;
  std::string method, status_message, payload;
  if (!dec.GetFixed32(&magic) || magic != kFrameMagic) {
    *error = Malformed("bad magic");
    return DecodeResult::kError;
  }
  if (!dec.GetU8(&type) ||
      (type != static_cast<uint8_t>(FrameType::kRequest) &&
       type != static_cast<uint8_t>(FrameType::kResponse))) {
    *error = Malformed("bad frame type");
    return DecodeResult::kError;
  }
  if (!dec.GetFixed64(&request_id) || !dec.GetVarint64(&src) ||
      !dec.GetVarint64(&dst) || !dec.GetString(&method) ||
      !dec.GetU8(&status_code) || !dec.GetString(&status_message) ||
      !dec.GetString(&payload)) {
    *error = Malformed("truncated or malformed body fields");
    return DecodeResult::kError;
  }
  // Optional trace-context block (absent = pre-§15 frame, decodes with
  // an invalid context).  Anything trailing that is not exactly one
  // well-formed block desyncs the stream.
  obs::TraceContext trace;
  if (!dec.empty()) {
    uint8_t tag, flags;
    uint32_t parent_span;
    if (!dec.GetU8(&tag) || tag != kTraceContextTag ||
        !dec.GetFixed64(&trace.trace_id) || !dec.GetFixed32(&parent_span) ||
        !dec.GetU8(&flags) || trace.trace_id == 0) {
      *error = Malformed("bad trace-context block");
      return DecodeResult::kError;
    }
    trace.parent_span = parent_span;
    trace.flags = flags;
  }
  if (!dec.empty()) {
    *error = Malformed("trailing bytes after trace context");
    return DecodeResult::kError;
  }

  frame->type = static_cast<FrameType>(type);
  frame->request_id = request_id;
  frame->src = static_cast<int>(src);
  frame->dst = static_cast<int>(dst);
  frame->method = std::move(method);
  frame->status_code = status_code;
  frame->status_message = std::move(status_message);
  frame->payload = std::move(payload);
  frame->trace = trace;
  *consumed = 4u + body_len;
  return DecodeResult::kFrame;
}

}  // namespace bmr::net
