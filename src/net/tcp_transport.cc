#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "faults/fault_injector.h"
#include "obs/metric_names.h"
#include "obs/trace.h"

namespace bmr::net {
namespace {

Status ErrnoStatus(const std::string& what) {
  return Status::Unavailable(what + ": " + std::strerror(errno));
}

int SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return -1;
  return fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void SetNoDelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

sockaddr_in LoopbackAddr(int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

TcpTransport::TcpTransport(int num_nodes, const TransportOptions& options)
    : num_nodes_(num_nodes),
      options_(options),
      keeper_(options.response_keeper_entries) {}

StatusOr<std::unique_ptr<TcpTransport>> TcpTransport::Create(
    int num_nodes, const TransportOptions& options) {
  std::unique_ptr<TcpTransport> transport(
      new TcpTransport(num_nodes, options));
  BMR_RETURN_IF_ERROR(transport->Start());
  return transport;
}

Status TcpTransport::Start() {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return ErrnoStatus("epoll_create1");
  wake_fd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) return ErrnoStatus("eventfd");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
    return ErrnoStatus("epoll_ctl(wakeup)");
  }

  ports_.resize(num_nodes_, 0);
  for (int node = 0; node < num_nodes_; ++node) {
    int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return ErrnoStatus("socket(listen)");
    int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr = LoopbackAddr(0);  // ephemeral port
    if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
        listen(fd, 128) < 0 || SetNonBlocking(fd) < 0) {
      Status st = ErrnoStatus("bind/listen node " + std::to_string(node));
      close(fd);
      return st;
    }
    socklen_t len = sizeof(addr);
    if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
      Status st = ErrnoStatus("getsockname");
      close(fd);
      return st;
    }
    ports_[node] = ntohs(addr.sin_port);
    ev.data.fd = fd;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      Status st = ErrnoStatus("epoll_ctl(listen)");
      close(fd);
      return st;
    }
    listeners_[fd] = node;
  }

  handler_pool_ = std::make_unique<ThreadPool>(
      static_cast<size_t>(std::max(4, 2 * num_nodes_)));
  loop_pool_ = std::make_unique<ThreadPool>(1);
  loop_pool_->Submit([this] { EventLoop(); });
  return Status::Ok();
}

TcpTransport::~TcpTransport() {
  shutdown_.store(true, std::memory_order_release);
  if (wake_fd_ >= 0) {
    uint64_t one = 1;
    ssize_t ignored = write(wake_fd_, &one, sizeof(one));
    (void)ignored;
  }
  loop_pool_.reset();     // joins the event loop
  handler_pool_.reset();  // drains in-flight handlers
  for (auto& [fd, conn] : conns_) {
    MutexLock lock(conn->write_mu);
    if (conn->fd >= 0) close(conn->fd);
    conn->fd = -1;
  }
  for (const auto& [fd, node] : listeners_) close(fd);
  if (wake_fd_ >= 0) close(wake_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
}

void TcpTransport::EventLoop() {
  epoll_event events[64];
  while (!shutdown_.load(std::memory_order_acquire)) {
    int n = epoll_wait(epoll_fd_, events, 64, /*timeout=*/-1);
    if (n < 0) {
      if (errno == EINTR) continue;
      BMR_ERROR << "tcp transport epoll_wait: " << std::strerror(errno);
      return;
    }
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drained;
        while (read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      auto listener = listeners_.find(fd);
      if (listener != listeners_.end()) {
        AcceptAll(fd);
        continue;
      }
      std::shared_ptr<Conn> conn;
      {
        MutexLock lock(conns_mu_);
        auto it = conns_.find(fd);
        if (it != conns_.end()) conn = it->second;
      }
      if (conn == nullptr) continue;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        CloseConn(conn);
        continue;
      }
      HandleReadable(conn);
    }
  }
}

void TcpTransport::AcceptAll(int listen_fd) {
  for (;;) {
    int fd = accept4(listen_fd, nullptr, nullptr,
                     SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      BMR_WARN << "tcp transport accept: " << std::strerror(errno);
      return;
    }
    SetNoDelay(fd);
    auto conn = std::make_shared<Conn>();
    {
      MutexLock lock(conn->write_mu);
      conn->fd = fd;
    }
    {
      MutexLock lock(conns_mu_);
      conns_[fd] = conn;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      BMR_WARN << "tcp transport epoll_ctl(accept): " << std::strerror(errno);
      CloseConn(conn);
      return;
    }
  }
}

void TcpTransport::HandleReadable(const std::shared_ptr<Conn>& conn) {
  int fd;
  {
    MutexLock lock(conn->write_mu);
    fd = conn->fd;
  }
  if (fd < 0) return;
  char buf[64 << 10];
  bool peer_closed = false;
  for (;;) {
    ssize_t r = recv(fd, buf, sizeof(buf), 0);
    if (r > 0) {
      conn->read_buf.append(buf, static_cast<size_t>(r));
      continue;
    }
    if (r == 0) {
      peer_closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    peer_closed = true;
    break;
  }

  size_t offset = 0;
  obs::Tracer* observer = observer_.load(std::memory_order_acquire);
  while (offset < conn->read_buf.size()) {
    Frame frame;
    size_t consumed = 0;
    Status error = Status::Ok();
    DecodeResult result;
    {
      obs::LatencyTimer timer(observer, obs::kHNetFrameDecodeUs);
      result = DecodeFrame(Slice(conn->read_buf.data() + offset,
                                 conn->read_buf.size() - offset),
                           &frame, &consumed, &error);
    }
    if (result == DecodeResult::kNeedMore) break;
    if (result == DecodeResult::kError) {
      // Framing has lost sync; the peer will reconnect and retry.
      BMR_WARN << "tcp transport dropping connection: " << error;
      CloseConn(conn);
      return;
    }
    offset += consumed;
    if (frame.type == FrameType::kRequest) {
      DispatchRequest(conn, std::move(frame));
    } else {
      CompleteCall(std::move(frame));
    }
  }
  if (offset > 0) conn->read_buf.erase(0, offset);
  if (peer_closed) CloseConn(conn);
}

void TcpTransport::DispatchRequest(std::shared_ptr<Conn> conn, Frame frame) {
  handler_pool_->Submit([this, conn, frame] {
    Frame response;
    if (keeper_.Begin(frame.request_id, &response)) {
      // Whatever happens to the handler below, duplicates blocked on
      // this id inside Begin must be released: Complete publishes the
      // real response, and if this scope unwinds without reaching it
      // (handler crash), the guard publishes an error frame instead so
      // waiters fail fast and the client's retry re-executes.
      struct CompleteOrAbort {
        ResponseKeeper* keeper;
        uint64_t id;
        bool completed = false;
        ~CompleteOrAbort() {
          if (!completed) {
            keeper->Abort(
                id, Status::Unavailable("request handler died mid-execution"));
          }
        }
      } guard{&keeper_, frame.request_id};
      response.type = FrameType::kResponse;
      response.request_id = frame.request_id;
      response.src = frame.src;
      response.dst = frame.dst;
      RpcHandler handler;
      Status st = registry_.Lookup(frame.dst, frame.method, &handler);
      if (st.ok()) {
        // Handler span under the frame's propagated trace context: the
        // cross-node stitch.  Closes before the response is sent, so
        // it nests inside the client's still-open calling span.
        obs::Tracer* observer = observer_.load(std::memory_order_acquire);
        obs::ScopedSpan handler_span(
            observer, obs::kSpanRpcHandler, "rpc", frame.dst,
            observer != nullptr ? observer->PropagatedParent(frame.trace) : 0);
        ByteBuffer out;
        st = handler(Slice(frame.payload), &out);
        response.payload = out.ToString();
      }
      response.status_code = static_cast<uint8_t>(st.code());
      response.status_message = st.message();
      keeper_.Complete(frame.request_id, response);
      guard.completed = true;
    }
    // Replays reach here too: every response frame written is one wire
    // send, so duplicate requests show up in response_bytes as well.
    RecordResponseFrame(frame.src, frame.dst, response.payload.size());
    Status sent = SendFrame(*conn, response);
    if (!sent.ok()) {
      // The caller's connection died; it will retry on a fresh one and
      // the keeper will replay this response.
      BMR_DEBUG << "tcp transport response send failed: " << sent;
    }
  });
}

void TcpTransport::CompleteCall(Frame frame) {
  MutexLock lock(calls_mu_);
  auto it = pending_.find(frame.request_id);
  if (it == pending_.end()) return;  // late duplicate response
  std::shared_ptr<PendingCall> call = it->second;
  if (call->done) return;
  if (frame.status_code == 0) {
    call->status = Status::Ok();
  } else {
    call->status = Status(static_cast<StatusCode>(frame.status_code),
                          std::move(frame.status_message));
  }
  call->payload = std::move(frame.payload);
  call->done = true;
  call->cv.NotifyAll();
}

void TcpTransport::CloseConn(const std::shared_ptr<Conn>& conn) {
  int fd;
  {
    // Writers check fd under write_mu, so after this block none can
    // touch the (possibly recycled) descriptor.
    MutexLock lock(conn->write_mu);
    fd = conn->fd;
    conn->fd = -1;
  }
  if (fd < 0) return;
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  close(fd);
  MutexLock lock(conns_mu_);
  conns_.erase(fd);
  if (conn->client_src >= 0) {
    auto it = client_conns_.find({conn->client_src, conn->client_dst});
    if (it != client_conns_.end() && it->second == conn) {
      client_conns_.erase(it);
    }
  }
}

StatusOr<std::shared_ptr<TcpTransport::Conn>> TcpTransport::GetClientConn(
    int src, int dst) {
  {
    MutexLock lock(conns_mu_);
    auto it = client_conns_.find({src, dst});
    if (it != client_conns_.end()) return it->second;
  }

  obs::LatencyTimer timer(observer_.load(std::memory_order_acquire),
                          obs::kHNetConnectUs);
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return ErrnoStatus("socket(connect)");
  sockaddr_in addr = LoopbackAddr(ports_[dst]);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 &&
      errno != EINPROGRESS) {
    Status st = ErrnoStatus("connect to node " + std::to_string(dst));
    close(fd);
    return st;
  }
  pollfd pfd{fd, POLLOUT, 0};
  int ready = poll(&pfd, 1, static_cast<int>(options_.connect_timeout_ms));
  int so_error = 0;
  socklen_t len = sizeof(so_error);
  if (ready <= 0 ||
      getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) < 0 ||
      so_error != 0) {
    close(fd);
    return Status::Unavailable("connect to node " + std::to_string(dst) +
                               (ready == 0 ? " timed out"
                                           : ": " + std::string(std::strerror(
                                                 so_error != 0 ? so_error
                                                               : errno))));
  }
  SetNoDelay(fd);

  auto conn = std::make_shared<Conn>();
  {
    MutexLock lock(conn->write_mu);
    conn->fd = fd;
  }
  conn->client_src = src;
  conn->client_dst = dst;
  {
    MutexLock lock(conns_mu_);
    // A racing Call may have installed a connection first; keep it.
    auto [it, inserted] = client_conns_.try_emplace({src, dst}, conn);
    if (!inserted) {
      lock.Unlock();
      close(fd);
      return it->second;
    }
    conns_[fd] = conn;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    Status st = ErrnoStatus("epoll_ctl(connect)");
    CloseConn(conn);
    return st;
  }
  return conn;
}

Status TcpTransport::SendFrame(Conn& conn, const Frame& frame) {
  ByteBuffer wire;
  EncodeFrame(frame, &wire);
  MutexLock lock(conn.write_mu);
  if (conn.fd < 0) return Status::Unavailable("connection closed");
  const char* p = wire.data();
  size_t left = wire.size();
  while (left > 0) {
    ssize_t w = send(conn.fd, p, left, MSG_NOSIGNAL);
    if (w > 0) {
      p += w;
      left -= static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{conn.fd, POLLOUT, 0};
      if (poll(&pfd, 1, static_cast<int>(options_.call_timeout_ms)) <= 0) {
        return Status::Unavailable("send stalled");
      }
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return ErrnoStatus("send");
  }
  return Status::Ok();
}

bool TcpTransport::WaitDone(const std::shared_ptr<PendingCall>& call,
                            double timeout_ms) {
  MutexLock lock(calls_mu_);
  double left_ms = timeout_ms;
  while (!call->done && left_ms > 0) {
    Stopwatch waited;
    (void)call->cv.WaitFor(calls_mu_, left_ms);
    left_ms -= waited.ElapsedMillis();
  }
  return call->done;
}

Status TcpTransport::Call(int src, int dst, const std::string& method,
                          Slice request, ByteBuffer* response) {
  obs::Tracer* observer = observer_.load(std::memory_order_acquire);
  obs::LatencyTimer timer(observer, obs::kHRpcCallTcpUs);
  if (dst < 0 || dst >= num_nodes_) {
    return Status::NotFound("no such node " + std::to_string(dst));
  }
  // Fault hook at the wire-send boundary, consulted exactly once per
  // Call (matching the in-process transport's fault-count semantics):
  // a drop fails the call before any frame is written; a duplicate
  // puts real extra frames on the wire below; a delay has already
  // slept inside the hook; a crash has already killed the node's
  // handlers, so this call gets NotFound back from the server.
  int duplicates = 0;
  {
    faults::FaultInjector* injector;
    {
      MutexLock lock(injector_mu_);
      injector = injector_;
    }
    if (injector != nullptr) {
      BMR_RETURN_IF_ERROR(injector->OnRpcCall(src, dst, method, &duplicates));
    }
  }

  const uint64_t id = next_request_id_.fetch_add(1) + 1;
  Frame req;
  req.type = FrameType::kRequest;
  req.request_id = id;
  req.src = src;
  req.dst = dst;
  req.method = method;
  req.payload = request.ToString();
  // Stamp the caller's open span onto the wire so the serving node can
  // stitch its handler span into this trace (GUIDE §15).  Untraced
  // calls leave the context invalid and the frame format unchanged.
  if (observer != nullptr) req.trace = observer->CurrentContext();

  auto call = std::make_shared<PendingCall>();
  {
    MutexLock lock(calls_mu_);
    pending_[id] = call;
  }
  Status final_status =
      Status::Unavailable("rpc " + method + " to node " + std::to_string(dst) +
                          " exhausted retries");
  double backoff_ms = options_.retry_backoff_ms;
  for (int attempt = 0; attempt <= options_.max_call_retries; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff_ms));
      backoff_ms = std::min(backoff_ms * 2, options_.retry_backoff_max_ms);
    }
    auto conn_or = GetClientConn(src, dst);
    if (!conn_or.ok()) {
      final_status = conn_or.status();
      continue;
    }
    std::shared_ptr<Conn> conn = std::move(*conn_or);
    // A retry resends the SAME request id; injected duplicates ride on
    // the first attempt as genuine extra wire frames.  Each frame
    // written is one wire send in LinkStats.
    int copies = 1 + (attempt == 0 ? duplicates : 0);
    bool sent = false;
    for (int c = 0; c < copies; ++c) {
      Status send = SendFrame(*conn, req);
      if (!send.ok()) {
        final_status = send;
        break;
      }
      sent = true;
      RecordRequestFrame(src, dst, req.payload.size());
    }
    if (!sent) continue;
    if (WaitDone(call, options_.call_timeout_ms)) {
      MutexLock lock(calls_mu_);
      pending_.erase(id);
      lock.Unlock();
      response->Clear();
      response->Append(Slice(call->payload));
      return call->status;
    }
    final_status = Status::Unavailable("rpc " + method + " to node " +
                                       std::to_string(dst) + " timed out");
  }
  {
    MutexLock lock(calls_mu_);
    pending_.erase(id);
  }
  return final_status;
}

void TcpTransport::SetFaultInjector(faults::FaultInjector* injector) {
  MutexLock lock(injector_mu_);
  injector_ = injector;
}

void TcpTransport::RecordRequestFrame(int src, int dst, size_t payload_bytes) {
  MutexLock lock(stats_mu_);
  LinkStats& ls = link_stats_[{src, dst}];
  ls.calls++;
  ls.request_bytes += payload_bytes;
}

void TcpTransport::RecordResponseFrame(int src, int dst,
                                       size_t payload_bytes) {
  MutexLock lock(stats_mu_);
  link_stats_[{src, dst}].response_bytes += payload_bytes;
}

LinkStats TcpTransport::GetLinkStats(int src, int dst) const {
  MutexLock lock(stats_mu_);
  auto it = link_stats_.find({src, dst});
  return it == link_stats_.end() ? LinkStats{} : it->second;
}

LinkStats TcpTransport::TotalRemoteTraffic() const {
  MutexLock lock(stats_mu_);
  LinkStats total;
  for (const auto& [key, ls] : link_stats_) {
    if (key.first == key.second) continue;
    total.calls += ls.calls;
    total.request_bytes += ls.request_bytes;
    total.response_bytes += ls.response_bytes;
  }
  return total;
}

}  // namespace bmr::net
