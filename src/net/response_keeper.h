// Exactly-once replay for the TCP transport's server side, modeled on
// ytsaurus's response keeper: the client retries a timed-out call with
// the SAME request id, and the server must not re-execute a handler it
// already ran — the first execution may have had side effects (a
// NameNode mutation, a KV write).  Instead:
//
//   - first sight of an id: execute the handler, cache the response;
//   - retry while the original is still executing: block until it
//     completes, then send that one response;
//   - retry after completion: replay the cached response.
//
// The cache is FIFO-bounded (response_keeper_entries): an id evicted
// before its retry arrives re-executes.  That bound is acceptable here
// because retries come milliseconds after the original (call timeout ×
// max retries), while eviction needs thousands of newer calls first.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "net/framing.h"

namespace bmr::net {

class ResponseKeeper {
 public:
  explicit ResponseKeeper(size_t capacity) : capacity_(capacity) {}

  ResponseKeeper(const ResponseKeeper&) = delete;
  ResponseKeeper& operator=(const ResponseKeeper&) = delete;

  /// Returns true if the caller owns execution of `id` (first sight):
  /// run the handler and then call Complete.  Returns false for a
  /// duplicate: `*response` is filled with the original execution's
  /// response, blocking first if that execution is still in flight.
  [[nodiscard]] bool Begin(uint64_t id, Frame* response)
      BMR_EXCLUDES(mu_);

  /// Publish the response of an execution Begin handed to this caller;
  /// wakes blocked duplicates and makes the id replayable.
  void Complete(uint64_t id, Frame response) BMR_EXCLUDES(mu_);

  /// The execution Begin handed to this caller died before producing a
  /// response (handler crash, dispatch thread unwound).  Wakes every
  /// duplicate blocked on the id with an error-status frame and
  /// forgets the id WITHOUT caching, so a later retry re-executes the
  /// handler instead of replaying the error forever.  No-op when the
  /// id is not in flight (already completed or never begun).
  void Abort(uint64_t id, const Status& error) BMR_EXCLUDES(mu_);

  /// Completed responses currently cached (test/introspection).
  size_t cached() const BMR_EXCLUDES(mu_);

  /// Duplicates served from cache or an in-flight execution so far.
  uint64_t replays() const BMR_EXCLUDES(mu_);

  /// In-flight executions published as dead via Abort so far.
  uint64_t aborts() const BMR_EXCLUDES(mu_);

 private:
  struct InFlight {
    CondVar done_cv;
    bool done = false;   // guarded by the keeper's mu_
    Frame response;      // valid once done
  };

  const size_t capacity_;
  mutable Mutex mu_;
  // Waiters hold the shared_ptr, so an InFlight outlives its map entry
  // even if the id is completed and later evicted mid-wait.
  std::map<uint64_t, std::shared_ptr<InFlight>> in_flight_
      BMR_GUARDED_BY(mu_);
  std::map<uint64_t, Frame> completed_ BMR_GUARDED_BY(mu_);
  std::deque<uint64_t> eviction_order_ BMR_GUARDED_BY(mu_);
  uint64_t replays_ BMR_GUARDED_BY(mu_) = 0;
  uint64_t aborts_ BMR_GUARDED_BY(mu_) = 0;
};

}  // namespace bmr::net
