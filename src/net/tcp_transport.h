// The real-socket Transport: a TCP/epoll event loop over loopback.
//
// Each logical node gets a listening socket on 127.0.0.1 (ephemeral
// port).  Clients keep one multiplexed nonblocking connection per
// (src, dst) node pair; every message is a checksummed length-prefixed
// frame (net/framing.h) carrying a request id.  A single event-loop
// thread (owned by a one-thread ThreadPool, per the raw-thread rule)
// reads every connection, cuts frames, and either completes the
// pending client call or hands the request to a handler pool.
//
// Reliability semantics:
//   - a Call that sees no response within call_timeout_ms resends the
//     SAME request id with capped exponential backoff, up to
//     max_call_retries times, then returns Unavailable;
//   - the server side dedups request ids through a bounded
//     ResponseKeeper, so retries (and injected duplicate frames)
//     replay the cached response instead of re-executing the handler
//     — exactly-once execution under at-least-once delivery;
//   - fault hooks fire at the wire-send boundary: an injected drop
//     fails the call before any frame is written, an injected
//     duplicate puts a real extra frame on the wire.
//
// LinkStats on this transport count wire sends: every request frame
// written bumps calls/request_bytes once (so injected duplicates and
// timeout resends are each visible), and every response frame written
// bumps response_bytes.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "concurrency/thread_pool.h"
#include "net/framing.h"
#include "net/handler_registry.h"
#include "net/response_keeper.h"
#include "net/transport.h"

namespace bmr::net {

class TcpTransport final : public Transport {
 public:
  /// Binds one loopback listener per node and starts the event loop;
  /// Unavailable if the sockets cannot be set up.
  [[nodiscard]] static StatusOr<std::unique_ptr<TcpTransport>> Create(
      int num_nodes, const TransportOptions& options);

  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  int num_nodes() const override { return num_nodes_; }

  void Register(int node, const std::string& method,
                RpcHandler handler) override {
    registry_.Register(node, method, std::move(handler));
  }

  void Unregister(int node, const std::string& method) override {
    registry_.Unregister(node, method);
  }

  /// Node death is modeled at the handler registry, matching the
  /// in-process transport: the wire stays up and the "dead" node
  /// answers NotFound.
  void KillNode(int node) override { registry_.KillNode(node); }

  [[nodiscard]] Status Call(int src, int dst, const std::string& method,
                            Slice request, ByteBuffer* response) override;

  LinkStats GetLinkStats(int src, int dst) const override
      BMR_EXCLUDES(stats_mu_);
  LinkStats TotalRemoteTraffic() const override BMR_EXCLUDES(stats_mu_);

  uint64_t handler_reregistrations() const override {
    return registry_.reregistrations();
  }

  void SetFaultInjector(faults::FaultInjector* injector) override;

  void SetObserver(obs::Tracer* tracer) override {
    observer_.store(tracer, std::memory_order_release);
  }

  /// Server-side replay dedup (test/introspection).
  const ResponseKeeper& response_keeper() const { return keeper_; }

  /// The loopback port node `n` listens on (tools/tests).
  int listen_port(int node) const { return ports_[node]; }

 private:
  /// One socket, either an accepted server connection or a client
  /// connection for a (src, dst) pair.  The read side (read_buf) is
  /// touched only by the event-loop thread; writes come from caller
  /// and handler threads serialized by write_mu.  Close transitions
  /// fd to -1 under write_mu so a concurrent writer can never hit a
  /// recycled descriptor.
  struct Conn {
    Mutex write_mu;
    int fd BMR_GUARDED_BY(write_mu) = -1;
    std::string read_buf;  // event-loop thread only
    int client_src = -1;   // >= 0 for client conns (client_conns_ key)
    int client_dst = -1;
  };

  /// A Call waiting for its response frame.  `done` and the payload
  /// are guarded by the transport's calls_mu_.
  struct PendingCall {
    CondVar cv;
    bool done = false;
    Status status = Status::Ok();
    std::string payload;
  };

  TcpTransport(int num_nodes, const TransportOptions& options);

  [[nodiscard]] Status Start();
  void EventLoop();
  void AcceptAll(int listen_fd);
  void HandleReadable(const std::shared_ptr<Conn>& conn);
  void DispatchRequest(std::shared_ptr<Conn> conn, Frame frame);
  void CompleteCall(Frame frame) BMR_EXCLUDES(calls_mu_);
  /// Event-loop thread only: deregister, close, forget the conn.
  void CloseConn(const std::shared_ptr<Conn>& conn) BMR_EXCLUDES(conns_mu_);

  [[nodiscard]] StatusOr<std::shared_ptr<Conn>> GetClientConn(int src, int dst)
      BMR_EXCLUDES(conns_mu_);
  [[nodiscard]] Status SendFrame(Conn& conn, const Frame& frame);
  /// Blocks until the call completes or `timeout_ms` passes; true on
  /// completion.
  [[nodiscard]] bool WaitDone(const std::shared_ptr<PendingCall>& call,
                              double timeout_ms) BMR_EXCLUDES(calls_mu_);

  void RecordRequestFrame(int src, int dst, size_t payload_bytes)
      BMR_EXCLUDES(stats_mu_);
  void RecordResponseFrame(int src, int dst, size_t payload_bytes)
      BMR_EXCLUDES(stats_mu_);

  const int num_nodes_;
  const TransportOptions options_;
  HandlerRegistry registry_;
  ResponseKeeper keeper_;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::vector<int> ports_;            // per-node listen ports
  std::map<int, int> listeners_;      // listen fd -> node
  std::atomic<bool> shutdown_{false};
  std::atomic<uint64_t> next_request_id_{0};

  mutable Mutex conns_mu_;
  std::map<int, std::shared_ptr<Conn>> conns_ BMR_GUARDED_BY(conns_mu_);
  std::map<std::pair<int, int>, std::shared_ptr<Conn>> client_conns_
      BMR_GUARDED_BY(conns_mu_);

  mutable Mutex calls_mu_;
  std::map<uint64_t, std::shared_ptr<PendingCall>> pending_
      BMR_GUARDED_BY(calls_mu_);

  mutable Mutex stats_mu_;
  std::map<std::pair<int, int>, LinkStats> link_stats_
      BMR_GUARDED_BY(stats_mu_);

  mutable Mutex injector_mu_;
  faults::FaultInjector* injector_ BMR_GUARDED_BY(injector_mu_) = nullptr;
  std::atomic<obs::Tracer*> observer_{nullptr};

  // Declared last so they join before the sockets they use are torn
  // down; the destructor resets them explicitly in loop-then-handlers
  // order.
  std::unique_ptr<ThreadPool> handler_pool_;
  std::unique_ptr<ThreadPool> loop_pool_;
};

}  // namespace bmr::net
