#include "net/response_keeper.h"

namespace bmr::net {

bool ResponseKeeper::Begin(uint64_t id, Frame* response) {
  std::shared_ptr<InFlight> inf;
  {
    MutexLock lock(mu_);
    auto done_it = completed_.find(id);
    if (done_it != completed_.end()) {
      ++replays_;
      *response = done_it->second;
      return false;
    }
    auto [it, inserted] =
        in_flight_.try_emplace(id, std::make_shared<InFlight>());
    if (inserted) return true;  // caller executes
    ++replays_;
    inf = it->second;
    while (!inf->done) inf->done_cv.Wait(mu_);
  }
  *response = inf->response;
  return false;
}

void ResponseKeeper::Complete(uint64_t id, Frame response) {
  MutexLock lock(mu_);
  auto it = in_flight_.find(id);
  if (it != in_flight_.end()) {
    // Publish to blocked duplicates through their shared InFlight
    // before the map entry goes away.
    it->second->response = response;
    it->second->done = true;
    it->second->done_cv.NotifyAll();
    in_flight_.erase(it);
  }
  if (capacity_ == 0) return;
  if (completed_.emplace(id, std::move(response)).second) {
    eviction_order_.push_back(id);
    while (eviction_order_.size() > capacity_) {
      completed_.erase(eviction_order_.front());
      eviction_order_.pop_front();
    }
  }
}

void ResponseKeeper::Abort(uint64_t id, const Status& error) {
  MutexLock lock(mu_);
  auto it = in_flight_.find(id);
  if (it == in_flight_.end()) return;
  Frame frame;
  frame.type = FrameType::kResponse;
  frame.request_id = id;
  frame.status_code = static_cast<uint8_t>(error.code());
  frame.status_message = std::string(error.message());
  it->second->response = std::move(frame);
  it->second->done = true;
  it->second->done_cv.NotifyAll();
  in_flight_.erase(it);
  ++aborts_;
  // Deliberately not inserted into completed_: the id is unknown
  // again, so the client's retry re-executes instead of replaying the
  // error.
}

size_t ResponseKeeper::cached() const {
  MutexLock lock(mu_);
  return completed_.size();
}

uint64_t ResponseKeeper::replays() const {
  MutexLock lock(mu_);
  return replays_;
}

uint64_t ResponseKeeper::aborts() const {
  MutexLock lock(mu_);
  return aborts_;
}

}  // namespace bmr::net
