// In-process RPC fabric for the real execution engine.
//
// The paper's Hadoop ran on a 16-node cluster; here the "nodes" are
// logical endpoints inside one process.  Services register handlers
// under (node, "Service.Method") and clients issue blocking calls with
// serialized request/response payloads — the same structure as Hadoop
// RPC and the shuffle's HTTP fetches, minus the sockets.  Every call is
// metered (bytes in/out per src→dst pair) so the simulator's cost model
// can be calibrated against real transfer volumes.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "faults/fault_injector.h"

namespace bmr::obs {
class Tracer;
}  // namespace bmr::obs

namespace bmr::net {

using RpcHandler =
    std::function<Status(Slice request, ByteBuffer* response)>;

/// Byte/call counters for one directed node pair.
struct LinkStats {
  uint64_t calls = 0;
  uint64_t request_bytes = 0;
  uint64_t response_bytes = 0;
};

/// The in-process fabric: a registry of per-node services plus link
/// accounting.  Thread-safe; handlers run on the caller's thread.
class RpcFabric {
 public:
  explicit RpcFabric(int num_nodes) : num_nodes_(num_nodes) {}

  int num_nodes() const { return num_nodes_; }

  /// Register a handler for `method` on `node`.  Overwrites silently;
  /// the DFS re-registers DataNode services on restart after a failure.
  void Register(int node, const std::string& method, RpcHandler handler)
      BMR_EXCLUDES(mu_);

  /// Remove one handler (job teardown: shuffle services are job-scoped
  /// so concurrent jobs on a shared fabric don't clobber each other).
  void Unregister(int node, const std::string& method) BMR_EXCLUDES(mu_);

  /// Remove every handler on `node` (simulated node crash).
  void KillNode(int node) BMR_EXCLUDES(mu_);

  /// Issue a blocking call from `src` to `dst`.  NotFound if the method
  /// is not registered (e.g. the node is down).  The handler runs on
  /// the caller's thread with no fabric lock held (it is copied out),
  /// so handlers may issue nested Calls freely.
  [[nodiscard]] Status Call(int src, int dst, const std::string& method,
                            Slice request, ByteBuffer* response)
      BMR_EXCLUDES(mu_);

  /// Accumulated counters for the src→dst direction.
  LinkStats GetLinkStats(int src, int dst) const BMR_EXCLUDES(mu_);

  /// Sum of counters over all pairs where src != dst (remote traffic).
  LinkStats TotalRemoteTraffic() const BMR_EXCLUDES(mu_);

  /// Install (or clear, with nullptr) a fault injector.  Every Call
  /// consults it before the handler lookup, so an injected node crash
  /// takes effect on the very call that triggered it.  Not owned; the
  /// caller keeps it alive for the fabric's lifetime or clears it.
  void SetFaultInjector(faults::FaultInjector* injector) BMR_EXCLUDES(mu_);

  /// Install (or clear, with nullptr) a tracing observer: every Call
  /// records its end-to-end latency (handler included) into the
  /// observer's bmr_rpc_call_us histogram.  One observer at a time —
  /// the traced job installs it for the run and clears it at the end.
  /// Not owned.
  void SetObserver(obs::Tracer* tracer) {
    observer_.store(tracer, std::memory_order_release);
  }

 private:
  int num_nodes_;
  mutable OrderedMutex mu_{"net.rpc_fabric"};
  std::map<std::pair<int, std::string>, RpcHandler> handlers_
      BMR_GUARDED_BY(mu_);
  std::map<std::pair<int, int>, LinkStats> link_stats_ BMR_GUARDED_BY(mu_);
  faults::FaultInjector* injector_ BMR_GUARDED_BY(mu_) = nullptr;
  // Atomic, not guarded: read on every Call; installed/cleared at job
  // boundaries with no concurrent traced calls in flight.
  std::atomic<obs::Tracer*> observer_{nullptr};
};

}  // namespace bmr::net
