// Wire framing for the TCP transport.
//
// Every message on a connection is one frame:
//
//   [fixed32 body_length][body]
//
// where body is, in bmr wire format (common/serde.h):
//
//   fixed32  magic        0x424d5246 ("BMRF")
//   u8       type         1 = request, 2 = response
//   fixed64  request_id   matches responses to in-flight calls; a
//                         retried call resends the SAME id so the
//                         server's ResponseKeeper can replay instead
//                         of re-executing
//   varint   src          logical source node
//   varint   dst          logical destination node
//   string   method       (requests only; empty string in responses)
//   u8       status_code  (responses only; StatusCode as int)
//   string   status_msg   (responses only)
//   string   payload      request bytes, or response bytes
//   [trace-context block]  OPTIONAL (GUIDE §15): present iff the
//                          sender had a tracer installed —
//                            u8       tag       0x54 ('T')
//                            fixed64  trace_id  nonzero tracer id
//                            fixed32  parent    sender's open span
//                            u8       flags     bit 0 = sampled
//   fixed64  checksum     FNV-1a over body minus these 8 bytes
//
// Untraced frames carry no block and are byte-identical to the pre-§15
// format, so old and new decoders interoperate in both directions; the
// checksum covers the block, so corruption is caught before parsing.
//
// Decoding is defensive in the PR 4 discipline: truncated input asks
// for more bytes, an oversized or malformed frame (bad magic, bad
// type, overlong varint, length past the cap, checksum mismatch, bad
// trace-context block) surfaces a Status error — never UB, so a
// corrupted or adversarial peer cannot crash the event loop.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/status.h"
#include "obs/span.h"

namespace bmr::net {

inline constexpr uint32_t kFrameMagic = 0x424d5246;  // "BMRF"
/// Hard cap on one frame's body; above it the frame (and with it the
/// connection) is rejected before any allocation of body size.
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;
/// Leading byte of the optional trace-context block after the payload.
inline constexpr uint8_t kTraceContextTag = 0x54;  // 'T'

enum class FrameType : uint8_t {
  kRequest = 1,
  kResponse = 2,
};

/// One decoded wire message.  `payload` owns its bytes (frames outlive
/// the connection read buffer they were cut from).
struct Frame {
  FrameType type = FrameType::kRequest;
  uint64_t request_id = 0;
  int src = 0;
  int dst = 0;
  std::string method;        // requests
  uint8_t status_code = 0;   // responses: StatusCode as int
  std::string status_message;
  std::string payload;
  /// Wire trace context; invalid (trace_id 0) = absent from the frame.
  obs::TraceContext trace;
};

/// Appends the complete encoding (length prefix included) to `out`.
void EncodeFrame(const Frame& frame, ByteBuffer* out);

enum class DecodeResult {
  kFrame,     // one frame decoded; *consumed bytes were eaten
  kNeedMore,  // `in` is a prefix of a valid frame; read more bytes
  kError,     // malformed; *error set; the connection must be dropped
};

/// Cuts one frame off the front of `in`.  On kFrame, `*consumed` is
/// the total encoded size (prefix + body).  On kError the stream is
/// unrecoverable: framing has lost sync, so the caller closes the
/// connection rather than resynchronizing.
DecodeResult DecodeFrame(Slice in, Frame* frame, size_t* consumed,
                         Status* error);

}  // namespace bmr::net
